(* Golden SQL: the exact statements decomposition generates for each
   change kind, under a fixed fixture — pins the update-plan shapes the
   paper's section II.C describes. *)

open Util
open Core
module R = Relational
module F = Fixtures.Customer_profile

let plan_for ?(policy = Aldsp.Occ.Updated_values) mutate =
  let env = F.make ~customers:1 () in
  let dg = F.get_profile_by_id env "007" in
  mutate env dg;
  (* plan without executing: use the planner directly *)
  let dg = Sdo.parse (Sdo.serialize dg) in
  match Aldsp.Dataspace.lineage_of env.F.ds env.F.svc with
  | Error m -> Alcotest.fail m
  | Ok lineage ->
    Aldsp.Decompose.plan_to_strings
      (Aldsp.Decompose.plan
         ~lookup_table:(fun ~db ~table ->
           R.Database.table (Aldsp.Dataspace.database env.F.ds db) table)
         ~policy ~lineage dg)

let golden name expected ?policy mutate =
  case name (fun () ->
      Alcotest.(check (list string)) name expected (plan_for ?policy mutate))

let tests =
  [
    golden "root leaf update, updated-values policy"
      [
        "db1: UPDATE CUSTOMER SET LAST_NAME = 'Carey' WHERE (CID = '007' AND \
         LAST_NAME = 'Carrey')";
      ]
      (fun _env dg -> Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey");
    golden "root leaf update, read-values policy"
      [
        "db1: UPDATE CUSTOMER SET LAST_NAME = 'Carey' WHERE (CID = '007' AND \
         ((CID = '007' AND LAST_NAME = 'Carrey') AND FIRST_NAME = 'James'))";
      ]
      ~policy:Aldsp.Occ.Read_values
      (fun _env dg -> Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey");
    golden "root leaf update, chosen-subset policy"
      [
        "db1: UPDATE CUSTOMER SET LAST_NAME = 'Carey' WHERE (CID = '007' AND \
         CID = '007')";
      ]
      ~policy:(Aldsp.Occ.Chosen [ "CID" ])
      (fun _env dg -> Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey");
    golden "two leaves of one row collapse into one SET list"
      [
        "db1: UPDATE CUSTOMER SET LAST_NAME = 'Carey', FIRST_NAME = 'Jim' \
         WHERE (CID = '007' AND (LAST_NAME = 'Carrey' AND FIRST_NAME = \
         'James'))";
      ]
      (fun _env dg ->
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        Sdo.set_leaf dg 1 [ ("FIRST_NAME", 1) ] "Jim");
    golden "nested leaf routes to the child table with renamed column"
      [
        "db1: UPDATE ORDERS SET TOTAL_ORDER_AMOUNT = 7.5 WHERE (OID = 900001 \
         AND TOTAL_ORDER_AMOUNT = 42.5)";
      ]
      (fun _env dg ->
        Sdo.set_leaf dg 1 (Sdo.path_of_string "Orders/ORDERS[1]/TOTAL") "7.5");
    golden "element delete conditions on the old row"
      [ "db1: DELETE FROM ORDERS WHERE (OID = 900001 AND 1=1)" ]
      (fun _env dg ->
        Sdo.delete_element dg 1 (Sdo.path_of_string "Orders/ORDERS[1]"));
    golden "element insert fills the parent link column"
      [
        "db1: INSERT INTO ORDERS (CID, OID, STATUS) VALUES ('007', 5555, \
         'NEW')";
      ]
      (fun _env dg ->
        Sdo.insert_element dg 1 [ ("Orders", 1) ]
          (List.hd
             (Xdm.Xml_parse.parse_fragment
                "<ORDERS><OID>5555</OID><STATUS>NEW</STATUS></ORDERS>")));
    golden "object delete removes children before the root"
      [
        "db1: DELETE FROM ORDERS WHERE (OID = 900001 AND 1=1)";
        "db2: DELETE FROM CREDIT_CARD WHERE (CCID = 900001 AND 1=1)";
        "db1: DELETE FROM CUSTOMER WHERE (CID = '007' AND 1=1)";
      ]
      (fun _env dg -> Sdo.delete_object dg 1);
    golden "object create inserts root first, then nested rows"
      [
        "db1: INSERT INTO CUSTOMER (CID, LAST_NAME, FIRST_NAME) VALUES \
         ('N1', 'Nu', 'Na')";
        "db1: INSERT INTO ORDERS (OID, CID, STATUS) VALUES (7777, 'N1', \
         'OPEN')";
      ]
      (fun _env dg ->
        Sdo.add_object dg
          (List.hd
             (Xdm.Xml_parse.parse_fragment
                {|<p:CustomerProfile xmlns:p="ld:CustomerProfile"><CID>N1</CID><LAST_NAME>Nu</LAST_NAME><FIRST_NAME>Na</FIRST_NAME><Orders><ORDERS><OID>7777</OID><CID>N1</CID><STATUS>OPEN</STATUS></ORDERS></Orders><CreditCards/></p:CustomerProfile>|})));
    golden "cross-database change emits one statement per source"
      [
        "db1: UPDATE CUSTOMER SET LAST_NAME = 'Carey' WHERE (CID = '007' AND \
         LAST_NAME = 'Carrey')";
        "db2: UPDATE CREDIT_CARD SET CC_BRAND = 'AMEX' WHERE (CCID = 900001 \
         AND CC_BRAND = 'VISA')";
      ]
      (fun _env dg ->
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        Sdo.set_leaf dg 1
          (Sdo.path_of_string "CreditCards/CREDIT_CARD[1]/BRAND")
          "AMEX");
    golden "no changes, no SQL" [] (fun _env _dg -> ());
  ]

let suites = [ ("sqlgen.golden", tests) ]
