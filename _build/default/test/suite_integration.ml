(* End-to-end integration: the paper's four use cases and the full
   Figure 1-4 flow through the public API. *)

open Util
open Core
open Core.Xdm
module FE = Fixtures.Employees
module FC = Fixtures.Customer_profile
module R = Relational

let uc qname_local = Qname.make ~uri:FE.usecases_ns qname_local

let employee_xml id name =
  List.hd
    (Xml_parse.parse_fragment
       (Printf.sprintf
          {|<e:Employee xmlns:e="urn:employees"><EmployeeID>%d</EmployeeID><Name>%s</Name><DeptNo>10</DeptNo><ManagerID>1</ManagerID><Salary>50000</Salary></e:Employee>|}
          id name))

let use_case_tests =
  [
    case "UC1: delete by employee id" (fun () ->
        let env = FE.make ~employees:6 () in
        Xqse.Session.load_library (Aldsp.Dataspace.session env.FE.ds) FE.uc1_delete_source;
        ignore (Aldsp.Dataspace.call env.FE.ds (uc "deleteByEmployeeID") [ Item.int 6 ]);
        check_int "rows" 5 (R.Table.row_count env.FE.employee);
        check_bool "sql shape" true
          (List.exists
             (fun s -> s = "DELETE FROM EMPLOYEE WHERE EMP_ID = 6")
             (R.Database.sql_log env.FE.hr)));
    case "UC1: missing employee raises the custom error" (fun () ->
        let env = FE.make ~employees:3 () in
        Xqse.Session.load_library (Aldsp.Dataspace.session env.FE.ds) FE.uc1_delete_source;
        match Aldsp.Dataspace.call env.FE.ds (uc "deleteByEmployeeID") [ Item.int 99 ] with
        | _ -> Alcotest.fail "expected NO_SUCH_EMPLOYEE"
        | exception Item.Error { code; _ } ->
          check_string "code" "NO_SUCH_EMPLOYEE" code.Qname.local);
    case "UC2: chain ends at the top employee" (fun () ->
        let env = FE.make ~employees:15 () in
        Xqse.Session.load_library (Aldsp.Dataspace.session env.FE.ds) FE.uc2_chain_source;
        let chain = Aldsp.Dataspace.call env.FE.ds (uc "getManagementChain") [ Item.int 15 ] in
        check_bool "nonempty" true (List.length chain >= 1);
        (* last element is employee 1, who has no manager *)
        let last = List.nth chain (List.length chain - 1) in
        let id =
          match last with
          | Item.Node n ->
            Node.string_value
              (List.find
                 (fun c -> match Node.name c with Some q -> q.Qname.local = "EmployeeID" | None -> false)
                 (Node.children n))
          | _ -> "?"
        in
        check_string "top" "1" id);
    case "UC2: chain of the top employee is just themselves" (fun () ->
        let env = FE.make ~employees:5 () in
        Xqse.Session.load_library (Aldsp.Dataspace.session env.FE.ds) FE.uc2_chain_source;
        check_int "len" 1
          (List.length (Aldsp.Dataspace.call env.FE.ds (uc "getManagementChain") [ Item.int 1 ])));
    case "UC2: callable inside XQuery because it is readonly" (fun () ->
        let env = FE.make ~employees:8 () in
        Xqse.Session.load_library (Aldsp.Dataspace.session env.FE.ds) FE.uc2_chain_source;
        let r =
          Xqse.Session.eval (Aldsp.Dataspace.session env.FE.ds)
            "max(for $e in ens1:getAll() return count(uc:getManagementChain(xs:integer($e/EmployeeID))))"
        in
        check_bool "depth >= 2" true
          (match Item.one_atom r with
          | Atomic.Integer d -> d >= 2
          | _ -> false));
    case "UC3: copies every employee with the transformed shape" (fun () ->
        let env = FE.make ~employees:9 () in
        Xqse.Session.load_library (Aldsp.Dataspace.session env.FE.ds) FE.uc3_etl_source;
        let n = Aldsp.Dataspace.call env.FE.ds (uc "copyAllToEMP2") [] in
        check_string "count" "9" (Xml_serialize.seq_to_string n);
        check_int "rows" 9 (R.Table.row_count env.FE.emp2);
        (* manager name resolved via the auxiliary lookup *)
        let top_mgr = R.Table.find_pk env.FE.emp2 [ R.Value.Int 1 ] in
        check_bool "top has no mgr name" true
          (match top_mgr with
          | Some row ->
            let v = R.Table.get row env.FE.emp2 "MGR_NAME" in
            v = R.Value.Null || v = R.Value.Text ""
          | None -> false);
        let some_child = R.Table.find_pk env.FE.emp2 [ R.Value.Int 2 ] in
        check_bool "child has mgr name" true
          (match some_child with
          | Some row -> (
            match R.Table.get row env.FE.emp2 "MGR_NAME" with
            | R.Value.Text s -> String.length s > 0
            | _ -> false)
          | None -> false));
    case "UC3: name splits into first and last" (fun () ->
        let env = FE.make ~employees:3 () in
        Xqse.Session.load_library (Aldsp.Dataspace.session env.FE.ds) FE.uc3_etl_source;
        ignore (Aldsp.Dataspace.call env.FE.ds (uc "copyAllToEMP2") []);
        let row = Option.get (R.Table.find_pk env.FE.emp2 [ R.Value.Int 1 ]) in
        let full =
          R.Value.to_string (R.Table.get (Option.get (R.Table.find_pk env.FE.employee [ R.Value.Int 1 ])) env.FE.employee "NAME")
        in
        let first = R.Value.to_string (R.Table.get row env.FE.emp2 "FIRST_NAME") in
        let last = R.Value.to_string (R.Table.get row env.FE.emp2 "LAST_NAME") in
        check_string "rejoined" full (first ^ " " ^ last));
    case "UC4: replicates into both sources" (fun () ->
        let env = FE.make ~employees:4 () in
        FE.load_all_use_cases env;
        let keys =
          Aldsp.Dataspace.call env.FE.ds (uc "create")
            [ [ Item.Node (employee_xml 50 "Nora Park") ] ]
        in
        check_int "one key" 1 (List.length keys);
        check_bool "primary" true (R.Table.find_pk env.FE.employee [ R.Value.Int 50 ] <> None);
        check_bool "backup" true (R.Table.find_pk env.FE.emp2 [ R.Value.Int 50 ] <> None));
    case "UC4: primary failure wraps as PRIMARY_CREATE_FAILURE" (fun () ->
        let env = FE.make ~employees:4 () in
        FE.load_all_use_cases env;
        match
          Aldsp.Dataspace.call env.FE.ds (uc "create")
            [ [ Item.Node (employee_xml 1 "Dup") ] ]
        with
        | _ -> Alcotest.fail "expected failure"
        | exception Item.Error { code; _ } ->
          check_string "code" "PRIMARY_CREATE_FAILURE" code.Qname.local);
    case "UC4: backup failure wraps as SECONDARY_CREATE_FAILURE" (fun () ->
        let env = FE.make ~employees:4 () in
        FE.load_all_use_cases env;
        R.Database.set_fail_statements_after env.FE.backup (Some 0);
        match
          Aldsp.Dataspace.call env.FE.ds (uc "create")
            [ [ Item.Node (employee_xml 60 "Faily McFail") ] ]
        with
        | _ -> Alcotest.fail "expected failure"
        | exception Item.Error { code; _ } ->
          check_string "code" "SECONDARY_CREATE_FAILURE" code.Qname.local);
    case "UC4: iterate processes every input once" (fun () ->
        let env = FE.make ~employees:2 () in
        FE.load_all_use_cases env;
        let keys =
          Aldsp.Dataspace.call env.FE.ds (uc "create")
            [ [ Item.Node (employee_xml 70 "A B"); Item.Node (employee_xml 71 "C D") ] ]
        in
        check_int "keys" 2 (List.length keys);
        check_int "emp2" 2 (R.Table.row_count env.FE.emp2));
  ]

let figure_tests =
  [
    case "Figure 3: profile integrates both databases and the ws" (fun () ->
        let env = FC.make ~customers:2 () in
        let dg = FC.get_profile_by_id env "007" in
        match Sdo.roots dg with
        | [ profile ] ->
          let child name =
            List.find_opt
              (fun c -> match Node.name c with Some q -> q.Qname.local = name | None -> false)
              (Node.children profile)
          in
          check_bool "orders" true (child "Orders" <> None);
          check_bool "cards" true (child "CreditCards" <> None);
          check_bool "rating present (ws)" true (child "CreditRating" <> None);
          check_string "last name" "Carrey"
            (Node.string_value (Option.get (child "LAST_NAME")))
        | _ -> Alcotest.fail "expected exactly one profile");
    case "Figure 3: getProfile returns every customer" (fun () ->
        let env = FC.make ~customers:4 () in
        let all = Aldsp.Dataspace.get env.FC.ds env.FC.svc ~meth:"getProfile" [] in
        check_int "profiles" 5 (List.length (Sdo.roots all)));
    case "Figure 4: the whole disconnected update cycle" (fun () ->
        let env = FC.make ~customers:1 () in
        (* 1. client reads *)
        let dg = FC.get_profile_by_id env "007" in
        (* 2. client mutates offline *)
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        (* 3. wire round trip happens inside submit; server decomposes *)
        let r = Aldsp.Dataspace.submit env.FC.ds env.FC.svc ~policy:Aldsp.Occ.Read_values dg in
        check_bool "committed" true r.Aldsp.Dataspace.sr_committed;
        check_int "exactly one statement" 1 r.Aldsp.Dataspace.sr_statements;
        (* the generated SQL matches the paper's conditioned-update idea *)
        check_bool "conditioned" true
          (List.exists
             (fun s ->
               let m = "LAST_NAME = 'Carrey'" in
               let n = String.length s and k = String.length m in
               let rec go i = i + k <= n && (String.sub s i k = m || go (i + 1)) in
               go 0)
             r.Aldsp.Dataspace.sr_sql);
        (* 4. source reflects the change *)
        let row = Option.get (R.Table.find_pk env.FC.customer [ R.Value.Text "007" ]) in
        check_bool "applied" true
          (R.Table.get row env.FC.customer "LAST_NAME" = R.Value.Text "Carey"));
    case "web service is called once per customer in getProfile" (fun () ->
        let env = FC.make ~customers:3 () in
        Webservice.reset_call_count env.FC.ws;
        ignore (Aldsp.Dataspace.get env.FC.ds env.FC.svc ~meth:"getProfile" []);
        check_int "calls" 4 (Webservice.call_count env.FC.ws));
    case "getProfileById composes on top of getProfile" (fun () ->
        let env = FC.make ~customers:3 () in
        let dg = FC.get_profile_by_id env "C2" in
        check_int "one" 1 (List.length (Sdo.roots dg));
        check_string "cid" "C2" (Sdo.get_leaf dg 1 [ ("CID", 1) ]));
    case "shape validation of produced profiles" (fun () ->
        let env = FC.make ~customers:1 () in
        let dg = FC.get_profile_by_id env "007" in
        let shape = Option.get (Aldsp.Data_service.shape env.FC.svc) in
        let schema = Schema.make ~target_ns:FC.profile_ns [ shape ] in
        match Schema.validate schema (List.hd (Sdo.roots dg)) with
        | Ok () -> ()
        | Error vs ->
          Alcotest.failf "shape violations: %s"
            (String.concat "; " (List.map (fun v -> v.Schema.path ^ " " ^ v.Schema.message) vs)));
    case "ad-hoc queries can call data service methods" (fun () ->
        let env = FC.make ~customers:3 () in
        let r =
          Xqse.Session.eval (Aldsp.Dataspace.session env.FC.ds)
            "count(profile:getProfile()[xs:integer(CreditRating) ge 500])"
        in
        check_string "all rated" "4" (Xml_serialize.seq_to_string r));
    case "XQSE procedure can drive the SDO flow (update via script)" (fun () ->
        let env = FC.make ~customers:1 () in
        let sess = Aldsp.Dataspace.session env.FC.ds in
        (* an XQSE procedure that renames a customer via the physical
           update method — the paper's "custom update logic" in action *)
        Xqse.Session.load_library sess
          {|
declare namespace cus = "ld:db1/CUSTOMER";
declare namespace uc2 = "urn:renamer";
declare procedure uc2:rename($cid as xs:string, $new as xs:string) {
  declare $row := (for $c in cus:CUSTOMER() where $c/CID eq $cid return $c);
  if (fn:empty($row)) then fn:error(xs:QName("NO_SUCH_CUSTOMER"), $cid);
  cus:updateCUSTOMER(<CUSTOMER><CID>{fn:data($row/CID)}</CID><LAST_NAME>{$new}</LAST_NAME></CUSTOMER>);
};
|};
        ignore
          (Xqse.Session.call sess (Qname.make ~uri:"urn:renamer" "rename")
             [ Item.str "007"; Item.str "Moneypenny" ]);
        let row = Option.get (R.Table.find_pk env.FC.customer [ R.Value.Text "007" ]) in
        check_bool "renamed" true
          (R.Table.get row env.FC.customer "LAST_NAME" = R.Value.Text "Moneypenny"));
  ]

let suites =
  [
    ("integration.use-cases", use_case_tests);
    ("integration.figures", figure_tests);
  ]
