  $ aldsp-console --catalog | grep "^data service"
  $ aldsp-console -q "count(profile:getProfile())"
  $ aldsp-console -q "string-join(uc:getManagementChain(5)/Name, ' -> ')"
  $ aldsp-console --lineage CustomerProfile | head -5
  $ aldsp-console -q "no:such()"
