  $ xqse -e '1 + 2 * 3'
  $ xqse -e '{ return value "Hello, World"; }'
  $ echo 'for $i in 1 to 4 return $i * $i' | xqse -
  $ xqse -e 'declare xqse function local:fact($n as xs:integer) as xs:integer {
  >   declare $acc := 1, $i := 1;
  >   while ($i le $n) { set $acc := $acc * $i; set $i := $i + 1; }
  >   return value $acc;
  > };
  > local:fact(6)'
  $ cat > defs.xqse <<'XQ'
  > declare readonly procedure local:triple($x as xs:integer) as xs:integer {
  >   return value 3 * $x;
  > };
  > XQ
  $ xqse --lib defs.xqse -e 'local:triple(14)'
  $ xqse --ast -e '{ declare $x := 1; set $x := $x + 1; return value $x; }'
  $ xqse -e '1 div 0'
  $ xqse -e 'for $x in'
  $ xqse --trace -e 'trace(2 + 2, "sum")'
  $ printf 'declare variable $k := 10;;;\n$k * $k;;\n' | xqse -i
