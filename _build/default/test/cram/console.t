The console's catalog shows the design view of every service:

  $ aldsp-console --catalog | grep "^data service"
  data service db1/CUSTOMER  [entity, physical (relational db1.CUSTOMER)]
  data service db1/ORDERS  [entity, physical (relational db1.ORDERS)]
  data service db2/CREDIT_CARD  [entity, physical (relational db2.CREDIT_CARD)]
  data service CreditRatingService  [library, physical (web service CreditRatingService)]
  data service CustomerProfile  [entity, logical]
  data service hr/EMPLOYEE  [entity, physical (relational hr.EMPLOYEE)]

Ad-hoc queries run against the dataspace:

  $ aldsp-console -q "count(profile:getProfile())"
  6

  $ aldsp-console -q "string-join(uc:getManagementChain(5)/Name, ' -> ')"
  Nils Walker -&gt; Bob Lee -&gt; Mona Davis -&gt; Dana Wilson

The lineage view explains update decomposition:

  $ aldsp-console --lineage CustomerProfile | head -5
  <CustomerProfile> <- db1.CUSTOMER
    CID <- CID
    LAST_NAME <- LAST_NAME
    FIRST_NAME <- FIRST_NAME
    CreditRating <- (computed, read-only)

Errors are reported, not fatal:

  $ aldsp-console -q "no:such()"
  syntax error at 1:8: undeclared namespace prefix "no"
