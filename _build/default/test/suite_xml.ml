(* XML parsing, serialization, round trips, and the schema subset. *)

open Core.Xdm
open Util

let parse_one src =
  match Node.children (Xml_parse.parse src) with
  | [ root ] -> root
  | _ -> Alcotest.fail "expected one root element"

let roundtrip src = Xml_serialize.to_string (parse_one src)

let rt name src = case name (fun () -> check_string src src (roundtrip src))

let parse_tests =
  [
    rt "simple element" "<a/>";
    rt "nested with text" "<a><b>hi</b><c/></a>";
    rt "attributes" {|<a x="1" y="two"/>|};
    rt "escapes in text" "<a>1 &lt; 2 &amp; 3 &gt; 2</a>";
    rt "escapes in attribute" {|<a x="say &quot;hi&quot; &amp; bye"/>|};
    case "predefined entities decode" (fun () ->
        check_string "sv" "<&>'\""
          (Node.string_value (parse_one "<a>&lt;&amp;&gt;&apos;&quot;</a>")));
    case "numeric character references" (fun () ->
        check_string "sv" "AB" (Node.string_value (parse_one "<a>&#65;&#x42;</a>")));
    case "CDATA is literal text" (fun () ->
        check_string "sv" "<not-a-tag/>"
          (Node.string_value (parse_one "<a><![CDATA[<not-a-tag/>]]></a>")));
    case "comments survive parsing" (fun () ->
        let root = parse_one "<a><!-- note --><b/></a>" in
        check_int "children" 2 (List.length (Node.children root));
        check_bool "kind" true
          (Node.kind (List.hd (Node.children root)) = Node.Comment));
    case "processing instruction" (fun () ->
        let root = parse_one "<a><?target data?></a>" in
        match Node.children root with
        | [ pi ] ->
          check_bool "kind" true (Node.kind pi = Node.Processing_instruction);
          check_string "data" "data" (Node.text_content pi)
        | _ -> Alcotest.fail "expected one PI child");
    case "xml declaration and doctype are skipped" (fun () ->
        let root =
          parse_one "<?xml version=\"1.0\"?><!DOCTYPE a><a><b/></a>"
        in
        check_int "children" 1 (List.length (Node.children root)));
    case "default namespace applies to element and children" (fun () ->
        let root = parse_one {|<a xmlns="urn:x"><b/></a>|} in
        check_bool "root ns" true
          ((Option.get (Node.name root)).Qname.uri = "urn:x");
        check_bool "child ns" true
          ((Option.get (Node.name (List.hd (Node.children root)))).Qname.uri
          = "urn:x"));
    case "prefixed namespaces resolve" (fun () ->
        let root = parse_one {|<p:a xmlns:p="urn:p"><p:b/></p:a>|} in
        check_bool "ns" true ((Option.get (Node.name root)).Qname.uri = "urn:p"));
    case "unprefixed attributes have no namespace" (fun () ->
        let root = parse_one {|<a xmlns="urn:x" b="1"/>|} in
        check_bool "attr" true
          (Node.attribute_value root (Qname.local "b") = Some "1"));
    case "inner scope shadows outer prefix" (fun () ->
        let root =
          parse_one {|<p:a xmlns:p="urn:1"><p:b xmlns:p="urn:2"/></p:a>|}
        in
        let b = List.hd (Node.children root) in
        check_string "inner" "urn:2" (Option.get (Node.name b)).Qname.uri);
    case "undeclared prefix is an error" (fun () ->
        check_bool "raises" true
          (match Xml_parse.parse "<p:a/>" with
          | _ -> false
          | exception Xml_parse.Parse_error _ -> true));
    case "mismatched end tag is an error" (fun () ->
        check_bool "raises" true
          (match Xml_parse.parse "<a></b>" with
          | _ -> false
          | exception Xml_parse.Parse_error _ -> true));
    case "trailing garbage is an error" (fun () ->
        check_bool "raises" true
          (match Xml_parse.parse "<a/><b/>" with
          | _ -> false
          | exception Xml_parse.Parse_error _ -> true));
    case "parse error reports position" (fun () ->
        match Xml_parse.parse "<a>\n  <b>\n</a>" with
        | _ -> Alcotest.fail "expected parse error"
        | exception Xml_parse.Parse_error { line; _ } ->
          check_bool "line" true (line >= 2));
    case "parse_fragment returns multiple roots" (fun () ->
        check_int "frag" 3
          (List.length (Xml_parse.parse_fragment "<a/>text<b/>")));
    case "serializer escapes content" (fun () ->
        let el = Node.element (Qname.local "a") [ Node.text "a<b&c" ] in
        check_string "esc" "<a>a&lt;b&amp;c</a>" (Xml_serialize.to_string el));
    case "serializer synthesizes namespace declarations" (fun () ->
        let el = Node.element (Qname.make ~prefix:"p" ~uri:"urn:p" "a") [] in
        check_string "ns" {|<p:a xmlns:p="urn:p"/>|} (Xml_serialize.to_string el));
    case "serializer invents prefixes when absent" (fun () ->
        let el = Node.element (Qname.make ~uri:"urn:q" "a") [] in
        check_string "ns" {|<a xmlns="urn:q"/>|} (Xml_serialize.to_string el));
    case "nested same-namespace declared once" (fun () ->
        let child = Node.element (Qname.make ~prefix:"p" ~uri:"urn:p" "b") [] in
        let el = Node.element (Qname.make ~prefix:"p" ~uri:"urn:p" "a") [ child ] in
        check_string "ns" {|<p:a xmlns:p="urn:p"><p:b/></p:a>|}
          (Xml_serialize.to_string el));
    case "indent pretty-prints element-only content" (fun () ->
        let el =
          Node.element (Qname.local "a") [ Node.element (Qname.local "b") [] ]
        in
        check_string "indent" "<a>\n  <b/>\n</a>"
          (Xml_serialize.to_string ~indent:true el));
    case "seq_to_string separates atomics with spaces" (fun () ->
        check_string "seq" "1 2"
          (Xml_serialize.seq_to_string
             [ Item.Atomic (Atomic.Integer 1); Item.Atomic (Atomic.Integer 2) ]));
    prop "parse . serialize roundtrip on generated trees"
      ~count:100
      (let leaf =
         QCheck.Gen.oneof
           [
             QCheck.Gen.map (fun s -> `Text s)
               (QCheck.Gen.string_size ~gen:(QCheck.Gen.char_range 'a' 'z')
                  (QCheck.Gen.int_range 0 8));
             QCheck.Gen.return `Empty;
           ]
       in
       let gen =
         QCheck.Gen.sized_size (QCheck.Gen.int_range 1 15) @@
         QCheck.Gen.fix (fun self n ->
             if n <= 1 then leaf
             else
               QCheck.Gen.oneof
                 [
                   leaf;
                   QCheck.Gen.map2
                     (fun name kids -> `Elem (name, kids))
                     (QCheck.Gen.string_size
                        ~gen:(QCheck.Gen.char_range 'a' 'z')
                        (QCheck.Gen.int_range 1 6))
                     (QCheck.Gen.list_size (QCheck.Gen.int_range 0 3)
                        (self (n / 2)));
                 ])
       in
       QCheck.make gen)
      (fun tree ->
        let rec build = function
          | `Text s -> Node.text s
          | `Empty -> Node.element (Qname.local "e") []
          | `Elem (name, kids) ->
            Node.element (Qname.local name) (List.map build kids)
        in
        let node =
          match build tree with
          | n when Node.kind n = Node.Element -> n
          | n -> Node.element (Qname.local "wrap") [ n ]
        in
        let reparsed = parse_one (Xml_serialize.to_string node) in
        (* text runs may merge across serialization; compare string values
           and structure via deep_equal after normalizing adjacent text *)
        Node.string_value reparsed = Node.string_value node);
  ]

let schema_tests =
  let person_schema =
    Schema.make ~target_ns:""
      [
        {
          Schema.name = Qname.local "person";
          type_def =
            Schema.complex
              ~attributes:[ (Qname.local "id", Qname.xs "integer") ]
              [
                Schema.particle (Qname.local "name") (Schema.simple (Qname.xs "string"));
                Schema.particle ~min:0 (Qname.local "age") (Schema.simple (Qname.xs "integer"));
                Schema.particle ~min:0 ~max:None (Qname.local "email")
                  (Schema.simple (Qname.xs "string"));
              ];
        };
      ]
  in
  let validate src =
    Schema.validate person_schema (parse_one src)
  in
  [
    case "valid instance" (fun () ->
        check_bool "ok" true
          (validate {|<person id="1"><name>n</name><age>30</age></person>|} = Ok ()));
    case "optional elements may be absent" (fun () ->
        check_bool "ok" true (validate "<person><name>n</name></person>" = Ok ()));
    case "repeated unbounded element" (fun () ->
        check_bool "ok" true
          (validate
             "<person><name>n</name><email>a</email><email>b</email></person>"
          = Ok ()));
    case "missing required element" (fun () ->
        check_bool "err" true (validate "<person><age>30</age></person>" <> Ok ()));
    case "wrong order rejected" (fun () ->
        check_bool "err" true
          (validate "<person><age>30</age><name>n</name></person>" <> Ok ()));
    case "bad simple type value" (fun () ->
        check_bool "err" true
          (validate "<person><name>n</name><age>old</age></person>" <> Ok ()));
    case "bad attribute value" (fun () ->
        check_bool "err" true
          (validate {|<person id="x"><name>n</name></person>|} <> Ok ()));
    case "unexpected element" (fun () ->
        check_bool "err" true
          (validate "<person><name>n</name><shoe>44</shoe></person>" <> Ok ()));
    case "unknown root element" (fun () ->
        check_bool "err" true (validate "<animal/>" <> Ok ()));
    case "leaf_paths enumerates simple leaves" (fun () ->
        let paths = Schema.leaf_paths person_schema (Qname.local "person") in
        check_int "leaves" 3 (List.length paths));
  ]

let seqtype_tests =
  [
    case "matches occurrence indicators" (fun () ->
        let one_int = Seqtype.Typed (Seqtype.Atomic_type (Qname.xs "integer"), Seqtype.One) in
        check_bool "one ok" true
          (Seqtype.matches one_int [ Item.Atomic (Atomic.Integer 1) ]);
        check_bool "empty not one" false (Seqtype.matches one_int []);
        let star = Seqtype.Typed (Seqtype.Atomic_type (Qname.xs "integer"), Seqtype.Star) in
        check_bool "star empty" true (Seqtype.matches star []);
        let plus = Seqtype.Typed (Seqtype.Atomic_type (Qname.xs "integer"), Seqtype.Plus) in
        check_bool "plus empty" false (Seqtype.matches plus []));
    case "element test by name" (fun () ->
        let t = Seqtype.one_element (Qname.local "a") in
        check_bool "match" true
          (Seqtype.matches t [ Item.Node (Node.element (Qname.local "a") []) ]);
        check_bool "wrong name" false
          (Seqtype.matches t [ Item.Node (Node.element (Qname.local "b") []) ]));
    case "integer matches decimal by derivation" (fun () ->
        let t = Seqtype.Typed (Seqtype.Atomic_type (Qname.xs "decimal"), Seqtype.One) in
        check_bool "derives" true
          (Seqtype.matches t [ Item.Atomic (Atomic.Integer 1) ]));
    case "empty-sequence only matches empty" (fun () ->
        check_bool "empty" true (Seqtype.matches Seqtype.Empty_sequence []);
        check_bool "nonempty" false
          (Seqtype.matches Seqtype.Empty_sequence [ Item.Atomic (Atomic.Integer 1) ]));
    case "check coerces untyped to required atomic type" (fun () ->
        let t = Seqtype.Typed (Seqtype.Atomic_type (Qname.xs "integer"), Seqtype.One) in
        check_bool "coerced" true
          (Seqtype.check ~what:"t" t [ Item.Atomic (Atomic.Untyped "5") ]
          = [ Item.Atomic (Atomic.Integer 5) ]));
    case "check atomizes nodes for atomic targets" (fun () ->
        let t = Seqtype.Typed (Seqtype.Atomic_type (Qname.xs "integer"), Seqtype.One) in
        let el = Node.element (Qname.local "e") [ Node.text "7" ] in
        check_bool "atomized" true
          (Seqtype.check ~what:"t" t [ Item.Node el ]
          = [ Item.Atomic (Atomic.Integer 7) ]));
    case "check rejects wrong cardinality" (fun () ->
        let t = Seqtype.Typed (Seqtype.Atomic_type (Qname.xs "integer"), Seqtype.One) in
        check_bool "raises" true
          (match Seqtype.check ~what:"t" t [] with
          | _ -> false
          | exception Item.Error { code; _ } -> code.Qname.local = "XPTY0004"));
    case "to_string forms" (fun () ->
        check_string "str" "element(a)?"
          (Seqtype.to_string
             (Seqtype.Typed (Seqtype.Element_type (Some (Qname.local "a")), Seqtype.Opt)));
        check_string "str" "item()*" (Seqtype.to_string Seqtype.any));
  ]

let suites =
  [
    ("xml.parse+serialize", parse_tests);
    ("xml.schema", schema_tests);
    ("xml.seqtype", seqtype_tests);
  ]
