(* XQSE statements and procedures, per the paper's semantics (section
   III.B), including the paper's own inline examples. *)

open Util
open Core

let block_tests =
  [
    s "hello world (paper III.B.7)" "Hello, World"
      {| { return value "Hello, World"; } |};
    s "block without return yields empty" ""
      {| { declare $x := 1; set $x := 2; } |};
    s "declarations execute in order" "3"
      {| { declare $a := 1, $b := $a + 2; return value $b; } |};
    s "uninitialized variable reads as empty" "0"
      {| { declare $x; return value count($x); } |};
    s "nested block scoping shadows" "1"
      {| { declare $x := 1; { declare $x := 2; set $x := 3; } return value $x; } |};
    s "inner block sees outer variables" "5"
      {| { declare $x := 5; declare $y := 0; { set $y := $x; } return value $y; } |};
    s "return from nested block stops outer execution" "inner"
      {| { { return value "inner"; } return value "outer"; } |};
    s "query body may still be a plain expression" "6" "2 * 3";
    s_err "assignment to undeclared variable" "XQSE0001"
      {| { set $nope := 1; } |};
    s_err "assignment to iterate variable" "XQSE0001"
      {| { iterate $x over (1, 2) { set $x := 9; } } |};
    s "typed declaration checks init" "5"
      {| { declare $n as xs:integer := 5; return value $n; } |};
    s_err "typed declaration rejects bad init" "XPTY0004"
      {| { declare $n as xs:integer := 'x'; return value $n; } |};
    s_err "typed assignment rejects bad value" "XPTY0004"
      {| { declare $n as xs:integer := 1; set $n := 'x'; return value $n; } |};
    s "assignment failure leaves previous value (III.B.6)" "1"
      {| {
        declare $n := 1;
        try { set $n := (1 div 0); } catch (*) { }
        return value $n;
      } |};
  ]

let while_tests =
  [
    s "paper while example (III.B.10)" "3 6 12 24 48 96"
      {| {
        declare $y, $x := 3;
        while ($x lt 100) {
          set $y := ($y, $x);
          set $x := $x * 2;
        }
        return value $y;
      } |};
    s "while false never executes" "untouched"
      {| { declare $r := "untouched"; while (false()) { set $r := "touched"; } return value $r; } |};
    s "while with return exits the procedure" "found"
      {| {
        declare $i := 0;
        while (true()) {
          set $i := $i + 1;
          if ($i eq 3) then return value "found";
        }
        return value "unreachable";
      } |};
    s "break stops the loop" "0 1 2 3"
      {| {
        declare $acc := 0, $i := 0;
        declare $out := ();
        while (true()) {
          set $out := ($out, $i);
          if ($i ge 3) then break();
          set $i := $i + 1;
        }
        return value $out;
      } |};
    s "continue skips to the next test" "1 3 5"
      {| {
        declare $i := 0, $out := ();
        while ($i lt 6) {
          set $i := $i + 1;
          if ($i mod 2 eq 0) then continue();
          set $out := ($out, $i);
        }
        return value $out;
      } |};
    s "nested while with break affects inner loop only" "3"
      {| {
        declare $count := 0, $i := 0;
        while ($i lt 3) {
          set $i := $i + 1;
          while (true()) { break(); }
          set $count := $count + 1;
        }
        return value $count;
      } |};
  ]

let iterate_tests =
  [
    s "iterate binds in sequence order" "a b c"
      {| {
        declare $out := ();
        iterate $x over ('a', 'b', 'c') { set $out := ($out, $x); }
        return value $out;
      } |};
    s "positional variable counts from 1" "10 40 90"
      {| {
        declare $out := ();
        iterate $x at $i over (10, 20, 30) { set $out := ($out, $x * $i); }
        return value $out;
      } |};
    s "iterate over empty does nothing" "none"
      {| { declare $r := "none"; iterate $x over () { set $r := "some"; } return value $r; } |};
    s "binding sequence evaluated once up front" "1 2"
      {| {
        declare $src := (1, 2), $out := ();
        iterate $x over $src {
          set $out := ($out, $x);
          set $src := ($src, 99);
        }
        return value $out;
      } |};
    s "break inside iterate" "1 2"
      {| {
        declare $out := ();
        iterate $x over 1 to 10 {
          if ($x gt 2) then break();
          set $out := ($out, $x);
        }
        return value $out;
      } |};
    s "continue inside iterate" "2 4"
      {| {
        declare $out := ();
        iterate $x over 1 to 5 {
          if ($x mod 2 eq 1) then continue();
          set $out := ($out, $x);
        }
        return value $out;
      } |};
    s "return inside iterate stops everything" "2"
      {| {
        iterate $x over (1, 2, 3) {
          if ($x eq 2) then return value $x;
        }
        return value "after";
      } |};
    s "iterate over node sequence" "b1 b2"
      {| {
        declare $out := ();
        iterate $n over (<a><b>b1</b><b>b2</b></a>)/b {
          set $out := ($out, string($n));
        }
        return value $out;
      } |};
  ]

let if_tests =
  [
    s "if statement without else" "yes"
      {| { declare $r := "no"; if (1 lt 2) then set $r := "yes"; return value $r; } |};
    s "if/else selects else branch" "ge"
      {| { declare $r := ""; if (2 lt 1) then set $r := "lt" else set $r := "ge"; return value $r; } |};
    s "if with block branches" "B"
      {| {
        declare $r := "";
        if (false()) then { set $r := "A"; } else { set $r := "B"; };
        return value $r;
      } |};
    s "nested if statements" "mid"
      {| {
        declare $x := 5, $r := "";
        if ($x lt 3) then set $r := "low"
        else if ($x lt 7) then set $r := "mid"
        else set $r := "high";
        return value $r;
      } |};
  ]

let try_tests =
  [
    s "paper try/catch example (III.B.13)" "Error"
      {| {
        declare $x, $y := 0;
        try {
          set $x := $y div 0;
          return value $x;
        } catch (*:* into $e, $m) {
          return value "Error";
        }
      } |};
    s "no error: catch is skipped" "fine"
      {| { try { return value "fine"; } catch (*) { return value "caught"; } } |};
    s "catch binds code, message and items" "CODE|boom|2"
      {| {
        try {
          fn:error(xs:QName("CODE"), "boom", (1, 2));
        } catch (* into $c, $m, $items) {
          return value concat($c, "|", $m, "|", count($items));
        }
      } |};
    s "first matching catch wins" "specific"
      {| {
        try { fn:error(xs:QName("E1")); }
        catch (E1) { return value "specific"; }
        catch (*) { return value "generic"; }
      } |};
    s "name test mismatch falls through to later clause" "generic"
      {| {
        try { fn:error(xs:QName("E2")); }
        catch (E1) { return value "specific"; }
        catch (*) { return value "generic"; }
      } |};
    s_err "unmatched error propagates" "E3"
      {| { try { fn:error(xs:QName("E3")); } catch (E1) { return value "no"; } } |};
    s "namespace wildcard test" "caught"
      {| {
        try { fn:error(fn:QName("http://www.w3.org/2005/xqt-errors", "FOER0000")); }
        catch (err:*) { return value "caught"; }
      } |};
    s "local wildcard test" "caught"
      {| {
        try { fn:error(fn:QName("urn:whatever", "BOOM")); }
        catch (*:BOOM) { return value "caught"; }
      } |};
    s "side effects before the error survive (III.B.13)" "2"
      {| {
        declare $d := <a><b>1</b></a>;
        try {
          replace value of node $d/b with 2;
          fn:error(xs:QName("X"));
        } catch (*) { }
        return value string($d/b);
      } |};
    s "errors inside catch propagate" "rethrown"
      {| {
        try {
          try { fn:error(xs:QName("A")); }
          catch (*) { fn:error(xs:QName("B"), "rethrown"); }
        } catch (B into $c, $m) { return value $m; }
      } |};
    s "nested try scopes" "inner outer"
      {| {
        declare $log := ();
        try {
          try { fn:error(xs:QName("X")); }
          catch (*) { set $log := ($log, "inner"); fn:error(xs:QName("Y")); }
        } catch (*) { set $log := ($log, "outer"); }
        return value $log;
      } |};
  ]

let value_stmt_tests =
  [
    s "procedure block as value statement" "42"
      {| {
        declare $v := procedure {
          declare $t := 40;
          set $t := $t + 2;
          return value $t;
        };
        return value $v;
      } |};
    s "procedure block without return yields empty" "0"
      {| { declare $v := procedure { declare $x := 1; }; return value count($v); } |};
    s "procedure block reads enclosing variables" "7"
      {| {
        declare $outer := 7;
        declare $v := procedure { return value $outer; };
        return value $v;
      } |};
    s "expression statements run for effect" "2"
      {| {
        declare $d := <a><b>0</b></a>;
        fn:trace("side effect");
        replace value of node $d/b with 2;
        return value string($d/b);
      } |};
    s "return value of complex expression" "1 4 9"
      {| { return value (for $i in 1 to 3 return $i * $i); } |};
  ]

let procedure_tests =
  [
    s "procedure declaration and call" "done"
      {|
declare procedure local:work() { return value "done"; };
{ return value local:work(); }
|};
    s "procedure returning empty by falling off the end" "0"
      {|
declare procedure local:noop() { declare $x := 1; };
{ declare $r := local:noop(); return value count($r); }
|};
    s "parameters are read-only bindings" "15"
      {|
declare procedure local:scale($x as xs:integer, $k as xs:integer) as xs:integer {
  return value $x * $k;
};
{ return value local:scale(5, 3); }
|};
    s "readonly procedure callable from XQuery (III.A)" "2 4 6"
      {|
declare readonly procedure local:double($x as xs:integer) as xs:integer {
  return value $x * 2;
};
for $i in 1 to 3 return local:double($i)
|};
    s "declare xqse function alternate syntax" "720"
      {|
declare xqse function local:fact($n as xs:integer) as xs:integer {
  declare $acc := 1, $i := 1;
  while ($i le $n) { set $acc := $acc * $i; set $i := $i + 1; }
  return value $acc;
};
local:fact(6)
|};
    s_err "non-readonly procedure not callable from expressions" "XPST0017"
      {|
declare procedure local:sideeffect() { return value 1; };
1 + local:sideeffect()
|};
    s "procedures may call procedures" "8"
      {|
declare procedure local:inc($x as xs:integer) as xs:integer { return value $x + 1; };
declare procedure local:twice($x as xs:integer) as xs:integer {
  declare $once := local:inc($x);
  return value local:inc($once);
};
{ return value local:twice(6); }
|};
    s "recursive procedure" "55"
      {|
declare readonly procedure local:fib($n as xs:integer) as xs:integer {
  if ($n le 1) then return value $n;
  return value local:fib($n - 1) + local:fib($n - 2);
};
{ return value local:fib(10); }
|};
    s_err "procedure argument type enforced" "XPTY0004"
      {|
declare procedure local:p($x as xs:integer) { return value $x; };
{ return value local:p('not a number'); }
|};
    s_err "procedure return type enforced" "XPTY0004"
      {|
declare procedure local:p() as xs:integer { return value 'text'; };
{ return value local:p(); }
|};
    s_err "duplicate procedure declaration" "XQST0034"
      {|
declare procedure local:p() { return value 1; };
declare procedure local:p() { return value 2; };
{ return value local:p(); }
|};
    s "procedures and functions may coexist and cooperate" "9"
      {|
declare function local:square($x as xs:integer) as xs:integer { $x * $x };
declare procedure local:run() as xs:integer { return value local:square(3); };
{ return value local:run(); }
|};
  ]

let program_tests =
  [
    s "prolog variables visible in blocks" "11"
      {|
declare variable $base := 10;
{ declare $x := $base + 1; return value $x; }
|};
    case "library programs reject query bodies" (fun () ->
        let session = Xqse.Session.create () in
        check_bool "raises" true
          (match
             Xqse.Session.load_library session
               "declare procedure local:p() { return value 1; }; { return value 2; }"
           with
          | () -> false
          | exception Xdm.Item.Error { code; _ } ->
            code.Xdm.Qname.local = "XQSE0002"));
    case "load_library persists declarations across programs" (fun () ->
        let session = Xqse.Session.create () in
        Xqse.Session.load_library session
          "declare readonly procedure local:three() as xs:integer { return value 3; };";
        check_string "call1" "3" (Xqse.Session.eval_to_string session "local:three()");
        check_string "call2" "6"
          (Xqse.Session.eval_to_string session "local:three() * 2"));
    case "session call API reaches procedures" (fun () ->
        let session = Xqse.Session.create () in
        Xqse.Session.load_library session
          "declare procedure local:add($a as xs:integer, $b as xs:integer) as xs:integer { return value $a + $b; };";
        check_string "call" "5"
          (Xdm.Xml_serialize.seq_to_string
             (Xqse.Session.call session (Xdm.Qname.make ~uri:Xdm.Qname.local_default_ns "add")
                [ Xdm.Item.int 2; Xdm.Item.int 3 ])));
    case "external procedures registered by the host" (fun () ->
        let session = Xqse.Session.create () in
        let log = ref [] in
        Xqse.Session.register_procedure session
          (Xdm.Qname.make ~uri:"urn:host" "log")
          1
          (fun args ->
            log := Xdm.Xml_serialize.seq_to_string (List.hd args) :: !log;
            []);
        Xqse.Session.declare_namespace session "h" "urn:host";
        ignore
          (Xqse.Session.eval session
             {| { iterate $x over (1, 2) { h:log($x); } return value "ok"; } |});
        check_bool "called" true (List.rev !log = [ "1"; "2" ]));
    s_err "bare break is an expression statement, not a break" "XPDY0002"
      "{ break; }";
    s_syntax "set without assign" "{ declare $x := 1; set $x 2; }";
    s_syntax "iterate without over" "{ iterate $x (1, 2) { } }";
  ]

let suites =
  [
    ("xqse.block", block_tests);
    ("xqse.while", while_tests);
    ("xqse.iterate", iterate_tests);
    ("xqse.if", if_tests);
    ("xqse.try", try_tests);
    ("xqse.value-stmt", value_stmt_tests);
    ("xqse.procedures", procedure_tests);
    ("xqse.programs", program_tests);
  ]
