(* XDM core: QNames, atomic values, nodes, items. *)

open Core.Xdm
open Util

let qname_tests =
  [
    case "equal ignores prefix" (fun () ->
        check_bool "eq" true
          (Qname.equal
             (Qname.make ~prefix:"a" ~uri:"u" "n")
             (Qname.make ~prefix:"b" ~uri:"u" "n")));
    case "unequal uri" (fun () ->
        check_bool "ne" false
          (Qname.equal (Qname.make ~uri:"u1" "n") (Qname.make ~uri:"u2" "n")));
    case "to_string with prefix" (fun () ->
        check_string "str" "xs:integer" (Qname.to_string (Qname.xs "integer")));
    case "to_string clark" (fun () ->
        check_string "str" "{u}n" (Qname.to_string (Qname.make ~uri:"u" "n")));
    case "compare orders by uri then local" (fun () ->
        check_bool "lt" true
          (Qname.compare (Qname.make ~uri:"a" "z") (Qname.make ~uri:"b" "a") < 0));
    case "hash consistent with equal" (fun () ->
        check_int "hash" (Qname.hash (Qname.make ~prefix:"p" ~uri:"u" "n"))
          (Qname.hash (Qname.make ~uri:"u" "n")));
  ]

let atomic_tests =
  [
    case "integer to_string" (fun () ->
        check_string "int" "42" (Atomic.to_string (Atomic.Integer 42)));
    case "decimal integral drops point" (fun () ->
        check_string "dec" "3" (Atomic.to_string (Atomic.Decimal 3.0)));
    case "decimal fraction" (fun () ->
        check_string "dec" "2.5" (Atomic.to_string (Atomic.Decimal 2.5)));
    case "double special values" (fun () ->
        check_string "inf" "INF" (Atomic.to_string (Atomic.Double infinity));
        check_string "-inf" "-INF" (Atomic.to_string (Atomic.Double neg_infinity));
        check_string "nan" "NaN" (Atomic.to_string (Atomic.Double nan)));
    case "double exponent form for large values" (fun () ->
        check_string "exp" "1.0E7" (Atomic.to_string (Atomic.Double 1e7)));
    case "boolean lexical" (fun () ->
        check_string "t" "true" (Atomic.to_string (Atomic.Boolean true)));
    case "cast string to integer" (fun () ->
        check_bool "cast" true
          (Atomic.cast_to (Atomic.String " 7 ") (Qname.xs "integer")
          = Atomic.Integer 7));
    case "cast bad string to integer fails" (fun () ->
        check_bool "castable" false
          (Atomic.can_cast_to (Atomic.String "x7") (Qname.xs "integer")));
    case "cast decimal rejects exponent" (fun () ->
        check_bool "castable" false
          (Atomic.can_cast_to (Atomic.String "1e3") (Qname.xs "decimal")));
    case "cast double accepts INF" (fun () ->
        check_bool "castable" true
          (Atomic.can_cast_to (Atomic.String "INF") (Qname.xs "double")));
    case "cast boolean from 1/0" (fun () ->
        check_bool "one" true
          (Atomic.cast_to (Atomic.Untyped "1") (Qname.xs "boolean")
          = Atomic.Boolean true);
        check_bool "zero" true
          (Atomic.cast_to (Atomic.Untyped "0") (Qname.xs "boolean")
          = Atomic.Boolean false));
    case "cast dateTime to date" (fun () ->
        check_bool "date" true
          (Atomic.cast_to (Atomic.DateTime "2007-12-01T10:00:00") (Qname.xs "date")
          = Atomic.Date "2007-12-01"));
    case "cast date to dateTime" (fun () ->
        check_bool "dt" true
          (Atomic.cast_to (Atomic.Date "2007-12-01") (Qname.xs "dateTime")
          = Atomic.DateTime "2007-12-01T00:00:00"));
    case "derives_from integer < decimal" (fun () ->
        check_bool "derives" true
          (Atomic.derives_from (Qname.xs "integer") (Qname.xs "decimal")));
    case "derives_from anyAtomicType" (fun () ->
        check_bool "derives" true
          (Atomic.derives_from (Qname.xs "date") (Qname.xs "anyAtomicType")));
    case "arith integer promotion" (fun () ->
        check_bool "int+int" true
          (Atomic.arith Atomic.Add (Atomic.Integer 2) (Atomic.Integer 3)
          = Atomic.Integer 5));
    case "div of integers is decimal" (fun () ->
        check_bool "div" true
          (Atomic.arith Atomic.Div (Atomic.Integer 1) (Atomic.Integer 2)
          = Atomic.Decimal 0.5));
    case "idiv truncates" (fun () ->
        check_bool "idiv" true
          (Atomic.arith Atomic.Idiv (Atomic.Integer 7) (Atomic.Integer 2)
          = Atomic.Integer 3));
    case "mod sign follows dividend" (fun () ->
        check_bool "mod" true
          (Atomic.arith Atomic.Mod (Atomic.Integer (-7)) (Atomic.Integer 2)
          = Atomic.Integer (-1)));
    case "integer division by zero raises" (fun () ->
        check_bool "raises" true
          (match Atomic.arith Atomic.Idiv (Atomic.Integer 1) (Atomic.Integer 0) with
          | _ -> false
          | exception Atomic.Cast_error _ -> true));
    case "compare numeric across tower" (fun () ->
        check_int "cmp" 0
          (Atomic.compare_values (Atomic.Integer 2) (Atomic.Decimal 2.0)));
    case "compare strings by codepoint" (fun () ->
        check_bool "lt" true
          (Atomic.compare_values (Atomic.String "a") (Atomic.String "b") < 0));
    case "incomparable types raise" (fun () ->
        check_bool "raises" true
          (match Atomic.compare_values (Atomic.Integer 1) (Atomic.Date "2007-01-01") with
          | _ -> false
          | exception Atomic.Cast_error _ -> true));
    case "NaN unequal to itself via equal_values" (fun () ->
        check_bool "nan" false
          (Atomic.equal_values (Atomic.Double nan) (Atomic.Double nan)));
    case "deep_equal treats NaN = NaN" (fun () ->
        check_bool "nan" true
          (Atomic.deep_equal (Atomic.Double nan) (Atomic.Double nan)));
    prop "cast_to string then back preserves integers"
      QCheck.(int_range (-10000) 10000)
      (fun i ->
        let s = Atomic.cast_to (Atomic.Integer i) (Qname.xs "string") in
        Atomic.cast_to s (Qname.xs "integer") = Atomic.Integer i);
    prop "compare_values is antisymmetric on integers"
      QCheck.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))
      (fun (a, b) ->
        let x = Atomic.Integer a and y = Atomic.Integer b in
        Atomic.compare_values x y = -Atomic.compare_values y x);
  ]

let node_tests =
  let mk () =
    (* <root><a i="1">x</a><b/><a i="2">y</a></root> *)
    let a1 = Node.element ~attrs:[ (Qname.local "i", "1") ] (Qname.local "a")
        [ Node.text "x" ] in
    let b = Node.element (Qname.local "b") [] in
    let a2 = Node.element ~attrs:[ (Qname.local "i", "2") ] (Qname.local "a")
        [ Node.text "y" ] in
    let root = Node.element (Qname.local "root") [ a1; b; a2 ] in
    (root, a1, b, a2)
  in
  [
    case "string_value concatenates descendant text" (fun () ->
        let root, _, _, _ = mk () in
        check_string "sv" "xy" (Node.string_value root));
    case "children excludes attributes" (fun () ->
        let root, _, _, _ = mk () in
        check_int "children" 3 (List.length (Node.children root)));
    case "attribute_value" (fun () ->
        let _, a1, _, _ = mk () in
        check_bool "attr" true
          (Node.attribute_value a1 (Qname.local "i") = Some "1"));
    case "parent is set by construction" (fun () ->
        let root, a1, _, _ = mk () in
        check_bool "parent" true
          (match Node.parent a1 with
          | Some p -> Node.is_same p root
          | None -> false));
    case "descendants in document order" (fun () ->
        let root, _, _, _ = mk () in
        let names =
          List.filter_map
            (fun n -> Option.map (fun q -> q.Qname.local) (Node.name n))
            (Node.descendants root)
        in
        check_bool "order" true (names = [ "a"; "b"; "a" ]));
    case "following and preceding siblings" (fun () ->
        let _, _, b, a2 = mk () in
        check_int "following" 1 (List.length (Node.following_siblings b));
        check_int "preceding" 2 (List.length (Node.preceding_siblings a2)));
    case "doc_order ancestor first" (fun () ->
        let root, a1, _, a2 = mk () in
        check_bool "root<a1" true (Node.doc_order root a1 < 0);
        check_bool "a1<a2" true (Node.doc_order a1 a2 < 0));
    case "doc_order attribute after element before children" (fun () ->
        let _, a1, _, _ = mk () in
        let attr = List.hd (Node.attributes a1) in
        let text = List.hd (Node.children a1) in
        check_bool "el<attr" true (Node.doc_order a1 attr < 0);
        check_bool "attr<text" true (Node.doc_order attr text < 0));
    case "detach removes from parent" (fun () ->
        let root, a1, _, _ = mk () in
        Node.detach a1;
        check_int "children" 2 (List.length (Node.children root));
        check_bool "no parent" true (Node.parent a1 = None));
    case "insert_sibling before" (fun () ->
        let root, _, b, _ = mk () in
        Node.insert_sibling b ~pos:`Before [ Node.element (Qname.local "c") [] ];
        let names =
          List.filter_map
            (fun n -> Option.map (fun q -> q.Qname.local) (Node.name n))
            (Node.children root)
        in
        check_bool "order" true (names = [ "a"; "c"; "b"; "a" ]));
    case "set_attribute replaces existing" (fun () ->
        let _, a1, _, _ = mk () in
        Node.set_attribute a1 (Qname.local "i") "9";
        check_bool "attr" true
          (Node.attribute_value a1 (Qname.local "i") = Some "9");
        check_int "count" 1 (List.length (Node.attributes a1)));
    case "replace_children_with_text" (fun () ->
        let _, a1, _, _ = mk () in
        Node.replace_children_with_text a1 "new";
        check_string "sv" "new" (Node.string_value a1));
    case "replace_children_with_text empty string removes children" (fun () ->
        let _, a1, _, _ = mk () in
        Node.replace_children_with_text a1 "";
        check_int "children" 0 (List.length (Node.children a1)));
    case "deep_copy detaches and gets fresh identity" (fun () ->
        let _, a1, _, _ = mk () in
        let copy = Node.deep_copy a1 in
        check_bool "identity" false (Node.is_same copy a1);
        check_bool "parent" true (Node.parent copy = None);
        check_bool "deep_equal" true (Node.deep_equal copy a1));
    case "deep_equal ignores comments" (fun () ->
        let x = Node.element (Qname.local "e") [ Node.comment "c"; Node.text "t" ] in
        let y = Node.element (Qname.local "e") [ Node.text "t" ] in
        check_bool "eq" true (Node.deep_equal x y));
    case "deep_equal attribute order irrelevant" (fun () ->
        let x = Node.element ~attrs:[ (Qname.local "a", "1"); (Qname.local "b", "2") ]
            (Qname.local "e") [] in
        let y = Node.element ~attrs:[ (Qname.local "b", "2"); (Qname.local "a", "1") ]
            (Qname.local "e") [] in
        check_bool "eq" true (Node.deep_equal x y));
    case "typed_value of element is untyped atomic" (fun () ->
        let _, a1, _, _ = mk () in
        check_bool "tv" true (Node.typed_value a1 = [ Atomic.Untyped "x" ]));
    case "append_child rejects attribute" (fun () ->
        let root, _, _, _ = mk () in
        check_bool "raises" true
          (match Node.append_child root (Node.attribute (Qname.local "x") "1") with
          | () -> false
          | exception Invalid_argument _ -> true));
  ]

let item_tests =
  [
    case "effective_boolean_value rules" (fun () ->
        check_bool "empty" false (Item.effective_boolean_value []);
        check_bool "node" true
          (Item.effective_boolean_value
             [ Item.Node (Node.text "x"); Item.Atomic (Atomic.Integer 0) ]);
        check_bool "zero" false
          (Item.effective_boolean_value [ Item.Atomic (Atomic.Integer 0) ]);
        check_bool "empty string" false
          (Item.effective_boolean_value [ Item.Atomic (Atomic.String "") ]);
        check_bool "nan" false
          (Item.effective_boolean_value [ Item.Atomic (Atomic.Double nan) ]));
    case "ebv of two atomics raises FORG0006" (fun () ->
        check_bool "raises" true
          (match
             Item.effective_boolean_value
               [ Item.Atomic (Atomic.Integer 1); Item.Atomic (Atomic.Integer 2) ]
           with
          | _ -> false
          | exception Item.Error { code; _ } -> code.Qname.local = "FORG0006"));
    case "atomize node" (fun () ->
        let el = Node.element (Qname.local "e") [ Node.text "42" ] in
        check_bool "atomize" true
          (Item.atomize [ Item.Node el ] = [ Atomic.Untyped "42" ]));
    case "doc_sort dedupes by identity" (fun () ->
        let el = Node.element (Qname.local "e") [] in
        check_int "dedupe" 1
          (List.length (Item.doc_sort [ Item.Node el; Item.Node el ])));
    case "one_node on atomic raises XPTY0004" (fun () ->
        check_bool "raises" true
          (match Item.one_node [ Item.Atomic (Atomic.Integer 1) ] with
          | _ -> false
          | exception Item.Error { code; _ } -> code.Qname.local = "XPTY0004"));
  ]

let suites =
  [
    ("xdm.qname", qname_tests);
    ("xdm.atomic", atomic_tests);
    ("xdm.node", node_tests);
    ("xdm.item", item_tests);
  ]
