(* SDO datagraphs and change summaries, plus the web-service substrate. *)

open Util
open Core
open Core.Xdm

let profile_xml =
  {|<p:CustomerProfile xmlns:p="ld:CustomerProfile">
  <CID>007</CID>
  <LAST_NAME>Carrey</LAST_NAME>
  <Orders>
    <ORDERS><OID>1</OID><STATUS>OPEN</STATUS></ORDERS>
    <ORDERS><OID>2</OID><STATUS>SHIPPED</STATUS></ORDERS>
  </Orders>
</p:CustomerProfile>|}

let mk () = Sdo.create (Xml_parse.parse_fragment profile_xml)

let path_tests =
  [
    case "path_of_string with and without indices" (fun () ->
        check_bool "parsed" true
          (Sdo.path_of_string "Orders/ORDERS[2]/STATUS"
          = [ ("Orders", 1); ("ORDERS", 2); ("STATUS", 1) ]));
    case "path round trip" (fun () ->
        let p = [ ("A", 1); ("B", 3); ("C", 1) ] in
        check_bool "rt" true (Sdo.path_of_string (Sdo.path_to_string p) = p));
  ]

let change_tests =
  [
    case "graph starts clean" (fun () ->
        check_bool "clean" true (not (Sdo.is_dirty (mk ()))));
    case "create deep-copies: server data unaffected" (fun () ->
        let orig = Xml_parse.parse_fragment profile_xml in
        let dg = Sdo.create orig in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        check_string "orig" "Carrey"
          (Node.string_value
             (List.nth (List.filter (fun c -> Node.kind c = Node.Element)
                          (Node.children (List.hd orig))) 1)));
    case "set_leaf records old value once" (fun () ->
        let dg = mk () in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Curry";
        (match Sdo.changes dg with
        | [ Sdo.Modified (1, oc) ] ->
          check_int "one leaf" 1 (List.length oc.Sdo.leaves);
          check_string "old" "Carrey" (List.hd oc.Sdo.leaves).Sdo.old_value
        | _ -> Alcotest.fail "expected one Modified change");
        check_string "current" "Curry" (Sdo.get_leaf dg 1 [ ("LAST_NAME", 1) ]));
    case "setting the same value is not a change" (fun () ->
        let dg = mk () in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carrey";
        check_bool "clean" true (not (Sdo.is_dirty dg)));
    case "nested leaf change" (fun () ->
        let dg = mk () in
        Sdo.set_leaf dg 1 (Sdo.path_of_string "Orders/ORDERS[2]/STATUS") "CLOSED";
        (match Sdo.changes dg with
        | [ Sdo.Modified (1, oc) ] ->
          check_bool "path" true
            ((List.hd oc.Sdo.leaves).Sdo.leaf_path
            = [ ("Orders", 1); ("ORDERS", 2); ("STATUS", 1) ])
        | _ -> Alcotest.fail "expected Modified"));
    case "delete_element records the old element" (fun () ->
        let dg = mk () in
        Sdo.delete_element dg 1 (Sdo.path_of_string "Orders/ORDERS[1]");
        (match Sdo.changes dg with
        | [ Sdo.Modified (1, oc) ] ->
          check_int "deletes" 1 (List.length oc.Sdo.element_deletes);
          check_string "old oid" "1OPEN"
            (Node.string_value (List.hd oc.Sdo.element_deletes).Sdo.deleted_old)
        | _ -> Alcotest.fail "expected Modified");
        (* the live object no longer has the element *)
        check_string "remaining" "2"
          (Sdo.get_leaf dg 1 (Sdo.path_of_string "Orders/ORDERS[1]/OID")));
    case "insert_element appends and records" (fun () ->
        let dg = mk () in
        let row =
          Node.element (Qname.local "ORDERS")
            [ Node.element (Qname.local "OID") [ Node.text "3" ];
              Node.element (Qname.local "STATUS") [ Node.text "NEW" ] ]
        in
        Sdo.insert_element dg 1 [ ("Orders", 1) ] row;
        check_string "inserted" "3"
          (Sdo.get_leaf dg 1 (Sdo.path_of_string "Orders/ORDERS[3]/OID"));
        match Sdo.changes dg with
        | [ Sdo.Modified (1, oc) ] ->
          check_int "inserts" 1 (List.length oc.Sdo.element_inserts)
        | _ -> Alcotest.fail "expected Modified");
    case "add_object records a create" (fun () ->
        let dg = mk () in
        Sdo.add_object dg (Node.element (Qname.local "CustomerProfile") []);
        check_int "roots" 2 (List.length (Sdo.roots dg));
        check_bool "created" true
          (match Sdo.changes dg with [ Sdo.Created 2 ] -> true | _ -> false));
    case "delete_object records old content" (fun () ->
        let dg = mk () in
        Sdo.delete_object dg 1;
        check_int "roots" 0 (List.length (Sdo.roots dg));
        match Sdo.changes dg with
        | [ Sdo.Deleted (1, old) ] ->
          check_bool "old" true (String.length (Node.string_value old) > 0)
        | _ -> Alcotest.fail "expected Deleted");
    case "create-then-delete cancels out" (fun () ->
        let dg = mk () in
        Sdo.add_object dg (Node.element (Qname.local "CustomerProfile") []);
        Sdo.delete_object dg 2;
        check_bool "clean" true (not (Sdo.is_dirty dg)));
    case "changes on created objects are not tracked" (fun () ->
        let dg = mk () in
        Sdo.add_object dg
          (Node.element (Qname.local "CustomerProfile")
             [ Node.element (Qname.local "CID") [ Node.text "X" ] ]);
        Sdo.set_leaf dg 2 [ ("CID", 1) ] "Y";
        check_bool "only create" true
          (match Sdo.changes dg with [ Sdo.Created 2 ] -> true | _ -> false));
  ]

let wire_tests =
  [
    case "serialized form matches Figure 4's shape" (fun () ->
        let dg = mk () in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        let wire = Sdo.serialize dg in
        let contains needle =
          let n = String.length wire and m = String.length needle in
          let rec go i = i + m <= n && (String.sub wire i m = needle || go (i + 1)) in
          go 0
        in
        check_bool "datagraph root" true (contains "sdo:datagraph");
        check_bool "changeSummary" true (contains "<changeSummary>");
        check_bool "sdo:ref" true (contains "sdo:ref=\"#/sdo:datagraph/");
        check_bool "old value inside summary" true (contains "<LAST_NAME>Carrey</LAST_NAME>");
        check_bool "new value in body" true (contains "<LAST_NAME>Carey</LAST_NAME>"));
    case "round trip: leaf change" (fun () ->
        let dg = mk () in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        let dg' = Sdo.parse (Sdo.serialize dg) in
        check_string "current" "Carey" (Sdo.get_leaf dg' 1 [ ("LAST_NAME", 1) ]);
        match Sdo.changes dg' with
        | [ Sdo.Modified (1, oc) ] ->
          check_string "old" "Carrey" (List.hd oc.Sdo.leaves).Sdo.old_value
        | _ -> Alcotest.fail "changes lost in round trip");
    case "round trip: nested leaf via sdo:oldValue" (fun () ->
        let dg = mk () in
        Sdo.set_leaf dg 1 (Sdo.path_of_string "Orders/ORDERS[2]/STATUS") "CLOSED";
        let dg' = Sdo.parse (Sdo.serialize dg) in
        match Sdo.changes dg' with
        | [ Sdo.Modified (1, oc) ] ->
          let lc = List.hd oc.Sdo.leaves in
          check_string "old" "SHIPPED" lc.Sdo.old_value;
          check_bool "path" true
            (lc.Sdo.leaf_path = Sdo.path_of_string "Orders/ORDERS[2]/STATUS")
        | _ -> Alcotest.fail "changes lost");
    case "round trip: deletes and creates" (fun () ->
        let dg = mk () in
        Sdo.delete_object dg 1;
        Sdo.add_object dg
          (List.hd (Xml_parse.parse_fragment "<p:CustomerProfile xmlns:p='ld:CustomerProfile'><CID>X</CID></p:CustomerProfile>"));
        let dg' = Sdo.parse (Sdo.serialize dg) in
        check_int "roots" 1 (List.length (Sdo.roots dg'));
        check_bool "kinds" true
          (match Sdo.changes dg' with
          | [ Sdo.Deleted (1, _); Sdo.Created 2 ] -> true
          | _ -> false));
    case "round trip: element delete and insert" (fun () ->
        let dg = mk () in
        Sdo.delete_element dg 1 (Sdo.path_of_string "Orders/ORDERS[1]");
        Sdo.insert_element dg 1 [ ("Orders", 1) ]
          (Node.element (Qname.local "ORDERS")
             [ Node.element (Qname.local "OID") [ Node.text "3" ] ]);
        let dg' = Sdo.parse (Sdo.serialize dg) in
        match Sdo.changes dg' with
        | [ Sdo.Modified (1, oc) ] ->
          check_int "deletes" 1 (List.length oc.Sdo.element_deletes);
          check_int "inserts" 1 (List.length oc.Sdo.element_inserts);
          check_string "inserted resolved" "3"
            (Node.string_value (List.hd oc.Sdo.element_inserts).Sdo.inserted_node)
        | _ -> Alcotest.fail "changes lost");
    prop "serialize/parse keeps current values for random leaf edits"
      ~count:60
      QCheck.(pair (int_range 1 2) (small_printable_string))
      (fun (order_idx, value) ->
        QCheck.assume (String.length value > 0);
        QCheck.assume
          (String.for_all (fun c -> c <> '<' && c <> '&' && c <> '>') value);
        let dg = mk () in
        let path = [ ("Orders", 1); ("ORDERS", order_idx); ("STATUS", 1) ] in
        Sdo.set_leaf dg 1 path value;
        let dg' = Sdo.parse (Sdo.serialize dg) in
        Sdo.get_leaf dg' 1 path = value);
  ]

let webservice_tests =
  let mk_ws () =
    let ws = Webservice.create ~name:"Echo" ~namespace:"urn:echo" in
    Webservice.add_operation ws
      {
        Webservice.op_name = "echo";
        op_input = Qname.make ~uri:"urn:echo" "echoRequest";
        op_output = Qname.make ~uri:"urn:echo" "echoResponse";
        op_doc = "echoes its input";
        op_handler =
          (fun req ->
            Node.element
              (Qname.make ~uri:"urn:echo" "echoResponse")
              [ Node.text (Node.string_value req) ]);
      };
    ws
  in
  let request s =
    Node.element (Qname.make ~uri:"urn:echo" "echoRequest") [ Node.text s ]
  in
  [
    case "invoke validates and dispatches" (fun () ->
        let ws = mk_ws () in
        let resp = Webservice.invoke ws "echo" (request "hi") in
        check_string "resp" "hi" (Node.string_value resp);
        check_int "count" 1 (Webservice.call_count ws));
    case "unknown operation faults" (fun () ->
        let ws = mk_ws () in
        check_bool "raises" true
          (match Webservice.invoke ws "nope" (request "x") with
          | _ -> false
          | exception Webservice.Fault _ -> true));
    case "wrong request element faults" (fun () ->
        let ws = mk_ws () in
        check_bool "raises" true
          (match Webservice.invoke ws "echo" (Node.element (Qname.local "bad") []) with
          | _ -> false
          | exception Webservice.Fault _ -> true));
    case "fault injection: next call" (fun () ->
        let ws = mk_ws () in
        Webservice.inject_fault_next ws ~message:"boom";
        (match Webservice.invoke ws "echo" (request "x") with
        | _ -> Alcotest.fail "expected fault"
        | exception Webservice.Fault { message; _ } -> check_string "msg" "boom" message);
        (* next call succeeds again *)
        ignore (Webservice.invoke ws "echo" (request "y")));
    case "fail_every n faults deterministically" (fun () ->
        let ws = mk_ws () in
        Webservice.set_fail_every ws (Some 3);
        let outcomes =
          List.init 6 (fun i ->
              match Webservice.invoke ws "echo" (request (string_of_int i)) with
              | _ -> true
              | exception Webservice.Fault _ -> false)
        in
        check_bool "pattern" true (outcomes = [ true; true; false; true; true; false ]));
    case "latency accounting" (fun () ->
        let ws = mk_ws () in
        Webservice.set_latency ws 2.5;
        ignore (Webservice.invoke ws "echo" (request "a"));
        ignore (Webservice.invoke ws "echo" (request "b"));
        check_bool "latency" true (Webservice.total_latency ws = 5.0));
    case "wsdl summary lists operations" (fun () ->
        let ws = mk_ws () in
        let s = Webservice.wsdl_summary ws in
        check_bool "has op" true
          (let m = "operation echo" in
           let n = String.length s and k = String.length m in
           let rec go i = i + k <= n && (String.sub s i k = m || go (i + 1)) in
           go 0));
  ]

let suites =
  [
    ("sdo.paths", path_tests);
    ("sdo.changes", change_tests);
    ("sdo.wire", wire_tests);
    ("webservice", webservice_tests);
  ]
