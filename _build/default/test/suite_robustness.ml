(* Robustness: deep nesting, large inputs, error positions, adversarial
   but legal syntax, and end-to-end randomized update round trips. *)

open Util
open Core
module R = Relational
module F = Fixtures.Customer_profile

let stress_tests =
  [
    case "deeply nested parentheses parse and evaluate" (fun () ->
        let depth = 200 in
        let src =
          String.concat "" (List.init depth (fun _ -> "("))
          ^ "1"
          ^ String.concat "" (List.init depth (fun _ -> " + 1)"))
        in
        check_string "value" (string_of_int (depth + 1)) (xq src));
    case "deeply nested element constructors" (fun () ->
        let depth = 100 in
        let src =
          String.concat "" (List.init depth (fun i -> Printf.sprintf "<e%d>" i))
          ^ "x"
          ^ String.concat ""
              (List.init depth (fun i -> Printf.sprintf "</e%d>" (depth - 1 - i)))
        in
        check_string "depth" (string_of_int depth)
          (xq (Printf.sprintf "count((%s)/descendant-or-self::*)" src)));
    case "large sequence aggregation" (fun () ->
        check_string "sum" "50005000" (xq "sum(1 to 10000)"));
    case "large string building" (fun () ->
        check_string "len" "30000"
          (xq "string-length(string-join(for $i in 1 to 10000 return 'abc', ''))"));
    case "many FLWOR variables in scope" (fun () ->
        let src =
          String.concat " "
            (List.init 26 (fun i ->
                 Printf.sprintf "let $v%c := %d" (Char.chr (97 + i)) i))
          ^ " return $va + $vz"
        in
        check_string "sum" "25" (xq src));
    case "long XQSE loop with reassignment" (fun () ->
        check_string "loop" "100000"
          (xqse
             {| {
               declare $i := 0;
               while ($i lt 100000) { set $i := $i + 1; }
               return value $i;
             } |}));
    case "iterate over a 10k binding sequence" (fun () ->
        check_string "sum" "50005000"
          (xqse
             {| {
               declare $sum := 0;
               iterate $x over 1 to 10000 { set $sum := $sum + $x; }
               return value $sum;
             } |}));
    case "blocks nest 50 deep" (fun () ->
        let depth = 50 in
        let src =
          "{ declare $x := 0;"
          ^ String.concat "" (List.init depth (fun _ -> "{ set $x := $x + 1;"))
          ^ String.concat "" (List.init depth (fun _ -> "}"))
          ^ " return value $x; }"
        in
        check_string "nested" (string_of_int depth) (xqse src));
  ]

let error_position_tests =
  [
    case "syntax error reports the right line" (fun () ->
        match xq "1 +\n2 +\n* 3" with
        | _ -> Alcotest.fail "expected syntax error"
        | exception Xquery.Parser.Syntax_error { line; _ } ->
          check_int "line" 3 line);
    case "lex error has an offset" (fun () ->
        match xq "1 ! 2" with
        | _ -> Alcotest.fail "expected lex error"
        | exception Xquery.Lexer.Lex_error { pos; _ } ->
          check_bool "pos" true (pos >= 2));
    case "error inside a constructor points into it" (fun () ->
        match xq "<a>{ 1 +\n+ }</a>" with
        | _ -> Alcotest.fail "expected syntax error"
        | exception Xquery.Parser.Syntax_error { line; _ } ->
          check_bool "line" true (line >= 1));
    case "messages name the offending construct" (fun () ->
        match xq "for $x in (1,2) order $x return $x" with
        | _ -> Alcotest.fail "expected syntax error"
        | exception Xquery.Parser.Syntax_error { message; _ } ->
          check_bool "nonempty" true (String.length message > 5));
  ]

let adversarial_syntax_tests =
  [
    q "keywords as element names" "<for><let/><return/></for>"
      "<for><let/><return/></for>";
    q "keywords as path steps" "1"
      "count((<a><for/></a>)/for)";
    q "div as element and operator" "4"
      "count((<div><div/><div/></div>)//div) + (4 div 2)";
    q "operator keywords in value positions" "3"
      "let $and := 1 let $or := 2 return $and + $or";
    q "if as variable name" "7" "let $if := 7 return $if";
    q "comments between any tokens" "3"
      "1(::)+(: x (: nested :) y :)2";
    q "string with both quote kinds" "it's \"quoted\""
      {|concat("it's ", '"quoted"')|};
    q "attribute with single quotes inside double" "<a q=\"don't\"/>"
      {|<a q="don't"/>|};
    q "braces escaped in text" "<t>{not an expr}</t>" "<t>{{not an expr}}</t>";
    q "unary chains" "-3" "- + - + -3";
    q_syntax "empty enclosed expression is invalid (XQuery 1.0)" "<a>{}</a>";
    q "predicates on literals in parens" "2" "(1, 2, 3)[2]";
    q "numeric edge: big integers" "4611686018427387903"
      "4611686018427387903";
    s "xqse keyword-as-function shadowing" "done"
      {|declare function local:set($x) { $x };
        { declare $r := local:set("done"); return value $r; }|};
  ]

let decompose_roundtrip_prop =
  [
    prop "random leaf edits survive the full SDO round trip" ~count:25
      QCheck.(pair (int_range 1 3) (small_list (int_range 0 2)))
      (fun (cid_n, edits) ->
        let env = F.make ~customers:3 () in
        let cid = Printf.sprintf "C%d" cid_n in
        let dg = F.get_profile_by_id env cid in
        QCheck.assume (List.length (Sdo.roots dg) = 1);
        (* apply a random series of edits to mapped top-level leaves *)
        let leaves = [| "LAST_NAME"; "FIRST_NAME" |] in
        let expected = Hashtbl.create 4 in
        List.iteri
          (fun i which ->
            let leaf = leaves.(which mod Array.length leaves) in
            let v = Printf.sprintf "v%d_%d" i which in
            Sdo.set_leaf dg 1 [ (leaf, 1) ] v;
            Hashtbl.replace expected leaf v)
          edits;
        let r = Aldsp.Dataspace.submit env.F.ds env.F.svc dg in
        let ok_commit = r.Aldsp.Dataspace.sr_committed in
        let dg2 = F.get_profile_by_id env cid in
        ok_commit
        && Hashtbl.fold
             (fun leaf v acc -> acc && Sdo.get_leaf dg2 1 [ (leaf, 1) ] = v)
             expected true);
    prop "random nested status edits round trip" ~count:20
      QCheck.(int_range 1 3)
      (fun cid_n ->
        let env = F.make ~customers:3 ~max_orders:3 () in
        let cid = Printf.sprintf "C%d" cid_n in
        let dg = F.get_profile_by_id env cid in
        QCheck.assume (List.length (Sdo.roots dg) = 1);
        let order_count =
          List.length
            (R.Table.select env.F.orders (R.Pred.eq "CID" (R.Value.Text cid)))
        in
        QCheck.assume (order_count > 0);
        let path = Sdo.path_of_string (Printf.sprintf "Orders/ORDERS[%d]/STATUS" order_count) in
        Sdo.set_leaf dg 1 path "ROUNDTRIP";
        let r = Aldsp.Dataspace.submit env.F.ds env.F.svc dg in
        let dg2 = F.get_profile_by_id env cid in
        r.Aldsp.Dataspace.sr_committed
        && Sdo.get_leaf dg2 1 path = "ROUNDTRIP");
  ]

let suites =
  [
    ("robustness.stress", stress_tests);
    ("robustness.error-positions", error_position_tests);
    ("robustness.adversarial-syntax", adversarial_syntax_tests);
    ("robustness.sdo-roundtrip", decompose_roundtrip_prop);
  ]
