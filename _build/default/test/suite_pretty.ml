(* The pretty-printer: printed programs re-parse and evaluate to the
   same results — plus session module-import behavior. *)

open Util
open Core

let reprint_xq src =
  let e = Xquery.Parser.parse_expression (Xquery.Context.default_static ()) src in
  Xquery.Pretty.expr e

(* evaluate source and its pretty-printed form; both must agree *)
let roundtrip_exprs =
  [
    "1 + 2 * 3";
    "(1, 2, 3)[. mod 2 eq 1]";
    "for $x at $i in ('a','b','c') where $i gt 1 order by $x descending return concat($i, $x)";
    "let $d := <a p='1'><b>x</b><b>y</b></a> return string-join($d/b/text(), '|')";
    "if (2 gt 1) then 'y' else 'n'";
    "typeswitch (5) case $i as xs:integer return $i * 2 default return 0";
    "some $x in (1 to 5) satisfies $x idiv 2 eq 2";
    "<out a=\"{1+1}\">text {2+3} tail</out>";
    "element dyn { attribute k { 'v' }, text { 'body' } }";
    "count((<r><k>1</k></r>, <r><k>2</k></r>)[k eq '1'])";
    "(1 to 10)[. gt 3][2]";
    "copy $c := <a><b>1</b></a> modify replace value of node $c/b with 2 return string($c/b)";
    "'x' castable as xs:integer";
    "xs:integer('7') instance of xs:decimal";
    "-(3 + 4)";
    "sum(for $i in 1 to 4 return $i) div count((1, 2))";
  ]

let roundtrip_tests =
  List.map
    (fun src ->
      case ("print . parse = id (semantically): " ^ String.sub src 0 (min 38 (String.length src)))
        (fun () ->
          let printed = reprint_xq src in
          check_string printed (xq src) (xq printed)))
    roundtrip_exprs

let xqse_roundtrip_sources =
  [
    {| { return value "hi"; } |};
    {| { declare $x as xs:integer := 0; while ($x lt 5) { set $x := $x + 2; } return value $x; } |};
    {| { declare $s := (); iterate $v at $i over (5, 6) { set $s := ($s, $v * $i); } return value $s; } |};
    {| { try { fn:error(xs:QName("E"), "m"); } catch (E into $c, $m) { return value $m; } } |};
    {| { declare $r := 0; if (1 lt 2) then set $r := 1 else set $r := 2; return value $r; } |};
    {| declare readonly procedure local:f($n as xs:integer) as xs:integer { return value $n + 1; };
       { return value local:f(41); } |};
    {| declare variable $d := <a><b>0</b></a>;
       { replace value of node $d/b with 9; return value string($d/b); } |};
  ]

let xqse_roundtrip_tests =
  List.mapi
    (fun i src ->
      case (Printf.sprintf "xqse print . parse roundtrip #%d" i) (fun () ->
          let prog =
            Xqse.Parse.parse_program (Xquery.Context.default_static ()) src
          in
          let printed = Xqse.Pretty.program prog in
          check_string printed (xqse src) (xqse printed)))
    xqse_roundtrip_sources

let prop_roundtrip =
  [
    prop "random arithmetic prints and re-evaluates identically" ~count:80
      QCheck.(triple (int_range 1 50) (int_range 1 50) (int_range 0 3))
      (fun (a, b, op) ->
        let ops = [ "+"; "-"; "*"; "idiv" ] in
        let src = Printf.sprintf "(%d %s %d) + %d" a (List.nth ops op) b a in
        xq (reprint_xq src) = xq src);
  ]

let module_tests =
  [
    case "import module loads a registered library" (fun () ->
        let s = Xqse.Session.create () in
        Xqse.Session.register_module s "urn:math"
          {|declare namespace m = "urn:math";
            declare function m:square($x as xs:integer) as xs:integer { $x * $x };|};
        check_string "call" "49"
          (Xqse.Session.eval_to_string s
             {|import module namespace m = "urn:math"; m:square(7)|}));
    case "modules load once per session" (fun () ->
        let s = Xqse.Session.create () in
        Xqse.Session.register_module s "urn:once"
          {|declare namespace o = "urn:once";
            declare function o:f() { 1 };|};
        ignore (Xqse.Session.eval s {|import module namespace o = "urn:once"; o:f()|});
        (* a second import must not re-register (which would raise
           XQST0034 on the duplicate function) *)
        check_string "second import" "1"
          (Xqse.Session.eval_to_string s
             {|import module namespace o = "urn:once"; o:f()|}));
    case "modules may import modules" (fun () ->
        let s = Xqse.Session.create () in
        Xqse.Session.register_module s "urn:base"
          {|declare namespace b = "urn:base";
            declare function b:one() { 1 };|};
        Xqse.Session.register_module s "urn:mid"
          {|import module namespace b = "urn:base";
            declare namespace mid = "urn:mid";
            declare function mid:two() { b:one() + 1 };|};
        check_string "chained" "2"
          (Xqse.Session.eval_to_string s
             {|import module namespace mid = "urn:mid"; mid:two()|}));
    case "importing an unregistered module fails with XQST0059" (fun () ->
        let s = Xqse.Session.create () in
        match Xqse.Session.eval s {|import module namespace x = "urn:nope"; 1|} with
        | _ -> Alcotest.fail "expected XQST0059"
        | exception Xdm.Item.Error { code; _ } ->
          check_string "code" "XQST0059" code.Xdm.Qname.local);
    case "module may contain XQSE procedures" (fun () ->
        let s = Xqse.Session.create () in
        Xqse.Session.register_module s "urn:procs"
          {|declare namespace p = "urn:procs";
            declare readonly procedure p:triple($x as xs:integer) as xs:integer {
              declare $r := 0;
              iterate $i over 1 to 3 { set $r := $r + $x; }
              return value $r;
            };|};
        check_string "proc" "15"
          (Xqse.Session.eval_to_string s
             {|import module namespace p = "urn:procs"; p:triple(5)|}));
  ]

let suites =
  [
    ("pretty.roundtrip", roundtrip_tests @ prop_roundtrip);
    ("pretty.xqse-roundtrip", xqse_roundtrip_tests);
    ("modules", module_tests);
  ]
