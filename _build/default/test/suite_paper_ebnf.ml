(* Conformance against the paper's appendix EBNF: every XQSE production
   gets at least one accepted form (executed where meaningful) and,
   where the grammar constrains shape, a rejected form. *)

open Util
open Core

(* parse-only check through the XQSE program parser *)
let parses name src =
  case name (fun () ->
      ignore
        (Xqse.Parse.parse_program (Xquery.Context.default_static ()) src))

let rejects name src =
  case name (fun () ->
      match Xqse.Parse.parse_program (Xquery.Context.default_static ()) src with
      | _ -> Alcotest.failf "expected a syntax error for %s" src
      | exception (Xquery.Parser.Syntax_error _ | Xquery.Lexer.Lex_error _) -> ())

let prolog_productions =
  [
    (* PROLOG ::= ... (VARDECL | FUNCTIONDECL | PROCEDUREDECL | OPTIONDECL) ... *)
    parses "prolog mixes declarations in either group order"
      {|declare namespace a = "urn:a";
        declare variable $v := 1;
        declare function local:f() { 1 };
        declare procedure local:p() { return value 1; };
        declare option local:o "x";
        $v|};
    (* PROCEDUREDECL ::= "declare" ("readonly")? "procedure" QNAME "(" PARAMLIST? ")"
                         ("as" SEQUENCETYPE)? (BLOCK | "external") *)
    parses "proceduredecl minimal" "declare procedure local:p() { };";
    parses "proceduredecl readonly with type"
      "declare readonly procedure local:p($a as xs:integer) as xs:integer { return value $a; };";
    parses "proceduredecl external" "declare procedure local:p() external;";
    parses "proceduredecl multiple parameters"
      "declare procedure local:p($a, $b as xs:string, $c as item()*) { };";
    rejects "proceduredecl without name" "declare procedure () { };";
    (* QUERYBODY ::= EXPR | BLOCK *)
    parses "query body as expression" "1 + 1";
    parses "query body as block" "{ return value 1; }";
  ]

let statement_productions =
  [
    (* BLOCK ::= "{" (BLOCKDECL ";")* ((SIMPLESTATEMENT ";") | BLOCKSTATEMENT (";")?)* "}" *)
    s "empty block" "" "{ }";
    parses "trailing semicolon after block statement optional"
      "{ while (false()) { } }";
    parses "trailing semicolon after block statement allowed"
      "{ while (false()) { }; }";
    rejects "missing semicolon after simple statement" "{ set $x := 1 set $y := 2; }";
    rejects "block declarations must precede statements"
      "{ set $x := 1; declare $y := 2; }";
    (* BLOCKDECL ::= "declare" "$" VARNAME TYPEDECLARATION? (":=" VALUESTATEMENT)?
                     ("," "$" VARNAME ...)* *)
    s "blockdecl with and without init and type" "1"
      "{ declare $a, $b as xs:integer := 1, $c := 'x'; return value $b; }";
    (* SETSTATEMENT ::= "set" "$" VARNAME ":=" VALUESTATEMENT *)
    s "set statement" "2" "{ declare $x := 1; set $x := 2; return value $x; }";
    rejects "set requires :=" "{ declare $x := 1; set $x = 2; }";
    (* RETURNSTATEMENT ::= "return" "value" VALUESTATEMENT *)
    s "return value statement" "ok" {| { return value "ok"; } |};
    rejects "return without value keyword is not a statement"
      "{ return 1; }";
    (* WHILESTATEMENT ::= "while" "(" NONUPDATINGEXPR ")" BLOCK *)
    parses "while requires a block"
      "{ declare $x := 0; while ($x lt 3) { set $x := $x + 1; } }";
    rejects "while body must be a block"
      "{ declare $x := 0; while ($x lt 3) set $x := $x + 1; }";
    (* ITERATESTATEMENT ::= "iterate" "$" VARNAME POSITIONALVAR? "over" VALUESTATEMENT BLOCK *)
    parses "iterate minimal" "{ iterate $x over (1, 2) { } }";
    parses "iterate with positional variable" "{ iterate $x at $i over (1, 2) { } }";
    rejects "iterate body must be a block" "{ iterate $x over (1, 2) set $y := $x; }";
    (* IFSTATEMENT ::= "if" "(" NONUPDATINGEXPR ")" "then" STATEMENT ("else" STATEMENT)? *)
    parses "if statement without else" "{ declare $r := 0; if (1 lt 2) then set $r := 1; }";
    parses "if statement with statement branches"
      "{ declare $r := 0; if (1 lt 2) then { set $r := 1; } else { set $r := 2; }; }";
    (* TRYSTATEMENT ::= "try" BLOCK CATCHCLAUSESTATEMENT+ *)
    parses "try with several catch clauses"
      {|declare namespace p1 = "urn:p1";
        { try { } catch (E1) { } catch (p1:*) { } catch (*:local) { } catch (*:*) { } catch (*) { } }|};
    rejects "try requires at least one catch" "{ try { } }";
    (* CATCHCLAUSESTATEMENT "into" forms: 1 to 3 variables *)
    parses "catch into one" "{ try { } catch (* into $e) { } }";
    parses "catch into two" "{ try { } catch (* into $e, $m) { } }";
    parses "catch into three" "{ try { } catch (* into $e, $m, $d) { } }";
    (* CONTINUESTATEMENT / BREAKSTATEMENT ::= name "(" ")" *)
    parses "continue and break parenthesized"
      "{ iterate $x over (1, 2) { continue(); }; while (false()) { break(); } }";
    (* PROCEDUREBLOCK ::= "procedure" BLOCK *)
    s "procedure block as a value statement" "5"
      "{ declare $v := procedure { return value 5; }; return value $v; }";
    (* UPDATESTATEMENT ::= EXPRSINGLE (updating) *)
    s "update statement from an updating expression" "done"
      {|declare variable $d := <a><b>0</b></a>;
        { replace value of node $d/b with 1; return value "done"; }|};
    (* PROCEDURECALL ::= FUNCTIONCALL restricted to procedures *)
    s "procedure call statement" "7"
      {|declare procedure local:bump($x as xs:integer) as xs:integer { return value $x + 1; };
        { declare $r := local:bump(6); return value $r; }|};
  ]

(* The four sample-usage sources from section III.D parse as written in
   the fixtures (full execution is covered by the integration suite). *)
let usecase_sources =
  [
    parses "use case 1 source" Fixtures.Employees.uc1_delete_source;
    parses "use case 2 source" Fixtures.Employees.uc2_chain_source;
    parses "use case 3 source" Fixtures.Employees.uc3_etl_source;
    parses "use case 4 source" Fixtures.Employees.uc4_replicate_source;
    parses "figure 3 source" Fixtures.Customer_profile.profile_source;
  ]

(* Statements are NOT composable inside expressions (section IV: the
   XQueryP contrast). *)
let composability_tests =
  [
    rejects "while is not an expression" "1 + (while (false()) { })";
    rejects "set is not an expression" "let $x := (set $y := 1) return 0";
    rejects "blocks are not expressions" "1 + { return value 1; }";
    s_err "procedures are not functions inside expressions" "XPST0017"
      {|declare procedure local:p() { return value 1; };
        2 * local:p()|};
    s "readonly procedures ARE functions inside expressions" "2"
      {|declare readonly procedure local:p() as xs:integer { return value 1; };
        2 * local:p()|};
  ]

let suites =
  [
    ("ebnf.prolog", prolog_productions);
    ("ebnf.statements", statement_productions);
    ("ebnf.paper-sources", usecase_sources);
    ("ebnf.composability", composability_tests);
  ]
