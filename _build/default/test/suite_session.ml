(* Session persistence: library variables, globals across programs, and
   optimizer equivalence at the XQSE statement level. *)

open Util
open Core

let persistence_tests =
  [
    case "library variables persist as globals" (fun () ->
        let s = Xqse.Session.create () in
        Xqse.Session.load_library s "declare variable $base := 100;";
        check_string "read" "101" (Xqse.Session.eval_to_string s "$base + 1");
        check_string "again" "200" (Xqse.Session.eval_to_string s "$base * 2"));
    case "library variables may depend on library functions" (fun () ->
        let s = Xqse.Session.create () in
        Xqse.Session.load_library s
          {|declare function local:five() { 5 };
            declare variable $ten := local:five() * 2;|};
        check_string "value" "10" (Xqse.Session.eval_to_string s "$ten"));
    case "later libraries see earlier globals" (fun () ->
        let s = Xqse.Session.create () in
        Xqse.Session.load_library s "declare variable $a := 3;";
        Xqse.Session.load_library s "declare variable $b := $a * 3;";
        check_string "chained" "9" (Xqse.Session.eval_to_string s "$b"));
    case "XQSE procedures read session globals" (fun () ->
        let s = Xqse.Session.create () in
        Xqse.Session.load_library s
          {|declare variable $rate := 2;
            declare readonly procedure local:scale($x as xs:integer) as xs:integer {
              return value $x * $rate;
            };|};
        check_string "uses global" "14" (Xqse.Session.eval_to_string s "local:scale(7)"));
    case "per-program declarations do not leak into the session" (fun () ->
        let s = Xqse.Session.create () in
        ignore
          (Xqse.Session.eval s
             "declare function local:tmp() { 1 }; local:tmp()");
        match Xqse.Session.eval s "local:tmp()" with
        | _ -> Alcotest.fail "expected XPST0017"
        | exception Xdm.Item.Error { code; _ } ->
          check_string "code" "XPST0017" code.Xdm.Qname.local);
    case "external library variable is rejected" (fun () ->
        let s = Xqse.Session.create () in
        match Xqse.Session.load_library s "declare variable $x external;" with
        | () -> Alcotest.fail "expected error"
        | exception Xdm.Item.Error { code; _ } ->
          check_string "code" "XPDY0002" code.Xdm.Qname.local);
    case "program-level variables override nothing permanently" (fun () ->
        let s = Xqse.Session.create () in
        Xqse.Session.load_library s "declare variable $v := 1;";
        check_string "shadowed inside program" "2"
          (Xqse.Session.eval_to_string s "declare variable $w := $v + 1; $w");
        check_string "original survives" "1" (Xqse.Session.eval_to_string s "$v"));
  ]

(* XQSE programs evaluated with and without the optimizer must agree —
   exercises the statement-level optimization path of Session. *)
let xqse_equivalence_programs =
  [
    {| {
      declare $sum := 0;
      iterate $x over (for $i in 1 to 20 where $i mod 3 eq 0 return $i) {
        set $sum := $sum + $x;
      }
      return value $sum;
    } |};
    {| {
      declare $hits := 0;
      iterate $a over (<r><k>1</k></r>, <r><k>2</k></r>, <r><k>3</k></r>) {
        declare $matches := (for $b in (<s><k>2</k></s>, <s><k>3</k></s>)
                             where $a/k eq $b/k return $b);
        set $hits := $hits + count($matches);
      }
      return value $hits;
    } |};
    {| {
      declare $r := "";
      if (1 + 1 eq 2) then set $r := concat("a", "b") else set $r := "no";
      while (string-length($r) lt 6) { set $r := concat($r, "c"); }
      return value $r;
    } |};
    {|
declare function local:gen($n as xs:integer) as element(v)* {
  for $i in 1 to $n return <v>{$i}</v>
};
{
  declare $total := 0;
  iterate $v over local:gen(10) {
    if (xs:integer($v) mod 2 eq 0) then continue();
    set $total := $total + xs:integer($v);
  }
  return value $total;
} |};
  ]

let equivalence_tests =
  List.mapi
    (fun i src ->
      case (Printf.sprintf "optimized session = unoptimized session #%d" i)
        (fun () ->
          let on = Xqse.Session.create ~optimize:true () in
          let off = Xqse.Session.create ~optimize:false () in
          check_string "agree"
            (Xqse.Session.eval_to_string off src)
            (Xqse.Session.eval_to_string on src)))
    xqse_equivalence_programs
  @ [
      prop "random XQSE accumulator loops agree across optimizer settings"
        ~count:40
        QCheck.(triple (int_range 1 30) (int_range 1 5) (int_range 0 4))
        (fun (n, step, threshold) ->
          let src =
            Printf.sprintf
              {| {
                declare $acc := 0, $i := 0;
                while ($i lt %d) {
                  set $i := $i + %d;
                  if ($i mod 5 lt %d) then continue();
                  set $acc := $acc + $i;
                }
                return value $acc;
              } |}
              n step threshold
          in
          let on = Xqse.Session.create ~optimize:true () in
          let off = Xqse.Session.create ~optimize:false () in
          Xqse.Session.eval_to_string on src
          = Xqse.Session.eval_to_string off src);
    ]

let suites =
  [
    ("session.persistence", persistence_tests);
    ("session.opt-equivalence", equivalence_tests);
  ]
