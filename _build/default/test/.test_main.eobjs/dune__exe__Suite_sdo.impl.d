test/suite_sdo.ml: Alcotest Core List Node QCheck Qname Sdo String Util Webservice Xml_parse
