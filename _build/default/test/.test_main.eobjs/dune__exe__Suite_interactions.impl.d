test/suite_interactions.ml: Aldsp Core Fixtures Item List Qname Relational Util Xml_serialize Xqse Xquery
