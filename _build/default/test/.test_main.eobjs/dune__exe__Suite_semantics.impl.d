test/suite_semantics.ml: Util
