test/suite_xquery.ml: Core List Util
