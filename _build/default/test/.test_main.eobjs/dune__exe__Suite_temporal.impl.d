test/suite_temporal.ml: Printf QCheck Util
