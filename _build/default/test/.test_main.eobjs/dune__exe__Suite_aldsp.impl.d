test/suite_aldsp.ml: Alcotest Aldsp Core Fixtures Gen Item List Option QCheck Qname Relational Schema Sdo String Util Webservice Xml_parse Xml_serialize Xqse
