test/suite_relational.ml: Alcotest Core Database List Pred QCheck Table Util Value Xa
