test/suite_extensions.ml: Alcotest Aldsp Core Fixtures Hashtbl Item List Node Option Printf QCheck Qname Relational Schema Sdo String Util Xml_parse Xml_serialize Xqse Xquery
