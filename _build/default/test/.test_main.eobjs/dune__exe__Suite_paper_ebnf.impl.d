test/suite_paper_ebnf.ml: Alcotest Core Fixtures Util Xqse Xquery
