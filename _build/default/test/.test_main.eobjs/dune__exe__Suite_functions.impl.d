test/suite_functions.ml: Alcotest Core List Util
