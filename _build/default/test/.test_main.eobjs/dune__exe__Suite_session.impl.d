test/suite_session.ml: Alcotest Core List Printf QCheck Util Xdm Xqse
