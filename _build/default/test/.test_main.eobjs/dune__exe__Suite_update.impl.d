test/suite_update.ml: Core Item List Node Qname Util Xdm Xml_parse Xml_serialize Xquery
