test/suite_integration.ml: Alcotest Aldsp Atomic Core Fixtures Item List Node Option Printf Qname Relational Schema Sdo String Util Webservice Xml_parse Xml_serialize Xqse
