test/suite_xqse.ml: Core List Util Xdm Xqse
