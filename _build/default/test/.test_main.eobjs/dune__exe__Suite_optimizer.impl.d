test/suite_optimizer.ml: Alcotest Core List Printf QCheck String Util Xdm Xquery
