test/suite_pretty.ml: Alcotest Core List Printf QCheck String Util Xdm Xqse Xquery
