test/suite_sqlgen.ml: Alcotest Aldsp Core Fixtures List Relational Sdo Util Xdm
