test/suite_xdm.ml: Atomic Core Item List Node Option QCheck Qname Util
