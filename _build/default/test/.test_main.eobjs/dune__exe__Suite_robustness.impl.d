test/suite_robustness.ml: Alcotest Aldsp Array Char Core Fixtures Hashtbl List Printf QCheck Relational Sdo String Util Xquery
