test/suite_xml.ml: Alcotest Atomic Core Item List Node Option QCheck Qname Schema Seqtype Util Xml_parse Xml_serialize
