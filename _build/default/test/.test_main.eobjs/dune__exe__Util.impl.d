test/util.ml: Alcotest Core QCheck QCheck_alcotest Xdm Xqse Xquery
