test/suite_xmp.ml: Core Util Xdm Xquery
