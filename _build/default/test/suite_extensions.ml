(* Extensions beyond the first milestone: typeswitch, fn:collection,
   additional F&O functions, relational secondary indexes, the
   auto-generated logical-service C/U/D methods (paper III.D.1) and
   XQSE update overrides. *)

open Util
open Core
open Core.Xdm
module R = Relational
module F = Fixtures.Customer_profile

let typeswitch_tests =
  [
    q "typeswitch selects by type" "int"
      "typeswitch (42) case xs:integer return 'int' case xs:string return 'str' default return 'other'";
    q "typeswitch first matching case wins" "number"
      "typeswitch (1) case xs:decimal return 'number' case xs:integer return 'int' default return 'other'";
    q "typeswitch default" "other"
      "typeswitch (<a/>) case xs:integer return 'int' default return 'other'";
    q "typeswitch case variable binds the operand" "84"
      "typeswitch (42) case $i as xs:integer return $i * 2 default return 0";
    q "typeswitch default variable" "1"
      "typeswitch (<a/>) case xs:string return 0 default $d return count($d)";
    q "typeswitch on node kind tests" "element-a"
      "typeswitch (<a/>) case element(b) return 'element-b' case element(a) return 'element-a' default return 'other'";
    q "typeswitch on cardinality" "many"
      "typeswitch ((1, 2)) case xs:integer return 'one' case xs:integer+ return 'many' default return 'other'";
    q "typeswitch empty operand" "none"
      "typeswitch (()) case empty-sequence() return 'none' default return 'some'";
    q "typeswitch nests in expressions" "yes no"
      "for $x in (1, 'a') return typeswitch ($x) case xs:integer return 'yes' default return 'no'";
    q "typeswitch inside function with recursion" "leaf node(2)"
      "declare function local:describe($n as item()) as xs:string {
         typeswitch ($n)
         case $e as element() return
           (if (empty($e/*)) then 'leaf' else concat('node(', count($e/*), ')'))
         default return 'atomic'
       };
       (local:describe(<a/>), local:describe(<a><b/><c/></a>))";
    q_syntax "typeswitch requires a case" "typeswitch (1) default return 0";
    case "typeswitch works in XQSE statements" (fun () ->
        check_string "xqse" "int"
          (xqse
             {| {
               declare $r := "";
               iterate $x over (1) {
                 set $r := typeswitch ($x) case xs:integer return "int" default return "?";
               }
               return value $r;
             } |}));
  ]

let collection_tests =
  [
    case "fn:collection by uri" (fun () ->
        let engine = Xquery.Engine.create () in
        Xquery.Engine.register_collection engine "emps"
          (Xml_parse.parse_fragment "<e id='1'/><e id='2'/>");
        check_string "count" "2"
          (Xml_serialize.seq_to_string
             (Xquery.Engine.eval_string engine "count(collection('emps'))")));
    case "fn:collection default" (fun () ->
        let engine = Xquery.Engine.create () in
        Xquery.Engine.register_collection engine ""
          (Xml_parse.parse_fragment "<x/>");
        check_string "count" "1"
          (Xml_serialize.seq_to_string
             (Xquery.Engine.eval_string engine "count(collection())")));
    q_err "unknown collection" "FODC0002" "collection('nope')";
  ]

let fo_extension_tests =
  [
    q "fn:compare" "-1 0 1" "(compare('a','b'), compare('a','a'), compare('b','a'))";
    q "fn:compare with empty" "" "compare((), 'a')";
    q "fn:codepoint-equal" "true" "codepoint-equal('abc', 'abc')";
    q "round-half-to-even ties" "0 2 2"
      "(round-half-to-even(0.5), round-half-to-even(1.5), round-half-to-even(2.5))";
    q "round-half-to-even plain" "3" "round-half-to-even(2.7)";
    q "encode-for-uri" "a%20b%2Fc~" "encode-for-uri('a b/c~')";
    q "current-date is deterministic" "2007-12-12" "string(current-date())";
    q "current-dateTime" "2007-12-12T12:00:00" "string(current-dateTime())";
    q "dates derived from current-date compare" "true"
      "current-date() lt xs:date('2008-01-01')";
  ]

let index_tests =
  [
    case "index accelerates and agrees with scan" (fun () ->
        let schema =
          {
            R.Table.tbl_name = "T";
            columns =
              [
                { R.Table.col_name = "ID"; col_type = R.Value.T_int; nullable = false };
                { R.Table.col_name = "GRP"; col_type = R.Value.T_int; nullable = false };
              ];
            primary_key = [ "ID" ];
            foreign_keys = [];
          }
        in
        let t = R.Table.create schema in
        for i = 1 to 500 do
          R.Table.insert t [| R.Value.Int i; R.Value.Int (i mod 7) |]
        done;
        let pred = R.Pred.eq "GRP" (R.Value.Int 3) in
        let before = R.Table.select t pred in
        R.Table.create_index t [ "GRP" ];
        check_bool "indexed" true (R.Table.indexed_columns t = [ [ "GRP" ] ]);
        let after = R.Table.select t pred in
        check_bool "same rows" true (before = after));
    case "index maintained across insert, update and delete" (fun () ->
        let schema =
          {
            R.Table.tbl_name = "T";
            columns =
              [
                { R.Table.col_name = "ID"; col_type = R.Value.T_int; nullable = false };
                { R.Table.col_name = "GRP"; col_type = R.Value.T_int; nullable = false };
              ];
            primary_key = [ "ID" ];
            foreign_keys = [];
          }
        in
        let t = R.Table.create schema in
        R.Table.create_index t [ "GRP" ];
        R.Table.insert t [| R.Value.Int 1; R.Value.Int 10 |];
        R.Table.insert t [| R.Value.Int 2; R.Value.Int 10 |];
        check_int "two in group" 2
          (List.length (R.Table.select t (R.Pred.eq "GRP" (R.Value.Int 10))));
        (* move row 1 to another group *)
        ignore (R.Table.update_rows t (R.Pred.eq "ID" (R.Value.Int 1))
            [ ("GRP", R.Value.Int 20) ]);
        check_int "one left" 1
          (List.length (R.Table.select t (R.Pred.eq "GRP" (R.Value.Int 10))));
        check_int "one moved" 1
          (List.length (R.Table.select t (R.Pred.eq "GRP" (R.Value.Int 20))));
        ignore (R.Table.delete_rows t (R.Pred.eq "ID" (R.Value.Int 2)));
        check_int "gone" 0
          (List.length (R.Table.select t (R.Pred.eq "GRP" (R.Value.Int 10)))));
    case "index used with extra residual predicate" (fun () ->
        let schema =
          {
            R.Table.tbl_name = "T";
            columns =
              [
                { R.Table.col_name = "ID"; col_type = R.Value.T_int; nullable = false };
                { R.Table.col_name = "GRP"; col_type = R.Value.T_int; nullable = false };
              ];
            primary_key = [ "ID" ];
            foreign_keys = [];
          }
        in
        let t = R.Table.create schema in
        R.Table.create_index t [ "GRP" ];
        for i = 1 to 20 do
          R.Table.insert t [| R.Value.Int i; R.Value.Int (i mod 2) |]
        done;
        let pred =
          R.Pred.And
            (R.Pred.eq "GRP" (R.Value.Int 0), R.Pred.Cmp (R.Pred.Gt, "ID", R.Value.Int 10))
        in
        check_int "residual applies" 5 (List.length (R.Table.select t pred)));
    case "introspection indexes foreign-key columns" (fun () ->
        let env = F.make ~customers:1 () in
        check_bool "orders indexed on CID" true
          (List.mem [ "CID" ] (R.Table.indexed_columns env.F.orders)));
    prop "indexed select equals unindexed select on random data"
      ~count:60
      QCheck.(small_list (pair (int_range 1 60) (int_range 0 4)))
      (fun rows ->
        let schema =
          {
            R.Table.tbl_name = "P";
            columns =
              [
                { R.Table.col_name = "ID"; col_type = R.Value.T_int; nullable = false };
                { R.Table.col_name = "GRP"; col_type = R.Value.T_int; nullable = false };
              ];
            primary_key = [ "ID" ];
            foreign_keys = [];
          }
        in
        let with_idx = R.Table.create schema in
        let without = R.Table.create schema in
        R.Table.create_index with_idx [ "GRP" ];
        let seen = Hashtbl.create 8 in
        List.iter
          (fun (id, grp) ->
            if not (Hashtbl.mem seen id) then begin
              Hashtbl.add seen id ();
              R.Table.insert with_idx [| R.Value.Int id; R.Value.Int grp |];
              R.Table.insert without [| R.Value.Int id; R.Value.Int grp |]
            end)
          rows;
        List.for_all
          (fun g ->
            R.Table.select with_idx (R.Pred.eq "GRP" (R.Value.Int g))
            = R.Table.select without (R.Pred.eq "GRP" (R.Value.Int g)))
          [ 0; 1; 2; 3; 4 ]);
  ]

let logical_cud_tests =
  let profile_xml cid oid =
    Printf.sprintf
      {|<p:CustomerProfile xmlns:p="ld:CustomerProfile">
          <CID>%s</CID><LAST_NAME>New</LAST_NAME><FIRST_NAME>Guy</FIRST_NAME>
          <Orders><ORDERS><OID>%d</OID><CID>%s</CID><STATUS>OPEN</STATUS></ORDERS></Orders>
          <CreditCards/>
        </p:CustomerProfile>|}
      cid oid cid
  in
  [
    case "create<Shape> inserts root and nested rows, returns keys" (fun () ->
        let env = F.make ~customers:1 () in
        let obj = List.hd (Xml_parse.parse_fragment (profile_xml "L1" 8001)) in
        let keys =
          Aldsp.Dataspace.call env.F.ds
            (Qname.make ~uri:F.profile_ns "createCustomerProfile")
            [ [ Item.Node obj ] ]
        in
        check_int "one key" 1 (List.length keys);
        check_bool "key shape" true
          (match keys with
          | [ Item.Node k ] -> (
            match Node.name k with
            | Some q -> q.Qname.local = "CustomerProfile_KEY"
            | None -> false)
          | _ -> false);
        check_bool "customer row" true
          (R.Table.find_pk env.F.customer [ R.Value.Text "L1" ] <> None);
        check_bool "order row" true
          (R.Table.find_pk env.F.orders [ R.Value.Int 8001 ] <> None));
    case "update<Shape> rewrites mapped rows field-wise" (fun () ->
        let env = F.make ~customers:1 () in
        let dg = F.get_profile_by_id env "007" in
        let obj = Node.deep_copy (List.hd (Sdo.roots dg)) in
        (* edit the instance directly, then call the generated update *)
        let last =
          List.find
            (fun c ->
              match Node.name c with
              | Some q -> q.Qname.local = "LAST_NAME"
              | None -> false)
            (Node.children obj)
        in
        Node.replace_children_with_text last "Updated";
        ignore
          (Aldsp.Dataspace.call env.F.ds
             (Qname.make ~uri:F.profile_ns "updateCustomerProfile")
             [ [ Item.Node obj ] ]);
        let row = Option.get (R.Table.find_pk env.F.customer [ R.Value.Text "007" ]) in
        check_bool "written" true
          (R.Table.get row env.F.customer "LAST_NAME" = R.Value.Text "Updated"));
    case "delete<Shape> removes children then the root" (fun () ->
        let env = F.make ~customers:1 () in
        let dg = F.get_profile_by_id env "007" in
        let obj = Node.deep_copy (List.hd (Sdo.roots dg)) in
        ignore
          (Aldsp.Dataspace.call env.F.ds
             (Qname.make ~uri:F.profile_ns "deleteCustomerProfile")
             [ [ Item.Node obj ] ]);
        check_bool "customer gone" true
          (R.Table.find_pk env.F.customer [ R.Value.Text "007" ] = None);
        check_int "orders gone" 0
          (List.length
             (R.Table.select env.F.orders (R.Pred.eq "CID" (R.Value.Text "007")))));
    case "generated methods appear in the design view" (fun () ->
        let env = F.make ~customers:1 () in
        let kinds =
          List.map
            (fun m -> m.Aldsp.Data_service.m_kind)
            env.F.svc.Aldsp.Data_service.ds_methods
        in
        check_bool "create" true (List.mem Aldsp.Data_service.Create_procedure kinds);
        check_bool "update" true (List.mem Aldsp.Data_service.Update_procedure kinds);
        check_bool "delete" true (List.mem Aldsp.Data_service.Delete_procedure kinds));
    case "generated create is callable from XQSE source" (fun () ->
        let env = F.make ~customers:1 () in
        let sess = Aldsp.Dataspace.session env.F.ds in
        ignore
          (Xqse.Session.eval sess
             {| {
               profile:createCustomerProfile(
                 <profile:CustomerProfile>
                   <CID>L2</CID><LAST_NAME>Script</LAST_NAME><FIRST_NAME>Ed</FIRST_NAME>
                   <Orders/><CreditCards/>
                 </profile:CustomerProfile>);
             } |});
        check_bool "row" true
          (R.Table.find_pk env.F.customer [ R.Value.Text "L2" ] <> None));
  ]

let xqse_override_tests =
  [
    case "an XQSE procedure takes over update processing" (fun () ->
        let env = F.make ~customers:1 () in
        let sess = Aldsp.Dataspace.session env.F.ds in
        (* the override logs into an audit table instead of updating *)
        Xqse.Session.load_library sess
          {|
declare namespace ov = "urn:override";
declare namespace sdo = "commonj.sdo";
declare procedure ov:auditOnly($dg as element(sdo:datagraph)) as xs:integer {
  declare $changes := $dg/changeSummary/*;
  return value count($changes);
};
|};
        Aldsp.Dataspace.set_xqse_override env.F.ds env.F.svc
          (Qname.make ~uri:"urn:override" "auditOnly");
        let dg = F.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        let r = Aldsp.Dataspace.submit env.F.ds env.F.svc dg in
        check_bool "committed" true r.Aldsp.Dataspace.sr_committed;
        (* the default decomposition did NOT run *)
        let row = Option.get (R.Table.find_pk env.F.customer [ R.Value.Text "007" ]) in
        check_bool "source untouched" true
          (R.Table.get row env.F.customer "LAST_NAME" = R.Value.Text "Carrey"));
    case "an erroring XQSE override propagates its error" (fun () ->
        let env = F.make ~customers:1 () in
        let sess = Aldsp.Dataspace.session env.F.ds in
        Xqse.Session.load_library sess
          {|
declare namespace ov = "urn:override2";
declare namespace sdo = "commonj.sdo";
declare procedure ov:reject($dg as element(sdo:datagraph)) {
  fn:error(xs:QName("UPDATES_FORBIDDEN"), "this service is read-only");
};
|};
        Aldsp.Dataspace.set_xqse_override env.F.ds env.F.svc
          (Qname.make ~uri:"urn:override2" "reject");
        let dg = F.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "X";
        match Aldsp.Dataspace.submit env.F.ds env.F.svc dg with
        | _ -> Alcotest.fail "expected UPDATES_FORBIDDEN"
        | exception Item.Error { code; _ } ->
          check_string "code" "UPDATES_FORBIDDEN" code.Qname.local);
    case "override receives the Figure 4 wire form" (fun () ->
        let env = F.make ~customers:1 () in
        let sess = Aldsp.Dataspace.session env.F.ds in
        Xqse.Session.load_library sess
          {|
declare namespace ov = "urn:override3";
declare namespace sdo = "commonj.sdo";
declare procedure ov:oldValue($dg as element(sdo:datagraph)) as xs:string {
  return value string($dg/changeSummary/*/LAST_NAME);
};
|};
        let captured = ref "" in
        Aldsp.Dataspace.set_override env.F.ds env.F.svc
          (Some
             (fun ds req ~default:_ ->
               let wire = Sdo.serialize req.Aldsp.Dataspace.ur_datagraph in
               let root =
                 List.hd
                   (List.filter
                      (fun c -> Node.kind c = Node.Element)
                      (Node.children (Xml_parse.parse wire)))
               in
               captured :=
                 Xml_serialize.seq_to_string
                   (Aldsp.Dataspace.call ds
                      (Qname.make ~uri:"urn:override3" "oldValue")
                      [ [ Item.Node root ] ]);
               {
                 Aldsp.Dataspace.sr_committed = true;
                 sr_statements = 0;
                 sr_sql = [];
                 sr_reason = None;
               }));
        let dg = F.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        ignore (Aldsp.Dataspace.submit env.F.ds env.F.svc dg);
        check_string "old value seen by override" "Carrey" !captured);
  ]

(* A second-level logical service composed over CustomerProfile
   (paper II.A: methods are "used when creating other, higher-level
   logical data services"). *)
let summary_source =
  {|
declare namespace sum = "urn:summary";
declare namespace prof = "ld:CustomerProfile";

declare function sum:getSummary() as element(sum:Summary)* {
  for $p in prof:getProfile()
  return <sum:Summary>
    <Id>{fn:data($p/CID)}</Id>
    <Surname>{fn:data($p/LAST_NAME)}</Surname>
    <Rating>{fn:data($p/CreditRating)}</Rating>
    <Orders2>{
      for $o in $p/Orders/ORDERS
      return <Order2>
        <Key>{fn:data($o/OID)}</Key>
        <State>{fn:data($o/STATUS)}</State>
      </Order2>
    }</Orders2>
  </sum:Summary>
};
|}

let make_composed () =
  let env = F.make ~customers:1 () in
  let svc =
    Aldsp.Dataspace.create_entity_service env.F.ds ~name:"CustomerSummary"
      ~namespace:"urn:summary"
      ~shape:
        { Schema.name = Qname.make ~uri:"urn:summary" "Summary";
          type_def = Schema.complex [] }
      ~methods:[ ("getSummary", Aldsp.Data_service.Read_function) ]
      ~dependencies:[ "CustomerProfile" ] summary_source
  in
  (env, svc)

let composition_tests =
  [
    case "composed service reads through the inner service" (fun () ->
        let env, svc = make_composed () in
        let dg = Aldsp.Dataspace.get env.F.ds svc ~meth:"getSummary" [] in
        check_int "summaries" 2 (List.length (Sdo.roots dg));
        check_bool "surname present" true
          (List.exists
             (fun n -> Node.string_value n <> "")
             (Sdo.roots dg)));
    case "lineage composes through the inner lineage" (fun () ->
        let env, svc = make_composed () in
        match Aldsp.Dataspace.lineage_of env.F.ds svc with
        | Error m -> Alcotest.fail m
        | Ok blk ->
          check_string "root table" "CUSTOMER" blk.Aldsp.Lineage.b_table;
          let surname = Option.get (Aldsp.Lineage.find_field blk "Surname") in
          check_string "mapped through" "LAST_NAME" surname.Aldsp.Lineage.f_column;
          (* the computed CreditRating stays opaque through composition *)
          check_bool "opaque propagates" true
            (List.mem "Rating" blk.Aldsp.Lineage.b_opaque);
          let orders = Option.get (Aldsp.Lineage.find_child blk "Orders2") in
          check_string "child table" "ORDERS"
            orders.Aldsp.Lineage.c_block.Aldsp.Lineage.b_table;
          check_bool "link preserved" true
            (orders.Aldsp.Lineage.c_link = [ ("CID", "CID") ]);
          let key = Option.get (Aldsp.Lineage.find_field orders.Aldsp.Lineage.c_block "Key") in
          check_string "renamed field maps" "OID" key.Aldsp.Lineage.f_column);
    case "updates decompose through two levels of composition" (fun () ->
        let env, svc = make_composed () in
        let dg = Aldsp.Dataspace.get env.F.ds svc ~meth:"getSummary" [] in
        (* find the 007 summary *)
        let idx =
          match
            List.mapi (fun i n -> (i + 1, n)) (Sdo.roots dg)
            |> List.find_opt (fun (i, _) -> Sdo.get_leaf dg i [ ("Id", 1) ] = "007")
          with
          | Some (i, _) -> i
          | None -> Alcotest.fail "007 not found"
        in
        Sdo.set_leaf dg idx [ ("Surname", 1) ] "Composed";
        let r = Aldsp.Dataspace.submit env.F.ds svc dg in
        check_bool "committed" true r.Aldsp.Dataspace.sr_committed;
        let row = Option.get (R.Table.find_pk env.F.customer [ R.Value.Text "007" ]) in
        check_bool "written to the base table" true
          (R.Table.get row env.F.customer "LAST_NAME" = R.Value.Text "Composed"));
    case "nested rows of a composed service update their base table" (fun () ->
        let env, svc = make_composed () in
        let dg = Aldsp.Dataspace.get env.F.ds svc ~meth:"getSummary" [] in
        let idx =
          match
            List.mapi (fun i n -> (i + 1, n)) (Sdo.roots dg)
            |> List.find_opt (fun (i, _) -> Sdo.get_leaf dg i [ ("Id", 1) ] = "007")
          with
          | Some (i, _) -> i
          | None -> Alcotest.fail "007 not found"
        in
        Sdo.set_leaf dg idx (Sdo.path_of_string "Orders2/Order2[1]/State") "DONE";
        let r = Aldsp.Dataspace.submit env.F.ds svc dg in
        check_bool "committed" true r.Aldsp.Dataspace.sr_committed;
        check_bool "order updated" true
          (List.exists
             (fun row -> R.Table.get row env.F.orders "STATUS" = R.Value.Text "DONE")
             (R.Table.select env.F.orders (R.Pred.eq "CID" (R.Value.Text "007")))));
    case "composed service gets auto-generated CUD methods too" (fun () ->
        let _env, svc = make_composed () in
        check_bool "create method" true
          (List.exists
             (fun m -> m.Aldsp.Data_service.m_name.Qname.local = "createSummary")
             svc.Aldsp.Data_service.ds_methods));
    case "self-recursive composition is rejected, not looped" (fun () ->
        let env = F.make ~customers:1 () in
        let svc =
          Aldsp.Dataspace.create_entity_service env.F.ds ~name:"Loop"
            ~namespace:"urn:loop"
            ~shape:{ Schema.name = Qname.make ~uri:"urn:loop" "L"; type_def = Schema.complex [] }
            ~methods:[ ("getL", Aldsp.Data_service.Read_function) ]
            {|declare namespace lo = "urn:loop";
              declare function lo:getL() as element(lo:L)* {
                for $x in lo:getL() return <lo:L><A>{fn:data($x/A)}</A></lo:L>
              };|}
        in
        match Aldsp.Dataspace.lineage_of env.F.ds svc with
        | Ok _ -> Alcotest.fail "expected a lineage error"
        | Error _ -> ());
  ]

let tooling_tests =
  [
    case "catalog:services() reflects the dataspace" (fun () ->
        let env = F.make ~customers:1 () in
        let sess = Aldsp.Dataspace.session env.F.ds in
        check_string "entities" "4"
          (Xqse.Session.eval_to_string sess
             "count(catalog:services()[@kind eq 'entity'])");
        check_string "library" "CreditRatingService"
          (Xqse.Session.eval_to_string sess
             "string(catalog:services()[@kind eq 'library']/@name)");
        check_string "logical has reads" "true"
          (Xqse.Session.eval_to_string sess
             "exists(catalog:services()[@name eq 'CustomerProfile']/Method[@kind eq 'read'])"));
    case "catalog records dependencies" (fun () ->
        let env = F.make ~customers:1 () in
        check_string "dep" "true"
          (Xqse.Session.eval_to_string (Aldsp.Dataspace.session env.F.ds)
             "exists(catalog:services()[@name eq 'CustomerProfile']/DependsOn[. eq 'db2/CREDIT_CARD'])"));
    case "explain reports optimizer activity" (fun () ->
        let env = F.make ~customers:1 () in
        match Aldsp.Dataspace.explain env.F.ds env.F.svc ~meth:"getProfile" with
        | Error m -> Alcotest.fail m
        | Ok report ->
          check_bool "mentions joins" true
            (let m = "joins=" in
             let n = String.length report and k = String.length m in
             let rec go i = i + k <= n && (String.sub report i k = m || go (i + 1)) in
             go 0);
          check_bool "contains the rewritten query" true
            (String.length report > 100));
    case "infer_shape reverse-engineers the read logic" (fun () ->
        let env = F.make ~customers:1 () in
        match Aldsp.Dataspace.infer_shape env.F.ds env.F.svc with
        | Error m -> Alcotest.fail m
        | Ok decl ->
          check_string "root" "CustomerProfile" decl.Schema.name.Qname.local;
          (* the inferred shape validates actual service output *)
          let schema = Schema.make ~target_ns:F.profile_ns [ decl ] in
          let dg = F.get_profile_by_id env "007" in
          (match Schema.validate schema (List.hd (Sdo.roots dg)) with
          | Ok () -> ()
          | Error vs ->
            Alcotest.failf "inferred shape rejects real output: %s"
              (String.concat "; "
                 (List.map (fun v -> v.Schema.path ^ " " ^ v.Schema.message) vs))));
  ]

let logical_nav_tests =
  [
    case "logical services get navigation functions per nested block" (fun () ->
        let env = F.make ~customers:1 () in
        let navs =
          List.filter
            (fun (m : Aldsp.Data_service.ds_method) ->
              match m.Aldsp.Data_service.m_kind with
              | Aldsp.Data_service.Navigation_function _ -> true
              | _ -> false)
            env.F.svc.Aldsp.Data_service.ds_methods
        in
        check_int "two navs (orders, cards)" 2 (List.length navs));
    case "navigation probes the live source, not the instance copy" (fun () ->
        let env = F.make ~customers:1 () in
        let sess = Aldsp.Dataspace.session env.F.ds in
        let count_orders () =
          Xqse.Session.eval_to_string sess
            "count(for $p in profile:getProfileById('007') return profile:getORDERS($p))"
        in
        let before = count_orders () in
        (* a new order arrives directly in the source *)
        ignore
          (R.Database.exec env.F.db1
             (R.Database.Insert
                {
                  table = "ORDERS";
                  columns = [ "OID"; "CID"; "STATUS" ];
                  values = [ R.Value.Int 123456; R.Value.Text "007"; R.Value.Text "FRESH" ];
                }));
        let after = count_orders () in
        check_int "sees the new row" (int_of_string before + 1) (int_of_string after));
    case "navigation from a credit-card block crosses databases" (fun () ->
        let env = F.make ~customers:1 () in
        let sess = Aldsp.Dataspace.session env.F.ds in
        check_string "ccards" "1"
          (Xqse.Session.eval_to_string sess
             "count(for $p in profile:getProfileById('007') return profile:getCREDIT_CARD($p))"));
    case "navigation is usable from XQSE procedures" (fun () ->
        let env = F.make ~customers:1 () in
        let sess = Aldsp.Dataspace.session env.F.ds in
        let expected =
          Xqse.Session.eval_to_string sess
            "count(profile:getProfile()/Orders/ORDERS[STATUS eq 'OPEN'])"
        in
        check_string "open orders" expected
          (Xqse.Session.eval_to_string sess
             {| {
               declare $open := 0;
               iterate $p over profile:getProfile() {
                 iterate $o over profile:getORDERS($p) {
                   if ($o/STATUS eq 'OPEN') then set $open := $open + 1;
                 }
               }
               return value $open;
             } |}));
  ]

let submit_validation_tests =
  [
    case "valid submissions pass shape validation" (fun () ->
        let env = F.make ~customers:1 () in
        let dg = F.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        let r = Aldsp.Dataspace.submit env.F.ds env.F.svc ~validate:true dg in
        check_bool "committed" true r.Aldsp.Dataspace.sr_committed);
    case "shape-violating object is rejected before any SQL" (fun () ->
        let env = F.make ~customers:1 () in
        let dg = F.get_profile_by_id env "007" in
        R.Database.clear_log env.F.db1;
        (* add a bogus root object that violates the shape *)
        Sdo.add_object dg
          (List.hd
             (Xml_parse.parse_fragment
                {|<p:CustomerProfile xmlns:p="ld:CustomerProfile"><WRONG>1</WRONG></p:CustomerProfile>|}));
        (match Aldsp.Dataspace.submit env.F.ds env.F.svc ~validate:true dg with
        | _ -> Alcotest.fail "expected Not_updatable"
        | exception Aldsp.Decompose.Not_updatable msg ->
          check_bool "mentions shape" true
            (let m = "shape" in
             let n = String.length msg and k = String.length m in
             let rec go i = i + k <= n && (String.sub msg i k = m || go (i + 1)) in
             go 0));
        check_int "no sql ran" 0 (R.Database.log_size env.F.db1));
    case "multi-object datagraph decomposes per object" (fun () ->
        let env = F.make ~customers:3 () in
        let dg = Aldsp.Dataspace.get env.F.ds env.F.svc ~meth:"getProfile" [] in
        check_int "objects" 4 (List.length (Sdo.roots dg));
        (* change two different customers in one submission *)
        Sdo.set_leaf dg 1 [ ("FIRST_NAME", 1) ] "Edit1";
        Sdo.set_leaf dg 3 [ ("FIRST_NAME", 1) ] "Edit3";
        let r = Aldsp.Dataspace.submit env.F.ds env.F.svc dg in
        check_bool "committed" true r.Aldsp.Dataspace.sr_committed;
        check_int "two updates" 2 r.Aldsp.Dataspace.sr_statements;
        let edited =
          List.length
            (R.Table.select env.F.customer
               (R.Pred.Or
                  ( R.Pred.eq "FIRST_NAME" (R.Value.Text "Edit1"),
                    R.Pred.eq "FIRST_NAME" (R.Value.Text "Edit3") )))
        in
        check_int "both written" 2 edited);
    case "mixed kinds in one datagraph: modify + create + delete" (fun () ->
        let env = F.make ~customers:2 () in
        let dg = Aldsp.Dataspace.get env.F.ds env.F.svc ~meth:"getProfile" [] in
        let n = List.length (Sdo.roots dg) in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Mixed";
        Sdo.delete_object dg n;
        Sdo.add_object dg
          (List.hd
             (Xml_parse.parse_fragment
                {|<p:CustomerProfile xmlns:p="ld:CustomerProfile"><CID>MX1</CID><LAST_NAME>New</LAST_NAME><FIRST_NAME>Guy</FIRST_NAME><Orders/><CreditCards/></p:CustomerProfile>|}));
        let before = R.Table.row_count env.F.customer in
        let r = Aldsp.Dataspace.submit env.F.ds env.F.svc dg in
        check_bool "committed" true r.Aldsp.Dataspace.sr_committed;
        (* one deleted, one created: count unchanged; new row present *)
        check_int "count stable" before (R.Table.row_count env.F.customer);
        check_bool "created" true
          (R.Table.find_pk env.F.customer [ R.Value.Text "MX1" ] <> None));
  ]

let suites =
  [
    ("ext.typeswitch", typeswitch_tests);
    ("ext.composition", composition_tests);
    ("ext.tooling", tooling_tests);
    ("ext.submit-validation", submit_validation_tests);
    ("ext.logical-nav", logical_nav_tests);
    ("ext.collection", collection_tests);
    ("ext.fo-functions", fo_extension_tests);
    ("ext.indexes", index_tests);
    ("ext.logical-cud", logical_cud_tests);
    ("ext.xqse-override", xqse_override_tests);
  ]
