(* The XQuery Update Facility subset: transform expressions (pure
   XQuery), update statements (XQSE snapshots), and pending-update-list
   semantics. *)

open Util
open Core

let transform_tests =
  [
    q "replace value of" "<a><b>9</b></a>"
      "copy $c := <a><b>1</b></a> modify replace value of node $c/b with 9 return $c";
    q "replace node" "<a><c/></a>"
      "copy $c := <a><b/></a> modify replace node $c/b with <c/> return $c";
    q "replace attribute value" "<a x=\"2\"/>"
      "copy $c := <a x='1'/> modify replace value of node $c/@x with 2 return $c";
    q "insert into appends" "<a><b/><c/></a>"
      "copy $c := <a><b/></a> modify insert node <c/> into $c return $c";
    q "insert as first" "<a><c/><b/></a>"
      "copy $c := <a><b/></a> modify insert node <c/> as first into $c return $c";
    q "insert as last" "<a><b/><c/></a>"
      "copy $c := <a><b/></a> modify insert node <c/> as last into $c return $c";
    q "insert before" "<a><c/><b/></a>"
      "copy $c := <a><b/></a> modify insert node <c/> before $c/b return $c";
    q "insert after" "<a><b/><c/></a>"
      "copy $c := <a><b/></a> modify insert node <c/> after $c/b return $c";
    q "insert attribute node" "<a x=\"1\"/>"
      "copy $c := <a/> modify insert node attribute x { 1 } into $c return $c";
    q "insert multiple nodes" "<a><b/><x/><y/></a>"
      "copy $c := <a><b/></a> modify insert nodes (<x/>, <y/>) into $c return $c";
    q "delete node" "<a><c/></a>"
      "copy $c := <a><b/><c/></a> modify delete node $c/b return $c";
    q "delete nodes plural" "<a/>"
      "copy $c := <a><b/><b/></a> modify delete nodes $c/b return $c";
    q "rename node" "<z>1</z>"
      "copy $c := <a>1</a> modify rename node $c as z return $c";
    q "rename with computed name" "<n5/>"
      "copy $c := <a/> modify rename node $c as { concat('n', 5) } return $c";
    q "copy is deep: source unchanged" "<a><b>1</b></a>"
      "let $orig := <a><b>1</b></a>
       let $new := (copy $c := $orig modify replace value of node $c/b with 2 return $c)
       return $orig";
    q "multiple copy variables" "<p><q>2</q></p>"
      "copy $x := <p><q>1</q></p>, $y := <z/> modify replace value of node $x/q with 2 return $x";
    q "snapshot semantics: modifications invisible during modify" "<a><b>1</b><c>1</c></a>"
      "copy $c := <a><b>1</b></a>
       modify insert node <c>{string($c/b)}</c> into $c
       return $c";
    q "compound modify with comma" "<a><b>2</b><c/></a>"
      "copy $c := <a><b>1</b></a>
       modify (replace value of node $c/b with 2, insert node <c/> into $c)
       return $c";
    q_err "updating expression outside snapshot" "XUST0001"
      "delete node <a/>";
    q_err "two replaces of the same node" "XUDY0017"
      "copy $c := <a><b>1</b></a>
       modify (replace value of node $c/b with 2, replace value of node $c/b with 3)
       return $c";
    q_err "modify clause must be updating" "XUST0001"
      "copy $c := <a/> modify 42 return $c";
  ]

let update_statement_tests =
  [
    s "update statement applies and is visible" "<a><b>2</b></a>"
      "declare variable $d := <a><b>1</b></a>;
       { replace value of node $d/b with 2;
         return value $d; }";
    s "consecutive statements see prior effects" "3"
      "declare variable $d := <a><b>1</b></a>;
       { replace value of node $d/b with 2;
         replace value of node $d/b with xs:integer($d/b) + 1;
         return value xs:integer($d/b); }";
    s "insert statement" "2"
      "declare variable $d := <a><b/></a>;
       { insert node <b/> into $d;
         return value count($d/b); }";
    s "delete statement" "0"
      "declare variable $d := <a><b/></a>;
       { delete node $d/b;
         return value count($d/b); }";
    s "rename statement" "z"
      "declare variable $d := <a><b/></a>;
       { rename node $d/b as z;
         return value local-name($d/*); }";
    s "snapshot: one statement, one application" "1|2"
      "declare variable $d := <a><b>1</b></a>;
       { declare $before := string($d/b);
         replace value of node $d/b with 2;
         return value concat($before, '|', string($d/b)); }";
  ]

let pul_tests =
  let open Xdm in
  [
    case "apply ordering: inserts before deletes" (fun () ->
        (* delete b and insert c in one snapshot: both happen *)
        let doc = Xml_parse.parse "<a><b/></a>" in
        let a = List.hd (Node.children doc) in
        let b = List.hd (Node.children a) in
        Xquery.Update.apply
          [
            Xquery.Update.Delete_node b;
            Xquery.Update.Insert_into (a, [ Node.element (Qname.local "c") [] ]);
          ];
        check_string "result" "<a><c/></a>" (Xml_serialize.to_string a));
    case "replace then rename different nodes" (fun () ->
        let a = Xml_parse.parse_fragment "<a><b>1</b><c/></a>" |> List.hd in
        let b = List.hd (Node.children a) in
        let c = List.nth (Node.children a) 1 in
        Xquery.Update.apply
          [
            Xquery.Update.Replace_value (b, "9");
            Xquery.Update.Rename_node (c, Qname.local "d");
          ];
        check_string "result" "<a><b>9</b><d/></a>" (Xml_serialize.to_string a));
    case "duplicate rename rejected" (fun () ->
        let a = Xml_parse.parse_fragment "<a/>" |> List.hd in
        check_bool "raises" true
          (match
             Xquery.Update.apply
               [
                 Xquery.Update.Rename_node (a, Qname.local "x");
                 Xquery.Update.Rename_node (a, Qname.local "y");
               ]
           with
          | () -> false
          | exception Item.Error { code; _ } -> code.Qname.local = "XUDY0015"));
    case "insert attributes primitive" (fun () ->
        let a = Xml_parse.parse_fragment "<a/>" |> List.hd in
        Xquery.Update.apply
          [
            Xquery.Update.Insert_attributes
              (a, [ Node.attribute (Qname.local "k") "v" ]);
          ];
        check_bool "attr" true (Node.attribute_value a (Qname.local "k") = Some "v"));
  ]

let suites =
  [
    ("xuf.transform", transform_tests);
    ("xuf.update-statement", update_statement_tests);
    ("xuf.pul", pul_tests);
  ]
