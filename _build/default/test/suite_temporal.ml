(* Dates, times and durations: casting, comparison, arithmetic and the
   component-extraction functions. *)

open Util

let duration_cast_tests =
  [
    q "parse full duration" "P1Y2M3DT4H5M6S"
      "string(xs:duration('P1Y2M3DT4H5M6S'))";
    q "canonical form normalizes" "P1Y1M" "string(xs:yearMonthDuration('P13M'))";
    q "dayTime canonicalization" "P1DT1M" "string(xs:dayTimeDuration('PT1441M'))";
    q "zero duration" "PT0S" "string(xs:dayTimeDuration('PT0S'))";
    q "negative duration" "-P2DT12H" "string(xs:dayTimeDuration('-P2DT12H'))";
    q "fractional seconds" "PT1.5S" "string(xs:dayTimeDuration('PT1.5S'))";
    q "cast duration to yearMonth keeps months" "P1Y2M"
      "string(xs:yearMonthDuration(xs:duration('P1Y2M3D')))";
    q "cast duration to dayTime keeps days" "P3D"
      "string(xs:dayTimeDuration(xs:duration('P1Y2M3D')))";
    q_err "yearMonthDuration rejects day fields" "FORG0001"
      "xs:yearMonthDuration('P1D')";
    q_err "dayTimeDuration rejects month fields" "FORG0001"
      "xs:dayTimeDuration('P1M')";
    q_err "garbage duration" "FORG0001" "xs:duration('1 year')";
    q "duration type hierarchy" "true true"
      "(xs:dayTimeDuration('P1D') instance of xs:duration,
        xs:yearMonthDuration('P1Y') instance of xs:duration)";
  ]

let duration_compare_tests =
  [
    q "dayTime comparison" "true"
      "xs:dayTimeDuration('P1D') lt xs:dayTimeDuration('PT25H')";
    q "yearMonth comparison" "true"
      "xs:yearMonthDuration('P11M') lt xs:yearMonthDuration('P1Y')";
    q "equal mixed durations" "true"
      "xs:duration('P1Y1D') eq xs:duration('P12M1D')";
    q_err "ordering mixed durations is an error" "XPTY0004"
      "xs:duration('P1Y') lt xs:duration('P400D')";
  ]

let date_arith_tests =
  [
    q "date + dayTimeDuration" "2007-12-15"
      "string(xs:date('2007-12-12') + xs:dayTimeDuration('P3D'))";
    q "date + yearMonthDuration" "2008-02-12"
      "string(xs:date('2007-12-12') + xs:yearMonthDuration('P2M'))";
    q "end-of-month clamping" "2007-02-28"
      "string(xs:date('2007-01-31') + xs:yearMonthDuration('P1M'))";
    q "leap-year clamping" "2008-02-29"
      "string(xs:date('2008-01-31') + xs:yearMonthDuration('P1M'))";
    q "date - duration" "2007-11-30"
      "string(xs:date('2007-12-02') - xs:dayTimeDuration('P2D'))";
    q "date crossing a year boundary" "2008-01-01"
      "string(xs:date('2007-12-31') + xs:dayTimeDuration('P1D'))";
    q "date - date" "P30D"
      "string(xs:date('2007-12-31') - xs:date('2007-12-01'))";
    q "date differences can be negative" "-P1D"
      "string(xs:date('2007-12-01') - xs:date('2007-12-02'))";
    q "dateTime + hours crosses midnight" "2007-12-13T01:30:00"
      "string(xs:dateTime('2007-12-12T23:30:00') + xs:dayTimeDuration('PT2H'))";
    q "dateTime - dateTime" "PT1H30M"
      "string(xs:dateTime('2007-12-12T12:30:00') - xs:dateTime('2007-12-12T11:00:00'))";
    q "time + duration wraps" "00:30:00"
      "string(xs:time('23:30:00') + xs:dayTimeDuration('PT1H'))";
    q "time - time" "PT2H" "string(xs:time('14:00:00') - xs:time('12:00:00'))";
    q "duration + duration" "P3DT1H"
      "string(xs:dayTimeDuration('P2DT23H') + xs:dayTimeDuration('PT2H'))";
    q "duration * number" "P2DT12H"
      "string(xs:dayTimeDuration('P1DT6H') * 2)";
    q "duration div number" "PT12H" "string(xs:dayTimeDuration('P1D') div 2)";
    q "duration div duration" "1.5"
      "string(xs:dayTimeDuration('PT3H') div xs:dayTimeDuration('PT2H'))";
    q_err "date + date is undefined" "XPTY0004"
      "xs:date('2007-01-01') + xs:date('2007-01-02')";
    q_err "duration div zero" "FOAR0001"
      "xs:dayTimeDuration('P1D') div 0";
    q "yearMonthDuration arithmetic" "P2Y"
      "string(xs:yearMonthDuration('P18M') + xs:yearMonthDuration('P6M'))";
  ]

let component_tests =
  [
    q "year/month/day from date" "2007 12 12"
      "(year-from-date(current-date()), month-from-date(current-date()), day-from-date(current-date()))";
    q "components of dateTime" "2007 12 12"
      "(year-from-dateTime(current-dateTime()), month-from-dateTime(current-dateTime()), day-from-dateTime(current-dateTime()))";
    q "hours/minutes from time" "14 30"
      "(hours-from-time(xs:time('14:30:15')), minutes-from-time(xs:time('14:30:15')))";
    q "seconds-from-time is decimal" "15.5"
      "string(seconds-from-time(xs:time('14:30:15.5')))";
    q "duration components" "1 2 3 4 5 6"
      "(years-from-duration(xs:duration('P1Y2M3DT4H5M6S')),
        months-from-duration(xs:duration('P1Y2M3DT4H5M6S')),
        days-from-duration(xs:duration('P1Y2M3DT4H5M6S')),
        hours-from-duration(xs:duration('P1Y2M3DT4H5M6S')),
        minutes-from-duration(xs:duration('P1Y2M3DT4H5M6S')),
        seconds-from-duration(xs:duration('P1Y2M3DT4H5M6S')))";
    q "components of empty are empty" "0" "count(year-from-date(()))";
  ]

let temporal_query_tests =
  [
    q "order ages in the data-service style" "31 16 1"
      "for $o in (<O><D>2007-11-30</D></O>, <O><D>2007-12-15</D></O>, <O><D>2007-12-30</D></O>)
       return days-from-duration(xs:date('2007-12-31') - xs:date($o/D))";
    q "filter by date window" "2"
      "count(for $d in (xs:date('2007-11-01'), xs:date('2007-12-05'), xs:date('2007-12-20'))
             where $d gt xs:date('2007-12-01') return $d)";
    q "sort by date" "2007-01-01 2007-06-15 2007-12-31"
      "for $d in (xs:date('2007-12-31'), xs:date('2007-01-01'), xs:date('2007-06-15'))
       order by $d return string($d)";
    case "durations work in XQSE statements" (fun () ->
        check_string "xqse" "P10D"
          (xqse
             {| {
               declare $total := xs:dayTimeDuration('PT0S');
               iterate $d over (xs:dayTimeDuration('P3D'), xs:dayTimeDuration('P7D')) {
                 set $total := $total + $d;
               }
               return value string($total);
             } |}));
  ]

let prop_tests =
  [
    prop "date plus N days minus N days is the identity"
      QCheck.(pair (int_range 0 3000) (int_range (-2000) 2000))
      (fun (offset, delta) ->
        let base =
          Printf.sprintf
            "xs:date('2000-01-01') + xs:dayTimeDuration('P%dD')" offset
        in
        let src =
          Printf.sprintf
            "string((%s + xs:dayTimeDuration('P%dD')) - xs:dayTimeDuration('P%dD')) eq string(%s)"
            base (abs delta) (abs delta) base
        in
        xq src = "true");
    prop "date difference inverts date addition"
      QCheck.(int_range 1 1000)
      (fun days ->
        let src =
          Printf.sprintf
            "days-from-duration((xs:date('2005-03-01') + xs:dayTimeDuration('P%dD')) - xs:date('2005-03-01'))"
            days
        in
        xq src = string_of_int days);
  ]

let suites =
  [
    ("temporal.duration-cast", duration_cast_tests);
    ("temporal.duration-compare", duration_compare_tests);
    ("temporal.arith", date_arith_tests);
    ("temporal.components", component_tests);
    ("temporal.queries", temporal_query_tests @ prop_tests);
  ]
