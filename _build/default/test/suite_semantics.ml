(* A targeted matrix of XQuery semantic corners: the casting table,
   atomization, focus rules, axis semantics, constructor details and
   general-comparison coercion — the cases conformance suites poke at. *)

open Util

let casting_matrix =
  [
    (* string <-> numerics *)
    q "string->integer trims" "42" "xs:integer('  42  ')";
    q "integer->string" "42" "xs:string(42)";
    q "string->decimal" "1.5" "string(xs:decimal('1.5'))";
    q "decimal->integer truncates" "1" "xs:integer(1.9)";
    q "negative decimal->integer truncates toward zero" "-1" "xs:integer(-1.9)";
    q "double->integer" "3" "xs:integer(3.7e0)";
    q_err "INF->integer fails" "FORG0001" "xs:integer(xs:double('INF'))";
    q_err "NaN->integer fails" "FORG0001" "xs:integer(number('x'))";
    q "boolean->integer" "1 0" "(xs:integer(true()), xs:integer(false()))";
    q "integer->boolean" "true false" "(xs:boolean(7), xs:boolean(0))";
    q "double NaN->boolean is false" "false" "xs:boolean(number('x'))";
    q_err "string 'yes'->boolean fails" "FORG0001" "xs:boolean('yes')";
    q "untyped follows string rules" "5" "xs:integer(data(<a>5</a>))";
    q "anyURI from string trims" "urn:x" "string(xs:anyURI(' urn:x '))";
    q "untypedAtomic round trips anything" "1.25"
      "string(xs:untypedAtomic(1.25))";
    q "dateTime->date drops time" "2007-12-12"
      "string(xs:date(xs:dateTime('2007-12-12T10:30:00')))";
    q "date->dateTime adds midnight" "2007-12-12T00:00:00"
      "string(xs:dateTime(xs:date('2007-12-12')))";
    q "dateTime->time keeps time" "10:30:00"
      "string(xs:time(xs:dateTime('2007-12-12T10:30:00')))";
    q_err "date->integer undefined" "FORG0001"
      "xs:integer(xs:date('2007-01-01'))";
    q_err "integer->date undefined" "FORG0001" "xs:date(20070101)";
    q "identity casts" "true true true"
      "(xs:integer(1) instance of xs:integer,
        xs:string('a') instance of xs:string,
        xs:boolean(true()) instance of xs:boolean)";
  ]

let atomization_tests =
  [
    q "data of element with mixed content concatenates" "a1b"
      "string(data(<e>a<i>1</i>b</e>))";
    q "atomization in arithmetic" "3" "<a>1</a> + <b>2</b>";
    q "atomization in function args" "2" "string-length(<a>hi</a>)";
    q "attributes atomize to their value" "5"
      "(<e n='5'/>)/@n + 0";
    q "comment takes no typed value" "0" "count(data((<a><!--x--></a>)/comment()))";
    q "document node atomizes to full text" "abc"
      "string(data(document { <r>a<x>b</x>c</r> }))";
    q "empty element atomizes to empty string" "0"
      "string-length(data(<e/>))";
  ]

let focus_tests =
  [
    q "predicate focus is the candidate item" "2 4"
      "(1 to 4)[. mod 2 eq 0]";
    q "position resets per predicate" "1"
      "count((1 to 10)[. gt 5][position() eq 1])";
    q "last() in nested predicate" "10"
      "(1 to 10)[position() eq last()]";
    q "path steps rebind focus" "b"
      "local-name((<r><a/><b/></r>)/*[2])";
    q "FLWOR does not change focus" "outer"
      "string((<o>outer</o>)[(for $i in (1) return string(.)) eq 'outer'])";
    q "predicate over attribute axis" "1"
      "count((<e a='1' b='2'/>)/@*[. eq '1'])";
    q_err "context size without focus" "XPDY0002" "last()";
  ]

let axis_semantics =
  [
    q "self on attribute" "1" "count((<e a='1'/>)/@a/self::node())";
    q "parent of attribute is the element" "e"
      "local-name((<e a='1'/>)/@a/..)";
    q "descendant excludes self" "2" "count((<a><b><c/></b></a>)/descendant::*)";
    q "descendant-or-self includes self" "3"
      "count((<a><b><c/></b></a>)/descendant-or-self::*)";
    q "ancestor-or-self from leaf" "3"
      "count((<a><b><c/></b></a>)//c/ancestor-or-self::*)";
    q "following axis skips descendants" "c d"
      "string-join(for $n in (<r><a><b/></a><c><d/></c></r>)//a/following::* return local-name($n), ' ')";
    q "preceding axis excludes ancestors" "a b"
      "string-join(for $n in (<r><a><b/></a><c/></r>)//c/preceding::* return local-name($n), ' ')";
    q "attribute axis only finds attributes" "0"
      "count((<e><a/></e>)/@a)";
    q "child axis never finds attributes" "0"
      "count((<e a='1'/>)/a)";
    q "kind test on axis" "1" "count((<e>t<!--c--></e>)/child::comment())";
    q "reverse axis positional semantics" "b"
      "local-name((<a><b><c/></b></a>)//c/ancestor::*[1])";
    q "union across axes in doc order" "a b"
      "string-join(for $n in (let $r := <r><a/><b/><c/></r> return ($r/c/preceding-sibling::* | $r/b)) return local-name($n), ' ')";
  ]

let comparison_coercion =
  [
    q "untyped = integer compares numerically" "true" "data(<a>07</a>) = 7";
    q "untyped = string compares textually" "false" "data(<a>07</a>) = '7'";
    q "untyped = untyped compares textually" "false"
      "data(<a>07</a>) = data(<b>7</b>)";
    q "untyped = boolean coerces to boolean-ish string" "true"
      "data(<a>true</a>) = 'true'";
    q "numeric promotion in general comparison" "true" "1 = 1.0";
    q "general comparison over two sequences" "true"
      "(1, 2, 3) = (3, 4, 5)";
    q "general < is existential both sides" "true" "(5, 1) < (2)";
    q "value comparisons require singletons" "true"
      "(1, 2)[1] eq 1";
    q "eq between doubles and decimals" "true" "1.5e0 eq 1.5";
    q "string comparison is codepoint" "true" "'B' lt 'a'";
  ]

let constructor_corners =
  [
    q "attribute value normalizes sequence with spaces" "<a x=\"1 2 3\"/>"
      "<a x='{1, 2, 3}'/>";
    q "constructed attributes stringify dates" "2007-12-12"
      "string((<e d='{current-date()}'/>)/@d)";
    q "adjacent atomics in content get one space" "<s>1 2</s>"
      "<s>{1}{' '}{2}</s>";
    q "consecutive enclosed exprs no space between nodes" "<s><a/><b/></s>"
      "<s>{<a/>}{<b/>}</s>";
    q "copied nodes lose their parent" "true"
      "empty((<w>{(<o><i/></o>)/i}</w>)/i/parent::o)";
    q "constructed element has no parent" "1"
      "count((<a/>)/ancestor-or-self::*)";
    q "computed element over constructed content" "<x><y>1</y></x>"
      "element x { element y { 1 } }";
    q "text nodes merge in construction" "1"
      "count((<t>{'a'}{'b'}</t>)/text())";
    q "document constructor wraps children" "true"
      "(document { <r/> }) instance of document-node()";
    q "nested doc order after construction" "a b c"
      "string-join(for $n in (<r><a/><b/><c/></r>)/* return local-name($n), ' ')";
  ]

let flwor_semantics =
  [
    q "let evaluates once (node identity)" "true"
      "let $n := <a/> return $n is $n";
    q "for re-evaluates per binding" "false"
      "let $s := (for $i in (1, 2) return <a/>) return $s[1] is $s[2]";
    q "order by with untyped keys compares as strings" "10 9"
      "for $x in (<v>9</v>, <v>10</v>) order by $x return string($x)";
    q "order by with numeric keys compares numerically" "9 10"
      "for $x in (<v>9</v>, <v>10</v>) order by xs:integer($x) return string($x)";
    q "where evaluated per tuple" "9"
      "sum(for $x in 1 to 5 for $y in 1 to 5 where $x eq $y and $x gt 3 return $x)";
    q "positional var tracks binding order not values" "1 2 3"
      "for $x at $i in ('c', 'b', 'a') return $i";
    q "quantifier binds fresh variables" "true"
      "let $x := 99 return (some $x in (1, 2) satisfies $x eq 2) and $x eq 99";
    q "nested FLWOR over outer variable" "1 2 2 4"
      "for $x in (1, 2) return (for $y in (1, 2) return $x * $y)";
    q "empty for short-circuits return" "0"
      "count(for $x in () return error(xs:QName('NEVER')))";
  ]

let suites =
  [
    ("semantics.casting", casting_matrix);
    ("semantics.atomization", atomization_tests);
    ("semantics.focus", focus_tests);
    ("semantics.axes", axis_semantics);
    ("semantics.comparison", comparison_coercion);
    ("semantics.constructors", constructor_corners);
    ("semantics.flwor", flwor_semantics);
  ]
