(* The XQuery engine: lexing, parsing, expression semantics. *)

open Util

let lexer_tests =
  let open Core.Xquery.Lexer in
  let toks src =
    let lx = create src in
    let rec go acc =
      match next lx with EOF -> List.rev acc | t -> go (t :: acc)
    in
    go []
  in
  [
    case "numbers" (fun () ->
        check_bool "kinds" true
          (toks "1 2.5 .5 3e2" = [ INT "1"; DEC "2.5"; DEC ".5"; DBL "3e2" ]));
    case "qnames keep prefixes" (fun () ->
        check_bool "qname" true (toks "fn:data" = [ NAME (Some "fn", "data") ]));
    case "axis separator is not a qname colon" (fun () ->
        check_bool "axis" true
          (toks "child::a" = [ NAME (None, "child"); AXIS_SEP; NAME (None, "a") ]));
    case "string escapes" (fun () ->
        check_bool "quotes" true (toks {|"a""b"|} = [ STR {|a"b|} ]);
        check_bool "entity" true (toks {|"x&amp;y"|} = [ STR "x&y" ]));
    case "comments nest" (fun () ->
        check_bool "nested" true (toks "1 (: a (: b :) c :) 2" = [ INT "1"; INT "2" ]));
    case "operators" (fun () ->
        check_bool "ops" true
          (toks "<= >= != << >> := ::"
          = [ LE; GE; NOTEQUALS; LTLT; GTGT; ASSIGN; AXIS_SEP ]));
    case "wildcards" (fun () ->
        check_bool "ns" true (toks "p:*" = [ NS_WILDCARD "p" ]);
        check_bool "local" true (toks "*:x" = [ LOCAL_WILDCARD "x" ]);
        check_bool "anyany" true (toks "*:*" = [ LOCAL_WILDCARD "*" ]));
    case "dots" (fun () ->
        check_bool "dots" true (toks ". .. .5" = [ DOT; DOTDOT; DEC ".5" ]));
    case "names may contain dots and dashes" (fun () ->
        check_bool "name" true (toks "a-b.c" = [ NAME (None, "a-b.c") ]));
    case "unterminated string raises" (fun () ->
        check_bool "raises" true
          (match toks "\"abc" with
          | _ -> false
          | exception Lex_error _ -> true));
    case "unterminated comment raises" (fun () ->
        check_bool "raises" true
          (match toks "(: never closed" with
          | _ -> false
          | exception Lex_error _ -> true));
  ]

let arithmetic_tests =
  [
    q "precedence" "7" "1 + 2 * 3";
    q "parens" "9" "(1 + 2) * 3";
    q "integer division" "3" "7 idiv 2";
    q "div yields decimal" "3.5" "7 div 2";
    q "mod" "1" "7 mod 2";
    q "unary minus" "-5" "-(2 + 3)";
    q "double unary" "5" "- -5";
    q "decimal arithmetic" "3.75" "1.25 * 3";
    q "double exponent literal" "250" "2.5E2";
    q "empty operand yields empty" "" "() + 1";
    q "untyped operand is cast to double" "3" "fn:data(<x>1</x>) + 2";
    q_err "arith on string" "XPTY0004" "'a' + 1";
    q_err "division by zero" "FOAR0001" "1 div 0";
    q_err "idiv by zero" "FOAR0001" "1 idiv 0";
    q "double div by zero is INF" "INF" "1e0 div 0";
    q "range" "3 4 5" "3 to 5";
    q "empty range" "" "5 to 3";
    q "range over vars" "10"
      "let $a := 1, $b := 4 return count(for $i in $a to $b return $i) + 6";
  ]

let comparison_tests =
  [
    q "value eq" "true" "1 eq 1";
    q "value comparison empty propagates" "" "() eq 1";
    q "general eq existential" "true" "(1, 2, 3) = 3";
    q "general against empty is false" "false" "(1, 2) = ()";
    q "general ne existential quirk" "true" "(1, 2) != 1";
    q "untyped vs number in general comparison" "true" "fn:data(<a>5</a>) = 5";
    q "untyped vs untyped compares as string" "false"
      "fn:data(<a>05</a>) = fn:data(<b>5</b>)";
    q "value lt on strings" "true" "'abc' lt 'abd'";
    q_err "value comparison of many items" "XPTY0004" "(1, 2) eq 1";
    q_err "string eq number" "XPTY0004" "'a' eq 1";
    q "node is" "true" "let $a := <x/> return $a is $a";
    q "node is distinct" "false" "<x/> is <x/>";
    q "node order comparison" "true"
      "let $d := <a><b/><c/></a> return ($d/b << $d/c)";
    q "node comparison with empty is empty" "" "() is <a/>";
    q "date comparison" "true" "xs:date('2007-01-01') lt xs:date('2007-12-01')";
    q "NaN equals nothing" "false" "number('x') = number('x')";
    q "boolean comparison" "true" "true() gt false()";
  ]

let logic_tests =
  [
    q "and or precedence" "true" "true() or false() and false()";
    q "ebv of node sequence" "true" "<a/> and true()";
    q "ebv of zero" "false" "0 and 1";
    q "not" "true" "not(())";
    q "if else" "yes" "if (1 le 2) then 'yes' else 'no'";
    q "if on sequence ebv" "empty" "if (()) then 'full' else 'empty'";
    q "some satisfies" "true" "some $x in (1, 2, 3) satisfies $x gt 2";
    q "every satisfies" "false" "every $x in (1, 2, 3) satisfies $x gt 2";
    q "some over empty is false" "false" "some $x in () satisfies true()";
    q "every over empty is true" "true" "every $x in () satisfies false()";
    q "multiple quantifier bindings" "true"
      "some $x in (1, 2), $y in (3, 4) satisfies $x + $y eq 6";
  ]

let sequence_tests =
  [
    q "comma flattens" "1 2 3 4" "(1, (2, 3), 4)";
    q "empty parens" "" "()";
    q "union dedupes and sorts" "1"
      "let $a := <x/> return count(($a, $a) | $a)";
    q "union document order" "<a/><b/>"
      "let $d := <d><a/><b/></d> return ($d/b, $d/a) | ()";
    q "intersect" "1"
      "let $d := <d><a/><b/></d> return count($d/* intersect $d/a)";
    q "except" "<b/>" "let $d := <d><a/><b/></d> return $d/* except $d/a";
    q_err "union of atomics" "XPTY0018" "(1, 2) | (3)";
    q "instance of" "true" "(1, 2) instance of xs:integer+";
    q "instance of empty" "true" "() instance of empty-sequence()";
    q "instance of wrong type" "false" "'a' instance of xs:integer";
    q "instance of element test" "true" "<a/> instance of element(a)";
    q "treat as passes" "5" "(5) treat as xs:integer";
    q_err "treat as fails" "XPDY0050" "('a') treat as xs:integer";
    q "castable" "true" "'12' castable as xs:integer";
    q "not castable" "false" "'x' castable as xs:integer";
    q "cast" "12" "'12' cast as xs:integer";
    q "cast optional empty" "" "() cast as xs:integer?";
    q_err "cast empty to non-optional" "XPTY0004" "() cast as xs:integer";
    q_err "cast invalid" "FORG0001" "'x' cast as xs:integer";
  ]

let flwor_tests =
  [
    q "for over literals" "2 4 6" "for $x in (1, 2, 3) return 2 * $x";
    q "for with positional var" "1:a 2:b"
      "for $x at $i in ('a', 'b') return concat($i, ':', $x)";
    q "nested for is a cross product" "6"
      "count(for $x in (1, 2) for $y in (1, 2, 3) return ($x * $y))";
    q "let binds a sequence" "3" "let $s := (1, 2, 3) return count($s)";
    q "where filters" "3 4" "for $x in 1 to 4 where $x gt 2 return $x";
    q "order by ascending" "1 2 3" "for $x in (3, 1, 2) order by $x return $x";
    q "order by descending" "c b a"
      "for $x in ('b', 'c', 'a') order by $x descending return $x";
    q "order by two keys" "a1 a2 b1"
      (* secondary key breaks ties *)
      "for $x in ('b1', 'a2', 'a1') order by substring($x, 1, 1), substring($x, 2) return $x";
    q "order by empty least puts empties first" " 1 2"
      "string-join(for $x in (<a>2</a>, <a/>, <a>1</a>) order by $x/text() return string($x), ' ')";
    q "order by empty greatest puts empties last" "1 2 "
      "string-join(for $x in (<a>2</a>, <a/>, <a>1</a>) order by $x/text() empty greatest return string($x), ' ')";
    q "order is stable" "b1 a1 a2"
      "for $x in ('b1', 'a1', 'a2') order by 1 return $x";
    q "for with type declaration coerces" "1 2 3"
      "for $x as xs:integer in fn:data(<a><b>1</b><b>2</b><b>3</b></a>/b) return $x * 1";
    q "for typed binding participates in arithmetic" "6"
      "sum(for $x as xs:integer in fn:data(<a><b>1</b><b>2</b><b>3</b></a>/b) return $x)";
    q "let with type check" "ok"
      "let $x as xs:string := 'ok' return $x";
    q_err "let type mismatch" "XPTY0004"
      "let $x as xs:integer := 'no' return $x";
    q "variable shadowing" "2"
      "let $x := 1 return (let $x := 2 return $x)";
    q "where references let" "20"
      "for $x in (10, 20) let $y := $x div 10 where $y eq 2 return $x";
    q_err "undefined variable" "XPST0008" "$nope";
  ]

let path_tests =
  [
    q "child step" "12" "(<a><b>1</b><b>2</b></a>)/b/text()";
    q "attribute axis" "v" "string((<a x='v'/>)/@x)";
    q "attribute wildcard" "2" "count((<a x='1' y='2'/>)/@*)";
    q "descendant or self //" "2" "count((<a><b><b/></b></a>)//b)";
    q "parent axis" "a" "local-name((<a><b/></a>)/b/..)";
    q "self axis with test" "1" "count((<a/>)/self::a)";
    q "ancestor axis" "2"
      "count((<a><b><c/></b></a>)/b/c/ancestor::*)";
    q "following-sibling" "<c/>"
      "let $d := <d><b/><c/></d> return $d/b/following-sibling::*";
    q "preceding-sibling in doc order" "b c"
      "let $d := <d><b/><c/><e/></d> return (for $n in $d/e/preceding-sibling::* return local-name($n))";
    q "wildcard step" "2" "count((<a><b/><c/></a>)/*)";
    q "namespace wildcard" "1"
      "declare namespace p = 'urn:p'; count((<x><p:y xmlns:p='urn:p'/><z/></x>)/p:*)";
    q "local wildcard" "2"
      "declare namespace p = 'urn:p'; count((<x><p:y xmlns:p='urn:p'/><y/></x>)/*:y)";
    q "kind test text()" "ab"
      "string-join((<a>a<b/>b</a>)/text(), '')";
    q "kind test node() includes text" "3"
      "count((<a>x<b/>y</a>)/node())";
    q "kind test comment()" "1" "count((<a><!--c--></a>)/comment())";
    q "positional predicate" "<b>2</b>" "(<a><b>1</b><b>2</b></a>)/b[2]";
    q "predicate last()" "2" "string((<a><b>1</b><b>2</b></a>)/b[last()])";
    q "predicate position()" "12"
      "(<a><b>1</b><b>2</b><b>3</b></a>)/b[position() lt 3]/text()";
    q "boolean predicate" "<b x=\"1\"/>" "(<a><b x='1'/><b/></a>)/b[@x]";
    q "comparison predicate" "<b>2</b>" "(<a><b>1</b><b>2</b></a>)/b[. eq '2']";
    q "predicate on reverse axis counts from nearest" "b"
      "local-name((<a><b><c><d/></c></b></a>)//d/ancestor::*[2])";
    q "chained predicates" "1" "count((1 to 10)[. mod 2 eq 0][. lt 5][2])";
    q "path result in document order" "b c"
      "let $d := <d><b/><c/></d> return (for $n in ($d/c, $d/b)/self::* return local-name($n))";
    q "path dedupes" "1" "let $d := <d><b/></d> return count(($d, $d)/b)";
    q "leading slash from document" "r"
      "let $d := document { <r/> } return local-name(($d/r)[1])";
    q "filter on function result" "c"
      "string(reverse(('a', 'b', 'c'))[1])";
    q_err "path step on atomic context" "XPTY0020" "(1)/a";
    q "atomic-valued final step allowed" "1 2"
      "(<a><b>1</b><b>2</b></a>)/b/data(.)";
    q_err "mixed nodes and atomics in path" "XPTY0018"
      "(<a><b>1</b><b>2</b></a>)/b/(if (. eq '1') then data(.) else .)";
  ]

let constructor_tests =
  [
    q "direct element with attribute expr" "<a b=\"2\"/>" "<a b='{1 + 1}'/>";
    q "attribute with mixed parts" "<a b=\"x3y\"/>" "<a b='x{1+2}y'/>";
    q "attribute value entity" "<a b=\"&amp;\"/>" "<a b='&amp;'/>";
    q "doubled braces escape" "<a>{}</a>" "<a>{{}}</a>";
    q "content expression spacing" "<a>1 2</a>" "<a>{1, 2}</a>";
    q "adjacent text and expr" "<a>n=3</a>" "<a>n={3}</a>";
    q "boundary whitespace is stripped" "<a><b/></a>" "<a>  <b/>  </a>";
    q "nested constructors" "<a><b x=\"1\">t</b></a>" "<a><b x='1'>t</b></a>";
    q "nodes are copied into constructors" "false"
      "let $b := <b/> let $a := <a>{$b}</a> return $a/b is $b";
    q "attribute node in content becomes attribute" "<a x=\"1\"/>"
      "<a>{attribute x { 1 }}</a>";
    q "computed element static name" "<e>5</e>" "element e { 5 }";
    q "computed element dynamic name" "<n7/>"
      "element { concat('n', 7) } {}";
    q "computed attribute" "<a p=\"q\"/>" "<a>{attribute p { 'q' }}</a>";
    q "computed text" "<a>xy</a>" "<a>{text { 'xy' }}</a>";
    q "text of empty sequence constructs nothing" "0"
      "count(text { () })";
    q "computed document" "1" "count(document { <r/> })";
    q "computed comment" "<!--hello-->" "comment { 'hello' }";
    q "computed pi" "<?tgt data?>" "processing-instruction tgt { 'data' }";
    q "direct comment constructor" "<!--note-->" "<!--note-->";
    q "namespace declaration in constructor scopes subtree" "1"
      "declare namespace o = 'urn:out';
       count((<p:a xmlns:p='urn:out'><p:b/></p:a>)/o:b)";
    q "CDATA in constructor" "<c>&lt;raw&gt;</c>" "<c><![CDATA[<raw>]]></c>";
    q_err "duplicate attribute from content" "XQDY0025"
      "<a x='1'>{attribute x { 2 }}</a>";
    q "document node content splices" "<w><r/></w>"
      "<w>{document { <r/> }}</w>";
    q "sequence in element flattens" "<l><i>1</i><i>2</i></l>"
      "<l>{for $i in 1 to 2 return <i>{$i}</i>}</l>";
  ]

let function_decl_tests =
  [
    q "simple function" "42"
      "declare function local:f() { 42 }; local:f()";
    q "typed parameters and result" "6"
      "declare function local:add($a as xs:integer, $b as xs:integer) as xs:integer { $a + $b }; local:add(2, 4)";
    q "recursion" "120"
      "declare function local:fact($n as xs:integer) as xs:integer { if ($n le 1) then 1 else $n * local:fact($n - 1) }; local:fact(5)";
    q "mutual recursion" "true"
      "declare function local:even($n as xs:integer) as xs:boolean { if ($n eq 0) then true() else local:odd($n - 1) };
       declare function local:odd($n as xs:integer) as xs:boolean { if ($n eq 0) then false() else local:even($n - 1) };
       local:even(10)";
    q "overloading by arity" "1 2"
      "declare function local:f() { 1 };
       declare function local:f($x) { $x };
       (local:f(), local:f(2))";
    q "function sees global variables" "10"
      "declare variable $g := 10;
       declare function local:get() { $g }; local:get()";
    q "parameter coercion from untyped" "8"
      "declare function local:dbl($x as xs:integer) { $x * 2 }; local:dbl(fn:data(<a>4</a>))";
    q_err "result type enforced" "XPTY0004"
      "declare function local:bad() as xs:integer { 'str' }; local:bad()";
    q_err "unknown function" "XPST0017" "local:missing()";
    q_err "duplicate declaration" "XQST0034"
      "declare function local:f() { 1 }; declare function local:f() { 2 }; local:f()";
    q_err "infinite recursion is caught" "XQDY0900"
      "declare function local:loop() { local:loop() }; local:loop()";
    q "prolog variable depends on earlier variable" "30"
      "declare variable $a := 10; declare variable $b := $a * 3; $b";
  ]

let prolog_tests =
  [
    q "declare namespace" "1"
      "declare namespace z = 'urn:z'; count(<z:e xmlns:z='urn:z'/>/self::z:e)";
    q "default element namespace applies to tests" "1"
      "declare default element namespace 'urn:d'; count((<e xmlns='urn:d'><c/></e>)/c)";
    q "boundary-space declaration accepted" "ok"
      "declare boundary-space strip; 'ok'";
    q "option declaration ignored" "ok"
      "declare option local:opt 'v'; 'ok'";
    q "import module declares prefix" "ok"
      "import module namespace m = 'urn:m'; 'ok'";
    q_err "external variable unsupplied" "XPDY0002"
      "declare variable $ext external; $ext";
    case "external variable supplied" (fun () ->
        check_string "ext" "5"
          (xq
             ~vars:[ (Core.Xdm.Qname.local "ext", Core.Xdm.Item.int 5) ]
             "declare variable $ext external; $ext"));
  ]

let syntax_error_tests =
  [
    q_syntax "unbalanced paren" "(1, 2";
    q_syntax "missing return" "for $x in (1,2) $x";
    q_syntax "reserved word as function" "if(1, 2)";
    q_syntax "bad operator sequence" "1 + * 2";
    q_syntax "unterminated constructor" "<a><b></a>";
    q_syntax "junk after query" "1 2";
    q_syntax "empty where" "for $x in 1 where return $x";
    q_syntax "assignment outside xqse" "let $x := 1 return set $x := 2";
  ]

let suites =
  [
    ("xquery.lexer", lexer_tests);
    ("xquery.arith", arithmetic_tests);
    ("xquery.comparison", comparison_tests);
    ("xquery.logic", logic_tests);
    ("xquery.sequence", sequence_tests);
    ("xquery.flwor", flwor_tests);
    ("xquery.path", path_tests);
    ("xquery.constructor", constructor_tests);
    ("xquery.functions-decl", function_decl_tests);
    ("xquery.prolog", prolog_tests);
    ("xquery.syntax-errors", syntax_error_tests);
  ]
