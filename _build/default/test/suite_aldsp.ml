(* The ALDSP layer: row/XML mapping, source introspection, lineage
   analysis, update decomposition and optimistic concurrency. *)

open Util
open Core
open Core.Xdm
module R = Relational
module F = Fixtures.Customer_profile

let rowxml_tests =
  let tbl () =
    R.Table.create
      {
        R.Table.tbl_name = "T";
        columns =
          [
            { R.Table.col_name = "ID"; col_type = R.Value.T_int; nullable = false };
            { R.Table.col_name = "NAME"; col_type = R.Value.T_text; nullable = true };
            { R.Table.col_name = "RATE"; col_type = R.Value.T_float; nullable = true };
          ];
        primary_key = [ "ID" ];
        foreign_keys = [];
      }
  in
  [
    case "row_to_xml omits nulls" (fun () ->
        let t = tbl () in
        let xml = Aldsp.Rowxml.row_to_xml t [| R.Value.Int 1; R.Value.Null; R.Value.Float 2.5 |] in
        check_string "xml" "<T><ID>1</ID><RATE>2.5</RATE></T>"
          (Xml_serialize.to_string xml));
    case "xml_to_row round trips" (fun () ->
        let t = tbl () in
        let row = [| R.Value.Int 7; R.Value.Text "x"; R.Value.Null |] in
        check_bool "rt" true (Aldsp.Rowxml.xml_to_row t (Aldsp.Rowxml.row_to_xml t row) = row));
    case "xml_to_pairs ignores unknown elements" (fun () ->
        let t = tbl () in
        let el = Xml_parse.parse_fragment "<T><ID>1</ID><JUNK>z</JUNK></T>" |> List.hd in
        check_bool "pairs" true (Aldsp.Rowxml.xml_to_pairs t el = [ ("ID", R.Value.Int 1) ]));
    case "pk_pred_of_xml" (fun () ->
        let t = tbl () in
        let el = Xml_parse.parse_fragment "<T><ID>3</ID><NAME>n</NAME></T>" |> List.hd in
        check_string "pred" "ID = 3" (R.Pred.to_sql (Aldsp.Rowxml.pk_pred_of_xml t el)));
    case "pk_pred_of_xml requires the key" (fun () ->
        let t = tbl () in
        let el = Xml_parse.parse_fragment "<T><NAME>n</NAME></T>" |> List.hd in
        check_bool "raises" true
          (match Aldsp.Rowxml.pk_pred_of_xml t el with
          | _ -> false
          | exception Failure _ -> true));
    case "shape_of_table marks nullable columns optional" (fun () ->
        let t = tbl () in
        let decl = Aldsp.Rowxml.shape_of_table t in
        match decl.Schema.type_def with
        | Schema.Complex ct ->
          let p = List.nth ct.Schema.children 1 in
          check_int "min" 0 p.Schema.min_occurs
        | Schema.Simple _ -> Alcotest.fail "expected complex type");
    prop "row -> xml -> row round trips arbitrary typed rows"
      QCheck.(pair (int_range (-500) 500) (option (string_of_size (Gen.int_range 0 10))))
      (fun (id, name) ->
        QCheck.assume
          (match name with
          | Some s -> String.for_all (fun c -> c <> '<' && c <> '&' && c <> '\r') s
          | None -> true);
        let t = tbl () in
        let row =
          [| R.Value.Int id;
             (match name with Some s -> R.Value.Text s | None -> R.Value.Null);
             R.Value.Null |]
        in
        Aldsp.Rowxml.xml_to_row t (Aldsp.Rowxml.row_to_xml t row) = row);
  ]

let introspect_tests =
  [
    case "one entity service per table with four methods + navs" (fun () ->
        let env = F.make ~customers:1 () in
        match Aldsp.Dataspace.find_service env.F.ds "db1/CUSTOMER" with
        | None -> Alcotest.fail "missing service"
        | Some svc ->
          let kinds =
            List.map (fun m -> Aldsp.Data_service.kind_to_string m.Aldsp.Data_service.m_kind)
              svc.Aldsp.Data_service.ds_methods
          in
          check_bool "read" true (List.mem "read" kinds);
          check_bool "create" true (List.mem "create" kinds);
          check_bool "update" true (List.mem "update" kinds);
          check_bool "delete" true (List.mem "delete" kinds);
          check_bool "navigation" true
            (List.exists (fun k -> String.length k > 10 && String.sub k 0 10 = "navigation") kinds));
    case "read function returns the XML view of rows" (fun () ->
        let env = F.make ~customers:2 () in
        let rows =
          Aldsp.Dataspace.call env.F.ds (Qname.make ~uri:"ld:db1/CUSTOMER" "CUSTOMER") []
        in
        check_int "rows" 3 (List.length rows) (* 2 + agent 007 *));
    case "navigation function follows the foreign key" (fun () ->
        let env = F.make ~customers:1 () in
        let sess = Aldsp.Dataspace.session env.F.ds in
        let orders =
          Xqse.Session.eval sess
            "for $c in customer:CUSTOMER() where $c/CID eq '007' return customer:getORDERS($c)"
        in
        check_int "orders of 007" 1 (List.length orders));
    case "reverse navigation reaches the parent" (fun () ->
        let env = F.make ~customers:1 () in
        let sess = Aldsp.Dataspace.session env.F.ds in
        let owner =
          Xqse.Session.eval sess
            "for $o in orders:ORDERS() return string(orders:getCUSTOMER($o)/CID)"
        in
        check_bool "all 007 or C1" true
          (List.for_all
             (fun item -> let s = Item.string_of_item item in s = "007" || s = "C1")
             owner));
    case "create procedure inserts and returns keys" (fun () ->
        let env = F.make ~customers:0 () in
        let sess = Aldsp.Dataspace.session env.F.ds in
        let keys =
          Xqse.Session.eval sess
            {| { return value customer:createCUSTOMER(
                   <CUSTOMER><CID>C9</CID><FIRST_NAME>A</FIRST_NAME><LAST_NAME>B</LAST_NAME></CUSTOMER>); } |}
        in
        check_string "key" "<CUSTOMER_KEY><CID>C9</CID></CUSTOMER_KEY>"
          (Xml_serialize.seq_to_string keys);
        check_int "rows" 2 (R.Table.row_count env.F.customer));
    case "update procedure updates by pk" (fun () ->
        let env = F.make ~customers:0 () in
        let sess = Aldsp.Dataspace.session env.F.ds in
        ignore
          (Xqse.Session.eval sess
             {| { customer:updateCUSTOMER(
                    <CUSTOMER><CID>007</CID><LAST_NAME>Bond</LAST_NAME></CUSTOMER>); } |});
        let row = Option.get (R.Table.find_pk env.F.customer [ R.Value.Text "007" ]) in
        check_bool "updated" true
          (R.Table.get row env.F.customer "LAST_NAME" = R.Value.Text "Bond"));
    case "delete procedure deletes by pk" (fun () ->
        let env = F.make ~customers:0 () in
        (* remove dependent rows first *)
        ignore (R.Database.exec env.F.db1
            (R.Database.Delete { table = "ORDERS"; where = R.Pred.True }));
        let sess = Aldsp.Dataspace.session env.F.ds in
        ignore
          (Xqse.Session.eval sess
             {| { customer:deleteCUSTOMER(<CUSTOMER><CID>007</CID></CUSTOMER>); } |});
        check_int "rows" 0 (R.Table.row_count env.F.customer));
    case "create error surfaces as a named XQuery error" (fun () ->
        let env = F.make ~customers:0 () in
        let sess = Aldsp.Dataspace.session env.F.ds in
        match
          Xqse.Session.eval sess
            {| { customer:createCUSTOMER(
                   <CUSTOMER><CID>007</CID><FIRST_NAME>A</FIRST_NAME><LAST_NAME>B</LAST_NAME></CUSTOMER>); } |}
        with
        | _ -> Alcotest.fail "expected CreateError"
        | exception Item.Error { code; _ } ->
          check_string "code" "CreateError" code.Qname.local);
    case "web-service introspection yields a library service" (fun () ->
        let env = F.make ~customers:0 () in
        match Aldsp.Dataspace.find_service env.F.ds "CreditRatingService" with
        | None -> Alcotest.fail "missing ws service"
        | Some svc ->
          check_bool "library" true (svc.Aldsp.Data_service.ds_kind = Aldsp.Data_service.Library);
          check_int "ops" 1 (List.length svc.Aldsp.Data_service.ds_methods));
    case "ws faults surface with the service namespace Fault code" (fun () ->
        let env = F.make ~customers:0 () in
        Webservice.inject_fault_next env.F.ws ~message:"down";
        let sess = Aldsp.Dataspace.session env.F.ds in
        match
          Xqse.Session.eval sess
            "crs:getCreditRating(<crs:getCreditRating><crs:lastName>x</crs:lastName><crs:ssn>1</crs:ssn></crs:getCreditRating>)"
        with
        | _ -> Alcotest.fail "expected fault"
        | exception Item.Error { code; _ } ->
          check_string "code" "Fault" code.Qname.local;
          check_string "ns" "urn:creditrating" code.Qname.uri);
    case "describe produces a design view" (fun () ->
        let env = F.make ~customers:0 () in
        let d = Aldsp.Dataspace.describe env.F.ds in
        check_bool "mentions shape" true
          (let m = "shape: element CUSTOMER" in
           let n = String.length d and k = String.length m in
           let rec go i = i + k <= n && (String.sub d i k = m || go (i + 1)) in
           go 0));
  ]

let lineage_tests =
  [
    case "figure 3 lineage: root block" (fun () ->
        let env = F.make ~customers:1 () in
        match Aldsp.Dataspace.lineage_of env.F.ds env.F.svc with
        | Error m -> Alcotest.fail m
        | Ok blk ->
          check_string "row" "CustomerProfile" blk.Aldsp.Lineage.b_row_elem;
          check_string "table" "CUSTOMER" blk.Aldsp.Lineage.b_table;
          check_string "db" "db1" blk.Aldsp.Lineage.b_db;
          check_int "fields" 3 (List.length blk.Aldsp.Lineage.b_fields);
          check_int "children" 2 (List.length blk.Aldsp.Lineage.b_children);
          (* the web-service-derived CreditRating is opaque *)
          check_bool "opaque" true (blk.Aldsp.Lineage.b_opaque <> []));
    case "navigation-function child carries the fk link" (fun () ->
        let env = F.make ~customers:1 () in
        match Aldsp.Dataspace.lineage_of env.F.ds env.F.svc with
        | Error m -> Alcotest.fail m
        | Ok blk ->
          let orders = Option.get (Aldsp.Lineage.find_child blk "Orders") in
          check_bool "wrapper" true (orders.Aldsp.Lineage.c_wrapper = Some "Orders");
          check_bool "link" true (orders.Aldsp.Lineage.c_link = [ ("CID", "CID") ]);
          check_string "table" "ORDERS" orders.Aldsp.Lineage.c_block.Aldsp.Lineage.b_table;
          (* renamed field TOTAL maps to TOTAL_ORDER_AMOUNT *)
          let f = Option.get (Aldsp.Lineage.find_field orders.Aldsp.Lineage.c_block "TOTAL") in
          check_string "col" "TOTAL_ORDER_AMOUNT" f.Aldsp.Lineage.f_column);
    case "where-join child crosses databases" (fun () ->
        let env = F.make ~customers:1 () in
        match Aldsp.Dataspace.lineage_of env.F.ds env.F.svc with
        | Error m -> Alcotest.fail m
        | Ok blk ->
          let cards = Option.get (Aldsp.Lineage.find_child blk "CreditCards") in
          check_string "db" "db2" cards.Aldsp.Lineage.c_block.Aldsp.Lineage.b_db;
          check_bool "link" true (cards.Aldsp.Lineage.c_link = [ ("CID", "CID") ]));
    case "physical services are their own lineage" (fun () ->
        let env = F.make ~customers:1 () in
        let svc = Option.get (Aldsp.Dataspace.find_service env.F.ds "db1/CUSTOMER") in
        match Aldsp.Dataspace.lineage_of env.F.ds svc with
        | Error m -> Alcotest.fail m
        | Ok blk ->
          check_string "table" "CUSTOMER" blk.Aldsp.Lineage.b_table;
          check_int "fields" 4 (List.length blk.Aldsp.Lineage.b_fields));
    case "lineage is cached" (fun () ->
        let env = F.make ~customers:1 () in
        let a = Aldsp.Dataspace.lineage_of env.F.ds env.F.svc in
        let b = Aldsp.Dataspace.lineage_of env.F.ds env.F.svc in
        check_bool "same" true (a == b));
    case "unanalyzable read function reports an error" (fun () ->
        let env = F.make ~customers:1 () in
        let svc =
          Aldsp.Dataspace.create_entity_service env.F.ds ~name:"Weird"
            ~namespace:"urn:weird"
            ~shape:{ Schema.name = Qname.make ~uri:"urn:weird" "W"; type_def = Schema.complex [] }
            ~methods:[ ("getW", Aldsp.Data_service.Read_function) ]
            {|declare namespace w = "urn:weird";
              declare function w:getW() as element(w:W)* {
                for $i in 1 to 3 return <w:W><N>{$i}</N></w:W>
              };|}
        in
        match Aldsp.Dataspace.lineage_of env.F.ds svc with
        | Ok _ -> Alcotest.fail "expected analysis failure"
        | Error msg -> check_bool "message" true (String.length msg > 0));
    case "describe renders the tree" (fun () ->
        let env = F.make ~customers:1 () in
        match Aldsp.Dataspace.lineage_of env.F.ds env.F.svc with
        | Error m -> Alcotest.fail m
        | Ok blk ->
          let d = Aldsp.Lineage.describe blk in
          check_bool "mentions join" true
            (let m = "join: CID = parent.CID" in
             let n = String.length d and k = String.length m in
             let rec go i = i + k <= n && (String.sub d i k = m || go (i + 1)) in
             go 0));
  ]

let occ_tests =
  [
    case "read-values conditions on every read column" (fun () ->
        let c =
          Aldsp.Occ.condition Aldsp.Occ.Read_values
            ~read_values:[ ("A", R.Value.Int 1); ("B", R.Value.Text "x") ]
            ~changed_columns:[ "A" ]
        in
        check_string "sql" "(A = 1 AND B = 'x')" (R.Pred.to_sql c));
    case "updated-values conditions only on changes" (fun () ->
        let c =
          Aldsp.Occ.condition Aldsp.Occ.Updated_values
            ~read_values:[ ("A", R.Value.Int 1); ("B", R.Value.Text "x") ]
            ~changed_columns:[ "B" ]
        in
        check_string "sql" "B = 'x'" (R.Pred.to_sql c));
    case "chosen subset" (fun () ->
        let c =
          Aldsp.Occ.condition (Aldsp.Occ.Chosen [ "VERSION" ])
            ~read_values:[ ("A", R.Value.Int 1); ("VERSION", R.Value.Int 7) ]
            ~changed_columns:[ "A" ]
        in
        check_string "sql" "VERSION = 7" (R.Pred.to_sql c));
    case "null read values become IS NULL conditions" (fun () ->
        let c =
          Aldsp.Occ.condition Aldsp.Occ.Read_values
            ~read_values:[ ("A", R.Value.Null) ]
            ~changed_columns:[]
        in
        check_string "sql" "A IS NULL" (R.Pred.to_sql c));
  ]

let decompose_tests =
  [
    case "single leaf change produces one conditioned UPDATE" (fun () ->
        let env = F.make ~customers:1 () in
        let dg = F.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        let result = Aldsp.Dataspace.submit env.F.ds env.F.svc dg in
        check_bool "committed" true result.Aldsp.Dataspace.sr_committed;
        check_int "statements" 1 result.Aldsp.Dataspace.sr_statements;
        check_bool "only db1" true
          (List.for_all
             (fun s -> String.length s >= 4 && String.sub s 0 4 = "db1:")
             result.Aldsp.Dataspace.sr_sql));
    case "unchanged sources see no statements" (fun () ->
        let env = F.make ~customers:1 () in
        R.Database.clear_log env.F.db2;
        let dg = F.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1 [ ("FIRST_NAME", 1) ] "Jim";
        ignore (Aldsp.Dataspace.submit env.F.ds env.F.svc dg);
        check_int "db2 untouched" 0 (R.Database.log_size env.F.db2));
    case "two leaves of one row collapse into one UPDATE" (fun () ->
        let env = F.make ~customers:1 () in
        let dg = F.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        Sdo.set_leaf dg 1 [ ("FIRST_NAME", 1) ] "Jim";
        let result = Aldsp.Dataspace.submit env.F.ds env.F.svc dg in
        check_int "statements" 1 result.Aldsp.Dataspace.sr_statements);
    case "changes in different rows make separate statements" (fun () ->
        let env = F.make ~customers:1 () in
        let dg = F.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        Sdo.set_leaf dg 1 (Sdo.path_of_string "Orders/ORDERS[1]/STATUS") "CLOSED";
        let result = Aldsp.Dataspace.submit env.F.ds env.F.svc dg in
        check_int "statements" 2 result.Aldsp.Dataspace.sr_statements);
    case "nested change updates the renamed column" (fun () ->
        let env = F.make ~customers:1 () in
        let dg = F.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1 (Sdo.path_of_string "Orders/ORDERS[1]/TOTAL") "99.5";
        let result = Aldsp.Dataspace.submit env.F.ds env.F.svc dg in
        check_bool "mapped" true
          (List.exists
             (fun s ->
               let m = "SET TOTAL_ORDER_AMOUNT = 99.5" in
               let n = String.length s and k = String.length m in
               let rec go i = i + k <= n && (String.sub s i k = m || go (i + 1)) in
               go 0)
             result.Aldsp.Dataspace.sr_sql));
    case "cross-database changes commit atomically" (fun () ->
        let env = F.make ~customers:1 () in
        let dg = F.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        Sdo.set_leaf dg 1 (Sdo.path_of_string "CreditCards/CREDIT_CARD[1]/BRAND") "AMEX";
        let result = Aldsp.Dataspace.submit env.F.ds env.F.svc dg in
        check_bool "committed" true result.Aldsp.Dataspace.sr_committed;
        check_int "statements" 2 result.Aldsp.Dataspace.sr_statements);
    case "prepare failure rolls back both databases" (fun () ->
        let env = F.make ~customers:1 () in
        let dg = F.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        Sdo.set_leaf dg 1 (Sdo.path_of_string "CreditCards/CREDIT_CARD[1]/BRAND") "AMEX";
        R.Database.set_fail_on_prepare env.F.db2 true;
        let result = Aldsp.Dataspace.submit env.F.ds env.F.svc dg in
        check_bool "aborted" true (not result.Aldsp.Dataspace.sr_committed);
        let row = Option.get (R.Table.find_pk env.F.customer [ R.Value.Text "007" ]) in
        check_bool "db1 rolled back" true
          (R.Table.get row env.F.customer "LAST_NAME" = R.Value.Text "Carrey"));
    case "optimistic conflict under updated-values" (fun () ->
        let env = F.make ~customers:1 () in
        let dg = F.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        ignore (R.Database.exec env.F.db1
            (R.Database.Update
               { table = "CUSTOMER"; set = [ ("LAST_NAME", R.Value.Text "Intruder") ];
                 where = R.Pred.eq "CID" (R.Value.Text "007") }));
        let r = Aldsp.Dataspace.submit env.F.ds env.F.svc ~policy:Aldsp.Occ.Updated_values dg in
        check_bool "aborted" true (not r.Aldsp.Dataspace.sr_committed));
    case "updated-values tolerates changes to other columns" (fun () ->
        let env = F.make ~customers:1 () in
        let dg = F.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        ignore (R.Database.exec env.F.db1
            (R.Database.Update
               { table = "CUSTOMER"; set = [ ("FIRST_NAME", R.Value.Text "Other") ];
                 where = R.Pred.eq "CID" (R.Value.Text "007") }));
        let r = Aldsp.Dataspace.submit env.F.ds env.F.svc ~policy:Aldsp.Occ.Updated_values dg in
        check_bool "committed" true r.Aldsp.Dataspace.sr_committed);
    case "read-values rejects changes to any read column" (fun () ->
        let env = F.make ~customers:1 () in
        let dg = F.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        ignore (R.Database.exec env.F.db1
            (R.Database.Update
               { table = "CUSTOMER"; set = [ ("FIRST_NAME", R.Value.Text "Other") ];
                 where = R.Pred.eq "CID" (R.Value.Text "007") }));
        let r = Aldsp.Dataspace.submit env.F.ds env.F.svc ~policy:Aldsp.Occ.Read_values dg in
        check_bool "aborted" true (not r.Aldsp.Dataspace.sr_committed));
    case "element delete maps to DELETE of the child row" (fun () ->
        let env = F.make ~customers:1 () in
        let dg = F.get_profile_by_id env "007" in
        Sdo.delete_element dg 1 (Sdo.path_of_string "Orders/ORDERS[1]");
        let before = R.Table.row_count env.F.orders in
        let r = Aldsp.Dataspace.submit env.F.ds env.F.svc dg in
        check_bool "committed" true r.Aldsp.Dataspace.sr_committed;
        check_int "one row gone" (before - 1) (R.Table.row_count env.F.orders));
    case "element insert fills the parent-link column" (fun () ->
        let env = F.make ~customers:1 () in
        let dg = F.get_profile_by_id env "007" in
        let row =
          Xml_parse.parse_fragment
            "<ORDERS><OID>5555</OID><ORDER_DATE>2007-12-24</ORDER_DATE><TOTAL>1.5</TOTAL><STATUS>NEW</STATUS></ORDERS>"
          |> List.hd
        in
        Sdo.insert_element dg 1 [ ("Orders", 1) ] row;
        let r = Aldsp.Dataspace.submit env.F.ds env.F.svc dg in
        check_bool "committed" true r.Aldsp.Dataspace.sr_committed;
        let stored = Option.get (R.Table.find_pk env.F.orders [ R.Value.Int 5555 ]) in
        check_bool "cid filled from parent" true
          (R.Table.get stored env.F.orders "CID" = R.Value.Text "007"));
    case "object delete removes children first, then the root" (fun () ->
        let env = F.make ~customers:1 () in
        let dg = F.get_profile_by_id env "007" in
        Sdo.delete_object dg 1;
        let r = Aldsp.Dataspace.submit env.F.ds env.F.svc dg in
        check_bool "committed" true r.Aldsp.Dataspace.sr_committed;
        check_bool "customer gone" true
          (R.Table.find_pk env.F.customer [ R.Value.Text "007" ] = None);
        check_int "orders gone" 0
          (List.length (R.Table.select env.F.orders (R.Pred.eq "CID" (R.Value.Text "007")))));
    case "object create inserts root and nested rows" (fun () ->
        let env = F.make ~customers:1 () in
        let dg = F.get_profile_by_id env "007" in
        let obj =
          Xml_parse.parse_fragment
            {|<p:CustomerProfile xmlns:p="ld:CustomerProfile">
                <CID>NEW1</CID><LAST_NAME>Nu</LAST_NAME><FIRST_NAME>Na</FIRST_NAME>
                <Orders><ORDERS><OID>7777</OID><CID>NEW1</CID><STATUS>OPEN</STATUS></ORDERS></Orders>
                <CreditCards/>
              </p:CustomerProfile>|}
          |> List.hd
        in
        Sdo.add_object dg obj;
        let r = Aldsp.Dataspace.submit env.F.ds env.F.svc dg in
        check_bool "committed" true r.Aldsp.Dataspace.sr_committed;
        check_bool "customer" true (R.Table.find_pk env.F.customer [ R.Value.Text "NEW1" ] <> None);
        check_bool "order" true (R.Table.find_pk env.F.orders [ R.Value.Int 7777 ] <> None));
    case "updating a computed leaf is rejected" (fun () ->
        let env = F.make ~customers:1 () in
        let dg = F.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1 [ ("CreditRating", 1) ] "850";
        check_bool "raises" true
          (match Aldsp.Dataspace.submit env.F.ds env.F.svc dg with
          | _ -> false
          | exception Aldsp.Decompose.Not_updatable _ -> true));
    case "empty change summary is a no-op commit" (fun () ->
        let env = F.make ~customers:1 () in
        let dg = F.get_profile_by_id env "007" in
        let r = Aldsp.Dataspace.submit env.F.ds env.F.svc dg in
        check_bool "committed" true r.Aldsp.Dataspace.sr_committed;
        check_int "statements" 0 r.Aldsp.Dataspace.sr_statements);
    case "decomposition round trip: re-read equals submitted data" (fun () ->
        let env = F.make ~customers:2 () in
        let dg = F.get_profile_by_id env "C1" in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Rewritten";
        ignore (Aldsp.Dataspace.submit env.F.ds env.F.svc dg);
        let dg2 = F.get_profile_by_id env "C1" in
        check_string "reread" "Rewritten" (Sdo.get_leaf dg2 1 [ ("LAST_NAME", 1) ]));
  ]

let override_tests =
  [
    case "override replaces default processing" (fun () ->
        let env = F.make ~customers:1 () in
        let called = ref false in
        Aldsp.Dataspace.set_override env.F.ds env.F.svc
          (Some
             (fun _ds _req ~default:_ ->
               called := true;
               {
                 Aldsp.Dataspace.sr_committed = true;
                 sr_statements = 0;
                 sr_sql = [];
                 sr_reason = None;
               }));
        let dg = F.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        ignore (Aldsp.Dataspace.submit env.F.ds env.F.svc dg);
        check_bool "called" true !called;
        (* default did NOT run *)
        let row = Option.get (R.Table.find_pk env.F.customer [ R.Value.Text "007" ]) in
        check_bool "unchanged" true
          (R.Table.get row env.F.customer "LAST_NAME" = R.Value.Text "Carrey"));
    case "override may extend the default (paper II.C)" (fun () ->
        let env = F.make ~customers:1 () in
        let audit = ref 0 in
        Aldsp.Dataspace.set_override env.F.ds env.F.svc
          (Some
             (fun _ds _req ~default ->
               incr audit;
               default ()));
        let dg = F.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        let r = Aldsp.Dataspace.submit env.F.ds env.F.svc dg in
        check_bool "committed" true r.Aldsp.Dataspace.sr_committed;
        check_int "audited" 1 !audit;
        let row = Option.get (R.Table.find_pk env.F.customer [ R.Value.Text "007" ]) in
        check_bool "changed" true
          (R.Table.get row env.F.customer "LAST_NAME" = R.Value.Text "Carey"));
    case "clearing the override restores default behavior" (fun () ->
        let env = F.make ~customers:1 () in
        Aldsp.Dataspace.set_override env.F.ds env.F.svc
          (Some (fun _ _ ~default:_ ->
               { Aldsp.Dataspace.sr_committed = false; sr_statements = 0; sr_sql = []; sr_reason = Some "blocked" }));
        Aldsp.Dataspace.set_override env.F.ds env.F.svc None;
        let dg = F.get_profile_by_id env "007" in
        Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
        let r = Aldsp.Dataspace.submit env.F.ds env.F.svc dg in
        check_bool "committed" true r.Aldsp.Dataspace.sr_committed);
  ]

let suites =
  [
    ("aldsp.rowxml", rowxml_tests);
    ("aldsp.introspect", introspect_tests);
    ("aldsp.lineage", lineage_tests);
    ("aldsp.occ", occ_tests);
    ("aldsp.decompose", decompose_tests);
    ("aldsp.override", override_tests);
  ]
