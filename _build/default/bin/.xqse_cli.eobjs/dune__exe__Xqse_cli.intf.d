bin/xqse_cli.mli:
