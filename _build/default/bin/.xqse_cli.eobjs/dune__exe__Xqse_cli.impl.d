bin/xqse_cli.ml: Arg Buffer Cmd Cmdliner Core In_channel List Manpage Printf String Term Xdm Xqse Xquery
