bin/aldsp_console.ml: Aldsp Arg Buffer Cmd Cmdliner Core Fixtures In_channel List Printf Relational String Term Xdm Xqse Xquery
