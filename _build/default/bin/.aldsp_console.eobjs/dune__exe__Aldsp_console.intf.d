bin/aldsp_console.mli:
