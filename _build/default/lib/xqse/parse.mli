(** Parser for XQSE programs.

    XQSE "loosely wraps" XQuery (paper section III): the prolog gains
    procedure declarations, the query body may be a Block, and all
    expression positions reuse the XQuery grammar unchanged. This parser
    delegates every expression production to {!Xquery.Parser}. *)

val parse_program : Xquery.Context.static -> string -> Stmt.program
(** Parse a complete XQSE program (prolog + optional query body).
    @raise Xquery.Parser.Syntax_error on bad syntax. *)

val parse_block : Xquery.Parser.t -> Stmt.block
(** Parse a [{ ... }] block (entry point reused by tests). *)

val parse_statement : Xquery.Parser.t -> Stmt.statement * bool
(** Parse one statement; the boolean reports whether it is a "simple"
    statement (which requires a following [;] inside a block). *)
