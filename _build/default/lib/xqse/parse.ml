module P = Xquery.Parser
module L = Xquery.Lexer

(* An expression is updating when it contains an XUF updating form
   anywhere outside a self-contained [copy … modify … return]. The
   update statement (Stmt.Update) is recognized by this predicate. *)
let rec is_updating_expr (e : Xquery.Ast.expr) =
  match e with
  | Xquery.Ast.Insert _ | Xquery.Ast.Delete _ | Xquery.Ast.Replace _
  | Xquery.Ast.Rename _ -> true
  | Xquery.Ast.Transform _ -> false
  | e ->
    Xquery.Ast.fold_subexprs
      (fun acc sub -> acc || is_updating_expr sub)
      false e

(* A value statement: 'procedure { ... }' or an XQuery ExprSingle. *)
let rec parse_value_stmt p =
  if P.at_keyword p "procedure" && P.peek2 p = L.LBRACE then begin
    P.advance p;
    Stmt.V_proc_block (parse_block p)
  end
  else Stmt.V_expr (P.parse_expr_single p)

and parse_block_decl p =
  (* 'declare' already consumed; $v (as T)? (:= value)? (, ...)* *)
  let decls = ref [] in
  let rec one () =
    let v = P.parse_var_qname p in
    let ty =
      if P.at_keyword p "as" then begin
        P.advance p;
        Some (P.parse_sequence_type p)
      end
      else None
    in
    let init =
      if P.peek p = L.ASSIGN then begin
        P.advance p;
        Some (parse_value_stmt p)
      end
      else None
    in
    decls := { Stmt.bd_var = v; bd_type = ty; bd_init = init } :: !decls;
    if P.peek p = L.COMMA then begin
      P.advance p;
      one ()
    end
  in
  one ();
  List.rev !decls

and parse_block p =
  P.expect_tok p L.LBRACE "'{'";
  let decls = ref [] in
  while P.at_keyword p "declare" && P.peek2 p = L.DOLLAR do
    P.advance p;
    decls := !decls @ parse_block_decl p;
    P.expect_tok p L.SEMI "';'"
  done;
  let stmts = ref [] in
  while P.peek p <> L.RBRACE do
    let stmt, simple = parse_statement p in
    stmts := stmt :: !stmts;
    if simple then P.expect_tok p L.SEMI "';' after statement"
    else if P.peek p = L.SEMI then P.advance p
  done;
  P.expect_tok p L.RBRACE "'}'";
  { Stmt.decls = !decls; stmts = List.rev !stmts }

and parse_catch_nametest p =
  match P.peek p with
  | L.STAR ->
    P.advance p;
    Stmt.Nt_any
  | L.LOCAL_WILDCARD "*" ->
    P.advance p;
    Stmt.Nt_any
  | L.LOCAL_WILDCARD local ->
    P.advance p;
    Stmt.Nt_local local
  | L.NS_WILDCARD prefix -> (
    P.advance p;
    match Xquery.Context.lookup_ns (P.static p) prefix with
    | Some uri -> Stmt.Nt_ns uri
    | None -> P.fail p (Printf.sprintf "undeclared namespace prefix %S" prefix))
  | L.NAME _ ->
    let lex = P.parse_qname_lexical p in
    Stmt.Nt_name (Xquery.Context.resolve_qname (P.static p) ~element:false lex)
  | t -> ignore t; P.fail p "expected a name test in catch clause"

and parse_catch_clause p =
  P.eat_keyword p "catch";
  P.expect_tok p L.LPAR "'('";
  let test = parse_catch_nametest p in
  let vars = ref [] in
  if P.at_keyword p "into" then begin
    P.advance p;
    let rec go () =
      vars := P.parse_var_qname p :: !vars;
      if P.peek p = L.COMMA && List.length !vars < 3 then begin
        P.advance p;
        go ()
      end
    in
    go ()
  end;
  P.expect_tok p L.RPAR "')'";
  let body = parse_block p in
  { Stmt.cc_test = test; cc_vars = List.rev !vars; cc_body = body }

and parse_statement p : Stmt.statement * bool =
  match P.peek p with
  | L.LBRACE -> (Stmt.Block (parse_block p), false)
  | L.NAME (None, "set") when P.peek2 p = L.DOLLAR ->
    P.advance p;
    let v = P.parse_var_qname p in
    P.expect_tok p L.ASSIGN "':='";
    (Stmt.Set (v, parse_value_stmt p), true)
  | L.NAME (None, "return") when P.at_keyword2 p "return" "value" ->
    P.advance p;
    P.advance p;
    (Stmt.Return_value (parse_value_stmt p), true)
  | L.NAME (None, "while") when P.peek2 p = L.LPAR ->
    P.advance p;
    P.expect_tok p L.LPAR "'('";
    let test = P.parse_expr p in
    P.expect_tok p L.RPAR "')'";
    (Stmt.While (test, parse_block p), false)
  | L.NAME (None, "iterate") when P.peek2 p = L.DOLLAR ->
    P.advance p;
    let var = P.parse_var_qname p in
    let pos =
      if P.at_keyword p "at" then begin
        P.advance p;
        Some (P.parse_var_qname p)
      end
      else None
    in
    P.eat_keyword p "over";
    let source = parse_value_stmt p in
    (Stmt.Iterate { var; pos; source; body = parse_block p }, false)
  | L.NAME (None, "if") when P.peek2 p = L.LPAR ->
    P.advance p;
    P.expect_tok p L.LPAR "'('";
    let cond = P.parse_expr p in
    P.expect_tok p L.RPAR "')'";
    P.eat_keyword p "then";
    let then_, _ = parse_statement p in
    let else_ =
      if P.at_keyword p "else" then begin
        P.advance p;
        let s, _ = parse_statement p in
        Some s
      end
      else None
    in
    (Stmt.If (cond, then_, else_), true)
  | L.NAME (None, "try") when P.peek2 p = L.LBRACE ->
    P.advance p;
    let body = parse_block p in
    let clauses = ref [ parse_catch_clause p ] in
    while P.at_keyword p "catch" do
      clauses := parse_catch_clause p :: !clauses
    done;
    (Stmt.Try (body, List.rev !clauses), false)
  | L.NAME (None, "continue") when P.peek2 p = L.LPAR ->
    P.advance p;
    P.expect_tok p L.LPAR "'('";
    P.expect_tok p L.RPAR "')'";
    (Stmt.Continue, true)
  | L.NAME (None, "break") when P.peek2 p = L.LPAR ->
    P.advance p;
    P.expect_tok p L.LPAR "'('";
    P.expect_tok p L.RPAR "')'";
    (Stmt.Break, true)
  | _ ->
    (* expression statement: an update statement when the expression is
       updating, otherwise a procedure call / value statement *)
    let e = P.parse_expr_single p in
    if is_updating_expr e then (Stmt.Update e, true)
    else (Stmt.Expr_stmt (Stmt.V_expr e), true)

(* ------------------------------------------------------------------ *)
(* Programs                                                             *)
(* ------------------------------------------------------------------ *)

let parse_procedure_decl p ~readonly =
  (* 'declare' ('readonly')? 'procedure' consumed by caller up to
     'procedure'; we are positioned at the name *)
  let name = P.parse_fun_qname p in
  let params = P.parse_param_list p in
  let ret =
    if P.at_keyword p "as" then begin
      P.advance p;
      Some (P.parse_sequence_type p)
    end
    else None
  in
  let body =
    if P.peek p = L.LBRACE then Some (parse_block p)
    else begin
      P.eat_keyword p "external";
      None
    end
  in
  P.expect_tok p L.SEMI "';'";
  {
    Stmt.pd_name = name;
    pd_params = params;
    pd_return = ret;
    pd_readonly = readonly;
    pd_body = body;
  }

let parse_program st src =
  let p = P.create st src in
  let procs = ref [] in
  let functions = ref [] in
  let variables = ref [] in
  let imports = ref [] in
  let rec prolog () =
    if P.at_keyword p "declare" then begin
      match P.peek2 p with
      | L.NAME (None, "procedure") ->
        P.advance p;
        P.advance p;
        procs := parse_procedure_decl p ~readonly:false :: !procs;
        prolog ()
      | L.NAME (None, "readonly") ->
        P.advance p;
        P.advance p;
        P.eat_keyword p "procedure";
        procs := parse_procedure_decl p ~readonly:true :: !procs;
        prolog ()
      | L.NAME (None, "xqse") ->
        (* 'declare xqse function' — ALDSP 3.0 alternate syntax for a
           readonly procedure *)
        P.advance p;
        P.advance p;
        P.eat_keyword p "function";
        procs := parse_procedure_decl p ~readonly:true :: !procs;
        prolog ()
      | _ -> xquery_prolog ()
    end
    else xquery_prolog ()
  and xquery_prolog () =
    match P.try_parse_prolog_item p with
    | P.No_item -> ()
    | P.Consumed -> prolog ()
    | P.Item (Xquery.Ast.P_function f) ->
      functions := f :: !functions;
      prolog ()
    | P.Item (Xquery.Ast.P_variable v) ->
      variables := v :: !variables;
      prolog ()
    | P.Item (Xquery.Ast.P_import { prefix; uri }) ->
      imports := (prefix, uri) :: !imports;
      prolog ()
  in
  prolog ();
  let body =
    match P.peek p with
    | L.EOF -> None
    | L.LBRACE -> Some (Stmt.Q_block (parse_block p))
    | _ -> Some (Stmt.Q_expr (P.parse_expr p))
  in
  P.expect_eof p;
  {
    Stmt.prog_procs = List.rev !procs;
    prog_functions = List.rev !functions;
    prog_variables = List.rev !variables;
    prog_imports = List.rev !imports;
    prog_body = body;
  }
