(** Pretty-printer for XQSE programs (statements delegate expression
    printing to {!Xquery.Pretty}). Used by the CLI's [--ast] mode. *)

val statement : ?indent:int -> Stmt.statement -> string
val block : ?indent:int -> Stmt.block -> string
val program : Stmt.program -> string
