lib/xqse/interp.mli: Item Qname Seqtype Stmt Xdm Xquery
