lib/xqse/session.ml: Hashtbl Interp Item List Option Parse Printf Qname Seqtype Stmt Xdm Xml_serialize Xquery
