lib/xqse/parse.ml: List Printf Stmt Xquery
