lib/xqse/pretty.mli: Stmt
