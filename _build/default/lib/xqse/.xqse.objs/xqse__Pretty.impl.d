lib/xqse/pretty.ml: Buffer List Printf Qname Seqtype Stmt String Xdm Xquery
