lib/xqse/session.mli: Interp Item Qname Seqtype Xdm Xquery
