lib/xqse/parse.mli: Stmt Xquery
