lib/xqse/interp.ml: Atomic Hashtbl Item List Printf Qname Seqtype Stmt Xdm Xquery
