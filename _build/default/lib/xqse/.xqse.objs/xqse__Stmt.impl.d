lib/xqse/stmt.ml: Qname Seqtype String Xdm Xquery
