open Xdm
module XP = Xquery.Pretty

let pad n = String.make n ' '

let nametest = function
  | Stmt.Nt_name q -> Qname.to_string q
  | Stmt.Nt_any -> "*"
  | Stmt.Nt_ns uri -> Printf.sprintf "{%s}:*" uri
  | Stmt.Nt_local l -> "*:" ^ l

let rec value_stmt ind = function
  | Stmt.V_expr e -> XP.expr e
  | Stmt.V_proc_block b -> "procedure " ^ block_str ind b

and block_str ind (b : Stmt.block) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\n";
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "%sdeclare $%s%s%s;\n" (pad (ind + 2))
           (Qname.to_string d.Stmt.bd_var)
           (match d.Stmt.bd_type with
           | Some t -> " as " ^ Seqtype.to_string t
           | None -> "")
           (match d.Stmt.bd_init with
           | Some v -> " := " ^ value_stmt (ind + 2) v
           | None -> "")))
    b.Stmt.decls;
  List.iter
    (fun s ->
      Buffer.add_string buf (pad (ind + 2));
      Buffer.add_string buf (statement_str (ind + 2) s);
      Buffer.add_string buf "\n")
    b.Stmt.stmts;
  Buffer.add_string buf (pad ind);
  Buffer.add_string buf "}";
  Buffer.contents buf

and statement_str ind (s : Stmt.statement) =
  match s with
  | Stmt.Block b -> block_str ind b
  | Stmt.Set (v, vs) ->
    Printf.sprintf "set $%s := %s;" (Qname.to_string v) (value_stmt ind vs)
  | Stmt.Return_value vs ->
    Printf.sprintf "return value %s;" (value_stmt ind vs)
  | Stmt.Expr_stmt vs -> value_stmt ind vs ^ ";"
  | Stmt.While (test, b) ->
    Printf.sprintf "while (%s) %s" (XP.expr test) (block_str ind b)
  | Stmt.Iterate { var; pos; source; body } ->
    Printf.sprintf "iterate $%s%s over %s %s" (Qname.to_string var)
      (match pos with Some p -> " at $" ^ Qname.to_string p | None -> "")
      (value_stmt ind source) (block_str ind body)
  | Stmt.If (c, t, e) ->
    Printf.sprintf "if (%s) then %s%s;" (XP.expr c)
      (statement_nosemi ind t)
      (match e with
      | Some s -> " else " ^ statement_nosemi ind s
      | None -> "")
  | Stmt.Try (b, clauses) ->
    Printf.sprintf "try %s%s" (block_str ind b)
      (String.concat ""
         (List.map
            (fun c ->
              Printf.sprintf " catch (%s%s) %s" (nametest c.Stmt.cc_test)
                (match c.Stmt.cc_vars with
                | [] -> ""
                | vs ->
                  " into "
                  ^ String.concat ", "
                      (List.map (fun v -> "$" ^ Qname.to_string v) vs))
                (block_str ind c.Stmt.cc_body))
            clauses))
  | Stmt.Continue -> "continue();"
  | Stmt.Break -> "break();"
  | Stmt.Update e -> XP.expr e ^ ";"

and statement_nosemi ind s =
  let str = statement_str ind s in
  if String.length str > 0 && str.[String.length str - 1] = ';' then
    String.sub str 0 (String.length str - 1)
  else str

let statement ?(indent = 0) s = statement_str indent s
let block ?(indent = 0) b = block_str indent b

let program (p : Stmt.program) =
  let buf = Buffer.create 256 in
  List.iter
    (fun (prefix, uri) ->
      Buffer.add_string buf
        (Printf.sprintf "import module %s\"%s\";\n"
           (match prefix with
           | Some pr -> Printf.sprintf "namespace %s = " pr
           | None -> "")
           uri))
    p.Stmt.prog_imports;
  List.iter
    (fun vd ->
      Buffer.add_string buf
        (Printf.sprintf "declare variable $%s%s%s;\n"
           (Qname.to_string vd.Xquery.Ast.vd_name)
           (match vd.Xquery.Ast.vd_type with
           | Some t -> " as " ^ Seqtype.to_string t
           | None -> "")
           (match vd.Xquery.Ast.vd_value with
           | Some e -> " := " ^ XP.expr e
           | None -> " external")))
    p.Stmt.prog_variables;
  List.iter
    (fun fd ->
      Buffer.add_string buf (XP.function_decl fd);
      Buffer.add_char buf '\n')
    p.Stmt.prog_functions;
  List.iter
    (fun pd ->
      Buffer.add_string buf
        (Printf.sprintf "declare %sprocedure %s(%s)%s %s;\n"
           (if pd.Stmt.pd_readonly then "readonly " else "")
           (Qname.to_string pd.Stmt.pd_name)
           (String.concat ", "
              (List.map
                 (fun (v, ty) ->
                   Printf.sprintf "$%s%s" (Qname.to_string v)
                     (match ty with
                     | Some t -> " as " ^ Seqtype.to_string t
                     | None -> ""))
                 pd.Stmt.pd_params))
           (match pd.Stmt.pd_return with
           | Some t -> " as " ^ Seqtype.to_string t
           | None -> "")
           (match pd.Stmt.pd_body with
           | Some b -> block_str 0 b
           | None -> "external")))
    p.Stmt.prog_procs;
  (match p.Stmt.prog_body with
  | Some (Stmt.Q_expr e) ->
    Buffer.add_string buf (XP.expr e);
    Buffer.add_char buf '\n'
  | Some (Stmt.Q_block b) ->
    Buffer.add_string buf (block_str 0 b);
    Buffer.add_char buf '\n'
  | None -> ());
  Buffer.contents buf
