type outcome = Committed | Aborted of string

type trace_event =
  | Begin of string
  | Prepare_ok of string
  | Prepare_failed of string
  | Commit of string
  | Rollback of string

let run_traced participants work =
  let trace = ref [] in
  let emit e = trace := e :: !trace in
  let rollback_all () =
    List.iter
      (fun db ->
        if Database.in_tx db then begin
          Database.rollback db;
          emit (Rollback (Database.name db))
        end)
      participants
  in
  let result =
    try
      List.iter
        (fun db ->
          Database.begin_tx db;
          emit (Begin (Database.name db)))
        participants;
      let v = work () in
      (* phase 1: prepare *)
      let prepare_failure =
        List.find_map
          (fun db ->
            if Database.fail_on_prepare db then begin
              emit (Prepare_failed (Database.name db));
              Some (Printf.sprintf "%s failed to prepare" (Database.name db))
            end
            else begin
              emit (Prepare_ok (Database.name db));
              None
            end)
          participants
      in
      match prepare_failure with
      | Some reason ->
        rollback_all ();
        Error reason
      | None ->
        (* phase 2: commit *)
        List.iter
          (fun db ->
            Database.commit db;
            emit (Commit (Database.name db)))
          participants;
        Ok v
    with
    | Database.Db_error msg ->
      rollback_all ();
      Error msg
    | e ->
      rollback_all ();
      raise e
  in
  (result, List.rev !trace)

let run participants work = fst (run_traced participants work)

