(** SQL values for the relational substrate. *)

type t =
  | Int of int
  | Float of float
  | Text of string
  | Bool of bool
  | Date of string  (** [YYYY-MM-DD] *)
  | Null

val equal : t -> t -> bool
(** SQL-style equality except that it is total: [Null] equals [Null]. *)

val compare : t -> t -> int
(** Total order with [Null] first; mixed types compare by constructor. *)

val to_string : t -> string
(** Plain rendering (no quoting); [Null] is the empty string. *)

val sql_literal : t -> string
(** SQL literal rendering: strings quoted and escaped, [NULL] keyword. *)

val pp : Format.formatter -> t -> unit

type col_type = T_int | T_float | T_text | T_bool | T_date

val type_of : t -> col_type option
(** [None] for [Null]. *)

val type_name : col_type -> string
val matches_type : t -> col_type -> bool
(** [Null] matches every type (nullability is checked separately). *)

val of_string : col_type -> string -> t
(** Parse a string into a typed value. @raise Failure on bad input. *)
