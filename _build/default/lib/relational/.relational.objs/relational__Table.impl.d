lib/relational/table.ml: Array Hashtbl List Pred Printf String Value
