lib/relational/xa.ml: Database List Printf
