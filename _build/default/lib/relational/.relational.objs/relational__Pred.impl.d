lib/relational/pred.ml: Format List Printf String Value
