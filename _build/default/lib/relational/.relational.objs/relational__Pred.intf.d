lib/relational/pred.mli: Format Value
