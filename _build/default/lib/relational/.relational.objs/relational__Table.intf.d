lib/relational/table.mli: Pred Value
