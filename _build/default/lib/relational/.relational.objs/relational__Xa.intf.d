lib/relational/xa.mli: Database
