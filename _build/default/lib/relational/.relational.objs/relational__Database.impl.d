lib/relational/database.ml: Hashtbl List Pred Printf String Table Value
