lib/relational/database.mli: Pred Table Value
