(** Row predicates: the [WHERE] clauses of generated statements. *)

type op = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of op * string * Value.t  (** column op literal *)
  | In of string * Value.t list
  | Is_null of string
  | And of t * t
  | Or of t * t
  | Not of t

val eq : string -> Value.t -> t
val conj : t list -> t
(** Conjunction of a list ([True] when empty). *)

val eval : get:(string -> Value.t) -> t -> bool
(** Evaluate against a row accessor. SQL three-valued logic is
    approximated: comparisons with [Null] are false (use {!Is_null}). *)

val to_sql : t -> string
val pp : Format.formatter -> t -> unit
