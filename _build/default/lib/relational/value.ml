type t =
  | Int of int
  | Float of float
  | Text of string
  | Bool of bool
  | Date of string
  | Null

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | Text x, Text y -> String.equal x y
  | Bool x, Bool y -> x = y
  | Date x, Date y -> String.equal x y
  | Null, Null -> true
  | _ -> false

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Text _ -> 3
  | Date _ -> 4

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Text x, Text y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Date x, Date y -> String.compare x y
  | a, b -> Int.compare (rank a) (rank b)

let to_string = function
  | Int i -> string_of_int i
  | Float f -> if Float.is_integer f then Printf.sprintf "%.0f" f else string_of_float f
  | Text s -> s
  | Bool b -> if b then "true" else "false"
  | Date d -> d
  | Null -> ""

let sql_literal = function
  | Int i -> string_of_int i
  | Float f -> string_of_float f
  | Text s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf
  | Bool b -> if b then "TRUE" else "FALSE"
  | Date d -> "DATE '" ^ d ^ "'"
  | Null -> "NULL"

let pp ppf v = Format.pp_print_string ppf (sql_literal v)

type col_type = T_int | T_float | T_text | T_bool | T_date

let type_of = function
  | Int _ -> Some T_int
  | Float _ -> Some T_float
  | Text _ -> Some T_text
  | Bool _ -> Some T_bool
  | Date _ -> Some T_date
  | Null -> None

let type_name = function
  | T_int -> "INTEGER"
  | T_float -> "DOUBLE"
  | T_text -> "VARCHAR"
  | T_bool -> "BOOLEAN"
  | T_date -> "DATE"

let matches_type v ty =
  match (v, ty) with
  | Null, _ -> true
  | Int _, T_int -> true
  | Int _, T_float -> true
  | Float _, T_float -> true
  | Text _, T_text -> true
  | Bool _, T_bool -> true
  | Date _, T_date -> true
  | _ -> false

let of_string ty s =
  match ty with
  | T_int -> (
    match int_of_string_opt (String.trim s) with
    | Some i -> Int i
    | None -> failwith (Printf.sprintf "invalid INTEGER literal %S" s))
  | T_float -> (
    match float_of_string_opt (String.trim s) with
    | Some f -> Float f
    | None -> failwith (Printf.sprintf "invalid DOUBLE literal %S" s))
  | T_text -> Text s
  | T_bool -> (
    match String.lowercase_ascii (String.trim s) with
    | "true" | "1" -> Bool true
    | "false" | "0" -> Bool false
    | _ -> failwith (Printf.sprintf "invalid BOOLEAN literal %S" s))
  | T_date -> Date (String.trim s)
