type op = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of op * string * Value.t
  | In of string * Value.t list
  | Is_null of string
  | And of t * t
  | Or of t * t
  | Not of t

let eq col v = Cmp (Eq, col, v)

let conj = function
  | [] -> True
  | p :: rest -> List.fold_left (fun acc q -> And (acc, q)) p rest

let rec eval ~get p =
  match p with
  | True -> true
  | False -> false
  | Cmp (op, col, v) -> (
    let actual = get col in
    match (actual, v) with
    | Value.Null, _ | _, Value.Null -> false
    | _ ->
      let c = Value.compare actual v in
      (match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0))
  | In (col, vs) ->
    let actual = get col in
    actual <> Value.Null && List.exists (Value.equal actual) vs
  | Is_null col -> get col = Value.Null
  | And (a, b) -> eval ~get a && eval ~get b
  | Or (a, b) -> eval ~get a || eval ~get b
  | Not a -> not (eval ~get a)

let op_sql = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec to_sql = function
  | True -> "1=1"
  | False -> "1=0"
  | Cmp (op, col, v) ->
    Printf.sprintf "%s %s %s" col (op_sql op) (Value.sql_literal v)
  | In (col, vs) ->
    Printf.sprintf "%s IN (%s)" col
      (String.concat ", " (List.map Value.sql_literal vs))
  | Is_null col -> col ^ " IS NULL"
  | And (a, b) -> Printf.sprintf "(%s AND %s)" (to_sql a) (to_sql b)
  | Or (a, b) -> Printf.sprintf "(%s OR %s)" (to_sql a) (to_sql b)
  | Not a -> Printf.sprintf "NOT (%s)" (to_sql a)

let pp ppf p = Format.pp_print_string ppf (to_sql p)
