type t = { prefix : string option; uri : string; local : string }

let make ?prefix ~uri local = { prefix; uri; local }
let local n = { prefix = None; uri = ""; local = n }
let equal a b = String.equal a.uri b.uri && String.equal a.local b.local

let compare a b =
  match String.compare a.uri b.uri with
  | 0 -> String.compare a.local b.local
  | c -> c

let hash a = Hashtbl.hash (a.uri, a.local)

let to_string q =
  match q.prefix with
  | Some p -> p ^ ":" ^ q.local
  | None -> if q.uri = "" then q.local else "{" ^ q.uri ^ "}" ^ q.local

let pp ppf q = Format.pp_print_string ppf (to_string q)
let xs_ns = "http://www.w3.org/2001/XMLSchema"
let fn_ns = "http://www.w3.org/2005/xpath-functions"
let err_ns = "http://www.w3.org/2005/xqt-errors"
let xml_ns = "http://www.w3.org/XML/1998/namespace"
let xmlns_ns = "http://www.w3.org/2000/xmlns/"
let local_default_ns = "http://www.w3.org/2005/xquery-local-functions"
let xs n = { prefix = Some "xs"; uri = xs_ns; local = n }
let fn n = { prefix = Some "fn"; uri = fn_ns; local = n }
let err n = { prefix = Some "err"; uri = err_ns; local = n }
