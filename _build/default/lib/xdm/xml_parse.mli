(** A namespace-aware XML parser producing {!Node.t} trees.

    Supports elements, attributes, namespace declarations ([xmlns],
    [xmlns:p]), character data, the five predefined entities plus
    numeric character references, CDATA sections, comments, processing
    instructions, and skips the XML declaration and DOCTYPE. *)

exception Parse_error of { line : int; col : int; message : string }

val parse : string -> Node.t
(** Parse a complete document; returns a document node.
    @raise Parse_error on malformed input. *)

val parse_fragment : string -> Node.t list
(** Parse mixed content (possibly several top-level elements and text
    runs); returns the nodes without a document wrapper. *)
