(** Mutable XML node trees with node identity and document order.

    Nodes are mutable because the XQuery Update Facility subset and the
    SDO layer modify trees in place. Every node carries a unique id used
    for identity ([is]) and for stable ordering of nodes from different
    trees. *)

type t

type kind =
  | Document
  | Element
  | Attribute
  | Text
  | Comment
  | Processing_instruction

(** {1 Construction} *)

val document : t list -> t
val element : ?attrs:(Qname.t * string) list -> Qname.t -> t list -> t
val attribute : Qname.t -> string -> t
val text : string -> t
val comment : string -> t
val processing_instruction : string -> string -> t

(** {1 Accessors} *)

val kind : t -> kind
val id : t -> int
(** Unique, monotonically increasing creation id. *)

val name : t -> Qname.t option
(** Element/attribute name; PI target as a local QName; [None] otherwise. *)

val parent : t -> t option
val children : t -> t list
(** Child nodes of documents and elements (attributes excluded). *)

val attributes : t -> t list
(** Attribute nodes of an element, in insertion order. *)

val attribute_value : t -> Qname.t -> string option
(** Value of the named attribute of an element. *)

val text_content : t -> string
(** Content of a text or comment node, PI data, attribute value.
    @raise Invalid_argument on documents and elements. *)

val string_value : t -> string
(** XDM string value: concatenated descendant text for documents and
    elements, the stored string otherwise. *)

val typed_value : t -> Atomic.t list
(** XDM typed value: [xs:untypedAtomic] of the string value for elements,
    documents, attributes and text; empty for comments and PIs. *)

val root : t -> t
(** Topmost ancestor (the node itself when parentless). *)

(** {1 Axes} *)

val descendants : t -> t list
(** Descendant nodes in document order, excluding self and attributes. *)

val descendant_or_self : t -> t list
val ancestors : t -> t list
(** Ancestors, nearest first. *)

val following_siblings : t -> t list
val preceding_siblings : t -> t list
(** Nearest first (reverse document order). *)

(** {1 Mutation} *)

val append_child : t -> t -> unit
(** [append_child parent child] detaches [child] from any previous parent
    and appends it. @raise Invalid_argument if [parent] cannot have
    children or [child] is an attribute. *)

val insert_children : t -> pos:[ `First | `Last ] -> t list -> unit
val insert_sibling : t -> pos:[ `Before | `After ] -> t list -> unit
val set_attribute : t -> Qname.t -> string -> unit
(** Sets or replaces an attribute of an element. *)

val remove_attribute : t -> Qname.t -> unit
val detach : t -> unit
(** Removes the node from its parent, if any. *)

val set_text : t -> string -> unit
(** Replaces the content of a text/comment/attribute node. *)

val rename : t -> Qname.t -> unit
(** Renames an element, attribute or PI. *)

val replace_children_with_text : t -> string -> unit
(** Used by XUF [replace value of]: drops an element's children and
    installs a single text node (or nothing for the empty string). *)

(** {1 Comparison and copying} *)

val is_same : t -> t -> bool
(** Node identity. *)

val doc_order : t -> t -> int
(** Document order; nodes from different trees are ordered by root id so
    the order is stable and total. *)

val deep_copy : t -> t
(** Structural copy with fresh node identities and no parent. *)

val deep_equal : t -> t -> bool
(** [fn:deep-equal] node equality: same kind, name and, recursively,
    equal attributes (as a set) and children (comments and PIs are
    ignored inside elements). *)

val pp : Format.formatter -> t -> unit
(** Debug printer (name/kind only, not full serialization). *)
