let escape_general ~quot s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when quot -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_text s = escape_general ~quot:false s
let escape_attr s = escape_general ~quot:true s

(* In-scope namespace bindings threaded down the tree: (prefix, uri). *)
let in_scope_lookup scopes prefix =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt prefix scope with Some u -> Some u | None -> go rest)
  in
  go scopes

(* Pick a lexical name for a QName, adding declarations when needed. *)
let lexical_name ~is_attr scopes new_decls qn =
  let uri = qn.Qname.uri in
  if uri = "" then
    (* no-namespace names must not be captured by a default namespace *)
    (if (not is_attr) && in_scope_lookup (!new_decls :: scopes) "" <> None
        && in_scope_lookup (!new_decls :: scopes) "" <> Some "" then
       new_decls := ("", "") :: !new_decls;
     qn.Qname.local)
  else if uri = Qname.xml_ns then "xml:" ^ qn.Qname.local
  else
    let preferred = match qn.Qname.prefix with Some p -> p | None -> "" in
    let scopes_all = !new_decls :: scopes in
    match in_scope_lookup scopes_all preferred with
    | Some u when u = uri && not (is_attr && preferred = "") ->
      if preferred = "" then qn.Qname.local
      else preferred ^ ":" ^ qn.Qname.local
    | _ ->
      (* need a declaration; attributes need a non-empty prefix *)
      let prefix =
        if preferred <> "" && (in_scope_lookup [ !new_decls ] preferred = None
                               || in_scope_lookup [ !new_decls ] preferred = Some uri)
        then preferred
        else if (not is_attr) && preferred = "" then ""
        else begin
          (* synthesize ns1, ns2, ... *)
          let rec pick i =
            let p = "ns" ^ string_of_int i in
            match in_scope_lookup scopes_all p with
            | None -> p
            | Some u when u = uri -> p
            | Some _ -> pick (i + 1)
          in
          pick 1
        end
      in
      (match in_scope_lookup [ !new_decls ] prefix with
      | Some u when u = uri -> ()
      | _ -> new_decls := (prefix, uri) :: !new_decls);
      if prefix = "" then qn.Qname.local else prefix ^ ":" ^ qn.Qname.local

let rec write ~indent ~depth scopes buf n =
  match Node.kind n with
  | Node.Text -> Buffer.add_string buf (escape_text (Node.text_content n))
  | Node.Comment ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf (Node.text_content n);
    Buffer.add_string buf "-->"
  | Node.Processing_instruction ->
    let target =
      match Node.name n with Some q -> q.Qname.local | None -> ""
    in
    Buffer.add_string buf ("<?" ^ target ^ " " ^ Node.text_content n ^ "?>")
  | Node.Attribute ->
    let qn = Option.get (Node.name n) in
    Buffer.add_string buf
      (Qname.to_string qn ^ "=\"" ^ escape_attr (Node.text_content n) ^ "\"")
  | Node.Document ->
    List.iter (write ~indent ~depth scopes buf) (Node.children n)
  | Node.Element ->
    let qn = Option.get (Node.name n) in
    let new_decls = ref [] in
    let lex = lexical_name ~is_attr:false scopes new_decls qn in
    let attr_strs =
      List.map
        (fun a ->
          let an = Option.get (Node.name a) in
          let alex = lexical_name ~is_attr:true scopes new_decls an in
          alex ^ "=\"" ^ escape_attr (Node.text_content a) ^ "\"")
        (Node.attributes n)
    in
    let ns_strs =
      List.rev_map
        (fun (p, u) ->
          if p = "" then "xmlns=\"" ^ escape_attr u ^ "\""
          else "xmlns:" ^ p ^ "=\"" ^ escape_attr u ^ "\"")
        !new_decls
    in
    Buffer.add_char buf '<';
    Buffer.add_string buf lex;
    List.iter
      (fun s ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf s)
      (ns_strs @ attr_strs);
    let children = Node.children n in
    if children = [] then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      let scopes' = !new_decls :: scopes in
      let elements_only =
        List.for_all (fun c -> Node.kind c <> Node.Text) children
      in
      if indent && elements_only && children <> [] then begin
        List.iter
          (fun c ->
            Buffer.add_char buf '\n';
            Buffer.add_string buf (String.make ((depth + 1) * 2) ' ');
            write ~indent ~depth:(depth + 1) scopes' buf c)
          children;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (depth * 2) ' ')
      end
      else List.iter (write ~indent ~depth:(depth + 1) scopes' buf) children;
      Buffer.add_string buf "</";
      Buffer.add_string buf lex;
      Buffer.add_char buf '>'
    end

let to_string ?(indent = false) n =
  let buf = Buffer.create 256 in
  write ~indent ~depth:0 [ [ ("xml", Qname.xml_ns) ] ] buf n;
  Buffer.contents buf

let seq_to_string ?(indent = false) seq =
  let buf = Buffer.create 256 in
  let rec go prev_atomic = function
    | [] -> ()
    | Item.Atomic a :: rest ->
      if prev_atomic then Buffer.add_char buf ' ';
      Buffer.add_string buf (escape_text (Atomic.to_string a));
      go true rest
    | Item.Node n :: rest ->
      write ~indent ~depth:0 [ [ ("xml", Qname.xml_ns) ] ] buf n;
      go false rest
  in
  go false seq;
  Buffer.contents buf
