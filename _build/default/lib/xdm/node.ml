type kind =
  | Document
  | Element
  | Attribute
  | Text
  | Comment
  | Processing_instruction

type t = {
  id : int;
  mutable parent : t option;
  mutable name : Qname.t option;  (* element, attribute, PI target *)
  mutable content : string;  (* text, comment, PI data, attribute value *)
  mutable attrs : t list;  (* elements only *)
  mutable children : t list;  (* documents and elements *)
  node_kind : kind;
}

let counter = ref 0

let fresh kind =
  incr counter;
  {
    id = !counter;
    parent = None;
    name = None;
    content = "";
    attrs = [];
    children = [];
    node_kind = kind;
  }

let attribute name value =
  let n = fresh Attribute in
  n.name <- Some name;
  n.content <- value;
  n

let text s =
  let n = fresh Text in
  n.content <- s;
  n

let comment s =
  let n = fresh Comment in
  n.content <- s;
  n

let processing_instruction target data =
  let n = fresh Processing_instruction in
  n.name <- Some (Qname.local target);
  n.content <- data;
  n

let adopt parent child = child.parent <- Some parent

let element ?(attrs = []) name children =
  let n = fresh Element in
  n.name <- Some name;
  n.attrs <- List.map (fun (an, av) -> attribute an av) attrs;
  List.iter (adopt n) n.attrs;
  n.children <- children;
  List.iter (adopt n) children;
  n

let document children =
  let n = fresh Document in
  n.children <- children;
  List.iter (adopt n) children;
  n

let kind n = n.node_kind
let id n = n.id
let name n = n.name
let parent n = n.parent
let children n = n.children
let attributes n = n.attrs

let attribute_value n qn =
  List.find_map
    (fun a ->
      match a.name with
      | Some an when Qname.equal an qn -> Some a.content
      | _ -> None)
    n.attrs

let text_content n =
  match n.node_kind with
  | Text | Comment | Processing_instruction | Attribute -> n.content
  | Document | Element ->
    invalid_arg "Node.text_content: document or element node"

let string_value n =
  match n.node_kind with
  | Text | Attribute | Comment | Processing_instruction -> n.content
  | Document | Element ->
    let buf = Buffer.create 32 in
    let rec go n =
      match n.node_kind with
      | Text -> Buffer.add_string buf n.content
      | Element | Document -> List.iter go n.children
      | Attribute | Comment | Processing_instruction -> ()
    in
    go n;
    Buffer.contents buf

let typed_value n =
  match n.node_kind with
  | Comment | Processing_instruction -> []
  | Document | Element | Attribute | Text -> [ Atomic.Untyped (string_value n) ]

let rec root n = match n.parent with None -> n | Some p -> root p

let descendants n =
  let acc = ref [] in
  let rec go n =
    List.iter
      (fun c ->
        acc := c :: !acc;
        go c)
      n.children
  in
  go n;
  List.rev !acc

let descendant_or_self n = n :: descendants n

let ancestors n =
  (* nearest first *)
  let rec go acc n =
    match n.parent with None -> List.rev acc | Some p -> go (p :: acc) p
  in
  go [] n

let siblings_of n =
  match n.parent with
  | None -> []
  | Some p -> if n.node_kind = Attribute then [] else p.children

let rec split_at_node n = function
  | [] -> ([], [])
  | c :: rest ->
    if c == n then ([], rest)
    else
      let before, after = split_at_node n rest in
      (c :: before, after)

let following_siblings n =
  let _, after = split_at_node n (siblings_of n) in
  after

let preceding_siblings n =
  let before, _ = split_at_node n (siblings_of n) in
  List.rev before

let detach n =
  match n.parent with
  | None -> ()
  | Some p ->
    if n.node_kind = Attribute then
      p.attrs <- List.filter (fun a -> not (a == n)) p.attrs
    else p.children <- List.filter (fun c -> not (c == n)) p.children;
    n.parent <- None

let check_child_ok parent child =
  (match parent.node_kind with
  | Document | Element -> ()
  | Attribute | Text | Comment | Processing_instruction ->
    invalid_arg "Node: this node kind cannot have children");
  match child.node_kind with
  | Attribute -> invalid_arg "Node: attribute nodes are not children"
  | Document ->
    invalid_arg "Node: document nodes cannot be inserted as children"
  | Element | Text | Comment | Processing_instruction -> ()

let append_child parent child =
  check_child_ok parent child;
  detach child;
  parent.children <- parent.children @ [ child ];
  adopt parent child

let insert_children parent ~pos nodes =
  List.iter (check_child_ok parent) nodes;
  List.iter detach nodes;
  List.iter (adopt parent) nodes;
  parent.children <-
    (match pos with
    | `First -> nodes @ parent.children
    | `Last -> parent.children @ nodes)

let insert_sibling target ~pos nodes =
  match target.parent with
  | None -> invalid_arg "Node.insert_sibling: target has no parent"
  | Some p ->
    List.iter (check_child_ok p) nodes;
    List.iter detach nodes;
    List.iter (adopt p) nodes;
    let before, after = split_at_node target p.children in
    p.children <-
      (match pos with
      | `Before -> before @ nodes @ (target :: after)
      | `After -> before @ (target :: nodes) @ after)

let set_attribute el qn value =
  if el.node_kind <> Element then
    invalid_arg "Node.set_attribute: not an element";
  match
    List.find_opt
      (fun a -> match a.name with Some an -> Qname.equal an qn | None -> false)
      el.attrs
  with
  | Some a -> a.content <- value
  | None ->
    let a = attribute qn value in
    adopt el a;
    el.attrs <- el.attrs @ [ a ]

let remove_attribute el qn =
  el.attrs <-
    List.filter
      (fun a ->
        match a.name with Some an -> not (Qname.equal an qn) | None -> true)
      el.attrs

let set_text n s =
  match n.node_kind with
  | Text | Comment | Attribute | Processing_instruction -> n.content <- s
  | Document | Element -> invalid_arg "Node.set_text: document or element"

let rename n qn =
  match n.node_kind with
  | Element | Attribute | Processing_instruction -> n.name <- Some qn
  | Document | Text | Comment ->
    invalid_arg "Node.rename: node kind has no name"

let replace_children_with_text el s =
  (match el.node_kind with
  | Element -> ()
  | _ -> invalid_arg "Node.replace_children_with_text: not an element");
  List.iter (fun c -> c.parent <- None) el.children;
  if s = "" then el.children <- []
  else begin
    let t = text s in
    adopt el t;
    el.children <- [ t ]
  end

let is_same a b = a == b

(* Path from root as child indices; attributes sort after the element
   they belong to but before its children, per document order. *)
let path_from_root n =
  let rec go acc n =
    match n.parent with
    | None -> acc
    | Some p ->
      let idx =
        if n.node_kind = Attribute then
          let rec find i = function
            | [] -> assert false
            | a :: rest -> if a == n then i else find (i + 1) rest
          in
          (* attributes order between -1 (self) and 0.. (children) *)
          (-1000000) + find 0 p.attrs
        else
          let rec find i = function
            | [] -> assert false
            | c :: rest -> if c == n then i else find (i + 1) rest
          in
          find 0 p.children
      in
      go (idx :: acc) p
  in
  go [] n

let doc_order a b =
  if a == b then 0
  else
    let ra = root a and rb = root b in
    if not (ra == rb) then compare ra.id rb.id
    else
      let rec cmp pa pb =
        match (pa, pb) with
        | [], [] -> 0
        | [], _ -> -1 (* ancestor precedes descendant *)
        | _, [] -> 1
        | x :: xs, y :: ys -> if x = y then cmp xs ys else compare x y
      in
      cmp (path_from_root a) (path_from_root b)

let rec deep_copy n =
  match n.node_kind with
  | Text -> text n.content
  | Comment -> comment n.content
  | Attribute -> attribute (Option.get n.name) n.content
  | Processing_instruction ->
    processing_instruction (Option.get n.name).Qname.local n.content
  | Element ->
    let el = fresh Element in
    el.name <- n.name;
    el.attrs <- List.map deep_copy n.attrs;
    List.iter (adopt el) el.attrs;
    el.children <- List.map deep_copy n.children;
    List.iter (adopt el) el.children;
    el
  | Document ->
    let d = fresh Document in
    d.children <- List.map deep_copy n.children;
    List.iter (adopt d) d.children;
    d

let qname_opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Qname.equal x y
  | _ -> false

let rec deep_equal a b =
  a.node_kind = b.node_kind
  && qname_opt_equal a.name b.name
  &&
  match a.node_kind with
  | Text | Comment | Processing_instruction | Attribute ->
    String.equal a.content b.content
  | Element ->
    let attr_key n = (Option.get n.name, n.content) in
    let sort l =
      List.sort
        (fun (n1, v1) (n2, v2) ->
          match Qname.compare n1 n2 with 0 -> compare v1 v2 | c -> c)
        (List.map attr_key l)
    in
    List.length a.attrs = List.length b.attrs
    && List.for_all2
         (fun (n1, v1) (n2, v2) -> Qname.equal n1 n2 && String.equal v1 v2)
         (sort a.attrs) (sort b.attrs)
    && content_equal a.children b.children
  | Document -> content_equal a.children b.children

and content_equal ca cb =
  let keep n =
    match n.node_kind with Comment | Processing_instruction -> false | _ -> true
  in
  let ca = List.filter keep ca and cb = List.filter keep cb in
  List.length ca = List.length cb && List.for_all2 deep_equal ca cb

let pp ppf n =
  match n.node_kind with
  | Document -> Format.fprintf ppf "document#%d" n.id
  | Element ->
    Format.fprintf ppf "element(%s)#%d" (Qname.to_string (Option.get n.name)) n.id
  | Attribute ->
    Format.fprintf ppf "attribute(%s=%S)#%d"
      (Qname.to_string (Option.get n.name))
      n.content n.id
  | Text -> Format.fprintf ppf "text(%S)#%d" n.content n.id
  | Comment -> Format.fprintf ppf "comment#%d" n.id
  | Processing_instruction -> Format.fprintf ppf "pi#%d" n.id
