(** Sequence types ([element(ns:Name)?], [xs:integer*], …) and the
    SequenceType matching rules used by typed variables, function
    signatures and [instance of]. *)

type occurrence =
  | One  (** exactly one *)
  | Opt  (** [?] zero or one *)
  | Star  (** [*] zero or more *)
  | Plus  (** [+] one or more *)

type item_type =
  | Any_item  (** [item()] *)
  | Atomic_type of Qname.t  (** [xs:integer], [xs:anyAtomicType], … *)
  | Any_node  (** [node()] *)
  | Element_type of Qname.t option  (** [element()], [element(n)] *)
  | Attribute_type of Qname.t option
  | Document_type
  | Text_type
  | Comment_type
  | Pi_type

type t = Empty_sequence  (** [empty-sequence()] *) | Typed of item_type * occurrence

val make : item_type -> occurrence -> t
val any : t
(** [item()*] — the implicit type of undeclared variables. *)

val one_element : Qname.t -> t
(** [element(n)] *)

val item_matches : item_type -> Item.t -> bool
val matches : t -> Item.seq -> bool
(** Full SequenceType matching (occurrence + item type). *)

val check : what:string -> t -> Item.seq -> Item.seq
(** [check ~what ty seq] returns [seq] if it matches, otherwise raises
    [err:XPTY0004] mentioning [what]. Sequences of untyped atomics are
    coerced to a required atomic type when possible (function conversion
    rules light). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
