(** Expanded qualified names.

    A QName is identified by its namespace URI and local part; the prefix is
    retained only for serialization and error messages and is ignored by
    {!equal}, {!compare} and {!hash}. *)

type t = {
  prefix : string option;  (** lexical prefix, if any (not significant) *)
  uri : string;  (** namespace URI; [""] means "no namespace" *)
  local : string;  (** local part *)
}

val make : ?prefix:string -> uri:string -> string -> t
(** [make ?prefix ~uri local] builds a QName. *)

val local : string -> t
(** [local n] is a QName in no namespace. *)

val equal : t -> t -> bool
(** URI/local equality; prefixes are ignored. *)

val compare : t -> t -> int

val hash : t -> int

val to_string : t -> string
(** Lexical form [prefix:local] when a prefix is present, else the local
    part, or Clark notation [{uri}local] when a URI but no prefix is
    present. *)

val pp : Format.formatter -> t -> unit

(** Well-known namespace URIs. *)

val xs_ns : string
(** XML Schema datatypes namespace. *)

val fn_ns : string
(** XPath/XQuery functions-and-operators namespace. *)

val err_ns : string
(** XQuery error namespace. *)

val xml_ns : string
(** The reserved [xml] prefix namespace. *)

val xmlns_ns : string
(** The reserved [xmlns] attribute namespace. *)

val local_default_ns : string
(** XQuery [local:] prefix namespace for local function declarations. *)

val xs : string -> t
(** [xs n] is the QName [xs:n] in {!xs_ns}. *)

val fn : string -> t
(** [fn n] is the QName [fn:n] in {!fn_ns}. *)

val err : string -> t
(** [err n] is the QName [err:n] in {!err_ns}. *)
