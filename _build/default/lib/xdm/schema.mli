(** An XML Schema subset sufficient for data-service "shapes":
    global element declarations, complex types as ordered sequences of
    child-element particles (with occurrence bounds), simple types from
    the [xs:*] set, and attribute uses. *)

type simple_type = Qname.t
(** An [xs:*] datatype name. *)

type particle = {
  elem_name : Qname.t;
  elem_type : type_def;
  min_occurs : int;
  max_occurs : int option;  (** [None] = unbounded *)
}

and type_def =
  | Simple of simple_type
  | Complex of complex_type

and complex_type = {
  attributes : (Qname.t * simple_type) list;
  children : particle list;  (** sequence content model *)
  mixed : bool;
}

type element_decl = { name : Qname.t; type_def : type_def }

type t = { target_ns : string; elements : element_decl list }
(** A schema: a target namespace plus global element declarations. *)

val make : target_ns:string -> element_decl list -> t

val simple : Qname.t -> type_def
(** [simple (Qname.xs "string")] *)

val complex :
  ?attributes:(Qname.t * simple_type) list ->
  ?mixed:bool ->
  particle list ->
  type_def

val particle :
  ?min:int -> ?max:int option -> Qname.t -> type_def -> particle
(** Defaults: [min = 1], [max = Some 1]. *)

val find_element : t -> Qname.t -> element_decl option

type violation = { path : string; message : string }

val validate : t -> Node.t -> (unit, violation list) result
(** Validate an element node against the schema's global declaration of
    its name. Checks the content model (order + occurrence), attribute
    presence, and simple-type lexical validity of leaf values. *)

val leaf_paths : t -> Qname.t -> (string list * simple_type) list
(** All leaf element paths (as lists of local names, excluding the root)
    under a global element declaration, with their simple types — used by
    lineage analysis. Recursion is cut off at depth 16. *)
