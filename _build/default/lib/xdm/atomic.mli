(** Atomic values of the XQuery Data Model.

    The supported types are the ones exercised by ALDSP-style data
    services: strings, untyped atomics, booleans, the numeric tower
    (integer / decimal / double), QNames, URIs and the date/time types
    (kept in canonical lexical form). *)

(** Which xs duration type a value was declared as: [xs:duration],
    [xs:yearMonthDuration] or [xs:dayTimeDuration]. *)
type duration_kind = Dur_any | Dur_ym | Dur_dt

type duration = {
  d_months : int;  (** year-month component, in months *)
  d_seconds : float;  (** day-time component, in seconds *)
  d_kind : duration_kind;
}

type t =
  | String of string
  | Untyped of string  (** [xs:untypedAtomic] *)
  | Boolean of bool
  | Integer of int  (** [xs:integer], machine precision *)
  | Decimal of float  (** [xs:decimal], approximated by a float *)
  | Double of float
  | QName of Qname.t
  | AnyUri of string
  | Date of string  (** canonical [YYYY-MM-DD] *)
  | DateTime of string
  | Time of string
  | Duration of duration

exception Cast_error of string
(** Raised by {!cast_to} and the arithmetic helpers on invalid lexical
    forms or forbidden conversions; callers map it to [err:FORG0001]. *)

val type_name : t -> Qname.t
(** The [xs:*] type QName of a value. *)

val to_string : t -> string
(** The string value, using the XQuery functions-and-operators rules for
    formatting numbers (no trailing [.0] on integral decimals, exponent
    notation for large/small doubles, [INF]/[-INF]/[NaN]). *)

val of_bool : bool -> t
val of_int : int -> t
val of_string : string -> t

val cast_to : t -> Qname.t -> t
(** [cast_to v ty] casts [v] to the [xs:*] type named [ty] following the
    XQuery casting table. @raise Cast_error on failure. *)

val can_cast_to : t -> Qname.t -> bool
(** The [castable as] predicate. *)

val derives_from : Qname.t -> Qname.t -> bool
(** [derives_from actual expected] is the atomic-type hierarchy test used
    by sequence-type matching: e.g. [xs:integer] derives from
    [xs:decimal] and every type derives from [xs:anyAtomicType]. *)

val is_numeric : t -> bool
val is_nan : t -> bool

val to_double : t -> float
(** Numeric value as a float. @raise Cast_error on non-numbers. *)

val compare_values : t -> t -> int
(** Value comparison after untyped-to-string coercion; numeric types are
    compared on the numeric tower, strings by code point.
    @raise Cast_error on incomparable types (e.g. integer vs date). *)

val equal_values : t -> t -> bool
(** [compare_values a b = 0], with NaN unequal to everything. *)

type arith_op = Add | Sub | Mul | Div | Idiv | Mod

val arith : arith_op -> t -> t -> t
(** Arithmetic with XQuery numeric promotion (integer op integer stays
    integer except [Div], untyped operands are cast to double), plus
    temporal arithmetic: date/dateTime/time ± duration (year-month
    components applied first, with end-of-month clamping), date − date
    and dateTime − dateTime (→ [xs:dayTimeDuration]), duration ±
    duration, duration × ÷ number, and duration ÷ duration (→
    [xs:decimal]).
    @raise Cast_error on undefined operand combinations or division by
    zero. *)

val negate : t -> t
(** Unary minus. @raise Cast_error on non-numeric operands. *)

val deep_equal : t -> t -> bool
(** Equality used by [fn:deep-equal]: like {!equal_values} but NaN equals
    NaN and incomparable types are unequal instead of an error. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: [xs:integer(42)]. *)
