(* Durations: months and seconds never both carry opposite signs; the
   [kind] records the declared xs type so sequence-type matching and
   casting stay honest. *)
type duration_kind = Dur_any | Dur_ym | Dur_dt

type duration = { d_months : int; d_seconds : float; d_kind : duration_kind }

type t =
  | String of string
  | Untyped of string
  | Boolean of bool
  | Integer of int
  | Decimal of float
  | Double of float
  | QName of Qname.t
  | AnyUri of string
  | Date of string
  | DateTime of string
  | Time of string
  | Duration of duration

exception Cast_error of string

let type_name = function
  | String _ -> Qname.xs "string"
  | Untyped _ -> Qname.xs "untypedAtomic"
  | Boolean _ -> Qname.xs "boolean"
  | Integer _ -> Qname.xs "integer"
  | Decimal _ -> Qname.xs "decimal"
  | Double _ -> Qname.xs "double"
  | QName _ -> Qname.xs "QName"
  | AnyUri _ -> Qname.xs "anyURI"
  | Date _ -> Qname.xs "date"
  | DateTime _ -> Qname.xs "dateTime"
  | Time _ -> Qname.xs "time"
  | Duration { d_kind = Dur_any; _ } -> Qname.xs "duration"
  | Duration { d_kind = Dur_ym; _ } -> Qname.xs "yearMonthDuration"
  | Duration { d_kind = Dur_dt; _ } -> Qname.xs "dayTimeDuration"

(* Decimal formatting per F&O: minimal digits, no point when integral. *)
let string_of_decimal f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else begin
    (* strip trailing zeros from a fixed representation *)
    let s = Printf.sprintf "%.12f" f in
    let s =
      let n = String.length s in
      let rec last i = if i > 0 && s.[i] = '0' then last (i - 1) else i in
      let i = last (n - 1) in
      let i = if s.[i] = '.' then i - 1 else i in
      String.sub s 0 (i + 1)
    in
    s
  end

let string_of_double f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "INF"
  else if f = Float.neg_infinity then "-INF"
  else
    let a = Float.abs f in
    if a >= 0.000001 && a < 1000000. then string_of_decimal f
    else if f = 0. then "0"
    else begin
      (* exponent notation mantissaEexp with minimal mantissa digits *)
      let s = Printf.sprintf "%.12E" f in
      match String.index_opt s 'E' with
      | None -> s
      | Some i ->
        let mant = String.sub s 0 i in
        let exp = int_of_string (String.sub s (i + 1) (String.length s - i - 1)) in
        let mant =
          let n = String.length mant in
          let rec last j = if j > 0 && mant.[j] = '0' then last (j - 1) else j in
          let j = last (n - 1) in
          let j = if mant.[j] = '.' then j + 1 else j in
          (* keep at least one fraction digit, per canonical form *)
          String.sub mant 0 (j + 1)
        in
        let mant = if String.contains mant '.' then mant else mant ^ ".0" in
        Printf.sprintf "%sE%d" mant exp
    end

(* ---- duration lexical forms ---- *)

let duration_to_string { d_months; d_seconds; _ } =
  if d_months = 0 && d_seconds = 0. then "PT0S"
  else begin
    let neg = d_months < 0 || d_seconds < 0. in
    let m = abs d_months and total = Float.abs d_seconds in
    let buf = Buffer.create 16 in
    if neg then Buffer.add_char buf '-';
    Buffer.add_char buf 'P';
    let years = m / 12 and months = m mod 12 in
    if years > 0 then Buffer.add_string buf (string_of_int years ^ "Y");
    if months > 0 then Buffer.add_string buf (string_of_int months ^ "M");
    let days = int_of_float (total /. 86400.) in
    let rem = total -. (float_of_int days *. 86400.) in
    let hours = int_of_float (rem /. 3600.) in
    let rem = rem -. (float_of_int hours *. 3600.) in
    let mins = int_of_float (rem /. 60.) in
    let secs = rem -. (float_of_int mins *. 60.) in
    if days > 0 then Buffer.add_string buf (string_of_int days ^ "D");
    if hours > 0 || mins > 0 || secs > 0. then begin
      Buffer.add_char buf 'T';
      if hours > 0 then Buffer.add_string buf (string_of_int hours ^ "H");
      if mins > 0 then Buffer.add_string buf (string_of_int mins ^ "M");
      if secs > 0. then Buffer.add_string buf (string_of_decimal secs ^ "S")
    end;
    Buffer.contents buf
  end

let to_string = function
  | String s | Untyped s | AnyUri s -> s
  | Boolean b -> if b then "true" else "false"
  | Integer i -> string_of_int i
  | Decimal f -> string_of_decimal f
  | Double f -> string_of_double f
  | QName q -> Qname.to_string q
  | Date s | DateTime s | Time s -> s
  | Duration d -> duration_to_string d

let of_bool b = Boolean b
let of_int i = Integer i
let of_string s = String s

let trim s =
  let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_ws s.[!i] do incr i done;
  while !j >= !i && is_ws s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

let parse_integer s =
  let s = trim s in
  match int_of_string_opt s with
  | Some i -> i
  | None -> raise (Cast_error (Printf.sprintf "invalid xs:integer literal %S" s))

let parse_float ~ty s =
  let s = trim s in
  match s with
  | "INF" -> Float.infinity
  | "-INF" -> Float.neg_infinity
  | "NaN" -> Float.nan
  | _ -> (
    match float_of_string_opt s with
    | Some f -> f
    | None -> raise (Cast_error (Printf.sprintf "invalid %s literal %S" ty s)))

let parse_decimal s =
  let s = trim s in
  (* xs:decimal forbids exponents and the INF/NaN specials *)
  if String.exists (fun c -> c = 'e' || c = 'E') s then
    raise (Cast_error (Printf.sprintf "invalid xs:decimal literal %S" s));
  match float_of_string_opt s with
  | Some f -> f
  | None -> raise (Cast_error (Printf.sprintf "invalid xs:decimal literal %S" s))

let parse_boolean s =
  match trim s with
  | "true" | "1" -> true
  | "false" | "0" -> false
  | s -> raise (Cast_error (Printf.sprintf "invalid xs:boolean literal %S" s))

let is_digit c = c >= '0' && c <= '9'

let looks_like_date s =
  (* YYYY-MM-DD with optional timezone; loose validation *)
  String.length s >= 10
  && is_digit s.[0] && is_digit s.[1] && is_digit s.[2] && is_digit s.[3]
  && s.[4] = '-' && is_digit s.[5] && is_digit s.[6] && s.[7] = '-'
  && is_digit s.[8] && is_digit s.[9]

let looks_like_time s =
  String.length s >= 8
  && is_digit s.[0] && is_digit s.[1] && s.[2] = ':'
  && is_digit s.[3] && is_digit s.[4] && s.[5] = ':'

let looks_like_datetime s =
  looks_like_date s && String.length s > 10 && s.[10] = 'T'
  && looks_like_time (String.sub s 11 (String.length s - 11))

let parse_date s =
  let s = trim s in
  if looks_like_date s && not (String.contains s 'T') then s
  else raise (Cast_error (Printf.sprintf "invalid xs:date literal %S" s))

let parse_datetime s =
  let s = trim s in
  if looks_like_datetime s then s
  else raise (Cast_error (Printf.sprintf "invalid xs:dateTime literal %S" s))

let parse_time s =
  let s = trim s in
  if looks_like_time s then s
  else raise (Cast_error (Printf.sprintf "invalid xs:time literal %S" s))

(* ---- duration parsing ---- *)

let parse_duration kind s0 =
  let s = trim s0 in
  let bad () =
    raise (Cast_error (Printf.sprintf "invalid duration literal %S" s0))
  in
  let neg, s =
    if s <> "" && s.[0] = '-' then (true, String.sub s 1 (String.length s - 1))
    else (false, s)
  in
  if String.length s < 2 || s.[0] <> 'P' then bad ();
  let months = ref 0 and seconds = ref 0. in
  let in_time = ref false in
  let saw_field = ref false in
  let i = ref 1 in
  let n = String.length s in
  while !i < n do
    if s.[!i] = 'T' then begin
      in_time := true;
      incr i;
      if !i >= n then bad ()
    end
    else begin
      let start = !i in
      while !i < n && (is_digit s.[!i] || s.[!i] = '.') do incr i done;
      if !i = start || !i >= n then bad ();
      let num = String.sub s start (!i - start) in
      let value =
        match float_of_string_opt num with Some f -> f | None -> bad ()
      in
      let field = s.[!i] in
      incr i;
      saw_field := true;
      (match (field, !in_time) with
      | 'Y', false -> months := !months + (int_of_float value * 12)
      | 'M', false -> months := !months + int_of_float value
      | 'D', false -> seconds := !seconds +. (value *. 86400.)
      | 'H', true -> seconds := !seconds +. (value *. 3600.)
      | 'M', true -> seconds := !seconds +. (value *. 60.)
      | 'S', true -> seconds := !seconds +. value
      | _ -> bad ())
    end
  done;
  if not !saw_field then bad ();
  let months = if neg then - !months else !months
  and seconds = if neg then -. !seconds else !seconds in
  (match kind with
  | Dur_ym -> if seconds <> 0. then bad ()
  | Dur_dt -> if months <> 0 then bad ()
  | Dur_any -> ());
  { d_months = months; d_seconds = seconds; d_kind = kind }

(* ---- civil-date arithmetic (Hinnant's algorithms) ---- *)

let days_from_civil y m d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (m + 9) mod 12 in
  let doy = (((153 * mp) + 2) / 5) + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  ((if m <= 2 then y + 1 else y), m, d)

let parse_ymd s =
  try Scanf.sscanf (String.sub s 0 10) "%4d-%2d-%2d" (fun y m d -> (y, m, d))
  with _ -> raise (Cast_error (Printf.sprintf "invalid date %S" s))

let format_ymd (y, m, d) = Printf.sprintf "%04d-%02d-%02d" y m d

let last_day_of_month y m =
  let y', m' = if m = 12 then (y + 1, 1) else (y, m + 1) in
  civil_from_days (days_from_civil y' m' 1 - 1) |> fun (_, _, d) -> d

let add_months (y, m, d) n =
  let total = (y * 12) + (m - 1) + n in
  let y' = if total >= 0 then total / 12 else (total - 11) / 12 in
  let m' = total - (y' * 12) + 1 in
  (y', m', min d (last_day_of_month y' m'))

(* seconds within the day from "HH:MM:SS(.fff)?"; timezone suffixes are
   ignored (all values are treated as being in one timezone) *)
let parse_hms s =
  try Scanf.sscanf s "%2d:%2d:%f" (fun h m sec ->
      (float_of_int ((h * 3600) + (m * 60)) +. sec))
  with _ -> raise (Cast_error (Printf.sprintf "invalid time %S" s))

let format_hms secs =
  let h = int_of_float (secs /. 3600.) in
  let rem = secs -. (float_of_int h *. 3600.) in
  let m = int_of_float (rem /. 60.) in
  let s = rem -. (float_of_int m *. 60.) in
  if Float.is_integer s then Printf.sprintf "%02d:%02d:%02.0f" h m s
  else Printf.sprintf "%02d:%02d:%06.3f" h m s

let datetime_to_seconds s =
  let y, m, d = parse_ymd s in
  let tod =
    if String.length s > 11 then parse_hms (String.sub s 11 (String.length s - 11))
    else 0.
  in
  (float_of_int (days_from_civil y m d) *. 86400.) +. tod

let seconds_to_datetime f =
  let day = int_of_float (Float.floor (f /. 86400.)) in
  let tod = f -. (float_of_int day *. 86400.) in
  format_ymd (civil_from_days day) ^ "T" ^ format_hms tod

(* date/dateTime/time ± duration, with month arithmetic first *)
let shift_datetime ~is_date s (dur : duration) sign =
  let y, m, d = parse_ymd s in
  let y, m, d = add_months (y, m, d) (sign * dur.d_months) in
  let tod =
    if (not is_date) && String.length s > 11 then
      parse_hms (String.sub s 11 (String.length s - 11))
    else 0.
  in
  let total =
    (float_of_int (days_from_civil y m d) *. 86400.)
    +. tod
    +. (float_of_int sign *. dur.d_seconds)
  in
  if is_date then
    format_ymd (civil_from_days (int_of_float (Float.floor (total /. 86400.))))
  else seconds_to_datetime total

let shift_time s (dur : duration) sign =
  if dur.d_months <> 0 then
    raise (Cast_error "cannot add a year-month duration to xs:time");
  let tod = parse_hms s +. (float_of_int sign *. dur.d_seconds) in
  let tod = Float.rem tod 86400. in
  let tod = if tod < 0. then tod +. 86400. else tod in
  format_hms tod

let cast_to v ty =
  if ty.Qname.uri <> Qname.xs_ns then
    raise (Cast_error ("unknown cast target type " ^ Qname.to_string ty));
  let fail () =
    raise
      (Cast_error
         (Printf.sprintf "cannot cast %s to xs:%s"
            (Qname.to_string (type_name v))
            ty.Qname.local))
  in
  let s = to_string v in
  match ty.Qname.local with
  | "string" -> String s
  | "untypedAtomic" -> Untyped s
  | "anyURI" -> AnyUri (trim s)
  | "boolean" -> (
    match v with
    | Boolean _ -> v
    | Integer i -> Boolean (i <> 0)
    | Decimal f | Double f -> Boolean (not (f = 0. || Float.is_nan f))
    | String _ | Untyped _ -> Boolean (parse_boolean s)
    | _ -> fail ())
  | "integer" | "int" | "long" | "short" | "byte" -> (
    match v with
    | Integer _ -> v
    | Decimal f | Double f ->
      if Float.is_nan f || Float.abs f = Float.infinity then fail ()
      else Integer (int_of_float (Float.of_int (int_of_float f)))
    | Boolean b -> Integer (if b then 1 else 0)
    | String _ | Untyped _ -> Integer (parse_integer s)
    | _ -> fail ())
  | "decimal" -> (
    match v with
    | Decimal _ -> v
    | Integer i -> Decimal (float_of_int i)
    | Double f ->
      if Float.is_nan f || Float.abs f = Float.infinity then fail ()
      else Decimal f
    | Boolean b -> Decimal (if b then 1. else 0.)
    | String _ | Untyped _ -> Decimal (parse_decimal s)
    | _ -> fail ())
  | "double" | "float" -> (
    match v with
    | Double _ -> v
    | Integer i -> Double (float_of_int i)
    | Decimal f -> Double f
    | Boolean b -> Double (if b then 1. else 0.)
    | String _ | Untyped _ -> Double (parse_float ~ty:"xs:double" s)
    | _ -> fail ())
  | "QName" -> (
    match v with
    | QName _ -> v
    | String _ | Untyped _ ->
      (* unprefixed only: prefixed casts need in-scope namespaces, which
         the evaluator layer handles before calling here *)
      let s = trim s in
      if String.contains s ':' then fail () else QName (Qname.local s)
    | _ -> fail ())
  | "date" -> (
    match v with
    | Date _ -> v
    | DateTime dt -> Date (String.sub dt 0 10)
    | String _ | Untyped _ -> Date (parse_date s)
    | _ -> fail ())
  | "dateTime" -> (
    match v with
    | DateTime _ -> v
    | Date d -> DateTime (d ^ "T00:00:00")
    | String _ | Untyped _ -> DateTime (parse_datetime s)
    | _ -> fail ())
  | "time" -> (
    match v with
    | Time _ -> v
    | DateTime dt when String.length dt > 11 ->
      Time (String.sub dt 11 (String.length dt - 11))
    | String _ | Untyped _ -> Time (parse_time s)
    | _ -> fail ())
  | "duration" -> (
    match v with
    | Duration d -> Duration { d with d_kind = Dur_any }
    | String _ | Untyped _ -> Duration (parse_duration Dur_any s)
    | _ -> fail ())
  | "yearMonthDuration" -> (
    match v with
    | Duration d -> Duration { d_months = d.d_months; d_seconds = 0.; d_kind = Dur_ym }
    | String _ | Untyped _ -> Duration (parse_duration Dur_ym s)
    | _ -> fail ())
  | "dayTimeDuration" -> (
    match v with
    | Duration d -> Duration { d_months = 0; d_seconds = d.d_seconds; d_kind = Dur_dt }
    | String _ | Untyped _ -> Duration (parse_duration Dur_dt s)
    | _ -> fail ())
  | _ -> raise (Cast_error ("unknown cast target type xs:" ^ ty.Qname.local))

let can_cast_to v ty =
  match cast_to v ty with _ -> true | exception Cast_error _ -> false

let derives_from actual expected =
  Qname.equal actual expected
  || (expected.Qname.uri = Qname.xs_ns
     &&
     match expected.Qname.local with
     | "anyAtomicType" -> true
     | "decimal" -> Qname.equal actual (Qname.xs "integer")
     | "duration" ->
       Qname.equal actual (Qname.xs "yearMonthDuration")
       || Qname.equal actual (Qname.xs "dayTimeDuration")
     | "string" -> false
     | _ -> false)

let is_numeric = function
  | Integer _ | Decimal _ | Double _ -> true
  | _ -> false

let is_nan = function Double f -> Float.is_nan f | _ -> false

let to_double = function
  | Integer i -> float_of_int i
  | Decimal f | Double f -> f
  | Untyped s -> parse_float ~ty:"xs:double" s
  | v ->
    raise
      (Cast_error
         ("expected a numeric value, got " ^ Qname.to_string (type_name v)))

(* Numeric tower rank for binary promotion. *)
type rank = Rint | Rdec | Rdbl

let rank = function
  | Integer _ -> Some Rint
  | Decimal _ -> Some Rdec
  | Double _ -> Some Rdbl
  | Untyped _ -> Some Rdbl
  | _ -> None

let join_rank a b =
  match (a, b) with
  | Rdbl, _ | _, Rdbl -> Rdbl
  | Rdec, _ | _, Rdec -> Rdec
  | Rint, Rint -> Rint

(* a total order exists within one duration dimension; mixed durations
   only support equality *)
let compare_duration x y =
  if x.d_seconds = 0. && y.d_seconds = 0. then compare x.d_months y.d_months
  else if x.d_months = 0 && y.d_months = 0 then
    Float.compare x.d_seconds y.d_seconds
  else if x.d_months = y.d_months && x.d_seconds = y.d_seconds then 0
  else raise (Cast_error "mixed durations support only equality comparison")

let compare_values a b =
  let cmp_float x y =
    if Float.is_nan x || Float.is_nan y then
      raise (Cast_error "NaN is not comparable")
    else Float.compare x y
  in
  match (a, b) with
  | (Integer _ | Decimal _ | Double _ | Untyped _), _
    when is_numeric b || (match b with Untyped _ -> is_numeric a | _ -> false)
    -> (
    match (rank a, rank b) with
    | Some _, Some _ -> cmp_float (to_double a) (to_double b)
    | _ -> raise (Cast_error "not comparable"))
  | Integer x, Integer y -> compare x y
  | (String x | Untyped x), (String y | Untyped y) -> String.compare x y
  | (String x | Untyped x), AnyUri y | AnyUri x, (String y | Untyped y) ->
    String.compare x y
  | AnyUri x, AnyUri y -> String.compare x y
  | Boolean x, Boolean y -> Bool.compare x y
  | Untyped x, Boolean y -> Bool.compare (parse_boolean x) y
  | Boolean x, Untyped y -> Bool.compare x (parse_boolean y)
  | Date x, Date y | DateTime x, DateTime y | Time x, Time y ->
    String.compare x y
  | Untyped x, Date y -> String.compare (parse_date x) y
  | Date x, Untyped y -> String.compare x (parse_date y)
  | Untyped x, DateTime y -> String.compare (parse_datetime x) y
  | DateTime x, Untyped y -> String.compare x (parse_datetime y)
  | Duration x, Duration y -> compare_duration x y
  | Untyped x, Duration y ->
    compare_duration (parse_duration y.d_kind x) y
  | Duration x, Untyped y ->
    compare_duration x (parse_duration x.d_kind y)
  | QName x, QName y ->
    if Qname.equal x y then 0
    else raise (Cast_error "QNames support only equality comparison")
  | _ ->
    raise
      (Cast_error
         (Printf.sprintf "cannot compare %s with %s"
            (Qname.to_string (type_name a))
            (Qname.to_string (type_name b))))

let equal_values a b =
  match (a, b) with
  | QName x, QName y -> Qname.equal x y
  | Double x, _ when Float.is_nan x -> false
  | _, Double y when Float.is_nan y -> false
  | _ -> ( match compare_values a b with 0 -> true | _ -> false)

type arith_op = Add | Sub | Mul | Div | Idiv | Mod

(* temporal arithmetic: dates/times/durations; [None] when the operand
   pair is not temporal (the numeric tower handles it) *)
let temporal_arith op a b =
  let dur_kind d = if d.d_months <> 0 then Dur_ym else Dur_dt in
  let norm d = { d with d_kind = dur_kind d } in
  match (op, a, b) with
  | Add, Date s, Duration d | Add, Duration d, Date s ->
    Some (Date (shift_datetime ~is_date:true s d 1))
  | Sub, Date s, Duration d -> Some (Date (shift_datetime ~is_date:true s d (-1)))
  | Add, DateTime s, Duration d | Add, Duration d, DateTime s ->
    Some (DateTime (shift_datetime ~is_date:false s d 1))
  | Sub, DateTime s, Duration d ->
    Some (DateTime (shift_datetime ~is_date:false s d (-1)))
  | Add, Time s, Duration d | Add, Duration d, Time s ->
    Some (Time (shift_time s d 1))
  | Sub, Time s, Duration d -> Some (Time (shift_time s d (-1)))
  | Sub, Date x, Date y ->
    let dx, dy = (parse_ymd x, parse_ymd y) in
    let days (yy, mm, dd) = days_from_civil yy mm dd in
    Some
      (Duration
         {
           d_months = 0;
           d_seconds = float_of_int (days dx - days dy) *. 86400.;
           d_kind = Dur_dt;
         })
  | Sub, DateTime x, DateTime y ->
    Some
      (Duration
         {
           d_months = 0;
           d_seconds = datetime_to_seconds x -. datetime_to_seconds y;
           d_kind = Dur_dt;
         })
  | Sub, Time x, Time y ->
    Some
      (Duration
         { d_months = 0; d_seconds = parse_hms x -. parse_hms y; d_kind = Dur_dt })
  | (Add | Sub), Duration x, Duration y ->
    let sign = if op = Add then 1 else -1 in
    let r =
      {
        d_months = x.d_months + (sign * y.d_months);
        d_seconds = x.d_seconds +. (float_of_int sign *. y.d_seconds);
        d_kind = Dur_any;
      }
    in
    Some (Duration (norm r))
  | Mul, Duration d, (Integer _ | Decimal _ | Double _)
  | Mul, (Integer _ | Decimal _ | Double _), Duration d ->
    let f =
      match (a, b) with
      | Duration _, Integer i | Integer i, Duration _ -> float_of_int i
      | Duration _, (Decimal f | Double f) | (Decimal f | Double f), Duration _
        -> f
      | _ -> 1.
    in
    Some
      (Duration
         (norm
            {
              d_months = int_of_float (Float.round (float_of_int d.d_months *. f));
              d_seconds = d.d_seconds *. f;
              d_kind = Dur_any;
            }))
  | Div, Duration d, (Integer _ | Decimal _ | Double _) ->
    let f =
      match b with
      | Integer i -> float_of_int i
      | Decimal f | Double f -> f
      | _ -> 1.
    in
    if f = 0. then raise (Cast_error "division of a duration by zero")
    else
      Some
        (Duration
           (norm
              {
                d_months =
                  int_of_float (Float.round (float_of_int d.d_months /. f));
                d_seconds = d.d_seconds /. f;
                d_kind = Dur_any;
              }))
  | Div, Duration x, Duration y ->
    if x.d_months = 0 && y.d_months = 0 then
      if y.d_seconds = 0. then raise (Cast_error "division of a duration by zero")
      else Some (Decimal (x.d_seconds /. y.d_seconds))
    else if x.d_seconds = 0. && y.d_seconds = 0. then
      if y.d_months = 0 then raise (Cast_error "division of a duration by zero")
      else Some (Decimal (float_of_int x.d_months /. float_of_int y.d_months))
    else raise (Cast_error "cannot divide mixed durations")
  | _, (Date _ | DateTime _ | Time _ | Duration _), _
  | _, _, (Date _ | DateTime _ | Time _ | Duration _) ->
    raise
      (Cast_error
         (Printf.sprintf "operator is not defined for %s and %s"
            (Qname.to_string (type_name a))
            (Qname.to_string (type_name b))))
  | _ -> None

let arith op a b =
  match temporal_arith op a b with
  | Some r -> r
  | None ->
  let ra =
    match rank a with
    | Some r -> r
    | None ->
      raise
        (Cast_error
           ("arithmetic on non-numeric operand "
          ^ Qname.to_string (type_name a)))
  and rb =
    match rank b with
    | Some r -> r
    | None ->
      raise
        (Cast_error
           ("arithmetic on non-numeric operand "
          ^ Qname.to_string (type_name b)))
  in
  let r = join_rank ra rb in
  let fa = to_double a and fb = to_double b in
  match op with
  | Idiv ->
    if fb = 0. then raise (Cast_error "integer division by zero")
    else Integer (int_of_float (Float.trunc (fa /. fb)))
  | Mod -> (
    match r with
    | Rint ->
      let ia = int_of_float fa and ib = int_of_float fb in
      if ib = 0 then raise (Cast_error "integer mod by zero")
      else Integer (Int.rem ia ib)
    | Rdec ->
      if fb = 0. then raise (Cast_error "decimal mod by zero")
      else Decimal (Float.rem fa fb)
    | Rdbl -> Double (Float.rem fa fb))
  | Div -> (
    match r with
    | Rint | Rdec ->
      if fb = 0. then raise (Cast_error "division by zero")
      else Decimal (fa /. fb)
    | Rdbl -> Double (fa /. fb))
  | Add | Sub | Mul -> (
    let f =
      match op with
      | Add -> fa +. fb
      | Sub -> fa -. fb
      | Mul -> fa *. fb
      | Div | Idiv | Mod -> assert false
    in
    match r with
    | Rint -> Integer (int_of_float f)
    | Rdec -> Decimal f
    | Rdbl -> Double f)

let negate = function
  | Integer i -> Integer (-i)
  | Decimal f -> Decimal (-.f)
  | Double f -> Double (-.f)
  | Untyped s -> Double (-.parse_float ~ty:"xs:double" s)
  | v ->
    raise
      (Cast_error
         ("unary minus on non-numeric operand " ^ Qname.to_string (type_name v)))

let deep_equal a b =
  match (a, b) with
  | Double x, Double y when Float.is_nan x && Float.is_nan y -> true
  | _ -> ( match equal_values a b with e -> e | exception Cast_error _ -> false)

let pp ppf v =
  Format.fprintf ppf "%s(%s)" (Qname.to_string (type_name v)) (to_string v)
