type simple_type = Qname.t

type particle = {
  elem_name : Qname.t;
  elem_type : type_def;
  min_occurs : int;
  max_occurs : int option;
}

and type_def = Simple of simple_type | Complex of complex_type

and complex_type = {
  attributes : (Qname.t * simple_type) list;
  children : particle list;
  mixed : bool;
}

type element_decl = { name : Qname.t; type_def : type_def }
type t = { target_ns : string; elements : element_decl list }

let make ~target_ns elements = { target_ns; elements }
let simple q = Simple q

let complex ?(attributes = []) ?(mixed = false) children =
  Complex { attributes; children; mixed }

let particle ?(min = 1) ?(max = Some 1) name type_def =
  { elem_name = name; elem_type = type_def; min_occurs = min; max_occurs = max }

let find_element schema qn =
  List.find_opt (fun d -> Qname.equal d.name qn) schema.elements

type violation = { path : string; message : string }

let check_simple_value ty s =
  let open Atomic in
  match
    (try Some (cast_to (Untyped s) ty) with Cast_error _ | Invalid_argument _ -> None)
  with
  | Some _ -> true
  | None -> false

let validate schema node =
  let violations = ref [] in
  let bad path message = violations := { path; message } :: !violations in
  let rec check_element path decl_name type_def el =
    let elname = match Node.name el with Some q -> q | None -> Qname.local "?" in
    if not (Qname.equal elname decl_name) then
      bad path
        (Printf.sprintf "expected element %s, found %s"
           (Qname.to_string decl_name) (Qname.to_string elname))
    else
      match type_def with
      | Simple ty ->
        let s = Node.string_value el in
        if not (check_simple_value ty s) then
          bad path
            (Printf.sprintf "value %S is not a valid %s" s (Qname.to_string ty))
      | Complex ct ->
        List.iter
          (fun (an, aty) ->
            match Node.attribute_value el an with
            | None -> ()
            | Some v ->
              if not (check_simple_value aty v) then
                bad
                  (path ^ "/@" ^ Qname.to_string an)
                  (Printf.sprintf "attribute value %S is not a valid %s" v
                     (Qname.to_string aty)))
          ct.attributes;
        let child_elems =
          List.filter (fun c -> Node.kind c = Node.Element) (Node.children el)
        in
        if not ct.mixed then begin
          let has_text =
            List.exists
              (fun c ->
                Node.kind c = Node.Text
                && String.exists (fun ch -> not (ch = ' ' || ch = '\n' || ch = '\t' || ch = '\r'))
                     (Node.text_content c))
              (Node.children el)
          in
          if has_text && ct.children <> [] then
            bad path "unexpected text content in element-only element"
        end;
        check_sequence path ct.children child_elems
  and check_sequence path particles elems =
    match particles with
    | [] ->
      List.iter
        (fun e ->
          bad path
            (Printf.sprintf "unexpected element %s"
               (match Node.name e with
               | Some q -> Qname.to_string q
               | None -> "?")))
        elems
    | p :: rest ->
      let matches_p e =
        match Node.name e with
        | Some q -> Qname.equal q p.elem_name
        | None -> false
      in
      let rec take n acc = function
        | e :: more when matches_p e && (match p.max_occurs with None -> true | Some m -> n < m) ->
          take (n + 1) (e :: acc) more
        | more -> (n, List.rev acc, more)
      in
      let count, matched, remaining = take 0 [] elems in
      if count < p.min_occurs then
        bad path
          (Printf.sprintf "element %s occurs %d time(s), minimum is %d"
             (Qname.to_string p.elem_name) count p.min_occurs);
      List.iteri
        (fun i e ->
          check_element
            (path ^ "/" ^ Qname.to_string p.elem_name
            ^ if count > 1 then Printf.sprintf "[%d]" (i + 1) else "")
            p.elem_name p.elem_type e)
        matched;
      check_sequence path rest remaining
  in
  (match Node.name node with
  | None -> bad "/" "not an element node"
  | Some qn -> (
    match find_element schema qn with
    | None ->
      bad "/"
        (Printf.sprintf "no global element declaration for %s"
           (Qname.to_string qn))
    | Some decl ->
      check_element ("/" ^ Qname.to_string qn) decl.name decl.type_def node));
  match List.rev !violations with [] -> Ok () | vs -> Error vs

let leaf_paths schema root =
  match find_element schema root with
  | None -> []
  | Some decl ->
    let acc = ref [] in
    let rec go depth path type_def =
      if depth > 16 then ()
      else
        match type_def with
        | Simple ty -> acc := (List.rev path, ty) :: !acc
        | Complex ct ->
          List.iter
            (fun p ->
              go (depth + 1) (p.elem_name.Qname.local :: path) p.elem_type)
            ct.children
    in
    (match decl.type_def with
    | Simple ty -> acc := ([], ty) :: !acc
    | Complex ct ->
      List.iter
        (fun p -> go 1 [ p.elem_name.Qname.local ] p.elem_type)
        ct.children);
    List.rev !acc
