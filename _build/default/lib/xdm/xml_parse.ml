exception Parse_error of { line : int; col : int; message : string }

type state = {
  src : string;
  mutable pos : int;
  (* namespace scopes: innermost first; each is (prefix, uri) *)
  mutable ns : (string * string) list list;
}

let line_col st =
  let line = ref 1 and col = ref 1 in
  for i = 0 to min (st.pos - 1) (String.length st.src - 1) do
    if st.src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let fail st msg =
  let line, col = line_col st in
  raise (Parse_error { line; col; message = msg })

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else fail st (Printf.sprintf "expected %S" s)

let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'
let skip_ws st = while (not (eof st)) && is_ws (peek st) do advance st done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let read_ncname st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do advance st done;
  String.sub st.src start (st.pos - start)

(* Returns (prefix option, local). *)
let read_qname_raw st =
  let n1 = read_ncname st in
  if peek st = ':' && is_name_start (peek2 st) then begin
    advance st;
    let n2 = read_ncname st in
    (Some n1, n2)
  end
  else (None, n1)

let lookup_ns st prefix =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt prefix scope with Some u -> Some u | None -> go rest)
  in
  go st.ns

let resolve_elem_name st (prefix, local) =
  match prefix with
  | Some "xml" -> Qname.make ~prefix:"xml" ~uri:Qname.xml_ns local
  | Some p -> (
    match lookup_ns st p with
    | Some uri -> Qname.make ~prefix:p ~uri local
    | None -> fail st (Printf.sprintf "undeclared namespace prefix %S" p))
  | None -> (
    match lookup_ns st "" with
    | Some uri when uri <> "" -> Qname.make ~uri local
    | _ -> Qname.local local)

let resolve_attr_name st (prefix, local) =
  (* unprefixed attributes are in no namespace *)
  match prefix with
  | Some "xml" -> Qname.make ~prefix:"xml" ~uri:Qname.xml_ns local
  | Some p -> (
    match lookup_ns st p with
    | Some uri -> Qname.make ~prefix:p ~uri local
    | None -> fail st (Printf.sprintf "undeclared namespace prefix %S" p))
  | None -> Qname.local local

let read_reference st buf =
  (* at '&' *)
  advance st;
  if peek st = '#' then begin
    advance st;
    let hex = peek st = 'x' in
    if hex then advance st;
    let start = st.pos in
    while peek st <> ';' && not (eof st) do advance st done;
    let digits = String.sub st.src start (st.pos - start) in
    expect st ";";
    let code =
      try int_of_string (if hex then "0x" ^ digits else digits)
      with _ -> fail st "invalid character reference"
    in
    if code < 128 then Buffer.add_char buf (Char.chr code)
    else begin
      (* UTF-8 encode *)
      if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else if code < 0x10000 then begin
        Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
    end
  end
  else begin
    let name = read_ncname st in
    expect st ";";
    match name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "quot" -> Buffer.add_char buf '"'
    | "apos" -> Buffer.add_char buf '\''
    | _ -> fail st (Printf.sprintf "unknown entity &%s;" name)
  end

let read_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated attribute value"
    else if peek st = quote then advance st
    else if peek st = '&' then begin
      read_reference st buf;
      go ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let skip_misc st =
  let continue = ref true in
  while !continue do
    skip_ws st;
    if looking_at st "<?" then begin
      (* XML declaration or PI at top level: skip *)
      while (not (eof st)) && not (looking_at st "?>") do advance st done;
      expect st "?>"
    end
    else if looking_at st "<!--" then begin
      st.pos <- st.pos + 4;
      while (not (eof st)) && not (looking_at st "-->") do advance st done;
      expect st "-->"
    end
    else if looking_at st "<!DOCTYPE" then begin
      (* skip to matching '>' (no internal subset support) *)
      while (not (eof st)) && peek st <> '>' do advance st done;
      expect st ">"
    end
    else continue := false
  done

let rec parse_element st =
  expect st "<";
  let raw_name = read_qname_raw st in
  (* First pass over attributes to collect namespace declarations. *)
  let raw_attrs = ref [] in
  let ns_decls = ref [] in
  let rec attrs () =
    skip_ws st;
    if peek st = '/' || peek st = '>' then ()
    else begin
      let an = read_qname_raw st in
      skip_ws st;
      expect st "=";
      skip_ws st;
      let v = read_attr_value st in
      (match an with
      | None, "xmlns" -> ns_decls := ("", v) :: !ns_decls
      | Some "xmlns", p -> ns_decls := (p, v) :: !ns_decls
      | _ -> raw_attrs := (an, v) :: !raw_attrs);
      attrs ()
    end
  in
  attrs ();
  st.ns <- List.rev !ns_decls :: st.ns;
  let name = resolve_elem_name st raw_name in
  let attrs =
    List.rev_map (fun (an, v) -> (resolve_attr_name st an, v)) !raw_attrs
  in
  let el = Node.element ~attrs name [] in
  if peek st = '/' then begin
    expect st "/>";
    st.ns <- List.tl st.ns;
    el
  end
  else begin
    expect st ">";
    parse_content st el;
    expect st "</";
    let close = read_qname_raw st in
    skip_ws st;
    expect st ">";
    let close_q = resolve_elem_name st close in
    if not (Qname.equal close_q name) then
      fail st
        (Printf.sprintf "mismatched end tag </%s> for <%s>"
           (Qname.to_string close_q) (Qname.to_string name));
    st.ns <- List.tl st.ns;
    el
  end

and parse_content st el =
  let buf = Buffer.create 16 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      Node.append_child el (Node.text (Buffer.contents buf));
      Buffer.clear buf
    end
  in
  let rec go () =
    if eof st then fail st "unexpected end of input inside element"
    else if looking_at st "</" then flush_text ()
    else if looking_at st "<!--" then begin
      flush_text ();
      st.pos <- st.pos + 4;
      let start = st.pos in
      while (not (eof st)) && not (looking_at st "-->") do advance st done;
      let c = String.sub st.src start (st.pos - start) in
      expect st "-->";
      Node.append_child el (Node.comment c);
      go ()
    end
    else if looking_at st "<![CDATA[" then begin
      st.pos <- st.pos + 9;
      let start = st.pos in
      while (not (eof st)) && not (looking_at st "]]>") do advance st done;
      Buffer.add_string buf (String.sub st.src start (st.pos - start));
      expect st "]]>";
      go ()
    end
    else if looking_at st "<?" then begin
      flush_text ();
      st.pos <- st.pos + 2;
      let target = read_ncname st in
      skip_ws st;
      let start = st.pos in
      while (not (eof st)) && not (looking_at st "?>") do advance st done;
      let data = String.sub st.src start (st.pos - start) in
      expect st "?>";
      Node.append_child el (Node.processing_instruction target data);
      go ()
    end
    else if peek st = '<' then begin
      flush_text ();
      Node.append_child el (parse_element st);
      go ()
    end
    else if peek st = '&' then begin
      read_reference st buf;
      go ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ()

let parse src =
  let st = { src; pos = 0; ns = [ [] ] } in
  skip_misc st;
  if eof st || peek st <> '<' then fail st "expected a root element";
  let root = parse_element st in
  skip_misc st;
  if not (eof st) then fail st "trailing content after root element";
  Node.document [ root ]

let parse_fragment src =
  let st = { src; pos = 0; ns = [ [] ] } in
  (* wrap in a dummy element-like loop: reuse parse_content on a holder *)
  let holder = Node.element (Qname.local "fragment-holder") [] in
  let rec go () =
    if eof st then ()
    else if looking_at st "</" then fail st "unexpected end tag in fragment"
    else begin
      parse_content_fragment st holder;
      go ()
    end
  and parse_content_fragment st el =
    (* like parse_content but stops at eof instead of "</" *)
    let buf = Buffer.create 16 in
    let flush_text () =
      if Buffer.length buf > 0 then begin
        Node.append_child el (Node.text (Buffer.contents buf));
        Buffer.clear buf
      end
    in
    let rec loop () =
      if eof st then flush_text ()
      else if looking_at st "</" then fail st "unexpected end tag in fragment"
      else if looking_at st "<!--" then begin
        flush_text ();
        st.pos <- st.pos + 4;
        let start = st.pos in
        while (not (eof st)) && not (looking_at st "-->") do advance st done;
        let c = String.sub st.src start (st.pos - start) in
        expect st "-->";
        Node.append_child el (Node.comment c);
        loop ()
      end
      else if peek st = '<' then begin
        flush_text ();
        Node.append_child el (parse_element st);
        loop ()
      end
      else if peek st = '&' then begin
        read_reference st buf;
        loop ()
      end
      else begin
        Buffer.add_char buf (peek st);
        advance st;
        loop ()
      end
    in
    loop ()
  in
  go ();
  let nodes = Node.children holder in
  List.iter Node.detach nodes;
  nodes
