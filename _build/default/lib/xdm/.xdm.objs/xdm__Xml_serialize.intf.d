lib/xdm/xml_serialize.mli: Item Node
