lib/xdm/qname.ml: Format Hashtbl String
