lib/xdm/seqtype.ml: Atomic Format Item List Node Printf Qname
