lib/xdm/xml_parse.ml: Buffer Char List Node Printf Qname String
