lib/xdm/qname.mli: Format
