lib/xdm/schema.mli: Node Qname
