lib/xdm/xml_parse.mli: Node
