lib/xdm/item.ml: Atomic Float Format List Node Qname
