lib/xdm/node.ml: Atomic Buffer Format List Option Qname String
