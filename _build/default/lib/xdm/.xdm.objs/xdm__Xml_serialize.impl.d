lib/xdm/xml_serialize.ml: Atomic Buffer Item List Node Option Qname String
