lib/xdm/seqtype.mli: Format Item Qname
