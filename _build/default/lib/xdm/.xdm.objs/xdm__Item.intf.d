lib/xdm/item.mli: Atomic Format Node Qname
