lib/xdm/atomic.ml: Bool Buffer Float Format Int Printf Qname Scanf String
