lib/xdm/node.mli: Atomic Format Qname
