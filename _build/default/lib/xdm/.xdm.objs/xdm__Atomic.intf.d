lib/xdm/atomic.mli: Format Qname
