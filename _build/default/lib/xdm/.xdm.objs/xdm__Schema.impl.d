lib/xdm/schema.ml: Atomic List Node Printf Qname String
