(** XML serialization of {!Node.t} trees.

    Namespace declarations are synthesized from the QNames in the tree:
    each element declares the prefixes its own name and attribute names
    need that are not already in scope. *)

val to_string : ?indent:bool -> Node.t -> string
(** Serialize one node. Documents serialize their children; attribute
    nodes serialize as [name="value"]. [indent] pretty-prints
    element-only content (default [false]). *)

val seq_to_string : ?indent:bool -> Item.seq -> string
(** Serialize a sequence per the XQuery serialization rules: adjacent
    atomic values are separated by single spaces, nodes serialized in
    place. *)

val escape_text : string -> string
(** Escape ampersand, less-than and greater-than for character data. *)

val escape_attr : string -> string
(** Escape ampersand, less-than and double-quote for attribute values. *)
