(** Items and sequences — the values XQuery expressions evaluate to —
    plus the dynamic-error exception shared by the whole stack. *)

type t = Atomic of Atomic.t | Node of Node.t

type seq = t list
(** A sequence of items. The empty list is the empty sequence; there are
    no nested sequences. *)

exception Error of { code : Qname.t; message : string; items : seq }
(** The XQuery dynamic/type error, carrying an [err:*] (or user) QName
    code, a message and the optional diagnostic items of [fn:error]. *)

val raise_error : ?items:seq -> Qname.t -> string -> 'a
(** Raise {!Error}. *)

val type_error : string -> 'a
(** Raise [err:XPTY0004]. *)

(** {1 Constructors} *)

val of_atom : Atomic.t -> seq
val of_node : Node.t -> seq
val str : string -> seq
val int : int -> seq
val bool : bool -> seq
val empty : seq

(** {1 Observers} *)

val string_value : t -> string
val atomize : seq -> Atomic.t list
(** XDM atomization: nodes become their typed values. *)

val effective_boolean_value : seq -> bool
(** The EBV rules: empty is false; a sequence starting with a node is
    true; singleton booleans/strings/numbers by their own rule.
    @raise Error [err:FORG0006] otherwise. *)

val one_atom : seq -> Atomic.t
(** Atomize and require exactly one atomic value.
    @raise Error [err:XPTY0004] otherwise. *)

val one_atom_opt : seq -> Atomic.t option
(** Atomize and require zero or one atomic value. *)

val one_node : seq -> Node.t
(** Require a single node item. @raise Error [err:XPTY0004] otherwise. *)

val nodes_only : seq -> Node.t list
(** Require all items to be nodes. @raise Error [err:XPTY0018]. *)

val string_of_item : t -> string
(** Like [fn:string] on one item. *)

val doc_sort : seq -> seq
(** Sort node items in document order and remove duplicates (by node
    identity). @raise Error [err:XPTY0018] if any item is atomic. *)

val deep_equal : seq -> seq -> bool
(** [fn:deep-equal] over sequences. *)

val pp : Format.formatter -> t -> unit
val pp_seq : Format.formatter -> seq -> unit
