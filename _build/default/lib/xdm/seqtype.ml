type occurrence = One | Opt | Star | Plus

type item_type =
  | Any_item
  | Atomic_type of Qname.t
  | Any_node
  | Element_type of Qname.t option
  | Attribute_type of Qname.t option
  | Document_type
  | Text_type
  | Comment_type
  | Pi_type

type t = Empty_sequence | Typed of item_type * occurrence

let make it occ = Typed (it, occ)
let any = Typed (Any_item, Star)
let one_element qn = Typed (Element_type (Some qn), One)

let item_matches it item =
  match (it, item) with
  | Any_item, _ -> true
  | Atomic_type ty, Item.Atomic a -> Atomic.derives_from (Atomic.type_name a) ty
  | Atomic_type _, Item.Node _ -> false
  | Any_node, Item.Node _ -> true
  | Any_node, Item.Atomic _ -> false
  | Element_type name, Item.Node n -> (
    Node.kind n = Node.Element
    &&
    match name with
    | None -> true
    | Some qn -> ( match Node.name n with Some nn -> Qname.equal nn qn | None -> false))
  | Attribute_type name, Item.Node n -> (
    Node.kind n = Node.Attribute
    &&
    match name with
    | None -> true
    | Some qn -> ( match Node.name n with Some nn -> Qname.equal nn qn | None -> false))
  | Document_type, Item.Node n -> Node.kind n = Node.Document
  | Text_type, Item.Node n -> Node.kind n = Node.Text
  | Comment_type, Item.Node n -> Node.kind n = Node.Comment
  | Pi_type, Item.Node n -> Node.kind n = Node.Processing_instruction
  | (Element_type _ | Attribute_type _ | Document_type | Text_type
    | Comment_type | Pi_type), Item.Atomic _ -> false

let occurrence_ok occ n =
  match occ with
  | One -> n = 1
  | Opt -> n <= 1
  | Star -> true
  | Plus -> n >= 1

let matches ty seq =
  match ty with
  | Empty_sequence -> seq = []
  | Typed (it, occ) ->
    occurrence_ok occ (List.length seq)
    && List.for_all (fun item -> item_matches it item) seq

let occ_string = function One -> "" | Opt -> "?" | Star -> "*" | Plus -> "+"

let item_type_string = function
  | Any_item -> "item()"
  | Atomic_type q -> Qname.to_string q
  | Any_node -> "node()"
  | Element_type None -> "element()"
  | Element_type (Some q) -> "element(" ^ Qname.to_string q ^ ")"
  | Attribute_type None -> "attribute()"
  | Attribute_type (Some q) -> "attribute(" ^ Qname.to_string q ^ ")"
  | Document_type -> "document-node()"
  | Text_type -> "text()"
  | Comment_type -> "comment()"
  | Pi_type -> "processing-instruction()"

let to_string = function
  | Empty_sequence -> "empty-sequence()"
  | Typed (it, occ) -> item_type_string it ^ occ_string occ

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Function-conversion-rules light: promote untyped atomics to a required
   atomic type, and numerics up the tower. *)
let coerce_item it item =
  match (it, item) with
  | Atomic_type ty, Item.Atomic (Atomic.Untyped _ as a)
    when ty.Qname.uri = Qname.xs_ns ->
    if item_matches it item then Some item
    else (
      try Some (Item.Atomic (Atomic.cast_to a ty))
      with Atomic.Cast_error _ -> None)
  | Atomic_type ty, Item.Atomic (Atomic.Integer _ as a)
    when Qname.equal ty (Qname.xs "double") || Qname.equal ty (Qname.xs "decimal")
    -> Some (Item.Atomic (Atomic.cast_to a ty))
  | Atomic_type ty, Item.Atomic (Atomic.Decimal _ as a)
    when Qname.equal ty (Qname.xs "double") ->
    Some (Item.Atomic (Atomic.cast_to a ty))
  | _ -> if item_matches it item then Some item else None

let check ~what ty seq =
  match ty with
  | Empty_sequence ->
    if seq = [] then seq
    else
      Item.type_error
        (Printf.sprintf "%s: expected empty-sequence(), got %d item(s)" what
           (List.length seq))
  | Typed (it, occ) ->
    if not (occurrence_ok occ (List.length seq)) then
      Item.type_error
        (Printf.sprintf "%s: cardinality of value (%d) does not match %s" what
           (List.length seq) (to_string ty))
    else
      (* atomize node items first when an atomic type is required *)
      let seq =
        match it with
        | Atomic_type _ ->
          List.map (fun a -> Item.Atomic a) (Item.atomize seq)
        | _ -> seq
      in
      List.map
        (fun item ->
          match coerce_item it item with
          | Some item -> item
          | None ->
            Item.type_error
              (Printf.sprintf "%s: item does not match required type %s" what
                 (to_string ty)))
        seq
