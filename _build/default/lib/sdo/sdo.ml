open Xdm

let sdo_ns = "commonj.sdo"
let sdo name = Qname.make ~prefix:"sdo" ~uri:sdo_ns name

type path = (string * int) list

let path_of_string s =
  if s = "" then []
  else
    List.map
      (fun step ->
        match String.index_opt step '[' with
        | None -> (step, 1)
        | Some i ->
          let name = String.sub step 0 i in
          let close =
            match String.index_opt step ']' with
            | Some j when j > i -> j
            | _ -> failwith (Printf.sprintf "invalid path step %S" step)
          in
          let idx = int_of_string (String.sub step (i + 1) (close - i - 1)) in
          (name, idx))
      (String.split_on_char '/' s)

let path_to_string p =
  String.concat "/"
    (List.map
       (fun (name, i) -> if i = 1 then name else Printf.sprintf "%s[%d]" name i)
       p)

type leaf_change = { leaf_path : path; old_value : string }
type element_delete = { deleted_path : path; deleted_old : Node.t }
type element_insert = { inserted_parent : path; inserted_node : Node.t }

type object_change = {
  mutable leaves : leaf_change list;
  mutable element_deletes : element_delete list;
  mutable element_inserts : element_insert list;
}

type change =
  | Modified of int * object_change
  | Created of int
  | Deleted of int * Node.t

type entry = { node : Node.t; mutable alive : bool; created : bool }

type t = {
  mutable entries : entry list;  (* original order; index = position+1 *)
  mutable change_order : change list;  (* newest first *)
}

let create nodes =
  {
    entries =
      List.map
        (fun n -> { node = Node.deep_copy n; alive = true; created = false })
        nodes;
    change_order = [];
  }

let roots t = List.filter_map (fun e -> if e.alive then Some e.node else None) t.entries

let entry t i =
  match List.nth_opt t.entries (i - 1) with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Sdo.root: index %d out of range" i)

let root t i =
  let e = entry t i in
  if not e.alive then invalid_arg (Printf.sprintf "Sdo.root: object %d was deleted" i);
  e.node

let changes t = List.rev t.change_order
let is_dirty t = t.change_order <> []

(* navigation *)
let child_elements node =
  List.filter (fun c -> Node.kind c = Node.Element) (Node.children node)

let nth_child node name idx =
  let matching =
    List.filter
      (fun c ->
        match Node.name c with
        | Some q -> q.Qname.local = name
        | None -> false)
      (child_elements node)
  in
  match List.nth_opt matching (idx - 1) with
  | Some c -> c
  | None ->
    invalid_arg
      (Printf.sprintf "Sdo: no child %s[%d] under %s" name idx
         (match Node.name node with
         | Some q -> Qname.to_string q
         | None -> "?"))

let navigate node path = List.fold_left (fun n (name, i) -> nth_child n name i) node path

(* index of [node] among same-named element siblings (1-based) *)
let occurrence_index node =
  match (Node.parent node, Node.name node) with
  | Some parent, Some qn ->
    let same =
      List.filter
        (fun c ->
          match Node.name c with
          | Some q -> q.Qname.local = qn.Qname.local
          | None -> false)
        (child_elements parent)
    in
    let rec find i = function
      | [] -> 1
      | c :: rest -> if Node.is_same c node then i else find (i + 1) rest
    in
    find 1 same
  | _ -> 1

let mod_change t i =
  let rec find = function
    | Modified (j, oc) :: _ when j = i -> Some oc
    | _ :: rest -> find rest
    | [] -> None
  in
  match find t.change_order with
  | Some oc -> oc
  | None ->
    let oc = { leaves = []; element_deletes = []; element_inserts = [] } in
    t.change_order <- Modified (i, oc) :: t.change_order;
    oc

let get_leaf t i path = Node.string_value (navigate (root t i) path)

let set_leaf t i path value =
  let target = navigate (root t i) path in
  let old = Node.string_value target in
  if old <> value then begin
    let e = entry t i in
    if not e.created then begin
      let oc = mod_change t i in
      if not (List.exists (fun lc -> lc.leaf_path = path) oc.leaves) then
        oc.leaves <- oc.leaves @ [ { leaf_path = path; old_value = old } ]
    end;
    Node.replace_children_with_text target value
  end

let delete_element t i path =
  let target = navigate (root t i) path in
  let e = entry t i in
  if not e.created then begin
    let oc = mod_change t i in
    oc.element_deletes <-
      oc.element_deletes
      @ [ { deleted_path = path; deleted_old = Node.deep_copy target } ]
  end;
  Node.detach target

let insert_element t i parent_path node =
  let parent = navigate (root t i) parent_path in
  Node.append_child parent node;
  let e = entry t i in
  if not e.created then begin
    let oc = mod_change t i in
    oc.element_inserts <-
      oc.element_inserts
      @ [ { inserted_parent = parent_path; inserted_node = node } ]
  end

let add_object t node =
  t.entries <- t.entries @ [ { node; alive = true; created = true } ];
  let i = List.length t.entries in
  t.change_order <- Created i :: t.change_order

let delete_object t i =
  let e = entry t i in
  if not e.alive then invalid_arg "Sdo.delete_object: already deleted";
  e.alive <- false;
  if e.created then
    (* a created-then-deleted object cancels out *)
    t.change_order <-
      List.filter (function Created j -> j <> i | _ -> true) t.change_order
  else
    t.change_order <- Deleted (i, Node.deep_copy e.node) :: t.change_order

(* ------------------------------------------------------------------ *)
(* Wire format                                                          *)
(* ------------------------------------------------------------------ *)

let ref_of t i =
  let e = entry t i in
  let local =
    match Node.name e.node with
    | Some q -> Qname.to_string q
    | None -> "object"
  in
  Printf.sprintf "#/sdo:datagraph/%s[%d]" local i

let summary_entry t i (oc : object_change) =
  let e = entry t i in
  let obj_name =
    match Node.name e.node with Some q -> q | None -> Qname.local "object"
  in
  let el = Node.element obj_name [] in
  Node.set_attribute el (sdo "ref") (ref_of t i);
  List.iter
    (fun lc ->
      match lc.leaf_path with
      | [ (leaf, 1) ] ->
        (* Figure 4 shape for top-level leaves *)
        Node.append_child el
          (Node.element (Qname.local leaf) [ Node.text lc.old_value ])
      | p ->
        let ov = Node.element (sdo "oldValue") [ Node.text lc.old_value ] in
        Node.set_attribute ov (sdo "path") (path_to_string p);
        Node.append_child el ov)
    oc.leaves;
  List.iter
    (fun d ->
      let del = Node.element (sdo "deletedElement") [ Node.deep_copy d.deleted_old ] in
      Node.set_attribute del (sdo "path") (path_to_string d.deleted_path);
      Node.append_child el del)
    oc.element_deletes;
  List.iter
    (fun ins ->
      let path =
        ins.inserted_parent
        @ [
            ( (match Node.name ins.inserted_node with
              | Some q -> q.Qname.local
              | None -> "?"),
              occurrence_index ins.inserted_node );
          ]
      in
      let mark = Node.element (sdo "insertedElement") [] in
      Node.set_attribute mark (sdo "path") (path_to_string path);
      Node.append_child el mark)
    oc.element_inserts;
  el

let serialize t =
  let summary = Node.element (Qname.local "changeSummary") [] in
  List.iter
    (fun change ->
      match change with
      | Modified (i, oc) -> Node.append_child summary (summary_entry t i oc)
      | Created i ->
        let c = Node.element (sdo "created") [] in
        Node.set_attribute c (sdo "ref") (ref_of t i);
        Node.append_child summary c
      | Deleted (i, old) ->
        let d = Node.element (sdo "deleted") [ Node.deep_copy old ] in
        Node.set_attribute d (sdo "ref") (ref_of t i);
        Node.append_child summary d)
    (changes t);
  let dg = Node.element (sdo "datagraph") [] in
  Node.append_child dg summary;
  List.iteri
    (fun idx e ->
      if e.alive then begin
        let copy = Node.deep_copy e.node in
        Node.set_attribute copy (sdo "idx") (string_of_int (idx + 1));
        Node.append_child dg copy
      end)
    t.entries;
  Xml_serialize.to_string dg

let index_of_ref s =
  (* "#/sdo:datagraph/NAME[i]" -> i *)
  match (String.rindex_opt s '[', String.rindex_opt s ']') with
  | Some i, Some j when j > i ->
    int_of_string (String.sub s (i + 1) (j - i - 1))
  | _ -> failwith (Printf.sprintf "invalid sdo:ref %S" s)

let parse src =
  let doc = Xml_parse.parse src in
  let dg =
    match child_elements doc with
    | [ el ] -> el
    | _ -> failwith "datagraph: expected a single root element"
  in
  (match Node.name dg with
  | Some q when q.Qname.local = "datagraph" -> ()
  | _ -> failwith "datagraph: root element must be sdo:datagraph");
  let summary, objects =
    match child_elements dg with
    | s :: rest
      when (match Node.name s with
           | Some q -> q.Qname.local = "changeSummary"
           | None -> false) -> (s, rest)
    | rest -> (Node.element (Qname.local "changeSummary") [], rest)
  in
  (* current objects carry their original index in sdo:idx *)
  let max_idx = ref 0 in
  let indexed =
    List.map
      (fun o ->
        let idx =
          match Node.attribute_value o (sdo "idx") with
          | Some s -> int_of_string s
          | None ->
            incr max_idx;
            !max_idx
        in
        max_idx := max idx !max_idx;
        Node.remove_attribute o (sdo "idx");
        (idx, o))
      objects
  in
  (* collect deleted refs first to size the entry table *)
  let summary_entries = child_elements summary in
  List.iter
    (fun e ->
      match Node.attribute_value e (sdo "ref") with
      | Some r -> max_idx := max (index_of_ref r) !max_idx
      | None -> ())
    summary_entries;
  let slots = Array.make (max !max_idx 0) None in
  List.iter
    (fun (idx, o) ->
      let o = Node.deep_copy o in
      slots.(idx - 1) <- Some { node = o; alive = true; created = false })
    indexed;
  let t = { entries = []; change_order = [] } in
  (* process the summary *)
  let created_idxs = ref [] in
  List.iter
    (fun e ->
      let ref_idx =
        match Node.attribute_value e (sdo "ref") with
        | Some r -> index_of_ref r
        | None -> failwith "changeSummary entry without sdo:ref"
      in
      match Node.name e with
      | Some q when q.Qname.uri = sdo_ns && q.Qname.local = "created" ->
        created_idxs := ref_idx :: !created_idxs;
        t.change_order <- Created ref_idx :: t.change_order
      | Some q when q.Qname.uri = sdo_ns && q.Qname.local = "deleted" ->
        let old =
          match child_elements e with
          | [ o ] -> Node.deep_copy o
          | _ -> failwith "sdo:deleted must contain the old object"
        in
        slots.(ref_idx - 1) <-
          Some { node = old; alive = false; created = false };
        t.change_order <- Deleted (ref_idx, old) :: t.change_order
      | _ ->
        (* a Modified entry *)
        let oc = { leaves = []; element_deletes = []; element_inserts = [] } in
        List.iter
          (fun part ->
            match Node.name part with
            | Some q when q.Qname.uri = sdo_ns && q.Qname.local = "oldValue" ->
              let p =
                match Node.attribute_value part (sdo "path") with
                | Some s -> path_of_string s
                | None -> failwith "sdo:oldValue without sdo:path"
              in
              oc.leaves <-
                oc.leaves @ [ { leaf_path = p; old_value = Node.string_value part } ]
            | Some q when q.Qname.uri = sdo_ns && q.Qname.local = "deletedElement" ->
              let p =
                match Node.attribute_value part (sdo "path") with
                | Some s -> path_of_string s
                | None -> failwith "sdo:deletedElement without sdo:path"
              in
              let old =
                match child_elements part with
                | [ o ] -> Node.deep_copy o
                | _ -> failwith "sdo:deletedElement must contain the old element"
              in
              oc.element_deletes <-
                oc.element_deletes @ [ { deleted_path = p; deleted_old = old } ]
            | Some q when q.Qname.uri = sdo_ns && q.Qname.local = "insertedElement" ->
              let p =
                match Node.attribute_value part (sdo "path") with
                | Some s -> path_of_string s
                | None -> failwith "sdo:insertedElement without sdo:path"
              in
              (* resolve the inserted node in the current object *)
              let obj =
                match slots.(ref_idx - 1) with
                | Some e -> e.node
                | None -> failwith "insertedElement refers to a missing object"
              in
              let parent_path =
                match List.rev p with _ :: rev -> List.rev rev | [] -> []
              in
              let node = navigate obj p in
              oc.element_inserts <-
                oc.element_inserts
                @ [ { inserted_parent = parent_path; inserted_node = node } ]
            | Some q when q.Qname.uri = "" ->
              (* Figure 4 shape: a direct child holding the old value *)
              oc.leaves <-
                oc.leaves
                @ [
                    {
                      leaf_path = [ (q.Qname.local, 1) ];
                      old_value = Node.string_value part;
                    };
                  ]
            | _ -> ())
          (child_elements e);
        t.change_order <- Modified (ref_idx, oc) :: t.change_order)
    summary_entries;
  List.iter
    (fun i ->
      match slots.(i - 1) with
      | Some e -> slots.(i - 1) <- Some { e with created = true }
      | None -> failwith "sdo:created refers to a missing object")
    !created_idxs;
  t.entries <-
    Array.to_list slots
    |> List.map (function
         | Some e -> e
         | None ->
           (* an unmodified object slot that was not shipped; should not
              happen with our serializer *)
           failwith "datagraph: missing object slot");
  t
