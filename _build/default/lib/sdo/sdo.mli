(** Service Data Objects: disconnected datagraphs with change summaries.

    Reproduces the ALDSP SDO programming model of Figure 4: a client
    reads data-service objects into a datagraph, mutates them offline
    (every mutation records the previous value in the change summary),
    and submits the datagraph back; the server decomposes the change
    summary into source updates.

    Wire format (after Figure 4):
    {[
      <sdo:datagraph xmlns:sdo="commonj.sdo">
        <changeSummary>
          <cus:CustomerProfile sdo:ref="#/sdo:datagraph/cus:CustomerProfile[1]">
            <LAST_NAME>Carrey</LAST_NAME>      <!-- OLD value -->
          </cus:CustomerProfile>
          <sdo:deleted sdo:ref="#/sdo:datagraph/cus:CustomerProfile[2]">
            ...full old object...
          </sdo:deleted>
          <sdo:created sdo:ref="#/sdo:datagraph/cus:CustomerProfile[3]"/>
        </changeSummary>
        <cus:CustomerProfile>...current object 1...</cus:CustomerProfile>
        <cus:CustomerProfile>...current object 3 (new)...</cus:CustomerProfile>
      </sdo:datagraph>
    ]} *)

open Xdm

val sdo_ns : string
(** ["commonj.sdo"] *)

type path = (string * int) list
(** Steps of (child element local name, 1-based occurrence index among
    same-named siblings), e.g. [[("Orders",1);("ORDER",2);("STATUS",1)]]. *)

val path_of_string : string -> path
(** Parse ["Orders/ORDER[2]/STATUS"]; a missing index means [1]. *)

val path_to_string : path -> string

type leaf_change = { leaf_path : path; old_value : string }

type element_delete = { deleted_path : path; deleted_old : Node.t }
(** A nested element (e.g. one CREDIT_CARD) removed from an object. *)

type element_insert = { inserted_parent : path; inserted_node : Node.t }

type object_change = {
  mutable leaves : leaf_change list;
  mutable element_deletes : element_delete list;
  mutable element_inserts : element_insert list;
}

type change =
  | Modified of int * object_change  (** root index (1-based) *)
  | Created of int  (** root index of a newly added object *)
  | Deleted of int * Node.t  (** original root index, full old object *)

type t
(** A datagraph. *)

val create : Node.t list -> t
(** Wrap data-service results (the nodes are deep-copied: the client's
    graph is disconnected from server data). *)

val roots : t -> Node.t list
(** Current (live) objects, in order. Deleted objects are not included. *)

val root : t -> int -> Node.t
(** Live object by original 1-based index.
    @raise Invalid_argument if deleted or out of range. *)

val changes : t -> change list
(** In first-touch order. *)

val is_dirty : t -> bool

(** {1 Client-side mutation API} *)

val get_leaf : t -> int -> path -> string
val set_leaf : t -> int -> path -> string -> unit
(** Change a leaf element's text; the first change of each leaf records
    its old value in the change summary. *)

val delete_element : t -> int -> path -> unit
(** Remove a nested element (records the full old element). *)

val insert_element : t -> int -> path -> Node.t -> unit
(** Append a new element under the parent path. *)

val add_object : t -> Node.t -> unit
(** Add a brand-new root object (recorded as a create). *)

val delete_object : t -> int -> unit
(** Delete a root object (recorded with its full old content). *)

(** {1 Wire format} *)

val serialize : t -> string
val parse : string -> t
(** Round-trips {!serialize}. @raise Xdm.Xml_parse.Parse_error /
    Failure on malformed datagraphs. *)
