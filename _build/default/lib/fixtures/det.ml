type t = { mutable state : int }

let make seed = { state = (seed lor 1) land 0x3FFFFFFF }

let next t =
  t.state <- ((t.state * 1103515245) + 12345) land 0x3FFFFFFF;
  t.state

let int t bound = if bound <= 0 then 0 else next t mod bound
let pick t xs = List.nth xs (int t (List.length xs))
let float t bound = float_of_int (int t 1_000_000) /. 1_000_000. *. bound

let first_names =
  [ "Alice"; "Bob"; "Carol"; "Dana"; "Erin"; "Frank"; "Grace"; "Heidi";
    "Ivan"; "Judy"; "Ken"; "Lena"; "Mona"; "Nils"; "Olga"; "Pete" ]

let last_names =
  [ "Smith"; "Jones"; "Brown"; "Garcia"; "Miller"; "Davis"; "Wilson";
    "Moore"; "Taylor"; "Thomas"; "Lee"; "Clark"; "Walker"; "Hall" ]

let name t = pick t first_names ^ " " ^ pick t last_names

let zipf_bucket t ~max =
  (* P(k) ∝ 1/k over 1..max, via inverse-ish sampling on a small table *)
  let max = Stdlib.max 1 max in
  let weights = List.init max (fun i -> 1. /. float_of_int (i + 1)) in
  let total = List.fold_left ( +. ) 0. weights in
  let x = float t total in
  let rec go k acc = function
    | [] -> max
    | w :: rest -> if acc +. w >= x then k else go (k + 1) (acc +. w) rest
  in
  go 1 0. weights
