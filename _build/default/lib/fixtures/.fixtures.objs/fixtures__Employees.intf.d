lib/fixtures/employees.mli: Aldsp Relational
