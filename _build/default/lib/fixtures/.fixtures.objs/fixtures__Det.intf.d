lib/fixtures/det.mli:
