lib/fixtures/customer_profile.mli: Aldsp Relational Sdo Webservice
