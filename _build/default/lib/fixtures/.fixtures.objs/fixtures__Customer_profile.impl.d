lib/fixtures/customer_profile.ml: Aldsp Atomic Char Det Item Node Printf Qname Relational Schema String Webservice Xdm Xqse
