lib/fixtures/det.ml: List Stdlib
