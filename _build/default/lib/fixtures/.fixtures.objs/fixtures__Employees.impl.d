lib/fixtures/employees.ml: Aldsp Array Det List Relational Xdm Xqse
