(** Deterministic pseudo-random generation for fixtures, benches and
    property tests (no [Random]: runs are reproducible by construction). *)

type t

val make : int -> t
(** Seeded linear congruential generator. *)

val int : t -> int -> int
(** [int t bound] in [0, bound). *)

val pick : t -> 'a list -> 'a
val float : t -> float -> float
val name : t -> string
(** A pronounceable two-part name ("Dana Smith"-style). *)

val zipf_bucket : t -> max:int -> int
(** A skewed integer in [1, max]: small values are much more likely
    (approximate Zipf for order-count distributions). *)
