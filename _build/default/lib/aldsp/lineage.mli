(** Lineage analysis (paper section II.C).

    To propagate client changes back to just the affected sources, ALDSP
    analyzes the data service's designated primary read function:
    primary-key information, join predicates and the query result shape
    together determine which element of the result shape came from which
    column of which table, and how nested row blocks correlate with
    their parents.

    The analyzer recognizes the composition patterns of Figure 3:

    - a FLWOR over a physical read function whose return clause is an
      element constructor;
    - leaf elements of the form [<F>{fn:data($v/COL)}</F>] (or
      [$v/COL] / [$v/COL/text()]);
    - nested blocks via navigation functions
      ([for $o in cus:getORDER($c) …]) or equi-join where clauses
      ([for $cc in cre:CREDIT_CARD() where $c/CID eq $cc/CID …]),
      optionally under a wrapper element ([<Orders>{…}</Orders>]);
    - anything else (e.g. web-service calls) becomes an {e opaque} leaf:
      readable, but rejected if a client tries to update it. *)

type field = { f_elem : string; f_column : string }

type child = {
  c_wrapper : string option;
      (** intermediate element (e.g. ["Orders"]), [None] for inline rows *)
  c_block : block;
  c_link : (string * string) list;  (** child column = parent column *)
}

and block = {
  b_row_elem : string;  (** constructed element name for one row *)
  b_db : string;
  b_table : string;
  b_fields : field list;
  b_opaque : string list;  (** computed leaves — not updatable *)
  b_children : child list;
  b_layout : string list;
      (** element names in constructed order (fields, opaque leaves and
          child wrappers/rows interleaved) — used for shape inference *)
}

type source_fn =
  | Read_fn of { db : string; table : string }
      (** a physical read function, e.g. [cus:CUSTOMER()] *)
  | Nav_fn of {
      db : string;
      table : string;
      parent_table : string;
      link : (string * string) list;  (** child column = parent column *)
    }
      (** a navigation function, e.g. [cus:getORDER($customer)] *)
  | Logical_fn of block
      (** the read function of another logical data service whose own
          lineage is [block] — higher-level services compose through it
          (paper section II.A: methods are "used when creating other,
          higher-level logical data services") *)

val analyze :
  resolve:(Xdm.Qname.t -> source_fn option) ->
  Xquery.Ast.expr ->
  (block, string) result
(** Analyze a primary read function body (the un-optimized AST). *)

val describe : block -> string
(** Indented dump of the lineage tree (for tests and docs). *)

val find_field : block -> string -> field option
val find_child : block -> string -> child option
(** Look up a child by wrapper name or row element name. *)
