open Xdm
module R = Relational

let row_to_xml tbl row =
  let schema = R.Table.schema tbl in
  let children =
    List.concat
      (List.mapi
         (fun i (c : R.Table.column) ->
           match row.(i) with
           | R.Value.Null -> []
           | v ->
             [ Node.element (Qname.local c.R.Table.col_name)
                 [ Node.text (R.Value.to_string v) ] ])
         schema.R.Table.columns)
  in
  Node.element (Qname.local schema.R.Table.tbl_name) children

let col_of tbl name =
  List.find_opt
    (fun (c : R.Table.column) -> c.R.Table.col_name = name)
    (R.Table.schema tbl).R.Table.columns

let xml_to_pairs tbl node =
  List.filter_map
    (fun child ->
      if Node.kind child <> Node.Element then None
      else
        match Node.name child with
        | None -> None
        | Some qn -> (
          match col_of tbl qn.Qname.local with
          | None -> None
          | Some c ->
            let s = Node.string_value child in
            let v =
              if s = "" && c.R.Table.col_type <> R.Value.T_text then
                R.Value.Null
              else R.Value.of_string c.R.Table.col_type s
            in
            Some (c.R.Table.col_name, v)))
    (Node.children node)

let xml_to_row tbl node =
  let pairs = xml_to_pairs tbl node in
  Array.of_list
    (List.map
       (fun (c : R.Table.column) ->
         match List.assoc_opt c.R.Table.col_name pairs with
         | Some v -> v
         | None -> R.Value.Null)
       (R.Table.schema tbl).R.Table.columns)

let pk_pred_of_xml tbl node =
  let pairs = xml_to_pairs tbl node in
  R.Pred.conj
    (List.map
       (fun k ->
         match List.assoc_opt k pairs with
         | Some v -> R.Pred.eq k v
         | None ->
           failwith
             (Printf.sprintf "row element is missing primary key column %s" k))
       (R.Table.schema tbl).R.Table.primary_key)

let simple_type_of_col = function
  | R.Value.T_int -> Qname.xs "integer"
  | R.Value.T_float -> Qname.xs "double"
  | R.Value.T_text -> Qname.xs "string"
  | R.Value.T_bool -> Qname.xs "boolean"
  | R.Value.T_date -> Qname.xs "date"

let shape_of_table tbl =
  let schema = R.Table.schema tbl in
  let particles =
    List.map
      (fun (c : R.Table.column) ->
        Schema.particle
          ~min:(if c.R.Table.nullable then 0 else 1)
          (Qname.local c.R.Table.col_name)
          (Schema.simple (simple_type_of_col c.R.Table.col_type)))
      schema.R.Table.columns
  in
  {
    Schema.name = Qname.local schema.R.Table.tbl_name;
    type_def = Schema.complex particles;
  }
