open Xdm
module A = Xquery.Ast

type field = { f_elem : string; f_column : string }

type child = {
  c_wrapper : string option;
  c_block : block;
  c_link : (string * string) list;
}

and block = {
  b_row_elem : string;
  b_db : string;
  b_table : string;
  b_fields : field list;
  b_opaque : string list;
  b_children : child list;
  b_layout : string list;
}

type source_fn =
  | Read_fn of { db : string; table : string }
  | Nav_fn of {
      db : string;
      table : string;
      parent_table : string;
      link : (string * string) list;
    }
  | Logical_fn of block

exception Unanalyzable of string

let fail fmt = Printf.ksprintf (fun s -> raise (Unanalyzable s)) fmt

let find_field blk elem = List.find_opt (fun f -> f.f_elem = elem) blk.b_fields

let find_child blk name =
  List.find_opt
    (fun c ->
      match c.c_wrapper with
      | Some w -> w = name
      | None -> c.c_block.b_row_elem = name)
    blk.b_children

(* What a loop variable's rows look like: physical rows expose their
   columns directly (element name = column name); logical rows map
   through the inner service's lineage block. *)
type row_desc =
  | Phys of { p_db : string; p_table : string }
  | Composed of block

let desc_db = function Phys p -> p.p_db | Composed b -> b.b_db
let desc_table = function Phys p -> p.p_table | Composed b -> b.b_table

let desc_field desc elem =
  match desc with
  | Phys _ -> Some elem (* element names are column names *)
  | Composed blk -> Option.map (fun f -> f.f_column) (find_field blk elem)

let desc_is_opaque desc elem =
  match desc with
  | Phys _ -> false
  | Composed blk -> List.mem elem blk.b_opaque

(* $v/E — also accepts fn:data($v/E) and $v/E/text(); returns the leaf
   element name *)
let rec elem_of_expr var e =
  match e with
  | A.Call (q, [ inner ]) when q.Qname.uri = Qname.fn_ns && q.Qname.local = "data"
    -> elem_of_expr var inner
  | A.Path (A.Var v, A.Step (A.Child, A.Name_test el, []))
    when Qname.equal v var -> Some el.Qname.local
  | A.Path
      ( A.Path (A.Var v, A.Step (A.Child, A.Name_test el, [])),
        A.Step (A.Child, A.Kind_text, []) )
    when Qname.equal v var -> Some el.Qname.local
  | _ -> None

(* $v/Step1/Step2… — the element-name path of a nested-row source *)
let path_of_expr var e =
  let rec go acc e =
    match e with
    | A.Var v when Qname.equal v var -> Some acc
    | A.Path (inner, A.Step (A.Child, A.Name_test el, [])) ->
      go (el.Qname.local :: acc) inner
    | _ -> None
  in
  go [] e

(* a join condition between two loop variables, in element terms:
   (child element, parent element) *)
let join_link ~parent_var ~child_var cond =
  let sides l r =
    match (elem_of_expr parent_var l, elem_of_expr child_var r) with
    | Some pel, Some cel -> Some (cel, pel)
    | _ -> None
  in
  match cond with
  | A.Value_cmp (A.Eq, l, r) | A.General_cmp (A.Eq, l, r) -> (
    match sides l r with Some link -> Some link | None -> sides r l)
  | _ -> None

(* walk a path of element names through a composed block's children:
   ["Orders"; "ORDERS"] -> the ORDERS child *)
let child_of_path blk names =
  let rec go blk = function
    | [] -> None
    | [ name ] -> find_child blk name
    | name :: rest -> (
      match find_child blk name with
      | Some c -> (
        match c.c_wrapper with
        | Some _ -> (
          match rest with
          | row_name :: rest' when row_name = c.c_block.b_row_elem ->
            if rest' = [] then Some c else go c.c_block rest'
          | _ -> None)
        | None -> go c.c_block rest)
      | None -> None)
  in
  go blk names

let rec analyze_block ~resolve ~outer (clauses, ret) =
  (* expect: for $v in <source> (where join)? return <ctor> *)
  let binding, rest_clauses =
    match clauses with
    | A.For_clause [ b ] :: rest -> (b, rest)
    | _ -> fail "expected a single-variable for clause"
  in
  let var = binding.A.for_var in
  (* resolve the binding source into a row descriptor + correlation *)
  let desc, link =
    match binding.A.for_expr with
    | A.Call (fname, args) -> (
      match resolve fname with
      | Some (Read_fn { db; table }) -> (
        let desc = Phys { p_db = db; p_table = table } in
        match (args, outer) with
        | [], None -> (desc, [])
        | [], Some (outer_var, _outer_desc) ->
          (desc, correlation ~rest_clauses ~outer ~outer_var ~var ~desc)
        | _ ->
          fail "read function %s must be called with no arguments"
            (Qname.to_string fname))
      | Some (Nav_fn { db; table; parent_table; link }) -> (
        match (args, outer) with
        | [ A.Var arg ], Some (outer_var, outer_desc)
          when Qname.equal arg outer_var ->
          if desc_table outer_desc <> parent_table then
            fail "navigation function %s expects a %s row, not %s"
              (Qname.to_string fname) parent_table (desc_table outer_desc);
          (Phys { p_db = db; p_table = table }, link)
        | _ ->
          fail "navigation function %s must be called on the outer row \
                variable"
            (Qname.to_string fname))
      | Some (Logical_fn blk) -> (
        let desc = Composed blk in
        match (args, outer) with
        | [], None -> (desc, [])
        | [], Some (outer_var, _) ->
          (desc, correlation ~rest_clauses ~outer ~outer_var ~var ~desc)
        | _ ->
          fail "logical read function %s must be called with no arguments"
            (Qname.to_string fname))
      | None ->
        fail "%s is not a data-service read function" (Qname.to_string fname))
    | path_expr -> (
      (* nested rows of a composed outer row: for $o in $p/Orders/ORDERS *)
      match outer with
      | Some (outer_var, Composed outer_blk) -> (
        match path_of_expr outer_var path_expr with
        | Some names -> (
          match child_of_path outer_blk names with
          | Some c -> (Composed c.c_block, c.c_link)
          | None ->
            fail "path %s does not lead to a nested row block of %s"
              (String.concat "/" names) outer_blk.b_row_elem)
        | None -> fail "for clause source is not a data-service function call")
      | _ -> fail "for clause source is not a data-service function call")
  in
  let name, contents =
    match ret with
    | A.Elem_ctor (name, _attrs, contents) -> (name, contents)
    | _ -> fail "return clause is not an element constructor"
  in
  let fields = ref [] in
  let opaque = ref [] in
  let children = ref [] in
  let layout = ref [] in
  let note name = layout := name :: !layout in
  let add_leaf leaf_name content_exprs =
    match content_exprs with
    | [ A.Content_expr e ] -> (
      match elem_of_expr var e with
      | Some el -> (
        match desc_field desc el with
        | Some col ->
          note leaf_name;
          fields := { f_elem = leaf_name; f_column = col } :: !fields
        | None ->
          ignore (desc_is_opaque desc el);
          note leaf_name;
          opaque := leaf_name :: !opaque)
      | None -> (
        match e with
        | A.Flwor (cls, ret) -> (
          match analyze_nested ~resolve ~outer:(var, desc) (cls, ret) with
          | Some (blk, link) ->
            note leaf_name;
            children :=
              { c_wrapper = Some leaf_name; c_block = blk; c_link = link }
              :: !children
          | None ->
            note leaf_name;
            opaque := leaf_name :: !opaque)
        | _ ->
          note leaf_name;
          opaque := leaf_name :: !opaque))
    | _ ->
      note leaf_name;
      opaque := leaf_name :: !opaque
  in
  List.iter
    (fun content ->
      match content with
      | A.Content_node (A.Elem_ctor (leaf, _, cts)) ->
        add_leaf leaf.Qname.local cts
      | A.Content_expr (A.Flwor (cls, ret)) -> (
        match analyze_nested ~resolve ~outer:(var, desc) (cls, ret) with
        | Some (blk, link) ->
          note blk.b_row_elem;
          children :=
            { c_wrapper = None; c_block = blk; c_link = link } :: !children
        | None ->
          (* unanalyzable inline FLWOR (e.g. a web-service call): keep
             the constructed element name as the opaque leaf when the
             return clause reveals it *)
          let name =
            match ret with
            | A.Elem_ctor (n, _, _) -> n.Qname.local
            | _ -> "(anonymous)"
          in
          note name;
          opaque := name :: !opaque)
      | A.Content_text _ -> ()
      | A.Content_expr _ | A.Content_node _ ->
        note "(anonymous)";
        opaque := "(anonymous)" :: !opaque)
    contents;
  ( {
      b_row_elem = name.Qname.local;
      b_db = desc_db desc;
      b_table = desc_table desc;
      b_fields = List.rev !fields;
      b_opaque = List.rev !opaque;
      b_children = List.rev !children;
      b_layout = List.rev !layout;
    },
    link )

(* a where equi-join correlating the nested var with the outer var,
   with both sides mapped from element names to source columns *)
and correlation ~rest_clauses ~outer ~outer_var ~var ~desc =
  let outer_desc =
    match outer with Some (_, d) -> d | None -> assert false
  in
  let link =
    List.find_map
      (function
        | A.Where_clause cond ->
          join_link ~parent_var:outer_var ~child_var:var cond
        | _ -> None)
      rest_clauses
  in
  match link with
  | Some (cel, pel) -> (
    match (desc_field desc cel, desc_field outer_desc pel) with
    | Some ccol, Some pcol -> [ (ccol, pcol) ]
    | _ -> fail "join predicate uses elements not mapped to source columns")
  | None -> fail "nested block has no join predicate correlating it"

and analyze_nested ~resolve ~outer (cls, ret) =
  match analyze_block ~resolve ~outer:(Some outer) (cls, ret) with
  | blk, link -> Some (blk, link)
  | exception Unanalyzable _ -> None

let analyze ~resolve body =
  match body with
  | A.Flwor (clauses, ret) -> (
    match analyze_block ~resolve ~outer:None (clauses, ret) with
    | blk, _ -> Ok blk
    | exception Unanalyzable msg -> Error msg)
  | _ -> Error "primary read function body is not a FLWOR expression"

let rec describe_indent indent blk =
  let buf = Buffer.create 128 in
  Printf.bprintf buf "%s<%s> <- %s.%s\n" indent blk.b_row_elem blk.b_db
    blk.b_table;
  List.iter
    (fun f -> Printf.bprintf buf "%s  %s <- %s\n" indent f.f_elem f.f_column)
    blk.b_fields;
  List.iter
    (fun o -> Printf.bprintf buf "%s  %s <- (computed, read-only)\n" indent o)
    blk.b_opaque;
  List.iter
    (fun c ->
      (match c.c_wrapper with
      | Some w -> Printf.bprintf buf "%s  <%s> wrapper:\n" indent w
      | None -> ());
      Printf.bprintf buf "%s  join: %s\n" indent
        (String.concat ", "
           (List.map (fun (cc, pc) -> Printf.sprintf "%s = parent.%s" cc pc)
              c.c_link));
      Buffer.add_string buf (describe_indent (indent ^ "    ") c.c_block))
    blk.b_children;
  Buffer.contents buf

let describe blk = describe_indent "" blk
