lib/aldsp/rowxml.mli: Node Qname Relational Schema Xdm
