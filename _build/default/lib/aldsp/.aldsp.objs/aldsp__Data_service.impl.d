lib/aldsp/data_service.ml: Buffer List Printf Qname Schema String Xdm
