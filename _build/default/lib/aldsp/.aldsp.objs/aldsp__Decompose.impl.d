lib/aldsp/decompose.ml: Lineage List Node Occ Printf Qname Relational Sdo String Xdm
