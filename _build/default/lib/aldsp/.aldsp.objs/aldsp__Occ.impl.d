lib/aldsp/occ.ml: List Relational String
