lib/aldsp/decompose.mli: Lineage Occ Relational Sdo Xdm
