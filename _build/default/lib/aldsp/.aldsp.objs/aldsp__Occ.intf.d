lib/aldsp/occ.mli: Relational
