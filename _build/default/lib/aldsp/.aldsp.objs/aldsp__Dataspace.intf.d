lib/aldsp/dataspace.mli: Data_service Item Lineage Occ Qname Relational Schema Sdo Webservice Xdm Xqse
