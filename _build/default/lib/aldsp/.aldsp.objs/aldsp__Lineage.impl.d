lib/aldsp/lineage.ml: Buffer List Option Printf Qname String Xdm Xquery
