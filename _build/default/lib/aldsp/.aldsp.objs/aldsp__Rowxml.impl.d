lib/aldsp/rowxml.ml: Array List Node Printf Qname Relational Schema Xdm
