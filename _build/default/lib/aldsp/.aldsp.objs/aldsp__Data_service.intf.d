lib/aldsp/data_service.mli: Qname Schema Xdm
