lib/aldsp/dataspace.ml: Data_service Decompose Hashtbl Item Lineage List Logs Node Occ Option Printf Qname Relational Rowxml Schema Sdo Seqtype String Webservice Xdm Xml_parse Xqse Xquery
