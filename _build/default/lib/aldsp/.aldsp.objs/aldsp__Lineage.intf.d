lib/aldsp/lineage.mli: Xdm Xquery
