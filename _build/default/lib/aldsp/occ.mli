(** Optimistic concurrency policies (paper section II.C).

    ALDSP conditions the SQL UPDATE/DELETE statements it generates so
    that they only apply when the source row still looks the way the
    client read it. The three supported choices: *)

type policy =
  | Read_values  (** every value that was read must be unchanged *)
  | Updated_values  (** only the values being updated must be unchanged *)
  | Chosen of string list
      (** a chosen column subset (e.g. a version or timestamp column)
          must be unchanged *)

val to_string : policy -> string

val condition :
  policy ->
  read_values:(string * Relational.Value.t) list ->
  changed_columns:string list ->
  Relational.Pred.t
(** Build the where-clause conjunct expressing "sameness" for a row,
    given the original (read-time) column values and the set of columns
    being written. Primary-key equality is added separately by the
    decomposer. *)
