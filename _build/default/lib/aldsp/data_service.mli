(** The data-service model (paper section II.A): entity data services
    (service-enabled business objects with a shape and read / write /
    navigation methods) and library data services (functions and
    procedures only). *)

open Xdm

type method_kind =
  | Read_function  (** fetches instances of the service's objects *)
  | Navigation_function of string
      (** traverses to instances of the named related data service *)
  | Create_procedure
  | Update_procedure
  | Delete_procedure
  | Library_function
  | Library_procedure

val kind_to_string : method_kind -> string

type ds_method = {
  m_name : Qname.t;
  m_kind : method_kind;
  m_arity : int;
  m_doc : string;
}

type origin =
  | Physical_relational of { db : string; table : string }
  | Physical_webservice of { service : string }
  | Logical  (** composed from other data services via XQuery/XQSE *)

type kind =
  | Entity of { shape : Schema.element_decl }
  | Library

type t = {
  ds_name : string;
  ds_namespace : string;  (** the namespace its methods live in *)
  ds_kind : kind;
  ds_origin : origin;
  mutable ds_methods : ds_method list;
  mutable ds_primary_read : Qname.t option;
      (** the read function whose lineage drives update decomposition *)
  mutable ds_dependencies : string list;
      (** names of data services this one was composed from *)
}

val make :
  name:string ->
  namespace:string ->
  kind:kind ->
  origin:origin ->
  t

val add_method : t -> ds_method -> unit
val find_method : t -> string -> ds_method option
val shape : t -> Schema.element_decl option

val describe : t -> string
(** A textual "design view" of the service — name, shape root, methods by
    category, dependencies — standing in for Figure 1. *)
