type policy = Read_values | Updated_values | Chosen of string list

let to_string = function
  | Read_values -> "read-values"
  | Updated_values -> "updated-values"
  | Chosen cols -> "chosen(" ^ String.concat "," cols ^ ")"

let cond_for read_values col =
  match List.assoc_opt col read_values with
  | Some Relational.Value.Null -> Some (Relational.Pred.Is_null col)
  | Some v -> Some (Relational.Pred.eq col v)
  | None -> None

let condition policy ~read_values ~changed_columns =
  let cols =
    match policy with
    | Read_values -> List.map fst read_values
    | Updated_values -> changed_columns
    | Chosen cols -> cols
  in
  Relational.Pred.conj (List.filter_map (cond_for read_values) cols)
