(** Row ↔ XML mapping: the natural "XML view" of relational rows that
    physical data services expose (paper section II.A).

    A row of table [T] maps to [<T><COL1>v</COL1>…</T>] with row and
    column elements in no namespace (so Figure-3-style unprefixed child
    steps work); NULL columns are omitted. *)

open Xdm

val row_to_xml : Relational.Table.t -> Relational.Table.row -> Node.t

val xml_to_pairs :
  Relational.Table.t -> Node.t -> (string * Relational.Value.t) list
(** Read the column/value pairs present in a row element (ignoring child
    elements that are not columns of the table; absent columns are
    omitted, empty elements of text type map to empty strings).
    @raise Failure on values that do not parse as the column type. *)

val xml_to_row : Relational.Table.t -> Node.t -> Relational.Table.row
(** Like {!xml_to_pairs} but positional, with [Null] for absent
    columns. *)

val pk_pred_of_xml : Relational.Table.t -> Node.t -> Relational.Pred.t
(** Primary-key equality predicate from a row element.
    @raise Failure if a key column is missing. *)

val shape_of_table : Relational.Table.t -> Schema.element_decl
(** The XML Schema element declaration describing the row shape. *)

val simple_type_of_col : Relational.Value.col_type -> Qname.t
