open Xdm

type method_kind =
  | Read_function
  | Navigation_function of string
  | Create_procedure
  | Update_procedure
  | Delete_procedure
  | Library_function
  | Library_procedure

let kind_to_string = function
  | Read_function -> "read"
  | Navigation_function target -> "navigation -> " ^ target
  | Create_procedure -> "create"
  | Update_procedure -> "update"
  | Delete_procedure -> "delete"
  | Library_function -> "library function"
  | Library_procedure -> "library procedure"

type ds_method = {
  m_name : Qname.t;
  m_kind : method_kind;
  m_arity : int;
  m_doc : string;
}

type origin =
  | Physical_relational of { db : string; table : string }
  | Physical_webservice of { service : string }
  | Logical

type kind = Entity of { shape : Schema.element_decl } | Library

type t = {
  ds_name : string;
  ds_namespace : string;
  ds_kind : kind;
  ds_origin : origin;
  mutable ds_methods : ds_method list;
  mutable ds_primary_read : Qname.t option;
  mutable ds_dependencies : string list;
}

let make ~name ~namespace ~kind ~origin =
  {
    ds_name = name;
    ds_namespace = namespace;
    ds_kind = kind;
    ds_origin = origin;
    ds_methods = [];
    ds_primary_read = None;
    ds_dependencies = [];
  }

let add_method t m =
  t.ds_methods <- t.ds_methods @ [ m ];
  (* the first read function becomes the primary read by default
     (paper section II.C) *)
  match (m.m_kind, t.ds_primary_read) with
  | Read_function, None -> t.ds_primary_read <- Some m.m_name
  | _ -> ()

let find_method t local =
  List.find_opt (fun m -> m.m_name.Qname.local = local) t.ds_methods

let shape t =
  match t.ds_kind with Entity { shape } -> Some shape | Library -> None

let describe t =
  let buf = Buffer.create 256 in
  let origin =
    match t.ds_origin with
    | Physical_relational { db; table } ->
      Printf.sprintf "physical (relational %s.%s)" db table
    | Physical_webservice { service } ->
      Printf.sprintf "physical (web service %s)" service
    | Logical -> "logical"
  in
  Printf.bprintf buf "data service %s  [%s, %s]\n" t.ds_name
    (match t.ds_kind with Entity _ -> "entity" | Library -> "library")
    origin;
  Printf.bprintf buf "  namespace: %s\n" t.ds_namespace;
  (match t.ds_kind with
  | Entity { shape } ->
    Printf.bprintf buf "  shape: element %s\n"
      (Qname.to_string shape.Schema.name)
  | Library -> ());
  (match t.ds_primary_read with
  | Some q -> Printf.bprintf buf "  primary read: %s\n" (Qname.to_string q)
  | None -> ());
  Printf.bprintf buf "  methods:\n";
  List.iter
    (fun m ->
      Printf.bprintf buf "    %-12s %s/%d  (%s)\n"
        (kind_to_string m.m_kind)
        (Qname.to_string m.m_name) m.m_arity m.m_doc)
    t.ds_methods;
  if t.ds_dependencies <> [] then
    Printf.bprintf buf "  depends on: %s\n"
      (String.concat ", " t.ds_dependencies);
  Buffer.contents buf
