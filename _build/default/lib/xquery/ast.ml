(** Abstract syntax of the XQuery subset (QNames already resolved against
    the in-scope namespaces at parse time), including the XQuery Update
    Facility subset and the internal nodes introduced by the optimizer. *)

open Xdm

type axis =
  | Child
  | Descendant
  | Attribute_axis
  | Self
  | Descendant_or_self
  | Parent
  | Following_sibling
  | Preceding_sibling
  | Ancestor
  | Ancestor_or_self
  | Following
  | Preceding

type nodetest =
  | Name_test of Qname.t
  | Any_name  (** [*] *)
  | Ns_wildcard of string  (** [p:*], URI resolved *)
  | Local_wildcard of string  (** [*:local] *)
  | Kind_node
  | Kind_text
  | Kind_comment
  | Kind_pi of string option
  | Kind_element of Qname.t option
  | Kind_attribute of Qname.t option
  | Kind_document

type comp_op = Eq | Ne | Lt | Le | Gt | Ge
type quantifier = Some_q | Every_q
type insert_pos = Into | Into_first | Into_last | Before | After

type expr =
  | Literal of Atomic.t
  | Var of Qname.t
  | Context_item
  | Seq_expr of expr list  (** comma operator; [Seq_expr []] is [()] *)
  | Range of expr * expr
  | Arith of Atomic.arith_op * expr * expr
  | Neg of expr
  | And of expr * expr
  | Or of expr * expr
  | General_cmp of comp_op * expr * expr
  | Value_cmp of comp_op * expr * expr
  | Node_is of expr * expr
  | Node_before of expr * expr
  | Node_after of expr * expr
  | Union of expr * expr
  | Intersect of expr * expr
  | Except of expr * expr
  | Instance_of of expr * Seqtype.t
  | Treat_as of expr * Seqtype.t
  | Castable_as of expr * Qname.t * bool  (** [bool]: optional ([?]) *)
  | Cast_as of expr * Qname.t * bool
  | If_expr of expr * expr * expr
  | Typeswitch of expr * case_clause list * (Qname.t option * expr)
      (** operand, cases, default (with optional variable) *)
  | Flwor of clause list * expr
  | Quantified of quantifier * in_binding list * expr
  | Path of expr * expr  (** [e1/e2] with document-order semantics *)
  | Root_expr  (** leading [/] *)
  | Step of axis * nodetest * expr list
  | Filter of expr * expr list  (** primary expression with predicates *)
  | Call of Qname.t * expr list
  | Elem_ctor of Qname.t * (Qname.t * attr_content list) list * content list
  | Comp_elem of name_spec * expr
  | Comp_attr of name_spec * expr
  | Comp_text of expr
  | Comp_doc of expr
  | Comp_comment of expr
  | Comp_pi of name_spec * expr
  (* XQuery Update Facility subset *)
  | Insert of insert_pos * expr * expr  (** source, target *)
  | Delete of expr
  | Replace of { value_of : bool; target : expr; source : expr }
  | Rename of expr * name_spec
  | Transform of (Qname.t * expr) list * expr * expr
      (** [copy $v := e modify e return e] *)

and case_clause = {
  case_var : Qname.t option;
  case_type : Seqtype.t;
  case_return : expr;
}

and name_spec = Static_name of Qname.t | Dynamic_name of expr

and attr_content = Attr_str of string | Attr_expr of expr

and content =
  | Content_text of string
  | Content_expr of expr  (** enclosed [{...}] *)
  | Content_node of expr  (** nested constructor, comment or PI *)

and in_binding = Qname.t * Seqtype.t option * expr

and clause =
  | For_clause of for_binding list
  | Let_clause of let_binding list
  | Where_clause of expr
  | Order_clause of bool * order_spec list  (** [bool]: stable *)
  | Join_clause of join
      (** optimizer-introduced hash join: binds [var] to the items of
          [source] whose [build_key] equals the outer tuple's
          [probe_key] *)

and for_binding = {
  for_var : Qname.t;
  for_pos : Qname.t option;
  for_type : Seqtype.t option;
  for_expr : expr;
}

and let_binding = {
  let_var : Qname.t;
  let_type : Seqtype.t option;
  let_expr : expr;
}

and order_spec = { key : expr; descending : bool; empty_least : bool }

and join = {
  join_var : Qname.t;
  join_type : Seqtype.t option;
  join_source : expr;
  join_build_key : expr;  (** evaluated with [join_var] bound *)
  join_probe_key : expr;  (** evaluated in the outer tuple context *)
}

type function_decl = {
  fd_name : Qname.t;
  fd_params : (Qname.t * Seqtype.t option) list;
  fd_return : Seqtype.t option;
  fd_body : expr option;  (** [None] for [external] *)
}

type var_decl = {
  vd_name : Qname.t;
  vd_type : Seqtype.t option;
  vd_value : expr option;  (** [None] for [external] *)
}

type prolog_item =
  | P_function of function_decl
  | P_variable of var_decl
  | P_import of { prefix : string option; uri : string }
      (** [import module namespace p = "uri"] — resolved by the host
          (sessions resolve against their registered module library) *)

type module_ = { prolog : prolog_item list; body : expr }

(** {1 AST traversal helpers} *)

let fold_subexprs : 'a. ('a -> expr -> 'a) -> 'a -> expr -> 'a =
 fun f acc e ->
  let on = f in
  match e with
  | Literal _ | Var _ | Context_item | Root_expr -> acc
  | Seq_expr es -> List.fold_left on acc es
  | Range (a, b)
  | Arith (_, a, b)
  | And (a, b)
  | Or (a, b)
  | General_cmp (_, a, b)
  | Value_cmp (_, a, b)
  | Node_is (a, b)
  | Node_before (a, b)
  | Node_after (a, b)
  | Union (a, b)
  | Intersect (a, b)
  | Except (a, b)
  | Path (a, b) -> on (on acc a) b
  | Neg a
  | Instance_of (a, _)
  | Treat_as (a, _)
  | Castable_as (a, _, _)
  | Cast_as (a, _, _)
  | Comp_text a
  | Comp_doc a
  | Comp_comment a
  | Delete a -> on acc a
  | If_expr (c, t, e2) -> on (on (on acc c) t) e2
  | Typeswitch (operand, cases, (_, default)) ->
    let acc = on acc operand in
    let acc = List.fold_left (fun acc c -> on acc c.case_return) acc cases in
    on acc default
  | Flwor (clauses, ret) ->
    let acc =
      List.fold_left
        (fun acc c ->
          match c with
          | For_clause bs ->
            List.fold_left (fun acc b -> on acc b.for_expr) acc bs
          | Let_clause bs ->
            List.fold_left (fun acc b -> on acc b.let_expr) acc bs
          | Where_clause e -> on acc e
          | Order_clause (_, specs) ->
            List.fold_left (fun acc s -> on acc s.key) acc specs
          | Join_clause j ->
            on (on (on acc j.join_source) j.join_build_key) j.join_probe_key)
        acc clauses
    in
    on acc ret
  | Quantified (_, bindings, body) ->
    let acc = List.fold_left (fun acc (_, _, e) -> on acc e) acc bindings in
    on acc body
  | Step (_, _, preds) -> List.fold_left on acc preds
  | Filter (p, preds) -> List.fold_left on (on acc p) preds
  | Call (_, args) -> List.fold_left on acc args
  | Elem_ctor (_, attrs, contents) ->
    let acc =
      List.fold_left
        (fun acc (_, parts) ->
          List.fold_left
            (fun acc part ->
              match part with Attr_str _ -> acc | Attr_expr e -> on acc e)
            acc parts)
        acc attrs
    in
    List.fold_left
      (fun acc c ->
        match c with
        | Content_text _ -> acc
        | Content_expr e | Content_node e -> on acc e)
      acc contents
  | Comp_elem (ns, e) | Comp_attr (ns, e) | Comp_pi (ns, e) ->
    let acc = match ns with Static_name _ -> acc | Dynamic_name ne -> on acc ne in
    on acc e
  | Insert (_, s, t) -> on (on acc s) t
  | Replace { target; source; _ } -> on (on acc target) source
  | Rename (t, ns) ->
    let acc = on acc t in
    (match ns with Static_name _ -> acc | Dynamic_name ne -> on acc ne)
  | Transform (copies, modify, ret) ->
    let acc = List.fold_left (fun acc (_, e) -> on acc e) acc copies in
    on (on acc modify) ret

(** [free_vars e] is the set of variable QNames referenced by [e] that are
    not bound within it. *)
let free_vars e =
  let module S = Set.Make (struct
    type t = Qname.t

    let compare = Qname.compare
  end) in
  let rec go bound e =
    match e with
    | Var q -> if S.mem q bound then S.empty else S.singleton q
    | Flwor (clauses, ret) ->
      let rec clause_vars bound acc = function
        | [] -> S.union acc (go bound ret)
        | For_clause bs :: rest ->
          let acc, bound =
            List.fold_left
              (fun (acc, bound) b ->
                let acc = S.union acc (go bound b.for_expr) in
                let bound = S.add b.for_var bound in
                let bound =
                  match b.for_pos with Some p -> S.add p bound | None -> bound
                in
                (acc, bound))
              (acc, bound) bs
          in
          clause_vars bound acc rest
        | Let_clause bs :: rest ->
          let acc, bound =
            List.fold_left
              (fun (acc, bound) b ->
                (S.union acc (go bound b.let_expr), S.add b.let_var bound))
              (acc, bound) bs
          in
          clause_vars bound acc rest
        | Where_clause e :: rest -> clause_vars bound (S.union acc (go bound e)) rest
        | Order_clause (_, specs) :: rest ->
          let acc =
            List.fold_left (fun acc s -> S.union acc (go bound s.key)) acc specs
          in
          clause_vars bound acc rest
        | Join_clause j :: rest ->
          let acc = S.union acc (go bound j.join_source) in
          let acc = S.union acc (go bound j.join_probe_key) in
          let bound = S.add j.join_var bound in
          let acc = S.union acc (go bound j.join_build_key) in
          clause_vars bound acc rest
      in
      clause_vars bound S.empty clauses
    | Quantified (_, bindings, body) ->
      let acc, bound =
        List.fold_left
          (fun (acc, bound) (v, _, e) ->
            (S.union acc (go bound e), S.add v bound))
          (S.empty, bound) bindings
      in
      S.union acc (go bound body)
    | Transform (copies, modify, ret) ->
      let acc, bound =
        List.fold_left
          (fun (acc, bound) (v, e) ->
            (S.union acc (go bound e), S.add v bound))
          (S.empty, bound) copies
      in
      S.union acc (S.union (go bound modify) (go bound ret))
    | Typeswitch (operand, cases, (dvar, default)) ->
      let acc = go bound operand in
      let acc =
        List.fold_left
          (fun acc c ->
            let bound' =
              match c.case_var with Some v -> S.add v bound | None -> bound
            in
            S.union acc (go bound' c.case_return))
          acc cases
      in
      let bound' =
        match dvar with Some v -> S.add v bound | None -> bound
      in
      S.union acc (go bound' default)
    | e -> fold_subexprs (fun acc sub -> S.union acc (go bound sub)) S.empty e
  in
  let s = go S.empty e in
  S.elements s

(** [uses_context e] over-approximates whether [e] depends on the dynamic
    context item / position / size at its top level. *)
let rec uses_context = function
  | Context_item | Root_expr | Step _ -> true
  | Call (q, args) ->
    (args = []
    && q.Xdm.Qname.uri = Xdm.Qname.fn_ns
    && List.mem q.Xdm.Qname.local [ "position"; "last"; "string"; "data"; "number"; "name"; "local-name"; "root"; "normalize-space" ])
    || List.exists uses_context args
  | Flwor (clauses, _ret) as e ->
    (* clauses bind their own focus only in predicates; the return clause
       keeps the outer focus, so recurse fully *)
    ignore clauses;
    fold_subexprs (fun acc sub -> acc || uses_context sub) false e
  | Path (a, _) -> uses_context a
  | Filter (p, _) -> uses_context p
  | e -> fold_subexprs (fun acc sub -> acc || uses_context sub) false e
