open Xdm

type primitive =
  | Insert_into of Node.t * Node.t list
  | Insert_first of Node.t * Node.t list
  | Insert_last of Node.t * Node.t list
  | Insert_before of Node.t * Node.t list
  | Insert_after of Node.t * Node.t list
  | Insert_attributes of Node.t * Node.t list
  | Delete_node of Node.t
  | Replace_node of Node.t * Node.t list
  | Replace_value of Node.t * string
  | Rename_node of Node.t * Qname.t

type t = primitive list

let dup_check code what targets =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun n ->
      let id = Node.id n in
      if Hashtbl.mem tbl id then
        Item.raise_error (Qname.err code)
          (Printf.sprintf "two %s primitives target the same node" what);
      Hashtbl.add tbl id ())
    targets

let apply (pul : t) =
  (* XUF 3.2.2 ordering: inserts (into/first/last/attributes), then
     insert before/after, then replaces, then renames, then replace
     value, then deletes. *)
  dup_check "XUDY0016" "replace-node"
    (List.filter_map (function Replace_node (n, _) -> Some n | _ -> None) pul);
  dup_check "XUDY0017" "replace-value"
    (List.filter_map (function Replace_value (n, _) -> Some n | _ -> None) pul);
  dup_check "XUDY0015" "rename"
    (List.filter_map (function Rename_node (n, _) -> Some n | _ -> None) pul);
  let phase p =
    List.iter
      (fun prim ->
        match (p, prim) with
        | 0, Insert_into (t, ns) | 0, Insert_last (t, ns) ->
          Node.insert_children t ~pos:`Last ns
        | 0, Insert_first (t, ns) -> Node.insert_children t ~pos:`First ns
        | 0, Insert_attributes (t, attrs) ->
          List.iter
            (fun a ->
              match Node.name a with
              | Some qn -> Node.set_attribute t qn (Node.string_value a)
              | None -> ())
            attrs
        | 1, Insert_before (t, ns) -> Node.insert_sibling t ~pos:`Before ns
        | 1, Insert_after (t, ns) -> Node.insert_sibling t ~pos:`After ns
        | 2, Replace_node (t, ns) ->
          (match Node.kind t with
          | Node.Attribute ->
            let parent = Node.parent t in
            (match parent with
            | Some p ->
              Node.detach t;
              List.iter
                (fun a ->
                  match Node.name a with
                  | Some qn -> Node.set_attribute p qn (Node.string_value a)
                  | None -> ())
                ns
            | None -> ())
          | _ ->
            Node.insert_sibling t ~pos:`After ns;
            Node.detach t)
        | 3, Rename_node (t, qn) -> Node.rename t qn
        | 4, Replace_value (t, s) -> (
          match Node.kind t with
          | Node.Element -> Node.replace_children_with_text t s
          | Node.Attribute | Node.Text | Node.Comment
          | Node.Processing_instruction -> Node.set_text t s
          | Node.Document ->
            Item.raise_error (Qname.err "XUTY0008")
              "replace value of a document node")
        | 5, Delete_node t -> Node.detach t
        | _ -> ())
      pul
  in
  for p = 0 to 5 do phase p done

let pp_primitive ppf = function
  | Insert_into (t, ns) ->
    Format.fprintf ppf "insert-into(%a, %d nodes)" Node.pp t (List.length ns)
  | Insert_first (t, _) -> Format.fprintf ppf "insert-first(%a)" Node.pp t
  | Insert_last (t, _) -> Format.fprintf ppf "insert-last(%a)" Node.pp t
  | Insert_before (t, _) -> Format.fprintf ppf "insert-before(%a)" Node.pp t
  | Insert_after (t, _) -> Format.fprintf ppf "insert-after(%a)" Node.pp t
  | Insert_attributes (t, _) ->
    Format.fprintf ppf "insert-attributes(%a)" Node.pp t
  | Delete_node t -> Format.fprintf ppf "delete(%a)" Node.pp t
  | Replace_node (t, _) -> Format.fprintf ppf "replace-node(%a)" Node.pp t
  | Replace_value (t, s) ->
    Format.fprintf ppf "replace-value(%a, %S)" Node.pp t s
  | Rename_node (t, q) ->
    Format.fprintf ppf "rename(%a, %s)" Node.pp t (Qname.to_string q)
