(** Recursive-descent parser for the XQuery subset.

    QNames are resolved against the static context during parsing (so
    namespace declarations in prologs and direct constructors are handled
    here, not at evaluation time). The parser state and the individual
    entry points are exposed so the XQSE parser can extend the grammar
    with statements while reusing all expression productions. *)

exception Syntax_error of { line : int; col : int; message : string }

type t
(** Parser state: a lexer plus the static context being built. *)

val create : Context.static -> string -> t
val static : t -> Context.static

(** {1 Whole-unit entry points} *)

val parse_module : Context.static -> string -> Ast.module_
(** Parse [Prolog QueryBody] and require end of input. *)

val parse_expression : Context.static -> string -> Ast.expr
(** Parse a single expression (no prolog) and require end of input. *)

(** {1 Token helpers (for the XQSE parser)} *)

val peek : t -> Lexer.token
val peek2 : t -> Lexer.token
val advance : t -> unit
val fail : t -> string -> 'a
val expect_tok : t -> Lexer.token -> string -> unit
val at_keyword : t -> string -> bool
(** Is the current token the NCName [kw]? *)

val at_keyword2 : t -> string -> string -> bool
(** Are the next two tokens the NCNames [k1 k2]? *)

val eat_keyword : t -> string -> unit
(** Consume the NCName [kw] or fail. *)

val try_keyword : t -> string -> bool
(** Consume the NCName [kw] if present. *)

val expect_eof : t -> unit

(** {1 Grammar productions} *)

val parse_qname_lexical : t -> string option * string
(** Next token as a lexical QName (no resolution). *)

val parse_elem_qname : t -> Xdm.Qname.t
(** Resolve with the default element namespace. *)

val parse_fun_qname : t -> Xdm.Qname.t
val parse_var_qname : t -> Xdm.Qname.t
(** Parse [$name] (consumes the dollar). *)

val parse_sequence_type : t -> Xdm.Seqtype.t
val parse_expr : t -> Ast.expr
(** Comma-separated expression. *)

val parse_expr_single : t -> Ast.expr
val parse_enclosed_expr : t -> Ast.expr
(** [{ Expr }] *)

val parse_param_list : t -> (Xdm.Qname.t * Xdm.Seqtype.t option) list
(** [( $a as T, $b )] including parentheses; empty list for [()]. *)

type prolog_step =
  | No_item  (** next tokens do not start a prolog item *)
  | Consumed  (** a declaration was handled by side effect (namespaces) *)
  | Item of Ast.prolog_item

val try_parse_prolog_item : t -> prolog_step
(** Handles [declare namespace], [declare default element/function
    namespace], [declare boundary-space], [declare option],
    [import module], [declare variable] and [declare function]. Leaves
    [declare (readonly)? procedure] and [declare xqse function] for the
    XQSE parser ({!No_item}). Consumes the trailing separator [;]. *)
