(** AST rewrite optimizer.

    Reproduces (at small scale) the ALDSP claim that the declarative
    fragments of an XQSE program keep their query optimizations
    (paper section IV, citing the VLDB'06 query-processing paper).

    Passes, applied to fixpoint (bounded):
    - constant folding of arithmetic, comparisons and [if] on literals;
    - inlining of [let] bindings that are literals or variable aliases;
    - elimination of [where true()] clauses and always-true conditions;
    - conversion of equi-join [where] clauses between two [for] clauses
      into a hash {!Ast.Join_clause};
    - pushdown of single-variable [where] predicates into the binding
      [for] expression as a filter predicate (when position-free). *)

val optimize : Ast.expr -> Ast.expr

val optimize_decl : Ast.function_decl -> Ast.function_decl

type stats = { folded : int; inlined : int; joins : int; pushed : int }

val optimize_with_stats : Ast.expr -> Ast.expr * stats
