(** Tokenizer for XQuery/XQSE source.

    Keywords are contextual in XQuery, so names are returned as {!NAME}
    tokens and the parser matches keywords itself. Direct XML
    constructors are character-level syntax: the parser rewinds to a
    token's start offset ({!token_start}, {!seek}) and reads raw
    characters with the [raw_*] functions. *)

type token =
  | INT of string
  | DEC of string
  | DBL of string
  | STR of string  (** string literal, quotes stripped, escapes expanded *)
  | NAME of string option * string  (** lexical QName: prefix, local *)
  | NS_WILDCARD of string  (** [prefix:*] *)
  | LOCAL_WILDCARD of string  (** [*:local] *)
  | LPAR
  | RPAR
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | ASSIGN  (** [:=] *)
  | DOLLAR
  | AT
  | DOT
  | DOTDOT
  | SLASH
  | SLASHSLASH
  | STAR
  | PLUS
  | MINUS
  | PIPE
  | EQUALS
  | NOTEQUALS  (** [!=] *)
  | LT
  | LE
  | GT
  | GE
  | LTLT  (** [<<] *)
  | GTGT  (** [>>] *)
  | QMARK
  | AXIS_SEP  (** [::] *)
  | EOF

exception Lex_error of { pos : int; message : string }

type t

val create : string -> t
val source : t -> string

val peek : t -> token
val peek2 : t -> token
(** One token of extra lookahead. *)

val next : t -> token
(** Consume and return the current token. *)

val token_start : t -> int
(** Source offset where the current (peeked) token begins. *)

val pos : t -> int
val seek : t -> int -> unit
(** Discard buffered tokens and move the cursor (used to re-lex after
    backtracking and to enter raw mode). *)

val line_col : t -> int -> int * int
(** Line and column of a source offset, for error messages. *)

(** {1 Raw character mode (direct constructors)} *)

val raw_peek : t -> char
(** ['\000'] at end of input. *)

val raw_next : t -> char
val raw_looking_at : t -> string -> bool
val raw_skip_ws : t -> unit
val raw_ncname : t -> string
(** @raise Lex_error if no name starts here. *)

val raw_expect : t -> string -> unit
