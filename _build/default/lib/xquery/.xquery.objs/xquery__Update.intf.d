lib/xquery/update.mli: Format Node Qname Xdm
