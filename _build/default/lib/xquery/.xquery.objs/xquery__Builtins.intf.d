lib/xquery/builtins.mli: Context
