lib/xquery/engine.mli: Context Item Node Qname Xdm
