lib/xquery/optimizer.ml: Ast Atomic List Qname Xdm
