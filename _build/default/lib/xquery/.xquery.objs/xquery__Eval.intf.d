lib/xquery/eval.mli: Ast Context Item Qname Update Xdm
