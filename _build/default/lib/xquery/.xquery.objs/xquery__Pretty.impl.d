lib/xquery/pretty.ml: Ast Atomic Buffer List Printf Qname Seqtype String Xdm Xml_serialize
