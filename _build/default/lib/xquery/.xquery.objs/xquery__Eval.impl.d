lib/xquery/eval.ml: Ast Atomic Context Float Hashtbl Item List Node Printf Qname Seqtype String Update Xdm
