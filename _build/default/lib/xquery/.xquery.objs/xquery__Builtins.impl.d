lib/xquery/builtins.ml: Atomic Buffer Char Context Float Hashtbl Item List Node Printf Qname Re String Xdm Xml_serialize
