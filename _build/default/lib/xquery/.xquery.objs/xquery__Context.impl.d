lib/xquery/context.ml: Ast Hashtbl Item List Map Node Printf Qname Seqtype Update Xdm
