lib/xquery/pretty.mli: Ast Xdm
