lib/xquery/parser.mli: Ast Context Lexer Xdm
