lib/xquery/update.ml: Format Hashtbl Item List Node Printf Qname Xdm
