lib/xquery/lexer.mli:
