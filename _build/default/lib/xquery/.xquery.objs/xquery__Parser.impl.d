lib/xquery/parser.ml: Ast Atomic Buffer Char Context Item Lexer List Printf Qname Seqtype String Xdm
