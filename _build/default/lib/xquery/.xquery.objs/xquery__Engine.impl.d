lib/xquery/engine.ml: Ast Builtins Context Eval Item List Node Optimizer Parser Printf Qname Seqtype Xdm Xml_serialize
