lib/xquery/ast.ml: Atomic List Qname Seqtype Set Xdm
