lib/xquery/context.mli: Ast Hashtbl Item Map Node Qname Seqtype Update Xdm
