type token =
  | INT of string
  | DEC of string
  | DBL of string
  | STR of string
  | NAME of string option * string
  | NS_WILDCARD of string
  | LOCAL_WILDCARD of string
  | LPAR
  | RPAR
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | ASSIGN
  | DOLLAR
  | AT
  | DOT
  | DOTDOT
  | SLASH
  | SLASHSLASH
  | STAR
  | PLUS
  | MINUS
  | PIPE
  | EQUALS
  | NOTEQUALS
  | LT
  | LE
  | GT
  | GE
  | LTLT
  | GTGT
  | QMARK
  | AXIS_SEP
  | EOF

exception Lex_error of { pos : int; message : string }

type buffered = { tok : token; start : int; stop : int }

type t = {
  src : string;
  mutable cursor : int;  (* next unlexed char *)
  mutable buf : buffered list;  (* lookahead buffer, oldest first *)
}

let create src = { src; cursor = 0; buf = [] }
let source t = t.src
let fail t pos msg = ignore t; raise (Lex_error { pos; message = msg })

let line_col t pos =
  let line = ref 1 and col = ref 1 in
  for i = 0 to min (pos - 1) (String.length t.src - 1) do
    if t.src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let is_digit c = c >= '0' && c <= '9'

let at t i = if i >= String.length t.src then '\000' else t.src.[i]

(* Skip whitespace and (possibly nested) comments starting at [i]. *)
let rec skip_ignorable t i =
  if i < String.length t.src && is_ws t.src.[i] then skip_ignorable t (i + 1)
  else if at t i = '(' && at t (i + 1) = ':' then begin
    let rec comment depth i =
      if i >= String.length t.src then fail t i "unterminated comment"
      else if at t i = '(' && at t (i + 1) = ':' then comment (depth + 1) (i + 2)
      else if at t i = ':' && at t (i + 1) = ')' then
        if depth = 1 then i + 2 else comment (depth - 1) (i + 2)
      else comment depth (i + 1)
    in
    skip_ignorable t (comment 1 (i + 2))
  end
  else i

let lex_string t i =
  let quote = t.src.[i] in
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= String.length t.src then fail t i "unterminated string literal"
    else if t.src.[i] = quote then
      if at t (i + 1) = quote then begin
        Buffer.add_char buf quote;
        go (i + 2)
      end
      else (STR (Buffer.contents buf), i + 1)
    else if t.src.[i] = '&' then begin
      (* predefined/char entity *)
      let j = ref (i + 1) in
      while at t !j <> ';' && !j < String.length t.src do incr j done;
      let name = String.sub t.src (i + 1) (!j - i - 1) in
      let add s = Buffer.add_string buf s in
      (match name with
      | "lt" -> add "<"
      | "gt" -> add ">"
      | "amp" -> add "&"
      | "quot" -> add "\""
      | "apos" -> add "'"
      | _ when String.length name > 1 && name.[0] = '#' ->
        let code =
          try
            if name.[1] = 'x' then
              int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
            else int_of_string (String.sub name 1 (String.length name - 1))
          with _ -> fail t i "invalid character reference"
        in
        if code < 128 then Buffer.add_char buf (Char.chr code)
        else add (Printf.sprintf "&#%d;" code)
      | _ -> fail t i (Printf.sprintf "unknown entity &%s;" name));
      go (!j + 1)
    end
    else begin
      Buffer.add_char buf t.src.[i];
      go (i + 1)
    end
  in
  go (i + 1)

let lex_number t i =
  let n = String.length t.src in
  let j = ref i in
  while !j < n && is_digit t.src.[!j] do incr j done;
  let has_dot = at t !j = '.' && at t (!j + 1) <> '.' in
  if has_dot then begin
    incr j;
    while !j < n && is_digit t.src.[!j] do incr j done
  end;
  let has_exp = (at t !j = 'e' || at t !j = 'E')
                && (is_digit (at t (!j + 1))
                   || ((at t (!j + 1) = '+' || at t (!j + 1) = '-')
                      && is_digit (at t (!j + 2))))
  in
  if has_exp then begin
    incr j;
    if at t !j = '+' || at t !j = '-' then incr j;
    while !j < n && is_digit t.src.[!j] do incr j done
  end;
  let text = String.sub t.src i (!j - i) in
  let tok =
    if has_exp then DBL text else if has_dot then DEC text else INT text
  in
  (tok, !j)

let lex_name t i =
  let n = String.length t.src in
  let j = ref i in
  while !j < n && is_name_char t.src.[!j] do incr j done;
  let name1 = String.sub t.src i (!j - i) in
  (* QName: name ':' name with no intervening space, and not '::' *)
  if at t !j = ':' && at t (!j + 1) <> ':' && at t (!j + 1) <> '=' then
    if is_name_start (at t (!j + 1)) then begin
      let k = ref (!j + 1) in
      while !k < n && is_name_char t.src.[!k] do incr k done;
      (NAME (Some name1, String.sub t.src (!j + 1) (!k - !j - 1)), !k)
    end
    else if at t (!j + 1) = '*' then (NS_WILDCARD name1, !j + 2)
    else (NAME (None, name1), !j)
  else (NAME (None, name1), !j)

let lex_one t i =
  let i = skip_ignorable t i in
  if i >= String.length t.src then { tok = EOF; start = i; stop = i }
  else
    let c = t.src.[i] in
    let two tok = { tok; start = i; stop = i + 2 } in
    let one tok = { tok; start = i; stop = i + 1 } in
    match c with
    | '"' | '\'' ->
      let tok, stop = lex_string t i in
      { tok; start = i; stop }
    | '(' -> one LPAR
    | ')' -> one RPAR
    | '[' -> one LBRACKET
    | ']' -> one RBRACKET
    | '{' -> one LBRACE
    | '}' -> one RBRACE
    | ',' -> one COMMA
    | ';' -> one SEMI
    | '$' -> one DOLLAR
    | '@' -> one AT
    | '?' -> one QMARK
    | '+' -> one PLUS
    | '-' -> one MINUS
    | '|' -> one PIPE
    | '=' -> one EQUALS
    | '!' ->
      if at t (i + 1) = '=' then two NOTEQUALS
      else fail t i "unexpected character '!'"
    | '<' ->
      if at t (i + 1) = '<' then two LTLT
      else if at t (i + 1) = '=' then two LE
      else one LT
    | '>' ->
      if at t (i + 1) = '>' then two GTGT
      else if at t (i + 1) = '=' then two GE
      else one GT
    | ':' ->
      if at t (i + 1) = '=' then two ASSIGN
      else if at t (i + 1) = ':' then two AXIS_SEP
      else fail t i "unexpected character ':'"
    | '/' -> if at t (i + 1) = '/' then two SLASHSLASH else one SLASH
    | '.' ->
      if at t (i + 1) = '.' then two DOTDOT
      else if is_digit (at t (i + 1)) then begin
        let tok, stop = lex_number t i in
        { tok; start = i; stop }
      end
      else one DOT
    | '*' ->
      if at t (i + 1) = ':' && at t (i + 2) = '*' then
        (* the '*:*' name test (used by XQSE catch clauses) *)
        { tok = LOCAL_WILDCARD "*"; start = i; stop = i + 3 }
      else if at t (i + 1) = ':' && is_name_start (at t (i + 2)) then begin
        let j = ref (i + 2) in
        while !j < String.length t.src && is_name_char t.src.[!j] do incr j done;
        { tok = LOCAL_WILDCARD (String.sub t.src (i + 2) (!j - i - 2));
          start = i;
          stop = !j }
      end
      else one STAR
    | c when is_digit c ->
      let tok, stop = lex_number t i in
      { tok; start = i; stop }
    | c when is_name_start c ->
      let tok, stop = lex_name t i in
      { tok; start = i; stop }
    | c -> fail t i (Printf.sprintf "unexpected character %C" c)

let fill t n =
  while List.length t.buf < n do
    let b = lex_one t t.cursor in
    t.cursor <- b.stop;
    t.buf <- t.buf @ [ b ]
  done

let peek t =
  fill t 1;
  (List.hd t.buf).tok

let peek2 t =
  fill t 2;
  (List.nth t.buf 1).tok

let next t =
  fill t 1;
  match t.buf with
  | b :: rest ->
    t.buf <- rest;
    b.tok
  | [] -> assert false

let token_start t =
  fill t 1;
  (List.hd t.buf).start

let pos t = match t.buf with b :: _ -> b.start | [] -> t.cursor

let seek t p =
  t.buf <- [];
  t.cursor <- p

(* Raw mode: operate directly on the cursor; caller must have drained or
   seeked past the buffer. *)
let sync t =
  match t.buf with
  | b :: _ ->
    t.cursor <- b.start;
    t.buf <- []
  | [] -> ()

let raw_peek t =
  sync t;
  at t t.cursor

let raw_next t =
  sync t;
  let c = at t t.cursor in
  if c <> '\000' then t.cursor <- t.cursor + 1;
  c

let raw_looking_at t s =
  sync t;
  let n = String.length s in
  t.cursor + n <= String.length t.src && String.sub t.src t.cursor n = s

let raw_skip_ws t =
  sync t;
  while t.cursor < String.length t.src && is_ws t.src.[t.cursor] do
    t.cursor <- t.cursor + 1
  done

let raw_ncname t =
  sync t;
  if not (is_name_start (at t t.cursor)) then
    fail t t.cursor "expected a name";
  let start = t.cursor in
  while t.cursor < String.length t.src && is_name_char t.src.[t.cursor] do
    t.cursor <- t.cursor + 1
  done;
  String.sub t.src start (t.cursor - start)

let raw_expect t s =
  if raw_looking_at t s then t.cursor <- t.cursor + String.length s
  else fail t t.cursor (Printf.sprintf "expected %S" s)
