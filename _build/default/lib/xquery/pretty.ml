open Xdm

(* print a QName in re-parseable form: restore the standard prefixes for
   well-known namespaces when the original prefix was lost *)
let qn (q : Qname.t) =
  match q.Qname.prefix with
  | Some _ -> Qname.to_string q
  | None ->
    if q.Qname.uri = "" then q.Qname.local
    else if q.Qname.uri = Qname.fn_ns then "fn:" ^ q.Qname.local
    else if q.Qname.uri = Qname.xs_ns then "xs:" ^ q.Qname.local
    else if q.Qname.uri = Qname.err_ns then "err:" ^ q.Qname.local
    else if q.Qname.uri = Qname.local_default_ns then "local:" ^ q.Qname.local
    else Qname.to_string q

let seqtype = Seqtype.to_string

let axis_name = function
  | Ast.Child -> "child"
  | Ast.Descendant -> "descendant"
  | Ast.Attribute_axis -> "attribute"
  | Ast.Self -> "self"
  | Ast.Descendant_or_self -> "descendant-or-self"
  | Ast.Parent -> "parent"
  | Ast.Following_sibling -> "following-sibling"
  | Ast.Preceding_sibling -> "preceding-sibling"
  | Ast.Ancestor -> "ancestor"
  | Ast.Ancestor_or_self -> "ancestor-or-self"
  | Ast.Following -> "following"
  | Ast.Preceding -> "preceding"

let nodetest = function
  | Ast.Name_test q -> qn q
  | Ast.Any_name -> "*"
  | Ast.Ns_wildcard uri -> Printf.sprintf "{%s}:*" uri
  | Ast.Local_wildcard l -> "*:" ^ l
  | Ast.Kind_node -> "node()"
  | Ast.Kind_text -> "text()"
  | Ast.Kind_comment -> "comment()"
  | Ast.Kind_pi None -> "processing-instruction()"
  | Ast.Kind_pi (Some t) -> Printf.sprintf "processing-instruction(%s)" t
  | Ast.Kind_element None -> "element()"
  | Ast.Kind_element (Some q) -> Printf.sprintf "element(%s)" (qn q)
  | Ast.Kind_attribute None -> "attribute()"
  | Ast.Kind_attribute (Some q) ->
    Printf.sprintf "attribute(%s)" (qn q)
  | Ast.Kind_document -> "document-node()"

let comp_op = function
  | Ast.Eq -> ("eq", "=")
  | Ast.Ne -> ("ne", "!=")
  | Ast.Lt -> ("lt", "<")
  | Ast.Le -> ("le", "<=")
  | Ast.Gt -> ("gt", ">")
  | Ast.Ge -> ("ge", ">=")

let arith_op = function
  | Atomic.Add -> "+"
  | Atomic.Sub -> "-"
  | Atomic.Mul -> "*"
  | Atomic.Div -> "div"
  | Atomic.Idiv -> "idiv"
  | Atomic.Mod -> "mod"

let literal = function
  | Atomic.String s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c -> if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  | Atomic.Integer i -> string_of_int i
  | Atomic.Decimal _ as a -> Atomic.to_string a
  | Atomic.Double f -> Printf.sprintf "xs:double(\"%s\")" (Atomic.to_string (Atomic.Double f))
  | Atomic.Boolean b -> if b then "fn:true()" else "fn:false()"
  | a ->
    Printf.sprintf "%s(\"%s\")"
      (qn (Atomic.type_name a))
      (Atomic.to_string a)

let rec expr (e : Ast.expr) : string =
  match e with
  | Ast.Literal a -> literal a
  | Ast.Var q -> "$" ^ qn q
  | Ast.Context_item -> "."
  | Ast.Seq_expr es -> "(" ^ String.concat ", " (List.map expr es) ^ ")"
  | Ast.Range (a, b) -> bin a "to" b
  | Ast.Arith (op, a, b) -> bin a (arith_op op) b
  | Ast.Neg a -> "(-" ^ expr a ^ ")"
  | Ast.And (a, b) -> bin a "and" b
  | Ast.Or (a, b) -> bin a "or" b
  | Ast.General_cmp (op, a, b) -> bin a (snd (comp_op op)) b
  | Ast.Value_cmp (op, a, b) -> bin a (fst (comp_op op)) b
  | Ast.Node_is (a, b) -> bin a "is" b
  | Ast.Node_before (a, b) -> bin a "<<" b
  | Ast.Node_after (a, b) -> bin a ">>" b
  | Ast.Union (a, b) -> bin a "union" b
  | Ast.Intersect (a, b) -> bin a "intersect" b
  | Ast.Except (a, b) -> bin a "except" b
  | Ast.Instance_of (a, t) -> "(" ^ expr a ^ " instance of " ^ seqtype t ^ ")"
  | Ast.Treat_as (a, t) -> "(" ^ expr a ^ " treat as " ^ seqtype t ^ ")"
  | Ast.Castable_as (a, q, opt) ->
    Printf.sprintf "(%s castable as %s%s)" (expr a) (qn q)
      (if opt then "?" else "")
  | Ast.Cast_as (a, q, opt) ->
    Printf.sprintf "(%s cast as %s%s)" (expr a) (qn q)
      (if opt then "?" else "")
  | Ast.If_expr (c, t, f) ->
    Printf.sprintf "if (%s) then %s else %s" (expr c) (expr t) (expr f)
  | Ast.Typeswitch (operand, cases, (dvar, default)) ->
    let case c =
      Printf.sprintf "case %s%s return %s"
        (match c.Ast.case_var with
        | Some v -> "$" ^ qn v ^ " as "
        | None -> "")
        (seqtype c.Ast.case_type) (expr c.Ast.case_return)
    in
    Printf.sprintf "typeswitch (%s) %s default %sreturn %s" (expr operand)
      (String.concat " " (List.map case cases))
      (match dvar with Some v -> "$" ^ qn v ^ " " | None -> "")
      (expr default)
  | Ast.Flwor (clauses, ret) ->
    String.concat " " (List.map clause clauses) ^ " return " ^ expr ret
  | Ast.Quantified (q, bindings, body) ->
    Printf.sprintf "%s %s satisfies %s"
      (match q with Ast.Some_q -> "some" | Ast.Every_q -> "every")
      (String.concat ", "
         (List.map
            (fun (v, ty, e) ->
              Printf.sprintf "$%s%s in %s" (qn v)
                (match ty with Some t -> " as " ^ seqtype t | None -> "")
                (expr e))
            bindings))
      (expr body)
  | Ast.Path (a, b) -> path_operand a ^ "/" ^ expr b
  | Ast.Root_expr -> "fn:root(self::node())"
  | Ast.Step (axis, nt, preds) ->
    axis_name axis ^ "::" ^ nodetest nt ^ predicates preds
  | Ast.Filter (prim, preds) -> "(" ^ expr prim ^ ")" ^ predicates preds
  | Ast.Call (q, args) ->
    qn q ^ "(" ^ String.concat ", " (List.map expr args) ^ ")"
  | Ast.Elem_ctor (name, attrs, contents) ->
    let attr (an, parts) =
      Printf.sprintf " %s=\"%s\"" (qn an)
        (String.concat ""
           (List.map
              (function
                | Ast.Attr_str s -> Xml_serialize.escape_attr s
                | Ast.Attr_expr e -> "{" ^ expr e ^ "}")
              parts))
    in
    let content = function
      | Ast.Content_text s -> Xml_serialize.escape_text s
      | Ast.Content_expr e -> "{" ^ expr e ^ "}"
      | Ast.Content_node e -> expr e
    in
    let n = qn name in
    if contents = [] then
      Printf.sprintf "<%s%s/>" n (String.concat "" (List.map attr attrs))
    else
      Printf.sprintf "<%s%s>%s</%s>" n
        (String.concat "" (List.map attr attrs))
        (String.concat "" (List.map content contents))
        n
  | Ast.Comp_elem (ns, e) -> computed "element" ns e
  | Ast.Comp_attr (ns, e) -> computed "attribute" ns e
  | Ast.Comp_text e -> "text { " ^ expr e ^ " }"
  | Ast.Comp_doc e -> "document { " ^ expr e ^ " }"
  | Ast.Comp_comment e -> "comment { " ^ expr e ^ " }"
  | Ast.Comp_pi (ns, e) -> computed "processing-instruction" ns e
  | Ast.Insert (pos, src, tgt) ->
    Printf.sprintf "insert nodes %s %s %s" (expr src)
      (match pos with
      | Ast.Into -> "into"
      | Ast.Into_first -> "as first into"
      | Ast.Into_last -> "as last into"
      | Ast.Before -> "before"
      | Ast.After -> "after")
      (expr tgt)
  | Ast.Delete t -> "delete nodes " ^ expr t
  | Ast.Replace { value_of; target; source } ->
    Printf.sprintf "replace %snode %s with %s"
      (if value_of then "value of " else "")
      (expr target) (expr source)
  | Ast.Rename (t, ns) ->
    Printf.sprintf "rename node %s as %s" (expr t)
      (match ns with
      | Ast.Static_name q -> qn q
      | Ast.Dynamic_name e -> "{ " ^ expr e ^ " }")
  | Ast.Transform (copies, modify, ret) ->
    Printf.sprintf "copy %s modify %s return %s"
      (String.concat ", "
         (List.map
            (fun (v, e) -> Printf.sprintf "$%s := %s" (qn v) (expr e))
            copies))
      (expr modify) (expr ret)

and bin a op b = "(" ^ expr a ^ " " ^ op ^ " " ^ expr b ^ ")"

and path_operand = function
  | Ast.Root_expr -> "fn:root(self::node())"
  | (Ast.Path _ | Ast.Step _ | Ast.Var _ | Ast.Context_item | Ast.Filter _) as e
    -> expr e
  | e -> "(" ^ expr e ^ ")"

and predicates preds =
  String.concat "" (List.map (fun p -> "[" ^ expr p ^ "]") preds)

and computed kw ns e =
  match ns with
  | Ast.Static_name q ->
    Printf.sprintf "%s %s { %s }" kw (qn q) (expr e)
  | Ast.Dynamic_name n ->
    Printf.sprintf "%s { %s } { %s }" kw (expr n) (expr e)

and clause = function
  | Ast.For_clause bs ->
    "for "
    ^ String.concat ", "
        (List.map
           (fun b ->
             Printf.sprintf "$%s%s%s in %s"
               (qn b.Ast.for_var)
               (match b.Ast.for_type with
               | Some t -> " as " ^ seqtype t
               | None -> "")
               (match b.Ast.for_pos with
               | Some p -> " at $" ^ qn p
               | None -> "")
               (expr b.Ast.for_expr))
           bs)
  | Ast.Let_clause bs ->
    "let "
    ^ String.concat ", "
        (List.map
           (fun b ->
             Printf.sprintf "$%s%s := %s"
               (qn b.Ast.let_var)
               (match b.Ast.let_type with
               | Some t -> " as " ^ seqtype t
               | None -> "")
               (expr b.Ast.let_expr))
           bs)
  | Ast.Where_clause e -> "where " ^ expr e
  | Ast.Order_clause (stable, specs) ->
    (if stable then "stable order by " else "order by ")
    ^ String.concat ", "
        (List.map
           (fun sp ->
             expr sp.Ast.key
             ^ (if sp.Ast.descending then " descending" else "")
             ^ if sp.Ast.empty_least then "" else " empty greatest")
           specs)
  | Ast.Join_clause j ->
    (* internal node: print as the equivalent for + where *)
    Printf.sprintf "for $%s in %s where %s eq %s (: hash join :)"
      (qn j.Ast.join_var)
      (expr j.Ast.join_source)
      (expr j.Ast.join_probe_key)
      (expr j.Ast.join_build_key)

let function_decl (d : Ast.function_decl) =
  Printf.sprintf "declare function %s(%s)%s %s;"
    (qn d.Ast.fd_name)
    (String.concat ", "
       (List.map
          (fun (v, ty) ->
            Printf.sprintf "$%s%s" (qn v)
              (match ty with Some t -> " as " ^ seqtype t | None -> ""))
          d.Ast.fd_params))
    (match d.Ast.fd_return with Some t -> " as " ^ seqtype t | None -> "")
    (match d.Ast.fd_body with
    | Some b -> "{ " ^ expr b ^ " }"
    | None -> "external")
