open Xdm

exception Syntax_error of { line : int; col : int; message : string }

type t = { lx : Lexer.t; st : Context.static }

let create st src = { lx = Lexer.create src; st }
let static p = p.st

let fail p msg =
  let line, col = Lexer.line_col p.lx (Lexer.pos p.lx) in
  raise (Syntax_error { line; col; message = msg })

let peek p = Lexer.peek p.lx
let peek2 p = Lexer.peek2 p.lx
let advance p = ignore (Lexer.next p.lx)

let tok_desc = function
  | Lexer.EOF -> "end of input"
  | Lexer.NAME (None, n) -> Printf.sprintf "%S" n
  | Lexer.NAME (Some pfx, n) -> Printf.sprintf "%S" (pfx ^ ":" ^ n)
  | Lexer.STR s -> Printf.sprintf "string %S" s
  | Lexer.INT s | Lexer.DEC s | Lexer.DBL s -> Printf.sprintf "number %s" s
  | Lexer.LPAR -> "'('"
  | Lexer.RPAR -> "')'"
  | Lexer.LBRACE -> "'{'"
  | Lexer.RBRACE -> "'}'"
  | Lexer.LBRACKET -> "'['"
  | Lexer.RBRACKET -> "']'"
  | Lexer.COMMA -> "','"
  | Lexer.SEMI -> "';'"
  | Lexer.ASSIGN -> "':='"
  | Lexer.DOLLAR -> "'$'"
  | Lexer.AT -> "'@'"
  | Lexer.DOT -> "'.'"
  | Lexer.DOTDOT -> "'..'"
  | Lexer.SLASH -> "'/'"
  | Lexer.SLASHSLASH -> "'//'"
  | Lexer.STAR -> "'*'"
  | Lexer.PLUS -> "'+'"
  | Lexer.MINUS -> "'-'"
  | Lexer.PIPE -> "'|'"
  | Lexer.EQUALS -> "'='"
  | Lexer.NOTEQUALS -> "'!='"
  | Lexer.LT -> "'<'"
  | Lexer.LE -> "'<='"
  | Lexer.GT -> "'>'"
  | Lexer.GE -> "'>='"
  | Lexer.LTLT -> "'<<'"
  | Lexer.GTGT -> "'>>'"
  | Lexer.QMARK -> "'?'"
  | Lexer.AXIS_SEP -> "'::'"
  | Lexer.NS_WILDCARD pfx -> Printf.sprintf "'%s:*'" pfx
  | Lexer.LOCAL_WILDCARD l -> Printf.sprintf "'*:%s'" l

let expect_tok p tok what =
  if peek p = tok then advance p
  else fail p (Printf.sprintf "expected %s, found %s" what (tok_desc (peek p)))

let at_keyword p kw =
  match peek p with Lexer.NAME (None, n) -> n = kw | _ -> false

let at_keyword2 p k1 k2 =
  at_keyword p k1
  && match peek2 p with Lexer.NAME (None, n) -> n = k2 | _ -> false

let eat_keyword p kw =
  if at_keyword p kw then advance p
  else fail p (Printf.sprintf "expected %S, found %s" kw (tok_desc (peek p)))

let try_keyword p kw =
  if at_keyword p kw then begin
    advance p;
    true
  end
  else false

let expect_eof p =
  if peek p <> Lexer.EOF then
    fail p (Printf.sprintf "unexpected %s after end of query" (tok_desc (peek p)))

let parse_qname_lexical p =
  match peek p with
  | Lexer.NAME (pfx, local) ->
    advance p;
    (pfx, local)
  | t -> fail p (Printf.sprintf "expected a name, found %s" (tok_desc t))

let resolve_elem p lex =
  try Context.resolve_qname p.st ~element:true lex
  with Item.Error { message; _ } -> fail p message

let resolve_other p lex =
  try Context.resolve_qname p.st ~element:false lex
  with Item.Error { message; _ } -> fail p message

let resolve_fun p lex =
  try Context.resolve_fname p.st lex
  with Item.Error { message; _ } -> fail p message

let parse_elem_qname p = resolve_elem p (parse_qname_lexical p)
let parse_fun_qname p = resolve_fun p (parse_qname_lexical p)

let parse_var_qname p =
  expect_tok p Lexer.DOLLAR "'$'";
  resolve_other p (parse_qname_lexical p)

(* ------------------------------------------------------------------ *)
(* Sequence types                                                      *)
(* ------------------------------------------------------------------ *)

let parse_occurrence p =
  match peek p with
  | Lexer.QMARK ->
    advance p;
    Seqtype.Opt
  | Lexer.STAR ->
    advance p;
    Seqtype.Star
  | Lexer.PLUS ->
    advance p;
    Seqtype.Plus
  | _ -> Seqtype.One

let parse_kind_test_name p =
  (* inside element(...) / attribute(...): name, *, or nothing *)
  match peek p with
  | Lexer.RPAR -> None
  | Lexer.STAR ->
    advance p;
    None
  | Lexer.NAME _ ->
    let qn = parse_elem_qname p in
    (* optional ", TypeName" — parsed and ignored *)
    if peek p = Lexer.COMMA then begin
      advance p;
      ignore (parse_qname_lexical p)
    end;
    Some qn
  | t -> fail p (Printf.sprintf "expected a name or '*', found %s" (tok_desc t))

let parse_item_type p : Seqtype.item_type option =
  (* Returns None for empty-sequence() which is handled by the caller. *)
  match peek p with
  | Lexer.NAME (None, kw) when peek2 p = Lexer.LPAR -> (
    match kw with
    | "item" ->
      advance p;
      advance p;
      expect_tok p Lexer.RPAR "')'";
      Some Seqtype.Any_item
    | "node" ->
      advance p;
      advance p;
      expect_tok p Lexer.RPAR "')'";
      Some Seqtype.Any_node
    | "text" ->
      advance p;
      advance p;
      expect_tok p Lexer.RPAR "')'";
      Some Seqtype.Text_type
    | "comment" ->
      advance p;
      advance p;
      expect_tok p Lexer.RPAR "')'";
      Some Seqtype.Comment_type
    | "processing-instruction" ->
      advance p;
      advance p;
      (match peek p with
      | Lexer.NAME _ -> ignore (parse_qname_lexical p)
      | Lexer.STR _ -> advance p
      | _ -> ());
      expect_tok p Lexer.RPAR "')'";
      Some Seqtype.Pi_type
    | "document-node" ->
      advance p;
      advance p;
      (* optional element(...) inside: parse and discard *)
      (if at_keyword p "element" && peek2 p = Lexer.LPAR then begin
         advance p;
         advance p;
         ignore (parse_kind_test_name p);
         expect_tok p Lexer.RPAR "')'"
       end);
      expect_tok p Lexer.RPAR "')'";
      Some Seqtype.Document_type
    | "element" ->
      advance p;
      advance p;
      let n = parse_kind_test_name p in
      expect_tok p Lexer.RPAR "')'";
      Some (Seqtype.Element_type n)
    | "attribute" ->
      advance p;
      advance p;
      let n = parse_kind_test_name p in
      expect_tok p Lexer.RPAR "')'";
      Some (Seqtype.Attribute_type n)
    | "empty-sequence" ->
      advance p;
      advance p;
      expect_tok p Lexer.RPAR "')'";
      None
    | _ -> fail p (Printf.sprintf "unknown kind test %S" kw))
  | Lexer.NAME _ ->
    let qn = resolve_other p (parse_qname_lexical p) in
    Some (Seqtype.Atomic_type qn)
  | t -> fail p (Printf.sprintf "expected a sequence type, found %s" (tok_desc t))

let parse_sequence_type p =
  match parse_item_type p with
  | None -> Seqtype.Empty_sequence
  | Some it ->
    let occ = parse_occurrence p in
    Seqtype.Typed (it, occ)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let reserved_fun_names =
  [
    "if"; "typeswitch"; "item"; "node"; "text"; "comment";
    "processing-instruction"; "document-node"; "element"; "attribute";
    "empty-sequence";
  ]

let rec parse_expr p =
  let e1 = parse_expr_single p in
  if peek p = Lexer.COMMA then begin
    let items = ref [ e1 ] in
    while peek p = Lexer.COMMA do
      advance p;
      items := parse_expr_single p :: !items
    done;
    Ast.Seq_expr (List.rev !items)
  end
  else e1

and parse_expr_single p =
  match peek p with
  | Lexer.NAME (None, "for") when peek2 p = Lexer.DOLLAR -> parse_flwor p
  | Lexer.NAME (None, "let") when peek2 p = Lexer.DOLLAR -> parse_flwor p
  | Lexer.NAME (None, ("some" | "every")) when peek2 p = Lexer.DOLLAR ->
    parse_quantified p
  | Lexer.NAME (None, "if") when peek2 p = Lexer.LPAR -> parse_if p
  | Lexer.NAME (None, "typeswitch") when peek2 p = Lexer.LPAR ->
    parse_typeswitch p
  | Lexer.NAME (None, "insert")
    when (match peek2 p with
         | Lexer.NAME (None, ("node" | "nodes")) -> true
         | _ -> false) -> parse_insert p
  | Lexer.NAME (None, "delete")
    when (match peek2 p with
         | Lexer.NAME (None, ("node" | "nodes")) -> true
         | _ -> false) -> parse_delete p
  | Lexer.NAME (None, "replace")
    when (match peek2 p with
         | Lexer.NAME (None, ("node" | "value")) -> true
         | _ -> false) -> parse_replace p
  | Lexer.NAME (None, "rename")
    when (match peek2 p with
         | Lexer.NAME (None, "node") -> true
         | _ -> false) -> parse_rename p
  | Lexer.NAME (None, "copy") when peek2 p = Lexer.DOLLAR -> parse_transform p
  | _ -> parse_or p

and parse_flwor p =
  let clauses = ref [] in
  let rec head () =
    if at_keyword p "for" && peek2 p = Lexer.DOLLAR then begin
      advance p;
      let bindings = ref [] in
      let rec one () =
        let v = parse_var_qname p in
        let ty =
          if at_keyword p "as" then begin
            advance p;
            Some (parse_sequence_type p)
          end
          else None
        in
        let posv =
          if at_keyword p "at" then begin
            advance p;
            Some (parse_var_qname p)
          end
          else None
        in
        eat_keyword p "in";
        let e = parse_expr_single p in
        bindings :=
          { Ast.for_var = v; for_pos = posv; for_type = ty; for_expr = e }
          :: !bindings;
        if peek p = Lexer.COMMA then begin
          advance p;
          one ()
        end
      in
      one ();
      clauses := Ast.For_clause (List.rev !bindings) :: !clauses;
      head ()
    end
    else if at_keyword p "let" && peek2 p = Lexer.DOLLAR then begin
      advance p;
      let bindings = ref [] in
      let rec one () =
        let v = parse_var_qname p in
        let ty =
          if at_keyword p "as" then begin
            advance p;
            Some (parse_sequence_type p)
          end
          else None
        in
        expect_tok p Lexer.ASSIGN "':='";
        let e = parse_expr_single p in
        bindings :=
          { Ast.let_var = v; let_type = ty; let_expr = e } :: !bindings;
        if peek p = Lexer.COMMA then begin
          advance p;
          one ()
        end
      in
      one ();
      clauses := Ast.Let_clause (List.rev !bindings) :: !clauses;
      head ()
    end
  in
  head ();
  if at_keyword p "where" then begin
    advance p;
    clauses := Ast.Where_clause (parse_expr_single p) :: !clauses
  end;
  let stable = at_keyword2 p "stable" "order" in
  if stable then advance p;
  if at_keyword2 p "order" "by" then begin
    advance p;
    advance p;
    let specs = ref [] in
    let rec one () =
      let key = parse_expr_single p in
      let descending =
        if try_keyword p "descending" then true
        else begin
          ignore (try_keyword p "ascending");
          false
        end
      in
      let empty_least =
        if try_keyword p "empty" then
          if try_keyword p "least" then true
          else begin
            eat_keyword p "greatest";
            false
          end
        else true
      in
      specs := { Ast.key; descending; empty_least } :: !specs;
      if peek p = Lexer.COMMA then begin
        advance p;
        one ()
      end
    in
    one ();
    clauses := Ast.Order_clause (stable, List.rev !specs) :: !clauses
  end;
  eat_keyword p "return";
  let ret = parse_expr_single p in
  Ast.Flwor (List.rev !clauses, ret)

and parse_quantified p =
  let quant =
    if at_keyword p "some" then Ast.Some_q
    else Ast.Every_q
  in
  advance p;
  let bindings = ref [] in
  let rec one () =
    let v = parse_var_qname p in
    let ty =
      if at_keyword p "as" then begin
        advance p;
        Some (parse_sequence_type p)
      end
      else None
    in
    eat_keyword p "in";
    let e = parse_expr_single p in
    bindings := (v, ty, e) :: !bindings;
    if peek p = Lexer.COMMA then begin
      advance p;
      one ()
    end
  in
  one ();
  eat_keyword p "satisfies";
  let body = parse_expr_single p in
  Ast.Quantified (quant, List.rev !bindings, body)

and parse_typeswitch p =
  eat_keyword p "typeswitch";
  expect_tok p Lexer.LPAR "'('";
  let operand = parse_expr p in
  expect_tok p Lexer.RPAR "')'";
  let cases = ref [] in
  while at_keyword p "case" do
    advance p;
    let var =
      if peek p = Lexer.DOLLAR then begin
        let v = parse_var_qname p in
        eat_keyword p "as";
        Some v
      end
      else None
    in
    let ty = parse_sequence_type p in
    eat_keyword p "return";
    let ret = parse_expr_single p in
    cases := { Ast.case_var = var; case_type = ty; case_return = ret } :: !cases
  done;
  if !cases = [] then fail p "typeswitch requires at least one case clause";
  eat_keyword p "default";
  let dvar =
    if peek p = Lexer.DOLLAR then Some (parse_var_qname p) else None
  in
  eat_keyword p "return";
  let default = parse_expr_single p in
  Ast.Typeswitch (operand, List.rev !cases, (dvar, default))

and parse_if p =
  eat_keyword p "if";
  expect_tok p Lexer.LPAR "'('";
  let cond = parse_expr p in
  expect_tok p Lexer.RPAR "')'";
  eat_keyword p "then";
  let then_ = parse_expr_single p in
  eat_keyword p "else";
  let else_ = parse_expr_single p in
  Ast.If_expr (cond, then_, else_)

(* XUF expressions ---------------------------------------------------- *)

and parse_insert p =
  eat_keyword p "insert";
  advance p (* node|nodes *);
  let source = parse_expr_single p in
  let pos =
    if try_keyword p "into" then Ast.Into
    else if at_keyword p "as" then begin
      advance p;
      let pos =
        if try_keyword p "first" then Ast.Into_first
        else begin
          eat_keyword p "last";
          Ast.Into_last
        end
      in
      eat_keyword p "into";
      pos
    end
    else if try_keyword p "before" then Ast.Before
    else if try_keyword p "after" then Ast.After
    else fail p "expected 'into', 'as first into', 'as last into', 'before' or 'after'"
  in
  let target = parse_expr_single p in
  Ast.Insert (pos, source, target)

and parse_delete p =
  eat_keyword p "delete";
  advance p (* node|nodes *);
  Ast.Delete (parse_expr_single p)

and parse_replace p =
  eat_keyword p "replace";
  let value_of = try_keyword p "value" in
  if value_of then eat_keyword p "of";
  eat_keyword p "node";
  let target = parse_expr_single p in
  eat_keyword p "with";
  let source = parse_expr_single p in
  Ast.Replace { value_of; target; source }

and parse_rename p =
  eat_keyword p "rename";
  eat_keyword p "node";
  let target = parse_expr_single p in
  eat_keyword p "as";
  let name =
    match peek p with
    | Lexer.NAME _ -> Ast.Static_name (parse_elem_qname p)
    | Lexer.LBRACE -> Ast.Dynamic_name (parse_enclosed_expr p)
    | _ -> Ast.Dynamic_name (parse_expr_single p)
  in
  Ast.Rename (target, name)

and parse_transform p =
  eat_keyword p "copy";
  let copies = ref [] in
  let rec one () =
    let v = parse_var_qname p in
    expect_tok p Lexer.ASSIGN "':='";
    let e = parse_expr_single p in
    copies := (v, e) :: !copies;
    if peek p = Lexer.COMMA then begin
      advance p;
      one ()
    end
  in
  one ();
  eat_keyword p "modify";
  let modify = parse_expr_single p in
  eat_keyword p "return";
  let ret = parse_expr_single p in
  Ast.Transform (List.rev !copies, modify, ret)

(* Operator ladder ---------------------------------------------------- *)

and parse_or p =
  let e = ref (parse_and p) in
  while at_keyword p "or" do
    advance p;
    e := Ast.Or (!e, parse_and p)
  done;
  !e

and parse_and p =
  let e = ref (parse_comparison p) in
  while at_keyword p "and" do
    advance p;
    e := Ast.And (!e, parse_comparison p)
  done;
  !e

and parse_comparison p =
  let e = parse_range p in
  let general op =
    advance p;
    Ast.General_cmp (op, e, parse_range p)
  in
  let value op =
    advance p;
    Ast.Value_cmp (op, e, parse_range p)
  in
  match peek p with
  | Lexer.EQUALS -> general Ast.Eq
  | Lexer.NOTEQUALS -> general Ast.Ne
  | Lexer.LT -> general Ast.Lt
  | Lexer.LE -> general Ast.Le
  | Lexer.GT -> general Ast.Gt
  | Lexer.GE -> general Ast.Ge
  | Lexer.NAME (None, "eq") -> value Ast.Eq
  | Lexer.NAME (None, "ne") -> value Ast.Ne
  | Lexer.NAME (None, "lt") -> value Ast.Lt
  | Lexer.NAME (None, "le") -> value Ast.Le
  | Lexer.NAME (None, "gt") -> value Ast.Gt
  | Lexer.NAME (None, "ge") -> value Ast.Ge
  | Lexer.NAME (None, "is") ->
    advance p;
    Ast.Node_is (e, parse_range p)
  | Lexer.LTLT ->
    advance p;
    Ast.Node_before (e, parse_range p)
  | Lexer.GTGT ->
    advance p;
    Ast.Node_after (e, parse_range p)
  | _ -> e

and parse_range p =
  let e = parse_additive p in
  if at_keyword p "to" then begin
    advance p;
    Ast.Range (e, parse_additive p)
  end
  else e

and parse_additive p =
  let e = ref (parse_multiplicative p) in
  let rec go () =
    match peek p with
    | Lexer.PLUS ->
      advance p;
      e := Ast.Arith (Atomic.Add, !e, parse_multiplicative p);
      go ()
    | Lexer.MINUS ->
      advance p;
      e := Ast.Arith (Atomic.Sub, !e, parse_multiplicative p);
      go ()
    | _ -> ()
  in
  go ();
  !e

and parse_multiplicative p =
  let e = ref (parse_union p) in
  let rec go () =
    match peek p with
    | Lexer.STAR ->
      advance p;
      e := Ast.Arith (Atomic.Mul, !e, parse_union p);
      go ()
    | Lexer.NAME (None, "div") ->
      advance p;
      e := Ast.Arith (Atomic.Div, !e, parse_union p);
      go ()
    | Lexer.NAME (None, "idiv") ->
      advance p;
      e := Ast.Arith (Atomic.Idiv, !e, parse_union p);
      go ()
    | Lexer.NAME (None, "mod") ->
      advance p;
      e := Ast.Arith (Atomic.Mod, !e, parse_union p);
      go ()
    | _ -> ()
  in
  go ();
  !e

and parse_union p =
  let e = ref (parse_intersect p) in
  let rec go () =
    match peek p with
    | Lexer.PIPE ->
      advance p;
      e := Ast.Union (!e, parse_intersect p);
      go ()
    | Lexer.NAME (None, "union") ->
      advance p;
      e := Ast.Union (!e, parse_intersect p);
      go ()
    | _ -> ()
  in
  go ();
  !e

and parse_intersect p =
  let e = ref (parse_instance_of p) in
  let rec go () =
    if at_keyword p "intersect" then begin
      advance p;
      e := Ast.Intersect (!e, parse_instance_of p);
      go ()
    end
    else if at_keyword p "except" then begin
      advance p;
      e := Ast.Except (!e, parse_instance_of p);
      go ()
    end
  in
  go ();
  !e

and parse_instance_of p =
  let e = parse_treat p in
  if at_keyword2 p "instance" "of" then begin
    advance p;
    advance p;
    Ast.Instance_of (e, parse_sequence_type p)
  end
  else e

and parse_treat p =
  let e = parse_castable p in
  if at_keyword2 p "treat" "as" then begin
    advance p;
    advance p;
    Ast.Treat_as (e, parse_sequence_type p)
  end
  else e

and parse_castable p =
  let e = parse_cast p in
  if at_keyword2 p "castable" "as" then begin
    advance p;
    advance p;
    let qn = resolve_other p (parse_qname_lexical p) in
    let opt = peek p = Lexer.QMARK in
    if opt then advance p;
    Ast.Castable_as (e, qn, opt)
  end
  else e

and parse_cast p =
  let e = parse_unary p in
  if at_keyword2 p "cast" "as" then begin
    advance p;
    advance p;
    let qn = resolve_other p (parse_qname_lexical p) in
    let opt = peek p = Lexer.QMARK in
    if opt then advance p;
    Ast.Cast_as (e, qn, opt)
  end
  else e

and parse_unary p =
  match peek p with
  | Lexer.MINUS ->
    advance p;
    Ast.Neg (parse_unary p)
  | Lexer.PLUS ->
    advance p;
    parse_unary p
  | _ -> parse_path p

(* Paths --------------------------------------------------------------- *)

and can_start_step p =
  match peek p with
  | Lexer.NAME _ | Lexer.NS_WILDCARD _ | Lexer.LOCAL_WILDCARD _ | Lexer.STAR
  | Lexer.AT | Lexer.DOT | Lexer.DOTDOT | Lexer.DOLLAR | Lexer.LPAR
  | Lexer.STR _ | Lexer.INT _ | Lexer.DEC _ | Lexer.DBL _ | Lexer.LT -> true
  | _ -> false

and parse_path p =
  match peek p with
  | Lexer.SLASH ->
    advance p;
    if can_start_step p then parse_relative_path p Ast.Root_expr
    else Ast.Root_expr
  | Lexer.SLASHSLASH ->
    advance p;
    let start =
      Ast.Path (Ast.Root_expr, Ast.Step (Ast.Descendant_or_self, Ast.Kind_node, []))
    in
    parse_relative_path_step p start
  | _ ->
    let first = parse_step p in
    parse_relative_path_tail p first

and parse_relative_path p start =
  let step = parse_step p in
  parse_relative_path_tail p (Ast.Path (start, step))

and parse_relative_path_step p start =
  (* after '//' we must parse at least one step *)
  let step = parse_step p in
  parse_relative_path_tail p (Ast.Path (start, step))

and parse_relative_path_tail p acc =
  match peek p with
  | Lexer.SLASH ->
    advance p;
    let step = parse_step p in
    parse_relative_path_tail p (Ast.Path (acc, step))
  | Lexer.SLASHSLASH ->
    advance p;
    let acc =
      Ast.Path (acc, Ast.Step (Ast.Descendant_or_self, Ast.Kind_node, []))
    in
    let step = parse_step p in
    parse_relative_path_tail p (Ast.Path (acc, step))
  | _ -> acc

and axis_of_name = function
  | "child" -> Some Ast.Child
  | "descendant" -> Some Ast.Descendant
  | "attribute" -> Some Ast.Attribute_axis
  | "self" -> Some Ast.Self
  | "descendant-or-self" -> Some Ast.Descendant_or_self
  | "parent" -> Some Ast.Parent
  | "following-sibling" -> Some Ast.Following_sibling
  | "preceding-sibling" -> Some Ast.Preceding_sibling
  | "ancestor" -> Some Ast.Ancestor
  | "ancestor-or-self" -> Some Ast.Ancestor_or_self
  | "following" -> Some Ast.Following
  | "preceding" -> Some Ast.Preceding
  | _ -> None

and parse_predicates p =
  let preds = ref [] in
  while peek p = Lexer.LBRACKET do
    advance p;
    preds := parse_expr p :: !preds;
    expect_tok p Lexer.RBRACKET "']'"
  done;
  List.rev !preds

and parse_nodetest p ~attr_axis =
  match peek p with
  | Lexer.STAR ->
    advance p;
    Ast.Any_name
  | Lexer.NS_WILDCARD pfx -> (
    advance p;
    match Context.lookup_ns p.st pfx with
    | Some uri -> Ast.Ns_wildcard uri
    | None -> fail p (Printf.sprintf "undeclared namespace prefix %S" pfx))
  | Lexer.LOCAL_WILDCARD local ->
    advance p;
    Ast.Local_wildcard local
  | Lexer.NAME (None, kw) when peek2 p = Lexer.LPAR && List.mem kw reserved_fun_names -> (
    match kw with
    | "node" ->
      advance p;
      advance p;
      expect_tok p Lexer.RPAR "')'";
      Ast.Kind_node
    | "text" ->
      advance p;
      advance p;
      expect_tok p Lexer.RPAR "')'";
      Ast.Kind_text
    | "comment" ->
      advance p;
      advance p;
      expect_tok p Lexer.RPAR "')'";
      Ast.Kind_comment
    | "processing-instruction" ->
      advance p;
      advance p;
      let target =
        match peek p with
        | Lexer.NAME (None, n) ->
          advance p;
          Some n
        | Lexer.STR s ->
          advance p;
          Some s
        | _ -> None
      in
      expect_tok p Lexer.RPAR "')'";
      Ast.Kind_pi target
    | "element" ->
      advance p;
      advance p;
      let n = parse_kind_test_name p in
      expect_tok p Lexer.RPAR "')'";
      Ast.Kind_element n
    | "attribute" ->
      advance p;
      advance p;
      let n = parse_kind_test_name p in
      expect_tok p Lexer.RPAR "')'";
      Ast.Kind_attribute n
    | "document-node" ->
      advance p;
      advance p;
      expect_tok p Lexer.RPAR "')'";
      Ast.Kind_document
    | _ -> fail p (Printf.sprintf "%S is not a valid node test" kw))
  | Lexer.NAME _ ->
    let lex = parse_qname_lexical p in
    let qn = if attr_axis then resolve_other p lex else resolve_elem p lex in
    Ast.Name_test qn
  | t -> fail p (Printf.sprintf "expected a node test, found %s" (tok_desc t))

and parse_step p =
  match peek p with
  | Lexer.AT ->
    advance p;
    let nt = parse_nodetest p ~attr_axis:true in
    Ast.Step (Ast.Attribute_axis, nt, parse_predicates p)
  | Lexer.DOTDOT ->
    advance p;
    Ast.Step (Ast.Parent, Ast.Kind_node, parse_predicates p)
  | Lexer.NAME (None, name) when peek2 p = Lexer.AXIS_SEP -> (
    match axis_of_name name with
    | Some axis ->
      advance p;
      advance p;
      let nt = parse_nodetest p ~attr_axis:(axis = Ast.Attribute_axis) in
      Ast.Step (axis, nt, parse_predicates p)
    | None -> fail p (Printf.sprintf "unknown axis %S" name))
  | Lexer.NS_WILDCARD _ | Lexer.LOCAL_WILDCARD _ | Lexer.STAR ->
    let nt = parse_nodetest p ~attr_axis:false in
    Ast.Step (Ast.Child, nt, parse_predicates p)
  | Lexer.NAME (None, kw)
    when peek2 p = Lexer.LPAR && List.mem kw reserved_fun_names
         && kw <> "if" && kw <> "typeswitch" && kw <> "empty-sequence"
         && kw <> "item" ->
    let nt = parse_nodetest p ~attr_axis:false in
    Ast.Step (Ast.Child, nt, parse_predicates p)
  (* computed-constructor keywords are primaries, not name tests *)
  | Lexer.NAME (None, ("element" | "attribute" | "processing-instruction"))
    when (match peek2 p with
         | Lexer.NAME _ | Lexer.LBRACE -> true
         | _ -> false) ->
    let prim = parse_primary p in
    let preds = parse_predicates p in
    if preds = [] then prim else Ast.Filter (prim, preds)
  | Lexer.NAME
      (None, ("text" | "document" | "comment" | "ordered" | "unordered"))
    when peek2 p = Lexer.LBRACE ->
    let prim = parse_primary p in
    let preds = parse_predicates p in
    if preds = [] then prim else Ast.Filter (prim, preds)
  | Lexer.NAME _ when peek2 p <> Lexer.LPAR ->
    let nt = parse_nodetest p ~attr_axis:false in
    Ast.Step (Ast.Child, nt, parse_predicates p)
  | _ ->
    (* FilterExpr: primary with predicates *)
    let prim = parse_primary p in
    let preds = parse_predicates p in
    if preds = [] then prim else Ast.Filter (prim, preds)

(* Primary expressions -------------------------------------------------- *)

and parse_primary p =
  match peek p with
  | Lexer.INT s ->
    advance p;
    Ast.Literal (Atomic.Integer (int_of_string s))
  | Lexer.DEC s ->
    advance p;
    Ast.Literal (Atomic.Decimal (float_of_string s))
  | Lexer.DBL s ->
    advance p;
    Ast.Literal (Atomic.Double (float_of_string s))
  | Lexer.STR s ->
    advance p;
    Ast.Literal (Atomic.String s)
  | Lexer.DOLLAR ->
    let v = parse_var_qname p in
    Ast.Var v
  | Lexer.DOT ->
    advance p;
    Ast.Context_item
  | Lexer.LPAR ->
    advance p;
    if peek p = Lexer.RPAR then begin
      advance p;
      Ast.Seq_expr []
    end
    else begin
      let e = parse_expr p in
      expect_tok p Lexer.RPAR "')'";
      e
    end
  | Lexer.LT -> parse_direct_constructor p
  | Lexer.NAME (None, ("ordered" | "unordered")) when peek2 p = Lexer.LBRACE ->
    advance p;
    parse_enclosed_expr p
  | Lexer.NAME (None, "element")
    when (match peek2 p with
         | Lexer.NAME _ | Lexer.LBRACE -> true
         | _ -> false) -> parse_computed_element p
  | Lexer.NAME (None, "attribute")
    when (match peek2 p with
         | Lexer.NAME _ | Lexer.LBRACE -> true
         | _ -> false) -> parse_computed_attribute p
  | Lexer.NAME (None, "text") when peek2 p = Lexer.LBRACE ->
    advance p;
    Ast.Comp_text (parse_enclosed_expr p)
  | Lexer.NAME (None, "document") when peek2 p = Lexer.LBRACE ->
    advance p;
    Ast.Comp_doc (parse_enclosed_expr p)
  | Lexer.NAME (None, "comment") when peek2 p = Lexer.LBRACE ->
    advance p;
    Ast.Comp_comment (parse_enclosed_expr p)
  | Lexer.NAME (None, "processing-instruction")
    when (match peek2 p with
         | Lexer.NAME _ | Lexer.LBRACE -> true
         | _ -> false) ->
    advance p;
    let name =
      match peek p with
      | Lexer.NAME (None, n) ->
        advance p;
        Ast.Static_name (Qname.local n)
      | _ -> Ast.Dynamic_name (parse_enclosed_expr p)
    in
    Ast.Comp_pi (name, parse_enclosed_expr p)
  | Lexer.NAME (None, kw) when peek2 p = Lexer.LPAR && List.mem kw reserved_fun_names
    -> fail p (Printf.sprintf "%S cannot be used as a function name" kw)
  | Lexer.NAME _ when peek2 p = Lexer.LPAR -> parse_function_call p
  | t -> fail p (Printf.sprintf "unexpected %s" (tok_desc t))

and parse_function_call p =
  let name = parse_fun_qname p in
  expect_tok p Lexer.LPAR "'('";
  let args = ref [] in
  if peek p <> Lexer.RPAR then begin
    let rec go () =
      args := parse_expr_single p :: !args;
      if peek p = Lexer.COMMA then begin
        advance p;
        go ()
      end
    in
    go ()
  end;
  expect_tok p Lexer.RPAR "')'";
  match (name, List.rev !args) with
  | ( { Qname.uri; local = "QName"; _ },
      [ Ast.Literal (Atomic.String s) ] )
    when uri = Qname.xs_ns && String.contains s ':' ->
    (* a prefixed literal xs:QName constructor resolves against the
       in-scope namespaces here, where they are still known *)
    let i = String.index s ':' in
    let prefix = String.sub s 0 i in
    let local = String.sub s (i + 1) (String.length s - i - 1) in
    (match Context.lookup_ns p.st prefix with
    | Some ns_uri ->
      Ast.Literal (Atomic.QName (Qname.make ~prefix ~uri:ns_uri local))
    | None -> fail p (Printf.sprintf "undeclared namespace prefix %S" prefix))
  | name, args -> Ast.Call (name, args)

and parse_enclosed_expr p =
  expect_tok p Lexer.LBRACE "'{'";
  let e = if peek p = Lexer.RBRACE then Ast.Seq_expr [] else parse_expr p in
  expect_tok p Lexer.RBRACE "'}'";
  e

and parse_computed_element p =
  eat_keyword p "element";
  let name =
    match peek p with
    | Lexer.NAME _ -> Ast.Static_name (parse_elem_qname p)
    | _ -> Ast.Dynamic_name (parse_enclosed_expr p)
  in
  Ast.Comp_elem (name, parse_enclosed_expr p)

and parse_computed_attribute p =
  eat_keyword p "attribute";
  let name =
    match peek p with
    | Lexer.NAME _ -> Ast.Static_name (resolve_other p (parse_qname_lexical p))
    | _ -> Ast.Dynamic_name (parse_enclosed_expr p)
  in
  Ast.Comp_attr (name, parse_enclosed_expr p)

(* Direct constructors (raw character mode) ----------------------------- *)

and parse_direct_constructor p =
  (* current token is LT; rewind the lexer to the '<' and read raw *)
  Lexer.seek p.lx (Lexer.token_start p.lx);
  if Lexer.raw_looking_at p.lx "<!--" then begin
    ignore (Lexer.raw_next p.lx);
    ignore (Lexer.raw_next p.lx);
    ignore (Lexer.raw_next p.lx);
    ignore (Lexer.raw_next p.lx);
    let buf = Buffer.create 16 in
    while not (Lexer.raw_looking_at p.lx "-->") do
      let c = Lexer.raw_next p.lx in
      if c = '\000' then fail p "unterminated comment constructor";
      Buffer.add_char buf c
    done;
    Lexer.raw_expect p.lx "-->";
    Ast.Comp_comment (Ast.Literal (Atomic.String (Buffer.contents buf)))
  end
  else if Lexer.raw_looking_at p.lx "<?" then begin
    ignore (Lexer.raw_next p.lx);
    ignore (Lexer.raw_next p.lx);
    let target = Lexer.raw_ncname p.lx in
    Lexer.raw_skip_ws p.lx;
    let buf = Buffer.create 16 in
    while not (Lexer.raw_looking_at p.lx "?>") do
      let c = Lexer.raw_next p.lx in
      if c = '\000' then fail p "unterminated processing-instruction constructor";
      Buffer.add_char buf c
    done;
    Lexer.raw_expect p.lx "?>";
    Ast.Comp_pi
      ( Ast.Static_name (Qname.local target),
        Ast.Literal (Atomic.String (Buffer.contents buf)) )
  end
  else parse_direct_element p

and raw_qname p =
  let n1 = Lexer.raw_ncname p.lx in
  if Lexer.raw_looking_at p.lx ":" then begin
    ignore (Lexer.raw_next p.lx);
    let n2 = Lexer.raw_ncname p.lx in
    (Some n1, n2)
  end
  else (None, n1)

and parse_direct_element p =
  Lexer.raw_expect p.lx "<";
  let raw_name = raw_qname p in
  (* scan attributes; namespace declarations extend the static context
     for the scope of this constructor *)
  let saved_ns = p.st.Context.namespaces in
  let saved_default = p.st.Context.default_elem_ns in
  let raw_attrs = ref [] in
  let rec attrs () =
    Lexer.raw_skip_ws p.lx;
    if Lexer.raw_looking_at p.lx "/>" || Lexer.raw_looking_at p.lx ">" then ()
    else begin
      let an = raw_qname p in
      Lexer.raw_skip_ws p.lx;
      Lexer.raw_expect p.lx "=";
      Lexer.raw_skip_ws p.lx;
      let parts = parse_attr_value p in
      let literal_ns_value parts =
        match parts with
        | [] -> ""
        | [ Ast.Attr_str u ] -> u
        | _ -> fail p "namespace declaration value must be a literal"
      in
      (match an with
      | None, "xmlns" ->
        p.st.Context.default_elem_ns <- literal_ns_value parts
      | Some "xmlns", prefix ->
        Context.declare_ns p.st prefix (literal_ns_value parts)
      | _ -> raw_attrs := (an, parts) :: !raw_attrs);
      attrs ()
    end
  in
  attrs ();
  let name = resolve_elem p raw_name in
  let attrs =
    List.rev_map (fun (an, parts) -> (resolve_other p an, parts)) !raw_attrs
  in
  let finish contents =
    p.st.Context.namespaces <- saved_ns;
    p.st.Context.default_elem_ns <- saved_default;
    Ast.Elem_ctor (name, attrs, contents)
  in
  if Lexer.raw_looking_at p.lx "/>" then begin
    Lexer.raw_expect p.lx "/>";
    finish []
  end
  else begin
    Lexer.raw_expect p.lx ">";
    let contents = parse_element_content p in
    Lexer.raw_expect p.lx "</";
    let close = raw_qname p in
    Lexer.raw_skip_ws p.lx;
    Lexer.raw_expect p.lx ">";
    let close_q = resolve_elem p close in
    if not (Qname.equal close_q name) then
      fail p
        (Printf.sprintf "mismatched end tag </%s> for <%s>"
           (Qname.to_string close_q) (Qname.to_string name));
    finish contents
  end

and parse_attr_value p =
  let quote = Lexer.raw_next p.lx in
  if quote <> '"' && quote <> '\'' then fail p "expected attribute value";
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      parts := Ast.Attr_str (Buffer.contents buf) :: !parts;
      Buffer.clear buf
    end
  in
  let rec go () =
    let c = Lexer.raw_peek p.lx in
    if c = '\000' then fail p "unterminated attribute value"
    else if c = quote then begin
      (* doubled quote is an escape; a single quote ends the value *)
      ignore (Lexer.raw_next p.lx);
      if Lexer.raw_peek p.lx = quote then begin
        Buffer.add_char buf quote;
        ignore (Lexer.raw_next p.lx);
        go ()
      end
    end
    else if c = '{' then begin
      ignore (Lexer.raw_next p.lx);
      if Lexer.raw_peek p.lx = '{' then begin
        ignore (Lexer.raw_next p.lx);
        Buffer.add_char buf '{';
        go ()
      end
      else begin
        flush ();
        let e = parse_expr p in
        expect_tok p Lexer.RBRACE "'}'";
        parts := Ast.Attr_expr e :: !parts;
        go ()
      end
    end
    else if c = '}' then begin
      ignore (Lexer.raw_next p.lx);
      if Lexer.raw_peek p.lx = '}' then begin
        ignore (Lexer.raw_next p.lx);
        Buffer.add_char buf '}';
        go ()
      end
      else fail p "'}' must be escaped as '}}' in attribute values"
    end
    else if c = '&' then begin
      parse_entity_into p buf;
      go ()
    end
    else begin
      Buffer.add_char buf (Lexer.raw_next p.lx);
      go ()
    end
  in
  go ();
  flush ();
  List.rev !parts

and parse_entity_into p buf =
  (* at '&' in raw mode *)
  ignore (Lexer.raw_next p.lx);
  let name = ref "" in
  if Lexer.raw_peek p.lx = '#' then begin
    ignore (Lexer.raw_next p.lx);
    let hex = Lexer.raw_peek p.lx = 'x' in
    if hex then ignore (Lexer.raw_next p.lx);
    let digits = Buffer.create 8 in
    while Lexer.raw_peek p.lx <> ';' && Lexer.raw_peek p.lx <> '\000' do
      Buffer.add_char digits (Lexer.raw_next p.lx)
    done;
    Lexer.raw_expect p.lx ";";
    let code =
      try
        int_of_string
          (if hex then "0x" ^ Buffer.contents digits else Buffer.contents digits)
      with _ -> fail p "invalid character reference"
    in
    if code < 128 then Buffer.add_char buf (Char.chr code)
    else Buffer.add_string buf (Printf.sprintf "&#%d;" code)
  end
  else begin
    while Lexer.raw_peek p.lx <> ';' && Lexer.raw_peek p.lx <> '\000' do
      name := !name ^ String.make 1 (Lexer.raw_next p.lx)
    done;
    Lexer.raw_expect p.lx ";";
    match !name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "quot" -> Buffer.add_char buf '"'
    | "apos" -> Buffer.add_char buf '\''
    | n -> fail p (Printf.sprintf "unknown entity &%s;" n)
  end

and parse_element_content p =
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let buf_has_entity = ref false in
  let flush () =
    if Buffer.length buf > 0 then begin
      let s = Buffer.contents buf in
      let ws_only = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') s in
      (* boundary-space strip (the default): drop whitespace-only runs
         unless they contain character/entity references *)
      if not (ws_only && not !buf_has_entity) then
        parts := Ast.Content_text s :: !parts;
      Buffer.clear buf;
      buf_has_entity := false
    end
  in
  let rec go () =
    if Lexer.raw_looking_at p.lx "</" then flush ()
    else
      match Lexer.raw_peek p.lx with
      | '\000' -> fail p "unterminated element constructor"
      | '<' ->
        if Lexer.raw_looking_at p.lx "<![CDATA[" then begin
          Lexer.raw_expect p.lx "<![CDATA[";
          while not (Lexer.raw_looking_at p.lx "]]>") do
            let c = Lexer.raw_next p.lx in
            if c = '\000' then fail p "unterminated CDATA section";
            Buffer.add_char buf c
          done;
          Lexer.raw_expect p.lx "]]>";
          buf_has_entity := true;
          go ()
        end
        else begin
          flush ();
          let node = parse_direct_constructor_raw p in
          parts := Ast.Content_node node :: !parts;
          go ()
        end
      | '{' ->
        ignore (Lexer.raw_next p.lx);
        if Lexer.raw_peek p.lx = '{' then begin
          ignore (Lexer.raw_next p.lx);
          Buffer.add_char buf '{';
          go ()
        end
        else begin
          flush ();
          let e = parse_expr p in
          expect_tok p Lexer.RBRACE "'}'";
          parts := Ast.Content_expr e :: !parts;
          go ()
        end
      | '}' ->
        ignore (Lexer.raw_next p.lx);
        if Lexer.raw_peek p.lx = '}' then begin
          ignore (Lexer.raw_next p.lx);
          Buffer.add_char buf '}';
          go ()
        end
        else fail p "'}' must be escaped as '}}' in element content"
      | '&' ->
        parse_entity_into p buf;
        buf_has_entity := true;
        go ()
      | _ ->
        Buffer.add_char buf (Lexer.raw_next p.lx);
        go ()
  in
  go ();
  List.rev !parts

and parse_direct_constructor_raw p =
  (* like parse_direct_constructor but we're already in raw mode at '<' *)
  if Lexer.raw_looking_at p.lx "<!--" then begin
    Lexer.raw_expect p.lx "<!--";
    let buf = Buffer.create 16 in
    while not (Lexer.raw_looking_at p.lx "-->") do
      let c = Lexer.raw_next p.lx in
      if c = '\000' then fail p "unterminated comment constructor";
      Buffer.add_char buf c
    done;
    Lexer.raw_expect p.lx "-->";
    Ast.Comp_comment (Ast.Literal (Atomic.String (Buffer.contents buf)))
  end
  else if Lexer.raw_looking_at p.lx "<?" then begin
    Lexer.raw_expect p.lx "<?";
    let target = Lexer.raw_ncname p.lx in
    Lexer.raw_skip_ws p.lx;
    let buf = Buffer.create 16 in
    while not (Lexer.raw_looking_at p.lx "?>") do
      let c = Lexer.raw_next p.lx in
      if c = '\000' then fail p "unterminated processing-instruction";
      Buffer.add_char buf c
    done;
    Lexer.raw_expect p.lx "?>";
    Ast.Comp_pi
      ( Ast.Static_name (Qname.local target),
        Ast.Literal (Atomic.String (Buffer.contents buf)) )
  end
  else parse_direct_element p

(* ------------------------------------------------------------------ *)
(* Prolog                                                               *)
(* ------------------------------------------------------------------ *)

let parse_string_literal p =
  match peek p with
  | Lexer.STR s ->
    advance p;
    s
  | t -> fail p (Printf.sprintf "expected a string literal, found %s" (tok_desc t))

let parse_param_list p =
  expect_tok p Lexer.LPAR "'('";
  let params = ref [] in
  if peek p <> Lexer.RPAR then begin
    let rec go () =
      let v = parse_var_qname p in
      let ty =
        if at_keyword p "as" then begin
          advance p;
          Some (parse_sequence_type p)
        end
        else None
      in
      params := (v, ty) :: !params;
      if peek p = Lexer.COMMA then begin
        advance p;
        go ()
      end
    in
    go ()
  end;
  expect_tok p Lexer.RPAR "')'";
  List.rev !params

type prolog_step = No_item | Consumed | Item of Ast.prolog_item

let expect_semi p = expect_tok p Lexer.SEMI "';'"

let try_parse_prolog_item p =
  if at_keyword p "import" then begin
    advance p;
    (* import module namespace p = "uri" (at "loc")? ; *)
    (* import schema ... ; — accepted and recorded as a namespace decl *)
    let kind =
      if try_keyword p "module" then `Module
      else begin
        eat_keyword p "schema";
        `Schema
      end
    in
    let item =
      if try_keyword p "namespace" then begin
        let prefix =
          match parse_qname_lexical p with
          | None, n -> n
          | Some _, _ -> fail p "namespace prefix must be an NCName"
        in
        expect_tok p Lexer.EQUALS "'='";
        let uri = parse_string_literal p in
        Context.declare_ns p.st prefix uri;
        if kind = `Module then
          Item (Ast.P_import { prefix = Some prefix; uri })
        else Consumed
      end
      else begin
        let uri = parse_string_literal p in
        if kind = `Module then Item (Ast.P_import { prefix = None; uri })
        else Consumed
      end
    in
    if try_keyword p "at" then ignore (parse_string_literal p);
    expect_semi p;
    item
  end
  else if at_keyword p "declare" then begin
    match peek2 p with
    | Lexer.NAME (None, "namespace") ->
      advance p;
      advance p;
      let prefix =
        match parse_qname_lexical p with
        | None, n -> n
        | Some _, _ -> fail p "namespace prefix must be an NCName"
      in
      expect_tok p Lexer.EQUALS "'='";
      let uri = parse_string_literal p in
      Context.declare_ns p.st prefix uri;
      expect_semi p;
      Consumed
    | Lexer.NAME (None, "default") ->
      advance p;
      advance p;
      if try_keyword p "element" then begin
        eat_keyword p "namespace";
        p.st.Context.default_elem_ns <- parse_string_literal p
      end
      else if try_keyword p "function" then begin
        eat_keyword p "namespace";
        p.st.Context.default_fun_ns <- parse_string_literal p
      end
      else if try_keyword p "collation" then ignore (parse_string_literal p)
      else if try_keyword p "order" then begin
        (* declare default order empty greatest|least *)
        eat_keyword p "empty";
        if not (try_keyword p "greatest") then eat_keyword p "least"
      end
      else fail p "expected 'element', 'function', 'collation' or 'order'";
      expect_semi p;
      Consumed
    | Lexer.NAME (None, "boundary-space") ->
      advance p;
      advance p;
      if not (try_keyword p "strip") then eat_keyword p "preserve";
      expect_semi p;
      Consumed
    | Lexer.NAME (None, ("ordering" | "construction" | "copy-namespaces")) ->
      advance p;
      advance p;
      (* accepted, values ignored: skip tokens to ';' *)
      while peek p <> Lexer.SEMI && peek p <> Lexer.EOF do advance p done;
      expect_semi p;
      Consumed
    | Lexer.NAME (None, "option") ->
      advance p;
      advance p;
      ignore (parse_qname_lexical p);
      ignore (parse_string_literal p);
      expect_semi p;
      Consumed
    | Lexer.NAME (None, "variable") ->
      advance p;
      advance p;
      let name = parse_var_qname p in
      let ty =
        if at_keyword p "as" then begin
          advance p;
          Some (parse_sequence_type p)
        end
        else None
      in
      let value =
        if peek p = Lexer.ASSIGN then begin
          advance p;
          Some (parse_expr_single p)
        end
        else begin
          eat_keyword p "external";
          None
        end
      in
      expect_semi p;
      Item (Ast.P_variable { vd_name = name; vd_type = ty; vd_value = value })
    | Lexer.NAME (None, "function") ->
      advance p;
      advance p;
      let name = parse_fun_qname p in
      let params = parse_param_list p in
      let ret =
        if at_keyword p "as" then begin
          advance p;
          Some (parse_sequence_type p)
        end
        else None
      in
      let body =
        if peek p = Lexer.LBRACE then Some (parse_enclosed_expr p)
        else begin
          eat_keyword p "external";
          None
        end
      in
      expect_semi p;
      Item
        (Ast.P_function
           { fd_name = name; fd_params = params; fd_return = ret; fd_body = body })
    | _ -> No_item
  end
  else No_item

let parse_prolog p =
  let items = ref [] in
  let rec go () =
    match try_parse_prolog_item p with
    | No_item -> ()
    | Consumed -> go ()
    | Item i ->
      items := i :: !items;
      go ()
  in
  go ();
  List.rev !items

let parse_module st src =
  let p = create st src in
  let prolog = parse_prolog p in
  let body = parse_expr p in
  expect_eof p;
  { Ast.prolog; body }

let parse_expression st src =
  let p = create st src in
  let e = parse_expr p in
  expect_eof p;
  e
