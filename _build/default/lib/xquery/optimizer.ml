open Xdm

type stats = { folded : int; inlined : int; joins : int; pushed : int }

let zero_stats = { folded = 0; inlined = 0; joins = 0; pushed = 0 }

(* Bottom-up structural map over immediate subexpressions. *)
let map_sub (f : Ast.expr -> Ast.expr) (e : Ast.expr) : Ast.expr =
  let open Ast in
  let map_name_spec = function
    | Static_name q -> Static_name q
    | Dynamic_name e -> Dynamic_name (f e)
  in
  match e with
  | Literal _ | Var _ | Context_item | Root_expr -> e
  | Seq_expr es -> Seq_expr (List.map f es)
  | Range (a, b) -> Range (f a, f b)
  | Arith (op, a, b) -> Arith (op, f a, f b)
  | Neg a -> Neg (f a)
  | And (a, b) -> And (f a, f b)
  | Or (a, b) -> Or (f a, f b)
  | General_cmp (op, a, b) -> General_cmp (op, f a, f b)
  | Value_cmp (op, a, b) -> Value_cmp (op, f a, f b)
  | Node_is (a, b) -> Node_is (f a, f b)
  | Node_before (a, b) -> Node_before (f a, f b)
  | Node_after (a, b) -> Node_after (f a, f b)
  | Union (a, b) -> Union (f a, f b)
  | Intersect (a, b) -> Intersect (f a, f b)
  | Except (a, b) -> Except (f a, f b)
  | Instance_of (a, t) -> Instance_of (f a, t)
  | Treat_as (a, t) -> Treat_as (f a, t)
  | Castable_as (a, t, o) -> Castable_as (f a, t, o)
  | Cast_as (a, t, o) -> Cast_as (f a, t, o)
  | If_expr (c, t, e2) -> If_expr (f c, f t, f e2)
  | Typeswitch (operand, cases, (dvar, default)) ->
    Typeswitch
      ( f operand,
        List.map (fun c -> { c with case_return = f c.case_return }) cases,
        (dvar, f default) )
  | Flwor (clauses, ret) ->
    let clauses =
      List.map
        (function
          | For_clause bs ->
            For_clause
              (List.map (fun b -> { b with for_expr = f b.for_expr }) bs)
          | Let_clause bs ->
            Let_clause
              (List.map (fun b -> { b with let_expr = f b.let_expr }) bs)
          | Where_clause e -> Where_clause (f e)
          | Order_clause (s, specs) ->
            Order_clause
              (s, List.map (fun sp -> { sp with key = f sp.key }) specs)
          | Join_clause j ->
            Join_clause
              {
                j with
                join_source = f j.join_source;
                join_build_key = f j.join_build_key;
                join_probe_key = f j.join_probe_key;
              })
        clauses
    in
    Flwor (clauses, f ret)
  | Quantified (q, bs, body) ->
    Quantified (q, List.map (fun (v, t, e) -> (v, t, f e)) bs, f body)
  | Path (a, b) -> Path (f a, f b)
  | Step (ax, nt, preds) -> Step (ax, nt, List.map f preds)
  | Filter (p, preds) -> Filter (f p, List.map f preds)
  | Call (n, args) -> Call (n, List.map f args)
  | Elem_ctor (n, attrs, contents) ->
    Elem_ctor
      ( n,
        List.map
          (fun (an, parts) ->
            ( an,
              List.map
                (function
                  | Attr_str s -> Attr_str s
                  | Attr_expr e -> Attr_expr (f e))
                parts ))
          attrs,
        List.map
          (function
            | Content_text s -> Content_text s
            | Content_expr e -> Content_expr (f e)
            | Content_node e -> Content_node (f e))
          contents )
  | Comp_elem (ns, e) -> Comp_elem (map_name_spec ns, f e)
  | Comp_attr (ns, e) -> Comp_attr (map_name_spec ns, f e)
  | Comp_text e -> Comp_text (f e)
  | Comp_doc e -> Comp_doc (f e)
  | Comp_comment e -> Comp_comment (f e)
  | Comp_pi (ns, e) -> Comp_pi (map_name_spec ns, f e)
  | Insert (p, s, t) -> Insert (p, f s, f t)
  | Delete t -> Delete (f t)
  | Replace { value_of; target; source } ->
    Replace { value_of; target = f target; source = f source }
  | Rename (t, ns) -> Rename (f t, map_name_spec ns)
  | Transform (cs, m, r) ->
    Transform (List.map (fun (v, e) -> (v, f e)) cs, f m, f r)

(* Substitute [Var v := replacement], stopping under rebindings of [v]. *)
let rec subst v replacement (e : Ast.expr) : Ast.expr =
  let open Ast in
  match e with
  | Var q when Qname.equal q v -> replacement
  | Flwor (clauses, ret) ->
    let rec go acc shadowed = function
      | [] ->
        let ret = if shadowed then ret else subst v replacement ret in
        Flwor (List.rev acc, ret)
      | c :: rest ->
        if shadowed then go (c :: acc) true rest
        else
          let c', now_shadowed =
            match c with
            | For_clause bs ->
              let bs', sh =
                List.fold_left
                  (fun (bs, sh) b ->
                    let b' =
                      if sh then b
                      else { b with for_expr = subst v replacement b.for_expr }
                    in
                    let sh' =
                      sh || Qname.equal b.for_var v
                      || (match b.for_pos with
                         | Some p -> Qname.equal p v
                         | None -> false)
                    in
                    (b' :: bs, sh'))
                  ([], false) bs
              in
              (For_clause (List.rev bs'), sh)
            | Let_clause bs ->
              let bs', sh =
                List.fold_left
                  (fun (bs, sh) b ->
                    let b' =
                      if sh then b
                      else { b with let_expr = subst v replacement b.let_expr }
                    in
                    (b' :: bs, sh || Qname.equal b.let_var v))
                  ([], false) bs
              in
              (Let_clause (List.rev bs'), sh)
            | Where_clause e -> (Where_clause (subst v replacement e), false)
            | Order_clause (s, specs) ->
              ( Order_clause
                  ( s,
                    List.map
                      (fun sp -> { sp with key = subst v replacement sp.key })
                      specs ),
                false )
            | Join_clause j ->
              ( Join_clause
                  {
                    j with
                    join_source = subst v replacement j.join_source;
                    join_probe_key = subst v replacement j.join_probe_key;
                    join_build_key =
                      (if Qname.equal j.join_var v then j.join_build_key
                       else subst v replacement j.join_build_key);
                  },
                Qname.equal j.join_var v )
          in
          go (c' :: acc) now_shadowed rest
    in
    go [] false clauses
  | Quantified (q, bs, body) ->
    let bs', shadowed =
      List.fold_left
        (fun (bs, sh) (bv, t, be) ->
          let be' = if sh then be else subst v replacement be in
          ((bv, t, be') :: bs, sh || Qname.equal bv v))
        ([], false) bs
    in
    let body = if shadowed then body else subst v replacement body in
    Quantified (q, List.rev bs', body)
  | Transform (cs, m, r) ->
    let cs', shadowed =
      List.fold_left
        (fun (cs, sh) (cv, ce) ->
          let ce' = if sh then ce else subst v replacement ce in
          ((cv, ce') :: cs, sh || Qname.equal cv v))
        ([], false) cs
    in
    if shadowed then Transform (List.rev cs', m, r)
    else
      Transform (List.rev cs', subst v replacement m, subst v replacement r)
  | Typeswitch (operand, cases, (dvar, default)) ->
    let operand = subst v replacement operand in
    let cases =
      List.map
        (fun c ->
          match c.case_var with
          | Some cv when Qname.equal cv v -> c
          | _ -> { c with case_return = subst v replacement c.case_return })
        cases
    in
    let default =
      match dvar with
      | Some dv when Qname.equal dv v -> default
      | _ -> subst v replacement default
    in
    Typeswitch (operand, cases, (dvar, default))
  | e -> map_sub (subst v replacement) e

(* ------------------------------------------------------------------ *)
(* Passes                                                               *)
(* ------------------------------------------------------------------ *)

let is_literal = function Ast.Literal _ -> true | _ -> false

let fold_constants stats e =
  let open Ast in
  let try_arith op a b =
    try Some (Literal (Atomic.arith op a b)) with Atomic.Cast_error _ -> None
  in
  match e with
  | Arith (op, Literal a, Literal b) -> (
    match try_arith op a b with
    | Some e' ->
      incr stats;
      e'
    | None -> e)
  | Neg (Literal a) -> (
    try
      incr stats;
      Literal (Atomic.negate a)
    with Atomic.Cast_error _ -> e)
  | Value_cmp (op, Literal a, Literal b) -> (
    match Atomic.compare_values a b with
    | c ->
      incr stats;
      let r =
        match op with
        | Eq -> c = 0
        | Ne -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
      in
      Literal (Atomic.Boolean r)
    | exception Atomic.Cast_error _ -> e)
  | If_expr (Literal (Atomic.Boolean true), t, _) ->
    incr stats;
    t
  | If_expr (Literal (Atomic.Boolean false), _, f) ->
    incr stats;
    f
  | And (Literal (Atomic.Boolean true), b) ->
    incr stats;
    b
  | And (Literal (Atomic.Boolean false), _) ->
    incr stats;
    Literal (Atomic.Boolean false)
  | Or (Literal (Atomic.Boolean false), b) ->
    incr stats;
    b
  | Or (Literal (Atomic.Boolean true), _) ->
    incr stats;
    Literal (Atomic.Boolean true)
  | Call (q, [ arg ])
    when q.Qname.uri = Qname.fn_ns && q.Qname.local = "boolean" && is_literal arg
    -> (
    match arg with
    | Literal (Atomic.Boolean _) ->
      incr stats;
      arg
    | _ -> e)
  | e -> e

(* Inline lets bound to literals or variable aliases. *)
let inline_lets stats e =
  let open Ast in
  match e with
  | Flwor (clauses, ret) ->
    let rec go = function
      | [] -> ([], ret)
      | Let_clause bs :: rest ->
        let trivial, kept =
          List.partition
            (fun b -> match b.let_expr with
               | Literal _ | Var _ -> b.let_type = None
               | _ -> false)
            bs
        in
        if trivial = [] then
          let rest', ret' = go rest in
          (Let_clause bs :: rest', ret')
        else begin
          let rest', ret' = go rest in
          let apply_subst (cls, r) b =
            incr stats;
            let s e = subst b.let_var b.let_expr e in
            let cls =
              List.map
                (function
                  | For_clause bs ->
                    For_clause
                      (List.map (fun fb -> { fb with for_expr = s fb.for_expr }) bs)
                  | Let_clause bs ->
                    Let_clause
                      (List.map (fun lb -> { lb with let_expr = s lb.let_expr }) bs)
                  | Where_clause e -> Where_clause (s e)
                  | Order_clause (st, specs) ->
                    Order_clause
                      (st, List.map (fun sp -> { sp with key = s sp.key }) specs)
                  | Join_clause j ->
                    Join_clause
                      {
                        j with
                        join_source = s j.join_source;
                        join_build_key = s j.join_build_key;
                        join_probe_key = s j.join_probe_key;
                      })
                cls
            in
            (cls, s r)
          in
          let rest'', ret'' =
            List.fold_left apply_subst (rest', ret') trivial
          in
          if kept = [] then (rest'', ret'')
          else (Let_clause kept :: rest'', ret'')
        end
      | c :: rest ->
        let rest', ret' = go rest in
        (c :: rest', ret')
    in
    let clauses', ret' = go clauses in
    if clauses' = [] then ret' else Flwor (clauses', ret')
  | e -> e

(* Split conjunctive wheres and drop trivially-true ones. *)
let normalize_wheres e =
  let open Ast in
  match e with
  | Flwor (clauses, ret) ->
    let rec split_where cond =
      match cond with
      | And (a, b) -> split_where a @ split_where b
      | c -> [ c ]
    in
    let clauses =
      List.concat_map
        (function
          | Where_clause (Literal (Atomic.Boolean true)) -> []
          | Where_clause (Call (q, []))
            when q.Qname.uri = Qname.fn_ns && q.Qname.local = "true" -> []
          | Where_clause cond ->
            List.map (fun c -> Where_clause c) (split_where cond)
          | c -> [ c ])
        clauses
    in
    Flwor (clauses, ret)
  | e -> e

(* Does [e] reference only the variable [v] (and no context / other free
   vars / positional functions)? *)
let key_over_var v e =
  let fv = Ast.free_vars e in
  (match fv with [ x ] -> Qname.equal x v | _ -> false)
  && not (Ast.uses_context e)

(* Detect equi-joins: for $a in E1 ... for $b in E2 ... where K1($a) eq
   K2($b) — rewrite the second for + where into a hash join clause. *)
let detect_joins stats e =
  let open Ast in
  match e with
  | Flwor (clauses, ret) ->
    (* variables bound before each position *)
    let rec scan prefix_rev bound = function
      | [] -> None
      | (For_clause [ b ] as c) :: rest when b.for_pos = None -> (
        (* look for a where equi-join on b.for_var in the remainder,
           with the other side bound earlier *)
        let rec find_where seen_rev bound_after = function
          | Where_clause cond :: rest2 -> (
            let sides =
              match cond with
              | Value_cmp (Eq, l, r) | General_cmp (Eq, l, r) -> Some (l, r)
              | _ -> None
            in
            match sides with
            | Some (l, r) ->
              let try_match build probe =
                if
                  key_over_var b.for_var build
                  && (match free_vars probe with
                     | [ x ] ->
                       (not (Qname.equal x b.for_var))
                       && List.exists (Qname.equal x) bound
                       && not (List.exists (Qname.equal x) bound_after)
                     | _ -> false)
                  && not (uses_context probe)
                  (* the joined source must not depend on outer vars *)
                  && free_vars b.for_expr = []
                then Some ()
                else None
              in
              let result =
                match try_match l r with
                | Some () -> Some (l, r)
                | None -> (
                  match try_match r l with
                  | Some () -> Some (r, l)
                  | None -> None)
              in
              (match result with
              | Some (build, probe) ->
                incr stats;
                let join =
                  Join_clause
                    {
                      join_var = b.for_var;
                      join_type = b.for_type;
                      join_source = b.for_expr;
                      join_build_key = build;
                      join_probe_key = probe;
                    }
                in
                Some
                  (List.rev prefix_rev
                  @ [ join ]
                  @ List.rev seen_rev
                  @ rest2)
              | None ->
                find_where (Where_clause cond :: seen_rev) bound_after rest2)
            | None ->
              find_where (Where_clause cond :: seen_rev) bound_after rest2)
          | (For_clause bs as c2) :: rest2 ->
            find_where (c2 :: seen_rev)
              (List.map (fun b -> b.for_var) bs @ bound_after)
              rest2
          | (Let_clause bs as c2) :: rest2 ->
            find_where (c2 :: seen_rev)
              (List.map (fun b -> b.let_var) bs @ bound_after)
              rest2
          | c2 :: rest2 -> find_where (c2 :: seen_rev) bound_after rest2
          | [] -> None
        in
        match find_where [] [] rest with
        | Some new_clauses -> Some new_clauses
        | None ->
          scan (c :: prefix_rev) (b.for_var :: bound) rest)
      | (For_clause bs as c) :: rest ->
        scan (c :: prefix_rev) (List.map (fun b -> b.for_var) bs @ bound) rest
      | (Let_clause bs as c) :: rest ->
        scan (c :: prefix_rev) (List.map (fun b -> b.let_var) bs @ bound) rest
      | (Join_clause j as c) :: rest ->
        scan (c :: prefix_rev) (j.join_var :: bound) rest
      | c :: rest -> scan (c :: prefix_rev) bound rest
    in
    (match scan [] [] clauses with
    | Some clauses' -> Flwor (clauses', ret)
    | None -> e)
  | e -> e

(* Push single-variable wheres into the binding for-expression as a
   predicate. *)
let pushdown_predicates stats e =
  let open Ast in
  match e with
  | Flwor (clauses, ret) ->
    let rec go = function
      | (For_clause [ b ] as c) :: rest when b.for_pos = None -> (
        (* find an immediately-reachable where over only b.for_var *)
        let rec take_where seen_rev = function
          | Where_clause cond :: rest2 when key_over_var b.for_var cond ->
            Some (cond, List.rev seen_rev @ rest2)
          | (Where_clause _ as w) :: rest2 -> take_where (w :: seen_rev) rest2
          | rest2 ->
            ignore rest2;
            None
        in
        match take_where [] rest with
        | Some (cond, rest') ->
          incr stats;
          let pred = subst b.for_var Context_item cond in
          let b' = { b with for_expr = Filter (b.for_expr, [ pred ]) } in
          For_clause [ b' ] :: go rest'
        | None -> c :: go rest)
      | c :: rest -> c :: go rest
      | [] -> []
    in
    Flwor (go clauses, ret)
  | e -> e

(* ------------------------------------------------------------------ *)

let optimize_with_stats e =
  let folded = ref 0
  and inlined = ref 0
  and joins = ref 0
  and pushed = ref 0 in
  let rec pass e =
    let e = map_sub pass e in
    let e = fold_constants folded e in
    let e = normalize_wheres e in
    let e = inline_lets inlined e in
    let e = detect_joins joins e in
    let e = pushdown_predicates pushed e in
    e
  in
  let rec fix n e =
    if n = 0 then e
    else
      let before = (!folded, !inlined, !joins, !pushed) in
      let e' = pass e in
      if (!folded, !inlined, !joins, !pushed) = before then e'
      else fix (n - 1) e'
  in
  let e' = fix 4 e in
  ( e',
    { folded = !folded; inlined = !inlined; joins = !joins; pushed = !pushed } )

let optimize e = fst (optimize_with_stats e)

let optimize_decl (d : Ast.function_decl) =
  match d.Ast.fd_body with
  | None -> d
  | Some body -> { d with Ast.fd_body = Some (optimize body) }

let _ = zero_stats
