(** Pretty-printer for XQuery ASTs.

    Produces surface syntax that re-parses to an equivalent AST (modulo
    namespace prefixes, which print in Clark form when the QName lost its
    prefix). Used by the CLI's [--ast] mode, by optimizer tests to assert
    on rewritten query shapes, and for debugging. *)

val expr : Ast.expr -> string
val seqtype : Xdm.Seqtype.t -> string
val function_decl : Ast.function_decl -> string
