(** Pending update lists (XQuery Update Facility subset).

    Updating expressions produce update primitives; nothing is modified
    until {!apply} runs, which checks compatibility and applies the
    primitives in the order prescribed by the XUF specification. The
    XQSE update statement is one snapshot: evaluate, then {!apply}. *)

open Xdm

type primitive =
  | Insert_into of Node.t * Node.t list  (** target, sources *)
  | Insert_first of Node.t * Node.t list
  | Insert_last of Node.t * Node.t list
  | Insert_before of Node.t * Node.t list
  | Insert_after of Node.t * Node.t list
  | Insert_attributes of Node.t * Node.t list
  | Delete_node of Node.t
  | Replace_node of Node.t * Node.t list
  | Replace_value of Node.t * string
  | Rename_node of Node.t * Qname.t

type t = primitive list
(** In evaluation order (oldest first). *)

val apply : t -> unit
(** Apply a pending update list.
    @raise Xdm.Item.Error [err:XUDY0017] when two [Replace_value] target
    the same node, [err:XUDY0016] for duplicate [Replace_node],
    [err:XUDY0015] for duplicate [Rename_node]. *)

val pp_primitive : Format.formatter -> primitive -> unit
