(* The paper's worked example, end to end (Figures 1-4):

   - two relational databases (CUSTOMER+ORDERS, CREDIT_CARD) and a
     credit-rating web service are introspected into data services;
   - the CustomerProfile logical entity service integrates them with the
     Figure 3 XQuery read methods;
   - a client reads a profile into an SDO datagraph, renames the
     customer, and submits the change summary back (Figure 4);
   - ALDSP decomposes the change via lineage analysis into exactly one
     conditioned UPDATE against the one affected source.

   Run with:  dune exec examples/customer_profile.exe *)

open Core
module F = Fixtures.Customer_profile

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let env = F.make ~customers:3 () in
  let ds = env.F.ds in

  section "Design view (Figure 1 stand-in)";
  print_string (Aldsp.Dataspace.describe ds);

  section "The primary read method source (Figure 3)";
  print_endline (String.trim F.profile_source);

  section "getProfileById(\"007\")";
  let dg = F.get_profile_by_id env "007" in
  List.iter
    (fun n -> print_endline (Xdm.Xml_serialize.to_string ~indent:true n))
    (Sdo.roots dg);

  section "Lineage of the primary read function";
  (match Aldsp.Dataspace.lineage_of ds env.F.svc with
  | Ok blk -> print_string (Aldsp.Lineage.describe blk)
  | Error m -> Printf.printf "lineage error: %s\n" m);

  section "Client change + datagraph wire form (Figure 4)";
  Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ] "Carey";
  print_endline (Sdo.serialize dg);

  section "Submit under the read-values concurrency policy";
  let result = Aldsp.Dataspace.submit ds env.F.svc ~policy:Aldsp.Occ.Read_values dg in
  Printf.printf "committed: %b, statements: %d\n"
    result.Aldsp.Dataspace.sr_committed result.Aldsp.Dataspace.sr_statements;
  List.iter (fun s -> Printf.printf "  %s\n" s) result.Aldsp.Dataspace.sr_sql;

  section "Source state after the update";
  List.iter
    (fun row ->
      Printf.printf "CUSTOMER 007: LAST_NAME = %s\n"
        (Relational.Value.to_string
           (Relational.Table.get row env.F.customer "LAST_NAME")))
    (Relational.Table.select env.F.customer
       (Relational.Pred.eq "CID" (Relational.Value.Text "007")));

  section "A conflicting writer makes the resubmission abort";
  let dg2 = F.get_profile_by_id env "007" in
  Sdo.set_leaf dg2 1 [ ("FIRST_NAME", 1) ] "Jim";
  (* another client changes the row in between *)
  ignore
    (Relational.Database.exec env.F.db1
       (Relational.Database.Update
          {
            table = "CUSTOMER";
            set = [ ("FIRST_NAME", Relational.Value.Text "Jimmy") ];
            where = Relational.Pred.eq "CID" (Relational.Value.Text "007");
          }));
  let r2 = Aldsp.Dataspace.submit ds env.F.svc ~policy:Aldsp.Occ.Updated_values dg2 in
  Printf.printf "committed: %b%s\n" r2.Aldsp.Dataspace.sr_committed
    (match r2.Aldsp.Dataspace.sr_reason with
    | Some reason -> " — " ^ reason
    | None -> "");

  section "Nested change: closing an order touches only db1.ORDERS";
  let dg3 = F.get_profile_by_id env "007" in
  Sdo.set_leaf dg3 1 (Sdo.path_of_string "Orders/ORDERS[1]/STATUS") "CLOSED";
  let r3 = Aldsp.Dataspace.submit ds env.F.svc dg3 in
  List.iter (fun s -> Printf.printf "  %s\n" s) r3.Aldsp.Dataspace.sr_sql;

  section "Computed fields are protected";
  let dg4 = F.get_profile_by_id env "007" in
  (match Sdo.set_leaf dg4 1 [ ("CreditRating", 1) ] "850" with
  | () -> (
    match Aldsp.Dataspace.submit ds env.F.svc dg4 with
    | _ -> print_endline "unexpectedly accepted!"
    | exception Aldsp.Decompose.Not_updatable msg ->
      Printf.printf "rejected as expected: %s\n" msg)
  | exception e -> Printf.printf "set_leaf failed: %s\n" (Printexc.to_string e))
