(* A complete data-services workflow written in XQSE — the kind of
   service-layer logic the paper's introduction motivates: an order
   placement procedure that validates stock, writes two tables, handles
   failures with try/catch, and exposes read-only reporting functions
   callable from plain XQuery.

   Run with:  dune exec examples/order_workflow.exe *)

open Core
module R = Relational

let col name col_type nullable = { R.Table.col_name = name; col_type; nullable }

let product_schema =
  {
    R.Table.tbl_name = "PRODUCT";
    columns =
      [
        col "SKU" R.Value.T_text false;
        col "NAME" R.Value.T_text false;
        col "PRICE" R.Value.T_float false;
        col "STOCK" R.Value.T_int false;
      ];
    primary_key = [ "SKU" ];
    foreign_keys = [];
  }

let order_schema =
  {
    R.Table.tbl_name = "SALES_ORDER";
    columns =
      [
        col "OID" R.Value.T_int false;
        col "SKU" R.Value.T_text false;
        col "QTY" R.Value.T_int false;
        col "AMOUNT" R.Value.T_float false;
      ];
    primary_key = [ "OID" ];
    foreign_keys =
      [
        {
          R.Table.fk_columns = [ "SKU" ];
          fk_ref_table = "PRODUCT";
          fk_ref_columns = [ "SKU" ];
        };
      ];
  }

let workflow_source =
  {|
declare namespace product = "ld:shop/PRODUCT";
declare namespace sales_order = "ld:shop/SALES_ORDER";
declare namespace shop = "urn:shop";

(: look one product up; read-only, usable from anywhere :)
declare function shop:product($sku as xs:string) as element(PRODUCT)? {
  (for $p in product:PRODUCT() where $p/SKU eq $sku return $p)[1]
};

(: the order-placement procedure: validates, writes both tables,
   classifies failures :)
declare procedure shop:placeOrder($oid as xs:integer,
                                  $sku as xs:string,
                                  $qty as xs:integer) as element(Receipt) {
  (: block declarations come first, per the paper's grammar (III.B.5) :)
  declare $p := shop:product($sku);
  declare $stock as xs:integer :=
    if (fn:empty($p)) then 0 else xs:integer($p/STOCK);
  declare $amount as xs:double :=
    (if (fn:empty($p)) then 0e0 else xs:double($p/PRICE)) * $qty;
  if ($qty le 0) then
    fn:error(xs:QName("BAD_QUANTITY"), "quantity must be positive");
  if (fn:empty($p)) then
    fn:error(xs:QName("NO_SUCH_PRODUCT"), $sku);
  if ($stock lt $qty) then
    fn:error(xs:QName("OUT_OF_STOCK"),
             fn:concat($sku, ": ", $stock, " left, ", $qty, " requested"));
  try {
    sales_order:createSALES_ORDER(
      <SALES_ORDER>
        <OID>{$oid}</OID><SKU>{$sku}</SKU>
        <QTY>{$qty}</QTY><AMOUNT>{$amount}</AMOUNT>
      </SALES_ORDER>);
    product:updatePRODUCT(
      <PRODUCT>
        <SKU>{$sku}</SKU><NAME>{fn:data($p/NAME)}</NAME>
        <PRICE>{fn:data($p/PRICE)}</PRICE><STOCK>{$stock - $qty}</STOCK>
      </PRODUCT>);
  } catch (* into $e, $m) {
    fn:error(xs:QName("ORDER_FAILED"), fn:concat($e, ": ", $m));
  };
  return value
    <Receipt oid="{$oid}">
      <Item>{fn:data($p/NAME)}</Item>
      <Qty>{$qty}</Qty>
      <Total>{$amount}</Total>
    </Receipt>;
};

(: reporting: a readonly procedure, so it composes with XQuery below :)
declare xqse function shop:revenue() as xs:double {
  declare $total as xs:double := 0;
  iterate $o over sales_order:SALES_ORDER() {
    set $total := $total + xs:double($o/AMOUNT);
  }
  return value $total;
};
|}

let () =
  let db = R.Database.create "shop" in
  let products = R.Database.add_table db product_schema in
  let (_ : R.Table.t) = R.Database.add_table db order_schema in
  R.Table.insert products [| R.Value.Text "KB-1"; Text "Keyboard"; Float 49.0; Int 10 |];
  R.Table.insert products [| R.Value.Text "MS-2"; Text "Mouse"; Float 19.0; Int 3 |];
  let ds = Aldsp.Dataspace.create () in
  ignore (Aldsp.Dataspace.register_database ds db);
  let sess = Aldsp.Dataspace.session ds in
  Xqse.Session.declare_namespace sess "shop" "urn:shop";
  Xqse.Session.load_library sess workflow_source;

  print_endline "--- the XQSE service layer ---";
  print_endline (String.trim workflow_source);

  let place oid sku qty =
    match
      Xqse.Session.eval sess
        (Printf.sprintf "{ return value shop:placeOrder(%d, '%s', %d); }" oid sku qty)
    with
    | receipt ->
      Printf.printf "placed: %s\n" (Xdm.Xml_serialize.seq_to_string receipt)
    | exception Xdm.Item.Error { code; message; _ } ->
      Printf.printf "rejected [%s]: %s\n" (Xdm.Qname.to_string code) message
  in
  print_endline "\n--- placing orders ---";
  place 1 "KB-1" 2;
  place 2 "MS-2" 1;
  place 3 "MS-2" 5 (* only 2 left *);
  place 4 "USB-9" 1 (* unknown *);
  place 5 "KB-1" (-1) (* invalid *);

  print_endline "\n--- stock after the workflow ---";
  List.iter
    (fun row ->
      Printf.printf "  %-6s stock=%s\n"
        (R.Value.to_string (R.Table.get row products "SKU"))
        (R.Value.to_string (R.Table.get row products "STOCK")))
    (R.Table.scan products);

  print_endline "\n--- reporting from plain XQuery (readonly procedure) ---";
  Printf.printf "revenue: %s\n"
    (Xqse.Session.eval_to_string sess "shop:revenue()");
  Printf.printf "orders over $20: %s\n"
    (Xqse.Session.eval_to_string sess
       "count(sales_order:SALES_ORDER()[xs:double(AMOUNT) gt 20])");
  Printf.printf "\nSQL issued to the shop database:\n";
  List.iter (fun s -> Printf.printf "  %s\n" s) (R.Database.sql_log db)
