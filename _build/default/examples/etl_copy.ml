(* Use case 3 (paper section III.D.3): transform and copy.

   A "lightweight ETL" operation: iterate over the Employee service,
   transform each object to the differently-shaped EMP2 layout of a
   second source (splitting the name, resolving the manager's name via
   an auxiliary data-access call), and insert it there.

   Run with:  dune exec examples/etl_copy.exe *)

open Core
module F = Fixtures.Employees
module R = Relational

let () =
  let env = F.make ~employees:15 () in
  let ds = env.F.ds in
  let sess = Aldsp.Dataspace.session ds in
  Xqse.Session.load_library sess F.uc3_etl_source;

  print_endline "--- the XQSE source ---";
  print_endline (String.trim F.uc3_etl_source);

  Printf.printf "\nbefore: EMPLOYEE has %d rows, EMP2 has %d rows\n"
    (R.Table.row_count env.F.employee)
    (R.Table.row_count env.F.emp2);

  let copied =
    Aldsp.Dataspace.call ds
      (Xdm.Qname.make ~uri:F.usecases_ns "copyAllToEMP2")
      []
  in
  Printf.printf "copyAllToEMP2() returned %s\n"
    (Xdm.Xml_serialize.seq_to_string copied);
  Printf.printf "after:  EMPLOYEE has %d rows, EMP2 has %d rows\n"
    (R.Table.row_count env.F.employee)
    (R.Table.row_count env.F.emp2);

  print_endline "\nsample of the transformed rows:";
  List.iteri
    (fun i row ->
      if i < 5 then
        Printf.printf "  %s\n"
          (String.concat " | "
             (Array.to_list (Array.map R.Value.to_string row))))
    (R.Table.scan env.F.emp2);

  print_endline "\nSQL log of the backup database (first 5 statements):";
  List.iteri
    (fun i sql -> if i < 5 then Printf.printf "  %s\n" sql)
    (R.Database.sql_log env.F.backup)
