examples/order_workflow.ml: Aldsp Core List Printf Relational String Xdm Xqse
