examples/etl_copy.mli:
