examples/management_chain.ml: Aldsp Core Fixtures List Printf String Xdm Xqse
