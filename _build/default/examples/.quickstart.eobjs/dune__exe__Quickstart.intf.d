examples/quickstart.mli:
