examples/order_workflow.mli:
