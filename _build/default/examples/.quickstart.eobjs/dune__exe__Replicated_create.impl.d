examples/replicated_create.ml: Aldsp Core Fixtures List Printf Relational String Xdm Xqse
