examples/etl_copy.ml: Aldsp Array Core Fixtures List Printf Relational String Xdm Xqse
