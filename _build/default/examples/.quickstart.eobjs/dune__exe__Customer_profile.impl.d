examples/customer_profile.ml: Aldsp Core Fixtures List Printexc Printf Relational Sdo String Xdm
