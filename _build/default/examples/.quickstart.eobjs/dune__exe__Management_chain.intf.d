examples/management_chain.mli:
