examples/user_defined_delete.mli:
