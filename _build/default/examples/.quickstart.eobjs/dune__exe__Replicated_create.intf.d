examples/replicated_create.mli:
