examples/user_defined_delete.ml: Aldsp Core Fixtures List Printf Relational String Xdm Xqse
