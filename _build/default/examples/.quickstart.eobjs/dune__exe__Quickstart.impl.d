examples/quickstart.ml: Core Printf String Xdm Xqse
