(* Quickstart: the XQSE language in five minutes.

   Run with:  dune exec examples/quickstart.exe *)

open Core

let run title src =
  Printf.printf "--- %s ---\n%s\n" title (String.trim src);
  let session = Xqse.Session.create () in
  Xqse.Session.set_trace session (fun m -> Printf.printf "  [trace] %s\n" m);
  (match Xqse.Session.eval session src with
  | result -> Printf.printf "=> %s\n\n" (Xdm.Xml_serialize.seq_to_string result)
  | exception Xdm.Item.Error { code; message; _ } ->
    Printf.printf "=> error %s: %s\n\n" (Xdm.Qname.to_string code) message)

let () =
  (* 1. the time-worn greeting (paper section III.B.7) *)
  run "hello, world" {| { return value "Hello, World"; } |};

  (* 2. plain XQuery still works: a query body may be an expression *)
  run "xquery body"
    {| for $i in 1 to 5 where $i mod 2 eq 1 return $i * $i |};

  (* 3. blocks, assignable variables and while (paper III.B.10) *)
  run "while loop"
    {|
{
  declare $y, $x := 3;
  while ($x lt 100) {
    set $y := ($y, $x);
    set $x := $x * 2;
  }
  return value $y;
}
|};

  (* 4. iterate over a sequence with a positional variable *)
  run "iterate"
    {|
{
  declare $weighted := 0;
  iterate $v at $i over (10, 20, 30) {
    set $weighted := $weighted + $v * $i;
  }
  return value $weighted;
}
|};

  (* 5. try/catch with error variables (paper III.B.13) *)
  run "try/catch"
    {|
{
  declare $x, $y := 0;
  try {
    set $x := $y div 0;
    return value $x;
  } catch (*:* into $e, $m) {
    fn:trace($e, $m);
    return value "Error";
  }
}
|};

  (* 6. procedures: readonly procedures are callable from XQuery *)
  run "readonly procedure (an 'XQSE function')"
    {|
declare xqse function local:fib($n as xs:integer) as xs:integer {
  declare $a := 0, $b := 1, $i := 0;
  while ($i lt $n) {
    declare $t := $a + $b;
    set $a := $b;
    set $b := $t;
    set $i := $i + 1;
  }
  return value $a;
};
for $n in 1 to 10 return local:fib($n)
|};

  (* 7. the update statement: one XQuery-Update snapshot per statement
     (paper III.C.14 — the roadmap feature, implemented here) *)
  run "update statement over XUF"
    {|
declare variable $doc :=
  <inventory><item sku="a1"><qty>10</qty></item></inventory>;
{
  replace value of node $doc/item[@sku eq 'a1']/qty with 9;
  insert node <item sku="b2"><qty>5</qty></item> into $doc;
  return value $doc;
}
|};

  (* 8. typeswitch dispatches on dynamic types *)
  run "typeswitch"
    {|
for $v in (42, 'text', <node/>, 3.14)
return typeswitch ($v)
       case xs:integer return "int"
       case xs:string  return "string"
       case element()  return "element"
       default $d      return concat("other: ", string($d))
|};

  (* 9. dates and durations: temporal arithmetic for order-style data *)
  run "durations"
    {|
let $orders := (<o placed="2007-11-28"/>, <o placed="2007-12-08"/>)
for $o in $orders
let $age := current-date() - xs:date($o/@placed)
where $age gt xs:dayTimeDuration('P7D')
return concat('overdue by ', days-from-duration($age) - 7, ' day(s)')
|};

  (* 10. sessions: declarations persist; modules organize them *)
  print_endline "--- sessions and modules ---";
  let session = Xqse.Session.create () in
  Xqse.Session.register_module session "urn:geometry"
    {|
declare namespace g = "urn:geometry";
declare function g:area($w as xs:double, $h as xs:double) as xs:double {
  $w * $h
};
|};
  Printf.printf "=> %s\n"
    (Xqse.Session.eval_to_string session
       {|import module namespace g = "urn:geometry"; g:area(6, 7)|})
