(* Use case 1 (paper section III.D.1): user-defined update.

   ALDSP auto-generates create/update/delete methods taking full data
   service objects. This XQSE procedure augments them with a delete that
   takes just an employee id: it looks the employee up and calls the
   generated delete method on the resulting object.

   Run with:  dune exec examples/user_defined_delete.exe *)

open Core
module F = Fixtures.Employees
module R = Relational

let () =
  let env = F.make ~employees:8 () in
  let ds = env.F.ds in
  Xqse.Session.load_library (Aldsp.Dataspace.session ds) F.uc1_delete_source;

  print_endline "--- the XQSE source ---";
  print_endline (String.trim F.uc1_delete_source);

  print_endline "\n--- the generated methods of the physical service ---";
  (match Aldsp.Dataspace.find_service ds "hr/EMPLOYEE" with
  | Some svc -> print_string (Aldsp.Data_service.describe svc)
  | None -> print_endline "service not found");

  let delete id =
    Aldsp.Dataspace.call ds
      (Xdm.Qname.make ~uri:F.usecases_ns "deleteByEmployeeID")
      [ Xdm.Item.int id ]
  in
  Printf.printf "\nEMPLOYEE has %d rows\n" (R.Table.row_count env.F.employee);
  ignore (delete 8);
  Printf.printf "after deleteByEmployeeID(8): %d rows\n"
    (R.Table.row_count env.F.employee);
  print_endline "SQL issued:";
  List.iter
    (fun s -> Printf.printf "  %s\n" s)
    (List.filteri
       (fun i _ -> i >= R.Database.log_size env.F.hr - 1)
       (R.Database.sql_log env.F.hr));

  print_endline "\n--- deleting a missing employee raises the custom error ---";
  (try ignore (delete 8)
   with Xdm.Item.Error { code; message; _ } ->
     Printf.printf "caught %s: %s\n" (Xdm.Qname.to_string code) message)
