(* Use case 2 (paper section III.D.2): imperative computation.

   Some computations are easier to express procedurally: the management
   chain of an employee walks the manager hierarchy with a while loop.
   Because the procedure is declared readonly ("declare xqse function"),
   it is also callable from plain XQuery.

   Run with:  dune exec examples/management_chain.exe *)

open Core
module F = Fixtures.Employees

let () =
  let env = F.make ~employees:20 ~fanout:3 () in
  let ds = env.F.ds in
  let sess = Aldsp.Dataspace.session ds in
  Xqse.Session.load_library sess F.uc2_chain_source;

  print_endline "--- the XQSE source ---";
  print_endline (String.trim F.uc2_chain_source);

  print_endline "\n--- chains, called as a procedure ---";
  List.iter
    (fun id ->
      let chain =
        Aldsp.Dataspace.call ds
          (Xdm.Qname.make ~uri:F.usecases_ns "getManagementChain")
          [ Xdm.Item.int id ]
      in
      let names =
        List.map
          (fun item ->
            match item with
            | Xdm.Item.Node n ->
              Xdm.Node.string_value
                (List.find
                   (fun c ->
                     match Xdm.Node.name c with
                     | Some q -> q.Xdm.Qname.local = "Name"
                     | None -> false)
                   (Xdm.Node.children n))
            | Xdm.Item.Atomic _ -> "?")
          chain
      in
      Printf.printf "employee %2d: %s\n" id (String.concat " -> " names))
    [ 20; 13; 7; 1 ];

  print_endline "\n--- the same function used from XQuery ---";
  let q =
    {|for $e in ens1:getAll()
  let $depth := count(uc:getManagementChain(xs:integer($e/EmployeeID)))
  order by $depth descending, xs:integer($e/EmployeeID)
  return <depth id="{$e/EmployeeID}">{$depth}</depth>|}
  in
  print_endline q;
  let result = Xqse.Session.eval sess q in
  Printf.printf "=> %s\n" (Xdm.Xml_serialize.seq_to_string result)
