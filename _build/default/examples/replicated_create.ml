(* Use case 4 (paper section III.D.4): augmenting ALDSP C/U/D behavior.

   A replicating create method writes every new employee to both
   sources, wrapping each source's failures in a distinguishable error
   (PRIMARY_CREATE_FAILURE / SECONDARY_CREATE_FAILURE) with try/catch.

   Run with:  dune exec examples/replicated_create.exe *)

open Core
module F = Fixtures.Employees
module R = Relational

let employee_xml id name =
  List.hd
    (Xdm.Xml_parse.parse_fragment
       (Printf.sprintf
          {|<e:Employee xmlns:e="urn:employees"><EmployeeID>%d</EmployeeID><Name>%s</Name><DeptNo>10</DeptNo><ManagerID>1</ManagerID><Salary>55000</Salary></e:Employee>|}
          id name))

let () =
  let env = F.make ~employees:5 () in
  let ds = env.F.ds in
  let sess = Aldsp.Dataspace.session ds in
  Xqse.Session.load_library sess F.uc3_etl_source;
  (* uc4 uses uc:transformToEMP2 from uc3 *)
  Xqse.Session.load_library sess F.uc4_replicate_source;

  print_endline "--- the XQSE source ---";
  print_endline (String.trim F.uc4_replicate_source);

  let create emps =
    Aldsp.Dataspace.call ds
      (Xdm.Qname.make ~uri:F.usecases_ns "create")
      [ List.map (fun n -> Xdm.Item.Node n) emps ]
  in

  print_endline "\n--- replicate two new employees ---";
  let keys = create [ employee_xml 100 "Zara Quinn"; employee_xml 101 "Omar Reyes" ] in
  Printf.printf "keys: %s\n" (Xdm.Xml_serialize.seq_to_string keys);
  Printf.printf "EMPLOYEE has %d rows, EMP2 has %d rows\n"
    (R.Table.row_count env.F.employee)
    (R.Table.row_count env.F.emp2);

  print_endline "\n--- a duplicate id fails in the primary source ---";
  (try ignore (create [ employee_xml 100 "Zara Quinn" ])
   with Xdm.Item.Error { code; message; _ } ->
     Printf.printf "caught %s:\n  %s\n" (Xdm.Qname.to_string code) message);

  print_endline "\n--- a backup-source failure is wrapped separately ---";
  (* sabotage the backup database: the next statement there fails *)
  R.Database.set_fail_statements_after env.F.backup (Some 0);
  (try ignore (create [ employee_xml 102 "Finn Marsh" ])
   with Xdm.Item.Error { code; message; _ } ->
     Printf.printf "caught %s:\n  %s\n" (Xdm.Qname.to_string code) message);
  Printf.printf
    "note the partial effect the paper warns about (III.B.13: side effects \
     are not rolled back): EMPLOYEE has %d rows, EMP2 has %d rows\n"
    (R.Table.row_count env.F.employee)
    (R.Table.row_count env.F.emp2)
