(* Full-corpus differential soundness check, meant for CI's nightly job
   (the in-tree test suite runs the same corpus at its default size on
   every push; this tool makes the size and seed cheap to crank up).

   Every generated program is evaluated through the XQuery engine and
   the XQSE session, each with the optimizer on and off, and — per MODE
   — with the streaming cursor evaluator on and/or forced off. Any
   disagreement in outcome (serialized result, or dynamic error code)
   is reported and fails the run.

   Usage: corpus_check [SIZE] [SEED] [MODE]
     defaults: 500 20260806 both
     MODE: streaming | materialize | both
     (CORPUS_MODE in the environment sets the default MODE) *)

open Core

let outcome f src =
  match f src with
  | v -> Ok v
  | exception Xdm.Item.Error { code; _ } -> Error (Xdm.Qname.to_string code)

let show = function
  | Ok s -> Printf.sprintf "result %S" s
  | Error c -> Printf.sprintf "error %s" c

let () =
  let size =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 500
  in
  let seed =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 20260806
  in
  let mode =
    if Array.length Sys.argv > 3 then Sys.argv.(3)
    else Option.value (Sys.getenv_opt "CORPUS_MODE") ~default:"both"
  in
  let streaming_variants =
    match mode with
    | "streaming" -> [ true ]
    | "materialize" | "materializing" -> [ false ]
    | "both" -> [ true; false ]
    | m ->
      Printf.eprintf
        "unknown mode %S (expected streaming | materialize | both)\n" m;
      exit 2
  in
  let corpus = Fixtures.Gen_xquery.corpus ~seed size in
  let engine optimize streaming src =
    Xquery.Engine.eval_to_string
      (Xquery.Engine.create ~optimize ~streaming ())
      src
  in
  let session optimize streaming =
    let s = Xqse.Session.create ~optimize () in
    Xqse.Session.set_streaming s streaming;
    s
  in
  let tag streaming = if streaming then "streaming" else "materializing" in
  (* shared sessions per layer: program declarations compile against
     copies, so corpus programs cannot leak into each other *)
  let layers =
    List.concat_map
      (fun streaming ->
        [
          ( Printf.sprintf "optimized engine, %s" (tag streaming),
            engine true streaming );
          ( Printf.sprintf "unoptimized engine, %s" (tag streaming),
            engine false streaming );
          ( Printf.sprintf "optimized session, %s" (tag streaming),
            Xqse.Session.eval_to_string (session true streaming) );
          ( Printf.sprintf "unoptimized session, %s" (tag streaming),
            Xqse.Session.eval_to_string (session false streaming) );
        ])
      streaming_variants
  in
  let reference_layer = engine false (List.hd streaming_variants) in
  let failures = ref 0 in
  List.iteri
    (fun i src ->
      let reference = outcome reference_layer src in
      List.iter
        (fun (layer, f) ->
          let got = outcome f src in
          if got <> reference then begin
            incr failures;
            Printf.printf
              "DIVERGENCE at program %d (%s):\n%s\n  reference: %s\n  %s: %s\n"
              i layer src (show reference) layer (show got)
          end)
        layers)
    corpus;
  if !failures = 0 then
    Printf.printf
      "corpus check passed: %d programs, seed %d, %d modes agree\n" size seed
      (List.length layers)
  else begin
    Printf.printf "corpus check FAILED: %d divergences over %d programs\n"
      !failures size;
    exit 1
  end
