(* Full-corpus differential soundness check, meant for CI's nightly job
   (the in-tree test suite runs the same corpus at its default size on
   every push; this tool makes the size and seed cheap to crank up).

   Every generated program is evaluated four ways — XQuery engine and
   XQSE session, each with the optimizer on and off — and any
   disagreement in outcome (serialized result, or dynamic error code) is
   reported and fails the run.

   Usage: corpus_check [SIZE] [SEED]   (defaults: 500 20260806) *)

open Core

let outcome f src =
  match f src with
  | v -> Ok v
  | exception Xdm.Item.Error { code; _ } -> Error (Xdm.Qname.to_string code)

let show = function
  | Ok s -> Printf.sprintf "result %S" s
  | Error c -> Printf.sprintf "error %s" c

let () =
  let size =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 500
  in
  let seed =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 20260806
  in
  let corpus = Fixtures.Gen_xquery.corpus ~seed size in
  let engine optimize src =
    Xquery.Engine.eval_to_string (Xquery.Engine.create ~optimize ()) src
  in
  let session_on = Xqse.Session.create () in
  let session_off = Xqse.Session.create ~optimize:false () in
  let failures = ref 0 in
  List.iteri
    (fun i src ->
      let reference = outcome (engine false) src in
      let check layer f =
        let got = outcome f src in
        if got <> reference then begin
          incr failures;
          Printf.printf
            "DIVERGENCE at program %d (%s):\n%s\n  unoptimized engine: %s\n  %s: %s\n"
            i layer src (show reference) layer (show got)
        end
      in
      check "optimized engine" (engine true);
      check "optimized session"
        (Xqse.Session.eval_to_string session_on);
      check "unoptimized session"
        (Xqse.Session.eval_to_string session_off))
    corpus;
  if !failures = 0 then
    Printf.printf "corpus check passed: %d programs, seed %d, 4 modes agree\n"
      size seed
  else begin
    Printf.printf "corpus check FAILED: %d divergences over %d programs\n"
      !failures size;
    exit 1
  end
