(* Full-corpus differential soundness check, meant for CI's nightly job
   (the in-tree test suite runs the same corpus at its default size on
   every push; this tool makes the size and seed cheap to crank up).

   Every generated program is evaluated through the XQuery engine and
   the XQSE session, each with the optimizer on and off, and — per
   MODE/EVAL — with the streaming cursor evaluator on and/or forced off
   and with closure-compiled plans on and/or off (the compiled axis also
   replays every program through one shared warm-cache session, so cold
   compile, warm cache hit and the tree-walking interpreter must all
   agree). Any disagreement in outcome (serialized result, or dynamic
   error code) is reported and fails the run.

   Usage: corpus_check [SIZE] [SEED] [MODE] [EVAL]
     defaults: 500 20260806 both both
     MODE: streaming | materialize | both
     EVAL: compiled | interpreted | both
     (CORPUS_MODE / CORPUS_EVAL in the environment set the defaults) *)

open Core

let outcome f src =
  match f src with
  | v -> Ok v
  | exception Xdm.Item.Error { code; _ } -> Error (Xdm.Qname.to_string code)

let show = function
  | Ok s -> Printf.sprintf "result %S" s
  | Error c -> Printf.sprintf "error %s" c

let () =
  let size =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 500
  in
  let seed =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 20260806
  in
  let arg_or_env n env default =
    if Array.length Sys.argv > n then Sys.argv.(n)
    else Option.value (Sys.getenv_opt env) ~default
  in
  let mode = arg_or_env 3 "CORPUS_MODE" "both" in
  let eval = arg_or_env 4 "CORPUS_EVAL" "both" in
  let streaming_variants =
    match mode with
    | "streaming" -> [ true ]
    | "materialize" | "materializing" -> [ false ]
    | "both" -> [ true; false ]
    | m ->
      Printf.eprintf
        "unknown mode %S (expected streaming | materialize | both)\n" m;
      exit 2
  in
  let plan_variants =
    match eval with
    | "compiled" -> [ true ]
    | "interpreted" -> [ false ]
    | "both" -> [ true; false ]
    | m ->
      Printf.eprintf
        "unknown eval %S (expected compiled | interpreted | both)\n" m;
      exit 2
  in
  let corpus = Fixtures.Gen_xquery.corpus ~seed size in
  let engine optimize streaming plans src =
    let e = Xquery.Engine.create ~optimize ~streaming () in
    Xquery.Engine.set_plans e plans;
    Xquery.Engine.eval_to_string e src
  in
  let session optimize streaming plans =
    Xqse.Session.create
      ~config:{ Xqse.Session.default_config with optimize; streaming; plans }
      ()
  in
  let tag streaming plans =
    Printf.sprintf "%s, %s"
      (if streaming then "streaming" else "materializing")
      (if plans then "compiled" else "interpreted")
  in
  (* shared sessions per layer: program declarations compile against
     copies, so corpus programs cannot leak into each other — and on the
     compiled axis the shared session doubles as the warm-cache replay
     (the second evaluation of a program must hit its cached plan) *)
  let layers =
    List.concat_map
      (fun streaming ->
        List.concat_map
          (fun plans ->
            let t = tag streaming plans in
            let warm s src =
              let cold = Xqse.Session.eval_to_string s src in
              if not plans then cold
              else begin
                let warm = Xqse.Session.eval_to_string s src in
                if warm <> cold then
                  failwith
                    (Printf.sprintf
                       "warm plan-cache replay diverged on %s: cold %S, warm %S"
                       src cold warm);
                warm
              end
            in
            [
              ( Printf.sprintf "optimized engine, %s" t,
                engine true streaming plans );
              ( Printf.sprintf "unoptimized engine, %s" t,
                engine false streaming plans );
              ( Printf.sprintf "optimized session, %s" t,
                warm (session true streaming plans) );
              ( Printf.sprintf "unoptimized session, %s" t,
                warm (session false streaming plans) );
            ])
          plan_variants)
      streaming_variants
  in
  let reference_layer =
    engine false (List.hd streaming_variants) (List.hd plan_variants)
  in
  let failures = ref 0 in
  List.iteri
    (fun i src ->
      let reference = outcome reference_layer src in
      List.iter
        (fun (layer, f) ->
          let got = outcome f src in
          if got <> reference then begin
            incr failures;
            Printf.printf
              "DIVERGENCE at program %d (%s):\n%s\n  reference: %s\n  %s: %s\n"
              i layer src (show reference) layer (show got)
          end)
        layers)
    corpus;
  if !failures = 0 then
    Printf.printf
      "corpus check passed: %d programs, seed %d, %d modes agree\n" size seed
      (List.length layers)
  else begin
    Printf.printf "corpus check FAILED: %d divergences over %d programs\n"
      !failures size;
    exit 1
  end
