(* Seed-parameterized chaos gate: fan RUNS seeded fault schedules over
   the CustomerProfile submit path and fail if any schedule produces a
   partially committed cross-database change, or if any schedule fails
   to replay identically. Usage: chaos_check [RUNS] [BASE_SEED] [PROFILE] *)

let () =
  let runs = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 50 in
  let base = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1 in
  let profile =
    if Array.length Sys.argv > 3 then
      match Resilience.Plan.profile_of_string Sys.argv.(3) with
      | Some p -> p
      | None ->
        prerr_endline ("unknown profile: " ^ Sys.argv.(3) ^ " (calm|light|heavy)");
        exit 2
    else Resilience.Plan.Heavy
  in
  Printf.printf "chaos_check: %d runs, seeds %d..%d, profile %s\n%!" runs base
    (base + runs - 1)
    (Resilience.Plan.profile_to_string profile);
  let violations = ref 0 and replay_breaks = ref 0 in
  let committed = ref 0 and failed = ref 0 and reads_failed = ref 0 in
  let retries = ref 0 and trips = ref 0 and degraded = ref 0 and injected = ref 0 in
  for seed = base to base + runs - 1 do
    let r1 = Fixtures.Chaos.run ~seed ~profile () in
    let r2 = Fixtures.Chaos.run ~seed ~profile () in
    if r1 <> r2 then begin
      incr replay_breaks;
      Printf.printf "REPLAY MISMATCH seed %d:\n  1st: %s\n  2nd: %s\n" seed
        (Fixtures.Chaos.describe r1) (Fixtures.Chaos.describe r2)
    end;
    List.iter (fun v -> incr violations; print_endline ("VIOLATION " ^ v))
      r1.Fixtures.Chaos.r_violations;
    committed := !committed + r1.r_committed;
    failed := !failed + r1.r_failed;
    reads_failed := !reads_failed + r1.r_read_failures;
    retries := !retries + r1.r_retries;
    trips := !trips + r1.r_trips;
    degraded := !degraded + r1.r_degraded;
    injected := !injected + r1.r_injected
  done;
  Printf.printf
    "totals: %d committed, %d failed, %d read failures, %d retries, %d trips, \
     %d degraded, %d injected\n"
    !committed !failed !reads_failed !retries !trips !degraded !injected;
  if !violations = 0 && !replay_breaks = 0 then begin
    Printf.printf "chaos_check: PASS (0 partial commits, all seeds replayed)\n";
    exit 0
  end
  else begin
    Printf.printf "chaos_check: FAIL (%d violations, %d replay mismatches)\n"
      !violations !replay_breaks;
    exit 1
  end
