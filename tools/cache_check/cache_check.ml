(* Differential cache oracle: replay seeded interleavings of cacheable
   reads and decomposed submits against two identical dataspaces — one
   with the result cache on, one with it off — and fail on any byte
   difference between the two sides (a stale or corrupted cached read)
   or any divergence in submit outcomes. Every schedule is a pure
   function of its seed. Usage: cache_check [RUNS] [BASE_SEED] [OPS] *)

open Core
module FC = Fixtures.Customer_profile
module Det = Fixtures.Det

let pair_query =
  {|let $p := profile:getProfileById("007")
    return fn:concat($p/LAST_NAME, "|",
                     ($p/CreditCards/CREDIT_CARD)[1]/BRAND)|}

type op =
  | Read of string * string  (* label, query *)
  | Submit of string * (string * int) list * string  (* cid, path, value *)

(* one seeded schedule: mostly reads over a few hot entities, with
   submits interleaved that decompose onto CUSTOMER, CREDIT_CARD or
   ORDERS — exercising every eviction footprint the fixture has *)
let schedule ~seed ~ops =
  let rng = Det.make seed in
  List.init ops (fun i ->
      let roll = Det.int rng 100 in
      if roll < 65 then
        match Det.int rng 4 with
        | 0 -> Read ("pair", pair_query)
        | 1 ->
          let cid = Det.pick rng [ "007"; "C1"; "C2"; "C3" ] in
          Read
            ( "profile:" ^ cid,
              Printf.sprintf {|profile:getProfileById("%s")|} cid )
        | 2 -> Read ("count", "fn:count(profile:getProfile())")
        | _ -> Read ("all", "profile:getProfile()")
      else
        match Det.int rng 3 with
        | 0 ->
          let cid = Det.pick rng [ "007"; "C1"; "C2"; "C3" ] in
          Submit
            (cid, [ ("LAST_NAME", 1) ], Printf.sprintf "Name%d_%d" seed i)
        | 1 ->
          Submit
            ( "007",
              [ ("CreditCards", 1); ("CREDIT_CARD", 1); ("BRAND", 1) ],
              Printf.sprintf "BRAND%d_%d" seed i )
        | _ ->
          Submit
            ( "007",
              [ ("Orders", 1); ("ORDERS", 1); ("STATUS", 1) ],
              Det.pick rng [ "OPEN"; "SHIPPED"; "CLOSED" ] ))

let apply_read env q = Xqse.Session.eval_to_string (Aldsp.Dataspace.session env.FC.ds) q

let apply_submit env cid path value =
  let dg = FC.get_profile_by_id env cid in
  Sdo.set_leaf dg 1 path value;
  (Aldsp.Dataspace.submit env.FC.ds env.FC.svc dg).Aldsp.Dataspace.sr_committed

type run_result = {
  r_violations : string list;
  r_reads : int;
  r_submits : int;
  r_hits : int;
  r_evicts : int;
}

let run ~seed ~ops =
  let env_off = FC.make ~customers:3 () in
  let instr = Instr.create () in
  Instr.preregister instr;
  Instr.enable instr;
  let env_on = FC.make ~customers:3 ~instr () in
  ignore (Aldsp.Dataspace.enable_result_cache env_on.FC.ds);
  let violations = ref [] and reads = ref 0 and submits = ref 0 in
  List.iteri
    (fun i op ->
      match op with
      | Read (label, q) ->
        incr reads;
        let off = apply_read env_off q and on = apply_read env_on q in
        if off <> on then
          violations :=
            Printf.sprintf "seed %d op %d (%s): cached read diverged" seed i
              label
            :: !violations
      | Submit (cid, path, value) ->
        incr submits;
        let off = apply_submit env_off cid path value in
        let on = apply_submit env_on cid path value in
        if off <> on then
          violations :=
            Printf.sprintf "seed %d op %d: submit outcomes diverged (%b/%b)"
              seed i off on
            :: !violations)
    (schedule ~seed ~ops);
  (* closing sweep: the full materialized view must agree byte for byte *)
  let off = apply_read env_off "profile:getProfile()" in
  let on = apply_read env_on "profile:getProfile()" in
  if off <> on then
    violations :=
      Printf.sprintf "seed %d: final sweep diverged" seed :: !violations;
  let c name =
    Option.value ~default:0
      (List.assoc_opt name (Instr.stats instr).Instr.counters)
  in
  {
    r_violations = List.rev !violations;
    r_reads = !reads;
    r_submits = !submits;
    r_hits = c Instr.K.cache_hit;
    r_evicts = c Instr.K.cache_evict;
  }

let () =
  let runs = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 100 in
  let base = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 1 in
  let ops = if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3) else 30 in
  Printf.printf "cache_check: %d runs, seeds %d..%d, %d ops each\n%!" runs base
    (base + runs - 1) ops;
  let violations = ref 0 in
  let reads = ref 0 and submits = ref 0 and hits = ref 0 and evicts = ref 0 in
  for seed = base to base + runs - 1 do
    let r = run ~seed ~ops in
    List.iter
      (fun v ->
        incr violations;
        print_endline ("STALE " ^ v))
      r.r_violations;
    reads := !reads + r.r_reads;
    submits := !submits + r.r_submits;
    hits := !hits + r.r_hits;
    evicts := !evicts + r.r_evicts
  done;
  Printf.printf "totals: %d reads, %d submits, %d cache hits, %d evictions\n"
    !reads !submits !hits !evicts;
  (* a run that never hits the cache proves nothing — fail it too *)
  if !violations = 0 && !hits > 0 then begin
    Printf.printf "cache_check: PASS (0 stale reads, cache exercised)\n";
    exit 0
  end
  else begin
    Printf.printf "cache_check: FAIL (%d divergences, %d hits)\n" !violations
      !hits;
    exit 1
  end
