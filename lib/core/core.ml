(** Umbrella module for the XQSE/ALDSP reproduction: re-exports every
    component library under one roof.

    - {!Xdm} — the XQuery Data Model (nodes, atomics, sequences, XML
      parsing/serialization, schema subset, sequence types)
    - {!Xquery} — the XQuery 1.0 subset engine with the XUF subset and
      the rewrite optimizer
    - {!Xqse} — the XQuery Scripting Extension (the paper's contribution)
    - {!Relational} — the in-memory relational substrate with SQL
      generation and XA two-phase commit
    - {!Webservice} — simulated document-style web services
    - {!Sdo} — Service Data Objects datagraphs and change summaries
    - {!Aldsp} — the data services platform: introspection, logical
      services, lineage, update decomposition, optimistic concurrency
    - {!Resilience} — source resilience: deterministic fault injection,
      retry/backoff policies and circuit breakers
    - {!Fixtures} — the paper's worked scenarios (customer profile,
      employees) shared by examples, tests and benches
    - {!Server} — the concurrent query server: worker-pool over domains,
      read/write source lock, seeded open-loop workloads
    - {!Cache} — the lineage-invalidated result cache for pure
      data-service reads
    - {!Instr} — execution instrumentation (spans, counters, per-query
      stats) shared by every layer *)

module Instr = Instr
module Cache = Cache
module Xdm = Xdm
module Xquery = Xquery
module Xqse = Xqse
module Relational = Relational
module Webservice = Webservice
module Sdo = Sdo
module Aldsp = Aldsp
module Resilience = Resilience
module Fixtures = Fixtures
module Server = Server
