type sink =
  | Null
  | Text of (string -> unit)
  | Json of (string -> unit)

type open_span = {
  sp_id : int;
  sp_parent : int;
  sp_depth : int;
  sp_name : string;
  sp_attrs : (string * string) list;
  sp_start : float;  (* absolute ms *)
}

(* Domain safety: a handle is shared by every component of a session —
   and, under the server, by every worker domain running against the
   shared dataspace. Counters and timers are atomics so concurrent bumps
   never lose increments; the name->cell tables and first-seen order
   lists are guarded by a per-handle mutex (cell *lookup* takes the lock,
   the increment itself is lock-free on the atomic). The span stack is
   inherently per-control-flow, so it lives in domain-local storage keyed
   by handle id: two domains tracing through one handle each see their
   own stack and can never corrupt the other's nesting. *)
type t = {
  mutable on : bool;
  mutable sink : sink;
  id : int;  (* key into each domain's local span-stack table *)
  lock : Mutex.t;
  counters : (string, int Atomic.t) Hashtbl.t;
  mutable counter_order : string list;  (* reverse first-seen *)
  timers : (string, float Atomic.t) Hashtbl.t;
  mutable timer_order : string list;  (* reverse first-seen *)
  next_span : int Atomic.t;
  epoch : float;  (* absolute ms at creation; span start times are relative *)
  locked : bool;  (* the shared [disabled] handle must stay off *)
}

let now_ms () = Unix.gettimeofday () *. 1000.
let next_id = Atomic.make 0

let make ~locked sink =
  {
    on = false;
    sink;
    id = Atomic.fetch_and_add next_id 1;
    lock = Mutex.create ();
    counters = Hashtbl.create 32;
    counter_order = [];
    timers = Hashtbl.create 16;
    timer_order = [];
    next_span = Atomic.make 0;
    epoch = now_ms ();
    locked;
  }

let create ?(sink = Null) () = make ~locked:false sink
let disabled = make ~locked:true Null

let enable t =
  if t.locked then
    invalid_arg "Instr.enable: the shared disabled handle cannot be enabled";
  t.on <- true

let disable t = t.on <- false
let enabled t = t.on
let set_sink t sink = t.sink <- sink
let sink t = t.sink
let noting t = t.on && (match t.sink with Null -> false | Text _ | Json _ -> true)

let counter t name =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> r
      | None ->
        let r = Atomic.make 0 in
        Hashtbl.replace t.counters name r;
        t.counter_order <- name :: t.counter_order;
        r)

let timer t name =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.timers name with
      | Some r -> r
      | None ->
        let r = Atomic.make 0. in
        Hashtbl.replace t.timers name r;
        t.timer_order <- name :: t.timer_order;
        r)

let rec atomic_add_float a d =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. d)) then atomic_add_float a d

let bump t ?(n = 1) name =
  if t.on then ignore (Atomic.fetch_and_add (counter t name) n)

(* Accumulate an externally-measured duration into a named timer — for
   spans whose clock is not this process's wall clock (e.g. a request's
   consumed deadline budget, part virtual, part wall). *)
let add_ms t name ms = if t.on then atomic_add_float (timer t name) ms

(* ---- span stacks (domain-local) ---- *)

let stacks_key : (int, open_span list ref) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let stack t =
  let tbl = Domain.DLS.get stacks_key in
  match Hashtbl.find_opt tbl t.id with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace tbl t.id r;
    r

(* ---- emission ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let depth t = List.length !(stack t)

let note t msg =
  if t.on then
    match t.sink with
    | Null -> ()
    | Text out -> out (String.make (2 * depth t) ' ' ^ msg)
    | Json out ->
      out
        (Printf.sprintf {|{"type":"note","depth":%d,"text":"%s"}|} (depth t)
           (json_escape msg))

let emit_span t sp dur =
  match t.sink with
  | Null -> ()
  | Text out ->
    let attrs =
      match sp.sp_attrs with
      | [] -> ""
      | l ->
        " " ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) l)
    in
    out
      (Printf.sprintf "%s%s%s (%.3fms)"
         (String.make (2 * sp.sp_depth) ' ')
         sp.sp_name attrs dur)
  | Json out ->
    let attrs =
      String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf {|"%s":"%s"|} (json_escape k) (json_escape v))
           sp.sp_attrs)
    in
    out
      (Printf.sprintf
         {|{"type":"span","id":%d,"parent":%d,"depth":%d,"name":"%s","attrs":{%s},"start_ms":%.3f,"dur_ms":%.3f}|}
         sp.sp_id sp.sp_parent sp.sp_depth (json_escape sp.sp_name) attrs
         (sp.sp_start -. t.epoch) dur)

let span t ?(attrs = []) name f =
  if not t.on then f ()
  else begin
    let st = stack t in
    let sp =
      {
        sp_id = 1 + Atomic.fetch_and_add t.next_span 1;
        sp_parent = (match !st with [] -> 0 | s :: _ -> s.sp_id);
        sp_depth = List.length !st;
        sp_name = name;
        sp_attrs = attrs;
        sp_start = now_ms ();
      }
    in
    st := sp :: !st;
    let finish () =
      let dur = now_ms () -. sp.sp_start in
      (st := (match !st with _ :: rest -> rest | [] -> []));
      atomic_add_float (timer t name) dur;
      emit_span t sp dur
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* Accumulate wall-clock into a named timer without opening a span: for
   hot, frequently-entered phases (one optimizer pass per fixpoint
   iteration) where a span per entry would drown the trace. *)
let time t name f =
  if not t.on then f ()
  else begin
    let start = now_ms () in
    let finish () = atomic_add_float (timer t name) (now_ms () -. start) in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* ---- snapshots ---- *)

type stats = {
  counters : (string * int) list;
  timers : (string * float) list;
}

let stats (t : t) =
  Mutex.protect t.lock (fun () ->
      {
        counters =
          List.rev_map
            (fun n -> (n, Atomic.get (Hashtbl.find t.counters n)))
            t.counter_order;
        timers =
          List.rev_map
            (fun n -> (n, Atomic.get (Hashtbl.find t.timers n)))
            t.timer_order;
      })

let since t (before : stats) =
  let cur = stats t in
  {
    counters =
      List.map
        (fun (n, v) ->
          (n, v - (match List.assoc_opt n before.counters with
                   | Some b -> b
                   | None -> 0)))
        cur.counters;
    timers =
      List.map
        (fun (n, v) ->
          (n, v -. (match List.assoc_opt n before.timers with
                    | Some b -> b
                    | None -> 0.)))
        cur.timers;
  }

let add_stats (a : stats) (b : stats) =
  let union names extra =
    names @ List.filter (fun n -> not (List.mem n names)) extra
  in
  let cnames = union (List.map fst a.counters) (List.map fst b.counters) in
  let tnames = union (List.map fst a.timers) (List.map fst b.timers) in
  let get0 l n = match List.assoc_opt n l with Some v -> v | None -> 0 in
  let get0f l n = match List.assoc_opt n l with Some v -> v | None -> 0. in
  {
    counters =
      List.map (fun n -> (n, get0 a.counters n + get0 b.counters n)) cnames;
    timers =
      List.map (fun n -> (n, get0f a.timers n +. get0f b.timers n)) tnames;
  }

let reset (t : t) =
  Mutex.protect t.lock (fun () ->
      Hashtbl.iter (fun _ r -> Atomic.set r 0) t.counters;
      Hashtbl.iter (fun _ r -> Atomic.set r 0.) t.timers)

let render ?(times = true) (s : stats) =
  let rows =
    List.map (fun (n, v) -> (n, string_of_int v)) s.counters
    @
    if times then
      List.map
        (fun (n, v) -> ("time." ^ n ^ ".ms", Printf.sprintf "%.3f" v))
        s.timers
    else []
  in
  let width =
    List.fold_left (fun w (n, _) -> max w (String.length n)) 0 rows
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (n, v) -> Printf.bprintf buf "%-*s %10s\n" width n v)
    rows;
  Buffer.contents buf

module K = struct
  let queries_compiled = "queries.compiled"

  (* plan cache: [queries.compiled] counts only *successful* compiles;
     cache hits skip the compile span entirely, so hit + miss = lookups
     and miss >= queries.compiled (a failed parse is a miss that never
     becomes a compiled plan). [invalidate] counts cached entries
     flushed by a registry-changing install. *)
  let plan_cache_hit = "plan.cache.hit"
  let plan_cache_miss = "plan.cache.miss"
  let plan_cache_invalidate = "plan.cache.invalidate"
  let optimizer_folded = "optimizer.folded"
  let optimizer_inlined = "optimizer.inlined"
  let optimizer_inlined_pure = "optimizer.inlined.pure"
  let optimizer_joins = "optimizer.joins"
  let optimizer_pushed = "optimizer.pushed"
  let optimizer_pushed_shifted = "optimizer.pushed.shifted"

  (* per-pass optimizer timers, accumulated via [time] and rendered as
     [time.<name>.ms] rows *)
  let t_optimizer_fold = "optimizer.fold"
  let t_optimizer_normalize = "optimizer.normalize"
  let t_optimizer_inline = "optimizer.inline"
  let t_optimizer_join = "optimizer.join"
  let t_optimizer_push = "optimizer.push"
  let sql_generated = "sql.generated"
  let sql_executed = "sql.executed"
  let rows_scanned = "rows.scanned"
  let rows_fetched = "rows.fetched"
  let ws_calls = "ws.calls"
  let ws_faults = "ws.faults"
  let xqse_statements = "xqse.statements"
  let sdo_submits = "sdo.submits"
  let sdo_statements = "sdo.statements"

  (* source resilience: retries/timeouts at the dataspace source-call
     boundary, circuit-breaker activity, degraded reads, and the faults
     the chaos plan actually injected into the sources *)
  let resil_retries = "resil.retries"
  let resil_timeouts = "resil.timeouts"
  let resil_trips = "resil.breaker.trips"
  let resil_rejected = "resil.breaker.rejected"
  let resil_degraded = "resil.degraded"
  let resil_injected = "resil.faults.injected"

  (* streaming sequence core: items pulled from live producer cursors,
     items copied out at materialization boundaries, and abandons that
     actually skipped a provably-pure remainder *)
  let stream_pulled = "stream.pulled"
  let stream_materialized = "stream.materialized"
  let stream_early_exits = "stream.early_exits"

  (* concurrent query server: jobs completed by the worker pool, jobs
     that raised, and submits serialized behind the write lock *)
  let server_jobs = "server.jobs"
  let server_errors = "server.errors"
  let server_submits = "server.submits"

  (* MVCC storage: live table versions (gauge: +1 at publish, -1 at
     collection), versions collected after their last unpin, write
     locks acquired, and acquisitions that found the lock held *)
  let mvcc_versions_live = "mvcc.versions.live"
  let mvcc_versions_collected = "mvcc.versions.collected"
  let mvcc_lock_acquired = "mvcc.lock.acquired"
  let mvcc_lock_contended = "mvcc.lock.contended"

  (* overload protection: requests shed at admission (RESX0006),
     requests whose end-to-end budget expired (RESX0005), and brownout
     transitions of the pressure signal; [t_deadline_budget] accumulates
     the budget each deadlined request actually consumed (virtual +
     wall ms, via [add_ms]) *)
  let overload_shed = "overload.shed"
  let overload_expired = "overload.expired"
  let overload_brownout_entered = "overload.brownout.entered"
  let overload_brownout_exited = "overload.brownout.exited"
  let t_deadline_budget = "deadline.budget"

  (* result cache: [hit]s are served from a materialized prior result,
     [miss]es run the function and (when still coherent) admit it,
     [evict] counts entries removed by lineage-driven invalidation (a
     wholesale capacity flush is not an evict), and [bypass] counts
     uncacheable or admission-refused calls — impure/unknown functions,
     results produced under a degradation, or a store generation that
     moved mid-evaluation *)
  let cache_hit = "cache.hit"
  let cache_miss = "cache.miss"
  let cache_evict = "cache.evict"
  let cache_bypass = "cache.bypass"
end

let preregister t =
  List.iter
    (fun k -> ignore (counter t k))
    [
      K.queries_compiled;
      K.plan_cache_hit;
      K.plan_cache_miss;
      K.plan_cache_invalidate;
      K.optimizer_folded;
      K.optimizer_inlined;
      K.optimizer_inlined_pure;
      K.optimizer_joins;
      K.optimizer_pushed;
      K.optimizer_pushed_shifted;
      K.sql_generated;
      K.sql_executed;
      K.rows_scanned;
      K.rows_fetched;
      K.ws_calls;
      K.ws_faults;
      K.xqse_statements;
      K.sdo_submits;
      K.sdo_statements;
      K.resil_retries;
      K.resil_timeouts;
      K.resil_trips;
      K.resil_rejected;
      K.resil_degraded;
      K.resil_injected;
      K.stream_pulled;
      K.stream_materialized;
      K.stream_early_exits;
      K.server_jobs;
      K.server_errors;
      K.server_submits;
      K.mvcc_versions_live;
      K.mvcc_versions_collected;
      K.mvcc_lock_acquired;
      K.mvcc_lock_contended;
      K.overload_shed;
      K.overload_expired;
      K.overload_brownout_entered;
      K.overload_brownout_exited;
      K.cache_hit;
      K.cache_miss;
      K.cache_evict;
      K.cache_bypass;
    ];
  (* the per-pass timers too, so the stats table has a stable shape even
     for runs where a pass never fired *)
  List.iter
    (fun k -> ignore (timer t k))
    [
      K.t_optimizer_fold;
      K.t_optimizer_normalize;
      K.t_optimizer_inline;
      K.t_optimizer_join;
      K.t_optimizer_push;
      K.t_deadline_budget;
    ]
