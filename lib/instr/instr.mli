(** Execution instrumentation: named counters, accumulated timers and
    hierarchical trace spans behind one mutable handle.

    Every engine component (optimizer, relational substrate, web-service
    client, XQSE interpreter, SDO decomposition) holds a reference to a
    handle and reports into it; the handle is created once per session
    and shared, so turning instrumentation on or swapping the sink
    affects components that were wired long before. A disabled handle is
    free on hot paths: every reporting entry point is guarded by a single
    mutable boolean and allocates nothing when it is off.

    Handles are domain-safe: counters and timers are atomics (concurrent
    {!bump}s from several worker domains never lose increments), the
    name tables are mutex-guarded, and each domain tracing through a
    shared handle keeps its own span stack in domain-local storage, so
    span nesting is per-domain and cannot be corrupted by a concurrent
    worker. *)

type sink =
  | Null  (** discard everything (the default) *)
  | Text of (string -> unit)
      (** human-readable lines: spans indented by depth, completion
          order (a child closes — and prints — before its parent) *)
  | Json of (string -> unit)
      (** JSON-lines: one object per span or note; nesting is encoded in
          the [id]/[parent]/[depth] fields *)

type t

val create : ?sink:sink -> unit -> t
(** A fresh handle, {e disabled}; call {!enable} to start recording.
    [sink] (default [Null]) is where spans and notes go. *)

val disabled : t
(** The shared always-off handle — the default for components that were
    never given one. Calling {!enable} on it raises [Invalid_argument];
    create your own handle instead. *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool
val set_sink : t -> sink -> unit
val sink : t -> sink

val noting : t -> bool
(** [true] when notes/spans would actually be emitted (enabled and the
    sink is not [Null]) — use to avoid building log strings nobody will
    see. *)

(** {1 Reporting} *)

val bump : t -> ?n:int -> string -> unit
(** Add [n] (default 1) to a named counter. No-op when disabled. *)

val note : t -> string -> unit
(** Emit a free-form line into the trace at the current span depth. *)

val span : t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a named span: the duration is
    accumulated into the timer named [name] and the span is emitted to
    the sink when [f] returns (or raises — spans close on exceptions).
    When disabled this is exactly [f ()]. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t name f] accumulates [f]'s duration into the timer named
    [name] without opening a span — for hot, frequently-entered phases
    (e.g. one optimizer pass per fixpoint iteration) where a span per
    entry would drown the trace. When disabled this is exactly [f ()]. *)

val add_ms : t -> string -> float -> unit
(** Accumulate an externally-measured duration into a named timer — for
    spans whose clock is not this process's wall clock (e.g. a request's
    consumed deadline budget, part virtual, part wall). No-op when
    disabled. *)

(** {1 Snapshots} *)

type stats = {
  counters : (string * int) list;  (** first-registered order *)
  timers : (string * float) list;  (** accumulated milliseconds *)
}

val stats : t -> stats
(** Current counter and timer values. *)

val since : t -> stats -> stats
(** [since t before] is the delta between now and an earlier
    {!stats} snapshot — the per-query cost of whatever ran in between. *)

val add_stats : stats -> stats -> stats
(** Pointwise sum of two snapshots (union of names, missing = 0) — for
    merging per-worker deltas into one fleet-wide table. *)

val reset : t -> unit
(** Zero every counter and timer (registrations are kept). *)

val render : ?times:bool -> stats -> string
(** An aligned two-column table, one counter per line, followed (unless
    [times] is [false]) by [time.<span>.ms] lines for each timer. *)

(** {1 Well-known counters}

    Any string names a counter, but the engine reports under these keys;
    {!preregister} registers all of them so a stats table over an idle
    handle still lists every key (with value 0) in a stable order. *)

module K : sig
  val queries_compiled : string

  (** plan-cache counters: [queries_compiled] counts only successful
      compiles; a cache hit skips the compile span entirely, so
      [hit + miss] is the number of lookups and [miss >=
      queries_compiled] (a failed parse is a miss that never becomes a
      plan). [invalidate] counts cached entries flushed by a
      registry-changing install. *)

  val plan_cache_hit : string
  val plan_cache_miss : string
  val plan_cache_invalidate : string
  val optimizer_folded : string
  val optimizer_inlined : string
  val optimizer_inlined_pure : string
  val optimizer_joins : string
  val optimizer_pushed : string
  val optimizer_pushed_shifted : string
  val sql_generated : string
  val sql_executed : string
  val rows_scanned : string
  val rows_fetched : string
  val ws_calls : string
  val ws_faults : string
  val xqse_statements : string
  val sdo_submits : string
  val sdo_statements : string

  (** source-resilience counters: retries/timeouts at the dataspace
      source-call boundary, breaker trips and rejected calls, degraded
      reads, and faults actually injected by the chaos plan *)

  val resil_retries : string
  val resil_timeouts : string
  val resil_trips : string
  val resil_rejected : string
  val resil_degraded : string
  val resil_injected : string

  (** streaming-core counters: items pulled from live producer cursors,
      items copied out at materialization boundaries, and abandons that
      skipped a provably-pure remainder *)

  val stream_pulled : string
  val stream_materialized : string
  val stream_early_exits : string

  (** concurrent-server counters: jobs completed by the worker pool,
      jobs that raised, and submit jobs executed *)

  val server_jobs : string
  val server_errors : string
  val server_submits : string

  (** MVCC storage counters: table versions currently live (a gauge —
      published heads plus superseded versions still pinned by a
      snapshot or open cursor), versions garbage-collected after their
      last unpin, per-table write locks acquired, and acquisitions that
      had to wait because another domain held the lock *)

  val mvcc_versions_live : string
  val mvcc_versions_collected : string
  val mvcc_lock_acquired : string
  val mvcc_lock_contended : string

  (** overload-protection counters: requests shed at admission
      ([RESX0006]), requests whose end-to-end deadline expired
      ([RESX0005]), and brownout entry/exit transitions of the pool's
      pressure signal *)

  val overload_shed : string
  val overload_expired : string
  val overload_brownout_entered : string
  val overload_brownout_exited : string

  (** result-cache counters: [cache_hit] reads served from a
      materialized prior result, [cache_miss] calls that ran the
      function, [cache_evict] entries removed by lineage-driven
      invalidation, [cache_bypass] calls that could not be cached or
      whose result was refused admission *)

  val cache_hit : string
  val cache_miss : string
  val cache_evict : string
  val cache_bypass : string

  (** per-pass optimizer timer names, accumulated via {!time} *)

  val t_optimizer_fold : string
  val t_optimizer_normalize : string
  val t_optimizer_inline : string
  val t_optimizer_join : string
  val t_optimizer_push : string

  val t_deadline_budget : string
  (** accumulated budget (virtual + wall ms) consumed by deadlined
      requests, reported via {!add_ms} *)
end

val preregister : t -> unit
