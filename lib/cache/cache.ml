(* The result cache. Same discipline as the plan cache (DESIGN §14):
   a mutex-protected table, capacity handled by wholesale flush, and
   inserts guarded against mid-flight writes. The footprint index is
   the cache's own ingredient: every entry carries the (db, table)
   pairs its value was derived from, so an SDO submit evicts exactly
   the entries it could have changed.

   Coherence is keyed to MVCC table versions, not a global generation:
   every entry's key embeds the version vector of its footprint tables
   as seen by the reader's view (ambient snapshot or published head),
   so readers at different versions never share an entry, and a miss
   only admits its result (under the store lock, atomic with any
   concurrent invalidate sweep) if that vector still stands. A submit
   to unrelated tables mid-evaluation no longer costs the admission —
   only a publish to a table the result was actually derived from
   does. The generation counter remains as a monotone invalidation
   clock for observability. *)

type footprint = (string * string) list

type meta = {
  m_footprint : Xdm.Qname.t -> int -> footprint option;
  m_epoch : unit -> int;
  m_version : string * string -> int;
}

module Store = struct
  type entry = { e_value : Xdm.Item.seq; e_footprint : footprint }

  type t = {
    lock : Mutex.t;
    entries : (string, entry) Hashtbl.t;
    generation : int Atomic.t;
    cap : int;
  }

  let create ?(cap = 256) () =
    {
      lock = Mutex.create ();
      entries = Hashtbl.create 64;
      generation = Atomic.make 0;
      cap;
    }

  let generation t = Atomic.get t.generation

  let size t =
    Mutex.protect t.lock (fun () -> Hashtbl.length t.entries)

  let flush t =
    Mutex.protect t.lock (fun () -> Hashtbl.reset t.entries)

  let find t key =
    Mutex.protect t.lock (fun () ->
        Option.map (fun e -> e.e_value) (Hashtbl.find_opt t.entries key))

  (* Insert only if [verify] still holds under the store lock — the
     caller passes a closure re-reading the published versions of the
     footprint tables, so a publish that landed mid-evaluation (whose
     invalidate sweep may already have run and missed this entry)
     refuses the possibly-pre-image value. Running [verify] under the
     lock makes check-and-insert atomic with respect to the sweep.
     Capacity overflow flushes wholesale — that is housekeeping, not
     invalidation, and is not an evict. *)
  let add t ~verify ~key ~footprint value =
    Mutex.protect t.lock (fun () ->
        if verify () then begin
          if
            Hashtbl.length t.entries >= t.cap
            && not (Hashtbl.mem t.entries key)
          then Hashtbl.reset t.entries;
          Hashtbl.replace t.entries key { e_value = value; e_footprint = footprint };
          true
        end
        else false)

  let touches written fp =
    List.exists (fun src -> List.mem src written) fp

  let invalidate t written =
    (* the generation is an observability clock now: admission is
       guarded by the footprint tables' published versions (which the
       triggering submit bumped before this sweep runs), not by this
       counter *)
    Atomic.incr t.generation;
    Mutex.protect t.lock (fun () ->
        let doomed =
          Hashtbl.fold
            (fun k e acc -> if touches written e.e_footprint then k :: acc else acc)
            t.entries []
        in
        List.iter (Hashtbl.remove t.entries) doomed;
        List.length doomed)
end

type handle = { h_store : Store.t; h_meta : meta }

let create ?cap meta = { h_store = Store.create ?cap (); h_meta = meta }
let store h = h.h_store

let invalidate h ?(instr = Instr.disabled) written =
  let n = Store.invalidate h.h_store written in
  for _ = 1 to n do
    Instr.bump instr Instr.K.cache_evict
  done;
  n

let flush h = Store.flush h.h_store

type bound = { b_handle : handle; b_fp : string; b_instr : Instr.t }

let bind h ~fingerprint ~instr = { b_handle = h; b_fp = fingerprint; b_instr = instr }

(* ---- keying ---- *)

(* The key must distinguish values that XQuery distinguishes: atomics
   carry their type name next to their lexical form (xs:string "1" vs
   xs:integer 1), nodes serialize structurally. The fingerprint prefix
   keeps differently-configured sessions on disjoint keys even when
   they share the store. *)
let item_key buf item =
  match item with
  | Xdm.Item.Atomic a ->
    Buffer.add_string buf "a:";
    Buffer.add_string buf (Xdm.Qname.to_string (Xdm.Atomic.type_name a));
    Buffer.add_char buf '=';
    Buffer.add_string buf (Xdm.Atomic.to_string a)
  | Xdm.Item.Node n ->
    Buffer.add_string buf "n:";
    Buffer.add_string buf (Xdm.Xml_serialize.to_string n)

let key b name args =
  let buf = Buffer.create 128 in
  Buffer.add_string buf b.b_fp;
  Buffer.add_char buf '|';
  Buffer.add_string buf (Xdm.Qname.to_string name);
  Buffer.add_char buf '/';
  Buffer.add_string buf (string_of_int (List.length args));
  List.iter
    (fun arg ->
      Buffer.add_char buf '|';
      List.iter
        (fun item ->
          item_key buf item;
          Buffer.add_char buf ';')
        arg)
    args;
  Buffer.contents buf

(* XDM nodes are mutable (XUF updates them in place): a value crossing
   the cache boundary in either direction is deep-copied so a cached
   tree never aliases one the consumer can rename/insert into. *)
let detach seq =
  List.map
    (function
      | Xdm.Item.Node n -> Xdm.Item.Node (Xdm.Node.deep_copy n)
      | atomic -> atomic)
    seq

let through b name args run =
  match b.b_handle.h_meta.m_footprint name (List.length args) with
  | None ->
    Instr.bump b.b_instr Instr.K.cache_bypass;
    run ()
  | Some footprint -> (
    (* the version vector of the caller's read view over the footprint
       tables. It goes into the key, so a hit is coherent by
       construction: a reader pinned to an older snapshot can neither
       serve nor admit an entry for a different cut, and two MVCC
       readers at different versions never share an entry — the tear
       the old version-blind keys allowed. *)
    let versions =
      List.map (fun src -> (src, b.b_handle.h_meta.m_version src)) footprint
    in
    if List.exists (fun (_, v) -> v < 0) versions then begin
      (* an uncommitted view (this domain holds a write lock with
         pending changes): no version to key by, stay out of the cache *)
      Instr.bump b.b_instr Instr.K.cache_bypass;
      run ()
    end
    else
      let store = b.b_handle.h_store in
      let k =
        key b name args ^ "|v:"
        ^ String.concat "," (List.map (fun (_, v) -> string_of_int v) versions)
      in
      match Store.find store k with
      | Some value ->
        Instr.bump b.b_instr Instr.K.cache_hit;
        detach value
      | None ->
        Instr.bump b.b_instr Instr.K.cache_miss;
        (* within one query the ambient snapshot pins the view, so the
           vector cannot move mid-run; the re-check under the store lock
           guards the unpinned paths (direct session use, no dataspace) *)
        let verify () =
          List.for_all
            (fun (src, v) -> b.b_handle.h_meta.m_version src = v)
            versions
        in
        let e0 = b.b_handle.h_meta.m_epoch () in
        let value = run () in
        if b.b_handle.h_meta.m_epoch () = e0 then
          ignore (Store.add store ~verify ~key:k ~footprint (detach value))
        else
          (* the degradation log grew while this ran: the value may be a
             partial read and must not become the cached truth *)
          Instr.bump b.b_instr Instr.K.cache_bypass;
        value)
