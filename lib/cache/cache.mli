(** Lineage-invalidated result cache for pure data-service reads.

    A {!handle} wraps one domain-safe {!Store.t} (mutex-protected map
    from call key to materialized result) plus the dataspace-supplied
    {!meta} closures that decide what is cacheable and whether the
    world was degraded while a result was produced. Sessions {!bind}
    the handle with their config fingerprint to get a {!bound} view
    whose every key embeds the fingerprint — two sessions with
    different engine generations or evaluation flags can share the
    store without ever sharing an entry.

    Coherence rests on three guards:

    - {b admission}: only calls the dataspace vouches for (pure
      data-service read functions with known lineage) enter; everything
      else runs through untouched and counts as [cache.bypass].
    - {b version}: the caller's MVCC view of every footprint table —
      the ambient snapshot's pinned version when one is installed, else
      the published head — is part of the entry key, so a hit is
      coherent by construction: a reader pinned to an older snapshot
      never serves (or pollutes) an entry computed at head, and vice
      versa. A view with no version yet (the domain holds a write lock
      with uncommitted changes, reported as a negative version)
      bypasses the cache entirely. Admission additionally re-reads the
      vector under the store lock (atomic with {!invalidate}'s sweep),
      so on the unpinned path a submit that publishes to one of the
      result's own tables mid-evaluation silently discards the
      (possibly pre-image) result, while submits to unrelated tables
      cost nothing.
    - {b epoch}: a result computed while the degradation log grew is
      refused admission, so a degraded (partially sourced) read can
      never be replayed as the cached truth.

    Node-typed results are deep-copied both into and out of the store:
    XDM nodes are mutable, and a cached tree must never alias one a
    consumer can update. *)

type footprint = (string * string) list
(** The (database, table) pairs a cached result was derived from. *)

type meta = {
  m_footprint : Xdm.Qname.t -> int -> footprint option;
      (** [m_footprint name arity] is [Some fp] when calls to the
          function are cacheable — pure, lineage-known — with [fp] the
          source tables the result depends on, [None] otherwise. *)
  m_epoch : unit -> int;
      (** Monotone degradation epoch; a result is only admitted when
          the epoch did not move while it was being computed. *)
  m_version : string * string -> int;
      (** [m_version (db, table)] is the MVCC version of the calling
          domain's read view ({!Relational.Table.view_version}): the
          ambient snapshot's pinned version when one covers the table,
          else the published head, or negative when the domain holds
          the table's write lock with uncommitted changes. The vector
          over the footprint is part of the entry key; admission also
          re-reads it under the store lock. Return a negative constant
          for unknown tables (forces bypass). *)
}

(** The shared store: call key -> materialized result + footprint. *)
module Store : sig
  type t

  val create : ?cap:int -> unit -> t
  (** [cap] (default 256) bounds the entry count; inserting into a
      full store flushes it wholesale, like the plan cache. *)

  val generation : t -> int
  (** Monotone count of {!invalidate} calls — an observability clock
      (the console prints it); admission is guarded by table versions,
      not by this counter. *)

  val size : t -> int
  val flush : t -> unit

  val invalidate : t -> footprint -> int
  (** Bump the generation, then evict exactly the entries whose
      footprint intersects the written tables. Returns the number of
      entries evicted. *)
end

type handle
(** A store plus the dataspace's cacheability metadata. *)

val create : ?cap:int -> meta -> handle
val store : handle -> Store.t

val invalidate : handle -> ?instr:Instr.t -> footprint -> int
(** {!Store.invalidate} on the handle's store, bumping [cache.evict]
    once per evicted entry on [instr]. *)

val flush : handle -> unit

type bound
(** A handle bound to one session's config fingerprint and
    instrumentation — the view evaluation threads through the dynamic
    context. *)

val bind : handle -> fingerprint:string -> instr:Instr.t -> bound

val through :
  bound -> Xdm.Qname.t -> Xdm.Item.seq list -> (unit -> Xdm.Item.seq) ->
  Xdm.Item.seq
(** [through b name args run] serves the call from the cache when a
    coherent entry exists ([cache.hit]), otherwise runs [run] and
    admits the result when the admission guards allow ([cache.miss],
    or [cache.bypass] when the call is uncacheable or admission is
    refused). *)
