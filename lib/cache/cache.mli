(** Lineage-invalidated result cache for pure data-service reads.

    A {!handle} wraps one domain-safe {!Store.t} (mutex-protected map
    from call key to materialized result) plus the dataspace-supplied
    {!meta} closures that decide what is cacheable and whether the
    world was degraded while a result was produced. Sessions {!bind}
    the handle with their config fingerprint to get a {!bound} view
    whose every key embeds the fingerprint — two sessions with
    different engine generations or evaluation flags can share the
    store without ever sharing an entry.

    Coherence rests on three guards:

    - {b admission}: only calls the dataspace vouches for (pure
      data-service read functions with known lineage) enter; everything
      else runs through untouched and counts as [cache.bypass].
    - {b generation}: {!invalidate} bumps the store generation before
      evicting, and a miss only admits its result if the generation it
      read before evaluating still stands — a submit that lands
      mid-evaluation silently discards the (possibly pre-image) result.
    - {b epoch}: a result computed while the degradation log grew is
      refused admission, so a degraded (partially sourced) read can
      never be replayed as the cached truth.

    Node-typed results are deep-copied both into and out of the store:
    XDM nodes are mutable, and a cached tree must never alias one a
    consumer can update. *)

type footprint = (string * string) list
(** The (database, table) pairs a cached result was derived from. *)

type meta = {
  m_footprint : Xdm.Qname.t -> int -> footprint option;
      (** [m_footprint name arity] is [Some fp] when calls to the
          function are cacheable — pure, lineage-known — with [fp] the
          source tables the result depends on, [None] otherwise. *)
  m_epoch : unit -> int;
      (** Monotone degradation epoch; a result is only admitted when
          the epoch did not move while it was being computed. *)
}

(** The shared store: call key -> materialized result + footprint. *)
module Store : sig
  type t

  val create : ?cap:int -> unit -> t
  (** [cap] (default 256) bounds the entry count; inserting into a
      full store flushes it wholesale, like the plan cache. *)

  val generation : t -> int
  val size : t -> int
  val flush : t -> unit

  val invalidate : t -> footprint -> int
  (** Bump the generation, then evict exactly the entries whose
      footprint intersects the written tables. Returns the number of
      entries evicted. *)
end

type handle
(** A store plus the dataspace's cacheability metadata. *)

val create : ?cap:int -> meta -> handle
val store : handle -> Store.t

val invalidate : handle -> ?instr:Instr.t -> footprint -> int
(** {!Store.invalidate} on the handle's store, bumping [cache.evict]
    once per evicted entry on [instr]. *)

val flush : handle -> unit

type bound
(** A handle bound to one session's config fingerprint and
    instrumentation — the view evaluation threads through the dynamic
    context. *)

val bind : handle -> fingerprint:string -> instr:Instr.t -> bound

val through :
  bound -> Xdm.Qname.t -> Xdm.Item.seq list -> (unit -> Xdm.Item.seq) ->
  Xdm.Item.seq
(** [through b name args run] serves the call from the cache when a
    coherent entry exists ([cache.hit]), otherwise runs [run] and
    admits the result when the admission guards allow ([cache.miss],
    or [cache.bypass] when the call is uncacheable or admission is
    refused). *)
