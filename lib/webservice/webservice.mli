(** Simulated document-style web services.

    Stands in for the WSDL-described functional sources of ALDSP (e.g.
    the credit-rating service of Figures 2-3): operations with typed
    XML input/output, invoked in-process, with call counting, simulated
    latency accounting and fault injection for the error-handling use
    cases. *)

open Xdm

type operation = {
  op_name : string;
  op_input : Qname.t;  (** expected root element of the request *)
  op_output : Qname.t;  (** root element of the response *)
  op_doc : string;  (** human-readable description (WSDL documentation) *)
  op_handler : Node.t -> Node.t;
}

type t

val create : name:string -> namespace:string -> t
val name : t -> string
val namespace : t -> string

val set_instr : t -> Instr.t -> unit
(** Attach an instrumentation handle (default {!Instr.disabled}):
    {!invoke} reports [ws.calls], and every raised {!Fault} — including
    injected and handler faults — reports [ws.faults]. *)

val add_operation : t -> operation -> unit
val operations : t -> operation list
(** In registration order — the introspectable "WSDL" of the service. *)

val find_operation : t -> string -> operation option

exception Fault of { service : string; operation : string; message : string }

val invoke : t -> string -> Node.t -> Node.t
(** Call an operation with a request element. Every invoke counts as a
    call (unknown operations and validation faults included); injected
    faults fire before the operation is resolved; simulated latency
    accrues only when the request actually reaches the handler.
    @raise Fault on injected faults, unknown operations, wrong request
    elements, and handler-raised faults. *)

(** {1 Accounting and fault injection}

    All injection state lives in a {!Resilience.Faults.t} owned by the
    service; the legacy setters below delegate to it. *)

val faults : t -> Resilience.Faults.t
(** The service's fault handle — attach it to a [Resilience.Control.t]
    to put the source under a chaos plan. *)

val call_count : t -> int
val reset_call_count : t -> unit

val set_latency : t -> float -> unit
(** Simulated per-call latency in milliseconds, accumulated in
    {!total_latency} (no real sleeping) and charged to the fault
    handle's virtual clock. *)

val total_latency : t -> float

val inject_fault_next : t -> message:string -> unit
(** The next {!invoke} raises {!Fault}. *)

val set_fail_every : t -> int option -> unit
(** [Some n]: every [n]-th call faults (deterministic fault rate for the
    replication bench). [None] disables. *)

val wsdl_summary : t -> string
(** A WSDL-like textual description of the service (used by the examples
    to show what introspection sees). *)
