open Xdm

type operation = {
  op_name : string;
  op_input : Qname.t;
  op_output : Qname.t;
  op_doc : string;
  op_handler : Node.t -> Node.t;
}

exception Fault of { service : string; operation : string; message : string }

type t = {
  ws_name : string;
  ws_ns : string;
  mutable ops : operation list;
  mutable calls : int;
  mutable latency_ms : float;
  mutable total_latency : float;
  faults : Resilience.Faults.t;  (* all failure injection lives here *)
  mutable instr : Instr.t;
}

let create ~name ~namespace =
  {
    ws_name = name;
    ws_ns = namespace;
    ops = [];
    calls = 0;
    latency_ms = 0.;
    total_latency = 0.;
    faults = Resilience.Faults.create ~source:name ();
    instr = Instr.disabled;
  }

let name t = t.ws_name
let namespace t = t.ws_ns
let set_instr t i = t.instr <- i
let faults t = t.faults

let add_operation t op =
  if List.exists (fun o -> o.op_name = op.op_name) t.ops then
    invalid_arg (Printf.sprintf "operation %s already exists" op.op_name);
  t.ops <- t.ops @ [ op ]

let operations t = t.ops
let find_operation t name = List.find_opt (fun o -> o.op_name = name) t.ops

let fault t op msg =
  raise (Fault { service = t.ws_name; operation = op; message = msg })

let invoke t op_name request =
  (* every invoke is a call, whatever happens to it — unknown operations
     and validation faults must not make calls and faults disagree *)
  t.calls <- t.calls + 1;
  Instr.bump t.instr Instr.K.ws_calls;
  try
    (* injected faults model the wire/service failing: they fire before
       the operation is even resolved *)
    let v = Resilience.Faults.on_call t.faults Resilience.Faults.Statement in
    (match v.Resilience.Faults.v_fault with
    | Some f ->
      Instr.bump t.instr Instr.K.resil_injected;
      fault t op_name f.Resilience.Faults.f_message
    | None -> ());
    match find_operation t op_name with
    | None -> fault t op_name "unknown operation"
    | Some op ->
      (match Node.name request with
      | Some qn when Qname.equal qn op.op_input -> ()
      | Some qn ->
        fault t op_name
          (Printf.sprintf "expected request element %s, got %s"
             (Qname.to_string op.op_input) (Qname.to_string qn))
      | None -> fault t op_name "request is not an element");
      (* the request reaches the handler: only now does simulated
         latency accrue (base per-call latency plus any injected spike,
         the latter already charged to the virtual clock) *)
      t.total_latency <- t.total_latency +. t.latency_ms
                         +. v.Resilience.Faults.v_latency;
      Resilience.Clock.advance (Resilience.Faults.clock t.faults) t.latency_ms;
      let response =
        try op.op_handler request
        with
        | Fault _ as f -> raise f
        | e -> fault t op_name (Printexc.to_string e)
      in
      (match Node.name response with
      | Some qn when Qname.equal qn op.op_output -> ()
      | _ ->
        fault t op_name
          (Printf.sprintf "handler returned a non-%s element"
             (Qname.to_string op.op_output)));
      response
  with Fault _ as f ->
    Instr.bump t.instr Instr.K.ws_faults;
    raise f

let call_count t = t.calls
let reset_call_count t = t.calls <- 0

let set_latency t ms = t.latency_ms <- ms
let total_latency t = t.total_latency

let inject_fault_next t ~message =
  Resilience.Faults.inject_next t.faults message

let set_fail_every t n = Resilience.Faults.set_fail_every t.faults n

let wsdl_summary t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "service %s (targetNamespace=%s)\n" t.ws_name t.ws_ns;
  List.iter
    (fun op ->
      Printf.bprintf buf "  operation %s : %s -> %s  (%s)\n" op.op_name
        (Qname.to_string op.op_input)
        (Qname.to_string op.op_output)
        op.op_doc)
    t.ops;
  Buffer.contents buf
