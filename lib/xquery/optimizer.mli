(** AST rewrite optimizer.

    Reproduces (at small scale) the ALDSP claim that the declarative
    fragments of an XQSE program keep their query optimizations
    (paper section IV, citing the VLDB'06 query-processing paper).

    Passes, applied to fixpoint (bounded):
    - constant folding of arithmetic, comparisons and [if] on literals;
    - inlining of [let] bindings that are literals or variable aliases;
    - elimination of [where true()] clauses and always-true conditions;
    - conversion of equi-join [where] clauses between two [for] clauses
      into a hash {!Ast.Join_clause};
    - pushdown of single-variable [where] predicates into the binding
      [for] expression as a filter predicate (when position-free). *)

val optimize : ?log:(string -> unit) -> Ast.expr -> Ast.expr
(** [log], when given, receives one line per individual rewrite (which
    pass fired and on what) and a per-iteration counter summary — the
    optimizer's "explain" output. *)

val optimize_decl :
  ?log:(string -> unit) -> Ast.function_decl -> Ast.function_decl

type stats = { folded : int; inlined : int; joins : int; pushed : int }

val zero_stats : stats
val add_stats : stats -> stats -> stats
val stats_to_string : stats -> string

val optimize_with_stats : ?log:(string -> unit) -> Ast.expr -> Ast.expr * stats
