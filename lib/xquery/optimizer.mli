(** AST rewrite optimizer.

    Reproduces (at small scale) the ALDSP claim that the declarative
    fragments of an XQSE program keep their query optimizations
    (paper section IV, citing the VLDB'06 query-processing paper).

    Passes, applied to fixpoint (bounded):
    - constant folding of arithmetic, comparisons and [if] on literals;
    - inlining of [let] bindings: literals and aliases always, and —
      gated by the {!Purity} analysis — pure single-use computed values
      (unconditionally when the occurrence is a head position, under a
      size cap otherwise) plus removal of unused pure bindings;
    - elimination of [where true()] clauses and always-true conditions;
    - conversion of equi-join [where] clauses between two [for] clauses
      into a hash {!Ast.Join_clause};
    - pushdown of single-variable [where] predicates into the binding
      [for] expression as a filter predicate. Non-boolean conditions are
      wrapped in [fn:boolean] (a bare numeric predicate would be a
      positional test), focus-shifted occurrences are rebound through a
      fresh [let $v' := .], and a condition only jumps an earlier
      unpushable [where] when it is provably pure, total and
      boolean-valued.

    Each pass runs as its own bottom-up sweep, timed into the [instr]
    handle under [optimizer.fold] / [.normalize] / [.inline] / [.join] /
    [.push]. *)

val optimize :
  ?log:(string -> unit) ->
  ?env:Purity.env ->
  ?instr:Instr.t ->
  Ast.expr ->
  Ast.expr
(** [log], when given, receives one line per individual rewrite (which
    pass fired and on what) and a per-iteration counter summary — the
    optimizer's "explain" output. [env] supplies function verdicts for
    the purity-gated rewrites (default: builtins only, every other call
    impure). [instr] receives the per-pass timers. *)

val optimize_decl :
  ?log:(string -> unit) ->
  ?env:Purity.env ->
  ?instr:Instr.t ->
  Ast.function_decl ->
  Ast.function_decl

type stats = {
  folded : int;
  inlined : int;  (** trivial inlines: literals and aliases *)
  inlined_pure : int;
      (** purity-gated inlines (and drops) of computed lets *)
  joins : int;
  pushed : int;
  pushed_shifted : int;
      (** pushdowns that rebound a shifted focus through a fresh let *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats
val stats_to_string : stats -> string

val optimize_with_stats :
  ?log:(string -> unit) ->
  ?env:Purity.env ->
  ?instr:Instr.t ->
  Ast.expr ->
  Ast.expr * stats
