(** Abstract syntax of the XQuery subset (QNames already resolved against
    the in-scope namespaces at parse time), including the XQuery Update
    Facility subset and the internal nodes introduced by the optimizer. *)

open Xdm

type axis =
  | Child
  | Descendant
  | Attribute_axis
  | Self
  | Descendant_or_self
  | Parent
  | Following_sibling
  | Preceding_sibling
  | Ancestor
  | Ancestor_or_self
  | Following
  | Preceding

type nodetest =
  | Name_test of Qname.t
  | Any_name  (** [*] *)
  | Ns_wildcard of string  (** [p:*], URI resolved *)
  | Local_wildcard of string  (** [*:local] *)
  | Kind_node
  | Kind_text
  | Kind_comment
  | Kind_pi of string option
  | Kind_element of Qname.t option
  | Kind_attribute of Qname.t option
  | Kind_document

type comp_op = Eq | Ne | Lt | Le | Gt | Ge
type quantifier = Some_q | Every_q
type insert_pos = Into | Into_first | Into_last | Before | After

type expr =
  | Literal of Atomic.t
  | Var of Qname.t
  | Context_item
  | Seq_expr of expr list  (** comma operator; [Seq_expr []] is [()] *)
  | Range of expr * expr
  | Arith of Atomic.arith_op * expr * expr
  | Neg of expr
  | And of expr * expr
  | Or of expr * expr
  | General_cmp of comp_op * expr * expr
  | Value_cmp of comp_op * expr * expr
  | Node_is of expr * expr
  | Node_before of expr * expr
  | Node_after of expr * expr
  | Union of expr * expr
  | Intersect of expr * expr
  | Except of expr * expr
  | Instance_of of expr * Seqtype.t
  | Treat_as of expr * Seqtype.t
  | Castable_as of expr * Qname.t * bool  (** [bool]: optional ([?]) *)
  | Cast_as of expr * Qname.t * bool
  | If_expr of expr * expr * expr
  | Typeswitch of expr * case_clause list * (Qname.t option * expr)
      (** operand, cases, default (with optional variable) *)
  | Flwor of clause list * expr
  | Quantified of quantifier * in_binding list * expr
  | Path of expr * expr  (** [e1/e2] with document-order semantics *)
  | Root_expr  (** leading [/] *)
  | Step of axis * nodetest * expr list
  | Filter of expr * expr list  (** primary expression with predicates *)
  | Call of Qname.t * expr list
  | Elem_ctor of Qname.t * (Qname.t * attr_content list) list * content list
  | Comp_elem of name_spec * expr
  | Comp_attr of name_spec * expr
  | Comp_text of expr
  | Comp_doc of expr
  | Comp_comment of expr
  | Comp_pi of name_spec * expr
  (* XQuery Update Facility subset *)
  | Insert of insert_pos * expr * expr  (** source, target *)
  | Delete of expr
  | Replace of { value_of : bool; target : expr; source : expr }
  | Rename of expr * name_spec
  | Transform of (Qname.t * expr) list * expr * expr
      (** [copy $v := e modify e return e] *)

and case_clause = {
  case_var : Qname.t option;
  case_type : Seqtype.t;
  case_return : expr;
}

and name_spec = Static_name of Qname.t | Dynamic_name of expr

and attr_content = Attr_str of string | Attr_expr of expr

and content =
  | Content_text of string
  | Content_expr of expr  (** enclosed [{...}] *)
  | Content_node of expr  (** nested constructor, comment or PI *)

and in_binding = Qname.t * Seqtype.t option * expr

and clause =
  | For_clause of for_binding list
  | Let_clause of let_binding list
  | Where_clause of expr
  | Order_clause of bool * order_spec list  (** [bool]: stable *)
  | Join_clause of join
      (** optimizer-introduced hash join: binds [var] to the items of
          [source] whose [build_key] equals the outer tuple's
          [probe_key] *)

and for_binding = {
  for_var : Qname.t;
  for_pos : Qname.t option;
  for_type : Seqtype.t option;
  for_expr : expr;
}

and let_binding = {
  let_var : Qname.t;
  let_type : Seqtype.t option;
  let_expr : expr;
}

and order_spec = { key : expr; descending : bool; empty_least : bool }

and join = {
  join_var : Qname.t;
  join_type : Seqtype.t option;
  join_source : expr;
  join_build_key : expr;  (** evaluated with [join_var] bound *)
  join_probe_key : expr;  (** evaluated in the outer tuple context *)
}

type function_decl = {
  fd_name : Qname.t;
  fd_params : (Qname.t * Seqtype.t option) list;
  fd_return : Seqtype.t option;
  fd_body : expr option;  (** [None] for [external] *)
}

type var_decl = {
  vd_name : Qname.t;
  vd_type : Seqtype.t option;
  vd_value : expr option;  (** [None] for [external] *)
}

type prolog_item =
  | P_function of function_decl
  | P_variable of var_decl
  | P_import of { prefix : string option; uri : string }
      (** [import module namespace p = "uri"] — resolved by the host
          (sessions resolve against their registered module library) *)

type module_ = { prolog : prolog_item list; body : expr }

(** {1 AST traversal helpers} *)

let fold_subexprs : 'a. ('a -> expr -> 'a) -> 'a -> expr -> 'a =
 fun f acc e ->
  let on = f in
  match e with
  | Literal _ | Var _ | Context_item | Root_expr -> acc
  | Seq_expr es -> List.fold_left on acc es
  | Range (a, b)
  | Arith (_, a, b)
  | And (a, b)
  | Or (a, b)
  | General_cmp (_, a, b)
  | Value_cmp (_, a, b)
  | Node_is (a, b)
  | Node_before (a, b)
  | Node_after (a, b)
  | Union (a, b)
  | Intersect (a, b)
  | Except (a, b)
  | Path (a, b) -> on (on acc a) b
  | Neg a
  | Instance_of (a, _)
  | Treat_as (a, _)
  | Castable_as (a, _, _)
  | Cast_as (a, _, _)
  | Comp_text a
  | Comp_doc a
  | Comp_comment a
  | Delete a -> on acc a
  | If_expr (c, t, e2) -> on (on (on acc c) t) e2
  | Typeswitch (operand, cases, (_, default)) ->
    let acc = on acc operand in
    let acc = List.fold_left (fun acc c -> on acc c.case_return) acc cases in
    on acc default
  | Flwor (clauses, ret) ->
    let acc =
      List.fold_left
        (fun acc c ->
          match c with
          | For_clause bs ->
            List.fold_left (fun acc b -> on acc b.for_expr) acc bs
          | Let_clause bs ->
            List.fold_left (fun acc b -> on acc b.let_expr) acc bs
          | Where_clause e -> on acc e
          | Order_clause (_, specs) ->
            List.fold_left (fun acc s -> on acc s.key) acc specs
          | Join_clause j ->
            on (on (on acc j.join_source) j.join_build_key) j.join_probe_key)
        acc clauses
    in
    on acc ret
  | Quantified (_, bindings, body) ->
    let acc = List.fold_left (fun acc (_, _, e) -> on acc e) acc bindings in
    on acc body
  | Step (_, _, preds) -> List.fold_left on acc preds
  | Filter (p, preds) -> List.fold_left on (on acc p) preds
  | Call (_, args) -> List.fold_left on acc args
  | Elem_ctor (_, attrs, contents) ->
    let acc =
      List.fold_left
        (fun acc (_, parts) ->
          List.fold_left
            (fun acc part ->
              match part with Attr_str _ -> acc | Attr_expr e -> on acc e)
            acc parts)
        acc attrs
    in
    List.fold_left
      (fun acc c ->
        match c with
        | Content_text _ -> acc
        | Content_expr e | Content_node e -> on acc e)
      acc contents
  | Comp_elem (ns, e) | Comp_attr (ns, e) | Comp_pi (ns, e) ->
    let acc = match ns with Static_name _ -> acc | Dynamic_name ne -> on acc ne in
    on acc e
  | Insert (_, s, t) -> on (on acc s) t
  | Replace { target; source; _ } -> on (on acc target) source
  | Rename (t, ns) ->
    let acc = on acc t in
    (match ns with Static_name _ -> acc | Dynamic_name ne -> on acc ne)
  | Transform (copies, modify, ret) ->
    let acc = List.fold_left (fun acc (_, e) -> on acc e) acc copies in
    on (on acc modify) ret

(** [map_subexprs f e] rebuilds [e] with [f] applied to every immediate
    subexpression (a purely structural, scope-oblivious map; for
    binder-aware traversals see {!Binders}). *)
let map_subexprs (f : expr -> expr) (e : expr) : expr =
  let map_name_spec = function
    | Static_name q -> Static_name q
    | Dynamic_name e -> Dynamic_name (f e)
  in
  match e with
  | Literal _ | Var _ | Context_item | Root_expr -> e
  | Seq_expr es -> Seq_expr (List.map f es)
  | Range (a, b) -> Range (f a, f b)
  | Arith (op, a, b) -> Arith (op, f a, f b)
  | Neg a -> Neg (f a)
  | And (a, b) -> And (f a, f b)
  | Or (a, b) -> Or (f a, f b)
  | General_cmp (op, a, b) -> General_cmp (op, f a, f b)
  | Value_cmp (op, a, b) -> Value_cmp (op, f a, f b)
  | Node_is (a, b) -> Node_is (f a, f b)
  | Node_before (a, b) -> Node_before (f a, f b)
  | Node_after (a, b) -> Node_after (f a, f b)
  | Union (a, b) -> Union (f a, f b)
  | Intersect (a, b) -> Intersect (f a, f b)
  | Except (a, b) -> Except (f a, f b)
  | Instance_of (a, t) -> Instance_of (f a, t)
  | Treat_as (a, t) -> Treat_as (f a, t)
  | Castable_as (a, t, o) -> Castable_as (f a, t, o)
  | Cast_as (a, t, o) -> Cast_as (f a, t, o)
  | If_expr (c, t, e2) -> If_expr (f c, f t, f e2)
  | Typeswitch (operand, cases, (dvar, default)) ->
    Typeswitch
      ( f operand,
        List.map (fun c -> { c with case_return = f c.case_return }) cases,
        (dvar, f default) )
  | Flwor (clauses, ret) ->
    let clauses =
      List.map
        (function
          | For_clause bs ->
            For_clause
              (List.map (fun b -> { b with for_expr = f b.for_expr }) bs)
          | Let_clause bs ->
            Let_clause
              (List.map (fun b -> { b with let_expr = f b.let_expr }) bs)
          | Where_clause e -> Where_clause (f e)
          | Order_clause (s, specs) ->
            Order_clause
              (s, List.map (fun sp -> { sp with key = f sp.key }) specs)
          | Join_clause j ->
            Join_clause
              {
                j with
                join_source = f j.join_source;
                join_build_key = f j.join_build_key;
                join_probe_key = f j.join_probe_key;
              })
        clauses
    in
    Flwor (clauses, f ret)
  | Quantified (q, bs, body) ->
    Quantified (q, List.map (fun (v, t, e) -> (v, t, f e)) bs, f body)
  | Path (a, b) -> Path (f a, f b)
  | Step (ax, nt, preds) -> Step (ax, nt, List.map f preds)
  | Filter (p, preds) -> Filter (f p, List.map f preds)
  | Call (n, args) -> Call (n, List.map f args)
  | Elem_ctor (n, attrs, contents) ->
    Elem_ctor
      ( n,
        List.map
          (fun (an, parts) ->
            ( an,
              List.map
                (function
                  | Attr_str s -> Attr_str s
                  | Attr_expr e -> Attr_expr (f e))
                parts ))
          attrs,
        List.map
          (function
            | Content_text s -> Content_text s
            | Content_expr e -> Content_expr (f e)
            | Content_node e -> Content_node (f e))
          contents )
  | Comp_elem (ns, e) -> Comp_elem (map_name_spec ns, f e)
  | Comp_attr (ns, e) -> Comp_attr (map_name_spec ns, f e)
  | Comp_text e -> Comp_text (f e)
  | Comp_doc e -> Comp_doc (f e)
  | Comp_comment e -> Comp_comment (f e)
  | Comp_pi (ns, e) -> Comp_pi (map_name_spec ns, f e)
  | Insert (p, s, t) -> Insert (p, f s, f t)
  | Delete t -> Delete (f t)
  | Replace { value_of; target; source } ->
    Replace { value_of; target = f target; source = f source }
  | Rename (t, ns) -> Rename (f t, map_name_spec ns)
  | Transform (cs, m, r) ->
    Transform (List.map (fun (v, e) -> (v, f e)) cs, f m, f r)
