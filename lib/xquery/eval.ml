open Xdm
module Qmap = Context.Qmap

let err code msg = Item.raise_error (Qname.err code) msg

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Map Atomic.Cast_error to the right err:* code for the operation. *)
let arith_error msg =
  if contains_substring msg "zero" then err "FOAR0001" msg
  else err "XPTY0004" msg

let numeric_of_untyped a =
  match a with
  | Atomic.Untyped s -> (
    try Atomic.Double (float_of_string (String.trim s))
    with _ -> (
      match s with
      | "INF" -> Atomic.Double Float.infinity
      | "-INF" -> Atomic.Double Float.neg_infinity
      | "NaN" -> Atomic.Double Float.nan
      | _ ->
        err "FORG0001"
          (Printf.sprintf "cannot cast untyped value %S to xs:double" s)))
  | a -> a

(* ------------------------------------------------------------------ *)
(* Axes and node tests                                                  *)
(* ------------------------------------------------------------------ *)

let axis_nodes axis node =
  match axis with
  | Ast.Child -> Node.children node
  | Ast.Descendant -> Node.descendants node
  | Ast.Attribute_axis -> Node.attributes node
  | Ast.Self -> [ node ]
  | Ast.Descendant_or_self -> Node.descendant_or_self node
  | Ast.Parent -> ( match Node.parent node with Some p -> [ p ] | None -> [])
  | Ast.Following_sibling -> Node.following_siblings node
  | Ast.Preceding_sibling -> Node.preceding_siblings node
  | Ast.Ancestor -> Node.ancestors node
  | Ast.Ancestor_or_self -> node :: Node.ancestors node
  | Ast.Following ->
    (* nodes after this node in document order, excluding descendants *)
    let rec collect n acc =
      match Node.parent n with
      | None -> acc
      | Some p ->
        let acc =
          List.fold_left
            (fun acc sib -> acc @ Node.descendant_or_self sib)
            acc (Node.following_siblings n)
        in
        collect p acc
    in
    collect node []
  | Ast.Preceding ->
    let ancestors = Node.ancestors node in
    let rec collect n acc =
      match Node.parent n with
      | None -> acc
      | Some p ->
        let acc =
          List.fold_left
            (fun acc sib -> acc @ Node.descendant_or_self sib)
            acc
            (List.rev (Node.preceding_siblings n))
        in
        collect p acc
    in
    let all = collect node [] in
    List.filter
      (fun n -> not (List.exists (fun a -> Node.is_same a n) ancestors))
      (List.sort Node.doc_order all)

let nodetest_matches ~axis nt node =
  let principal_element = axis <> Ast.Attribute_axis in
  let name_ok f =
    match Node.name node with Some qn -> f qn | None -> false
  in
  let kind_ok =
    if principal_element then Node.kind node = Node.Element
    else Node.kind node = Node.Attribute
  in
  match nt with
  | Ast.Name_test qn -> kind_ok && name_ok (Qname.equal qn)
  | Ast.Any_name -> kind_ok
  | Ast.Ns_wildcard uri -> kind_ok && name_ok (fun n -> n.Qname.uri = uri)
  | Ast.Local_wildcard local ->
    kind_ok && name_ok (fun n -> n.Qname.local = local)
  | Ast.Kind_node -> true
  | Ast.Kind_text -> Node.kind node = Node.Text
  | Ast.Kind_comment -> Node.kind node = Node.Comment
  | Ast.Kind_pi target -> (
    Node.kind node = Node.Processing_instruction
    &&
    match target with
    | None -> true
    | Some t -> name_ok (fun n -> n.Qname.local = t))
  | Ast.Kind_element name -> (
    Node.kind node = Node.Element
    && match name with None -> true | Some qn -> name_ok (Qname.equal qn))
  | Ast.Kind_attribute name -> (
    Node.kind node = Node.Attribute
    && match name with None -> true | Some qn -> name_ok (Qname.equal qn))
  | Ast.Kind_document -> Node.kind node = Node.Document

let reverse_axis = function
  | Ast.Parent | Ast.Ancestor | Ast.Ancestor_or_self | Ast.Preceding_sibling
  | Ast.Preceding -> true
  | Ast.Child | Ast.Descendant | Ast.Attribute_axis | Ast.Self
  | Ast.Descendant_or_self | Ast.Following_sibling | Ast.Following -> false

(* ------------------------------------------------------------------ *)
(* Comparisons                                                          *)
(* ------------------------------------------------------------------ *)

let apply_op op c =
  match op with
  | Ast.Eq -> c = 0
  | Ast.Ne -> c <> 0
  | Ast.Lt -> c < 0
  | Ast.Le -> c <= 0
  | Ast.Gt -> c > 0
  | Ast.Ge -> c >= 0

let value_compare_atoms op a b =
  (* value comparison: untyped operands are treated as strings *)
  let norm = function Atomic.Untyped s -> Atomic.String s | a -> a in
  let a = norm a and b = norm b in
  if (Atomic.is_nan a || Atomic.is_nan b) && (op = Ast.Eq || op = Ast.Lt || op = Ast.Le || op = Ast.Gt || op = Ast.Ge)
  then false
  else if (Atomic.is_nan a || Atomic.is_nan b) && op = Ast.Ne then true
  else
    match Atomic.compare_values a b with
    | c -> apply_op op c
    | exception Atomic.Cast_error msg -> err "XPTY0004" msg

let general_pair_compare op a b =
  (* general comparison: untyped is cast to the other operand's type
     (numeric → double, untyped/untyped → string) *)
  let a, b =
    match (a, b) with
    | Atomic.Untyped _, Atomic.Untyped _ -> (a, b) (* compared as strings *)
    | Atomic.Untyped _, other when Atomic.is_numeric other ->
      (numeric_of_untyped a, b)
    | other, Atomic.Untyped _ when Atomic.is_numeric other ->
      (a, numeric_of_untyped b)
    | Atomic.Untyped s, Atomic.Boolean _ -> (Atomic.String s, b)
    | Atomic.Boolean _, Atomic.Untyped s -> (a, Atomic.String s)
    | _ -> (a, b)
  in
  if Atomic.is_nan a || Atomic.is_nan b then op = Ast.Ne
  else
    match Atomic.compare_values a b with
    | c -> apply_op op c
    | exception Atomic.Cast_error msg -> err "XPTY0004" msg

(* Shared scalar kernels over already-evaluated operands: the eager
   evaluator, the closure compiler (stage 2, below) and the XQSE
   interpreter's fast path for tiny statement expressions must agree
   exactly, so the arithmetic/comparison/range rules live here once. *)

let arith_seq op va vb =
  match (va, vb) with
  (* singleton non-untyped atoms skip the atomize walk; [numeric_of_
     untyped] is the identity on everything but [Untyped] *)
  | [ Item.Atomic a ], [ Item.Atomic b ]
    when (match a with Atomic.Untyped _ -> false | _ -> true)
         && (match b with Atomic.Untyped _ -> false | _ -> true) -> (
    try [ Item.Atomic (Atomic.arith op a b) ]
    with Atomic.Cast_error msg -> arith_error msg)
  | _ -> (
    match (Item.one_atom_opt va, Item.one_atom_opt vb) with
    | None, _ | _, None -> []
    | Some va, Some vb -> (
      let va = numeric_of_untyped va and vb = numeric_of_untyped vb in
      try [ Item.Atomic (Atomic.arith op va vb) ]
      with Atomic.Cast_error msg -> arith_error msg))

let neg_seq va =
  match Item.one_atom_opt va with
  | None -> []
  | Some v -> (
    try [ Item.Atomic (Atomic.negate (numeric_of_untyped v)) ]
    with Atomic.Cast_error msg -> err "XPTY0004" msg)

let value_cmp_seq op va vb =
  match (va, vb) with
  (* singleton atoms are what [one_atom_opt] would unwrap anyway *)
  | [ Item.Atomic x ], [ Item.Atomic y ] ->
    Item.bool (value_compare_atoms op x y)
  | _ -> (
    match (Item.one_atom_opt va, Item.one_atom_opt vb) with
    | None, _ | _, None -> []
    | Some x, Some y -> Item.bool (value_compare_atoms op x y))

let general_cmp_seq op va vb =
  let va = Item.atomize va and vb = Item.atomize vb in
  Item.bool
    (List.exists
       (fun x -> List.exists (fun y -> general_pair_compare op x y) vb)
       va)

let node_comparison_seq na nb pred =
  match (na, nb) with
  | [], _ | _, [] -> []
  | [ Item.Node x ], [ Item.Node y ] -> Item.bool (pred x y)
  | _ -> Item.type_error "node comparison requires single nodes"

let range_bounds_seq va vb =
  match (Item.one_atom_opt va, Item.one_atom_opt vb) with
  | None, _ | _, None -> None
  | Some ia, Some ib ->
    let to_int v =
      match v with
      | Atomic.Integer i -> i
      | a -> (
        try
          match Atomic.cast_to a (Qname.xs "integer") with
          | Atomic.Integer i -> i
          | _ -> err "XPTY0004" "range bounds must be integers"
        with Atomic.Cast_error m -> err "XPTY0004" m)
    in
    let lo = to_int ia and hi = to_int ib in
    if lo > hi then None else Some (lo, hi)

let range_list lo hi =
  List.init (hi - lo + 1) (fun i -> Item.Atomic (Atomic.Integer (lo + i)))

(* order by: compare one evaluated key pair under its spec, then the
   stable multi-key sort over (tuple, keys) pairs *)
let order_cmp_key (a, spec) (b, _) =
  let c =
    match (a, b) with
    | None, None -> 0
    | None, Some _ -> if spec.Ast.empty_least then -1 else 1
    | Some _, None -> if spec.Ast.empty_least then 1 else -1
    | Some x, Some y -> (
      let x = match x with Atomic.Untyped s -> Atomic.String s | x -> x in
      let y = match y with Atomic.Untyped s -> Atomic.String s | y -> y in
      match (Atomic.is_nan x, Atomic.is_nan y) with
      | true, true -> 0
      | true, false -> if spec.Ast.empty_least then -1 else 1
      | false, true -> if spec.Ast.empty_least then 1 else -1
      | false, false -> (
        try Atomic.compare_values x y
        with Atomic.Cast_error msg -> err "XPTY0004" msg))
  in
  if spec.Ast.descending then -c else c

let rec order_cmp_keys ka kb =
  match (ka, kb) with
  | [], [] -> 0
  | a :: ka, b :: kb -> (
    match order_cmp_key a b with 0 -> order_cmp_keys ka kb | c -> c)
  | _ -> 0

let order_sort keyed =
  List.map fst
    (List.stable_sort (fun (_, ka) (_, kb) -> order_cmp_keys ka kb) keyed)

(* computed-constructor name rule over the evaluated name atom *)
let name_spec_atom ~element a =
  match a with
  | Atomic.QName q -> q
  | Atomic.String s | Atomic.Untyped s ->
    if String.contains s ':' then
      err "XQDY0074" (Printf.sprintf "cannot resolve prefixed name %S" s)
    else Qname.local s
  | a ->
    ignore element;
    err "XPTY0004"
      (Printf.sprintf "invalid name value of type %s"
         (Qname.to_string (Atomic.type_name a)))

(* ------------------------------------------------------------------ *)
(* The evaluator                                                        *)
(* ------------------------------------------------------------------ *)

(* Does [e] syntactically mention [fn:last()]? Streaming the left side
   of a path never computes the focus size, so the step must provably
   not observe it. User function bodies run under [Context.no_focus],
   so a last() inside a called function cannot see the path's focus —
   the syntactic check over the step expression is conservative but
   sound. *)
let rec mentions_last e =
  (match e with
  | Ast.Call (n, []) ->
    String.equal n.Qname.uri Qname.fn_ns && String.equal n.Qname.local "last"
  | _ -> false)
  || Ast.fold_subexprs (fun acc sub -> acc || mentions_last sub) false e

(* Effective boolean value over a cursor, pulling at most two items.
   Equivalent to materializing and applying [Item.effective_boolean_value]:
   the remainder is skipped only when the cursor is pure; otherwise
   [Cursor.abandon] drains it so a pending error or effect surfaces
   first, exactly as the eager evaluator (which evaluates the whole
   operand before applying the EBV rule) behaves. *)
let ebv_cur c =
  match Cursor.next c with
  | None ->
    Cursor.close c;
    false
  | Some (Item.Node _) ->
    Cursor.abandon c;
    true
  | Some (Item.Atomic _ as first) -> (
    match Cursor.next c with
    | None -> Item.effective_boolean_value [ first ]
    | Some _ ->
      Cursor.abandon c;
      (* >= 2 items with an atomic head: same FORG0006 as the eager rule *)
      Item.effective_boolean_value [ first; first ])

let cursor_nonempty c =
  match Cursor.next c with
  | Some _ ->
    Cursor.abandon c;
    true
  | None ->
    Cursor.close c;
    false

(* Materialization boundary: drain a cursor into a list, accounting the
   copied items on the context's [stream.materialized] counter. *)
let materialize ctx c = Cursor.to_list ~instr:(Context.fields ctx).instr c

let rec eval ctx (e : Ast.expr) : Item.seq =
  match e with
  | Ast.Literal a -> [ Item.Atomic a ]
  | Ast.Var q -> (
    match Context.lookup_var ctx q with
    | Some v -> v
    | None ->
      Item.raise_error (Qname.err "XPST0008")
        (Printf.sprintf "undefined variable $%s" (Qname.to_string q)))
  | Ast.Context_item -> (
    match (Context.fields ctx).ctx_item with
    | Some item -> [ item ]
    | None -> err "XPDY0002" "the context item is not defined")
  | Ast.Seq_expr es -> List.concat_map (eval ctx) es
  | Ast.Range (a, b) -> (
    match range_bounds ctx a b with
    | None -> []
    | Some (lo, hi) -> range_list lo hi)
  | Ast.Arith (op, a, b) ->
    let va = eval ctx a in
    let vb = eval ctx b in
    arith_seq op va vb
  | Ast.Neg a -> neg_seq (eval ctx a)
  | Ast.And (a, b) ->
    Item.bool (ebv_cur (eval_cur ctx a) && ebv_cur (eval_cur ctx b))
  | Ast.Or (a, b) ->
    Item.bool (ebv_cur (eval_cur ctx a) || ebv_cur (eval_cur ctx b))
  | Ast.General_cmp (op, a, b) ->
    let va = eval ctx a in
    let vb = eval ctx b in
    general_cmp_seq op va vb
  | Ast.Value_cmp (op, a, b) ->
    let va = eval ctx a in
    let vb = eval ctx b in
    value_cmp_seq op va vb
  | Ast.Node_is (a, b) -> node_comparison ctx a b (fun x y -> Node.is_same x y)
  | Ast.Node_before (a, b) ->
    node_comparison ctx a b (fun x y -> Node.doc_order x y < 0)
  | Ast.Node_after (a, b) ->
    node_comparison ctx a b (fun x y -> Node.doc_order x y > 0)
  | Ast.Union (a, b) -> Item.doc_sort (eval ctx a @ eval ctx b)
  | Ast.Intersect (a, b) ->
    let nb = Item.nodes_only (eval ctx b) in
    Item.doc_sort
      (List.filter
         (function
           | Item.Node n -> List.exists (Node.is_same n) nb
           | Item.Atomic _ -> Item.type_error "intersect requires nodes")
         (eval ctx a))
  | Ast.Except (a, b) ->
    let nb = Item.nodes_only (eval ctx b) in
    Item.doc_sort
      (List.filter
         (function
           | Item.Node n -> not (List.exists (Node.is_same n) nb)
           | Item.Atomic _ -> Item.type_error "except requires nodes")
         (eval ctx a))
  | Ast.Instance_of (a, ty) -> Item.bool (Seqtype.matches ty (eval ctx a))
  | Ast.Treat_as (a, ty) ->
    let v = eval ctx a in
    if Seqtype.matches ty v then v
    else
      Item.raise_error (Qname.err "XPDY0050")
        (Printf.sprintf "treat as %s failed" (Seqtype.to_string ty))
  | Ast.Castable_as (a, ty, opt) -> (
    match Item.atomize (eval ctx a) with
    | [] -> Item.bool opt
    | [ v ] -> Item.bool (Atomic.can_cast_to v ty)
    | _ -> Item.bool false)
  | Ast.Cast_as (a, ty, opt) -> (
    match Item.atomize (eval ctx a) with
    | [] ->
      if opt then []
      else err "XPTY0004" "cast of an empty sequence to a non-optional type"
    | [ v ] -> (
      try [ Item.Atomic (Atomic.cast_to v ty) ]
      with Atomic.Cast_error msg -> err "FORG0001" msg)
    | _ -> err "XPTY0004" "cast of a sequence of more than one item")
  | Ast.If_expr (c, t, e2) ->
    if ebv_cur (eval_cur ctx c) then eval ctx t else eval ctx e2
  | Ast.Typeswitch (operand, cases, (dvar, default)) -> (
    let v = eval ctx operand in
    match
      List.find_opt (fun c -> Seqtype.matches c.Ast.case_type v) cases
    with
    | Some c ->
      let ctx =
        match c.Ast.case_var with
        | Some var -> Context.bind ctx var v
        | None -> ctx
      in
      eval ctx c.Ast.case_return
    | None ->
      let ctx =
        match dvar with Some var -> Context.bind ctx var v | None -> ctx
      in
      eval ctx default)
  | Ast.Flwor (clauses, ret) -> (
    match flwor_cur ctx clauses ret with
    | Some c -> materialize ctx c
    | None -> eval_flwor ctx clauses ret)
  | Ast.Quantified (quant, bindings, body) -> (
    match quantified_stream ctx quant bindings body with
    | Some b -> Item.bool b
    | None ->
      let rec go ctx = function
        | [] -> ebv_cur (eval_cur ctx body)
        | (v, ty, src) :: rest ->
          let items = eval ctx src in
          let items =
            match ty with
            | Some t ->
              List.map
                (fun i ->
                  match Seqtype.check ~what:(Qname.to_string v) t [ i ] with
                  | [ i' ] -> i'
                  | _ -> i)
                items
            | None -> items
          in
          let test item = go (Context.bind ctx v [ item ]) rest in
          (match quant with
          | Ast.Some_q -> List.exists test items
          | Ast.Every_q -> List.for_all test items)
      in
      Item.bool (go ctx bindings))
  | Ast.Path (a, b) -> (
    match path_stream ctx a b with
    | Some r -> r
    | None -> path_over ctx (eval ctx a) b)
  | Ast.Root_expr -> (
    match (Context.fields ctx).ctx_item with
    | Some (Item.Node n) -> [ Item.Node (Node.root n) ]
    | Some (Item.Atomic _) ->
      err "XPTY0020" "the context item is not a node"
    | None -> err "XPDY0002" "the context item is not defined")
  | Ast.Step (axis, nt, preds) -> (
    match (Context.fields ctx).ctx_item with
    | Some (Item.Node n) ->
      let candidates = axis_nodes axis n in
      let matched =
        List.filter (fun c -> nodetest_matches ~axis nt c) candidates
      in
      (* candidates arrive in axis order (reverse axes: nearest first),
         which is what positional predicates must see; the step result
         itself is returned in document order *)
      let filtered =
        apply_predicates ctx preds (List.map (fun n -> Item.Node n) matched)
      in
      if reverse_axis axis then Item.doc_sort filtered else filtered
    | Some (Item.Atomic _) -> err "XPTY0020" "the context item is not a node"
    | None -> err "XPDY0002" "the context item is not defined")
  | Ast.Filter (prim, preds) -> (
    match filter_pos_stream ctx prim preds with
    | Some r -> r
    | None ->
      let base = eval ctx prim in
      apply_predicates ctx preds base)
  | Ast.Call (name, args) -> (
    match streaming_call ctx name args with
    | Some r -> r
    | None ->
      let arg_vals = List.map (eval ctx) args in
      call ctx name arg_vals)
  | Ast.Elem_ctor (name, attrs, contents) ->
    [ Item.Node (construct_element ctx name attrs contents) ]
  | Ast.Comp_elem (name_spec, content) ->
    let name = eval_name_spec ctx ~element:true name_spec in
    let items = eval ctx content in
    let el = Node.element name [] in
    attach_content el items;
    merge_text_children el;
    [ Item.Node el ]
  | Ast.Comp_attr (name_spec, content) ->
    let name = eval_name_spec ctx ~element:false name_spec in
    let v =
      String.concat " "
        (List.map Atomic.to_string (Item.atomize (eval ctx content)))
    in
    [ Item.Node (Node.attribute name v) ]
  | Ast.Comp_text content -> (
    match Item.atomize (eval ctx content) with
    | [] -> []
    | atoms ->
      [ Item.Node
          (Node.text (String.concat " " (List.map Atomic.to_string atoms))) ])
  | Ast.Comp_doc content ->
    let items = eval ctx content in
    let holder = Node.element (Qname.local "holder") [] in
    attach_content holder items;
    let children = Node.children holder in
    List.iter Node.detach children;
    [ Item.Node (Node.document children) ]
  | Ast.Comp_comment content ->
    let s =
      String.concat " "
        (List.map Atomic.to_string (Item.atomize (eval ctx content)))
    in
    [ Item.Node (Node.comment s) ]
  | Ast.Comp_pi (name_spec, content) ->
    let name = eval_name_spec ctx ~element:false name_spec in
    let s =
      String.concat " "
        (List.map Atomic.to_string (Item.atomize (eval ctx content)))
    in
    [ Item.Node (Node.processing_instruction name.Qname.local s) ]
  (* ---- XQuery Update Facility subset ---- *)
  | Ast.Insert (pos, source, target) ->
    check_updating ctx;
    let sources =
      List.map Node.deep_copy (Item.nodes_only (eval ctx source))
    in
    let attrs, others =
      List.partition (fun n -> Node.kind n = Node.Attribute) sources
    in
    let target_node = Item.one_node (eval ctx target) in
    let fields = Context.fields ctx in
    (match pos with
    | Ast.Into ->
      if attrs <> [] then
        fields.pul := Update.Insert_attributes (target_node, attrs) :: !(fields.pul);
      if others <> [] then
        fields.pul := Update.Insert_into (target_node, others) :: !(fields.pul)
    | Ast.Into_first ->
      fields.pul := Update.Insert_first (target_node, others) :: !(fields.pul)
    | Ast.Into_last ->
      fields.pul := Update.Insert_last (target_node, others) :: !(fields.pul)
    | Ast.Before ->
      fields.pul := Update.Insert_before (target_node, others) :: !(fields.pul)
    | Ast.After ->
      fields.pul := Update.Insert_after (target_node, others) :: !(fields.pul));
    []
  | Ast.Delete target ->
    check_updating ctx;
    let nodes = Item.nodes_only (eval ctx target) in
    let fields = Context.fields ctx in
    List.iter
      (fun n -> fields.pul := Update.Delete_node n :: !(fields.pul))
      nodes;
    []
  | Ast.Replace { value_of; target; source } ->
    check_updating ctx;
    let target_node = Item.one_node (eval ctx target) in
    let fields = Context.fields ctx in
    if value_of then begin
      let s =
        String.concat " "
          (List.map Atomic.to_string (Item.atomize (eval ctx source)))
      in
      fields.pul := Update.Replace_value (target_node, s) :: !(fields.pul)
    end
    else begin
      let sources =
        List.map Node.deep_copy (Item.nodes_only (eval ctx source))
      in
      fields.pul := Update.Replace_node (target_node, sources) :: !(fields.pul)
    end;
    []
  | Ast.Rename (target, name_spec) ->
    check_updating ctx;
    let target_node = Item.one_node (eval ctx target) in
    let name = eval_name_spec ctx ~element:true name_spec in
    let fields = Context.fields ctx in
    fields.pul := Update.Rename_node (target_node, name) :: !(fields.pul);
    []
  | Ast.Transform (copies, modify, ret) ->
    (* copy … modify … return: a self-contained snapshot; does not
       require updating_ok because it only modifies fresh copies *)
    let ctx', _copies =
      List.fold_left
        (fun (ctx, acc) (v, e) ->
          let n = Item.one_node (eval ctx e) in
          let copy = Node.deep_copy n in
          (Context.bind ctx v [ Item.Node copy ], copy :: acc))
        (ctx, []) copies
    in
    let inner_pul = ref [] in
    let fields' = Context.fields ctx' in
    let mod_ctx =
      Context.with_updating
        (Context.with_vars ctx' fields'.vars)
        true
    in
    (* swap in a fresh PUL for the snapshot *)
    let mod_fields = Context.fields mod_ctx in
    let saved = !(mod_fields.pul) in
    mod_fields.pul := [];
    let result = eval mod_ctx modify in
    if result <> [] then
      err "XUST0001" "the modify clause must be an updating expression";
    inner_pul := List.rev !(mod_fields.pul);
    mod_fields.pul := saved;
    Update.apply !inner_pul;
    eval ctx' ret

and node_comparison ctx a b pred =
  let na = eval ctx a in
  let nb = eval ctx b in
  node_comparison_seq na nb pred

and check_updating ctx =
  if not (Context.fields ctx).updating_ok then
    err "XUST0001"
      "updating expressions are only allowed in an update statement"

and eval_name_spec ctx ~element = function
  | Ast.Static_name qn -> qn
  | Ast.Dynamic_name e -> name_spec_atom ~element (Item.one_atom (eval ctx e))

(* Predicates: numeric singleton = positional test, otherwise EBV. *)
and apply_predicates ctx preds items =
  List.fold_left
    (fun items pred ->
      let size = List.length items in
      List.filteri
        (fun i item ->
          let fctx = Context.with_focus ctx item ~pos:(i + 1) ~size in
          let v = eval fctx pred in
          match v with
          | [ Item.Atomic a ] when Atomic.is_numeric a ->
            Float.equal (Atomic.to_double a) (float_of_int (i + 1))
          | v -> Item.effective_boolean_value v)
        items)
    items preds

(* FLWOR: tuples are variable environments. *)
and eval_flwor ctx clauses ret =
  let tuples = eval_clauses ctx [ (Context.fields ctx).vars ] clauses in
  List.concat_map
    (fun vars -> eval (Context.with_vars ctx vars) ret)
    tuples

and eval_clauses ctx tuples = function
  | [] -> tuples
  | Ast.For_clause bindings :: rest ->
    let tuples =
      List.fold_left
        (fun tuples b ->
          List.concat_map
            (fun vars ->
              let items = eval (Context.with_vars ctx vars) b.Ast.for_expr in
              let items =
                match b.Ast.for_type with
                | Some ty ->
                  List.concat_map
                    (fun i ->
                      Seqtype.check
                        ~what:(Printf.sprintf "$%s" (Qname.to_string b.Ast.for_var))
                        ty [ i ])
                    items
                | None -> items
              in
              List.mapi
                (fun i item ->
                  let vars = Qmap.add b.Ast.for_var [ item ] vars in
                  match b.Ast.for_pos with
                  | Some pv ->
                    Qmap.add pv [ Item.Atomic (Atomic.Integer (i + 1)) ] vars
                  | None -> vars)
                items)
            tuples)
        tuples bindings
    in
    eval_clauses ctx tuples rest
  | Ast.Let_clause bindings :: rest ->
    let tuples =
      List.fold_left
        (fun tuples b ->
          List.map
            (fun vars ->
              let v = eval (Context.with_vars ctx vars) b.Ast.let_expr in
              let v =
                match b.Ast.let_type with
                | Some ty ->
                  Seqtype.check
                    ~what:(Printf.sprintf "$%s" (Qname.to_string b.Ast.let_var))
                    ty v
                | None -> v
              in
              Qmap.add b.Ast.let_var v vars)
            tuples)
        tuples bindings
    in
    eval_clauses ctx tuples rest
  | Ast.Where_clause cond :: rest ->
    let tuples =
      List.filter
        (fun vars -> ebv_cur (eval_cur (Context.with_vars ctx vars) cond))
        tuples
    in
    eval_clauses ctx tuples rest
  | Ast.Order_clause (_stable, specs) :: rest ->
    let keyed =
      List.map
        (fun vars ->
          let keys =
            List.map
              (fun spec ->
                ( Item.one_atom_opt (eval (Context.with_vars ctx vars) spec.Ast.key),
                  spec ))
              specs
          in
          (vars, keys))
        tuples
    in
    eval_clauses ctx (order_sort keyed) rest
  | Ast.Join_clause j :: rest ->
    (* build side: hash join_source items by join_build_key *)
    let table = Hashtbl.create 64 in
    let source_items = eval ctx j.Ast.join_source in
    List.iter
      (fun item ->
        let kctx = Context.bind ctx j.Ast.join_var [ item ] in
        match Item.one_atom_opt (eval kctx j.Ast.join_build_key) with
        | Some a ->
          let key = Atomic.to_string a in
          Hashtbl.replace table key
            (match Hashtbl.find_opt table key with
            | Some items -> item :: items
            | None -> [ item ])
        | None -> ())
      source_items;
    let tuples =
      List.concat_map
        (fun vars ->
          let pctx = Context.with_vars ctx vars in
          match Item.one_atom_opt (eval pctx j.Ast.join_probe_key) with
          | Some a -> (
            match Hashtbl.find_opt table (Atomic.to_string a) with
            | Some matches ->
              List.rev_map
                (fun item -> Qmap.add j.Ast.join_var [ item ] vars)
                matches
            | None -> [])
          | None -> [])
        tuples
    in
    eval_clauses ctx tuples rest

(* Adjacent text nodes merge into one in constructed content (XQuery
   3.7.1.3). *)
and merge_text_children el =
  let children = Node.children el in
  let rec has_adjacent = function
    | a :: (b :: _ as rest) ->
      (Node.kind a = Node.Text && Node.kind b = Node.Text)
      || has_adjacent rest
    | _ -> false
  in
  if has_adjacent children then begin
    let rec merged = function
      | a :: b :: rest when Node.kind a = Node.Text && Node.kind b = Node.Text
        ->
        merged (Node.text (Node.text_content a ^ Node.text_content b) :: rest)
      | c :: rest -> c :: merged rest
      | [] -> []
    in
    let nc = merged children in
    List.iter Node.detach children;
    List.iter (Node.append_child el) nc
  end

(* Element construction. *)
and construct_element ctx name attrs contents =
  let el = Node.element name [] in
  List.iter
    (fun (an, parts) ->
      let v =
        String.concat ""
          (List.map
             (function
               | Ast.Attr_str s -> s
               | Ast.Attr_expr e ->
                 String.concat " "
                   (List.map Atomic.to_string (Item.atomize (eval ctx e))))
             parts)
      in
      Node.set_attribute el an v)
    attrs;
  List.iter
    (fun part ->
      match part with
      | Ast.Content_text s -> Node.append_child el (Node.text s)
      | Ast.Content_node e | Ast.Content_expr e ->
        attach_content el (eval ctx e))
    contents;
  merge_text_children el;
  el

(* Attach a sequence as element content per the construction rules:
   adjacent atomics become a space-separated text node; nodes are
   deep-copied; attribute nodes become attributes; document nodes are
   spliced. *)
and attach_content el items =
  let flush_atoms atoms =
    if atoms <> [] then
      Node.append_child el
        (Node.text (String.concat " " (List.rev_map Atomic.to_string atoms)))
  in
  let rec go atoms = function
    | [] -> flush_atoms atoms
    | Item.Atomic a :: rest -> go (a :: atoms) rest
    | Item.Node n :: rest -> (
      flush_atoms atoms;
      match Node.kind n with
      | Node.Attribute -> (
        match Node.name n with
        | Some an -> (
          if Node.children el <> [] then
            err "XQTY0024"
              "attribute nodes must precede other element content";
          match Node.attribute_value el an with
          | Some _ ->
            err "XQDY0025"
              (Printf.sprintf "duplicate attribute %S" (Qname.to_string an))
          | None ->
            Node.set_attribute el an (Node.string_value n);
            go [] rest)
        | None -> go [] rest)
      | Node.Document ->
        List.iter
          (fun c -> Node.append_child el (Node.deep_copy c))
          (Node.children n);
        go [] rest
      | _ ->
        Node.append_child el (Node.deep_copy n);
        go [] rest)
  in
  (* reversed-atom accumulation keeps order: we reverse on flush *)
  go [] items

and call ctx name arg_vals =
  let fields = Context.fields ctx in
  let arity = List.length arg_vals in
  match Context.find fields.registry name arity with
  | None ->
    Item.raise_error (Qname.err "XPST0017")
      (Printf.sprintf "unknown function %s/%d" (Qname.to_string name) arity)
  | Some f -> (
    let run () = invoke ctx fields name f arg_vals in
    match (fields.cache, f.Context.fn_impl) with
    | ( Some b,
        (Context.User _ | Context.External _ | Context.External_cursor _) ) ->
      (* the result cache only ever sees host/user functions: builtins
         are language primitives, never data-service reads *)
      Cache.through b name arg_vals run
    | _ -> run ())

and invoke ctx fields name f arg_vals =
  match f.Context.fn_impl with
  | Context.Builtin impl -> impl ctx arg_vals
  | Context.External impl -> impl arg_vals
  | Context.External_cursor impl ->
    Cursor.to_list ~instr:fields.instr (impl arg_vals)
  | Context.User decl ->
    let ctx = Context.deeper ctx in
      let params = decl.Ast.fd_params in
      let checked =
        List.map2
          (fun (pname, pty) v ->
            let v =
              match pty with
              | Some ty ->
                Seqtype.check
                  ~what:(Printf.sprintf "argument $%s of %s"
                           (Qname.to_string pname) (Qname.to_string name))
                  ty v
              | None -> v
            in
            (pname, v))
          params arg_vals
      in
      let base = Context.globals fields.registry in
      let vars =
        List.fold_left (fun m (n, v) -> Qmap.add n v m) base checked
      in
      let body =
        match decl.Ast.fd_body with
        | Some b -> b
        | None ->
          Item.raise_error (Qname.err "XPST0017")
            (Printf.sprintf "external function %s has no implementation"
               (Qname.to_string name))
      in
      let fctx = Context.no_focus (Context.with_vars ctx vars) in
      let result = eval fctx body in
      (match decl.Ast.fd_return with
      | Some ty ->
        Seqtype.check
          ~what:(Printf.sprintf "result of %s" (Qname.to_string name))
          ty result
      | None -> result)

and range_bounds ctx a b =
  let va = eval ctx a in
  let vb = eval ctx b in
  range_bounds_seq va vb

(* Shared tail of path evaluation: node/atomic homogeneity check and
   document-order sort. *)
and path_finish results =
  let all_nodes =
    List.for_all (function Item.Node _ -> true | _ -> false) results
  in
  let all_atomic =
    List.for_all (function Item.Atomic _ -> true | _ -> false) results
  in
  if all_nodes then Item.doc_sort results
  else if all_atomic then results
  else
    Item.raise_error (Qname.err "XPTY0018")
      "path result mixes nodes and atomic values"

(* Eager path schedule over a pre-evaluated left sequence. *)
and path_over ctx left b =
  let size = List.length left in
  path_finish
    (List.concat
       (List.mapi
          (fun i item ->
            eval (Context.with_focus ctx item ~pos:(i + 1) ~size) b)
          left))

(* Stream the left side of a path: pull one left item at a time and
   apply the step under the correct position. Gates: the step must not
   construct (cross-tree document order is allocation order, so
   interleaving a constructing step with a constructing source would be
   observable), must not have effects, must not mention fn:last() (the
   focus size is never computed — the step sees a dummy size), and may
   be fallible only over a pure left side (two fallible streams would
   reorder errors relative to the eager schedule). The result is still
   materialized and doc-sorted; the win is never holding the full left
   sequence. *)
and path_stream ctx a b =
  let f = Context.fields ctx in
  if not f.streaming then None
  else
    let eff, fall, cons = f.purity b in
    if eff || cons || mentions_last b then None
    else
      let la = eval_cur ctx a in
      if fall && not (Cursor.is_pure la) then
        Some (path_over ctx (materialize ctx la) b)
      else begin
        let rec go i acc =
          match Cursor.next la with
          | None -> List.rev acc
          | Some item ->
            let r = eval (Context.with_focus ctx item ~pos:(i + 1) ~size:0) b in
            go (i + 1) (List.rev_append r acc)
        in
        Some (path_finish (go 0 []))
      end

(* Positional [n] over a pure source pulls exactly n items. *)
and filter_pos_stream ctx prim preds =
  let f = Context.fields ctx in
  if not f.streaming then None
  else
    match preds with
    | [ Ast.Literal (Atomic.Integer k) ] when k >= 1 -> (
      let c = eval_cur ctx prim in
      if not (Cursor.is_pure c) then
        Some (apply_predicates ctx preds (materialize ctx c))
      else
        let rec go i =
          match Cursor.next c with
          | None -> []
          | Some x ->
            if i = k then begin
              Cursor.abandon c;
              [ x ]
            end
            else go (i + 1)
        in
        Some (go 1))
    | _ -> None

(* Single-binding quantifier over a pure source: pull, test, stop on
   the deciding item. The eager schedule materializes the (pure) source
   first and then short-circuits the same tests in the same order, so
   interleaving pure pulls between tests is unobservable. *)
and quantified_stream ctx quant bindings body =
  let f = Context.fields ctx in
  match bindings with
  | [ (v, None, src) ] when f.streaming ->
    let c = eval_cur ctx src in
    let test item = ebv_cur (eval_cur (Context.bind ctx v [ item ]) body) in
    if Cursor.is_pure c then
      let rec go () =
        match Cursor.next c with
        | None -> ( match quant with Ast.Some_q -> false | Ast.Every_q -> true)
        | Some item -> (
          match (quant, test item) with
          | Ast.Some_q, true ->
            Cursor.abandon c;
            true
          | Ast.Every_q, false ->
            Cursor.abandon c;
            false
          | _ -> go ())
      in
      Some (go ())
    else
      (* the cursor is already open: continue on the materialized items *)
      let items = materialize ctx c in
      Some
        (match quant with
        | Ast.Some_q -> List.exists test items
        | Ast.Every_q -> List.for_all test items)
  | _ -> None

(* Eager FLWOR schedule with the first [for] source pre-evaluated (used
   when a streaming gate fails after the source cursor is already
   open). *)
and flwor_over_items ctx items b0 rest ret =
  let base = (Context.fields ctx).vars in
  let tuples =
    List.mapi
      (fun i item ->
        let vars = Qmap.add b0.Ast.for_var [ item ] base in
        match b0.Ast.for_pos with
        | Some pv -> Qmap.add pv [ Item.Atomic (Atomic.Integer (i + 1)) ] vars
        | None -> vars)
      items
  in
  let tuples = eval_clauses ctx tuples rest in
  List.concat_map (fun vars -> eval (Context.with_vars ctx vars) ret) tuples

(* Stream a FLWOR: a single leading [for] binding driven one item at a
   time, [let]/[where] stages applied per item, the return expression
   streamed recursively. Gates: deferred stages (lets, wheres, return)
   must neither construct (allocation-order interleaving would be
   observable through document order) nor have effects; at most one
   stage may be fallible, and then only over a pure source — otherwise
   the depth-first schedule would reorder errors relative to the eager
   breadth-first one. A where whose value is not statically boolean
   counts as fallible (its EBV can raise FORG0006). *)
and flwor_cur ctx clauses ret =
  let f = Context.fields ctx in
  if not f.streaming then None
  else
    match clauses with
    | Ast.For_clause [ b0 ] :: rest
      when b0.Ast.for_type = None
           && List.for_all
                (function
                  | Ast.For_clause _ | Ast.Order_clause _ | Ast.Join_clause _
                    ->
                    false
                  | Ast.Let_clause bs ->
                    List.for_all (fun b -> b.Ast.let_type = None) bs
                  | Ast.Where_clause _ -> true)
                rest ->
      let stage_verdicts =
        List.concat_map
          (function
            | Ast.Let_clause bs ->
              List.map (fun b -> f.purity b.Ast.let_expr) bs
            | Ast.Where_clause w ->
              let eff, fall, cons = f.purity w in
              [ (eff, fall || not (Purity.boolean_valued w), cons) ]
            | _ -> [])
          rest
        @ [ f.purity ret ]
      in
      if List.exists (fun (eff, _, cons) -> eff || cons) stage_verdicts then
        None
      else begin
        let fallible_stages =
          List.length (List.filter (fun (_, fall, _) -> fall) stage_verdicts)
        in
        let c0 = eval_cur ctx b0.Ast.for_expr in
        if
          fallible_stages > 1
          || (fallible_stages = 1 && not (Cursor.is_pure c0))
        then
          (* the source cursor is already open: fall back to the eager
             clause schedule over the materialized source *)
          Some
            (Cursor.of_list
               (flwor_over_items ctx (materialize ctx c0) b0 rest ret))
        else begin
          let base = f.vars in
          let idx = ref 0 and cur_ret = ref None in
          let rec pull () =
            match !cur_ret with
            | Some rc -> (
              match Cursor.next rc with
              | Some _ as r -> r
              | None ->
                cur_ret := None;
                pull ())
            | None -> (
              match Cursor.next c0 with
              | None -> None
              | Some item ->
                incr idx;
                let vars = Qmap.add b0.Ast.for_var [ item ] base in
                let vars =
                  match b0.Ast.for_pos with
                  | Some pv ->
                    Qmap.add pv [ Item.Atomic (Atomic.Integer !idx) ] vars
                  | None -> vars
                in
                stages vars rest)
          and stages vars = function
            | [] ->
              cur_ret := Some (eval_cur (Context.with_vars ctx vars) ret);
              pull ()
            | Ast.Let_clause bs :: more ->
              let vars =
                List.fold_left
                  (fun vars b ->
                    Qmap.add b.Ast.let_var
                      (eval (Context.with_vars ctx vars) b.Ast.let_expr)
                      vars)
                  vars bs
              in
              stages vars more
            | Ast.Where_clause w :: more ->
              if ebv_cur (eval_cur (Context.with_vars ctx vars) w) then
                stages vars more
              else pull ()
            | _ -> assert false
          in
          Some
            (Cursor.make
               ~pure:(Cursor.is_pure c0 && fallible_stages = 0)
               ~cleanup:(fun () ->
                 (match !cur_ret with
                 | Some rc -> Cursor.abandon rc
                 | None -> ());
                 Cursor.abandon c0)
               pull)
        end
      end
    | _ -> None

(* Streaming interception of sequence-cardinality builtins: resolve the
   name first so a user override still wins, then evaluate the sequence
   argument as a cursor and stop as early as the semantics allow. *)
and streaming_call ctx name args =
  let f = Context.fields ctx in
  if not f.streaming || not (String.equal name.Qname.uri Qname.fn_ns) then None
  else
    let is_builtin () =
      match Context.find f.registry name (List.length args) with
      | Some { Context.fn_impl = Context.Builtin _; _ } -> true
      | _ -> false
    in
    match (name.Qname.local, args) with
    | "exists", [ e ] when is_builtin () ->
      Some (Item.bool (cursor_nonempty (eval_cur ctx e)))
    | "empty", [ e ] when is_builtin () ->
      Some (Item.bool (not (cursor_nonempty (eval_cur ctx e))))
    | "head", [ e ] when is_builtin () -> (
      let c = eval_cur ctx e in
      match Cursor.next c with
      | Some x ->
        Cursor.abandon c;
        Some [ x ]
      | None ->
        Cursor.close c;
        Some [])
    | "count", [ e ] when is_builtin () ->
      (* full drain, but O(1) retained memory *)
      let c = eval_cur ctx e in
      let rec go n = match Cursor.next c with Some _ -> go (n + 1) | None -> n in
      Some (Item.int (go 0))
    | "boolean", [ e ] when is_builtin () ->
      Some (Item.bool (ebv_cur (eval_cur ctx e)))
    | "not", [ e ] when is_builtin () ->
      Some (Item.bool (not (ebv_cur (eval_cur ctx e))))
    | "subsequence", [ e; starte ] when is_builtin () ->
      Some
        (streaming_subsequence ctx (eval_cur ctx e)
           (fun () -> eval ctx starte)
           None)
    | "subsequence", [ e; starte; lene ] when is_builtin () ->
      Some
        (streaming_subsequence ctx (eval_cur ctx e)
           (fun () -> eval ctx starte)
           (Some (fun () -> eval ctx lene)))
    | _ -> None

(* fn:subsequence with the sequence argument streamed; shared between
   the interpreted and compiled paths, so the cursor arrives already
   opened and the start/length arguments arrive as thunks. The thunks
   are forced after the cursor is opened, matching the eager
   left-to-right argument order; when the cursor is impure it is
   materialized first (restoring the exact eager schedule), when pure
   the pending pulls commute with those evaluations. Index arithmetic is
   byte-for-byte the eager builtin's. *)
and streaming_subsequence ctx c startv lenv =
  let pre = if Cursor.is_pure c then None else Some (materialize ctx c) in
  let dbl v =
    match Item.one_atom_opt (v ()) with
    | None -> None
    | Some a -> (
      try Some (Atomic.to_double a)
      with Atomic.Cast_error m -> err "XPTY0004" m)
  in
  let bounds =
    match lenv with
    | None -> (
      match dbl startv with
      | None -> None
      | Some s -> Some (Builtins.subsequence_window s None))
    | Some lv -> (
      let sv = dbl startv in
      let lv = dbl lv in
      match (sv, lv) with
      | None, _ | _, None -> None
      | Some s, Some l -> Some (Builtins.subsequence_window s (Some l)))
  in
  match bounds with
  | None ->
    (match pre with None -> Cursor.abandon c | Some _ -> ());
    []
  | Some ((start, stop) as w) -> (
    match pre with
    | Some items ->
      List.filteri (fun i _ -> Builtins.subsequence_keep w (i + 1)) items
    | None ->
      if Float.is_nan start || Float.is_nan stop then begin
        (* no position can pass a NaN bound: nothing to collect *)
        Cursor.abandon c;
        []
      end
      else
        (* once the position reaches the exclusive upper bound no later
           position can match either — safe to abandon *)
        let rec go i acc =
          if float_of_int (i + 1) >= stop then begin
            Cursor.abandon c;
            List.rev acc
          end
          else
            match Cursor.next c with
            | None -> List.rev acc
            | Some x ->
              go (i + 1)
                (if Builtins.subsequence_keep w (i + 1) then x :: acc else acc)
        in
        go 0 [])

(* Produce a cursor for [e]. The default arm evaluates eagerly and
   wraps the result — an of_list cursor is always pure, since its pulls
   cannot raise or act. Streaming arms defer work only where the laws
   in DESIGN.md §13 guarantee a consumer cannot observe the
   difference. *)
and eval_cur ctx (e : Ast.expr) : Item.t Cursor.t =
  let f = Context.fields ctx in
  if not f.streaming then Cursor.of_list (eval ctx e)
  else
    match e with
    | Ast.Seq_expr es ->
      (* lazy sequential concatenation: components are never
         interleaved, so deferring them is order-safe even when they
         construct; the chain is skippable only when every component is
         total under the purity environment *)
      let total e' =
        let eff, fall, _ = f.purity e' in
        (not eff) && not fall
      in
      Cursor.chain
        ~pure:(List.for_all total es)
        (List.map (fun e' () -> eval_cur ctx e') es)
    | Ast.Range (a, b) -> (
      match range_bounds ctx a b with
      | None -> Cursor.empty ()
      | Some (lo, hi) ->
        let i = ref lo in
        Cursor.make ~pure:true ~instr:f.instr (fun () ->
            if !i > hi then None
            else begin
              let v = !i in
              incr i;
              Some (Item.Atomic (Atomic.Integer v))
            end))
    | Ast.If_expr (c, t, e2) ->
      if ebv_cur (eval_cur ctx c) then eval_cur ctx t else eval_cur ctx e2
    | Ast.Call (name, args) -> (
      match Context.find f.registry name (List.length args) with
      | Some { Context.fn_impl = Context.External_cursor impl; _ } ->
        impl (List.map (eval ctx) args)
      | _ -> Cursor.of_list (eval ctx e))
    | Ast.Flwor (clauses, ret) -> (
      match flwor_cur ctx clauses ret with
      | Some c -> c
      | None -> Cursor.of_list (eval_flwor ctx clauses ret))
    | _ -> Cursor.of_list (eval ctx e)

let eval_updating ctx e =
  let fields = Context.fields ctx in
  let saved = !(fields.pul) in
  fields.pul := [];
  let uctx = Context.with_updating ctx true in
  let result = eval uctx e in
  let pul = List.rev !(fields.pul) in
  fields.pul := saved;
  if result <> [] then
    err "XUST0001"
      "an update statement requires an updating expression (it returned a value)";
  pul

(* ------------------------------------------------------------------ *)
(* Stage 2: closure compilation                                         *)
(* ------------------------------------------------------------------ *)

(* [compile] walks an expression once and closes over everything the
   tree-walking evaluator re-derives per evaluation: constructor
   dispatch, name resolution against the registry, purity/streaming
   gate verdicts and nested sub-plans. The resulting [plan] is a plain
   closure [ctx -> seq] whose observable behaviour — items, effects,
   errors, instrumentation counters, evaluation order — is identical to
   [eval]; every arm below mirrors its [eval] arm line for line, with
   the per-evaluation analysis hoisted to compile time.

   What is fixed at compile time (and therefore part of the plan-cache
   fingerprint maintained by Engine/Session): the registry contents for
   names that resolve, and the purity environment. Both are sound to
   freeze: [Context.register] rejects redefinition, so a name that
   resolved at compile time cannot change, and a name that did *not*
   resolve compiles to a runtime-lookup fallback so late registrations
   (XQSE readonly procedures declared mid-block) still work and a name
   that is never executed still raises XPST0017 only on execution.

   What stays dynamic: the [streaming] flag is read from the context at
   run time, so one cached plan serves both modes of the same engine;
   variables, focus, documents and collections come from the context as
   always. Update expressions compile to an interpreter escape hatch —
   they run once per statement and gain nothing from staging. *)

type plan = Context.dynamic -> Item.seq

(* Sub-plan memo keyed on physical identity: an expression node needed
   both eagerly and as a cursor (or shared after optimizer rewrites) is
   compiled once per mode, which also bounds compilation of nested
   [Seq_expr]/[Path] chains that would otherwise recompile subtrees
   exponentially. *)
module PhysTbl = Hashtbl.Make (struct
  type t = Ast.expr

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type compiler = {
  c_purity : Ast.expr -> bool * bool * bool;
  c_registry : Context.registry;
  c_eager : plan PhysTbl.t;
  c_cur : (Context.dynamic -> Item.t Cursor.t) PhysTbl.t;
  c_fns :
    ( string * string * int,
      Context.dynamic -> Item.seq list -> Item.seq )
    Hashtbl.t;
      (* per-(uri, local, arity) compiled user-function bodies; entries
         are installed as forward references before the body compiles,
         which ties the knot for (mutually) recursive functions *)
}

let compiler ?(purity = fun _ -> (true, true, true)) registry =
  {
    c_purity = purity;
    c_registry = registry;
    c_eager = PhysTbl.create 64;
    c_cur = PhysTbl.create 16;
    c_fns = Hashtbl.create 8;
  }

let rec compile cc e =
  match PhysTbl.find_opt cc.c_eager e with
  | Some p -> p
  | None ->
    let p = compile_expr cc e in
    PhysTbl.replace cc.c_eager e p;
    p

and compile_cur cc e =
  match PhysTbl.find_opt cc.c_cur e with
  | Some p -> p
  | None ->
    let p = compile_cur_expr cc e in
    PhysTbl.replace cc.c_cur e p;
    p

and compile_expr cc (e : Ast.expr) : plan =
  match e with
  | Ast.Literal a ->
    let v = [ Item.Atomic a ] in
    fun _ -> v
  | Ast.Var q -> (
    fun ctx ->
      match Context.lookup_var ctx q with
      | Some v -> v
      | None ->
        Item.raise_error (Qname.err "XPST0008")
          (Printf.sprintf "undefined variable $%s" (Qname.to_string q)))
  | Ast.Context_item -> (
    fun ctx ->
      match (Context.fields ctx).ctx_item with
      | Some item -> [ item ]
      | None -> err "XPDY0002" "the context item is not defined")
  | Ast.Seq_expr es ->
    let ps = List.map (compile cc) es in
    fun ctx -> List.concat_map (fun p -> p ctx) ps
  | Ast.Range (a, b) ->
    let pa = compile cc a and pb = compile cc b in
    fun ctx -> (
      let va = pa ctx in
      let vb = pb ctx in
      match range_bounds_seq va vb with
      | None -> []
      | Some (lo, hi) -> range_list lo hi)
  | Ast.Arith (op, a, b) ->
    let pa = compile cc a and pb = compile cc b in
    fun ctx ->
      let va = pa ctx in
      let vb = pb ctx in
      arith_seq op va vb
  | Ast.Neg a ->
    let pa = compile cc a in
    fun ctx -> neg_seq (pa ctx)
  | Ast.And (a, b) ->
    let ca = compile_cur cc a and cb = compile_cur cc b in
    fun ctx -> Item.bool (ebv_cur (ca ctx) && ebv_cur (cb ctx))
  | Ast.Or (a, b) ->
    let ca = compile_cur cc a and cb = compile_cur cc b in
    fun ctx -> Item.bool (ebv_cur (ca ctx) || ebv_cur (cb ctx))
  | Ast.General_cmp (op, a, b) ->
    let pa = compile cc a and pb = compile cc b in
    fun ctx ->
      let va = pa ctx in
      let vb = pb ctx in
      general_cmp_seq op va vb
  | Ast.Value_cmp (op, a, b) ->
    let pa = compile cc a and pb = compile cc b in
    fun ctx ->
      let va = pa ctx in
      let vb = pb ctx in
      value_cmp_seq op va vb
  | Ast.Node_is (a, b) ->
    compile_node_comparison cc a b (fun x y -> Node.is_same x y)
  | Ast.Node_before (a, b) ->
    compile_node_comparison cc a b (fun x y -> Node.doc_order x y < 0)
  | Ast.Node_after (a, b) ->
    compile_node_comparison cc a b (fun x y -> Node.doc_order x y > 0)
  | Ast.Union (a, b) ->
    let pa = compile cc a and pb = compile cc b in
    fun ctx -> Item.doc_sort (pa ctx @ pb ctx)
  | Ast.Intersect (a, b) ->
    let pa = compile cc a and pb = compile cc b in
    fun ctx ->
      let nb = Item.nodes_only (pb ctx) in
      Item.doc_sort
        (List.filter
           (function
             | Item.Node n -> List.exists (Node.is_same n) nb
             | Item.Atomic _ -> Item.type_error "intersect requires nodes")
           (pa ctx))
  | Ast.Except (a, b) ->
    let pa = compile cc a and pb = compile cc b in
    fun ctx ->
      let nb = Item.nodes_only (pb ctx) in
      Item.doc_sort
        (List.filter
           (function
             | Item.Node n -> not (List.exists (Node.is_same n) nb)
             | Item.Atomic _ -> Item.type_error "except requires nodes")
           (pa ctx))
  | Ast.Instance_of (a, ty) ->
    let pa = compile cc a in
    fun ctx -> Item.bool (Seqtype.matches ty (pa ctx))
  | Ast.Treat_as (a, ty) ->
    let pa = compile cc a in
    fun ctx ->
      let v = pa ctx in
      if Seqtype.matches ty v then v
      else
        Item.raise_error (Qname.err "XPDY0050")
          (Printf.sprintf "treat as %s failed" (Seqtype.to_string ty))
  | Ast.Castable_as (a, ty, opt) -> (
    let pa = compile cc a in
    fun ctx ->
      match Item.atomize (pa ctx) with
      | [] -> Item.bool opt
      | [ v ] -> Item.bool (Atomic.can_cast_to v ty)
      | _ -> Item.bool false)
  | Ast.Cast_as (a, ty, opt) -> (
    let pa = compile cc a in
    fun ctx ->
      match Item.atomize (pa ctx) with
      | [] ->
        if opt then []
        else err "XPTY0004" "cast of an empty sequence to a non-optional type"
      | [ v ] -> (
        try [ Item.Atomic (Atomic.cast_to v ty) ]
        with Atomic.Cast_error msg -> err "FORG0001" msg)
      | _ -> err "XPTY0004" "cast of a sequence of more than one item")
  | Ast.If_expr (c, t, e2) ->
    let ccond = compile_cur cc c in
    let pt = compile cc t and pe = compile cc e2 in
    fun ctx -> if ebv_cur (ccond ctx) then pt ctx else pe ctx
  | Ast.Typeswitch (operand, cases, (dvar, default)) -> (
    let pop = compile cc operand in
    let ccases = List.map (fun c -> (c, compile cc c.Ast.case_return)) cases in
    let pdef = compile cc default in
    fun ctx ->
      let v = pop ctx in
      match
        List.find_opt (fun (c, _) -> Seqtype.matches c.Ast.case_type v) ccases
      with
      | Some (c, pret) ->
        let ctx =
          match c.Ast.case_var with
          | Some var -> Context.bind ctx var v
          | None -> ctx
        in
        pret ctx
      | None ->
        let ctx =
          match dvar with Some var -> Context.bind ctx var v | None -> ctx
        in
        pdef ctx)
  | Ast.Flwor (clauses, ret) -> (
    let cclauses = List.map (compile_clause cc) clauses in
    let pret = compile cc ret in
    let eager ctx =
      let tuples =
        List.fold_left
          (fun tuples cl -> cl ctx tuples)
          [ (Context.fields ctx).vars ]
          cclauses
      in
      List.concat_map (fun vars -> pret (Context.with_vars ctx vars)) tuples
    in
    match compile_flwor_stream cc clauses ret with
    | Some splan ->
      fun ctx ->
        if (Context.fields ctx).streaming then materialize ctx (splan ctx)
        else eager ctx
    | None -> eager)
  | Ast.Quantified (quant, bindings, body) -> (
    let cbody_cur = compile_cur cc body in
    let cbindings =
      List.map (fun (v, ty, src) -> (v, ty, compile cc src)) bindings
    in
    let eager ctx =
      let rec go ctx = function
        | [] -> ebv_cur (cbody_cur ctx)
        | (v, ty, psrc) :: rest ->
          let items = psrc ctx in
          let items =
            match ty with
            | Some t ->
              List.map
                (fun i ->
                  match Seqtype.check ~what:(Qname.to_string v) t [ i ] with
                  | [ i' ] -> i'
                  | _ -> i)
                items
            | None -> items
          in
          let test item = go (Context.bind ctx v [ item ]) rest in
          (match quant with
          | Ast.Some_q -> List.exists test items
          | Ast.Every_q -> List.for_all test items)
      in
      Item.bool (go ctx cbindings)
    in
    match bindings with
    | [ (v, None, src) ] ->
      let csrc = compile_cur cc src in
      fun ctx ->
        if not (Context.fields ctx).streaming then eager ctx
        else begin
          let c = csrc ctx in
          let test item =
            ebv_cur (cbody_cur (Context.bind ctx v [ item ]))
          in
          if Cursor.is_pure c then
            let rec go () =
              match Cursor.next c with
              | None -> (
                match quant with Ast.Some_q -> false | Ast.Every_q -> true)
              | Some item -> (
                match (quant, test item) with
                | Ast.Some_q, true ->
                  Cursor.abandon c;
                  true
                | Ast.Every_q, false ->
                  Cursor.abandon c;
                  false
                | _ -> go ())
            in
            Item.bool (go ())
          else
            let items = materialize ctx c in
            Item.bool
              (match quant with
              | Ast.Some_q -> List.exists test items
              | Ast.Every_q -> List.for_all test items)
        end
    | _ -> eager)
  | Ast.Path (a, b) ->
    let pa = compile cc a in
    let pb = compile cc b in
    let eager ctx = compile_path_over ctx (pa ctx) pb in
    let eff, fall, cons = cc.c_purity b in
    if eff || cons || mentions_last b then eager
    else
      let ca = compile_cur cc a in
      fun ctx ->
        if not (Context.fields ctx).streaming then eager ctx
        else begin
          let la = ca ctx in
          if fall && not (Cursor.is_pure la) then
            compile_path_over ctx (materialize ctx la) pb
          else
            let rec go i acc =
              match Cursor.next la with
              | None -> List.rev acc
              | Some item ->
                let r =
                  pb (Context.with_focus ctx item ~pos:(i + 1) ~size:0)
                in
                go (i + 1) (List.rev_append r acc)
            in
            path_finish (go 0 [])
        end
  | Ast.Root_expr -> (
    fun ctx ->
      match (Context.fields ctx).ctx_item with
      | Some (Item.Node n) -> [ Item.Node (Node.root n) ]
      | Some (Item.Atomic _) -> err "XPTY0020" "the context item is not a node"
      | None -> err "XPDY0002" "the context item is not defined")
  | Ast.Step (axis, nt, preds) -> (
    let cpreds = compile_predicates cc preds in
    let rev = reverse_axis axis in
    fun ctx ->
      match (Context.fields ctx).ctx_item with
      | Some (Item.Node n) ->
        let candidates = axis_nodes axis n in
        let matched =
          List.filter (fun c -> nodetest_matches ~axis nt c) candidates
        in
        let filtered = cpreds ctx (List.map (fun n -> Item.Node n) matched) in
        if rev then Item.doc_sort filtered else filtered
      | Some (Item.Atomic _) -> err "XPTY0020" "the context item is not a node"
      | None -> err "XPDY0002" "the context item is not defined")
  | Ast.Filter (prim, preds) -> (
    let cprim = compile cc prim in
    let cpreds = compile_predicates cc preds in
    let eager ctx = cpreds ctx (cprim ctx) in
    match preds with
    | [ Ast.Literal (Atomic.Integer k) ] when k >= 1 ->
      let cprim_cur = compile_cur cc prim in
      fun ctx ->
        if not (Context.fields ctx).streaming then eager ctx
        else begin
          let c = cprim_cur ctx in
          if not (Cursor.is_pure c) then cpreds ctx (materialize ctx c)
          else
            let rec go i =
              match Cursor.next c with
              | None -> []
              | Some x ->
                if i = k then begin
                  Cursor.abandon c;
                  [ x ]
                end
                else go (i + 1)
            in
            go 1
        end
    | _ -> eager)
  | Ast.Call (name, args) ->
    compile_streaming_call cc name args (compile_apply cc name args)
  | Ast.Elem_ctor (name, attrs, contents) ->
    let cattrs =
      List.map
        (fun (an, parts) ->
          ( an,
            List.map
              (function
                | Ast.Attr_str s -> `Str s
                | Ast.Attr_expr e -> `Expr (compile cc e))
              parts ))
        attrs
    in
    let ccontents =
      List.map
        (function
          | Ast.Content_text s -> `Text s
          | Ast.Content_node e | Ast.Content_expr e -> `Expr (compile cc e))
        contents
    in
    fun ctx ->
      let el = Node.element name [] in
      List.iter
        (fun (an, parts) ->
          let v =
            String.concat ""
              (List.map
                 (function
                   | `Str s -> s
                   | `Expr p ->
                     String.concat " "
                       (List.map Atomic.to_string (Item.atomize (p ctx))))
                 parts)
          in
          Node.set_attribute el an v)
        cattrs;
      List.iter
        (function
          | `Text s -> Node.append_child el (Node.text s)
          | `Expr p -> attach_content el (p ctx))
        ccontents;
      merge_text_children el;
      [ Item.Node el ]
  | Ast.Comp_elem (name_spec, content) ->
    let cname = compile_name_spec cc ~element:true name_spec in
    let pc = compile cc content in
    fun ctx ->
      let name = cname ctx in
      let items = pc ctx in
      let el = Node.element name [] in
      attach_content el items;
      merge_text_children el;
      [ Item.Node el ]
  | Ast.Comp_attr (name_spec, content) ->
    let cname = compile_name_spec cc ~element:false name_spec in
    let pc = compile cc content in
    fun ctx ->
      let name = cname ctx in
      let v =
        String.concat " "
          (List.map Atomic.to_string (Item.atomize (pc ctx)))
      in
      [ Item.Node (Node.attribute name v) ]
  | Ast.Comp_text content -> (
    let pc = compile cc content in
    fun ctx ->
      match Item.atomize (pc ctx) with
      | [] -> []
      | atoms ->
        [ Item.Node
            (Node.text (String.concat " " (List.map Atomic.to_string atoms)))
        ])
  | Ast.Comp_doc content ->
    let pc = compile cc content in
    fun ctx ->
      let items = pc ctx in
      let holder = Node.element (Qname.local "holder") [] in
      attach_content holder items;
      let children = Node.children holder in
      List.iter Node.detach children;
      [ Item.Node (Node.document children) ]
  | Ast.Comp_comment content ->
    let pc = compile cc content in
    fun ctx ->
      let s =
        String.concat " "
          (List.map Atomic.to_string (Item.atomize (pc ctx)))
      in
      [ Item.Node (Node.comment s) ]
  | Ast.Comp_pi (name_spec, content) ->
    let cname = compile_name_spec cc ~element:false name_spec in
    let pc = compile cc content in
    fun ctx ->
      let name = cname ctx in
      let s =
        String.concat " "
          (List.map Atomic.to_string (Item.atomize (pc ctx)))
      in
      [ Item.Node (Node.processing_instruction name.Qname.local s) ]
  | ( Ast.Insert _ | Ast.Delete _ | Ast.Replace _ | Ast.Rename _
    | Ast.Transform _ ) as u ->
    (* update expressions run once per statement and accumulate into the
       context's PUL — nothing to win by staging, so they keep the
       tree-walking evaluator *)
    fun ctx -> eval ctx u

and compile_node_comparison cc a b pred =
  let pa = compile cc a and pb = compile cc b in
  fun ctx ->
    let na = pa ctx in
    let nb = pb ctx in
    node_comparison_seq na nb pred

and compile_name_spec cc ~element = function
  | Ast.Static_name qn -> fun _ -> qn
  | Ast.Dynamic_name e ->
    let pe = compile cc e in
    fun ctx -> name_spec_atom ~element (Item.one_atom (pe ctx))

and compile_predicates cc preds =
  let cps = List.map (compile cc) preds in
  fun ctx items ->
    List.fold_left
      (fun items cpred ->
        let size = List.length items in
        List.filteri
          (fun i item ->
            let fctx = Context.with_focus ctx item ~pos:(i + 1) ~size in
            match cpred fctx with
            | [ Item.Atomic a ] when Atomic.is_numeric a ->
              Float.equal (Atomic.to_double a) (float_of_int (i + 1))
            | v -> Item.effective_boolean_value v)
          items)
      items cps

and compile_path_over ctx left pb =
  let size = List.length left in
  path_finish
    (List.concat
       (List.mapi
          (fun i item ->
            pb (Context.with_focus ctx item ~pos:(i + 1) ~size))
          left))

and compile_clause cc = function
  | Ast.For_clause bindings ->
    let cbs = List.map (fun b -> (b, compile cc b.Ast.for_expr)) bindings in
    fun ctx tuples ->
      List.fold_left
        (fun tuples (b, pexpr) ->
          List.concat_map
            (fun vars ->
              let items = pexpr (Context.with_vars ctx vars) in
              let items =
                match b.Ast.for_type with
                | Some ty ->
                  List.concat_map
                    (fun i ->
                      Seqtype.check
                        ~what:
                          (Printf.sprintf "$%s"
                             (Qname.to_string b.Ast.for_var))
                        ty [ i ])
                    items
                | None -> items
              in
              List.mapi
                (fun i item ->
                  let vars = Qmap.add b.Ast.for_var [ item ] vars in
                  match b.Ast.for_pos with
                  | Some pv ->
                    Qmap.add pv [ Item.Atomic (Atomic.Integer (i + 1)) ] vars
                  | None -> vars)
                items)
            tuples)
        tuples cbs
  | Ast.Let_clause bindings ->
    let cbs = List.map (fun b -> (b, compile cc b.Ast.let_expr)) bindings in
    fun ctx tuples ->
      List.fold_left
        (fun tuples (b, pexpr) ->
          List.map
            (fun vars ->
              let v = pexpr (Context.with_vars ctx vars) in
              let v =
                match b.Ast.let_type with
                | Some ty ->
                  Seqtype.check
                    ~what:
                      (Printf.sprintf "$%s" (Qname.to_string b.Ast.let_var))
                    ty v
                | None -> v
              in
              Qmap.add b.Ast.let_var v vars)
            tuples)
        tuples cbs
  | Ast.Where_clause cond ->
    let cw = compile_cur cc cond in
    fun ctx tuples ->
      List.filter
        (fun vars -> ebv_cur (cw (Context.with_vars ctx vars)))
        tuples
  | Ast.Order_clause (_stable, specs) ->
    let cspecs = List.map (fun spec -> (spec, compile cc spec.Ast.key)) specs in
    fun ctx tuples ->
      let keyed =
        List.map
          (fun vars ->
            let keys =
              List.map
                (fun (spec, pk) ->
                  (Item.one_atom_opt (pk (Context.with_vars ctx vars)), spec))
                cspecs
            in
            (vars, keys))
          tuples
      in
      order_sort keyed
  | Ast.Join_clause j ->
    let psrc = compile cc j.Ast.join_source in
    let pbuild = compile cc j.Ast.join_build_key in
    let pprobe = compile cc j.Ast.join_probe_key in
    fun ctx tuples ->
      let table = Hashtbl.create 64 in
      let source_items = psrc ctx in
      List.iter
        (fun item ->
          let kctx = Context.bind ctx j.Ast.join_var [ item ] in
          match Item.one_atom_opt (pbuild kctx) with
          | Some a ->
            let key = Atomic.to_string a in
            Hashtbl.replace table key
              (match Hashtbl.find_opt table key with
              | Some items -> item :: items
              | None -> [ item ])
          | None -> ())
        source_items;
      List.concat_map
        (fun vars ->
          let pctx = Context.with_vars ctx vars in
          match Item.one_atom_opt (pprobe pctx) with
          | Some a -> (
            match Hashtbl.find_opt table (Atomic.to_string a) with
            | Some matches ->
              List.rev_map
                (fun item -> Qmap.add j.Ast.join_var [ item ] vars)
                matches
            | None -> [])
          | None -> [])
        tuples

(* The streaming-FLWOR gate of [flwor_cur], decided at compile time:
   structural shape and purity verdicts are fixed per compile (the
   purity environment is part of the cache fingerprint), only the
   source cursor's runtime purity is left to the plan. Returns [None]
   when the shape or verdicts reject streaming — the caller then uses
   the eager plan unconditionally. *)
and compile_flwor_stream cc clauses ret =
  match clauses with
  | Ast.For_clause [ b0 ] :: rest
    when b0.Ast.for_type = None
         && List.for_all
              (function
                | Ast.For_clause _ | Ast.Order_clause _ | Ast.Join_clause _ ->
                  false
                | Ast.Let_clause bs ->
                  List.for_all (fun b -> b.Ast.let_type = None) bs
                | Ast.Where_clause _ -> true)
              rest ->
    let stage_verdicts =
      List.concat_map
        (function
          | Ast.Let_clause bs ->
            List.map (fun b -> cc.c_purity b.Ast.let_expr) bs
          | Ast.Where_clause w ->
            let eff, fall, cons = cc.c_purity w in
            [ (eff, fall || not (Purity.boolean_valued w), cons) ]
          | _ -> [])
        rest
      @ [ cc.c_purity ret ]
    in
    if List.exists (fun (eff, _, cons) -> eff || cons) stage_verdicts then None
    else begin
      let fallible_stages =
        List.length (List.filter (fun (_, fall, _) -> fall) stage_verdicts)
      in
      let csrc = compile_cur cc b0.Ast.for_expr in
      let cstages =
        List.map
          (function
            | Ast.Let_clause bs ->
              `Let
                (List.map
                   (fun b -> (b.Ast.let_var, compile cc b.Ast.let_expr))
                   bs)
            | Ast.Where_clause w -> `Where (compile_cur cc w)
            | _ -> assert false)
          rest
      in
      let cret_cur = compile_cur cc ret in
      Some
        (fun ctx ->
          let f = Context.fields ctx in
          let c0 = csrc ctx in
          if
            fallible_stages > 1
            || (fallible_stages = 1 && not (Cursor.is_pure c0))
          then
            (* same fallback as the interpreter: the source cursor is
               already open, so finish on the eager clause schedule over
               the materialized source *)
            Cursor.of_list
              (flwor_over_items ctx (materialize ctx c0) b0 rest ret)
          else begin
            let base = f.vars in
            let idx = ref 0 and cur_ret = ref None in
            let rec pull () =
              match !cur_ret with
              | Some rc -> (
                match Cursor.next rc with
                | Some _ as r -> r
                | None ->
                  cur_ret := None;
                  pull ())
              | None -> (
                match Cursor.next c0 with
                | None -> None
                | Some item ->
                  incr idx;
                  let vars = Qmap.add b0.Ast.for_var [ item ] base in
                  let vars =
                    match b0.Ast.for_pos with
                    | Some pv ->
                      Qmap.add pv [ Item.Atomic (Atomic.Integer !idx) ] vars
                    | None -> vars
                  in
                  stages vars cstages)
            and stages vars = function
              | [] ->
                cur_ret := Some (cret_cur (Context.with_vars ctx vars));
                pull ()
              | `Let cbs :: more ->
                let vars =
                  List.fold_left
                    (fun vars (v, pe) ->
                      Qmap.add v (pe (Context.with_vars ctx vars)) vars)
                    vars cbs
                in
                stages vars more
              | `Where cw :: more ->
                if ebv_cur (cw (Context.with_vars ctx vars)) then
                  stages vars more
                else pull ()
            in
            Cursor.make
              ~pure:(Cursor.is_pure c0 && fallible_stages = 0)
              ~cleanup:(fun () ->
                (match !cur_ret with
                | Some rc -> Cursor.abandon rc
                | None -> ());
                Cursor.abandon c0)
              pull
          end)
    end
  | _ -> None

(* Compile-time interception of the sequence-cardinality builtins that
   [streaming_call] handles: the name is resolved against the compile
   registry (registration rejects redefinition, so the verdict cannot go
   stale) and only the streaming flag is left to run time. *)
and compile_streaming_call cc name args plain =
  let is_builtin =
    String.equal name.Qname.uri Qname.fn_ns
    &&
    match Context.find cc.c_registry name (List.length args) with
    | Some { Context.fn_impl = Context.Builtin _; _ } -> true
    | _ -> false
  in
  if not is_builtin then plain
  else
    let stream1 e f =
      let ce = compile_cur cc e in
      fun ctx ->
        if (Context.fields ctx).streaming then f ctx (ce ctx) else plain ctx
    in
    match (name.Qname.local, args) with
    | "exists", [ e ] -> stream1 e (fun _ c -> Item.bool (cursor_nonempty c))
    | "empty", [ e ] ->
      stream1 e (fun _ c -> Item.bool (not (cursor_nonempty c)))
    | "head", [ e ] ->
      stream1 e (fun _ c ->
          match Cursor.next c with
          | Some x ->
            Cursor.abandon c;
            [ x ]
          | None ->
            Cursor.close c;
            [])
    | "count", [ e ] ->
      stream1 e (fun _ c ->
          let rec go n =
            match Cursor.next c with Some _ -> go (n + 1) | None -> n
          in
          Item.int (go 0))
    | "boolean", [ e ] -> stream1 e (fun _ c -> Item.bool (ebv_cur c))
    | "not", [ e ] -> stream1 e (fun _ c -> Item.bool (not (ebv_cur c)))
    | "subsequence", [ e; starte ] ->
      let cstart = compile cc starte in
      stream1 e (fun ctx c ->
          streaming_subsequence ctx c (fun () -> cstart ctx) None)
    | "subsequence", [ e; starte; lene ] ->
      let cstart = compile cc starte and clen = compile cc lene in
      stream1 e (fun ctx c ->
          streaming_subsequence ctx c
            (fun () -> cstart ctx)
            (Some (fun () -> clen ctx)))
    | _ -> plain

(* Function application with the callee resolved at compile time. A name
   absent from the compile registry falls back to a runtime lookup: it
   may be registered later (XQSE readonly procedures declared mid-block)
   and an unknown name must keep raising XPST0017 only when actually
   executed. *)
and compile_apply cc name args =
  let cargs = List.map (compile cc) args in
  let eval_args ctx = List.map (fun p -> p ctx) cargs in
  (* mirror [call]: host/user callees route through the session result
     cache when one is bound; builtins skip the lookup entirely *)
  let via_cache k ctx =
    let arg_vals = eval_args ctx in
    match (Context.fields ctx).cache with
    | Some b -> Cache.through b name arg_vals (fun () -> k ctx arg_vals)
    | None -> k ctx arg_vals
  in
  match Context.find cc.c_registry name (List.length args) with
  | None -> fun ctx -> call ctx name (eval_args ctx)
  | Some f -> (
    match f.Context.fn_impl with
    | Context.Builtin impl -> fun ctx -> impl ctx (eval_args ctx)
    | Context.External impl -> via_cache (fun _ arg_vals -> impl arg_vals)
    | Context.External_cursor impl ->
      via_cache (fun ctx arg_vals ->
          Cursor.to_list ~instr:(Context.fields ctx).instr (impl arg_vals))
    | Context.User decl ->
      let cfn = compile_user cc name decl in
      via_cache (fun ctx arg_vals -> cfn ctx arg_vals))

(* Compile a user-defined function body once per (name, arity); the memo
   entry is installed as a forward reference *before* the body compiles,
   so recursive and mutually recursive functions tie back to their own
   compiled plan instead of diverging. Mirrors [call]'s User arm exactly,
   including the error order: parameter checks run before the
   missing-body XPST0017. *)
and compile_user cc name decl =
  let key =
    (name.Qname.uri, name.Qname.local, List.length decl.Ast.fd_params)
  in
  match Hashtbl.find_opt cc.c_fns key with
  | Some f -> f
  | None ->
    let fwd =
      ref (fun ctx arg_vals ->
          ignore ctx;
          ignore arg_vals;
          assert false)
    in
    Hashtbl.replace cc.c_fns key (fun ctx arg_vals -> !fwd ctx arg_vals);
    let params = decl.Ast.fd_params in
    let cbody =
      match decl.Ast.fd_body with
      | Some b -> Some (compile cc b)
      | None -> None
    in
    let impl ctx arg_vals =
      let ctx = Context.deeper ctx in
      let checked =
        List.map2
          (fun (pname, pty) v ->
            let v =
              match pty with
              | Some ty ->
                Seqtype.check
                  ~what:
                    (Printf.sprintf "argument $%s of %s"
                       (Qname.to_string pname) (Qname.to_string name))
                  ty v
              | None -> v
            in
            (pname, v))
          params arg_vals
      in
      let base = Context.globals (Context.fields ctx).registry in
      let vars =
        List.fold_left (fun m (n, v) -> Qmap.add n v m) base checked
      in
      match cbody with
      | None ->
        Item.raise_error (Qname.err "XPST0017")
          (Printf.sprintf "external function %s has no implementation"
             (Qname.to_string name))
      | Some cbody ->
        let fctx = Context.no_focus (Context.with_vars ctx vars) in
        let result = cbody fctx in
        (match decl.Ast.fd_return with
        | Some ty ->
          Seqtype.check
            ~what:(Printf.sprintf "result of %s" (Qname.to_string name))
            ty result
        | None -> result)
    in
    fwd := impl;
    Hashtbl.replace cc.c_fns key impl;
    impl

and compile_cur_expr cc e =
  let eager = compile cc e in
  match e with
  | Ast.Seq_expr es ->
    let total e' =
      let eff, fall, _ = cc.c_purity e' in
      (not eff) && not fall
    in
    let pure = List.for_all total es in
    let ces = List.map (compile_cur cc) es in
    fun ctx ->
      if not (Context.fields ctx).streaming then Cursor.of_list (eager ctx)
      else Cursor.chain ~pure (List.map (fun ce () -> ce ctx) ces)
  | Ast.Range (a, b) ->
    let pa = compile cc a and pb = compile cc b in
    fun ctx ->
      if not (Context.fields ctx).streaming then Cursor.of_list (eager ctx)
      else (
        let va = pa ctx in
        let vb = pb ctx in
        match range_bounds_seq va vb with
        | None -> Cursor.empty ()
        | Some (lo, hi) ->
          let i = ref lo in
          Cursor.make ~pure:true ~instr:(Context.fields ctx).instr (fun () ->
              if !i > hi then None
              else begin
                let v = !i in
                incr i;
                Some (Item.Atomic (Atomic.Integer v))
              end))
  | Ast.If_expr (c, t, e2) ->
    let ccond = compile_cur cc c in
    let ct = compile_cur cc t and ce2 = compile_cur cc e2 in
    fun ctx ->
      if not (Context.fields ctx).streaming then Cursor.of_list (eager ctx)
      else if ebv_cur (ccond ctx) then ct ctx
      else ce2 ctx
  | Ast.Call (name, args) -> (
    match Context.find cc.c_registry name (List.length args) with
    | Some { Context.fn_impl = Context.External_cursor impl; _ } ->
      let cargs = List.map (compile cc) args in
      fun ctx ->
        if not (Context.fields ctx).streaming then Cursor.of_list (eager ctx)
        else impl (List.map (fun p -> p ctx) cargs)
    | _ -> fun ctx -> Cursor.of_list (eager ctx))
  | Ast.Flwor (clauses, ret) -> (
    match compile_flwor_stream cc clauses ret with
    | Some splan ->
      fun ctx ->
        if not (Context.fields ctx).streaming then Cursor.of_list (eager ctx)
        else splan ctx
    | None -> fun ctx -> Cursor.of_list (eager ctx))
  | _ -> fun ctx -> Cursor.of_list (eager ctx)
