(** High-level XQuery engine facade.

    An engine owns a static context (namespaces) and a base function
    registry (builtins plus whatever external functions the host — e.g.
    the ALDSP dataspace — registers). Each query evaluation works on a
    copy of the registry, so per-query prolog declarations do not leak
    between queries. *)

open Xdm

type t

val create : ?optimize:bool -> unit -> t
(** [optimize] (default [true]) runs the rewrite optimizer over every
    compiled function body and query body. *)

val with_registry : ?optimize:bool -> Context.static -> Context.registry -> t
(** Build an engine around an existing static context and registry
    (shared with other components, e.g. the XQSE interpreter). *)

val static : t -> Context.static
val registry : t -> Context.registry
val optimizing : t -> bool
val set_optimizing : t -> bool -> unit

val set_optimizer_log : t -> (string -> unit) -> unit
(** Attach a rewrite-log hook: every optimizer rewrite performed while
    compiling (constant folds, let inlinings, join detections, predicate
    pushdowns) is reported as one line — the engine's "explain" output. *)

val optimizer_log : t -> (string -> unit) option
(** The hook installed by {!set_optimizer_log}, if any (used by hosts —
    e.g. XQSE sessions — that run the optimizer themselves). *)

val declare_namespace : t -> string -> string -> unit

val register_external :
  t ->
  ?side_effects:bool ->
  Qname.t ->
  int ->
  (Item.seq list -> Item.seq) ->
  unit
(** Register a host function into the engine's base registry. *)

val register_doc : t -> string -> Node.t -> unit
(** Make a document available to [fn:doc]. *)

val register_collection : t -> string -> Node.t list -> unit
(** Make nodes available to [fn:collection]; the empty URI names the
    default collection. *)

type compiled

val compile : t -> string -> compiled
(** Parse a query (prolog + body), register its functions into a copy of
    the base registry, optimize.
    @raise Parser.Syntax_error / Lexer.Lex_error on bad syntax,
    Xdm.Item.Error on static errors. *)

val run :
  ?context_item:Item.t ->
  ?vars:(Qname.t * Item.seq) list ->
  ?trace:(string -> unit) ->
  compiled ->
  Item.seq
(** Evaluate a compiled query: global variable declarations are evaluated
    first (external ones must be supplied through [vars]), then the body. *)

val eval_string :
  ?context_item:Item.t ->
  ?vars:(Qname.t * Item.seq) list ->
  ?trace:(string -> unit) ->
  t ->
  string ->
  Item.seq
(** [compile] + [run]. *)

val eval_to_string :
  ?context_item:Item.t -> ?vars:(Qname.t * Item.seq) list -> t -> string -> string
(** Evaluate and serialize the result sequence. *)
