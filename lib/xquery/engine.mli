(** High-level XQuery engine facade.

    An engine owns a static context (namespaces) and a base function
    registry (builtins plus whatever external functions the host — e.g.
    the ALDSP dataspace — registers). Each query evaluation works on a
    copy of the registry, so per-query prolog declarations do not leak
    between queries.

    An engine also carries an instrumentation handle ({!Instr.t},
    default {!Instr.disabled}): compilation and execution run inside
    [compile]/[run] spans, optimizer rewrites bump the
    [optimizer.*] counters (and emit one note per rewrite when the
    handle has a sink), and [fn:trace] output without an explicit
    [trace] callback flows into the same sink. *)

open Xdm

type t

val create :
  ?optimize:bool -> ?streaming:bool -> ?instr:Instr.t -> unit -> t
(** [optimize] (default [true]) runs the rewrite optimizer over every
    compiled function body and query body. [streaming] (default [true])
    lets the evaluator run pull-based cursor pipelines where the gates
    allow it; turning it off forces eager (materializing) evaluation
    everywhere — results are identical either way. [instr] (default
    {!Instr.disabled}) receives spans, counters and rewrite notes. *)

val with_registry :
  ?optimize:bool ->
  ?streaming:bool ->
  ?instr:Instr.t ->
  Context.static ->
  Context.registry ->
  t
(** Build an engine around an existing static context and registry
    (shared with other components, e.g. the XQSE interpreter). *)

val fork :
  ?optimize:bool ->
  ?streaming:bool ->
  ?plans:bool ->
  ?instr:Instr.t ->
  t ->
  t
(** An independent engine seeded from an existing one: copies of its
    static context, registry, documents and collections, a fresh plan
    cache, and the given flag overrides (defaulting to the source's
    current values). Registrations on either engine are invisible to
    the other — this is how a worker gets its own engine over a shared
    dataspace's registrations. *)

val static : t -> Context.static
val registry : t -> Context.registry
val optimizing : t -> bool
val set_optimizing : t -> bool -> unit

val streaming : t -> bool
val set_streaming : t -> bool -> unit
(** Toggle the streaming evaluator for subsequent [run]s. With streaming
    off every [Eval.eval_cur] degenerates to eager evaluation; the
    differential corpus exercises both modes. *)

val plans : t -> bool
val set_plans : t -> bool -> unit
(** Toggle closure-compiled execution (default on). With plans on,
    {!run} executes the query's compiled plan and {!eval_string} serves
    repeated query texts from the engine's plan cache (bumping
    [plan.cache.hit]/[plan.cache.miss]); with plans off every run walks
    the AST through [Eval.eval] and the cache is bypassed entirely.
    Results are identical either way — the differential corpus compares
    the two axes. *)

val generation : t -> int
(** Monotonic static-context generation: bumped by every registration
    ({!register_external}, {!register_external_cursor},
    {!declare_namespace}) and by {!invalidate_plans}. Part of the plan
    cache fingerprint; session-level caches key on it too. *)

val invalidate_plans : t -> unit
(** Flush the plan cache and bump the generation (counting the flushed
    entries on [plan.cache.invalidate]). Called automatically by every
    registration; call it directly after mutating shared state behind
    the engine's back. *)

val instr : t -> Instr.t
val set_instr : t -> Instr.t -> unit

val optimize_expr : t -> ?where:string -> ?env:Purity.env -> Ast.expr -> Ast.expr
(** Run the optimizer over one expression (identity when optimization is
    off), reporting pass counters, per-pass timers and rewrite notes into
    the engine's instrumentation handle. [where] names the enclosing
    declaration and prefixes each note as [[where] rewrite...] — this is
    how explain output attributes rewrites in multi-declaration programs.
    [env] (default: builtins only) supplies the function verdicts for the
    purity-gated rewrites; build one with {!purity_env}. *)

val purity_env : t -> Ast.function_decl list -> Purity.env
(** The purity environment for a compilation against this engine: its
    registry plus [decls] (function declarations being compiled but not
    yet registered). Built even when optimization is off — the streaming
    evaluator gates on the same verdicts and must gate identically in
    optimized and unoptimized engines. *)

val purity_fn : Purity.env -> Ast.expr -> bool * bool * bool
(** [(effects, fallible, constructs)] verdict of an expression under a
    purity environment — the closure shape {!Context.make_dynamic}
    expects for its [?purity] argument. *)

val declare_namespace : t -> string -> string -> unit

val register_external :
  t ->
  ?side_effects:bool ->
  ?purity:bool * bool * bool ->
  Qname.t ->
  int ->
  (Item.seq list -> Item.seq) ->
  unit
(** Register a host function into the engine's base registry. [purity]
    is the caller-vouched (effects, fallible, constructs) verdict for
    the optimizer's purity-gated rewrites and result-cache admission;
    omitted means unknown, treated as impure. *)

val register_external_cursor :
  t ->
  ?side_effects:bool ->
  ?purity:bool * bool * bool ->
  Qname.t ->
  int ->
  (Item.seq list -> Item.t Cursor.t) ->
  unit
(** Register a host function whose result is produced as a pull-based
    cursor. Streaming consumers (path steps, FLWOR, [xqse] iterate) pull
    it lazily; eager call sites materialize it via {!Xdm.Cursor.to_list}. *)

val register_doc : t -> string -> Node.t -> unit
(** Make a document available to [fn:doc]. *)

val register_collection : t -> string -> Node.t list -> unit
(** Make nodes available to [fn:collection]; the empty URI names the
    default collection. *)

type compiled

val compile : t -> string -> compiled
(** Parse a query (prolog + body), register its functions into a copy of
    the base registry, optimize, and (when {!plans} is on) closure-
    compile the body — all inside the [compile] span, so [run] measures
    pure execution. [queries.compiled] counts only successful compiles.
    @raise Parser.Syntax_error / Lexer.Lex_error on bad syntax,
    Xdm.Item.Error on static errors. *)

val compile_cached : t -> string -> compiled
(** {!compile} through the engine's plan cache: a fingerprint-valid
    entry for the same query text is returned without recompiling
    (bumping [plan.cache.hit] and skipping the [compile] span
    entirely); otherwise [plan.cache.miss] is bumped {e before}
    compiling, so failed compiles are misses that never become plans.
    Bypasses the cache when {!plans} is off. *)

type run_opts = {
  context_item : Item.t option;
  vars : (Qname.t * Item.seq) list;  (** external variable bindings *)
  trace : (string -> unit) option;
      (** where [fn:trace] output goes; [None] routes it into the
          engine's instrumentation sink as a note *)
}

val default_run_opts : run_opts
(** No context item, no variables, trace into the instrumentation sink.
    Build custom options as [{ default_run_opts with vars = ... }]. *)

val run : ?opts:run_opts -> compiled -> Item.seq
(** Evaluate a compiled query: global variable declarations are evaluated
    first (external ones must be supplied through [opts.vars]), then the
    body. *)

val eval_string : ?opts:run_opts -> t -> string -> Item.seq
(** [compile] + [run]. *)

val eval_to_string : ?opts:run_opts -> t -> string -> string
(** Evaluate and serialize the result sequence. *)
