(** Purity/effect analysis over the XQuery AST.

    Computes, per expression, whether evaluation may have observable side
    effects, may raise a dynamic error, or creates fresh nodes — the
    three facts the optimizer needs before moving, duplicating, dropping
    or reordering an expression. See the implementation header for the
    full policy (builtin table, impure externals, fixpoint over user
    function bodies). *)

open Xdm

type verdict = {
  effects : bool;  (** may have an observable side effect *)
  fallible : bool;  (** may raise a dynamic error *)
  constructs : bool;
      (** creates new nodes — identity-observable, so the evaluation
          count must be preserved even for otherwise total expressions *)
}

val total : verdict
(** No effects, no errors, no construction: the bottom of the lattice. *)

val fallible : verdict
(** Pure and non-constructing, but may raise. *)

val impure : verdict
(** The top: assume everything. Used for unknown/external functions. *)

val join : verdict -> verdict -> verdict
(** Pointwise disjunction. *)

val builtin_verdict : Qname.t -> int -> verdict option
(** The effect table for [Builtins.register_all]: a verdict for every
    [fn:]/[xs:] builtin name and arity the standard registry installs,
    [None] for anything else. The purity test suite checks coverage
    against the registry itself. *)

val boolean_valued : Ast.expr -> bool
(** Is the expression's value — when it produces one — always a single
    [xs:boolean] or the empty sequence? (Then its EBV cannot raise and a
    filter predicate over it is never a positional test.) Conservative:
    [false] means "unknown". *)

type env
(** Verdicts for named functions, keyed by name and arity. *)

val empty_env : env
(** Builtins only (via {!builtin_verdict}); any other call is impure. *)

val env_for : registry:Context.registry -> Ast.function_decl list -> env
(** Environment for the functions visible in [registry] plus the
    not-yet-registered [decls] (which take precedence on collision):
    builtins from the table, externals impure, user function bodies
    solved by fixpoint — but always fallible, since recursion depth is
    checked dynamically. *)

val lookup : env -> Qname.t -> int -> verdict option

val analyze : env -> Ast.expr -> verdict

val is_pure : env -> Ast.expr -> bool
(** No effects (may still raise or construct). *)

val is_total : env -> Ast.expr -> bool
(** No effects and no errors (may still construct). *)
