(** Binder-aware AST traversals: the one place that knows the
    variable-scoping rules of every binding construct ({!Ast.Flwor}
    for/let/positional/join bindings, {!Ast.Quantified},
    {!Ast.Typeswitch}, {!Ast.Transform}).

    The optimizer's rewrite passes are built on these traversals so that
    scope analysis is implemented — and fixed — exactly once. *)

open Xdm

module Vset : Set.S with type elt = Qname.t

val fold_scoped :
  (Vset.t -> 'a -> Ast.expr -> 'a) -> Vset.t -> 'a -> Ast.expr -> 'a
(** [fold_scoped f bound acc e] folds [f] over every immediate
    subexpression of [e]; each call receives [bound] extended with the
    variables that [e]'s own binders place in scope at that
    subexpression. *)

val free_var_set : Ast.expr -> Vset.t
(** The set of variables referenced by [e] that are not bound within it. *)

val free_vars : Ast.expr -> Qname.t list
(** {!free_var_set} as a sorted list. *)

val is_free : Qname.t -> Ast.expr -> bool
(** [is_free v e] iff [$v] occurs free in [e]. *)

val count_free : Qname.t -> Ast.expr -> int
(** The number of free occurrences of [$v] in [e] — the inliner's
    duplication test. *)

val all_vars : Ast.expr -> Vset.t
(** Every variable name occurring in [e], referenced or bound — the
    avoid-set for {!fresh}. *)

val fresh : avoid:Vset.t -> Qname.t -> Qname.t
(** [fresh ~avoid q] is a variant of [q] (same namespace, suffixed local
    name) not present in [avoid]. *)

val uses_context : Ast.expr -> bool
(** Over-approximates whether [e] depends on the dynamic context
    item/position/size at its top level. *)

val occurs_in_shifted_focus : Qname.t -> Ast.expr -> bool
(** Does [$v] occur free inside a subexpression of [e] evaluated under a
    different focus (a filter/step predicate, a path right-hand side)?
    Rewrites that substitute [Context_item] for [$v] must refuse when
    this holds. *)

val subst : Qname.t -> Ast.expr -> Ast.expr -> Ast.expr
(** [subst v replacement e]: capture-avoiding substitution of
    [replacement] for every free occurrence of [$v] in [e]. Binders that
    would capture a free variable of [replacement] are alpha-renamed to a
    {!fresh} name first; binders of [$v] itself shadow the substitution
    as usual. *)
