open Xdm

let err code msg = Item.raise_error (Qname.err code) msg

let arg n args =
  match List.nth_opt args n with
  | Some v -> v
  | None -> err "XPTY0004" "missing function argument"

let string_arg args n =
  match Item.one_atom_opt (arg n args) with
  | None -> ""
  | Some a -> Atomic.to_string a

let opt_string_arg args n =
  match Item.one_atom_opt (arg n args) with
  | None -> None
  | Some a -> Some (Atomic.to_string a)

let int_arg args n =
  match Item.one_atom (arg n args) with
  | Atomic.Integer i -> i
  | a -> (
    try
      match Atomic.cast_to a (Qname.xs "integer") with
      | Atomic.Integer i -> i
      | _ -> err "XPTY0004" "expected an integer"
    with Atomic.Cast_error m -> err "XPTY0004" m)

let double_arg args n =
  match Item.one_atom_opt (arg n args) with
  | None -> None
  | Some a -> (
    try Some (Atomic.to_double a) with Atomic.Cast_error m -> err "XPTY0004" m)

(* The fn:subsequence window rule, shared with the streaming schedule
   (Eval.streaming_subsequence) so both evaluators keep exactly the same
   items. Per F&O, positions are tested in xs:double arithmetic: the
   item at 1-based position [p] survives iff [p >= fn:round(start)] and,
   when a length is given, [p < fn:round(start) + fn:round(length)].
   fn:round is half-toward-+INF — [Float.floor (x +. 0.5)], not
   [Float.round], which differs at negative halves — and NaN anywhere
   makes every comparison false (an empty result), so positions are
   never converted to int: no NaN/infinity/overflow undefined
   behavior. *)
let round_half_up x = Float.floor (x +. 0.5)

let subsequence_window start len =
  let s = round_half_up start in
  let e =
    match len with None -> Float.infinity | Some l -> s +. round_half_up l
  in
  (s, e)

let subsequence_keep (s, e) p =
  let p = float_of_int p in
  p >= s && p < e

(* XPath regex flavor is close enough to PCRE for the supported flags. *)
let compile_regex pattern flags =
  let opts = ref [] in
  String.iter
    (fun c ->
      match c with
      | 'i' -> opts := `CASELESS :: !opts
      | 's' -> opts := `DOTALL :: !opts
      | 'm' -> opts := `MULTILINE :: !opts
      | 'x' -> () (* extended mode is accepted but not significant here *)
      | c -> err "FORX0001" (Printf.sprintf "invalid regex flag %C" c))
    flags;
  try Re.Pcre.re ~flags:!opts pattern |> Re.compile
  with _ -> err "FORX0002" (Printf.sprintf "invalid regular expression %S" pattern)

let numeric_unary f = fun _ctx args ->
  match Item.one_atom_opt (arg 0 args) with
  | None -> []
  | Some a -> (
    match a with
    | Atomic.Integer _ -> [ Item.Atomic a ]
    | Atomic.Decimal d -> [ Item.Atomic (Atomic.Decimal (f d)) ]
    | Atomic.Double d -> [ Item.Atomic (Atomic.Double (f d)) ]
    | Atomic.Untyped s -> (
      try [ Item.Atomic (Atomic.Double (f (float_of_string (String.trim s)))) ]
      with _ -> err "FORG0001" (Printf.sprintf "invalid number %S" s))
    | a ->
      err "XPTY0004"
        (Printf.sprintf "expected a number, got %s"
           (Qname.to_string (Atomic.type_name a))))

let aggregate_nums args =
  List.map
    (fun a ->
      match a with
      | Atomic.Integer _ | Atomic.Decimal _ | Atomic.Double _ -> a
      | Atomic.Untyped s -> (
        try Atomic.Double (float_of_string (String.trim s))
        with _ -> err "FORG0001" (Printf.sprintf "invalid number %S" s))
      | a ->
        err "XPTY0004"
          (Printf.sprintf "aggregate over non-numeric value %s"
             (Qname.to_string (Atomic.type_name a))))
    (Item.atomize (arg 0 args))

let register_all reg =
  let fn name arity impl = Context.register_builtin reg (Qname.fn name) arity impl in
  (* ------------- accessors and general ------------- *)
  fn "data" 1 (fun _ args -> List.map (fun a -> Item.Atomic a) (Item.atomize (arg 0 args)));
  fn "string" 0 (fun ctx _ ->
      match (Context.fields ctx).ctx_item with
      | Some item -> Item.str (Item.string_of_item item)
      | None -> err "XPDY0002" "the context item is not defined");
  fn "string" 1 (fun _ args ->
      match arg 0 args with
      | [] -> Item.str ""
      | [ item ] -> Item.str (Item.string_of_item item)
      | _ -> err "XPTY0004" "fn:string expects at most one item");
  fn "number" 0 (fun ctx _ ->
      match (Context.fields ctx).ctx_item with
      | Some item -> (
        try [ Item.Atomic (Atomic.Double (float_of_string (String.trim (Item.string_of_item item)))) ]
        with _ -> [ Item.Atomic (Atomic.Double Float.nan) ])
      | None -> err "XPDY0002" "the context item is not defined");
  fn "number" 1 (fun _ args ->
      match Item.one_atom_opt (arg 0 args) with
      | None -> [ Item.Atomic (Atomic.Double Float.nan) ]
      | Some a -> (
        try [ Item.Atomic (Atomic.Double (Atomic.to_double a)) ]
        with Atomic.Cast_error _ -> (
          try
            [ Item.Atomic
                (Atomic.Double (float_of_string (String.trim (Atomic.to_string a)))) ]
          with _ -> [ Item.Atomic (Atomic.Double Float.nan) ])));
  fn "boolean" 1 (fun _ args -> Item.bool (Item.effective_boolean_value (arg 0 args)));
  fn "not" 1 (fun _ args -> Item.bool (not (Item.effective_boolean_value (arg 0 args))));
  fn "true" 0 (fun _ _ -> Item.bool true);
  fn "false" 0 (fun _ _ -> Item.bool false);
  (* ------------- errors and tracing ------------- *)
  fn "error" 0 (fun _ _ -> Item.raise_error (Qname.err "FOER0000") "fn:error called");
  fn "error" 1 (fun _ args ->
      match Item.one_atom_opt (arg 0 args) with
      | Some (Atomic.QName q) -> Item.raise_error q "fn:error called"
      | None -> Item.raise_error (Qname.err "FOER0000") "fn:error called"
      | Some _ -> err "XPTY0004" "fn:error expects an xs:QName");
  fn "error" 2 (fun _ args ->
      let q =
        match Item.one_atom_opt (arg 0 args) with
        | Some (Atomic.QName q) -> q
        | None -> Qname.err "FOER0000"
        | Some _ -> err "XPTY0004" "fn:error expects an xs:QName"
      in
      Item.raise_error q (string_arg args 1));
  fn "error" 3 (fun _ args ->
      let q =
        match Item.one_atom_opt (arg 0 args) with
        | Some (Atomic.QName q) -> q
        | None -> Qname.err "FOER0000"
        | Some _ -> err "XPTY0004" "fn:error expects an xs:QName"
      in
      let msg =
        match Item.one_atom_opt (arg 1 args) with
        | Some a -> Atomic.to_string a
        | None -> ""
      in
      Item.raise_error ~items:(arg 2 args) q msg);
  fn "trace" 1 (fun ctx args ->
      let v = arg 0 args in
      (Context.fields ctx).trace (Xml_serialize.seq_to_string v);
      v);
  fn "trace" 2 (fun ctx args ->
      let v = arg 0 args in
      let label =
        match Item.one_atom_opt (arg 1 args) with
        | Some a -> Atomic.to_string a
        | None -> ""
      in
      (Context.fields ctx).trace (label ^ ": " ^ Xml_serialize.seq_to_string v);
      v);
  (* ------------- strings ------------- *)
  fn "concat" 2 (fun _ args ->
      Item.str (String.concat "" (List.map (fun v ->
          match Item.one_atom_opt v with None -> "" | Some a -> Atomic.to_string a) args)));
  for arity = 3 to 8 do
    fn "concat" arity (fun _ args ->
        Item.str (String.concat "" (List.map (fun v ->
            match Item.one_atom_opt v with None -> "" | Some a -> Atomic.to_string a) args)))
  done;
  fn "string-join" 2 (fun _ args ->
      let sep = string_arg args 1 in
      Item.str
        (String.concat sep (List.map Atomic.to_string (Item.atomize (arg 0 args)))));
  fn "substring" 2 (fun _ args ->
      let s = string_arg args 0 in
      match double_arg args 1 with
      | None -> Item.str ""
      | Some start ->
        let start = int_of_float (Float.round start) in
        let n = String.length s in
        let from = max 0 (start - 1) in
        if from >= n then Item.str ""
        else Item.str (String.sub s from (n - from)));
  fn "substring" 3 (fun _ args ->
      let s = string_arg args 0 in
      match (double_arg args 1, double_arg args 2) with
      | None, _ | _, None -> Item.str ""
      | Some start, Some len ->
        if Float.is_nan start || Float.is_nan len then Item.str ""
        else
          let start = int_of_float (Float.round start) in
          let len = if len = Float.infinity then max_int else int_of_float (Float.round len) in
          let n = String.length s in
          let lo = max 1 start and hi = if len = max_int then max_int else start + len in
          let from = lo - 1 in
          let til = if hi = max_int then n else min n (hi - 1) in
          if from >= n || til <= from then Item.str ""
          else Item.str (String.sub s from (til - from)));
  fn "string-length" 0 (fun ctx _ ->
      match (Context.fields ctx).ctx_item with
      | Some item -> Item.int (String.length (Item.string_of_item item))
      | None -> err "XPDY0002" "the context item is not defined");
  fn "string-length" 1 (fun _ args -> Item.int (String.length (string_arg args 0)));
  fn "upper-case" 1 (fun _ args ->
      Item.str (String.uppercase_ascii (string_arg args 0)));
  fn "lower-case" 1 (fun _ args ->
      Item.str (String.lowercase_ascii (string_arg args 0)));
  fn "contains" 2 (fun _ args ->
      let s = string_arg args 0
      and sub = string_arg args 1 in
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      Item.bool (m = 0 || go 0));
  fn "starts-with" 2 (fun _ args ->
      let s = string_arg args 0
      and p = string_arg args 1 in
      Item.bool
        (String.length p <= String.length s
        && String.sub s 0 (String.length p) = p));
  fn "ends-with" 2 (fun _ args ->
      let s = string_arg args 0
      and p = string_arg args 1 in
      Item.bool
        (String.length p <= String.length s
        && String.sub s (String.length s - String.length p) (String.length p) = p));
  fn "substring-before" 2 (fun _ args ->
      let s = string_arg args 0
      and p = string_arg args 1 in
      if p = "" then Item.str ""
      else
        let n = String.length s and m = String.length p in
        let rec go i =
          if i + m > n then None
          else if String.sub s i m = p then Some i
          else go (i + 1)
        in
        (match go 0 with
        | Some i -> Item.str (String.sub s 0 i)
        | None -> Item.str ""));
  fn "substring-after" 2 (fun _ args ->
      let s = string_arg args 0
      and p = string_arg args 1 in
      if p = "" then Item.str s
      else
        let n = String.length s and m = String.length p in
        let rec go i =
          if i + m > n then None
          else if String.sub s i m = p then Some i
          else go (i + 1)
        in
        (match go 0 with
        | Some i -> Item.str (String.sub s (i + m) (n - i - m))
        | None -> Item.str ""));
  fn "normalize-space" 0 (fun ctx _ ->
      match (Context.fields ctx).ctx_item with
      | Some item ->
        Item.str
          (String.concat " "
             (List.filter (fun s -> s <> "")
                (String.split_on_char ' '
                   (String.map
                      (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c)
                      (Item.string_of_item item)))))
      | None -> err "XPDY0002" "the context item is not defined");
  fn "normalize-space" 1 (fun _ args ->
      let s = string_arg args 0 in
      Item.str
        (String.concat " "
           (List.filter (fun s -> s <> "")
              (String.split_on_char ' '
                 (String.map
                    (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c)
                    s)))));
  fn "translate" 3 (fun _ args ->
      let s = string_arg args 0
      and from = string_arg args 1
      and to_ = string_arg args 2 in
      let buf = Buffer.create (String.length s) in
      String.iter
        (fun c ->
          match String.index_opt from c with
          | Some i -> if i < String.length to_ then Buffer.add_char buf to_.[i]
          | None -> Buffer.add_char buf c)
        s;
      Item.str (Buffer.contents buf));
  fn "codepoints-to-string" 1 (fun _ args ->
      let atoms = Item.atomize (arg 0 args) in
      let buf = Buffer.create 16 in
      List.iter
        (fun a ->
          match a with
          | Atomic.Integer i when i >= 0 && i < 128 -> Buffer.add_char buf (Char.chr i)
          | Atomic.Integer _ -> ()
          | _ -> err "XPTY0004" "codepoints must be integers")
        atoms;
      Item.str (Buffer.contents buf));
  fn "string-to-codepoints" 1 (fun _ args ->
      let s = string_arg args 0 in
      List.init (String.length s) (fun i -> Item.Atomic (Atomic.Integer (Char.code s.[i]))));
  (* ------------- regex family ------------- *)
  fn "matches" 2 (fun _ args ->
      let s = string_arg args 0
      and p = string_arg args 1 in
      Item.bool (Re.execp (compile_regex p "") s));
  fn "matches" 3 (fun _ args ->
      let s = string_arg args 0
      and p = string_arg args 1
      and f = string_arg args 2 in
      Item.bool (Re.execp (compile_regex p f) s));
  fn "replace" 3 (fun _ args ->
      let s = string_arg args 0
      and p = string_arg args 1
      and r = string_arg args 2 in
      Item.str (Re.replace (compile_regex p "") ~f:(fun g ->
          (* expand $1..$9 in the replacement *)
          let buf = Buffer.create 16 in
          let n = String.length r in
          let i = ref 0 in
          while !i < n do
            (if r.[!i] = '$' && !i + 1 < n && r.[!i + 1] >= '0' && r.[!i + 1] <= '9'
             then begin
               let d = Char.code r.[!i + 1] - Char.code '0' in
               (try Buffer.add_string buf (Re.Group.get g d) with Not_found -> ());
               i := !i + 2
             end
             else if r.[!i] = '\\' && !i + 1 < n then begin
               Buffer.add_char buf r.[!i + 1];
               i := !i + 2
             end
             else begin
               Buffer.add_char buf r.[!i];
               incr i
             end)
          done;
          Buffer.contents buf) s));
  fn "tokenize" 2 (fun _ args ->
      let s = string_arg args 0
      and p = string_arg args 1 in
      if s = "" then []
      else begin
        (* fn:tokenize keeps empty tokens between adjacent separators *)
        let re = compile_regex p "" in
        let toks = ref [] in
        let buf = Buffer.create 16 in
        List.iter
          (function
            | `Text t -> Buffer.add_string buf t
            | `Delim _ ->
              toks := Buffer.contents buf :: !toks;
              Buffer.clear buf)
          (Re.split_full re s);
        toks := Buffer.contents buf :: !toks;
        List.rev_map (fun tok -> Item.Atomic (Atomic.String tok)) !toks
      end);
  (* ------------- numerics ------------- *)
  fn "abs" 1 (numeric_unary Float.abs |> fun f -> fun ctx args ->
      match Item.one_atom_opt (arg 0 args) with
      | Some (Atomic.Integer i) -> [ Item.Atomic (Atomic.Integer (abs i)) ]
      | _ -> f ctx args);
  fn "floor" 1 (fun ctx args ->
      match Item.one_atom_opt (arg 0 args) with
      | Some (Atomic.Integer _ as a) -> [ Item.Atomic a ]
      | _ -> (numeric_unary Float.floor) ctx args);
  fn "ceiling" 1 (fun ctx args ->
      match Item.one_atom_opt (arg 0 args) with
      | Some (Atomic.Integer _ as a) -> [ Item.Atomic a ]
      | _ -> (numeric_unary Float.ceil) ctx args);
  fn "round" 1 (fun ctx args ->
      match Item.one_atom_opt (arg 0 args) with
      | Some (Atomic.Integer _ as a) -> [ Item.Atomic a ]
      | _ -> (numeric_unary (fun f -> Float.floor (f +. 0.5))) ctx args);
  (* ------------- sequences ------------- *)
  fn "count" 1 (fun _ args -> Item.int (List.length (arg 0 args)));
  fn "empty" 1 (fun _ args -> Item.bool (arg 0 args = []));
  fn "exists" 1 (fun _ args -> Item.bool (arg 0 args <> []));
  fn "head" 1 (fun _ args ->
      match arg 0 args with [] -> [] | x :: _ -> [ x ]);
  fn "tail" 1 (fun _ args ->
      match arg 0 args with [] -> [] | _ :: tl -> tl);
  fn "distinct-values" 1 (fun _ args ->
      let atoms = Item.atomize (arg 0 args) in
      let seen = ref [] in
      List.filter_map
        (fun a ->
          let a = match a with Atomic.Untyped s -> Atomic.String s | a -> a in
          if List.exists (fun b -> Atomic.deep_equal a b) !seen then None
          else begin
            seen := a :: !seen;
            Some (Item.Atomic a)
          end)
        atoms);
  fn "reverse" 1 (fun _ args -> List.rev (arg 0 args));
  fn "subsequence" 2 (fun _ args ->
      match double_arg args 1 with
      | None -> []
      | Some start ->
        let w = subsequence_window start None in
        List.filteri (fun i _ -> subsequence_keep w (i + 1)) (arg 0 args));
  fn "subsequence" 3 (fun _ args ->
      match (double_arg args 1, double_arg args 2) with
      | None, _ | _, None -> []
      | Some start, Some len ->
        let w = subsequence_window start (Some len) in
        List.filteri (fun i _ -> subsequence_keep w (i + 1)) (arg 0 args));
  fn "insert-before" 3 (fun _ args ->
      let seq = arg 0 args and pos = int_arg args 1 and ins = arg 2 args in
      let pos = max 1 pos in
      let rec go i = function
        | [] -> ins
        | x :: rest when i = pos -> ins @ (x :: rest)
        | x :: rest -> x :: go (i + 1) rest
      in
      go 1 seq);
  fn "remove" 2 (fun _ args ->
      let seq = arg 0 args and pos = int_arg args 1 in
      List.filteri (fun i _ -> i + 1 <> pos) seq);
  fn "index-of" 2 (fun _ args ->
      let seq = Item.atomize (arg 0 args) in
      match Item.one_atom_opt (arg 1 args) with
      | None -> []
      | Some target ->
        let acc = ref [] in
        List.iteri
          (fun i a -> if Atomic.deep_equal a target then acc := i + 1 :: !acc)
          seq;
        List.rev_map (fun i -> Item.Atomic (Atomic.Integer i)) !acc);
  fn "exactly-one" 1 (fun _ args ->
      match arg 0 args with
      | [ x ] -> [ x ]
      | _ -> err "FORG0005" "fn:exactly-one called with a sequence not of length 1");
  fn "zero-or-one" 1 (fun _ args ->
      match arg 0 args with
      | ([] | [ _ ]) as v -> v
      | _ -> err "FORG0003" "fn:zero-or-one called with a longer sequence");
  fn "one-or-more" 1 (fun _ args ->
      match arg 0 args with
      | [] -> err "FORG0004" "fn:one-or-more called with an empty sequence"
      | v -> v);
  fn "deep-equal" 2 (fun _ args -> Item.bool (Item.deep_equal (arg 0 args) (arg 1 args)));
  fn "unordered" 1 (fun _ args -> arg 0 args);
  (* ------------- aggregates ------------- *)
  fn "sum" 1 (fun _ args ->
      match aggregate_nums args with
      | [] -> Item.int 0
      | first :: rest ->
        [ Item.Atomic
            (List.fold_left (fun acc a -> Atomic.arith Atomic.Add acc a) first rest) ]);
  fn "avg" 1 (fun _ args ->
      match aggregate_nums args with
      | [] -> []
      | nums ->
        let total =
          List.fold_left (fun acc a -> Atomic.arith Atomic.Add acc a)
            (List.hd nums) (List.tl nums)
        in
        [ Item.Atomic (Atomic.arith Atomic.Div total (Atomic.Integer (List.length nums))) ]);
  fn "max" 1 (fun _ args ->
      match Item.atomize (arg 0 args) with
      | [] -> []
      | atoms ->
        let norm = List.map (fun a -> match a with Atomic.Untyped s -> Atomic.String s | a -> a) atoms in
        [ Item.Atomic
            (List.fold_left
               (fun acc a ->
                 match Atomic.compare_values acc a with
                 | c -> if c >= 0 then acc else a
                 | exception Atomic.Cast_error m -> err "FORG0006" m)
               (List.hd norm) (List.tl norm)) ]);
  fn "min" 1 (fun _ args ->
      match Item.atomize (arg 0 args) with
      | [] -> []
      | atoms ->
        let norm = List.map (fun a -> match a with Atomic.Untyped s -> Atomic.String s | a -> a) atoms in
        [ Item.Atomic
            (List.fold_left
               (fun acc a ->
                 match Atomic.compare_values acc a with
                 | c -> if c <= 0 then acc else a
                 | exception Atomic.Cast_error m -> err "FORG0006" m)
               (List.hd norm) (List.tl norm)) ]);
  (* ------------- context ------------- *)
  fn "position" 0 (fun ctx _ ->
      let f = Context.fields ctx in
      if f.ctx_item = None then err "XPDY0002" "the context item is not defined"
      else Item.int f.ctx_pos);
  fn "last" 0 (fun ctx _ ->
      let f = Context.fields ctx in
      if f.ctx_item = None then err "XPDY0002" "the context item is not defined"
      else Item.int f.ctx_size);
  (* ------------- nodes ------------- *)
  fn "name" 0 (fun ctx _ ->
      match (Context.fields ctx).ctx_item with
      | Some (Item.Node n) -> (
        match Node.name n with
        | Some q -> Item.str (Qname.to_string q)
        | None -> Item.str "")
      | Some _ -> err "XPTY0004" "fn:name requires a node"
      | None -> err "XPDY0002" "the context item is not defined");
  fn "name" 1 (fun _ args ->
      match arg 0 args with
      | [] -> Item.str ""
      | [ Item.Node n ] -> (
        match Node.name n with
        | Some q -> Item.str (Qname.to_string q)
        | None -> Item.str "")
      | _ -> err "XPTY0004" "fn:name requires a node");
  fn "local-name" 1 (fun _ args ->
      match arg 0 args with
      | [] -> Item.str ""
      | [ Item.Node n ] -> (
        match Node.name n with
        | Some q -> Item.str q.Qname.local
        | None -> Item.str "")
      | _ -> err "XPTY0004" "fn:local-name requires a node");
  fn "namespace-uri" 1 (fun _ args ->
      match arg 0 args with
      | [] -> Item.str ""
      | [ Item.Node n ] -> (
        match Node.name n with
        | Some q -> Item.str q.Qname.uri
        | None -> Item.str "")
      | _ -> err "XPTY0004" "fn:namespace-uri requires a node");
  fn "node-name" 1 (fun _ args ->
      match arg 0 args with
      | [] -> []
      | [ Item.Node n ] -> (
        match Node.name n with
        | Some q -> [ Item.Atomic (Atomic.QName q) ]
        | None -> [])
      | _ -> err "XPTY0004" "fn:node-name requires a node");
  fn "root" 0 (fun ctx _ ->
      match (Context.fields ctx).ctx_item with
      | Some (Item.Node n) -> [ Item.Node (Node.root n) ]
      | Some _ -> err "XPTY0004" "fn:root requires a node"
      | None -> err "XPDY0002" "the context item is not defined");
  fn "root" 1 (fun _ args ->
      match arg 0 args with
      | [] -> []
      | [ Item.Node n ] -> [ Item.Node (Node.root n) ]
      | _ -> err "XPTY0004" "fn:root requires a node");
  fn "doc" 1 (fun ctx args ->
      match opt_string_arg args 0 with
      | None -> []
      | Some uri -> (
        match Hashtbl.find_opt (Context.fields ctx).docs uri with
        | Some doc -> [ Item.Node doc ]
        | None -> err "FODC0002" (Printf.sprintf "document %S not found" uri)));
  fn "doc-available" 1 (fun ctx args ->
      match opt_string_arg args 0 with
      | None -> Item.bool false
      | Some uri -> Item.bool (Hashtbl.mem (Context.fields ctx).docs uri));
  fn "collection" 0 (fun ctx _ ->
      match Hashtbl.find_opt (Context.fields ctx).collections "" with
      | Some nodes -> List.map (fun n -> Item.Node n) nodes
      | None -> err "FODC0002" "no default collection is registered");
  fn "collection" 1 (fun ctx args ->
      let uri = match opt_string_arg args 0 with Some u -> u | None -> "" in
      match Hashtbl.find_opt (Context.fields ctx).collections uri with
      | Some nodes -> List.map (fun n -> Item.Node n) nodes
      | None -> err "FODC0002" (Printf.sprintf "collection %S not found" uri));
  (* ------------- QNames ------------- *)
  fn "QName" 2 (fun _ args ->
      let uri = string_arg args 0
      and lex = string_arg args 1 in
      match String.index_opt lex ':' with
      | Some i ->
        let prefix = String.sub lex 0 i in
        let local = String.sub lex (i + 1) (String.length lex - i - 1) in
        [ Item.Atomic (Atomic.QName (Qname.make ~prefix ~uri local)) ]
      | None -> [ Item.Atomic (Atomic.QName (Qname.make ~uri lex)) ]);
  fn "local-name-from-QName" 1 (fun _ args ->
      match Item.one_atom_opt (arg 0 args) with
      | None -> []
      | Some (Atomic.QName q) -> Item.str q.Qname.local
      | Some _ -> err "XPTY0004" "expected an xs:QName");
  fn "namespace-uri-from-QName" 1 (fun _ args ->
      match Item.one_atom_opt (arg 0 args) with
      | None -> []
      | Some (Atomic.QName q) -> Item.str q.Qname.uri
      | Some _ -> err "XPTY0004" "expected an xs:QName");
  (* ------------- additional F&O functions ------------- *)
  fn "compare" 2 (fun _ args ->
      match (opt_string_arg args 0, opt_string_arg args 1) with
      | None, _ | _, None -> []
      | Some a, Some b -> Item.int (compare (String.compare a b) 0));
  fn "codepoint-equal" 2 (fun _ args ->
      match (opt_string_arg args 0, opt_string_arg args 1) with
      | None, _ | _, None -> []
      | Some a, Some b -> Item.bool (String.equal a b));
  fn "round-half-to-even" 1 (fun _ args ->
      match Item.one_atom_opt (arg 0 args) with
      | None -> []
      | Some (Atomic.Integer _ as a) -> [ Item.Atomic a ]
      | Some a ->
        let f = try Atomic.to_double a with Atomic.Cast_error m -> err "XPTY0004" m in
        let fl = Float.floor f and ce = Float.ceil f in
        let r =
          if f -. fl < ce -. f then fl
          else if f -. fl > ce -. f then ce
          else if Float.rem fl 2. = 0. then fl
          else ce
        in
        (match a with
        | Atomic.Double _ -> [ Item.Atomic (Atomic.Double r) ]
        | _ -> [ Item.Atomic (Atomic.Decimal r) ]));
  fn "encode-for-uri" 1 (fun _ args ->
      let s = string_arg args 0 in
      let buf = Buffer.create (String.length s) in
      String.iter
        (fun c ->
          match c with
          | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '-' | '_' | '.' | '~' ->
            Buffer.add_char buf c
          | c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
        s;
      Item.str (Buffer.contents buf));
  (* ------------- dates, times and durations ------------- *)
  let date_part name extract =
    fn name 1 (fun _ args ->
        match Item.one_atom_opt (arg 0 args) with
        | None -> []
        | Some a -> (
          let lexical =
            match a with
            | Atomic.Date s | Atomic.DateTime s -> s
            | Atomic.Untyped s -> Atomic.to_string (Atomic.cast_to (Atomic.Untyped s) (Qname.xs "date"))
            | a ->
              err "XPTY0004"
                (Printf.sprintf "%s: expected a date, got %s" name
                   (Qname.to_string (Atomic.type_name a)))
          in
          try Item.int (extract lexical)
          with _ -> err "FORG0001" (Printf.sprintf "invalid date %S" lexical)))
  in
  date_part "year-from-date" (fun s -> int_of_string (String.sub s 0 4));
  date_part "month-from-date" (fun s -> int_of_string (String.sub s 5 2));
  date_part "day-from-date" (fun s -> int_of_string (String.sub s 8 2));
  date_part "year-from-dateTime" (fun s -> int_of_string (String.sub s 0 4));
  date_part "month-from-dateTime" (fun s -> int_of_string (String.sub s 5 2));
  date_part "day-from-dateTime" (fun s -> int_of_string (String.sub s 8 2));
  let time_part name offset =
    fn name 1 (fun _ args ->
        match Item.one_atom_opt (arg 0 args) with
        | None -> []
        | Some a -> (
          let lexical =
            match a with
            | Atomic.Time s -> s
            | Atomic.DateTime s when String.length s > 11 ->
              String.sub s 11 (String.length s - 11)
            | a ->
              err "XPTY0004"
                (Printf.sprintf "%s: expected a time, got %s" name
                   (Qname.to_string (Atomic.type_name a)))
          in
          try Item.int (int_of_string (String.sub lexical offset 2))
          with _ -> err "FORG0001" (Printf.sprintf "invalid time %S" lexical)))
  in
  time_part "hours-from-time" 0;
  time_part "minutes-from-time" 3;
  time_part "hours-from-dateTime" 0;
  time_part "minutes-from-dateTime" 3;
  fn "seconds-from-time" 1 (fun _ args ->
      match Item.one_atom_opt (arg 0 args) with
      | None -> []
      | Some (Atomic.Time s) ->
        [ Item.Atomic (Atomic.Decimal (float_of_string (String.sub s 6 (String.length s - 6)))) ]
      | Some _ -> err "XPTY0004" "seconds-from-time: expected a time");
  let dur_part name extract =
    fn name 1 (fun _ args ->
        match Item.one_atom_opt (arg 0 args) with
        | None -> []
        | Some (Atomic.Duration d) -> [ Item.Atomic (extract d) ]
        | Some a ->
          err "XPTY0004"
            (Printf.sprintf "%s: expected a duration, got %s" name
               (Qname.to_string (Atomic.type_name a))))
  in
  let trunc f = int_of_float (Float.trunc f) in
  dur_part "years-from-duration" (fun d -> Atomic.Integer (d.Atomic.d_months / 12));
  dur_part "months-from-duration" (fun d -> Atomic.Integer (d.Atomic.d_months mod 12));
  dur_part "days-from-duration" (fun d ->
      Atomic.Integer (trunc (d.Atomic.d_seconds /. 86400.)));
  dur_part "hours-from-duration" (fun d ->
      Atomic.Integer (trunc (Float.rem d.Atomic.d_seconds 86400. /. 3600.)));
  dur_part "minutes-from-duration" (fun d ->
      Atomic.Integer (trunc (Float.rem d.Atomic.d_seconds 3600. /. 60.)));
  dur_part "seconds-from-duration" (fun d ->
      Atomic.Decimal (Float.rem d.Atomic.d_seconds 60.));
  (* The current-* functions are deterministic: evaluation happens "in
     December 2007", the ALDSP 3.0 release date, so runs reproduce. *)
  fn "current-date" 0 (fun _ _ -> [ Item.Atomic (Atomic.Date "2007-12-12") ]);
  fn "current-dateTime" 0 (fun _ _ ->
      [ Item.Atomic (Atomic.DateTime "2007-12-12T12:00:00") ]);
  fn "current-time" 0 (fun _ _ -> [ Item.Atomic (Atomic.Time "12:00:00") ]);
  (* ------------- xs constructors ------------- *)
  List.iter
    (fun ty ->
      Context.register_builtin reg (Qname.xs ty) 1 (fun _ args ->
          match Item.one_atom_opt (arg 0 args) with
          | None -> []
          | Some a -> (
            try [ Item.Atomic (Atomic.cast_to a (Qname.xs ty)) ]
            with Atomic.Cast_error m -> err "FORG0001" m)))
    [
      "string"; "boolean"; "integer"; "int"; "long"; "decimal"; "double";
      "float"; "date"; "dateTime"; "time"; "anyURI"; "untypedAtomic"; "QName";
      "duration"; "yearMonthDuration"; "dayTimeDuration";
    ]

let standard_registry () =
  let reg = Context.create_registry () in
  register_all reg;
  reg
