(** The [fn:*] / [xs:*] builtin function library.

    Implements the functions-and-operators subset the paper's examples
    and ALDSP-style services rely on: accessors, string functions
    (including the regex family via [re]), numerics, sequence functions,
    aggregates, node functions, context functions, [fn:error] and
    [fn:trace], plus the [xs:TYPE(...)] constructor functions. *)

val subsequence_window : float -> float option -> float * float
(** [subsequence_window start len] is the (inclusive, exclusive)
    position window of fn:subsequence in xs:double arithmetic, with
    fn:round (half toward +INF) applied to both arguments. *)

val subsequence_keep : float * float -> int -> bool
(** [subsequence_keep window p] tests a 1-based position against the
    window; NaN bounds reject every position (empty result). *)

val register_all : Context.registry -> unit
(** Register every builtin into a registry. Idempotent per registry only
    if called once — re-registering raises [err:XQST0034]. *)

val standard_registry : unit -> Context.registry
(** A fresh registry with all builtins registered. *)
