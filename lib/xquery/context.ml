open Xdm

module Qmap = Map.Make (struct
  type t = Qname.t

  let compare = Qname.compare
end)

type static = {
  mutable namespaces : (string * string) list;
  mutable default_elem_ns : string;
  mutable default_fun_ns : string;
}

let default_static () =
  {
    namespaces =
      [
        ("xs", Qname.xs_ns);
        ("fn", Qname.fn_ns);
        ("err", Qname.err_ns);
        ("local", Qname.local_default_ns);
        ("xml", Qname.xml_ns);
      ];
    default_elem_ns = "";
    default_fun_ns = Qname.fn_ns;
  }

let declare_ns st prefix uri =
  st.namespaces <- (prefix, uri) :: st.namespaces

let lookup_ns st prefix = List.assoc_opt prefix st.namespaces

let resolve_qname st ~element (prefix, local) =
  match prefix with
  | Some p -> (
    match lookup_ns st p with
    | Some uri -> Qname.make ~prefix:p ~uri local
    | None ->
      Item.raise_error (Qname.err "XPST0081")
        (Printf.sprintf "undeclared namespace prefix %S" p))
  | None ->
    if element && st.default_elem_ns <> "" then
      Qname.make ~uri:st.default_elem_ns local
    else Qname.local local

let resolve_fname st (prefix, local) =
  match prefix with
  | Some _ -> resolve_qname st ~element:false (prefix, local)
  | None -> Qname.make ~uri:st.default_fun_ns local

type dynamic = { f : dynamic_fields }

and func_impl =
  | Builtin of (dynamic -> Item.seq list -> Item.seq)
  | User of Ast.function_decl
  | External of (Item.seq list -> Item.seq)
  | External_cursor of (Item.seq list -> Item.t Cursor.t)

and func = {
  fn_name : Qname.t;
  fn_arity : int;
  fn_params : Seqtype.t option list;
  fn_return : Seqtype.t option;
  fn_impl : func_impl;
  fn_side_effects : bool;
  fn_purity : (bool * bool * bool) option;
      (* (effects, fallible, constructs) supplied at registration for
         externals whose body was analyzed elsewhere (XQSE read-only
         procedures); [None] = unknown, treated as impure *)
}

and registry = {
  mutable table : func list Qmap.t;
  mutable globals : Item.seq Qmap.t;
      (* module-level variable bindings visible to user function bodies *)
}

and dynamic_fields = {
  registry : registry;
  vars : Item.seq Qmap.t;
  ctx_item : Item.t option;
  ctx_pos : int;
  ctx_size : int;
  pul : Update.t ref;
  updating_ok : bool;
  docs : (string, Node.t) Hashtbl.t;
  collections : (string, Node.t list) Hashtbl.t;
  trace : string -> unit;
  depth : int;
  instr : Instr.t;
  streaming : bool;
      (* false = forced-materializing mode: eval_cur degenerates to
         eager evaluation wrapped in a pure cursor *)
  purity : Ast.expr -> bool * bool * bool;
      (* (effects, fallible, constructs) of an expression under the
         compiled program's purity environment; the default is the
         conservative (true, true, true) *)
  cache : Cache.bound option;
      (* result-cache view bound to the session's config fingerprint;
         [None] = caching disabled, calls run untouched *)
}

let create_registry () = { table = Qmap.empty; globals = Qmap.empty }
let copy_registry r = { table = r.table; globals = r.globals }
let set_globals r g = r.globals <- g
let globals r = r.globals

let find r name arity =
  match Qmap.find_opt name r.table with
  | None -> None
  | Some fs -> List.find_opt (fun f -> f.fn_arity = arity) fs

let unregister r name arity =
  r.table <-
    Qmap.update name
      (function
        | None -> None
        | Some fs -> (
          match List.filter (fun f -> f.fn_arity <> arity) fs with
          | [] -> None
          | fs -> Some fs))
      r.table

let register r f =
  (match find r f.fn_name f.fn_arity with
  | Some _ ->
    Item.raise_error (Qname.err "XQST0034")
      (Printf.sprintf "function %s/%d is already declared"
         (Qname.to_string f.fn_name) f.fn_arity)
  | None -> ());
  r.table <-
    Qmap.update f.fn_name
      (function None -> Some [ f ] | Some fs -> Some (f :: fs))
      r.table

let register_builtin r ?(side_effects = false) name arity impl =
  register r
    {
      fn_name = name;
      fn_arity = arity;
      fn_params = List.init arity (fun _ -> None);
      fn_return = None;
      fn_impl = Builtin impl;
      fn_side_effects = side_effects;
      fn_purity = None;
    }

let register_external r ?(side_effects = false) ?purity ?params ?return name
    arity impl =
  register r
    {
      fn_name = name;
      fn_arity = arity;
      fn_params =
        (match params with
        | Some ps -> ps
        | None -> List.init arity (fun _ -> None));
      fn_return = return;
      fn_impl = External impl;
      fn_side_effects = side_effects;
      fn_purity = purity;
    }

let register_external_cursor r ?(side_effects = false) ?purity ?params ?return
    name arity impl =
  register r
    {
      fn_name = name;
      fn_arity = arity;
      fn_params =
        (match params with
        | Some ps -> ps
        | None -> List.init arity (fun _ -> None));
      fn_return = return;
      fn_impl = External_cursor impl;
      fn_side_effects = side_effects;
      fn_purity = purity;
    }

let fold r ~init ~f =
  Qmap.fold (fun _ fs acc -> List.fold_left f acc fs) r.table init

let fields d = d.f

let make_dynamic ?(trace = fun _ -> ()) ?(instr = Instr.disabled)
    ?(streaming = true) ?(purity = fun _ -> (true, true, true)) ?cache registry
    =
  {
    f =
      {
        registry;
        vars = Qmap.empty;
        ctx_item = None;
        ctx_pos = 0;
        ctx_size = 0;
        pul = ref [];
        updating_ok = false;
        docs = Hashtbl.create 8;
        collections = Hashtbl.create 8;
        trace;
        depth = 0;
        instr;
        streaming;
        purity;
        cache;
      };
  }

let with_streaming d b = { f = { d.f with streaming = b } }

let with_vars d vars = { f = { d.f with vars } }
let bind d name v = { f = { d.f with vars = Qmap.add name v d.f.vars } }

let bind_many d bindings =
  List.fold_left (fun d (n, v) -> bind d n v) d bindings

let lookup_var d name = Qmap.find_opt name d.f.vars

let with_focus d item ~pos ~size =
  { f = { d.f with ctx_item = Some item; ctx_pos = pos; ctx_size = size } }

let no_focus d = { f = { d.f with ctx_item = None; ctx_pos = 0; ctx_size = 0 } }
let with_updating d b = { f = { d.f with updating_ok = b } }

let max_depth = 4096

let deeper d =
  if d.f.depth >= max_depth then
    Item.raise_error (Qname.err "XQDY0900")
      "maximum recursion depth exceeded"
  else { f = { d.f with depth = d.f.depth + 1 } }

let register_doc d uri node = Hashtbl.replace d.f.docs uri node

let register_collection d uri nodes =
  Hashtbl.replace d.f.collections uri nodes
