(** Purity/effect analysis over the XQuery AST.

    Every optimizer rewrite that moves, duplicates, drops or reorders an
    expression needs to know what evaluating that expression can *do*
    besides produce a value. This module computes a small conservative
    verdict per expression:

    - [effects]: evaluation may have an observable side effect — write a
      trace line, touch a backend (relational, web service), create
      fresh nodes whose identity escapes, or apply updates. Effectful
      expressions must be evaluated exactly as written: never moved,
      duplicated or dropped.
    - [fallible]: evaluation may raise a dynamic error. Error-free
      ("total") expressions can be evaluated more or fewer times than
      written, or reordered past other totals, without changing which
      error (if any) a program raises.
    - [constructs]: evaluation creates new nodes. Node constructors are
      pure and total, but each evaluation yields a *distinct* node
      (observable through [is], [<<], [|]), so a constructing expression
      must keep its evaluation count even when it is otherwise total.

    The lattice is three independent booleans ordered by implication;
    [join] is pointwise "or" and every rule is monotone, so the fixpoint
    over user function bodies below terminates.

    Policy for the environment ({!env_for}):
    - Builtins get verdicts from the table in {!builtin_verdict}, which
      must classify every function [Builtins.register_all] installs
      (enforced by the test suite). Only [fn:trace] is effectful; most
      builtins are fallible because they enforce argument cardinality
      or value restrictions dynamically.
    - External functions (the ALDSP layer: relational sources, web
      services, data-service methods) are always impure — they reach
      outside the engine, so the analysis refuses to reason about them.
    - User [declare function] bodies are analyzed by an optimistic
      fixpoint on [effects]/[constructs], but are *always* fallible:
      recursion is depth-limited dynamically (err:XQDY0900), so even a
      function whose body contains no fallible expression can raise. *)

open Xdm

type verdict = { effects : bool; fallible : bool; constructs : bool }

let total = { effects = false; fallible = false; constructs = false }
let fallible = { total with fallible = true }
let impure = { effects = true; fallible = true; constructs = true }

let join a b =
  {
    effects = a.effects || b.effects;
    fallible = a.fallible || b.fallible;
    constructs = a.constructs || b.constructs;
  }

(* ------------------------------------------------------------------ *)
(* Builtin effect table                                                *)
(* ------------------------------------------------------------------ *)

(* fn-namespace functions whose evaluation can neither raise nor have
   effects (given already-evaluated arguments), with their registered
   arities. Everything here either ignores its arguments' values (count,
   empty, exists, reverse, unordered) or returns a constant (true, false,
   current-*: the reproduction pins the clock, see builtins.ml). Arities
   the registry never installs get no verdict — an unknown-function call
   must stay impure even if its name looks total. *)
let fn_total =
  [ ("true", [ 0 ]); ("false", [ 0 ]); ("count", [ 1 ]); ("empty", [ 1 ]);
    ("exists", [ 1 ]); ("head", [ 1 ]); ("tail", [ 1 ]); ("reverse", [ 1 ]);
    ("unordered", [ 1 ]);
    ("current-date", [ 0 ]); ("current-dateTime", [ 0 ]);
    ("current-time", [ 0 ]) ]

(* Every other fn-namespace builtin, with its registered arities. These
   are all pure but fallible: they enforce cardinality (one_atom_opt
   raises on a multi-item argument), types, or value restrictions
   dynamically. fn:trace is the only effectful builtin and is listed
   separately below. *)
let fn_fallible =
  [ ("data", [ 1 ]); ("string", [ 0; 1 ]); ("number", [ 0; 1 ]);
    ("boolean", [ 1 ]); ("not", [ 1 ]); ("error", [ 0; 1; 2; 3 ]);
    ("concat", [ 2; 3; 4; 5; 6; 7; 8 ]); ("string-join", [ 2 ]);
    ("substring", [ 2; 3 ]); ("string-length", [ 0; 1 ]);
    ("upper-case", [ 1 ]); ("lower-case", [ 1 ]); ("contains", [ 2 ]);
    ("starts-with", [ 2 ]); ("ends-with", [ 2 ]);
    ("substring-before", [ 2 ]); ("substring-after", [ 2 ]);
    ("normalize-space", [ 0; 1 ]); ("translate", [ 3 ]);
    ("codepoints-to-string", [ 1 ]); ("string-to-codepoints", [ 1 ]);
    ("matches", [ 2; 3 ]); ("replace", [ 3 ]); ("tokenize", [ 2 ]);
    ("abs", [ 1 ]); ("floor", [ 1 ]); ("ceiling", [ 1 ]); ("round", [ 1 ]);
    ("distinct-values", [ 1 ]); ("subsequence", [ 2; 3 ]);
    ("insert-before", [ 3 ]); ("remove", [ 2 ]); ("index-of", [ 2 ]);
    ("exactly-one", [ 1 ]); ("zero-or-one", [ 1 ]); ("one-or-more", [ 1 ]);
    ("deep-equal", [ 2 ]); ("sum", [ 1 ]); ("avg", [ 1 ]); ("max", [ 1 ]);
    ("min", [ 1 ]); ("position", [ 0 ]); ("last", [ 0 ]);
    ("name", [ 0; 1 ]); ("local-name", [ 1 ]); ("namespace-uri", [ 1 ]);
    ("node-name", [ 1 ]); ("root", [ 0; 1 ]); ("doc", [ 1 ]);
    ("doc-available", [ 1 ]); ("collection", [ 0; 1 ]); ("QName", [ 2 ]);
    ("local-name-from-QName", [ 1 ]); ("namespace-uri-from-QName", [ 1 ]);
    ("compare", [ 2 ]); ("codepoint-equal", [ 2 ]);
    ("round-half-to-even", [ 1 ]); ("encode-for-uri", [ 1 ]);
    ("year-from-date", [ 1 ]); ("month-from-date", [ 1 ]);
    ("day-from-date", [ 1 ]); ("year-from-dateTime", [ 1 ]);
    ("month-from-dateTime", [ 1 ]); ("day-from-dateTime", [ 1 ]);
    ("hours-from-time", [ 1 ]); ("minutes-from-time", [ 1 ]);
    ("hours-from-dateTime", [ 1 ]); ("minutes-from-dateTime", [ 1 ]);
    ("seconds-from-time", [ 1 ]); ("years-from-duration", [ 1 ]);
    ("months-from-duration", [ 1 ]); ("days-from-duration", [ 1 ]);
    ("hours-from-duration", [ 1 ]); ("minutes-from-duration", [ 1 ]);
    ("seconds-from-duration", [ 1 ]) ]

(* the xs constructor functions installed by builtins.ml (arity 1,
   cast_to can raise FORG0001) *)
let xs_constructors =
  [ "string"; "boolean"; "integer"; "int"; "long"; "decimal"; "double";
    "float"; "date"; "dateTime"; "time"; "anyURI"; "untypedAtomic"; "QName";
    "duration"; "yearMonthDuration"; "dayTimeDuration" ]

let builtin_verdict (q : Qname.t) arity =
  if String.equal q.Qname.uri Qname.fn_ns then
    if q.Qname.local = "trace" && (arity = 1 || arity = 2) then
      Some { effects = true; fallible = true; constructs = false }
    else begin
      match List.find_opt (fun (n, _) -> n = q.Qname.local) fn_total with
      | Some (_, arities) ->
        if List.mem arity arities then Some total else None
      | None ->
        Option.map
          (fun (_, arities) ->
            if List.mem arity arities then fallible else impure)
          (List.find_opt (fun (n, _) -> n = q.Qname.local) fn_fallible)
    end
  else if String.equal q.Qname.uri Qname.xs_ns then
    if arity = 1 && List.mem q.Qname.local xs_constructors then Some fallible
    else None
  else None

(* ------------------------------------------------------------------ *)
(* Boolean-valued expressions                                          *)
(* ------------------------------------------------------------------ *)

let fn_boolean_returning =
  [ "true"; "false"; "not"; "boolean"; "empty"; "exists"; "contains";
    "starts-with"; "ends-with"; "deep-equal"; "matches"; "doc-available" ]

(** [boolean_valued e]: is [e]'s value — when it produces one — always a
    single [xs:boolean] (or the empty sequence)? For such expressions the
    effective boolean value and a filter-predicate test coincide (the
    numeric-predicate positional rule never applies), so a [where] over
    [e] can move into predicate position unchanged. Conservative: [false]
    means "unknown". *)
let rec boolean_valued e =
  match e with
  | Ast.Literal (Atomic.Boolean _) -> true
  | Ast.Value_cmp _ | Ast.General_cmp _ | Ast.Quantified _
  | Ast.Instance_of _ | Ast.Castable_as _ | Ast.And _ | Ast.Or _
  | Ast.Node_is _ | Ast.Node_before _ | Ast.Node_after _ -> true
  | Ast.Seq_expr [ e ] -> boolean_valued e
  | Ast.If_expr (_, t, f) -> boolean_valued t && boolean_valued f
  | Ast.Call (q, _) ->
    String.equal q.Qname.uri Qname.fn_ns
    && List.mem q.Qname.local fn_boolean_returning
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The analysis                                                        *)
(* ------------------------------------------------------------------ *)

module Fmap = Map.Make (struct
  type t = Qname.t * int

  let compare (a, i) (b, j) =
    match Qname.compare a b with 0 -> Int.compare i j | c -> c
end)

type env = verdict Fmap.t

let empty_env : env = Fmap.empty

let lookup (env : env) q arity =
  match Fmap.find_opt (q, arity) env with
  | Some v -> Some v
  | None -> builtin_verdict q arity

(** [analyze env e] computes [e]'s verdict under the function-verdict
    environment [env]. Unknown functions are impure. *)
let rec analyze (env : env) e : verdict =
  let children e =
    Ast.fold_subexprs (fun acc sub -> join acc (analyze env sub)) total e
  in
  match e with
  | Ast.Literal _ | Ast.Var _ | Ast.Context_item | Ast.Root_expr -> total
  (* value-transparent composites: the verdict is exactly the children's *)
  | Ast.Seq_expr _ | Ast.Typeswitch _ | Ast.Instance_of _ -> children e
  (* and/or/if/quantified evaluate a condition through the effective
     boolean value, which raises FORG0006 unless the operand is known
     boolean-or-empty *)
  | Ast.And (a, b) | Ast.Or (a, b) ->
    let v = join (analyze env a) (analyze env b) in
    if boolean_valued a && boolean_valued b then v
    else { v with fallible = true }
  | Ast.If_expr (c, t, f) ->
    let v = join (analyze env c) (join (analyze env t) (analyze env f)) in
    if boolean_valued c then v else { v with fallible = true }
  | Ast.Quantified (_, bindings, body) ->
    let v = children e in
    (* the body goes through the EBV; a type on an in-binding is checked
       dynamically *)
    if
      boolean_valued body
      && not (List.exists (fun (_, t, _) -> t <> None) bindings)
    then v
    else { v with fallible = true }
  | Ast.Flwor (clauses, _) ->
    let v = children e in
    let clause_fallible = function
      | Ast.Where_clause c -> not (boolean_valued c)
      | Ast.Order_clause _ -> true (* order keys are compared dynamically *)
      | Ast.Join_clause _ -> true (* key atomization can raise *)
      | Ast.For_clause bs ->
        List.exists (fun b -> b.Ast.for_type <> None) bs
      | Ast.Let_clause bs ->
        List.exists (fun b -> b.Ast.let_type <> None) bs
    in
    if List.exists clause_fallible clauses then { v with fallible = true }
    else v
  | Ast.Call (q, args) ->
    let va =
      List.fold_left (fun acc a -> join acc (analyze env a)) total args
    in
    (match lookup env q (List.length args) with
    | Some v -> join va v
    | None -> impure)
  (* node constructors: pure, total (content errors come from the child
     expressions, already joined), but each evaluation makes new nodes *)
  | Ast.Elem_ctor _ | Ast.Comp_text _ | Ast.Comp_doc _ | Ast.Comp_comment _
    ->
    { (children e) with constructs = true }
  | Ast.Comp_elem (ns, _) | Ast.Comp_attr (ns, _) | Ast.Comp_pi (ns, _) ->
    let v = { (children e) with constructs = true } in
    (* a computed name is cast to xs:QName/NCName dynamically *)
    (match ns with
    | Ast.Static_name _ -> v
    | Ast.Dynamic_name _ -> { v with fallible = true })
  (* update expressions apply primitives to existing nodes *)
  | Ast.Insert _ | Ast.Delete _ | Ast.Replace _ | Ast.Rename _ -> impure
  (* transform: the updates apply to the private copies, so nothing
     escapes — but target checks make it fallible, and the copies are
     fresh nodes *)
  | Ast.Transform _ ->
    { (children e) with fallible = true; constructs = true }
  (* everything else can raise: arithmetic, comparisons and range cast
     their operands; paths/steps/filters require node inputs; casts and
     treats are checks by definition *)
  | Ast.Arith _ | Ast.Neg _ | Ast.Range _ | Ast.Value_cmp _
  | Ast.General_cmp _ | Ast.Node_is _ | Ast.Node_before _ | Ast.Node_after _
  | Ast.Union _ | Ast.Intersect _ | Ast.Except _ | Ast.Treat_as _
  | Ast.Castable_as _ | Ast.Cast_as _ | Ast.Path _ | Ast.Step _
  | Ast.Filter _ ->
    { (children e) with fallible = true }

let is_pure env e = not (analyze env e).effects

let is_total env e =
  let v = analyze env e in
  (not v.effects) && not v.fallible

(* ------------------------------------------------------------------ *)
(* Environment construction                                            *)
(* ------------------------------------------------------------------ *)

let env_for ~registry (decls : Ast.function_decl list) : env =
  let users = ref [] in
  let claimed = ref Fmap.empty in
  (* each key gets at most one body in [users]: two bodies under one key
     would make the fixpoint below flip between their verdicts forever
     whenever they disagree *)
  let add_user key body env =
    if Fmap.mem key !claimed then env
    else begin
      claimed := Fmap.add key () !claimed;
      users := (key, body) :: !users;
      (* optimistic seed: no effects/constructs until the fixpoint proves
         otherwise; always fallible (bounded recursion depth) *)
      Fmap.add key { total with fallible = true } env
    end
  in
  (* decls first: on a name/arity collision with an already-registered
     function (the registration itself will raise XQST0034 later, but
     this environment is built before that) the decl's body is the one
     analyzed and the registry entry is skipped *)
  let decl_env =
    List.fold_left
      (fun env (d : Ast.function_decl) ->
        let key = (d.Ast.fd_name, List.length d.Ast.fd_params) in
        match d.Ast.fd_body with
        | Some body -> add_user key body env
        | None -> Fmap.add key impure env)
      empty_env decls
  in
  let env =
    Context.fold registry ~init:decl_env ~f:(fun env f ->
        let key = (f.Context.fn_name, f.Context.fn_arity) in
        if Fmap.mem key decl_env then env
        else
          match f.Context.fn_impl with
          | Context.Builtin _ ->
            let v =
              match builtin_verdict f.Context.fn_name f.Context.fn_arity with
              | Some v when not f.Context.fn_side_effects -> v
              | _ -> impure
            in
            Fmap.add key v env
          | Context.External _ | Context.External_cursor _ ->
            (* externals are opaque here, but XQSE read-only procedures
               arrive with a verdict computed from their statement body
               at declaration time (see Interp.declare_procedure) *)
            let v =
              match f.Context.fn_purity with
              | Some (effects, fallible, constructs)
                when not f.Context.fn_side_effects ->
                { effects; fallible; constructs }
              | _ -> impure
            in
            Fmap.add key v env
          | Context.User d -> (
            match d.Ast.fd_body with
            | Some body -> add_user key body env
            | None -> Fmap.add key impure env))
  in
  (* ascend from the optimistic seed until stable; [analyze] is monotone
     in [env] and the lattice is finite, so this terminates *)
  let rec fix env =
    let changed = ref false in
    let env =
      List.fold_left
        (fun env (key, body) ->
          let v = analyze env body in
          let v = { v with fallible = true } in
          let cur = Fmap.find key env in
          if v <> cur then changed := true;
          Fmap.add key v env)
        env !users
    in
    if !changed then fix env else env
  in
  fix env
