(** The XQuery evaluator.

    [eval] is pure except for calls to registered external functions
    (data-service reads) and the accumulation of update primitives from
    XUF expressions into the dynamic context's pending update list. *)

open Xdm

val eval : Context.dynamic -> Ast.expr -> Item.seq
(** Evaluate an expression.
    @raise Xdm.Item.Error for all dynamic and type errors. *)

val eval_cur : Context.dynamic -> Ast.expr -> Item.t Cursor.t
(** Evaluate an expression as a pull-based cursor. Fully consuming the
    cursor yields exactly what {!eval} returns (same items, effects and
    errors, in the same order); consumers stopping early must use
    {!Xdm.Cursor.abandon}. When the context is not streaming (or no
    streaming arm applies) this degenerates to eager evaluation wrapped
    in a pure cursor. *)

val call : Context.dynamic -> Qname.t -> Item.seq list -> Item.seq
(** Call a function from the registry by name with evaluated arguments
    (applies parameter and return sequence-type checks for user
    functions).
    @raise Xdm.Item.Error [err:XPST0017] if unknown. *)

val eval_updating : Context.dynamic -> Ast.expr -> Update.t
(** Evaluate an expression as an updating expression: returns the pending
    update list it produced (the caller decides when to {!Update.apply}
    it).
    @raise Xdm.Item.Error [err:XUST0001]-style when the expression also
    returns a non-empty value. *)

(** {1 Closure compilation}

    Stage 2 of the two-stage pipeline: [compile] walks an expression
    once and produces a plan — a plain closure over the dynamic context
    — with constructor dispatch, registry lookups and purity/streaming
    gate verdicts hoisted out of the per-evaluation path. Running a plan
    is observably identical to {!eval} on the same context: same items,
    effects, errors, instrumentation counters and evaluation order.

    A compiler (and its plans) is valid for a fixed registry and purity
    environment; Engine/Session key their plan caches on exactly that
    pair (plus the flags) and recompile after any registration. The
    [streaming] flag is read from the context at run time, so one plan
    serves both modes. *)

type plan = Context.dynamic -> Item.seq

type compiler

val compiler :
  ?purity:(Ast.expr -> bool * bool * bool) -> Context.registry -> compiler
(** A compilation unit over a registry snapshot. [purity] is the
    compiled program's (effects, fallible, constructs) analysis —
    conservative [(true, true, true)] by default, which disables the
    streaming fast paths but stays correct. Sub-plans and compiled
    user-function bodies are memoized per compiler, so compiling many
    queries against one registry shares function plans. *)

val compile : compiler -> Ast.expr -> plan

val compile_cur :
  compiler -> Ast.expr -> Context.dynamic -> Item.t Cursor.t
(** Cursor-producing variant of {!compile}, mirroring {!eval_cur}. *)

(** {1 Shared scalar kernels}

    Single-source arithmetic/comparison rules over already-evaluated
    operands, exported for the XQSE interpreter's fast path for tiny
    statement expressions — all three paths (eager, compiled, XQSE) must
    agree exactly. *)

val arith_seq : Atomic.arith_op -> Item.seq -> Item.seq -> Item.seq
val value_cmp_seq : Ast.comp_op -> Item.seq -> Item.seq -> Item.seq
