(** The XQuery evaluator.

    [eval] is pure except for calls to registered external functions
    (data-service reads) and the accumulation of update primitives from
    XUF expressions into the dynamic context's pending update list. *)

open Xdm

val eval : Context.dynamic -> Ast.expr -> Item.seq
(** Evaluate an expression.
    @raise Xdm.Item.Error for all dynamic and type errors. *)

val eval_cur : Context.dynamic -> Ast.expr -> Item.t Cursor.t
(** Evaluate an expression as a pull-based cursor. Fully consuming the
    cursor yields exactly what {!eval} returns (same items, effects and
    errors, in the same order); consumers stopping early must use
    {!Xdm.Cursor.abandon}. When the context is not streaming (or no
    streaming arm applies) this degenerates to eager evaluation wrapped
    in a pure cursor. *)

val call : Context.dynamic -> Qname.t -> Item.seq list -> Item.seq
(** Call a function from the registry by name with evaluated arguments
    (applies parameter and return sequence-type checks for user
    functions).
    @raise Xdm.Item.Error [err:XPST0017] if unknown. *)

val eval_updating : Context.dynamic -> Ast.expr -> Update.t
(** Evaluate an expression as an updating expression: returns the pending
    update list it produced (the caller decides when to {!Update.apply}
    it).
    @raise Xdm.Item.Error [err:XUST0001]-style when the expression also
    returns a non-empty value. *)
