(** Static and dynamic evaluation contexts and the function registry.

    The registry is shared between the XQuery engine and the XQSE
    interpreter: XQSE readonly procedures are registered here as
    functions, and data-service methods are registered as external
    functions by the ALDSP layer. *)

open Xdm

module Qmap : Map.S with type key = Qname.t

(** {1 Static context} *)

type static = {
  mutable namespaces : (string * string) list;  (** prefix → URI *)
  mutable default_elem_ns : string;
  mutable default_fun_ns : string;
}

val default_static : unit -> static
(** Fresh static context with the [xs], [fn], [err], [local] and [xml]
    prefixes predeclared and [fn] as the default function namespace. *)

val declare_ns : static -> string -> string -> unit
val lookup_ns : static -> string -> string option

val resolve_qname : static -> element:bool -> string option * string -> Qname.t
(** Resolve a lexical QName. Unprefixed names use the default element
    namespace when [element] is [true] and no namespace otherwise.
    @raise Xdm.Item.Error [err:XPST0081] on an undeclared prefix. *)

val resolve_fname : static -> string option * string -> Qname.t
(** Resolve a function name (unprefixed names use the default function
    namespace). *)

(** {1 Functions} *)

type dynamic

type func_impl =
  | Builtin of (dynamic -> Item.seq list -> Item.seq)
  | User of Ast.function_decl
  | External of (Item.seq list -> Item.seq)
      (** may have side effects; used for data-service calls *)
  | External_cursor of (Item.seq list -> Item.t Cursor.t)
      (** pull-based external: the result surfaces as a cursor so
          streaming consumers can stop early; eager callers drain it *)

type func = {
  fn_name : Qname.t;
  fn_arity : int;
  fn_params : Seqtype.t option list;
  fn_return : Seqtype.t option;
  fn_impl : func_impl;
  fn_side_effects : bool;
      (** [true] blocks use inside pure XQuery expressions when the
          engine runs in pure mode *)
  fn_purity : (bool * bool * bool) option;
      (** (effects, fallible, constructs) verdict supplied at
          registration for externals analyzed elsewhere (XQSE read-only
          procedure bodies); [None] = unknown, treated as impure *)
}

type registry

val create_registry : unit -> registry

val copy_registry : registry -> registry
(** Shallow copy: further registrations do not affect the original. *)

val register : registry -> func -> unit
(** @raise Xdm.Item.Error [err:XQST0034] on duplicate name/arity. *)

val unregister : registry -> Qname.t -> int -> unit
(** Remove the function of that name/arity if present (no-op otherwise) —
    for re-homing a registration whose closure must capture a different
    runtime (see [Xqse.Interp.fork_runtime]). *)

val register_builtin :
  registry ->
  ?side_effects:bool ->
  Qname.t ->
  int ->
  (dynamic -> Item.seq list -> Item.seq) ->
  unit

val register_external :
  registry ->
  ?side_effects:bool ->
  ?purity:bool * bool * bool ->
  ?params:Seqtype.t option list ->
  ?return:Seqtype.t ->
  Qname.t ->
  int ->
  (Item.seq list -> Item.seq) ->
  unit

val register_external_cursor :
  registry ->
  ?side_effects:bool ->
  ?purity:bool * bool * bool ->
  ?params:Seqtype.t option list ->
  ?return:Seqtype.t ->
  Qname.t ->
  int ->
  (Item.seq list -> Item.t Cursor.t) ->
  unit

val find : registry -> Qname.t -> int -> func option
val fold : registry -> init:'a -> f:('a -> func -> 'a) -> 'a

val set_globals : registry -> Item.seq Qmap.t -> unit
(** Install the module-level variable bindings that user-defined function
    bodies observe. *)

val globals : registry -> Item.seq Qmap.t

(** {1 Dynamic context} *)

type dynamic_fields = {
  registry : registry;
  vars : Item.seq Qmap.t;
  ctx_item : Item.t option;
  ctx_pos : int;
  ctx_size : int;
  pul : Update.t ref;  (** accumulates updating-expression primitives *)
  updating_ok : bool;  (** whether updating expressions are allowed *)
  docs : (string, Node.t) Hashtbl.t;  (** fn:doc registry *)
  collections : (string, Node.t list) Hashtbl.t;  (** fn:collection *)
  trace : string -> unit;
  depth : int;  (** recursion guard *)
  instr : Instr.t;  (** streaming/materialization counters *)
  streaming : bool;
      (** [false] = forced-materializing mode: cursor producers
          degenerate to eager evaluation *)
  purity : Ast.expr -> bool * bool * bool;
      (** (effects, fallible, constructs) under the compiled program's
          purity environment; conservative [(true, true, true)] by
          default *)
  cache : Cache.bound option;
      (** result-cache view bound to the session's config fingerprint;
          [None] disables caching *)
}

val fields : dynamic -> dynamic_fields

val make_dynamic :
  ?trace:(string -> unit) ->
  ?instr:Instr.t ->
  ?streaming:bool ->
  ?purity:(Ast.expr -> bool * bool * bool) ->
  ?cache:Cache.bound ->
  registry ->
  dynamic

val with_streaming : dynamic -> bool -> dynamic
val with_vars : dynamic -> Item.seq Qmap.t -> dynamic
val bind : dynamic -> Qname.t -> Item.seq -> dynamic
val bind_many : dynamic -> (Qname.t * Item.seq) list -> dynamic
val lookup_var : dynamic -> Qname.t -> Item.seq option
val with_focus : dynamic -> Item.t -> pos:int -> size:int -> dynamic
val no_focus : dynamic -> dynamic
val with_updating : dynamic -> bool -> dynamic
val deeper : dynamic -> dynamic
(** @raise Xdm.Item.Error when recursion exceeds the engine limit. *)

val register_doc : dynamic -> string -> Node.t -> unit
val register_collection : dynamic -> string -> Node.t list -> unit
(** The empty URI names the default collection. *)
