open Xdm

type t = {
  st : Context.static;
  reg : Context.registry;
  mutable optimize : bool;
  mutable opt_log : (string -> unit) option;
  docs : (string * Node.t) list ref;
  colls : (string * Node.t list) list ref;
}

let create ?(optimize = true) () =
  {
    st = Context.default_static ();
    reg = Builtins.standard_registry ();
    optimize;
    opt_log = None;
    docs = ref [];
    colls = ref [];
  }

let with_registry ?(optimize = true) st reg =
  { st; reg; optimize; opt_log = None; docs = ref []; colls = ref [] }

let static t = t.st
let registry t = t.reg
let optimizing t = t.optimize
let set_optimizing t b = t.optimize <- b
let set_optimizer_log t f = t.opt_log <- Some f
let optimizer_log t = t.opt_log
let declare_namespace t prefix uri = Context.declare_ns t.st prefix uri

let register_external t ?side_effects name arity impl =
  Context.register_external t.reg ?side_effects name arity impl

let register_doc t uri node = t.docs := (uri, node) :: !(t.docs)
let register_collection t uri nodes = t.colls := (uri, nodes) :: !(t.colls)

type compiled = {
  c_engine : t;
  c_registry : Context.registry;
  c_vars : Ast.var_decl list;  (* in declaration order *)
  c_body : Ast.expr;
}

let compile t src =
  (* parse against a copy of the static context so per-query namespace
     declarations do not leak into the engine *)
  let st =
    {
      Context.namespaces = t.st.Context.namespaces;
      default_elem_ns = t.st.Context.default_elem_ns;
      default_fun_ns = t.st.Context.default_fun_ns;
    }
  in
  let m = Parser.parse_module st src in
  let reg = Context.copy_registry t.reg in
  let vars = ref [] in
  List.iter
    (fun item ->
      match item with
      | Ast.P_function decl ->
        let decl =
          if t.optimize then Optimizer.optimize_decl ?log:t.opt_log decl
          else decl
        in
        Context.register reg
          {
            Context.fn_name = decl.Ast.fd_name;
            fn_arity = List.length decl.Ast.fd_params;
            fn_params = List.map snd decl.Ast.fd_params;
            fn_return = decl.Ast.fd_return;
            fn_impl = Context.User decl;
            fn_side_effects = false;
          }
      | Ast.P_variable vd -> vars := vd :: !vars
      | Ast.P_import _ ->
        (* module resolution is a session-level concern (Xqse.Session);
           the prefix was already declared by the parser *)
        ())
    m.Ast.prolog;
  let body =
    if t.optimize then Optimizer.optimize ?log:t.opt_log m.Ast.body
    else m.Ast.body
  in
  { c_engine = t; c_registry = reg; c_vars = List.rev !vars; c_body = body }

let run ?context_item ?(vars = []) ?(trace = fun _ -> ()) c =
  let ctx = Context.make_dynamic ~trace c.c_registry in
  List.iter
    (fun (uri, doc) -> Context.register_doc ctx uri doc)
    (List.rev !(c.c_engine.docs));
  List.iter
    (fun (uri, nodes) -> Context.register_collection ctx uri nodes)
    (List.rev !(c.c_engine.colls));
  let ctx = Context.bind_many ctx vars in
  (* evaluate module variable declarations in order *)
  let ctx =
    List.fold_left
      (fun ctx vd ->
        let v =
          match vd.Ast.vd_value with
          | Some e -> Eval.eval ctx e
          | None -> (
            match Context.lookup_var ctx vd.Ast.vd_name with
            | Some v -> v
            | None ->
              Item.raise_error (Qname.err "XPDY0002")
                (Printf.sprintf
                   "external variable $%s was not supplied a value"
                   (Qname.to_string vd.Ast.vd_name)))
        in
        let v =
          match vd.Ast.vd_type with
          | Some ty ->
            Seqtype.check
              ~what:(Printf.sprintf "$%s" (Qname.to_string vd.Ast.vd_name))
              ty v
          | None -> v
        in
        Context.bind ctx vd.Ast.vd_name v)
      ctx c.c_vars
  in
  Context.set_globals c.c_registry (Context.fields ctx).Context.vars;
  let ctx =
    match context_item with
    | Some item -> Context.with_focus ctx item ~pos:1 ~size:1
    | None -> ctx
  in
  Eval.eval ctx c.c_body

let eval_string ?context_item ?vars ?trace t src =
  run ?context_item ?vars ?trace (compile t src)

let eval_to_string ?context_item ?vars t src =
  Xml_serialize.seq_to_string (eval_string ?context_item ?vars t src)
