open Xdm

type compiled_entry = {
  e_fingerprint : int * bool * bool * bool;
      (* (generation, optimize, streaming, plans) under which the entry
         was compiled; a mismatch at lookup is a miss *)
  e_compiled : compiled_rec;
}

and t = {
  st : Context.static;
  reg : Context.registry;
  mutable optimize : bool;
  mutable streaming : bool;
  mutable plans : bool;
  mutable instr : Instr.t;
  generation : int Stdlib.Atomic.t;
      (* bumped on every static-context change (function/namespace
         registration) so cached plans compiled against the old context
         can never be replayed; atomic so a registration racing a warm
         lookup on another domain is globally ordered against it *)
  cache_lock : Mutex.t;  (* guards [cache] (lookups, inserts, flushes) *)
  cache : (string, compiled_entry) Hashtbl.t;  (* query text → plan *)
  docs : (string * Node.t) list ref;
  colls : (string * Node.t list) list ref;
}

and compiled_rec = {
  c_engine : t;
  c_registry : Context.registry;
  c_vars : Ast.var_decl list;  (* in declaration order *)
  c_body : Ast.expr;
  c_env : Purity.env;  (* for the evaluator's streaming gates *)
  c_plan : Eval.plan Lazy.t;
      (* the closure-compiled body; forced inside the compile span when
         plans are enabled so the compile/run span split stays honest *)
}

(* Bounded cache: a workload of unbounded distinct query texts must not
   retain every plan forever. Overflow flushes wholesale — eviction
   policy is not worth the bookkeeping at this scale, and a flush is not
   an invalidation (the static context did not change), so it does not
   count on [plan.cache.invalidate]. *)
let cache_cap = 256

let create ?(optimize = true) ?(streaming = true) ?(instr = Instr.disabled) ()
    =
  {
    st = Context.default_static ();
    reg = Builtins.standard_registry ();
    optimize;
    streaming;
    plans = true;
    instr;
    generation = Stdlib.Atomic.make 0;
    cache_lock = Mutex.create ();
    cache = Hashtbl.create 32;
    docs = ref [];
    colls = ref [];
  }

let with_registry ?(optimize = true) ?(streaming = true)
    ?(instr = Instr.disabled) st reg =
  {
    st;
    reg;
    optimize;
    streaming;
    plans = true;
    instr;
    generation = Stdlib.Atomic.make 0;
    cache_lock = Mutex.create ();
    cache = Hashtbl.create 32;
    docs = ref [];
    colls = ref [];
  }

(* An independent engine seeded from [t]: copies of the static context,
   registry (persistent maps — O(1) and fully decoupled), documents and
   collections, with a fresh plan cache. Registrations on either side
   are invisible to the other; [Session.with_config] forks workers
   through this so domains never share engine-level mutable state. *)
let fork ?optimize ?streaming ?plans ?instr t =
  {
    st =
      {
        Context.namespaces = t.st.Context.namespaces;
        default_elem_ns = t.st.Context.default_elem_ns;
        default_fun_ns = t.st.Context.default_fun_ns;
      };
    reg = Context.copy_registry t.reg;
    optimize = Option.value optimize ~default:t.optimize;
    streaming = Option.value streaming ~default:t.streaming;
    plans = Option.value plans ~default:t.plans;
    instr = (match instr with Some i -> i | None -> t.instr);
    generation = Stdlib.Atomic.make (Stdlib.Atomic.get t.generation);
    cache_lock = Mutex.create ();
    cache = Hashtbl.create 32;
    docs = ref !(t.docs);
    colls = ref !(t.colls);
  }

let static t = t.st
let registry t = t.reg
let optimizing t = t.optimize
let set_optimizing t b = t.optimize <- b
let streaming t = t.streaming
let set_streaming t b = t.streaming <- b
let plans t = t.plans
let set_plans t b = t.plans <- b
let generation t = Stdlib.Atomic.get t.generation
let instr t = t.instr
let set_instr t i = t.instr <- i

(* Any change to what queries compile against — registered functions,
   namespace bindings — makes every cached plan stale. The generation
   bump also covers plans cached outside the engine (Xqse.Session keys
   its own cache on the engine generation). The bump happens before the
   flush: a concurrent lookup either sees the old generation (and its
   entry, which was valid under it) or the new one (and misses). *)
let invalidate_plans t =
  Stdlib.Atomic.incr t.generation;
  Mutex.protect t.cache_lock (fun () ->
      let n = Hashtbl.length t.cache in
      if n > 0 then begin
        Instr.bump t.instr ~n Instr.K.plan_cache_invalidate;
        Hashtbl.reset t.cache
      end)

(* Mutate-then-bump: the registry/static change lands before the
   generation moves, so a compile racing the registration either
   fingerprints the old generation (its entry — fresh or stale — is
   invalidated by the bump at its next lookup) or the new one (in which
   case the bump, and therefore the mutation, happened before its
   registry snapshot). Bump-first would allow the inverse: a stale
   registry snapshot cached under the new generation. *)
let declare_namespace t prefix uri =
  Context.declare_ns t.st prefix uri;
  invalidate_plans t

let register_external t ?side_effects ?purity name arity impl =
  Context.register_external t.reg ?side_effects ?purity name arity impl;
  invalidate_plans t

let register_external_cursor t ?side_effects ?purity name arity impl =
  Context.register_external_cursor t.reg ?side_effects ?purity name arity impl;
  invalidate_plans t

let register_doc t uri node = t.docs := (uri, node) :: !(t.docs)
let register_collection t uri nodes = t.colls := (uri, nodes) :: !(t.colls)

(* Optimize one expression, reporting into the instrumentation handle:
   the per-pass rewrite counters always, and one note per rewrite when a
   sink is attached ([where] names the enclosing declaration). The log
   closure is only built when notes will actually be emitted, so the
   optimizer never forces its lazy log strings under a [Null] sink. *)
let optimize_expr t ?where ?env e =
  if not t.optimize then e
  else begin
    let i = t.instr in
    let log =
      if Instr.noting i then
        Some
          (fun m ->
            Instr.note i
              (match where with
              | Some w -> Printf.sprintf "[%s] %s" w m
              | None -> m))
      else None
    in
    let e', st = Optimizer.optimize_with_stats ?log ?env ~instr:i e in
    Instr.bump i ~n:st.Optimizer.folded Instr.K.optimizer_folded;
    Instr.bump i ~n:st.Optimizer.inlined Instr.K.optimizer_inlined;
    Instr.bump i ~n:st.Optimizer.inlined_pure Instr.K.optimizer_inlined_pure;
    Instr.bump i ~n:st.Optimizer.joins Instr.K.optimizer_joins;
    Instr.bump i ~n:st.Optimizer.pushed Instr.K.optimizer_pushed;
    Instr.bump i ~n:st.Optimizer.pushed_shifted
      Instr.K.optimizer_pushed_shifted;
    e'
  end

(* The purity environment for a compilation: the engine's registry plus
   the module's own not-yet-registered function declarations, so a call
   from one declared function to another (or to itself) still analyzes
   precisely instead of defaulting to impure. Built even when the
   optimizer is off: the streaming evaluator gates on the same verdicts,
   and must gate identically in optimized and unoptimized engines. *)
let purity_env t decls = Purity.env_for ~registry:t.reg decls

type compiled = compiled_rec

(* The (effects, fallible, constructs) closure handed to the dynamic
   context so the evaluator can consult the compile-time purity
   environment without a module cycle. *)
let purity_fn env e =
  let v = Purity.analyze env e in
  (v.Purity.effects, v.Purity.fallible, v.Purity.constructs)

(* Plan-cache fingerprint: the generation plus every flag that changes
   what a compile produces. Captured at the moment the registry is
   copied (see [compile_fp]) so an entry is cached under exactly the
   context it was compiled against. *)
let fingerprint t = (Stdlib.Atomic.get t.generation, t.optimize, t.streaming, t.plans)

(* [compile_fp] additionally returns the fingerprint observed when the
   registry was snapshotted: if a registration lands mid-compile, the
   returned fingerprint is stale against the engine's current one and
   the caller must not cache the plan (it was compiled against the
   pre-registration registry). *)
let compile_fp t src =
  Instr.span t.instr "compile" (fun () ->
      (* parse against a copy of the static context so per-query namespace
         declarations do not leak into the engine *)
      let st =
        {
          Context.namespaces = t.st.Context.namespaces;
          default_elem_ns = t.st.Context.default_elem_ns;
          default_fun_ns = t.st.Context.default_fun_ns;
        }
      in
      let m = Parser.parse_module st src in
      let fp = fingerprint t in
      let reg = Context.copy_registry t.reg in
      (* collect the module's function declarations first: the purity
         environment must see all of them (mutual recursion) before any
         body is optimized *)
      let decls =
        List.filter_map
          (function Ast.P_function d -> Some d | _ -> None)
          m.Ast.prolog
      in
      let env = purity_env t decls in
      let vars = ref [] in
      List.iter
        (fun item ->
          match item with
          | Ast.P_function decl ->
            let decl =
              {
                decl with
                Ast.fd_body =
                  Option.map
                    (optimize_expr t ~env
                       ~where:(Qname.to_string decl.Ast.fd_name))
                    decl.Ast.fd_body;
              }
            in
            Context.register reg
              {
                Context.fn_name = decl.Ast.fd_name;
                fn_arity = List.length decl.Ast.fd_params;
                fn_params = List.map snd decl.Ast.fd_params;
                fn_return = decl.Ast.fd_return;
                fn_impl = Context.User decl;
                fn_side_effects = false;
                fn_purity = None;
              }
          | Ast.P_variable vd -> vars := vd :: !vars
          | Ast.P_import _ ->
            (* module resolution is a session-level concern (Xqse.Session);
               the prefix was already declared by the parser *)
            ())
        m.Ast.prolog;
      let body = optimize_expr t ~env m.Ast.body in
      let c =
        {
          c_engine = t;
          c_registry = reg;
          c_vars = List.rev !vars;
          c_body = body;
          c_env = env;
          c_plan =
            lazy
              (Eval.compile (Eval.compiler ~purity:(purity_fn env) reg) body);
        }
      in
      (* closure-compile inside the compile span so [run] measures pure
         execution; skipped when the engine executes via the tree walker *)
      if t.plans then ignore (Lazy.force c.c_plan : Eval.plan);
      (* successful compiles only: a parse or static error above must
         not count (the span still reports its duration) *)
      Instr.bump t.instr Instr.K.queries_compiled;
      (fp, c))

let compile t src = snd (compile_fp t src)

type run_opts = {
  context_item : Item.t option;
  vars : (Qname.t * Item.seq) list;
  trace : (string -> unit) option;
}

let default_run_opts = { context_item = None; vars = []; trace = None }

let run ?(opts = default_run_opts) c =
  let i = c.c_engine.instr in
  Instr.span i "run" (fun () ->
      let trace =
        match opts.trace with
        | Some f -> f
        | None -> fun m -> Instr.note i ("trace: " ^ m)
      in
      let ctx =
        Context.make_dynamic ~trace ~instr:i
          ~streaming:c.c_engine.streaming
          ~purity:(purity_fn c.c_env) c.c_registry
      in
      List.iter
        (fun (uri, doc) -> Context.register_doc ctx uri doc)
        (List.rev !(c.c_engine.docs));
      List.iter
        (fun (uri, nodes) -> Context.register_collection ctx uri nodes)
        (List.rev !(c.c_engine.colls));
      let ctx = Context.bind_many ctx opts.vars in
      (* evaluate module variable declarations in order *)
      let ctx =
        List.fold_left
          (fun ctx vd ->
            let v =
              match vd.Ast.vd_value with
              | Some e -> Eval.eval ctx e
              | None -> (
                match Context.lookup_var ctx vd.Ast.vd_name with
                | Some v -> v
                | None ->
                  Item.raise_error (Qname.err "XPDY0002")
                    (Printf.sprintf
                       "external variable $%s was not supplied a value"
                       (Qname.to_string vd.Ast.vd_name)))
            in
            let v =
              match vd.Ast.vd_type with
              | Some ty ->
                Seqtype.check
                  ~what:(Printf.sprintf "$%s" (Qname.to_string vd.Ast.vd_name))
                  ty v
              | None -> v
            in
            Context.bind ctx vd.Ast.vd_name v)
          ctx c.c_vars
      in
      Context.set_globals c.c_registry (Context.fields ctx).Context.vars;
      let ctx =
        match opts.context_item with
        | Some item -> Context.with_focus ctx item ~pos:1 ~size:1
        | None -> ctx
      in
      if c.c_engine.plans then (Lazy.force c.c_plan) ctx
      else Eval.eval ctx c.c_body)

(* Plan cache around [compile]: keyed on the query text, guarded by the
   fingerprint (generation + flags) the entry was compiled under. The
   entry is inserted under the fingerprint captured when the compile
   snapshotted the registry, and only if the engine's fingerprint is
   {e still} that value at insert time — a registration racing the
   compile (same domain via a re-entrant callback, or another domain)
   bumps the generation first, the insert is skipped, and the stale
   plan is returned once but never cached. A failed compile counts as
   a miss but never as a compiled query. *)
let compile_cached t src =
  let cached =
    Mutex.protect t.cache_lock (fun () -> Hashtbl.find_opt t.cache src)
  in
  match cached with
  | Some e when t.plans && e.e_fingerprint = fingerprint t ->
    Instr.bump t.instr Instr.K.plan_cache_hit;
    e.e_compiled
  | _ when not t.plans -> compile t src
  | _ ->
    Instr.bump t.instr Instr.K.plan_cache_miss;
    let fp, c = compile_fp t src in
    Mutex.protect t.cache_lock (fun () ->
        if fp = fingerprint t then begin
          if Hashtbl.length t.cache >= cache_cap then Hashtbl.reset t.cache;
          Hashtbl.replace t.cache src { e_fingerprint = fp; e_compiled = c }
        end);
    c

let eval_string ?opts t src = run ?opts (compile_cached t src)

let eval_to_string ?opts t src =
  Xml_serialize.seq_to_string (eval_string ?opts t src)
