open Xdm

type stats = {
  folded : int;
  inlined : int;  (* trivial inlines: literals and aliases *)
  inlined_pure : int;  (* purity-gated inlines of computed lets *)
  joins : int;
  pushed : int;
  pushed_shifted : int;  (* pushdowns that needed a fresh focus binding *)
}

let zero_stats =
  {
    folded = 0;
    inlined = 0;
    inlined_pure = 0;
    joins = 0;
    pushed = 0;
    pushed_shifted = 0;
  }

let add_stats a b =
  {
    folded = a.folded + b.folded;
    inlined = a.inlined + b.inlined;
    inlined_pure = a.inlined_pure + b.inlined_pure;
    joins = a.joins + b.joins;
    pushed = a.pushed + b.pushed;
    pushed_shifted = a.pushed_shifted + b.pushed_shifted;
  }

let stats_to_string s =
  Printf.sprintf
    "folded=%d inlined=%d inlined_pure=%d joins=%d pushed=%d pushed_shifted=%d"
    s.folded s.inlined s.inlined_pure s.joins s.pushed s.pushed_shifted

(* A pass reports each rewrite through [note]: it bumps that pass's
   counter (the fixpoint driver keys off the counters) and appends a line
   to the rewrite log when one is attached. *)
type note = string Lazy.t -> unit

let brief e =
  let s = Pretty.expr e in
  if String.length s <= 60 then s else String.sub s 0 57 ^ "..."

(* ------------------------------------------------------------------ *)
(* Passes                                                               *)
(* ------------------------------------------------------------------ *)

let is_literal = function Ast.Literal _ -> true | _ -> false

let fold_constants (note : note) e =
  let open Ast in
  let try_arith op a b =
    try Some (Literal (Atomic.arith op a b)) with Atomic.Cast_error _ -> None
  in
  match e with
  | Arith (op, Literal a, Literal b) -> (
    match try_arith op a b with
    | Some e' ->
      note (lazy (Printf.sprintf "fold_constants: %s => %s" (brief e) (brief e')));
      e'
    | None -> e)
  | Neg (Literal a) -> (
    (* compute first: a non-numeric literal must keep its dynamic error *)
    match Atomic.negate a with
    | v ->
      note (lazy (Printf.sprintf "fold_constants: %s folded" (brief e)));
      Literal v
    | exception Atomic.Cast_error _ -> e)
  | Value_cmp (op, Literal a, Literal b) -> (
    (* incomparable literals (e.g. integer vs string) keep their dynamic
       type error instead of folding *)
    match Atomic.compare_values a b with
    | c ->
      note (lazy (Printf.sprintf "fold_constants: %s folded" (brief e)));
      let r =
        match op with
        | Eq -> c = 0
        | Ne -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
      in
      Literal (Atomic.Boolean r)
    | exception Atomic.Cast_error _ -> e)
  | If_expr (Literal (Atomic.Boolean true), t, _) ->
    note (lazy (Printf.sprintf "fold_constants: if true() => %s" (brief t)));
    t
  | If_expr (Literal (Atomic.Boolean false), _, f) ->
    note (lazy (Printf.sprintf "fold_constants: if false() => %s" (brief f)));
    f
  (* and/or: evaluation short-circuits on the first operand, so dropping
     the *second* operand after a literal first operand never skips an
     evaluation the unoptimized program would have performed. The kept
     operand still goes through fn:boolean — and/or return the EBV, not
     the operand value. *)
  | And (Literal (Atomic.Boolean true), b) ->
    note (lazy (Printf.sprintf "fold_constants: true() and _ => boolean(%s)" (brief b)));
    Call (Qname.fn "boolean", [ b ])
  | And (Literal (Atomic.Boolean false), _) ->
    note (lazy "fold_constants: false() and _ => false()");
    Literal (Atomic.Boolean false)
  | Or (Literal (Atomic.Boolean false), b) ->
    note (lazy (Printf.sprintf "fold_constants: false() or _ => boolean(%s)" (brief b)));
    Call (Qname.fn "boolean", [ b ])
  | Or (Literal (Atomic.Boolean true), _) ->
    note (lazy "fold_constants: true() or _ => true()");
    Literal (Atomic.Boolean true)
  | Call (q, [ arg ])
    when q.Qname.uri = Qname.fn_ns && q.Qname.local = "boolean" && is_literal arg
    -> (
    match arg with
    | Literal (Atomic.Boolean _) ->
      note (lazy "fold_constants: fn:boolean on boolean literal");
      arg
    | _ -> e)
  | e -> e

(* ---- cost model for purity-gated inlining ---- *)

(* AST node count: the duplication-cost estimate. *)
let rec size e = Ast.fold_subexprs (fun acc s -> acc + size s) 1 e

(* Refuse to inline a multi-node value into a position where it would be
   re-evaluated per tuple unless it is at most this many nodes. *)
let max_inline_size = 16

let is_total env e =
  let v = Purity.analyze env e in
  (not v.Purity.effects) && not v.Purity.fallible

(* Is the single free occurrence of [$v] in [e] the *first* thing
   evaluated when [e] is evaluated — exactly once, under the same focus,
   before any other subexpression that could raise, trace, or construct?
   Inlining a pure binding into such a position preserves the evaluation
   count, the focus, and the order in which errors surface, so even a
   fallible or node-constructing value may move there.

   For operators whose OCaml operand order is unspecified ([Arith],
   comparisons, [Range], node comparisons, set operators: eval.ml uses
   [let va = ... and vb = ...]), both operands are always evaluated
   exactly once, so the occurrence side qualifies whenever the *other*
   side is total — the reorder is then unobservable. [and]/[or]
   short-circuit left-to-right, so only the left operand is a head
   position there. *)
let rec head_position env v e =
  let open Ast in
  let other_total e = is_total env e in
  match e with
  | Var x -> Qname.equal x v
  | Arith (_, a, b)
  | Value_cmp (_, a, b)
  | General_cmp (_, a, b)
  | Range (a, b)
  | Node_is (a, b)
  | Node_before (a, b)
  | Node_after (a, b)
  | Union (a, b)
  | Intersect (a, b)
  | Except (a, b) ->
    (head_position env v a && other_total b)
    || (head_position env v b && other_total a)
  | And (a, _) | Or (a, _) -> head_position env v a
  | Seq_expr (a :: _) -> head_position env v a
  | If_expr (c, _, _) -> head_position env v c
  | Typeswitch (operand, _, _) -> head_position env v operand
  | Neg a
  | Instance_of (a, _)
  | Treat_as (a, _)
  | Castable_as (a, _, _)
  | Cast_as (a, _, _) ->
    head_position env v a
  | Path (a, _) -> head_position env v a
  | Filter (p, _) -> head_position env v p
  | Quantified (_, (_, _, src) :: _, _) -> head_position env v src
  (* like the binary operators: argument evaluation order is an
     implementation detail of eval.ml, so the first argument is a head
     position only when the other arguments are total and the reorder is
     unobservable *)
  | Call (_, a :: rest) ->
    head_position env v a && List.for_all other_total rest
  | Flwor ([], ret) -> head_position env v ret
  | Flwor (For_clause [] :: rest, ret) | Flwor (Let_clause [] :: rest, ret)
    ->
    head_position env v (Flwor (rest, ret))
  | Flwor (For_clause (b :: _) :: _, _) -> head_position env v b.for_expr
  | Flwor (Let_clause (b :: _) :: _, _) -> head_position env v b.let_expr
  | Flwor (Where_clause c :: _, _) -> head_position env v c
  | _ -> false

(* Inline let bindings. Three tiers, each preserving observable behavior:

   - trivial (literals and aliases): always inlined — re-evaluating a
     literal or variable lookup is free and cannot raise.
   - pure single-use values whose occurrence is a head position: inlined
     regardless of size or fallibility — the value is still evaluated
     exactly once, first, under the same focus.
   - pure *total* single-use values elsewhere: inlined when small enough
     (the occurrence may sit under a per-tuple loop, so this trades at
     most [max_inline_size] nodes of re-evaluation for the binding),
     non-constructing (a constructor must keep its evaluation count —
     node identity is observable), and not context-sensitive moving into
     a shifted focus.
   - pure total unused bindings are dropped outright.

   Effectful values, multi-use computed values and typed bindings (the
   declared type is checked dynamically) are always kept. The scope of a
   let binding is the remaining bindings of its clause, the remaining
   clauses and the return expression — exactly what [Binders.subst] sees
   when we hand it the tail FLWOR, so shadowing and capture are handled
   there. *)
let inline_lets ~env (note_trivial : note) (note_pure : note) e =
  let open Ast in
  match e with
  | Flwor (clauses, ret) ->
    let trivial b =
      match b.let_expr with
      | Literal _ | Var _ -> b.let_type = None
      | _ -> false
    in
    let action b scope =
      if b.let_type <> None then `Keep
      else
        let v = Purity.analyze env b.let_expr in
        if v.Purity.effects then `Keep
        else
          match Binders.count_free b.let_var scope with
          | 0 ->
            if (not v.Purity.fallible) && not v.Purity.constructs then `Drop
            else `Keep
          | 1 ->
            if head_position env b.let_var scope then `Inline
            else if
              (not v.Purity.fallible)
              && (not v.Purity.constructs)
              && size b.let_expr <= max_inline_size
              && not
                   (Binders.uses_context b.let_expr
                   && Binders.occurs_in_shifted_focus b.let_var scope)
            then `Inline
            else `Keep
          | _ -> `Keep
    in
    let rec go clauses ret =
      match clauses with
      | [] -> ([], ret)
      | Let_clause bs :: rest ->
        let rec go_bindings bs rest ret kept =
          match bs with
          | [] -> (
            let rest, ret = go rest ret in
            match List.rev kept with
            | [] -> (rest, ret)
            | ks -> (Let_clause ks :: rest, ret))
          | b :: bs when trivial b -> (
            note_trivial
              (lazy
                (Printf.sprintf "inline_lets: $%s := %s"
                   (Qname.to_string b.let_var) (brief b.let_expr)));
            match
              Binders.subst b.let_var b.let_expr
                (Flwor (Let_clause bs :: rest, ret))
            with
            | Flwor (Let_clause bs :: rest, ret) -> go_bindings bs rest ret kept
            | _ -> assert false)
          | b :: bs -> (
            match action b (Flwor (Let_clause bs :: rest, ret)) with
            | `Keep -> go_bindings bs rest ret (b :: kept)
            | `Drop ->
              note_pure
                (lazy
                  (Printf.sprintf "inline_lets: dropped unused pure $%s := %s"
                     (Qname.to_string b.let_var) (brief b.let_expr)));
              go_bindings bs rest ret kept
            | `Inline -> (
              note_pure
                (lazy
                  (Printf.sprintf "inline_lets: pure single-use $%s := %s"
                     (Qname.to_string b.let_var) (brief b.let_expr)));
              match
                Binders.subst b.let_var b.let_expr
                  (Flwor (Let_clause bs :: rest, ret))
              with
              | Flwor (Let_clause bs :: rest, ret) ->
                go_bindings bs rest ret kept
              | _ -> assert false))
        in
        go_bindings bs rest ret []
      | c :: rest ->
        let rest, ret = go rest ret in
        (c :: rest, ret)
    in
    let clauses', ret' = go clauses ret in
    if clauses' = [] then ret' else Flwor (clauses', ret')
  | e -> e

(* Split conjunctive wheres and drop trivially-true ones. *)
let normalize_wheres e =
  let open Ast in
  match e with
  | Flwor (clauses, ret) ->
    let rec split_where cond =
      match cond with
      | And (a, b) -> split_where a @ split_where b
      | c -> [ c ]
    in
    let clauses =
      List.concat_map
        (function
          | Where_clause (Literal (Atomic.Boolean true)) -> []
          | Where_clause (Call (q, []))
            when q.Qname.uri = Qname.fn_ns && q.Qname.local = "true" -> []
          | Where_clause cond ->
            List.map (fun c -> Where_clause c) (split_where cond)
          | c -> [ c ])
        clauses
    in
    Flwor (clauses, ret)
  | e -> e

(* Does [e] reference only the variable [v] (and no context / other free
   vars / positional functions)? *)
let key_over_var v e =
  (match Binders.free_vars e with
  | [ x ] -> Qname.equal x v
  | _ -> false)
  && not (Binders.uses_context e)

(* Detect equi-joins: for $a in E1 ... for $b in E2 ... where K1($a) eq
   K2($b) — rewrite the second for + where into a hash join clause.

   The rewrite moves the where's key expressions to the for's position:
   the probe key runs before the clauses that used to precede the where,
   and the build key binds the for variable at its original spot. Both
   moves are sound only if no intervening clause rebinds a key variable —
   [bound_between] tracks every binder introduced between the for and the
   where (for/let/join variables and positional variables) and the
   rewrite is refused when a key variable appears in it. *)
let detect_joins (note : note) e =
  let open Ast in
  match e with
  | Flwor (clauses, ret) ->
    (* variables bound before each position *)
    let rec scan prefix_rev bound = function
      | [] -> None
      | (For_clause [ b ] as c) :: rest when b.for_pos = None -> (
        (* look for a where equi-join on b.for_var in the remainder,
           with the other side bound earlier *)
        let rec find_where seen_rev bound_between = function
          | Where_clause cond :: rest2 -> (
            let sides =
              match cond with
              | Value_cmp (Eq, l, r) | General_cmp (Eq, l, r) -> Some (l, r)
              | _ -> None
            in
            match sides with
            | Some (l, r) ->
              let rebound x = List.exists (Qname.equal x) bound_between in
              let try_match build probe =
                key_over_var b.for_var build
                (* the where's reference must still mean the join's for
                   variable: refuse if an intervening clause rebound it *)
                && (not (rebound b.for_var))
                && (match Binders.free_vars probe with
                   | [ x ] ->
                     (not (Qname.equal x b.for_var))
                     && List.exists (Qname.equal x) bound
                     && not (rebound x)
                   | _ -> false)
                && (not (Binders.uses_context probe))
                (* the joined source must not depend on outer vars *)
                && Binders.free_vars b.for_expr = []
              in
              let result =
                if try_match l r then Some (l, r)
                else if try_match r l then Some (r, l)
                else None
              in
              (match result with
              | Some (build, probe) ->
                note
                  (lazy
                    (Printf.sprintf "detect_joins: $%s keyed on %s = %s"
                       (Qname.to_string b.for_var) (brief build) (brief probe)));
                let join =
                  Join_clause
                    {
                      join_var = b.for_var;
                      join_type = b.for_type;
                      join_source = b.for_expr;
                      join_build_key = build;
                      join_probe_key = probe;
                    }
                in
                Some
                  (List.rev prefix_rev
                  @ [ join ]
                  @ List.rev seen_rev
                  @ rest2)
              | None ->
                find_where (Where_clause cond :: seen_rev) bound_between rest2)
            | None ->
              find_where (Where_clause cond :: seen_rev) bound_between rest2)
          | (For_clause bs as c2) :: rest2 ->
            let vars =
              List.concat_map
                (fun b ->
                  b.for_var :: (match b.for_pos with Some p -> [ p ] | None -> []))
                bs
            in
            find_where (c2 :: seen_rev) (vars @ bound_between) rest2
          | (Let_clause bs as c2) :: rest2 ->
            find_where (c2 :: seen_rev)
              (List.map (fun b -> b.let_var) bs @ bound_between)
              rest2
          | (Join_clause j as c2) :: rest2 ->
            find_where (c2 :: seen_rev) (j.join_var :: bound_between) rest2
          | c2 :: rest2 -> find_where (c2 :: seen_rev) bound_between rest2
          | [] -> None
        in
        match find_where [] [] rest with
        | Some new_clauses -> Some new_clauses
        | None ->
          scan (c :: prefix_rev) (b.for_var :: bound) rest)
      | (For_clause bs as c) :: rest ->
        scan (c :: prefix_rev) (List.map (fun b -> b.for_var) bs @ bound) rest
      | (Let_clause bs as c) :: rest ->
        scan (c :: prefix_rev) (List.map (fun b -> b.let_var) bs @ bound) rest
      | (Join_clause j as c) :: rest ->
        scan (c :: prefix_rev) (j.join_var :: bound) rest
      | c :: rest -> scan (c :: prefix_rev) bound rest
    in
    (match scan [] [] clauses with
    | Some clauses' -> Flwor (clauses', ret)
    | None -> e)
  | e -> e

(* Push single-variable wheres into the binding for-expression as
   predicates. Soundness gates, each matching a once-latent divergence:

   - A [where] tests the effective boolean value of its condition, but a
     filter predicate with a *numeric* singleton value is a positional
     test. Unless the condition is provably boolean-valued, the pushed
     predicate is wrapped in fn:boolean to keep EBV semantics.
   - A condition pushed past an earlier, unpushable [where] reorders two
     filters, and both directions must be unobservable. The condition
     runs on tuples that where had filtered out, so it must be pure and
     total (it can neither raise on the extra tuples nor trace them)
     *and* boolean-valued (its EBV inside the predicate cannot raise
     either). Dually, the jumped where now runs on *fewer* tuples — the
     ones the pushed predicate rejects — so it too must be pure, total
     and boolean-valued, or a raise/trace it would have performed on
     those tuples silently disappears (e.g. `where 1 idiv $y ge 1`
     jumped by a pushable `empty($x)` would lose its FOAR0001).
   - A condition in which the for-variable occurs under a shifted focus
     (a predicate, a path tail) cannot have [Context_item] substituted
     directly — the occurrence would rebind to the inner focus. Instead
     the outer focus is captured in a fresh let binding
     ([let $v_1 := .]) and the variable is substituted with that.

   All consecutive wheres after the for are examined, so a partially
   pushable run is partially pushed — and logged per predicate, not per
   clause. Pushed predicates keep their original order, so a later
   predicate still only sees items the earlier ones accepted. *)
let pushdown_predicates ~env (note_plain : note) (note_shifted : note) e =
  let open Ast in
  match e with
  | Flwor (clauses, ret) ->
    let rec go = function
      | (For_clause [ b ] as c) :: rest when b.for_pos = None -> (
        (* can a where with this condition be evaluated on more or fewer
           tuples without anyone noticing? *)
        let reorderable w = Purity.boolean_valued w && is_total env w in
        (* [kept_jumpable]: every where kept so far is itself
           reorderable, so a later pushable condition may jump them *)
        let rec collect preds_rev kept_rev kept_jumpable = function
          | Where_clause cond :: rest2
            when key_over_var b.for_var cond
                 && (kept_rev = [] || (kept_jumpable && reorderable cond)) ->
            let shifted =
              Binders.occurs_in_shifted_focus b.for_var cond
            in
            let pred =
              if not shifted then Binders.subst b.for_var Context_item cond
              else begin
                let avoid =
                  Binders.Vset.add b.for_var (Binders.all_vars cond)
                in
                let v' = Binders.fresh ~avoid b.for_var in
                Flwor
                  ( [
                      Let_clause
                        [
                          {
                            let_var = v';
                            let_type = None;
                            let_expr = Context_item;
                          };
                        ];
                    ],
                    Binders.subst b.for_var (Var v') cond )
              end
            in
            let pred =
              if Purity.boolean_valued cond then pred
              else Call (Qname.fn "boolean", [ pred ])
            in
            (if shifted then
               note_shifted
                 (lazy
                   (Printf.sprintf
                      "pushdown_predicates: $%s where %s (shifted focus, \
                       fresh binding)"
                      (Qname.to_string b.for_var) (brief cond)))
             else
               note_plain
                 (lazy
                   (Printf.sprintf "pushdown_predicates: $%s where %s"
                      (Qname.to_string b.for_var) (brief cond))));
            collect (pred :: preds_rev) kept_rev kept_jumpable rest2
          | (Where_clause w as c2) :: rest2 ->
            collect preds_rev (c2 :: kept_rev)
              (kept_jumpable && reorderable w)
              rest2
          | rest2 -> (List.rev preds_rev, List.rev_append kept_rev rest2)
        in
        match collect [] [] true rest with
        | [], _ -> c :: go rest
        | preds, rest' ->
          let b' = { b with for_expr = Filter (b.for_expr, preds) } in
          For_clause [ b' ] :: go rest')
      | c :: rest -> c :: go rest
      | [] -> []
    in
    Flwor (go clauses, ret)
  | e -> e

(* ------------------------------------------------------------------ *)

let optimize_with_stats ?log ?(env = Purity.empty_env)
    ?(instr = Instr.disabled) e =
  let folded = ref 0
  and inlined = ref 0
  and inlined_pure = ref 0
  and joins = ref 0
  and pushed = ref 0
  and pushed_shifted = ref 0 in
  let note counter msg =
    incr counter;
    match log with None -> () | Some f -> f (Lazy.force msg)
  in
  let counts () =
    (!folded, !inlined, !inlined_pure, !joins, !pushed, !pushed_shifted)
  in
  (* one timed bottom-up sweep of the whole tree per pass, so the stats
     table attributes optimizer time per pass ([time.optimizer.<pass>.ms]
     rows) rather than folding it into the compile span *)
  let sweep timer_name passfn e =
    Instr.time instr timer_name (fun () ->
        let rec go e = passfn (Ast.map_subexprs go e) in
        go e)
  in
  let iteration = ref 0 in
  let pass e =
    e
    |> sweep Instr.K.t_optimizer_fold (fold_constants (note folded))
    |> sweep Instr.K.t_optimizer_normalize normalize_wheres
    |> sweep Instr.K.t_optimizer_inline
         (inline_lets ~env (note inlined) (note inlined_pure))
    |> sweep Instr.K.t_optimizer_join (detect_joins (note joins))
    |> sweep Instr.K.t_optimizer_push
         (pushdown_predicates ~env (note pushed) (note pushed_shifted))
  in
  let stats_now () =
    {
      folded = !folded;
      inlined = !inlined;
      inlined_pure = !inlined_pure;
      joins = !joins;
      pushed = !pushed;
      pushed_shifted = !pushed_shifted;
    }
  in
  let rec fix n e =
    if n = 0 then e
    else
      let before = counts () in
      incr iteration;
      let e' = pass e in
      if counts () = before then e'
      else begin
        (match log with
        | None -> ()
        | Some f ->
          f
            (Printf.sprintf "pass %d: %s" !iteration
               (stats_to_string (stats_now ()))));
        fix (n - 1) e'
      end
  in
  let e' = fix 4 e in
  (e', stats_now ())

let optimize ?log ?env ?instr e =
  fst (optimize_with_stats ?log ?env ?instr e)

let optimize_decl ?log ?env ?instr (d : Ast.function_decl) =
  match d.Ast.fd_body with
  | None -> d
  | Some body -> { d with Ast.fd_body = Some (optimize ?log ?env ?instr body) }
