open Xdm

type stats = { folded : int; inlined : int; joins : int; pushed : int }

let zero_stats = { folded = 0; inlined = 0; joins = 0; pushed = 0 }

let add_stats a b =
  {
    folded = a.folded + b.folded;
    inlined = a.inlined + b.inlined;
    joins = a.joins + b.joins;
    pushed = a.pushed + b.pushed;
  }

let stats_to_string s =
  Printf.sprintf "folded=%d inlined=%d joins=%d pushed=%d" s.folded s.inlined
    s.joins s.pushed

(* A pass reports each rewrite through [note]: it bumps that pass's
   counter (the fixpoint driver keys off the counters) and appends a line
   to the rewrite log when one is attached. *)
type note = string Lazy.t -> unit

let brief e =
  let s = Pretty.expr e in
  if String.length s <= 60 then s else String.sub s 0 57 ^ "..."

(* ------------------------------------------------------------------ *)
(* Passes                                                               *)
(* ------------------------------------------------------------------ *)

let is_literal = function Ast.Literal _ -> true | _ -> false

let fold_constants (note : note) e =
  let open Ast in
  let try_arith op a b =
    try Some (Literal (Atomic.arith op a b)) with Atomic.Cast_error _ -> None
  in
  match e with
  | Arith (op, Literal a, Literal b) -> (
    match try_arith op a b with
    | Some e' ->
      note (lazy (Printf.sprintf "fold_constants: %s => %s" (brief e) (brief e')));
      e'
    | None -> e)
  | Neg (Literal a) -> (
    (* compute first: a non-numeric literal must keep its dynamic error *)
    match Atomic.negate a with
    | v ->
      note (lazy (Printf.sprintf "fold_constants: %s folded" (brief e)));
      Literal v
    | exception Atomic.Cast_error _ -> e)
  | Value_cmp (op, Literal a, Literal b) -> (
    (* incomparable literals (e.g. integer vs string) keep their dynamic
       type error instead of folding *)
    match Atomic.compare_values a b with
    | c ->
      note (lazy (Printf.sprintf "fold_constants: %s folded" (brief e)));
      let r =
        match op with
        | Eq -> c = 0
        | Ne -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
      in
      Literal (Atomic.Boolean r)
    | exception Atomic.Cast_error _ -> e)
  | If_expr (Literal (Atomic.Boolean true), t, _) ->
    note (lazy (Printf.sprintf "fold_constants: if true() => %s" (brief t)));
    t
  | If_expr (Literal (Atomic.Boolean false), _, f) ->
    note (lazy (Printf.sprintf "fold_constants: if false() => %s" (brief f)));
    f
  (* and/or: evaluation short-circuits on the first operand, so dropping
     the *second* operand after a literal first operand never skips an
     evaluation the unoptimized program would have performed. The kept
     operand still goes through fn:boolean — and/or return the EBV, not
     the operand value. *)
  | And (Literal (Atomic.Boolean true), b) ->
    note (lazy (Printf.sprintf "fold_constants: true() and _ => boolean(%s)" (brief b)));
    Call (Qname.fn "boolean", [ b ])
  | And (Literal (Atomic.Boolean false), _) ->
    note (lazy "fold_constants: false() and _ => false()");
    Literal (Atomic.Boolean false)
  | Or (Literal (Atomic.Boolean false), b) ->
    note (lazy (Printf.sprintf "fold_constants: false() or _ => boolean(%s)" (brief b)));
    Call (Qname.fn "boolean", [ b ])
  | Or (Literal (Atomic.Boolean true), _) ->
    note (lazy "fold_constants: true() or _ => true()");
    Literal (Atomic.Boolean true)
  | Call (q, [ arg ])
    when q.Qname.uri = Qname.fn_ns && q.Qname.local = "boolean" && is_literal arg
    -> (
    match arg with
    | Literal (Atomic.Boolean _) ->
      note (lazy "fold_constants: fn:boolean on boolean literal");
      arg
    | _ -> e)
  | e -> e

(* Inline lets bound to literals or variable aliases. The scope of a let
   binding is the remaining bindings of its clause, the remaining clauses
   and the return expression — exactly what [Binders.subst] sees when we
   hand it the tail FLWOR, so shadowing and capture are handled there. *)
let inline_lets (note : note) e =
  let open Ast in
  match e with
  | Flwor (clauses, ret) ->
    let trivial b =
      match b.let_expr with
      | Literal _ | Var _ -> b.let_type = None
      | _ -> false
    in
    let rec go clauses ret =
      match clauses with
      | [] -> ([], ret)
      | Let_clause bs :: rest ->
        let rec go_bindings bs rest ret kept =
          match bs with
          | [] -> (
            let rest, ret = go rest ret in
            match List.rev kept with
            | [] -> (rest, ret)
            | ks -> (Let_clause ks :: rest, ret))
          | b :: bs when trivial b -> (
            note
              (lazy
                (Printf.sprintf "inline_lets: $%s := %s"
                   (Qname.to_string b.let_var) (brief b.let_expr)));
            match
              Binders.subst b.let_var b.let_expr
                (Flwor (Let_clause bs :: rest, ret))
            with
            | Flwor (Let_clause bs :: rest, ret) -> go_bindings bs rest ret kept
            | _ -> assert false)
          | b :: bs -> go_bindings bs rest ret (b :: kept)
        in
        go_bindings bs rest ret []
      | c :: rest ->
        let rest, ret = go rest ret in
        (c :: rest, ret)
    in
    let clauses', ret' = go clauses ret in
    if clauses' = [] then ret' else Flwor (clauses', ret')
  | e -> e

(* Split conjunctive wheres and drop trivially-true ones. *)
let normalize_wheres e =
  let open Ast in
  match e with
  | Flwor (clauses, ret) ->
    let rec split_where cond =
      match cond with
      | And (a, b) -> split_where a @ split_where b
      | c -> [ c ]
    in
    let clauses =
      List.concat_map
        (function
          | Where_clause (Literal (Atomic.Boolean true)) -> []
          | Where_clause (Call (q, []))
            when q.Qname.uri = Qname.fn_ns && q.Qname.local = "true" -> []
          | Where_clause cond ->
            List.map (fun c -> Where_clause c) (split_where cond)
          | c -> [ c ])
        clauses
    in
    Flwor (clauses, ret)
  | e -> e

(* Does [e] reference only the variable [v] (and no context / other free
   vars / positional functions)? *)
let key_over_var v e =
  (match Binders.free_vars e with
  | [ x ] -> Qname.equal x v
  | _ -> false)
  && not (Binders.uses_context e)

(* Detect equi-joins: for $a in E1 ... for $b in E2 ... where K1($a) eq
   K2($b) — rewrite the second for + where into a hash join clause.

   The rewrite moves the where's key expressions to the for's position:
   the probe key runs before the clauses that used to precede the where,
   and the build key binds the for variable at its original spot. Both
   moves are sound only if no intervening clause rebinds a key variable —
   [bound_between] tracks every binder introduced between the for and the
   where (for/let/join variables and positional variables) and the
   rewrite is refused when a key variable appears in it. *)
let detect_joins (note : note) e =
  let open Ast in
  match e with
  | Flwor (clauses, ret) ->
    (* variables bound before each position *)
    let rec scan prefix_rev bound = function
      | [] -> None
      | (For_clause [ b ] as c) :: rest when b.for_pos = None -> (
        (* look for a where equi-join on b.for_var in the remainder,
           with the other side bound earlier *)
        let rec find_where seen_rev bound_between = function
          | Where_clause cond :: rest2 -> (
            let sides =
              match cond with
              | Value_cmp (Eq, l, r) | General_cmp (Eq, l, r) -> Some (l, r)
              | _ -> None
            in
            match sides with
            | Some (l, r) ->
              let rebound x = List.exists (Qname.equal x) bound_between in
              let try_match build probe =
                key_over_var b.for_var build
                (* the where's reference must still mean the join's for
                   variable: refuse if an intervening clause rebound it *)
                && (not (rebound b.for_var))
                && (match Binders.free_vars probe with
                   | [ x ] ->
                     (not (Qname.equal x b.for_var))
                     && List.exists (Qname.equal x) bound
                     && not (rebound x)
                   | _ -> false)
                && (not (Binders.uses_context probe))
                (* the joined source must not depend on outer vars *)
                && Binders.free_vars b.for_expr = []
              in
              let result =
                if try_match l r then Some (l, r)
                else if try_match r l then Some (r, l)
                else None
              in
              (match result with
              | Some (build, probe) ->
                note
                  (lazy
                    (Printf.sprintf "detect_joins: $%s keyed on %s = %s"
                       (Qname.to_string b.for_var) (brief build) (brief probe)));
                let join =
                  Join_clause
                    {
                      join_var = b.for_var;
                      join_type = b.for_type;
                      join_source = b.for_expr;
                      join_build_key = build;
                      join_probe_key = probe;
                    }
                in
                Some
                  (List.rev prefix_rev
                  @ [ join ]
                  @ List.rev seen_rev
                  @ rest2)
              | None ->
                find_where (Where_clause cond :: seen_rev) bound_between rest2)
            | None ->
              find_where (Where_clause cond :: seen_rev) bound_between rest2)
          | (For_clause bs as c2) :: rest2 ->
            let vars =
              List.concat_map
                (fun b ->
                  b.for_var :: (match b.for_pos with Some p -> [ p ] | None -> []))
                bs
            in
            find_where (c2 :: seen_rev) (vars @ bound_between) rest2
          | (Let_clause bs as c2) :: rest2 ->
            find_where (c2 :: seen_rev)
              (List.map (fun b -> b.let_var) bs @ bound_between)
              rest2
          | (Join_clause j as c2) :: rest2 ->
            find_where (c2 :: seen_rev) (j.join_var :: bound_between) rest2
          | c2 :: rest2 -> find_where (c2 :: seen_rev) bound_between rest2
          | [] -> None
        in
        match find_where [] [] rest with
        | Some new_clauses -> Some new_clauses
        | None ->
          scan (c :: prefix_rev) (b.for_var :: bound) rest)
      | (For_clause bs as c) :: rest ->
        scan (c :: prefix_rev) (List.map (fun b -> b.for_var) bs @ bound) rest
      | (Let_clause bs as c) :: rest ->
        scan (c :: prefix_rev) (List.map (fun b -> b.let_var) bs @ bound) rest
      | (Join_clause j as c) :: rest ->
        scan (c :: prefix_rev) (j.join_var :: bound) rest
      | c :: rest -> scan (c :: prefix_rev) bound rest
    in
    (match scan [] [] clauses with
    | Some clauses' -> Flwor (clauses', ret)
    | None -> e)
  | e -> e

(* Push single-variable wheres into the binding for-expression as a
   predicate. Refused when the variable occurs in a focus-shifting
   position of the condition (a predicate or a path tail): substituting
   [Context_item] there would rebind it to the inner focus. *)
let pushdown_predicates (note : note) e =
  let open Ast in
  match e with
  | Flwor (clauses, ret) ->
    let rec go = function
      | (For_clause [ b ] as c) :: rest when b.for_pos = None -> (
        (* find an immediately-reachable where over only b.for_var *)
        let rec take_where seen_rev = function
          | Where_clause cond :: rest2
            when key_over_var b.for_var cond
                 && not (Binders.occurs_in_shifted_focus b.for_var cond) ->
            Some (cond, List.rev seen_rev @ rest2)
          | (Where_clause _ as w) :: rest2 -> take_where (w :: seen_rev) rest2
          | _ -> None
        in
        match take_where [] rest with
        | Some (cond, rest') ->
          note
            (lazy
              (Printf.sprintf "pushdown_predicates: $%s where %s"
                 (Qname.to_string b.for_var) (brief cond)));
          let pred = Binders.subst b.for_var Context_item cond in
          let b' = { b with for_expr = Filter (b.for_expr, [ pred ]) } in
          For_clause [ b' ] :: go rest'
        | None -> c :: go rest)
      | c :: rest -> c :: go rest
      | [] -> []
    in
    Flwor (go clauses, ret)
  | e -> e

(* ------------------------------------------------------------------ *)

let optimize_with_stats ?log e =
  let folded = ref 0
  and inlined = ref 0
  and joins = ref 0
  and pushed = ref 0 in
  let note counter msg =
    incr counter;
    match log with None -> () | Some f -> f (Lazy.force msg)
  in
  let iteration = ref 0 in
  let rec pass e =
    let e = Ast.map_subexprs pass e in
    let e = fold_constants (note folded) e in
    let e = normalize_wheres e in
    let e = inline_lets (note inlined) e in
    let e = detect_joins (note joins) e in
    let e = pushdown_predicates (note pushed) e in
    e
  in
  let rec fix n e =
    if n = 0 then e
    else
      let before = (!folded, !inlined, !joins, !pushed) in
      incr iteration;
      let e' = pass e in
      if (!folded, !inlined, !joins, !pushed) = before then e'
      else begin
        (match log with
        | None -> ()
        | Some f ->
          f
            (Printf.sprintf "pass %d: %s" !iteration
               (stats_to_string
                  {
                    folded = !folded;
                    inlined = !inlined;
                    joins = !joins;
                    pushed = !pushed;
                  })));
        fix (n - 1) e'
      end
  in
  let e' = fix 4 e in
  ( e',
    { folded = !folded; inlined = !inlined; joins = !joins; pushed = !pushed } )

let optimize ?log e = fst (optimize_with_stats ?log e)

let optimize_decl ?log (d : Ast.function_decl) =
  match d.Ast.fd_body with
  | None -> d
  | Some body -> { d with Ast.fd_body = Some (optimize ?log body) }
