(** Binder-aware AST traversals.

    This module is the single place that knows the variable-scoping rules
    of every binding construct in the AST:

    - {!Ast.Flwor}: clauses bind sequentially. A [for] binding's variable
      (and positional variable) scope over the remaining bindings of the
      same clause, the remaining clauses and the return expression; [let]
      likewise; a {!Ast.Join_clause} binds its variable over its build key
      and the remainder of the FLWOR.
    - {!Ast.Quantified}: each [in] binding scopes over the remaining
      bindings and the satisfies body.
    - {!Ast.Typeswitch}: a case (or default) variable scopes over that
      branch's return expression only.
    - {!Ast.Transform}: each [copy] binding scopes over the remaining
      copies, the modify and the return expressions.

    Every optimizer pass that needs scope information (inlining, join
    detection, predicate pushdown) is built on these traversals, so a
    scoping rule is written — and fixed — exactly once. *)

open Xdm

module Vset = Set.Make (struct
  type t = Qname.t

  let compare = Qname.compare
end)

(** [fold_scoped f bound acc e] folds [f] over every immediate
    subexpression of [e]; each call receives [bound] extended with the
    variables that [e]'s own binders place in scope at that
    subexpression. *)
let fold_scoped :
    'a. (Vset.t -> 'a -> Ast.expr -> 'a) -> Vset.t -> 'a -> Ast.expr -> 'a =
 fun f bound acc e ->
  let open Ast in
  match e with
  | Flwor (clauses, ret) ->
    let bound, acc =
      List.fold_left
        (fun (bound, acc) c ->
          match c with
          | For_clause bs ->
            List.fold_left
              (fun (bound, acc) b ->
                let acc = f bound acc b.for_expr in
                let bound = Vset.add b.for_var bound in
                let bound =
                  match b.for_pos with
                  | Some p -> Vset.add p bound
                  | None -> bound
                in
                (bound, acc))
              (bound, acc) bs
          | Let_clause bs ->
            List.fold_left
              (fun (bound, acc) b ->
                (Vset.add b.let_var bound, f bound acc b.let_expr))
              (bound, acc) bs
          | Where_clause e -> (bound, f bound acc e)
          | Order_clause (_, specs) ->
            ( bound,
              List.fold_left (fun acc sp -> f bound acc sp.key) acc specs )
          | Join_clause j ->
            let acc = f bound acc j.join_source in
            let acc = f bound acc j.join_probe_key in
            let bound = Vset.add j.join_var bound in
            let acc = f bound acc j.join_build_key in
            (bound, acc))
        (bound, acc) clauses
    in
    f bound acc ret
  | Quantified (_, bindings, body) ->
    let bound, acc =
      List.fold_left
        (fun (bound, acc) (v, _, e) -> (Vset.add v bound, f bound acc e))
        (bound, acc) bindings
    in
    f bound acc body
  | Typeswitch (operand, cases, (dvar, default)) ->
    let acc = f bound acc operand in
    let acc =
      List.fold_left
        (fun acc c ->
          let bound =
            match c.case_var with Some v -> Vset.add v bound | None -> bound
          in
          f bound acc c.case_return)
        acc cases
    in
    let bound =
      match dvar with Some v -> Vset.add v bound | None -> bound
    in
    f bound acc default
  | Transform (copies, modify, ret) ->
    let bound, acc =
      List.fold_left
        (fun (bound, acc) (v, e) -> (Vset.add v bound, f bound acc e))
        (bound, acc) copies
    in
    f bound (f bound acc modify) ret
  | e -> Ast.fold_subexprs (fun acc sub -> f bound acc sub) acc e

(** [free_var_set e] is the set of variables referenced by [e] that are
    not bound within it. *)
let free_var_set e =
  let rec go bound acc e =
    match e with
    | Ast.Var q -> if Vset.mem q bound then acc else Vset.add q acc
    | e -> fold_scoped go bound acc e
  in
  go Vset.empty Vset.empty e

(** [free_vars e] is {!free_var_set} as a sorted list. *)
let free_vars e = Vset.elements (free_var_set e)

let is_free v e = Vset.mem v (free_var_set e)

(** [count_free v e] counts the free occurrences of [$v] in [e]. Used by
    the inliner's cost model: a single-occurrence binding can be inlined
    without duplicating work. *)
let count_free v e =
  let rec go bound acc e =
    match e with
    | Ast.Var q when Qname.equal q v ->
      if Vset.mem q bound then acc else acc + 1
    | e -> fold_scoped go bound acc e
  in
  go Vset.empty 0 e

(** [all_vars e] is every variable name that occurs in [e] at all —
    referenced or bound. Used as an avoid-set when picking fresh names. *)
let all_vars e =
  let rec go bound acc e =
    let acc = Vset.union bound acc in
    match e with
    | Ast.Var q -> Vset.add q acc
    | e -> fold_scoped go Vset.empty acc e
  in
  go Vset.empty Vset.empty e

(** [fresh ~avoid q] is a variable named after [q] (same namespace) that
    does not collide with anything in [avoid]. *)
let fresh ~avoid (q : Qname.t) =
  let rec pick n =
    let cand = { q with Qname.local = Printf.sprintf "%s_%d" q.Qname.local n } in
    if Vset.mem cand avoid then pick (n + 1) else cand
  in
  pick 1

(** [uses_context e] over-approximates whether [e] depends on the dynamic
    context item / position / size at its top level (subexpressions that
    establish their own focus — predicates, path steps — are excluded). *)
let rec uses_context = function
  | Ast.Context_item | Ast.Root_expr | Ast.Step _ -> true
  | Ast.Call (q, args) ->
    (args = []
    && q.Qname.uri = Qname.fn_ns
    && List.mem q.Qname.local
         [ "position"; "last"; "string"; "data"; "number"; "name";
           "local-name"; "root"; "normalize-space" ])
    || List.exists uses_context args
  | Ast.Path (a, _) -> uses_context a
  | Ast.Filter (p, _) -> uses_context p
  | e -> Ast.fold_subexprs (fun acc sub -> acc || uses_context sub) false e

(** [occurs_in_shifted_focus v e]: does [v] occur free in a subexpression
    of [e] that is evaluated under a different focus than [e] itself — a
    predicate of a filter or step, or the right-hand side of a path?
    Substituting [Context_item] for such an occurrence would rebind it to
    the inner focus, so rewrites that move a variable into context-item
    position must refuse. *)
let rec occurs_in_shifted_focus v e =
  match e with
  | Ast.Path (a, b) -> is_free v b || occurs_in_shifted_focus v a
  | Ast.Filter (p, preds) ->
    List.exists (is_free v) preds || occurs_in_shifted_focus v p
  | Ast.Step (_, _, preds) -> List.exists (is_free v) preds
  | e ->
    fold_scoped
      (fun bound found sub ->
        found || ((not (Vset.mem v bound)) && occurs_in_shifted_focus v sub))
      Vset.empty false e

(* ------------------------------------------------------------------ *)
(* Capture-avoiding substitution                                       *)
(* ------------------------------------------------------------------ *)

(** [subst v replacement e] replaces every free occurrence of [$v] in [e]
    with [replacement]. The substitution is capture-avoiding: when a
    binder in [e] binds a variable that occurs free in [replacement] (and
    [$v] is still free below it), that binder — and its bound occurrences —
    are alpha-renamed to a fresh name first, so the replacement's free
    variables keep referring to the outer scope. *)
let rec subst v replacement e =
  let repl_fv = free_var_set replacement in
  let rec go e =
    match e with
    | Ast.Var q when Qname.equal q v -> replacement
    | Ast.Flwor (clauses, ret) ->
      let clauses, ret = go_clauses clauses ret in
      Ast.Flwor (clauses, ret)
    | Ast.Quantified (q, bindings, body) ->
      let bindings, body = go_quant q bindings body in
      Ast.Quantified (q, bindings, body)
    | Ast.Typeswitch (operand, cases, (dvar, default)) ->
      let operand = go operand in
      let cases =
        List.map
          (fun c ->
            match c.Ast.case_var with
            | None -> { c with Ast.case_return = go c.Ast.case_return }
            | Some cv -> (
              match enter cv c.Ast.case_return with
              | `Shadowed -> c
              | `Continue (cv', scope) ->
                { c with Ast.case_var = Some cv'; case_return = go scope }))
          cases
      in
      let default_branch =
        match dvar with
        | None -> (None, go default)
        | Some dv -> (
          match enter dv default with
          | `Shadowed -> (Some dv, default)
          | `Continue (dv', scope) -> (Some dv', go scope))
      in
      Ast.Typeswitch (operand, cases, default_branch)
    | Ast.Transform (copies, modify, ret) ->
      let copies, modify, ret = go_transform copies modify ret in
      Ast.Transform (copies, modify, ret)
    | e -> Ast.map_subexprs go e
  (* Process binder [x] whose scope is [scope]: stop if [x] shadows [v];
     alpha-rename [x] if it would capture a free variable of the
     replacement; otherwise continue unchanged. *)
  and enter x scope =
    if Qname.equal x v then `Shadowed
    else if Vset.mem x repl_fv && is_free v scope then begin
      let avoid =
        Vset.add v (Vset.union (all_vars scope) (Vset.union repl_fv (all_vars replacement)))
      in
      let x' = fresh ~avoid x in
      `Continue (x', subst x (Ast.Var x') scope)
    end
    else `Continue (x, scope)
  and go_clauses clauses ret =
    match clauses with
    | [] -> ([], go ret)
    | Ast.For_clause bs :: rest ->
      let bs, rest, ret = go_for bs rest ret in
      (Ast.For_clause bs :: rest, ret)
    | Ast.Let_clause bs :: rest ->
      let bs, rest, ret = go_let bs rest ret in
      (Ast.Let_clause bs :: rest, ret)
    | Ast.Where_clause e :: rest ->
      let rest, ret = go_clauses rest ret in
      (Ast.Where_clause (go e) :: rest, ret)
    | Ast.Order_clause (s, specs) :: rest ->
      let specs =
        List.map (fun sp -> { sp with Ast.key = go sp.Ast.key }) specs
      in
      let rest, ret = go_clauses rest ret in
      (Ast.Order_clause (s, specs) :: rest, ret)
    | Ast.Join_clause j :: rest ->
      let j =
        {
          j with
          Ast.join_source = go j.Ast.join_source;
          join_probe_key = go j.Ast.join_probe_key;
        }
      in
      (* join_var scopes over the build key and the remainder; carry the
         build key through the traversal as a leading where clause so an
         alpha-rename reaches it too *)
      let wrap bk rest ret = Ast.Flwor (Ast.Where_clause bk :: rest, ret) in
      let unwrap = function
        | Ast.Flwor (Ast.Where_clause bk :: rest, ret) -> (bk, rest, ret)
        | _ -> assert false
      in
      (match enter j.Ast.join_var (wrap j.Ast.join_build_key rest ret) with
      | `Shadowed -> (Ast.Join_clause j :: rest, ret)
      | `Continue (jv', scope) ->
        let bk, rest, ret = unwrap scope in
        let rest, ret = go_clauses (Ast.Where_clause bk :: rest) ret in
        let bk, rest =
          match rest with
          | Ast.Where_clause bk :: rest -> (bk, rest)
          | _ -> assert false
        in
        ( Ast.Join_clause { j with Ast.join_var = jv'; join_build_key = bk }
          :: rest,
          ret ))
  and go_for bs rest ret =
    match bs with
    | [] ->
      let rest, ret = go_clauses rest ret in
      ([], rest, ret)
    | b :: bs -> (
      let b = { b with Ast.for_expr = go b.Ast.for_expr } in
      let wrap bs rest ret = Ast.Flwor (Ast.For_clause bs :: rest, ret) in
      let unwrap = function
        | Ast.Flwor (Ast.For_clause bs :: rest, ret) -> (bs, rest, ret)
        | _ -> assert false
      in
      match enter b.Ast.for_var (wrap bs rest ret) with
      | `Shadowed -> (b :: bs, rest, ret)
      | `Continue (v', scope) -> (
        let bs, rest, ret = unwrap scope in
        let b = { b with Ast.for_var = v' } in
        match b.Ast.for_pos with
        | None ->
          let bs, rest, ret = go_for bs rest ret in
          (b :: bs, rest, ret)
        | Some p -> (
          match enter p (wrap bs rest ret) with
          | `Shadowed -> (b :: bs, rest, ret)
          | `Continue (p', scope) ->
            let bs, rest, ret = unwrap scope in
            let b = { b with Ast.for_pos = Some p' } in
            let bs, rest, ret = go_for bs rest ret in
            (b :: bs, rest, ret))))
  and go_let bs rest ret =
    match bs with
    | [] ->
      let rest, ret = go_clauses rest ret in
      ([], rest, ret)
    | b :: bs -> (
      let b = { b with Ast.let_expr = go b.Ast.let_expr } in
      match enter b.Ast.let_var (Ast.Flwor (Ast.Let_clause bs :: rest, ret)) with
      | `Shadowed -> (b :: bs, rest, ret)
      | `Continue (v', scope) ->
        let bs, rest, ret =
          match scope with
          | Ast.Flwor (Ast.Let_clause bs :: rest, ret) -> (bs, rest, ret)
          | _ -> assert false
        in
        let b = { b with Ast.let_var = v' } in
        let bs, rest, ret = go_let bs rest ret in
        (b :: bs, rest, ret))
  and go_quant q bindings body =
    match bindings with
    | [] -> ([], go body)
    | (x, t, src) :: bs -> (
      let src = go src in
      match enter x (Ast.Quantified (q, bs, body)) with
      | `Shadowed -> ((x, t, src) :: bs, body)
      | `Continue (x', scope) ->
        let bs, body =
          match scope with
          | Ast.Quantified (_, bs, body) -> (bs, body)
          | _ -> assert false
        in
        let bs, body = go_quant q bs body in
        ((x', t, src) :: bs, body))
  and go_transform copies modify ret =
    match copies with
    | [] -> ([], go modify, go ret)
    | (x, src) :: cs -> (
      let src = go src in
      match enter x (Ast.Transform (cs, modify, ret)) with
      | `Shadowed -> ((x, src) :: cs, modify, ret)
      | `Continue (x', scope) ->
        let cs, modify, ret =
          match scope with
          | Ast.Transform (cs, m, r) -> (cs, m, r)
          | _ -> assert false
        in
        let cs, modify, ret = go_transform cs modify ret in
        ((x', src) :: cs, modify, ret))
  in
  go e
