(* Tiny deterministic LCG, independent of [Stdlib.Random] state so chaos
   schedules replay regardless of what the host program does. Same
   recurrence as the fixtures generator. *)

type t = { mutable state : int }

let make seed = { state = (seed lor 1) land 0x3FFFFFFF }

let next t =
  t.state <- ((t.state * 1103515245) + 12345) land 0x3FFFFFFF;
  t.state

let int t bound = if bound <= 0 then 0 else next t mod bound
let float t bound = float_of_int (int t 1_000_000) /. 1_000_000. *. bound
let chance t percent = int t 100 < percent

(* deterministic string hash for deriving per-source streams *)
let hash_string s =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h * 131) + Char.code c) land 0x3FFFFFFF) s;
  !h
