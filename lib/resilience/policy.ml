type t = {
  timeout_ms : float option;
  max_retries : int;
  backoff_ms : float;
  backoff_factor : float;
  jitter_ms : float;
  breaker : Breaker.config option;
}

(* the default is a transparent pass-through: no timeout, no retries, no
   breaker — existing error surfaces are unchanged until a policy is
   explicitly set for a source *)
let default =
  {
    timeout_ms = None;
    max_retries = 0;
    backoff_ms = 10.;
    backoff_factor = 2.;
    jitter_ms = 0.;
    breaker = None;
  }

let make ?timeout_ms ?(max_retries = 0) ?(backoff_ms = 10.)
    ?(backoff_factor = 2.) ?(jitter_ms = 0.) ?breaker () =
  { timeout_ms; max_retries; backoff_ms; backoff_factor; jitter_ms; breaker }

let backoff t ~attempt = t.backoff_ms *. (t.backoff_factor ** float_of_int attempt)

let describe t =
  let b = Buffer.create 64 in
  (match t.timeout_ms with
   | Some ms -> Printf.bprintf b "timeout=%.0fms " ms
   | None -> Buffer.add_string b "timeout=none ");
  Printf.bprintf b "retries=%d backoff=%.0fms*%.1f jitter=%.0fms" t.max_retries
    t.backoff_ms t.backoff_factor t.jitter_ms;
  (match t.breaker with
   | Some c ->
     Printf.bprintf b " breaker=%d/%.0fms" c.Breaker.failure_threshold
       c.Breaker.cooldown_ms
   | None -> Buffer.add_string b " breaker=none");
  Buffer.contents b
