(* Closed / Open / Half-open circuit breaker on virtual time.

   Closed counts consecutive failures; at the threshold it opens and
   rejects calls until the cooldown elapses, then lets exactly one probe
   through (Half_open). A successful probe closes the circuit; a failed
   one re-opens it and restarts the cooldown. *)

type state = Closed | Open | Half_open

type config = { failure_threshold : int; cooldown_ms : float }

let default_config = { failure_threshold = 5; cooldown_ms = 1000. }

type t = {
  cfg : config;
  clock : Clock.t;
  lock : Mutex.t;
      (* transitions are read-modify-write on virtual time; concurrent
         worker domains must see them atomically (e.g. exactly one
         Half_open probe admitted after a cooldown) *)
  mutable state : state;
  mutable consecutive : int;
  mutable opened_at : float;
  mutable trips : int;
}

let create ?(config = default_config) clock =
  {
    cfg = config;
    clock;
    lock = Mutex.create ();
    state = Closed;
    consecutive = 0;
    opened_at = 0.;
    trips = 0;
  }

let state t = t.state
let trips t = t.trips

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let allow t =
  Mutex.protect t.lock @@ fun () ->
  match t.state with
  | Closed | Half_open -> true
  | Open ->
    if Clock.now t.clock >= t.opened_at +. t.cfg.cooldown_ms then begin
      t.state <- Half_open;
      true
    end
    else false

(* pure peek: what [allow] would answer, without transitioning *)
let would_allow t =
  Mutex.protect t.lock @@ fun () ->
  match t.state with
  | Closed | Half_open -> true
  | Open -> Clock.now t.clock >= t.opened_at +. t.cfg.cooldown_ms

let on_success t =
  Mutex.protect t.lock (fun () ->
      t.state <- Closed;
      t.consecutive <- 0)

let trip t =
  t.state <- Open;
  t.consecutive <- 0;
  t.opened_at <- Clock.now t.clock;
  t.trips <- t.trips + 1

let on_failure t =
  Mutex.protect t.lock @@ fun () ->
  match t.state with
  | Half_open ->
    (* failed probe: straight back to Open, cooldown restarts *)
    trip t;
    true
  | Open -> false
  | Closed ->
    t.consecutive <- t.consecutive + 1;
    if t.consecutive >= t.cfg.failure_threshold then begin
      trip t;
      true
    end
    else false

let force_open t = Mutex.protect t.lock (fun () -> trip t)
