(* Per-source fault state. One [t] lives inside each Database and
   Webservice, replacing the old ad-hoc [fault_next] / [fail_every] /
   [fail_after] / [fail_prepare] fields. It merges two fault streams:

   - ad-hoc one-shots (the legacy injection API, kept for tests and
     demos), which fire only on statement/invoke consultations; and
   - the plan schedule (call-indexed transients and latency spikes,
     virtual-time hard-down windows, XA prepare/commit rounds), which
     fires on reads as well.

   The source itself raises its native exception ([Db_error], [Fault])
   when a consultation returns a fault; [take_last] is the side channel
   the resilience guard uses to tell injected (retryable) failures from
   genuine ones. *)

type fault = { f_message : string; f_transient : bool }
type kind = Statement | Read
type verdict = { v_latency : float; v_fault : fault option }

type t = {
  source : string;
  lock : Mutex.t;
      (* one consultation (cursor advance + schedule lookup + [last]
         record) must be atomic under concurrent worker domains, or two
         calls could claim the same schedule index / lose an injected
         fault *)
  mutable clock : Clock.t;
  mutable schedule : Plan.schedule;
  mutable calls : int;        (* schedule cursor: statements + reads *)
  mutable stmts : int;        (* ad-hoc cursor: statements only *)
  mutable next : fault option;
  mutable every : int option;
  mutable after : int option;
  mutable prepare_flag : bool;
  mutable prepares : int;     (* XA prepare-round cursor *)
  mutable commits : int;      (* XA commit-round cursor *)
  mutable last : fault option;
}

let create ?clock ~source () =
  {
    source;
    lock = Mutex.create ();
    clock = (match clock with Some c -> c | None -> Clock.create ());
    schedule = Plan.empty ~source;
    calls = 0;
    stmts = 0;
    next = None;
    every = None;
    after = None;
    prepare_flag = false;
    prepares = 0;
    commits = 0;
    last = None;
  }

let source t = t.source
let clock t = t.clock
let set_clock t c = t.clock <- c
let set_schedule t s = t.schedule <- s
let schedule t = t.schedule

(* ---- legacy ad-hoc injection ---- *)

let inject_next ?(transient = true) t message =
  Mutex.protect t.lock (fun () ->
      t.next <- Some { f_message = message; f_transient = transient })

let set_fail_every t n = t.every <- n
let fail_every t = t.every
let set_fail_after t n = t.after <- n
let set_fail_on_prepare t b = t.prepare_flag <- b
let fail_on_prepare t = t.prepare_flag

(* ---- consultation ---- *)

let record t f =
  t.last <- Some f;
  Some f

let take_last t =
  Mutex.protect t.lock (fun () ->
      let f = t.last in
      t.last <- None;
      f)

let adhoc_fault t =
  match t.next with
  | Some f ->
    t.next <- None;
    record t f
  | None -> (
    match t.after with
    | Some 0 ->
      t.after <- None;
      record t { f_message = "injected statement failure"; f_transient = true }
    | Some n ->
      t.after <- Some (n - 1);
      None
    | None -> (
      match t.every with
      | Some n when n > 0 && t.stmts mod n = 0 ->
        record t
          { f_message = Printf.sprintf "injected failure (every %d)" n;
            f_transient = true }
      | _ -> None))

let scheduled_fault t =
  if List.mem t.calls t.schedule.Plan.s_transients then
    record t
      { f_message = Printf.sprintf "scheduled transient (call %d)" t.calls;
        f_transient = true }
  else
    let now = Clock.now t.clock in
    match
      List.find_opt
        (fun w -> now >= w.Plan.w_from && now < w.Plan.w_until)
        t.schedule.Plan.s_windows
    with
    | Some w ->
      record t
        { f_message =
            Printf.sprintf "source down (window %.0f..%.0fms)" w.Plan.w_from
              w.Plan.w_until;
          f_transient = true }
    | None -> None

let on_call t kind =
  Mutex.protect t.lock @@ fun () ->
  t.calls <- t.calls + 1;
  let latency =
    match List.assoc_opt t.calls t.schedule.Plan.s_spikes with
    | Some ms -> ms
    | None -> 0.
  in
  Clock.advance t.clock latency;
  let fault =
    match kind with
    | Statement ->
      t.stmts <- t.stmts + 1;
      (match adhoc_fault t with
       | Some f -> Some f
       | None -> scheduled_fault t)
    | Read -> scheduled_fault t
  in
  { v_latency = latency; v_fault = fault }

(* prepare/commit faults are consumed by the XA coordinator directly and
   never by the retry guard, so they deliberately do not go through
   [record] — a stale [last] would misclassify a later genuine error *)
let on_prepare t =
  Mutex.protect t.lock @@ fun () ->
  t.prepares <- t.prepares + 1;
  if t.prepare_flag then
    Some { f_message = "injected prepare failure"; f_transient = true }
  else if List.mem t.prepares t.schedule.Plan.s_prepares then
    Some
      { f_message = Printf.sprintf "scheduled prepare fault (round %d)" t.prepares;
        f_transient = true }
  else None

let on_commit t =
  Mutex.protect t.lock @@ fun () ->
  t.commits <- t.commits + 1;
  if List.mem t.commits t.schedule.Plan.s_commits then
    Some
      { f_message = Printf.sprintf "scheduled commit fault (round %d)" t.commits;
        f_transient = true }
  else None

let calls t = t.calls
