(** End-to-end request deadlines.

    A deadline is a millisecond budget anchored when a request is
    admitted. Elapsed time against it is {e virtual} time passed on the
    control's clock (injected latency, retry backoff) {e plus} wall time
    spent in real work — the two are disjoint (virtual advances are
    instantaneous in wall time), so their sum is the delay the client
    experienced, and tests can drive expiry deterministically through
    the virtual clock alone.

    The deadline of the request in flight is {e ambient}: the server
    pool installs it with {!with_deadline} around the whole request on
    the worker domain, and the layers below ({!Control.guard}, session
    execution, submit admission) read it back with {!current} — no
    signature in between carries it. *)

type t

val start : ?clock:Clock.t -> budget_ms:float -> unit -> t
(** Anchor a fresh deadline now. [clock] is the virtual clock whose
    advances count against the budget (omit it and only wall time
    counts). *)

val budget_ms : t -> float
val elapsed_ms : t -> float
val remaining_ms : t -> float
(** Clamped at [0.] once expired — callers subtract it from timeouts and
    a negative cap would mean "no timeout" to some of them. *)

val expired : t -> bool

(** {1 The ambient deadline (per worker domain)} *)

val with_deadline : t -> (unit -> 'a) -> 'a
(** Run [f] with [t] as the domain's ambient deadline; the previous
    ambient deadline (if any) is restored on exit, raise included. *)

val current : unit -> t option
val remaining : unit -> float option

val exempt : (unit -> 'a) -> 'a
(** Run [f] with {e no} ambient deadline — for sections that must run
    to completion once entered (XA prepare/commit: never kill a write
    mid-commit). Restores the deadline afterwards. *)
