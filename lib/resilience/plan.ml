(* Deterministic fault-injection plans.

   A plan is (seed, profile). From it, [schedule_for] derives a
   per-source schedule as a pure function of [seed lxor hash source]:
   the same plan always injects the same faults into the same sources at
   the same call indexes and virtual times, no matter how many sources
   exist or in what order they are attached. *)

type profile = Calm | Light | Heavy

type window = { w_from : float; w_until : float }

type schedule = {
  s_source : string;
  s_transients : int list;       (* 1-based call indexes that fault *)
  s_spikes : (int * float) list; (* call index -> extra latency (ms) *)
  s_windows : window list;       (* hard-down intervals in virtual time *)
  s_prepares : int list;         (* 1-based prepare rounds that fault *)
  s_commits : int list;          (* 1-based commit rounds that fault *)
}

type t = { seed : int; profile : profile }

let make ?(seed = 1) ?(profile = Light) () = { seed; profile }
let seed t = t.seed
let profile t = t.profile

let profile_of_string = function
  | "calm" -> Some Calm
  | "light" -> Some Light
  | "heavy" -> Some Heavy
  | _ -> None

let profile_to_string = function
  | Calm -> "calm"
  | Light -> "light"
  | Heavy -> "heavy"

let empty ~source =
  {
    s_source = source;
    s_transients = [];
    s_spikes = [];
    s_windows = [];
    s_prepares = [];
    s_commits = [];
  }

(* How far ahead a schedule extends. Chaos runs are short; anything past
   the horizon simply behaves like a healthy source. *)
let horizon_calls = 240
let horizon_rounds = 60

type knobs = {
  k_transient_pct : int;
  k_spike_pct : int;
  k_spike_min : float;
  k_spike_max : float;
  k_windows : int;          (* max number of hard-down windows *)
  k_window_pct : int;       (* chance each candidate window exists *)
  k_window_span : float;    (* windows start within [0, span) virtual ms *)
  k_window_min : float;
  k_window_max : float;
  k_prepare_pct : int;
  k_commit_pct : int;
}

let knobs = function
  | Calm ->
    {
      k_transient_pct = 1;
      k_spike_pct = 2;
      k_spike_min = 5.;
      k_spike_max = 25.;
      k_windows = 0;
      k_window_pct = 0;
      k_window_span = 0.;
      k_window_min = 0.;
      k_window_max = 0.;
      k_prepare_pct = 1;
      k_commit_pct = 1;
    }
  | Light ->
    {
      k_transient_pct = 6;
      k_spike_pct = 6;
      k_spike_min = 5.;
      k_spike_max = 60.;
      k_windows = 1;
      k_window_pct = 50;
      k_window_span = 3000.;
      k_window_min = 150.;
      k_window_max = 600.;
      k_prepare_pct = 6;
      k_commit_pct = 4;
    }
  | Heavy ->
    {
      k_transient_pct = 15;
      k_spike_pct = 12;
      k_spike_min = 10.;
      k_spike_max = 200.;
      k_windows = 2;
      k_window_pct = 60;
      k_window_span = 6000.;
      k_window_min = 200.;
      k_window_max = 900.;
      k_prepare_pct = 15;
      k_commit_pct = 8;
    }

let schedule_for t ~source =
  let k = knobs t.profile in
  let r = Rng.make (t.seed lxor Rng.hash_string source) in
  let transients = ref [] and spikes = ref [] in
  for call = 1 to horizon_calls do
    if Rng.chance r k.k_transient_pct then transients := call :: !transients
    else if Rng.chance r k.k_spike_pct then
      spikes :=
        (call, k.k_spike_min +. Rng.float r (k.k_spike_max -. k.k_spike_min))
        :: !spikes
  done;
  let windows = ref [] in
  for _ = 1 to k.k_windows do
    if Rng.chance r k.k_window_pct then begin
      let from = Rng.float r k.k_window_span in
      let dur = k.k_window_min +. Rng.float r (k.k_window_max -. k.k_window_min) in
      windows := { w_from = from; w_until = from +. dur } :: !windows
    end
  done;
  let prepares = ref [] and commits = ref [] in
  for round = 1 to horizon_rounds do
    if Rng.chance r k.k_prepare_pct then prepares := round :: !prepares;
    (* never schedule an unbounded run of commit faults: a prepared
       participant must eventually commit, so cap consecutive commit
       faults by skipping a round that would make three in a row *)
    if Rng.chance r k.k_commit_pct then
      match !commits with
      | a :: b :: _ when a = round - 1 && b = round - 2 -> ()
      | _ -> commits := round :: !commits
  done;
  {
    s_source = source;
    s_transients = List.rev !transients;
    s_spikes = List.rev !spikes;
    s_windows = List.rev !windows;
    s_prepares = List.rev !prepares;
    s_commits = List.rev !commits;
  }

let describe_schedule s =
  Printf.sprintf
    "%s: %d transients, %d spikes, %d windows, %d prepare faults, %d commit faults"
    s.s_source
    (List.length s.s_transients)
    (List.length s.s_spikes)
    (List.length s.s_windows)
    (List.length s.s_prepares)
    (List.length s.s_commits)

let describe t ~sources =
  Printf.sprintf "plan seed=%d profile=%s\n%s" t.seed
    (profile_to_string t.profile)
    (String.concat "\n"
       (List.map
          (fun src -> "  " ^ describe_schedule (schedule_for t ~source:src))
          sources))
