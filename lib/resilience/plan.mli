(** Deterministic fault-injection plans: a (seed, profile) pair from
    which every source's fault schedule is derived as a pure function of
    the seed and the source name. Replaying the same plan over the same
    sources injects exactly the same faults. *)

type profile =
  | Calm   (** rare transients, no hard-down windows *)
  | Light  (** occasional transients/spikes, maybe one down window *)
  | Heavy  (** frequent transients, long spikes, multiple down windows *)

type window = { w_from : float; w_until : float }
(** A hard-down interval in virtual milliseconds: every call landing
    inside it faults. *)

type schedule = {
  s_source : string;
  s_transients : int list;       (** 1-based call indexes that fault *)
  s_spikes : (int * float) list; (** call index -> extra latency (ms) *)
  s_windows : window list;
  s_prepares : int list;         (** 1-based XA prepare rounds that fault *)
  s_commits : int list;          (** 1-based XA commit rounds that fault;
                                     never more than two consecutive, so
                                     a prepared participant always
                                     eventually commits *)
}

type t

val make : ?seed:int -> ?profile:profile -> unit -> t
(** Defaults: [seed 1], [profile Light]. *)

val seed : t -> int
val profile : t -> profile
val profile_of_string : string -> profile option
val profile_to_string : profile -> string

val empty : source:string -> schedule
(** A schedule that never faults. *)

val schedule_for : t -> source:string -> schedule
(** The deterministic schedule this plan assigns to [source]. *)

val describe_schedule : schedule -> string
val describe : t -> sources:string list -> string
