(** The per-dataspace resilience control: one virtual clock, one seeded
    jitter RNG, an optional fault plan, and per-source policies,
    breakers, fault handles and degradable annotations.

    {!guard} is the single enforcement point the dataspace wraps around
    every source call. *)

type code =
  | Timeout            (** [RESX0001] — call exceeded the policy deadline *)
  | Circuit_open       (** [RESX0002] — breaker rejected the call *)
  | Retries_exhausted  (** [RESX0003] — transient failures outlived the
                           retry budget *)
  | Deadline_exceeded  (** [RESX0005] — the end-to-end request budget
                           ({!Deadline}) ran out *)
  | Overloaded         (** [RESX0006] — shed at admission by the server
                           pool's load-shedding policy *)

val code_name : code -> string
(** The stable error code, e.g. ["RESX0002"] — surfaced to XQSE
    try/catch as [err:RESX0002]. *)

exception Error of { source : string; code : code; message : string }

type degradation = {
  dg_source : string;
  dg_code : string;     (** stable code, e.g. "RESX0002" *)
  dg_message : string;
  dg_at : float;        (** virtual ms when the read degraded *)
}

type t

val create : ?seed:int -> ?plan:Plan.t -> ?instr:Instr.t -> unit -> t
(** [seed] feeds the jitter RNG (defaults to the plan's seed, or 1). *)

val clock : t -> Clock.t
val plan : t -> Plan.t option
val set_plan : t -> Plan.t option -> unit
(** Also re-derives the schedule of every attached source. *)

val set_instr : t -> Instr.t -> unit

val attach : t -> Faults.t -> unit
(** Put a source's fault handle under this control: share the virtual
    clock and assign the plan's schedule for that source. *)

val attached : t -> string list

val set_policy : t -> source:string -> Policy.t -> unit
(** Also (re)creates the source's breaker when the policy has one. *)

val policy : t -> source:string -> Policy.t
val breaker : t -> source:string -> Breaker.t option
val breaker_state : t -> source:string -> Breaker.state option

val trip : t -> source:string -> unit
(** Force a source's breaker open (tests/demos). Raises
    [Invalid_argument] if the source has no breaker. *)

val set_degradable : t -> source:string -> unit
val is_degradable : t -> source:string -> bool

val note_degraded : t -> source:string -> code:string -> message:string -> unit
val degradations : t -> degradation list
(** Oldest first. *)

val clear_degradations : t -> unit

val set_brownout : t -> bool -> unit
(** Assert or clear overload brownout. While set, the dataspace degrades
    {e degradable} reads proactively (the source is not called at all;
    warm cache hits still serve, short-circuiting before the boundary).
    Transitions bump [overload.brownout.entered] / [.exited];
    re-asserting the current state is a no-op. *)

val in_brownout : t -> bool

val guard : t -> source:string -> (unit -> 'a) -> 'a
(** Run a source call under the source's policy: breaker admission,
    bounded retry with exponential backoff + seeded jitter for
    {e injected transient} failures, per-attempt virtual-time deadline.
    Raises {!Error} for timeout / open-circuit / retries-exhausted;
    genuine (non-injected) failures pass through untouched and do not
    feed the breaker. Under the default policy this is a transparent
    pass-through.

    The ambient {!Deadline} additionally caps every guarded call: an
    already-expired request fails fast with [Deadline_exceeded]
    ({e before} breaker admission, so it cannot consume a half-open
    probe), a blown budget after any attempt — success included — is
    [Deadline_exceeded], and retries stop the moment the budget dies.
    The effective per-attempt bound is therefore
    [min(policy timeout, remaining budget)], with the error naming
    whichever bound was actually hit. Deadline expiry never feeds the
    breaker: it is client impatience, not a source-health signal. *)

val check_strict : t -> source:string -> unit
(** Strict admission for SDO submit: raises {!Error} with
    [Circuit_open] when the source's breaker would reject a call —
    without consuming the half-open probe. *)
