(** Per-source resilience policy enforced by {!Control.guard} at the
    dataspace's source-call boundary. *)

type t = {
  timeout_ms : float option;
      (** per-attempt deadline in virtual ms; a call whose charged
          latency exceeds it fails with [RESX0001] (no retry — the
          work may have happened, only the client gave up) *)
  max_retries : int;
      (** how many times an injected transient failure is retried *)
  backoff_ms : float;       (** base backoff before the first retry *)
  backoff_factor : float;   (** exponential multiplier per retry *)
  jitter_ms : float;        (** seeded-random extra wait in [0, jitter) *)
  breaker : Breaker.config option;
}

val default : t
(** Transparent pass-through: no timeout, zero retries, no breaker.
    Sources without an explicit policy behave exactly as before. *)

val make :
  ?timeout_ms:float ->
  ?max_retries:int ->
  ?backoff_ms:float ->
  ?backoff_factor:float ->
  ?jitter_ms:float ->
  ?breaker:Breaker.config ->
  unit ->
  t

val backoff : t -> attempt:int -> float
(** [backoff_ms *. backoff_factor ** attempt] (attempt is 0-based). *)

val describe : t -> string
