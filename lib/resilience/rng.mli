(** Seeded linear-congruential RNG used for fault schedules and retry
    jitter. Deliberately independent of [Stdlib.Random]: resilience
    randomness must replay from the seed alone. *)

type t

val make : int -> t
val next : t -> int
val int : t -> int -> int
(** [int t bound] is uniform-ish in [\[0, bound)]; [0] when [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is in [\[0, bound)]. *)

val chance : t -> int -> bool
(** [chance t p] is true with probability [p]%. *)

val hash_string : string -> int
(** Deterministic hash, for deriving a per-source seed from the plan
    seed and the source name. *)
