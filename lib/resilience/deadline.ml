(* End-to-end request deadlines. A deadline is a budget in milliseconds
   anchored at admission: elapsed time against it is the sum of the
   *virtual* time that passed on the control's clock (fault-plan latency
   spikes, retry backoff — advanced instantaneously in wall time) and
   the *wall* time spent doing real work (which never moves the virtual
   clock). The two are disjoint by construction, so the sum models the
   total delay a client would have experienced, and deterministic tests
   can drive expiry purely through the virtual clock with margins far
   above wall-clock noise.

   The current deadline is ambient, carried in domain-local storage: the
   pool installs it around a request and every layer below — session
   execution, Control.guard at the source boundary, SDO submit admission
   — consults it without any plumbing through intermediate signatures.
   DLS is the right scope because a request runs on exactly one worker
   domain from admission to completion. *)

type t = {
  clock : Clock.t option;
  v0 : float;  (* virtual ms at start *)
  w0 : float;  (* wall ms at start *)
  budget_ms : float;
}

let wall_ms () = Unix.gettimeofday () *. 1000.

let start ?clock ~budget_ms () =
  {
    clock;
    v0 = (match clock with Some c -> Clock.now c | None -> 0.);
    w0 = wall_ms ();
    budget_ms;
  }

let budget_ms t = t.budget_ms

let elapsed_ms t =
  let virtual_ =
    match t.clock with Some c -> Clock.now c -. t.v0 | None -> 0.
  in
  let wall = wall_ms () -. t.w0 in
  virtual_ +. Float.max 0. wall

let remaining_ms t = Float.max 0. (t.budget_ms -. elapsed_ms t)
let expired t = remaining_ms t <= 0.

(* ---- the ambient deadline ---- *)

let key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get key
let remaining () = Option.map remaining_ms (current ())

let with_deadline d f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key (Some d);
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

(* A commit point must never be killed by client impatience: once a
   submit has entered XA prepare, the write either lands everywhere or
   rolls back everywhere, and aborting it half-way would manufacture
   exactly the partial commit the protocol exists to prevent. [exempt]
   clears the ambient deadline for the duration of [f]. *)
let exempt f =
  match Domain.DLS.get key with
  | None -> f ()
  | Some _ as prev ->
    Domain.DLS.set key None;
    Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f
