(** Per-source fault state: the single injection point each Database and
    Webservice consults, merging the legacy ad-hoc one-shots with the
    plan's deterministic schedule.

    The source raises its own native exception when a consultation
    returns a fault; the resilience guard then uses {!take_last} to tell
    injected (retryable) failures from genuine ones. *)

type fault = { f_message : string; f_transient : bool }

type kind =
  | Statement  (** a DML/DDL statement or a web-service invoke *)
  | Read       (** a query-path read (table scan, index lookup) *)

type verdict = {
  v_latency : float;   (** injected latency spike, already charged to the clock *)
  v_fault : fault option;
}

type t

val create : ?clock:Clock.t -> source:string -> unit -> t
val source : t -> string
val clock : t -> Clock.t
val set_clock : t -> Clock.t -> unit
val set_schedule : t -> Plan.schedule -> unit
val schedule : t -> Plan.schedule

(** {1 Legacy ad-hoc injection}

    These fire only on [Statement] consultations, preserving the
    semantics of the old [fault_next]/[fail_every]/[fail_after] fields. *)

val inject_next : ?transient:bool -> t -> string -> unit
(** Fault the next statement with this message (default transient). *)

val set_fail_every : t -> int option -> unit
(** [Some n]: every [n]-th statement faults. *)

val fail_every : t -> int option

val set_fail_after : t -> int option -> unit
(** [Some n]: the statement after the next [n] faults (once). *)

val set_fail_on_prepare : t -> bool -> unit
(** Sticky: while set, every XA prepare consultation faults. *)

val fail_on_prepare : t -> bool

(** {1 Consultation} *)

val on_call : t -> kind -> verdict
(** Advance the call cursor, charge any scheduled latency spike to the
    clock, and decide whether this call faults (ad-hoc stream first,
    then scheduled transients / hard-down windows). *)

val on_prepare : t -> fault option
(** Consult the XA prepare round: sticky flag, then the schedule. *)

val on_commit : t -> fault option
(** Consult the XA commit round against the schedule. The plan never
    schedules more than two consecutive commit faults, so bounded
    commit retries always terminate. *)

val take_last : t -> fault option
(** The most recent fault handed out, clearing it — the guard's side
    channel for classifying a failure as injected. *)

val calls : t -> int
