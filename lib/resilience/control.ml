(* The per-dataspace resilience control: one virtual clock, one jitter
   RNG, the optional fault plan, and per-source policies, breakers,
   fault handles and degradable annotations. [guard] is the single
   enforcement point wrapped around every source call. *)

type code =
  | Timeout
  | Circuit_open
  | Retries_exhausted
  | Deadline_exceeded
  | Overloaded

let code_name = function
  | Timeout -> "RESX0001"
  | Circuit_open -> "RESX0002"
  | Retries_exhausted -> "RESX0003"
  | Deadline_exceeded -> "RESX0005"
  | Overloaded -> "RESX0006"

exception Error of { source : string; code : code; message : string }

let () =
  Printexc.register_printer (function
    | Error { source; code; message } ->
      Some
        (Printf.sprintf "Resilience.Control.Error(%s, %s: %s)"
           (code_name code) source message)
    | _ -> None)

type degradation = {
  dg_source : string;
  dg_code : string;
  dg_message : string;
  dg_at : float;
}

type t = {
  clock : Clock.t;
  lock : Mutex.t;
      (* guards the tables, the degradation log and the jitter RNG —
         everything here but the clock (atomic), the breakers and the
         fault handles (own locks) *)
  jitter_rng : Rng.t;
  mutable plan : Plan.t option;
  mutable instr : Instr.t;
  policies : (string, Policy.t) Hashtbl.t;
  breakers : (string, Breaker.t) Hashtbl.t;
  faults : (string, Faults.t) Hashtbl.t;
  degradable : (string, unit) Hashtbl.t;
  mutable degradations : degradation list;  (* newest first *)
  brownout : bool Atomic.t;
      (* overload pressure: while set, degradable reads degrade
         *proactively* (dataspace skips the source call entirely) *)
}

let create ?seed ?plan ?(instr = Instr.disabled) () =
  let seed =
    match (seed, plan) with
    | Some s, _ -> s
    | None, Some p -> Plan.seed p
    | None, None -> 1
  in
  {
    clock = Clock.create ();
    lock = Mutex.create ();
    jitter_rng = Rng.make (seed lxor 0x5EED);
    plan;
    instr;
    policies = Hashtbl.create 8;
    breakers = Hashtbl.create 8;
    faults = Hashtbl.create 8;
    degradable = Hashtbl.create 4;
    degradations = [];
    brownout = Atomic.make false;
  }

let clock t = t.clock
let plan t = t.plan
let set_instr t instr = t.instr <- instr

let reschedule t faults =
  let source = Faults.source faults in
  Faults.set_schedule faults
    (match t.plan with
     | Some p -> Plan.schedule_for p ~source
     | None -> Plan.empty ~source)

let attach t faults =
  Faults.set_clock faults t.clock;
  reschedule t faults;
  Mutex.protect t.lock (fun () ->
      Hashtbl.replace t.faults (Faults.source faults) faults)

let attached t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun k _ acc -> k :: acc) t.faults [])

let set_plan t plan =
  t.plan <- plan;
  Hashtbl.iter (fun _ f -> reschedule t f) t.faults

let set_policy t ~source policy =
  Mutex.protect t.lock (fun () ->
      Hashtbl.replace t.policies source policy;
      match policy.Policy.breaker with
      | Some config ->
        Hashtbl.replace t.breakers source (Breaker.create ~config t.clock)
      | None -> Hashtbl.remove t.breakers source)

let policy t ~source =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.policies source with
      | Some p -> p
      | None -> Policy.default)

let breaker t ~source =
  Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.breakers source)
let breaker_state t ~source = Option.map Breaker.state (breaker t ~source)

let trip t ~source =
  match breaker t ~source with
  | Some b -> Breaker.force_open b
  | None ->
    invalid_arg
      (Printf.sprintf "Control.trip: source %s has no breaker configured"
         source)

(* ---- degradation ---- *)

let set_degradable t ~source =
  Mutex.protect t.lock (fun () -> Hashtbl.replace t.degradable source ())

let is_degradable t ~source =
  Mutex.protect t.lock (fun () -> Hashtbl.mem t.degradable source)

let note_degraded t ~source ~code ~message =
  Instr.bump t.instr Instr.K.resil_degraded;
  Mutex.protect t.lock (fun () ->
      t.degradations <-
        { dg_source = source; dg_code = code; dg_message = message;
          dg_at = Clock.now t.clock }
        :: t.degradations)

let degradations t = Mutex.protect t.lock (fun () -> List.rev t.degradations)

let clear_degradations t =
  Mutex.protect t.lock (fun () -> t.degradations <- [])

(* ---- brownout ---- *)

(* Transition counters are bumped here — whoever flips the flag (the
   pool's pressure signal, a test, a console demo), entry/exit stays
   observable in one place. Idempotent: re-asserting the current state
   neither bumps nor transitions. *)
let set_brownout t on =
  let was = Atomic.exchange t.brownout on in
  if was <> on then
    Instr.bump t.instr
      (if on then Instr.K.overload_brownout_entered
       else Instr.K.overload_brownout_exited)

let in_brownout t = Atomic.get t.brownout

(* ---- the guard ---- *)

let breaker_failure t = function
  | Some b -> if Breaker.on_failure b then Instr.bump t.instr Instr.K.resil_trips
  | None -> ()

let reject t ~source =
  Instr.bump t.instr Instr.K.resil_rejected;
  raise
    (Error
       { source; code = Circuit_open;
         message = "circuit breaker open, call rejected" })

let check_strict t ~source =
  match breaker t ~source with
  | Some b when not (Breaker.would_allow b) -> reject t ~source
  | _ -> ()

(* The ambient request deadline caps every guarded call: an expired
   request fails fast (before the breaker would even admit it, so a shed
   request cannot consume a half-open probe), and after any attempt —
   success included — a blown budget is a failure: the client already
   gave up. Deadline expiry is client impatience, not a source-health
   signal, so it never feeds the breaker. *)
let fail_deadline t ~source d =
  Instr.bump t.instr Instr.K.overload_expired;
  raise
    (Error
       { source; code = Deadline_exceeded;
         message =
           Printf.sprintf "request budget of %.0fms exhausted (%.0fms elapsed)"
             (Deadline.budget_ms d) (Deadline.elapsed_ms d) })

let guard t ~source f =
  let policy = policy t ~source in
  let deadline = Deadline.current () in
  let check_deadline () =
    match deadline with
    | Some d when Deadline.expired d -> fail_deadline t ~source d
    | _ -> ()
  in
  check_deadline ();
  let br = breaker t ~source in
  (match br with
   | Some b when not (Breaker.allow b) -> reject t ~source
   | _ -> ());
  let fl = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.faults source) in
  (* effective per-attempt timeout: min(policy timeout, remaining
     budget) — whichever bound the attempt actually blew names the error
     (RESX0001 for the policy, RESX0005 for the request budget) *)
  let timed_out t0 =
    match policy.Policy.timeout_ms with
    | Some tmo -> Clock.now t.clock -. t0 > tmo
    | None -> false
  in
  let fail_timeout t0 =
    breaker_failure t br;
    Instr.bump t.instr Instr.K.resil_timeouts;
    raise
      (Error
         { source; code = Timeout;
           message =
             Printf.sprintf "call took %.0fms of a %.0fms budget"
               (Clock.now t.clock -. t0)
               (Option.value policy.Policy.timeout_ms ~default:0.) })
  in
  let rec attempt n =
    let t0 = Clock.now t.clock in
    match f () with
    | v ->
      (* a timed-out success is a failure: the client already gave up.
         It is never retried — the work may have happened. *)
      if timed_out t0 then fail_timeout t0
      else begin
        (match br with Some b -> Breaker.on_success b | None -> ());
        check_deadline ();
        v
      end
    | exception e ->
      let injected =
        match fl with Some fl -> Faults.take_last fl | None -> None
      in
      if timed_out t0 then fail_timeout t0
      else begin
        match injected with
        | Some { Faults.f_transient = true; f_message } ->
          if n < policy.Policy.max_retries then begin
            (* no retry on a dead budget: the backoff plus another
               attempt can only waste a worker the client abandoned *)
            check_deadline ();
            Instr.bump t.instr Instr.K.resil_retries;
            let wait =
              Policy.backoff policy ~attempt:n
              +.
              if policy.Policy.jitter_ms > 0. then
                Mutex.protect t.lock (fun () ->
                    Rng.float t.jitter_rng policy.Policy.jitter_ms)
              else 0.
            in
            Clock.advance t.clock wait;
            (* the backoff itself may have spent what was left *)
            check_deadline ();
            attempt (n + 1)
          end
          else begin
            breaker_failure t br;
            if policy.Policy.max_retries > 0 then
              raise
                (Error
                   { source; code = Retries_exhausted;
                     message =
                       Printf.sprintf "%d attempts failed, last: %s" (n + 1)
                         f_message })
            else
              (* pass-through policy: the source's native exception
                 keeps its original surface *)
              raise e
          end
        | Some { Faults.f_transient = false; _ } ->
          breaker_failure t br;
          raise e
        | None ->
          (* genuine (non-injected) failure: application-level, not a
             source-health signal — never retried, never fed to the
             breaker *)
          raise e
      end
  in
  if Instr.enabled t.instr then
    Instr.span t.instr ~attrs:[ ("source", source) ] "resil.guard" (fun () ->
        attempt 0)
  else attempt 0
