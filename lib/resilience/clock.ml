(* Virtual time. Every component of the resilience layer — fault
   schedules, latency spikes, backoff waits, breaker cooldowns — reads
   and advances this clock instead of the wall clock, so a chaos run is
   a pure function of its seed and replays exactly. The cell is atomic:
   under the concurrent server the clock is shared by components guarded
   by *different* mutexes (fault plans, breaker controls), so advances
   must be lock-free-safe rather than rely on any one caller's lock. *)

type t = float Atomic.t

let create ?(start = 0.) () = Atomic.make start
let now t = Atomic.get t

let rec advance t ms =
  if ms > 0. then begin
    let cur = Atomic.get t in
    if not (Atomic.compare_and_set t cur (cur +. ms)) then advance t ms
  end
