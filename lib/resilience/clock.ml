(* Virtual time. Every component of the resilience layer — fault
   schedules, latency spikes, backoff waits, breaker cooldowns — reads
   and advances this clock instead of the wall clock, so a chaos run is
   a pure function of its seed and replays exactly. *)

type t = { mutable now : float }

let create ?(start = 0.) () = { now = start }
let now t = t.now
let advance t ms = if ms > 0. then t.now <- t.now +. ms
