(** Virtual clock (milliseconds). The resilience layer never reads wall
    time: injected latency, retry backoff and breaker cooldowns all
    advance and consult this clock, making every chaos run replayable
    from its seed. *)

type t

val create : ?start:float -> unit -> t
(** A clock at [start] (default [0.]) virtual milliseconds. *)

val now : t -> float

val advance : t -> float -> unit
(** Move time forward by the given milliseconds; negative or zero
    amounts are ignored (time never goes backwards). *)
