(** Per-source circuit breaker (closed / open / half-open) on virtual
    time. *)

type state = Closed | Open | Half_open

type config = {
  failure_threshold : int;  (** consecutive failures before opening *)
  cooldown_ms : float;      (** virtual ms Open before a probe is allowed *)
}

val default_config : config
(** 5 consecutive failures, 1000ms cooldown. *)

type t

val create : ?config:config -> Clock.t -> t
val state : t -> state
val state_to_string : state -> string

val allow : t -> bool
(** Whether a call may proceed. In [Open], flips to [Half_open] and
    allows one probe once the cooldown has elapsed. *)

val would_allow : t -> bool
(** What {!allow} would answer, without transitioning state — used for
    strict checks (SDO submit) that must not consume the half-open
    probe. *)

val on_success : t -> unit
(** Close the circuit and reset the failure count. *)

val on_failure : t -> bool
(** Record a failure; [true] iff this one tripped the breaker open
    (threshold reached, or a failed half-open probe). *)

val trips : t -> int
(** How many times the breaker has opened. *)

val force_open : t -> unit
(** Trip immediately (tests and demos). *)
