(** Chaos harness over the CustomerProfile dataspace: seeded fault
    schedules driven through repeated read/submit rounds, with the
    cross-database atomicity invariant checked after every submit.
    Reports are pure functions of (seed, profile, rounds) — running the
    same seed twice yields structurally equal reports. *)

type report = {
  r_seed : int;
  r_profile : Resilience.Plan.profile;
  r_rounds : int;
  r_committed : int;
  r_failed : int;
  r_read_failures : int;
  r_degraded : int;
  r_retries : int;
  r_trips : int;
  r_rejected : int;
  r_injected : int;
  r_violations : string list;  (** atomicity violations — must be [] *)
}

val run :
  ?rounds:int -> ?profile:Resilience.Plan.profile -> seed:int -> unit -> report
(** Build a fresh CustomerProfile environment under a fault plan
    [(seed, profile)] with retry policies on all three sources, a
    breaker on the credit-rating service (marked degradable), and run
    [rounds] (default 8) read+cross-database-submit rounds under the
    [profile] (default [Heavy]). *)

val describe : report -> string
(** One summary line, e.g. for the chaos_check tool output. *)
