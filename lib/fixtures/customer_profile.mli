(** The Figure 1-4 scenario: a CustomerProfile logical entity data
    service over two relational databases (CUSTOMER+ORDERS in [db1],
    CREDIT_CARD in [db2]) and a credit-rating web service, with the
    primary read method of Figure 3. *)

type env = {
  ds : Aldsp.Dataspace.t;
  svc : Aldsp.Data_service.t;  (** the CustomerProfile logical service *)
  db1 : Relational.Database.t;
  db2 : Relational.Database.t;
  ws : Webservice.t;
  customer : Relational.Table.t;
  orders : Relational.Table.t;
  credit_card : Relational.Table.t;
}

val make :
  ?customers:int ->
  ?max_orders:int ->
  ?max_cards:int ->
  ?seed:int ->
  ?optimize:bool ->
  ?instr:Instr.t ->
  ?resilience:Resilience.Control.t ->
  unit ->
  env
(** Build the dataspace with deterministic synthetic data. Customer ids
    are ["C1"…"Cn"] (and customer ["007" James Carrey] is always
    present as the Figure 4 protagonist); order counts follow a skewed
    (Zipf-ish) distribution up to [max_orders] (default 3).
    [resilience] is handed to {!Aldsp.Dataspace.create}, putting all
    three sources under its clock, plan and policies. *)

val profile_source : string
(** The XQuery source of the service's read methods — the Figure 3
    text. *)

val profile_ns : string
(** Namespace of the CustomerProfile methods. *)

val get_profile_by_id : env -> string -> Sdo.t
(** Convenience: run [getProfileById] and wrap the result. *)
