(* Chaos harness: fan a seeded fault schedule over the CustomerProfile
   dataspace and drive repeated read/submit rounds against it, checking
   the atomicity invariant — no schedule may ever yield a partially
   committed change across db1 and db2. Everything runs on the virtual
   clock, so a report is a pure function of (seed, profile, rounds).

   Shared by the resilience test suite and tools/chaos_check. *)

module R = Relational
module Ctl = Resilience.Control

type report = {
  r_seed : int;
  r_profile : Resilience.Plan.profile;
  r_rounds : int;
  r_committed : int;       (* submits that committed *)
  r_failed : int;          (* submits that aborted or raised *)
  r_read_failures : int;   (* profile reads that raised *)
  r_degraded : int;        (* resil.degraded *)
  r_retries : int;         (* resil.retries *)
  r_trips : int;           (* resil.breaker.trips *)
  r_rejected : int;        (* resil.breaker.rejected *)
  r_injected : int;        (* resil.faults.injected *)
  r_violations : string list;  (* atomicity violations — must be [] *)
}

let value_at tbl pk col =
  match R.Table.find_pk tbl pk with
  | Some row -> R.Table.get row tbl col
  | None -> R.Value.Null

(* the two cells the storm keeps rewriting, one per database *)
let lastname env =
  value_at env.Customer_profile.customer [ R.Value.Text "007" ] "LAST_NAME"

let brand env =
  value_at env.Customer_profile.credit_card [ R.Value.Int 900001 ] "CC_BRAND"

let policies ctl =
  List.iter
    (fun source ->
      Ctl.set_policy ctl ~source
        (Resilience.Policy.make ~max_retries:2 ~backoff_ms:5. ~jitter_ms:2. ()))
    [ "db1"; "db2" ];
  Ctl.set_policy ctl ~source:"CreditRatingService"
    (Resilience.Policy.make ~max_retries:2 ~backoff_ms:5. ~jitter_ms:2.
       ~breaker:
         { Resilience.Breaker.failure_threshold = 4; cooldown_ms = 400. }
       ());
  Ctl.set_degradable ctl ~source:"CreditRatingService"

let run ?(rounds = 8) ?(profile = Resilience.Plan.Heavy) ~seed () =
  let instr = Instr.create () in
  Instr.enable instr;
  Instr.preregister instr;
  let plan = Resilience.Plan.make ~seed ~profile () in
  let ctl = Ctl.create ~plan ~instr () in
  policies ctl;
  let env = Customer_profile.make ~customers:2 ~seed ~instr ~resilience:ctl () in
  let committed = ref 0 and failed = ref 0 and read_failures = ref 0 in
  let violations = ref [] in
  let violation r fmt =
    Printf.ksprintf
      (fun msg ->
        violations :=
          Printf.sprintf "seed %d round %d: %s" seed r msg :: !violations)
      fmt
  in
  for r = 1 to rounds do
    let ln0 = lastname env and br0 = brand env in
    let ln1 = R.Value.Text (Printf.sprintf "Name%d" r)
    and br1 = R.Value.Text (Printf.sprintf "BRAND%d" r) in
    (* a fresh read each round, under the same chaos (may degrade or
       fail; a failed read skips the round's submit) *)
    match Customer_profile.get_profile_by_id env "007" with
    | exception _ ->
      incr read_failures;
      (* reads must never move source data *)
      if lastname env <> ln0 || brand env <> br0 then
        violation r "a failed read changed source data"
    | dg -> (
      Sdo.set_leaf dg 1 [ ("LAST_NAME", 1) ]
        (match ln1 with R.Value.Text s -> s | _ -> assert false);
      Sdo.set_leaf dg 1
        [ ("CreditCards", 1); ("CREDIT_CARD", 1); ("BRAND", 1) ]
        (match br1 with R.Value.Text s -> s | _ -> assert false);
      let outcome =
        match
          Aldsp.Dataspace.submit env.Customer_profile.ds
            env.Customer_profile.svc dg
        with
        | res -> res.Aldsp.Dataspace.sr_committed
        | exception _ -> false
      in
      let ln' = lastname env and br' = brand env in
      if outcome then begin
        incr committed;
        if ln' <> ln1 || br' <> br1 then
          violation r "committed submit did not apply both changes"
      end
      else begin
        incr failed;
        if ln' <> ln0 || br' <> br0 then
          violation r
            "failed submit left a partial change (db1=%s db2=%s)"
            (R.Value.to_string ln') (R.Value.to_string br')
      end)
  done;
  let stats = Instr.stats instr in
  let c name =
    match List.assoc_opt name stats.Instr.counters with
    | Some v -> v
    | None -> 0
  in
  {
    r_seed = seed;
    r_profile = profile;
    r_rounds = rounds;
    r_committed = !committed;
    r_failed = !failed;
    r_read_failures = !read_failures;
    r_degraded = c Instr.K.resil_degraded;
    r_retries = c Instr.K.resil_retries;
    r_trips = c Instr.K.resil_trips;
    r_rejected = c Instr.K.resil_rejected;
    r_injected = c Instr.K.resil_injected;
    r_violations = List.rev !violations;
  }

let describe r =
  Printf.sprintf
    "seed %d %s: %d rounds, %d committed, %d failed, %d read failures, \
     %d degraded, %d retries, %d trips, %d rejected, %d injected, %d violations"
    r.r_seed
    (Resilience.Plan.profile_to_string r.r_profile)
    r.r_rounds r.r_committed r.r_failed r.r_read_failures r.r_degraded
    r.r_retries r.r_trips r.r_rejected r.r_injected
    (List.length r.r_violations)
