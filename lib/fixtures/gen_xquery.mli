(** Deterministic generator of well-formed, integer-valued XQuery
    FLWOR/let/quantified/typeswitch programs, skewed toward the rewrite
    optimizer's attack surface (alias/literal lets, single-use computed
    lets in head position for the purity-gated inliner, shadowing from a
    tiny variable pool, typeswitch case binders, single-variable wheres
    — including shifted-focus ones the pushdown must rebind through a
    fresh [let] — transform (copy/modify/return) expressions whose node
    construction the purity analysis must fence off, and join-shaped
    [for/for/where $a eq $b] programs that the [detect_joins] pass
    rewrites). Used by the differential test suite: optimized and
    unoptimized evaluation of every generated program must agree
    item-for-item. *)

val expr : Det.t -> string
(** One generated program, driven entirely by the given deterministic
    stream. *)

val corpus : ?seed:int -> int -> string list
(** [corpus ~seed n]: [n] programs; the same [seed] always yields the
    same corpus. *)
