(** Deterministic generator of well-formed, integer-valued XQuery
    FLWOR/let/quantified programs, skewed toward the rewrite optimizer's
    attack surface (alias/literal lets, shadowing from a tiny variable
    pool, equi-join and single-variable wheres). Used by the
    differential test suite: optimized and unoptimized evaluation of
    every generated program must agree item-for-item. *)

val expr : Det.t -> string
(** One generated program, driven entirely by the given deterministic
    stream. *)

val corpus : ?seed:int -> int -> string list
(** [corpus ~seed n]: [n] programs; the same [seed] always yields the
    same corpus. *)
