module R = Relational

type env = {
  ds : Aldsp.Dataspace.t;
  hr : R.Database.t;
  backup : R.Database.t;
  employee : R.Table.t;
  emp2 : R.Table.t;
  svc : Aldsp.Data_service.t;
}

let employees_ns = "urn:employees"
let usecases_ns = "urn:usecases"

let col name col_type nullable = { R.Table.col_name = name; col_type; nullable }

let employee_schema =
  {
    R.Table.tbl_name = "EMPLOYEE";
    columns =
      [
        col "EMP_ID" R.Value.T_int false;
        col "NAME" R.Value.T_text false;
        col "DEPT_NO" R.Value.T_int true;
        col "MGR_ID" R.Value.T_int true;
        col "SALARY" R.Value.T_float true;
      ];
    primary_key = [ "EMP_ID" ];
    foreign_keys = [];
  }

let emp2_schema =
  {
    R.Table.tbl_name = "EMP2";
    columns =
      [
        col "EMP_ID" R.Value.T_int false;
        col "FIRST_NAME" R.Value.T_text true;
        col "LAST_NAME" R.Value.T_text true;
        col "MGR_NAME" R.Value.T_text true;
        col "DEPT" R.Value.T_int true;
      ];
    primary_key = [ "EMP_ID" ];
    foreign_keys = [];
  }

let service_source =
  {|
declare namespace ens1 = "urn:employees";
declare namespace emp = "ld:hr/EMPLOYEE";

declare function ens1:getAll() as element(ens1:Employee)* {
  for $E in emp:EMPLOYEE()
  return <ens1:Employee>
    <EmployeeID>{fn:data($E/EMP_ID)}</EmployeeID>
    <Name>{fn:data($E/NAME)}</Name>
    <DeptNo>{fn:data($E/DEPT_NO)}</DeptNo>
    <ManagerID>{fn:data($E/MGR_ID)}</ManagerID>
    <Salary>{fn:data($E/SALARY)}</Salary>
  </ens1:Employee>
};

declare function ens1:getByEmployeeID($id as xs:anyAtomicType?) as element(ens1:Employee)* {
  for $e in ens1:getAll()
  where $e/EmployeeID = $id
  return $e
};
|}

let uc1_delete_source =
  {|
declare namespace emp = "ld:hr/EMPLOYEE";
declare namespace uc = "urn:usecases";

(: use case 1: augment the generated methods with a delete that takes
   just the employee id :)
declare procedure uc:deleteByEmployeeID($id as xs:integer) {
  declare $victim := (for $e in emp:EMPLOYEE() where $e/EMP_ID = $id return $e);
  if (fn:empty($victim)) then
    fn:error(xs:QName("NO_SUCH_EMPLOYEE"),
             fn:concat("no employee with id ", $id));
  emp:deleteEMPLOYEE($victim);
};
|}

let uc2_chain_source =
  {|
declare namespace ens1 = "urn:employees";
declare namespace uc = "urn:usecases";

(: use case 2: imperative computation of the management chain; readonly,
   so callable as a data service function from XQuery as well :)
declare xqse function uc:getManagementChain($id as xs:integer)
    as element(ens1:Employee)* {
  declare $chain as element(ens1:Employee)*;
  declare $current := ens1:getByEmployeeID($id);
  while (fn:exists($current)) {
    set $chain := ($chain, $current);
    if (fn:string($current/ManagerID) eq '') then set $current := ()
    else set $current := ens1:getByEmployeeID(xs:integer($current/ManagerID));
  }
  return value $chain;
};
|}

let uc3_etl_source =
  {|
declare namespace ens1 = "urn:employees";
declare namespace emp2 = "ld:backup/EMP2";
declare namespace uc = "urn:usecases";

(: data transformation function :)
declare function uc:transformToEMP2($emp as element(ens1:Employee)?)
    as element(EMP2)? {
  for $emp1 in $emp return <EMP2>
    <EMP_ID>{fn:data($emp1/EmployeeID)}</EMP_ID>
    <FIRST_NAME>{fn:tokenize(fn:data($emp1/Name), ' ')[1]}</FIRST_NAME>
    <LAST_NAME>{fn:tokenize(fn:data($emp1/Name), ' ')[2]}</LAST_NAME>
    <MGR_NAME>{fn:data(ens1:getByEmployeeID($emp1/ManagerID)/Name)}</MGR_NAME>
    <DEPT>{fn:data($emp1/DeptNo)}</DEPT>
  </EMP2>
};

(: etl lite procedure :)
declare procedure uc:copyAllToEMP2() as xs:integer {
  declare $backupCnt as xs:integer := 0;
  declare $emp2 as element(EMP2)?;
  iterate $emp1 over ens1:getAll() {
    set $emp2 := uc:transformToEMP2($emp1);
    emp2:createEMP2($emp2);
    set $backupCnt := $backupCnt + 1;
  }
  return value ($backupCnt);
};
|}

let uc4_replicate_source =
  {|
declare namespace ens1 = "urn:employees";
declare namespace emp = "ld:hr/EMPLOYEE";
declare namespace emp2 = "ld:backup/EMP2";
declare namespace uc = "urn:usecases";

declare function uc:toEMPLOYEE($e as element(ens1:Employee)) as element(EMPLOYEE) {
  <EMPLOYEE>
    <EMP_ID>{fn:data($e/EmployeeID)}</EMP_ID>
    <NAME>{fn:data($e/Name)}</NAME>
    <DEPT_NO>{fn:data($e/DeptNo)}</DEPT_NO>
    {for $m in $e/ManagerID[. != ''] return <MGR_ID>{fn:data($m)}</MGR_ID>}
    <SALARY>{fn:data($e/Salary)}</SALARY>
  </EMPLOYEE>
};

(: replicating create method: create the objects in both sources,
   wrapping each source's failures in a distinguishable error :)
declare procedure uc:create($newEmps as element(ens1:Employee)*)
    as element(uc:ReplicatedEmployee_KEY)* {
  declare $keys as element(uc:ReplicatedEmployee_KEY)*;
  iterate $newEmp over $newEmps {
    declare $newEmp2 as element(EMP2)? := uc:transformToEMP2($newEmp);
    try { emp:createEMPLOYEE(uc:toEMPLOYEE($newEmp)); }
    catch (* into $err, $msg) {
      fn:error(xs:QName("PRIMARY_CREATE_FAILURE"),
        fn:concat("Primary create failed due to: ", $err, " ", $msg));
    };
    try { emp2:createEMP2($newEmp2); }
    catch (* into $err, $msg) {
      fn:error(xs:QName("SECONDARY_CREATE_FAILURE"),
        fn:concat("Backup create failed due to: ", $err, " ", $msg));
    };
    set $keys := ($keys,
      <uc:ReplicatedEmployee_KEY>{fn:data($newEmp/EmployeeID)}</uc:ReplicatedEmployee_KEY>);
  }
  return value $keys;
};
|}

let make ?(employees = 12) ?(fanout = 4) ?(seed = 7) ?instr ?resilience () =
  let rng = Det.make seed in
  let hr = R.Database.create "hr" in
  let employee = R.Database.add_table hr employee_schema in
  let backup = R.Database.create "backup" in
  let emp2 = R.Database.add_table backup emp2_schema in
  let reports = Array.make (employees + 1) 0 in
  for i = 1 to employees do
    let mgr =
      if i = 1 then R.Value.Null
      else begin
        (* a uniformly chosen earlier employee with spare fanout
           (fanout 1 therefore yields a single deep chain) *)
        let eligible =
          List.filter
            (fun c -> reports.(c) < fanout)
            (List.init (i - 1) (fun k -> k + 1))
        in
        let m =
          match eligible with
          | [] -> 1 + Det.int rng (i - 1)
          | cs -> Det.pick rng cs
        in
        reports.(m) <- reports.(m) + 1;
        R.Value.Int m
      end
    in
    R.Table.insert employee
      [|
        R.Value.Int i;
        Text (Det.name rng);
        Int (10 * (1 + Det.int rng 4));
        mgr;
        Float (40000. +. Det.float rng 80000.);
      |]
  done;
  let ds = Aldsp.Dataspace.create ?instr ?resilience () in
  ignore (Aldsp.Dataspace.register_database ds hr);
  ignore (Aldsp.Dataspace.register_database ds backup);
  let sess = Aldsp.Dataspace.session ds in
  Xqse.Session.declare_namespace sess "ens1" employees_ns;
  Xqse.Session.declare_namespace sess "uc" usecases_ns;
  let svc =
    Aldsp.Dataspace.create_entity_service ds ~name:"Employee"
      ~namespace:employees_ns
      ~shape:
        {
          Xdm.Schema.name = Xdm.Qname.make ~uri:employees_ns "Employee";
          type_def =
            Xdm.Schema.complex
              [
                Xdm.Schema.particle (Xdm.Qname.local "EmployeeID")
                  (Xdm.Schema.simple (Xdm.Qname.xs "integer"));
                Xdm.Schema.particle (Xdm.Qname.local "Name")
                  (Xdm.Schema.simple (Xdm.Qname.xs "string"));
                Xdm.Schema.particle ~min:0 (Xdm.Qname.local "DeptNo")
                  (Xdm.Schema.simple (Xdm.Qname.xs "integer"));
                Xdm.Schema.particle ~min:0 (Xdm.Qname.local "ManagerID")
                  (Xdm.Schema.simple (Xdm.Qname.xs "string"));
                Xdm.Schema.particle ~min:0 (Xdm.Qname.local "Salary")
                  (Xdm.Schema.simple (Xdm.Qname.xs "double"));
              ];
        }
      ~methods:
        [
          ("getAll", Aldsp.Data_service.Read_function);
          ("getByEmployeeID", Aldsp.Data_service.Read_function);
        ]
      ~dependencies:[ "hr/EMPLOYEE" ] service_source
  in
  { ds; hr; backup; employee; emp2; svc }

let load_all_use_cases env =
  let sess = Aldsp.Dataspace.session env.ds in
  Xqse.Session.load_library sess uc1_delete_source;
  Xqse.Session.load_library sess uc2_chain_source;
  Xqse.Session.load_library sess uc3_etl_source;
  Xqse.Session.load_library sess uc4_replicate_source
