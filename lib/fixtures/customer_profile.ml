module R = Relational
open Xdm

type env = {
  ds : Aldsp.Dataspace.t;
  svc : Aldsp.Data_service.t;
  db1 : R.Database.t;
  db2 : R.Database.t;
  ws : Webservice.t;
  customer : R.Table.t;
  orders : R.Table.t;
  credit_card : R.Table.t;
}

let profile_ns = "ld:CustomerProfile"

let col name col_type nullable = { R.Table.col_name = name; col_type; nullable }

let customer_schema =
  {
    R.Table.tbl_name = "CUSTOMER";
    columns =
      [
        col "CID" R.Value.T_text false;
        col "FIRST_NAME" R.Value.T_text false;
        col "LAST_NAME" R.Value.T_text false;
        col "SSN" R.Value.T_text true;
      ];
    primary_key = [ "CID" ];
    foreign_keys = [];
  }

let orders_schema =
  {
    R.Table.tbl_name = "ORDERS";
    columns =
      [
        col "OID" R.Value.T_int false;
        col "CID" R.Value.T_text false;
        col "ORDER_DATE" R.Value.T_date true;
        col "TOTAL_ORDER_AMOUNT" R.Value.T_float true;
        col "STATUS" R.Value.T_text true;
      ];
    primary_key = [ "OID" ];
    foreign_keys =
      [
        {
          R.Table.fk_columns = [ "CID" ];
          fk_ref_table = "CUSTOMER";
          fk_ref_columns = [ "CID" ];
        };
      ];
  }

let credit_card_schema =
  {
    R.Table.tbl_name = "CREDIT_CARD";
    columns =
      [
        col "CCID" R.Value.T_int false;
        col "CID" R.Value.T_text false;
        col "CC_TYPE" R.Value.T_text true;
        col "CC_BRAND" R.Value.T_text true;
        col "CC_NUMBER" R.Value.T_text true;
        col "EXP_DATE" R.Value.T_date true;
      ];
    primary_key = [ "CCID" ];
    foreign_keys = [];
  }

let profile_source =
  {|
declare namespace ns1 = "ld:CustomerProfile";
declare namespace cus = "ld:db1/CUSTOMER";
declare namespace cre = "ld:db2/CREDIT_CARD";
declare namespace crs = "urn:creditrating";

declare function ns1:getProfile() as element(ns1:CustomerProfile)* {
  for $CUSTOMER in cus:CUSTOMER()
  return <ns1:CustomerProfile>
    <CID>{fn:data($CUSTOMER/CID)}</CID>
    <LAST_NAME>{fn:data($CUSTOMER/LAST_NAME)}</LAST_NAME>
    <FIRST_NAME>{fn:data($CUSTOMER/FIRST_NAME)}</FIRST_NAME>
    <Orders>{
      for $ORDER in cus:getORDERS($CUSTOMER)
      return <ORDERS>
        <OID>{fn:data($ORDER/OID)}</OID>
        <CID>{fn:data($ORDER/CID)}</CID>
        <ORDER_DATE>{fn:data($ORDER/ORDER_DATE)}</ORDER_DATE>
        <TOTAL>{fn:data($ORDER/TOTAL_ORDER_AMOUNT)}</TOTAL>
        <STATUS>{fn:data($ORDER/STATUS)}</STATUS>
      </ORDERS>
    }</Orders>
    <CreditCards>{
      for $CREDIT_CARD in cre:CREDIT_CARD()
      where $CUSTOMER/CID eq $CREDIT_CARD/CID
      return <CREDIT_CARD>
        <CCID>{fn:data($CREDIT_CARD/CCID)}</CCID>
        <CID>{fn:data($CREDIT_CARD/CID)}</CID>
        <TYPE>{fn:data($CREDIT_CARD/CC_TYPE)}</TYPE>
        <BRAND>{fn:data($CREDIT_CARD/CC_BRAND)}</BRAND>
        <NUMBER>{fn:data($CREDIT_CARD/CC_NUMBER)}</NUMBER>
        <EXP_DATE>{fn:data($CREDIT_CARD/EXP_DATE)}</EXP_DATE>
      </CREDIT_CARD>
    }</CreditCards>
    {
      for $resp in crs:getCreditRating(<crs:getCreditRating>
          <crs:lastName>{fn:data($CUSTOMER/LAST_NAME)}</crs:lastName>
          <crs:ssn>{fn:data($CUSTOMER/SSN)}</crs:ssn>
        </crs:getCreditRating>)
      return <CreditRating>{fn:data($resp/crs:value)}</CreditRating>
    }
  </ns1:CustomerProfile>
};

declare function ns1:getProfileById($cid as xs:string) as element(ns1:CustomerProfile)* {
  for $CustomerProfile in ns1:getProfile()
  where $cid eq $CustomerProfile/CID
  return $CustomerProfile
};
|}

let crs = Qname.make ~prefix:"crs" ~uri:"urn:creditrating"

let credit_rating_service () =
  let ws =
    Webservice.create ~name:"CreditRatingService" ~namespace:"urn:creditrating"
  in
  Webservice.add_operation ws
    {
      Webservice.op_name = "getCreditRating";
      op_input = crs "getCreditRating";
      op_output = crs "getCreditRatingResponse";
      op_doc = "credit rating lookup by last name and SSN";
      op_handler =
        (fun req ->
          (* deterministic rating derived from the request content *)
          let s = Node.string_value req in
          let h = String.fold_left (fun acc c -> ((acc * 31) + Char.code c) land 0xFFFF) 7 s in
          let rating = 500 + (h mod 350) in
          Node.element
            (crs "getCreditRatingResponse")
            [ Node.element (crs "value") [ Node.text (string_of_int rating) ] ]);
    };
  ws

let make ?(customers = 3) ?(max_orders = 3) ?(max_cards = 2) ?(seed = 42)
    ?(optimize = true) ?(instr = Instr.disabled) ?resilience () =
  let rng = Det.make seed in
  let db1 = R.Database.create "db1" in
  let customer = R.Database.add_table db1 customer_schema in
  let orders = R.Database.add_table db1 orders_schema in
  let db2 = R.Database.create "db2" in
  let credit_card = R.Database.add_table db2 credit_card_schema in
  (* the Figure 4 protagonist *)
  R.Table.insert customer
    [| R.Value.Text "007"; Text "James"; Text "Carrey"; Text "111-22-3333" |];
  R.Table.insert orders
    [| R.Value.Int 900001; Text "007"; Date "2007-11-01"; Float 42.5; Text "OPEN" |];
  R.Table.insert credit_card
    [| R.Value.Int 900001; Text "007"; Text "CREDIT"; Text "VISA";
       Text "4111-1111"; Date "2009-01-01" |];
  let oid = ref 0 and ccid = ref 0 in
  for i = 1 to customers do
    let cid = Printf.sprintf "C%d" i in
    let full = Det.name rng in
    let first, last =
      match String.index_opt full ' ' with
      | Some j ->
        (String.sub full 0 j, String.sub full (j + 1) (String.length full - j - 1))
      | None -> (full, "Doe")
    in
    R.Table.insert customer
      [| R.Value.Text cid; Text first; Text last;
         Text (Printf.sprintf "%03d-%02d-%04d" (Det.int rng 1000) (Det.int rng 100) (Det.int rng 10000)) |];
    let n_orders = Det.zipf_bucket rng ~max:max_orders in
    for _ = 1 to n_orders do
      incr oid;
      R.Table.insert orders
        [| R.Value.Int !oid; Text cid;
           Date (Printf.sprintf "2007-%02d-%02d" (1 + Det.int rng 12) (1 + Det.int rng 28));
           Float (Det.float rng 500.);
           Text (Det.pick rng [ "OPEN"; "SHIPPED"; "CLOSED" ]) |]
    done;
    let n_cards = Det.int rng (max_cards + 1) in
    for _ = 1 to n_cards do
      incr ccid;
      R.Table.insert credit_card
        [| R.Value.Int !ccid; Text cid;
           Text (Det.pick rng [ "CREDIT"; "DEBIT" ]);
           Text (Det.pick rng [ "VISA"; "MASTERCARD"; "AMEX" ]);
           Text (Printf.sprintf "4%03d-%04d" (Det.int rng 1000) (Det.int rng 10000));
           Date (Printf.sprintf "20%02d-%02d-01" (8 + Det.int rng 5) (1 + Det.int rng 12)) |]
    done
  done;
  let ws = credit_rating_service () in
  let ds = Aldsp.Dataspace.create ~optimize ~instr ?resilience () in
  ignore (Aldsp.Dataspace.register_database ds db1);
  ignore (Aldsp.Dataspace.register_database ds db2);
  ignore (Aldsp.Dataspace.register_web_service ds ws);
  Xqse.Session.declare_namespace (Aldsp.Dataspace.session ds) "crs"
    "urn:creditrating";
  Xqse.Session.declare_namespace (Aldsp.Dataspace.session ds) "profile"
    profile_ns;
  let svc =
    Aldsp.Dataspace.create_entity_service ds ~name:"CustomerProfile"
      ~namespace:profile_ns
      ~shape:
        {
          Schema.name = Qname.make ~uri:profile_ns "CustomerProfile";
          type_def =
            Schema.complex
              [
                Schema.particle (Qname.local "CID") (Schema.simple (Qname.xs "string"));
                Schema.particle (Qname.local "LAST_NAME") (Schema.simple (Qname.xs "string"));
                Schema.particle (Qname.local "FIRST_NAME") (Schema.simple (Qname.xs "string"));
                Schema.particle (Qname.local "Orders")
                  (Schema.complex
                     [
                       Schema.particle ~min:0 ~max:None (Qname.local "ORDERS")
                         (Schema.complex
                            [
                              Schema.particle (Qname.local "OID") (Schema.simple (Qname.xs "integer"));
                              Schema.particle (Qname.local "CID") (Schema.simple (Qname.xs "string"));
                              Schema.particle ~min:0 (Qname.local "ORDER_DATE") (Schema.simple (Qname.xs "date"));
                              Schema.particle ~min:0 (Qname.local "TOTAL") (Schema.simple (Qname.xs "double"));
                              Schema.particle ~min:0 (Qname.local "STATUS") (Schema.simple (Qname.xs "string"));
                            ]);
                     ]);
                Schema.particle (Qname.local "CreditCards")
                  (Schema.complex
                     [
                       Schema.particle ~min:0 ~max:None (Qname.local "CREDIT_CARD")
                         (Schema.complex
                            [
                              Schema.particle (Qname.local "CCID") (Schema.simple (Qname.xs "integer"));
                              Schema.particle (Qname.local "CID") (Schema.simple (Qname.xs "string"));
                              Schema.particle ~min:0 (Qname.local "TYPE") (Schema.simple (Qname.xs "string"));
                              Schema.particle ~min:0 (Qname.local "BRAND") (Schema.simple (Qname.xs "string"));
                              Schema.particle ~min:0 (Qname.local "NUMBER") (Schema.simple (Qname.xs "string"));
                              Schema.particle ~min:0 (Qname.local "EXP_DATE") (Schema.simple (Qname.xs "date"));
                            ]);
                     ]);
                Schema.particle ~min:0 (Qname.local "CreditRating")
                  (Schema.simple (Qname.xs "integer"));
              ];
        }
      ~methods:
        [
          ("getProfile", Aldsp.Data_service.Read_function);
          ("getProfileById", Aldsp.Data_service.Read_function);
        ]
      ~dependencies:
        [ "db1/CUSTOMER"; "db1/ORDERS"; "db2/CREDIT_CARD"; "CreditRatingService" ]
      profile_source
  in
  { ds; svc; db1; db2; ws; customer; orders; credit_card }

let get_profile_by_id env cid =
  Aldsp.Dataspace.get env.ds env.svc ~meth:"getProfileById"
    [ [ Item.Atomic (Atomic.String cid) ] ]
