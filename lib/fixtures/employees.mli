(** The employees scenario behind the paper's four XQSE use cases
    (section III.D): an HR database with an EMPLOYEE table organized in
    a management hierarchy, a second "backup" database with the
    differently-shaped EMP2 table, and the Employee logical data
    service with [getAll] / [getByEmployeeID] read methods. *)

type env = {
  ds : Aldsp.Dataspace.t;
  hr : Relational.Database.t;
  backup : Relational.Database.t;
  employee : Relational.Table.t;  (** EMPLOYEE in [hr] *)
  emp2 : Relational.Table.t;  (** EMP2 in [backup] *)
  svc : Aldsp.Data_service.t;  (** the Employee logical service *)
}

val employees_ns : string
(** Namespace of the Employee logical service ([urn:employees]). *)

val usecases_ns : string
(** Namespace the use-case procedures are declared in ([urn:usecases]). *)

val employee_schema : Relational.Table.schema
val emp2_schema : Relational.Table.schema

val service_source : string
(** The Employee logical service's read methods ([getAll],
    [getByEmployeeID]). *)

val make :
  ?employees:int ->
  ?fanout:int ->
  ?seed:int ->
  ?instr:Instr.t ->
  ?resilience:Resilience.Control.t ->
  unit ->
  env
(** Deterministic management tree: employee 1 is the top (no manager);
    every other employee's manager is an earlier employee, at most
    [fanout] direct reports each (default 4). *)

(** Paper use-case sources (section III.D), loadable with
    [Xqse.Session.load_library] — {!make} does NOT load them, so tests
    exercise deployment separately. *)

val uc1_delete_source : string
(** Use case 1: user-defined delete by employee id. Declares
    [uc:deleteByEmployeeID($id)]. *)

val uc2_chain_source : string
(** Use case 2: imperative management-chain computation. Declares the
    readonly [uc:getManagementChain($id)] — callable from XQuery. *)

val uc3_etl_source : string
(** Use case 3: transform-and-copy "lightweight ETL". Declares the
    [uc:transformToEMP2($e)] helper function and the
    [uc:copyAllToEMP2()] procedure returning the copied count. *)

val uc4_replicate_source : string
(** Use case 4: replicating create across both sources with try/catch
    error wrapping. Declares [uc:create($newEmps)]. *)

val load_all_use_cases : env -> unit
