(* Deterministic generator of well-formed XQuery programs for
   differential testing of the rewrite optimizer (optimized and
   unoptimized evaluation must agree item-for-item).

   The grammar is deliberately skewed toward the optimizer's attack
   surface: FLWOR nests, [let] bindings to literals and variable aliases
   (the inlining pass), single- and two-variable [where] clauses (the
   pushdown and join passes), typeswitch expressions (whose case
   variables are binding sites substitution must respect), equi-join
   shaped for/for/where programs (so [detect_joins] fires on generated
   input), quantified expressions, and a *tiny* variable pool so that
   shadowing — and therefore variable capture — is frequent. Every
   expression is integer-valued, so generated programs never raise type
   errors and results compare exactly. *)

(* the whole point: few names => frequent rebinding *)
let pool = [ "x"; "y"; "z" ]

(* scope entries: variable name and whether it is known to be a single
   integer ([`Atom], usable as an arithmetic/comparison operand) or an
   arbitrary-length integer sequence ([`Seq]) *)
type entry = string * [ `Atom | `Seq ]

let rand_int t lo hi = lo + Det.int t (hi - lo + 1)

let atoms_of scope = List.filter (fun (_, k) -> k = `Atom) scope
let seqs_of scope = List.filter (fun (_, k) -> k = `Seq) scope

(* A single integer. *)
let rec atom t depth (scope : entry list) =
  let avs = atoms_of scope in
  let choices =
    [ `Lit; `Lit ]
    @ (if avs <> [] then [ `Var; `Var; `Var ] else [])
    @ (if depth > 0 then
         [ `Arith; `Arith; `If; `Count; `Let; `Switch; `LetUse; `Copy ]
       else [])
  in
  match Det.pick t choices with
  | `Lit -> string_of_int (rand_int t 0 9)
  | `Var -> "$" ^ fst (Det.pick t avs)
  | `LetUse -> let_use t depth scope
  | `Copy -> transform t depth scope
  | `Switch ->
    (* integer-valued in every branch; the case variables are binding
       sites, so typeswitch participates in the capture-avoidance
       differential coverage *)
    let v = Det.pick t pool in
    Printf.sprintf
      "(typeswitch ((%s)) case $%s as xs:integer return %s case $%s as \
       xs:integer+ return count($%s) default return %s)"
      (seq t (depth - 1) scope)
      v
      (atom t (depth - 1) ((v, `Atom) :: scope))
      v v
      (atom t (depth - 1) scope)
  | `Arith ->
    let op = Det.pick t [ "+"; "-"; "*" ] in
    Printf.sprintf "(%s %s %s)" (atom t (depth - 1) scope) op
      (atom t (depth - 1) scope)
  | `If ->
    Printf.sprintf "(if (%s) then %s else %s)"
      (cond t (depth - 1) scope)
      (atom t (depth - 1) scope)
      (atom t (depth - 1) scope)
  | `Count -> Printf.sprintf "count((%s))" (seq t (depth - 1) scope)
  | `Let ->
    let v = Det.pick t pool in
    Printf.sprintf "(let $%s := %s return %s)" v
      (atom t (depth - 1) scope)
      (atom t (depth - 1) ((v, `Atom) :: scope))

(* A single-use computed [let]: the value is genuinely computed (not a
   literal or alias, so only the purity-gated cost-based inliner can
   touch it) and the body uses the variable exactly once, in a head
   position, so the inliner fires without a size cap. The non-variable
   parts of the body are generated against a scope with the bound name
   removed, which is what guarantees the single use. *)
and let_use t depth scope =
  let v = Det.pick t pool in
  let scope' = List.filter (fun (n, _) -> n <> v) scope in
  let value = Printf.sprintf "count((%s))" (seq t (depth - 1) scope) in
  let use =
    match Det.int t 3 with
    | 0 -> Printf.sprintf "($%s + %d)" v (rand_int t 0 9)
    | 1 ->
      Printf.sprintf "(if ($%s ge %d) then %s else %s)" v (rand_int t 1 5)
        (atom t (depth - 1) scope')
        (atom t (depth - 1) scope')
    | _ ->
      let w = Det.pick t (List.filter (fun p -> p <> v) pool) in
      Printf.sprintf "count((for $%s in (1 to ($%s mod 3)) return %s))" w v
        (seq t (depth - 1) ((w, `Atom) :: scope'))
  in
  Printf.sprintf "(let $%s := %s return %s)" v value use

(* A transform (copy/modify/return) expression, integer-valued overall so
   it slots in anywhere an atom does. Exercises the update-expression AST
   nodes the purity analysis must keep the optimizer away from: a
   transform constructs fresh nodes, so a [let] bound to one must never
   be inlined into a multi-evaluation position or dropped. The copy
   variable is bound to a node, so post-copy operands come from a scope
   with that name removed. *)
and transform t depth scope =
  let c = Det.pick t pool in
  let scope' = List.filter (fun (n, _) -> n <> c) scope in
  if Det.int t 2 = 0 then
    Printf.sprintf
      "(copy $%s := <w><v>{%s}</v></w> modify replace value of node $%s/v \
       with %s return xs:integer($%s/v))"
      c
      (atom t (depth - 1) scope)
      c
      (atom t (depth - 1) scope')
      c
  else
    Printf.sprintf
      "(copy $%s := <w/> modify insert node <v>{%s}</v> into $%s return \
       (count($%s/v) + %s))"
      c
      (atom t (depth - 1) scope')
      c c
      (atom t (depth - 1) scope')

(* A boolean, used only in where/if/satisfies position. *)
and cond t depth scope =
  let choices =
    [ `Cmp; `Cmp; `Cmp ]
    @ (if depth > 0 then [ `And; `Or; `Quant ] else [ `Bool ])
  in
  match Det.pick t choices with
  | `Bool -> Det.pick t [ "true()"; "false()" ]
  | `Cmp ->
    let op = Det.pick t [ "eq"; "ne"; "lt"; "le"; "gt"; "ge" ] in
    Printf.sprintf "%s %s %s" (atom t depth scope) op (atom t depth scope)
  | `And ->
    Printf.sprintf "(%s) and (%s)"
      (cond t (depth - 1) scope)
      (cond t (depth - 1) scope)
  | `Or ->
    Printf.sprintf "(%s) or (%s)"
      (cond t (depth - 1) scope)
      (cond t (depth - 1) scope)
  | `Quant ->
    let q = Det.pick t [ "some"; "every" ] in
    let v = Det.pick t pool in
    Printf.sprintf "(%s $%s in (%s) satisfies %s)" q v
      (seq t (depth - 1) scope)
      (cond t (depth - 1) ((v, `Atom) :: scope))

(* A sequence of integers (possibly empty, possibly one). *)
and seq t depth scope =
  let svs = seqs_of scope in
  let choices =
    [ `Atom; `Atom; `Range ]
    @ (if svs <> [] then [ `Var ] else [])
    @ (if depth > 0 then [ `Pair; `Flwor; `Flwor; `Subseq ] else [])
  in
  match Det.pick t choices with
  | `Atom -> atom t depth scope
  | `Var -> "$" ^ fst (Det.pick t svs)
  | `Range ->
    (* literal bounds keep generated sequences small *)
    let lo = rand_int t 0 5 in
    Printf.sprintf "(%d to %d)" lo (lo + rand_int t 0 4)
  | `Pair ->
    Printf.sprintf "(%s, %s)" (seq t (depth - 1) scope) (seq t (depth - 1) scope)
  | `Flwor -> "(" ^ flwor t (depth - 1) scope ^ ")"
  | `Subseq -> subseq t depth scope

(* fn:subsequence over a generated source, with the start/length drawn
   from the coercion corners of the F&O window rule: fractional values
   (rounding is half toward +INF, so negative halves matter), zero and
   negative starts, NaN and the infinities (every comparison false /
   [-INF + INF] a NaN bound), and doubles far outside the int range
   (position arithmetic must stay in xs:double — converting to int
   would wrap). The streaming schedule and the eager builtin must keep
   the same window on all of them; integer-valued as required, since
   only the surviving source items appear. *)
and subseq t depth scope =
  let bound () =
    match Det.int t 8 with
    | 0 -> string_of_int (rand_int t (-3) 6)
    | 1 -> Printf.sprintf "%d.5" (rand_int t (-2) 4)
    | 2 -> Printf.sprintf "%d.25" (rand_int t (-2) 4)
    | 3 -> "xs:double('NaN')"
    | 4 -> Det.pick t [ "xs:double('INF')"; "-xs:double('INF')" ]
    | 5 -> Det.pick t [ "1e18"; "-1e18" ]
    | _ -> atom t (depth - 1) scope
  in
  if Det.int t 2 = 0 then
    Printf.sprintf "subsequence((%s), %s)" (seq t (depth - 1) scope) (bound ())
  else
    Printf.sprintf "subsequence((%s), %s, %s)"
      (seq t (depth - 1) scope)
      (bound ()) (bound ())

(* A FLWOR, following the XQuery 1.0 grammar: 1-3 for/let clauses, then
   an optional single where, an optional order by, and the return. When
   depth remains, one time in four it is join-shaped and one time in
   four shifted-where-shaped instead. *)
and flwor t depth scope =
  if depth > 0 then
    match Det.int t 8 with
    | 0 | 1 -> join_flwor t depth scope
    | 2 | 3 -> shifted_flwor t depth scope
    | _ -> general_flwor t depth scope
  else general_flwor t depth scope

(* The shape the focus-shift pushdown handles: a single-variable [where]
   whose variable occurs inside a nested filter predicate (a shifted
   focus), so the pushdown must rebind the for variable through a fresh
   [let $v' := .] instead of bailing. The filtered source is generated
   against an empty scope so the condition's only free variable is the
   for variable. *)
and shifted_flwor t depth scope =
  let v = Det.pick t pool in
  let op = Det.pick t [ "eq"; "ne"; "lt"; "le"; "gt"; "ge" ] in
  Printf.sprintf "for $%s in (%s) where count((%s)[. le $%s]) %s %d return %s"
    v
    (seq t (depth - 1) scope)
    (seq t (depth - 1) [])
    v op (rand_int t 0 3)
    (seq t (depth - 1) ((v, `Atom) :: scope))

(* The exact shape [detect_joins] rewrites into a hash Join_clause: two
   single-variable for clauses, the second over a source with no free
   variables, and a where that is a bare [$a eq $b] comparison. *)
and join_flwor t depth scope =
  let a = Det.pick t pool in
  let b = Det.pick t (List.filter (fun v -> v <> a) pool) in
  let scope' = (b, `Atom) :: (a, `Atom) :: scope in
  Printf.sprintf "for $%s in (%s) for $%s in (%s) where $%s eq $%s return %s"
    a
    (seq t (depth - 1) scope)
    b
    (seq t (depth - 1) [])
    a b
    (seq t (depth - 1) scope')

and general_flwor t depth scope =
  let b = Buffer.create 64 in
  let n_clauses = 1 + Det.int t 3 in
  let rec clauses i scope =
    if i >= n_clauses then scope
    else begin
      match Det.pick t [ `For; `For; `Let; `Let ] with
      | `For ->
        let v = Det.pick t pool in
        let posv =
          if Det.int t 4 = 0 then
            match List.filter (fun p -> p <> v) pool with
            | [] -> None
            | ps -> Some (Det.pick t ps)
          else None
        in
        Buffer.add_string b
          (Printf.sprintf "for $%s%s in (%s) " v
             (match posv with Some p -> " at $" ^ p | None -> "")
             (seq t (depth - 1) scope));
        let scope = (v, `Atom) :: scope in
        let scope =
          match posv with Some p -> (p, `Atom) :: scope | None -> scope
        in
        clauses (i + 1) scope
      | `Let ->
        let v = Det.pick t pool in
        let value =
          (* skew toward the inliner's triggers: literals and aliases *)
          match Det.pick t [ `Lit; `Alias; `Alias; `Expr; `SeqExpr ] with
          | `Lit -> (string_of_int (rand_int t 0 9), `Atom)
          | `Alias -> (
            match scope with
            | [] -> (string_of_int (rand_int t 0 9), `Atom)
            | _ ->
              let v', k = Det.pick t scope in
              ("$" ^ v', k))
          | `Expr -> (atom t (depth - 1) scope, `Atom)
          | `SeqExpr -> ("(" ^ seq t (depth - 1) scope ^ ")", `Seq)
        in
        Buffer.add_string b
          (Printf.sprintf "let $%s := %s " v (fst value));
        clauses (i + 1) ((v, snd value) :: scope)
    end
  in
  let scope' = clauses 0 scope in
  if Det.int t 2 = 0 then
    Buffer.add_string b
      (Printf.sprintf "where %s " (cond t (depth - 1) scope'));
  if Det.int t 3 = 0 && atoms_of scope' <> [] then
    Buffer.add_string b
      (Printf.sprintf "order by %s%s "
         (atom t (if depth > 0 then depth - 1 else 0) scope')
         (if Det.int t 2 = 0 then " descending" else ""));
  Buffer.add_string b ("return " ^ seq t (depth - 1) scope');
  Buffer.contents b

let expr t = flwor t 3 []

let corpus ?(seed = 1) n =
  List.init n (fun i -> expr (Det.make ((seed * 65599) + (i * 2654435761))))
