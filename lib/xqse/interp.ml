open Xdm
module Qmap = Xquery.Context.Qmap

exception Break_outside_loop
exception Continue_outside_loop

type procedure = {
  p_name : Qname.t;
  p_params : (Qname.t * Seqtype.t option) list;
  p_return : Seqtype.t option;
  p_readonly : bool;
  p_impl : impl;
}

and impl = P_block of Stmt.block | P_external of (Item.seq list -> Item.seq)

type runtime = {
  reg : Xquery.Context.registry;
  procs : (string * string * int, procedure) Hashtbl.t;
      (* keyed by (uri, local, arity) — prefixes are not significant *)
  parent : runtime option;
  mutable trace : string -> unit;
  instr : Instr.t;
}

let create_runtime ?(trace = fun _ -> ()) ?instr ?parent reg =
  let instr =
    match (instr, parent) with
    | Some i, _ -> i
    | None, Some p -> p.instr
    | None, None -> Instr.disabled
  in
  { reg; procs = Hashtbl.create 16; parent; trace; instr }

let registry rt = rt.reg
let set_trace rt f = rt.trace <- f
let instr rt = rt.instr

let rec find_procedure rt (name : Qname.t) arity =
  match Hashtbl.find_opt rt.procs (name.Qname.uri, name.Qname.local, arity) with
  | Some p -> Some p
  | None -> (
    match rt.parent with
    | Some parent -> find_procedure parent name arity
    | None -> None)

(* ------------------------------------------------------------------ *)
(* Execution state                                                      *)
(* ------------------------------------------------------------------ *)

(* A frame holds the assignable block variables of one block (value ref
   plus declared type). The paper specifies that only block-declared
   variables may be assigned. *)
type frame = (Qname.t * (Item.seq ref * Seqtype.t option)) list ref

type state = {
  rt : runtime;
  frames : frame list;  (* innermost first *)
  bindings : Item.seq Qmap.t;  (* read-only: params, iterate vars *)
}

type outcome =
  | Normal
  | Returned of Item.seq
  | Broke
  | Continued

let push_frame st = { st with frames = ref [] :: st.frames }

let declare_var st ?ty name v =
  match st.frames with
  | [] -> invalid_arg "Interp.declare_var: no frame"
  | frame :: _ -> frame := (name, (ref v, ty)) :: !frame

let find_entry st name =
  let rec go = function
    | [] -> None
    | frame :: rest -> (
      match List.find_opt (fun (n, _) -> Qname.equal n name) !frame with
      | Some (_, entry) -> Some entry
      | None -> go rest)
  in
  go st.frames

(* Snapshot of all variables in scope, for expression evaluation. *)
let scope_vars st =
  let m = st.bindings in
  (* outer frames first so inner frames win *)
  List.fold_left
    (fun m frame ->
      List.fold_left (fun m (n, (r, _)) -> Qmap.add n !r m) m (List.rev !frame))
    m (List.rev st.frames)

let eval_ctx st =
  let ctx = Xquery.Context.make_dynamic ~trace:st.rt.trace st.rt.reg in
  let globals = Xquery.Context.globals st.rt.reg in
  let vars =
    Qmap.union (fun _ _inner v -> Some v) globals (scope_vars st)
  in
  Xquery.Context.with_vars ctx vars

let eval_expr st e = Xquery.Eval.eval (eval_ctx st) e

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

let rec exec_value_stmt st (v : Stmt.value_stmt) : Item.seq =
  match v with
  | Stmt.V_expr (Xquery.Ast.Call (name, args) as e) -> (
    (* a call resolves to a procedure when one is declared, else it is an
       ordinary expression (paper III.B.8) *)
    match find_procedure st.rt name (List.length args) with
    | Some proc ->
      let arg_vals = List.map (eval_expr st) args in
      run_procedure st.rt proc arg_vals
    | None -> eval_expr st e)
  | Stmt.V_expr e -> eval_expr st e
  | Stmt.V_proc_block block -> (
    (* in-place procedure: fresh assignable scope; enclosing variables
       remain visible read-only *)
    let st' = { st with frames = []; bindings = scope_vars st } in
    match exec_block_stmts (push_frame st') block with
    | Returned v -> v
    | Normal -> []
    | Broke -> raise Break_outside_loop
    | Continued -> raise Continue_outside_loop)

and exec_stmt st (s : Stmt.statement) : outcome =
  Instr.bump st.rt.instr Instr.K.xqse_statements;
  match s with
  | Stmt.Block b -> exec_block_stmts (push_frame st) b
  | Stmt.Set (name, v) -> (
    match find_entry st name with
    | None ->
      Item.raise_error (Qname.err "XQSE0001")
        (Printf.sprintf
           "cannot assign to $%s: only block-declared variables may be \
            assigned"
           (Qname.to_string name))
    | Some (r, ty) ->
      (* on error the variable keeps its previous value (III.B.6) *)
      let value = exec_value_stmt st v in
      let value =
        match ty with
        | Some ty ->
          Seqtype.check ~what:(Printf.sprintf "$%s" (Qname.to_string name)) ty
            value
        | None -> value
      in
      r := value;
      Normal)
  | Stmt.Return_value v -> Returned (exec_value_stmt st v)
  | Stmt.Expr_stmt v ->
    ignore (exec_value_stmt st v);
    Normal
  | Stmt.While (test, body) ->
    let rec loop () =
      if Item.effective_boolean_value (eval_expr st test) then
        match exec_block_stmts (push_frame st) body with
        | Normal | Continued -> loop ()
        | Broke -> Normal
        | Returned v -> Returned v
      else Normal
    in
    loop ()
  | Stmt.Iterate { var; pos; source; body } ->
    let binding_seq = exec_value_stmt st source in
    let rec loop i = function
      | [] -> Normal
      | item :: rest -> (
        let bindings = Qmap.add var [ item ] st.bindings in
        let bindings =
          match pos with
          | Some pv -> Qmap.add pv [ Item.Atomic (Atomic.Integer i) ] bindings
          | None -> bindings
        in
        let st' = { st with bindings } in
        match exec_block_stmts (push_frame st') body with
        | Normal | Continued -> loop (i + 1) rest
        | Broke -> Normal
        | Returned v -> Returned v)
    in
    loop 1 binding_seq
  | Stmt.If (cond, then_, else_) ->
    if Item.effective_boolean_value (eval_expr st cond) then
      exec_stmt st then_
    else (
      match else_ with Some s -> exec_stmt st s | None -> Normal)
  | Stmt.Try (body, clauses) -> (
    match exec_block_stmts (push_frame st) body with
    | outcome -> outcome
    | exception Item.Error { code; message; items } -> (
      match
        List.find_opt
          (fun c -> Stmt.nametest_matches c.Stmt.cc_test code)
          clauses
      with
      | None -> raise (Item.Error { code; message; items })
      | Some clause ->
        (* bind up to three variables: error QName, message, diagnostics
           (paper III.B.13) *)
        let values =
          [
            [ Item.Atomic (Atomic.QName code) ];
            [ Item.Atomic (Atomic.String message) ];
            items;
          ]
        in
        let bindings =
          List.fold_left2
            (fun m v value -> Qmap.add v value m)
            st.bindings clause.Stmt.cc_vars
            (List.filteri
               (fun i _ -> i < List.length clause.Stmt.cc_vars)
               values)
        in
        exec_block_stmts (push_frame { st with bindings }) clause.Stmt.cc_body))
  | Stmt.Continue -> Continued
  | Stmt.Break -> Broke
  | Stmt.Update e ->
    (* one snapshot: evaluate the updating expression, then apply its
       pending update list (paper III.C.14) *)
    let pul = Xquery.Eval.eval_updating (eval_ctx st) e in
    Xquery.Update.apply pul;
    Normal

and exec_block_stmts st (b : Stmt.block) : outcome =
  (* execute declarations in order, then statements in order (III.B.5) *)
  List.iter
    (fun d ->
      let v =
        match d.Stmt.bd_init with
        | Some init -> exec_value_stmt st init
        | None -> []
        (* the paper's own while example reads a declared-but-
           uninitialized variable, so uninitialized variables hold the
           empty sequence here; see DESIGN.md *)
      in
      let v =
        match d.Stmt.bd_type with
        | Some ty when d.Stmt.bd_init <> None ->
          Seqtype.check
            ~what:(Printf.sprintf "$%s" (Qname.to_string d.Stmt.bd_var))
            ty v
        | _ -> v
      in
      declare_var st ?ty:d.Stmt.bd_type d.Stmt.bd_var v)
    b.Stmt.decls;
  let rec go = function
    | [] -> Normal
    | s :: rest -> (
      match exec_stmt st s with Normal -> go rest | out -> out)
  in
  go b.Stmt.stmts

and run_procedure rt proc arg_vals : Item.seq =
  let what = Qname.to_string proc.p_name in
  if List.length arg_vals <> List.length proc.p_params then
    Item.type_error
      (Printf.sprintf "procedure %s expects %d argument(s), got %d" what
         (List.length proc.p_params) (List.length arg_vals));
  let checked =
    List.map2
      (fun (pname, pty) v ->
        let v =
          match pty with
          | Some ty ->
            Seqtype.check
              ~what:
                (Printf.sprintf "argument $%s of %s" (Qname.to_string pname)
                   what)
              ty v
          | None -> v
        in
        (pname, v))
      proc.p_params arg_vals
  in
  let result =
    match proc.p_impl with
    | P_external f -> f (List.map snd checked)
    | P_block body -> (
      let bindings =
        List.fold_left
          (fun m (n, v) -> Qmap.add n v m)
          Qmap.empty checked
      in
      let st = { rt; frames = []; bindings } in
      match exec_block_stmts (push_frame st) body with
      | Returned v -> v
      | Normal -> []
      | Broke -> raise Break_outside_loop
      | Continued -> raise Continue_outside_loop)
  in
  match proc.p_return with
  | Some ty ->
    Seqtype.check ~what:(Printf.sprintf "result of %s" what) ty result
  | None -> result

let call_procedure rt name arg_vals =
  match find_procedure rt name (List.length arg_vals) with
  | Some proc -> run_procedure rt proc arg_vals
  | None ->
    Item.raise_error (Qname.err "XPST0017")
      (Printf.sprintf "unknown procedure %s/%d" (Qname.to_string name)
         (List.length arg_vals))

let declare_procedure rt proc =
  let key =
    (proc.p_name.Qname.uri, proc.p_name.Qname.local, List.length proc.p_params)
  in
  if Hashtbl.mem rt.procs key then
    Item.raise_error (Qname.err "XQST0034")
      (Printf.sprintf "procedure %s/%d is already declared"
         (Qname.to_string proc.p_name)
         (List.length proc.p_params));
  Hashtbl.add rt.procs key proc;
  if proc.p_readonly then
    (* a readonly procedure is callable as a function from XQuery *)
    Xquery.Context.register_external rt.reg ~side_effects:false
      proc.p_name
      (List.length proc.p_params)
      (fun args -> run_procedure rt proc args)

let exec_block rt ?(vars = []) block =
  let bindings =
    List.fold_left (fun m (n, v) -> Qmap.add n v m) Qmap.empty vars
  in
  let st = { rt; frames = []; bindings } in
  match exec_block_stmts (push_frame st) block with
  | Returned v -> v
  | Normal -> []
  | Broke -> raise Break_outside_loop
  | Continued -> raise Continue_outside_loop
