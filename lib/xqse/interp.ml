open Xdm
module Qmap = Xquery.Context.Qmap

exception Break_outside_loop
exception Continue_outside_loop

type procedure = {
  p_name : Qname.t;
  p_params : (Qname.t * Seqtype.t option) list;
  p_return : Seqtype.t option;
  p_readonly : bool;
  p_impl : impl;
}

and impl = P_block of Stmt.block | P_external of (Item.seq list -> Item.seq)

type runtime = {
  reg : Xquery.Context.registry;
  procs : (string * string * int, procedure) Hashtbl.t;
      (* keyed by (uri, local, arity) — prefixes are not significant *)
  parent : runtime option;
  mutable trace : string -> unit;
  instr : Instr.t;
  mutable streaming : bool;
  mutable plans : bool;
  mutable purity : Xquery.Ast.expr -> bool * bool * bool;
      (* (effects, fallible, constructs) — the compile-time purity
         verdicts the streaming evaluator gates on; conservative
         (all true) until the session installs a real environment *)
  mutable cache : unit -> Cache.bound option;
      (* result-cache view supplier, re-invoked per evaluation context
         so every key carries the session's *current* fingerprint; the
         session installs it, sub-runtimes inherit it *)
  mutable comp : Xquery.Eval.compiler option;
      (* lazily-built compilation unit over [reg], shared by every block
         and procedure compiled under this runtime so user-function
         plans compile once; dropped on [invalidate_plans] *)
  mutable cblocks : (Stmt.block * cblock) list;
      (* compiled procedure/program bodies, keyed on block identity *)
}

(* A frame holds the assignable block variables of one block (value ref
   plus declared type). The paper specifies that only block-declared
   variables may be assigned. *)
and frame = (Qname.t * (Item.seq ref * Seqtype.t option)) list ref

and state = {
  rt : runtime;
  frames : frame list;  (* innermost first *)
  bindings : Item.seq Qmap.t;  (* read-only: params, iterate vars *)
  ctx0 : Xquery.Context.dynamic;
      (* base dynamic context, built once per block/procedure run; the
         compiled path derives every expression's context from it
         instead of paying [make_dynamic] per expression *)
}

and outcome =
  | Normal
  | Returned of Item.seq
  | Broke
  | Continued

and cblock = state -> outcome

let create_runtime ?(trace = fun _ -> ()) ?instr ?parent reg =
  let instr =
    match (instr, parent) with
    | Some i, _ -> i
    | None, Some p -> p.instr
    | None, None -> Instr.disabled
  in
  let streaming = match parent with Some p -> p.streaming | None -> true in
  let plans = match parent with Some p -> p.plans | None -> true in
  let purity =
    match parent with Some p -> p.purity | None -> fun _ -> (true, true, true)
  in
  let cache =
    match parent with Some p -> p.cache | None -> fun () -> None
  in
  {
    reg;
    procs = Hashtbl.create 16;
    parent;
    trace;
    instr;
    streaming;
    plans;
    purity;
    cache;
    comp = None;
    cblocks = [];
  }

let registry rt = rt.reg
let set_trace rt f = rt.trace <- f
let instr rt = rt.instr
let streaming rt = rt.streaming
let set_streaming rt b = rt.streaming <- b
let plans rt = rt.plans
let set_plans rt b = rt.plans <- b
let set_purity rt f = rt.purity <- f
let set_cache rt f = rt.cache <- f

(* Drop every compiled plan held by this runtime. The session calls this
   whenever the registry underneath changes (function or procedure
   registration, module/library load) — the same events that flush its
   query-plan cache. *)
let invalidate_plans rt =
  rt.comp <- None;
  rt.cblocks <- []

(* The runtime's compilation unit, built on first use so it sees the
   purity environment the session installs after runtime creation (the
   indirection through [rt.purity] keeps later [set_purity] effective
   for everything compiled afterwards). *)
let compiler_of rt =
  match rt.comp with
  | Some cc -> cc
  | None ->
    let cc = Xquery.Eval.compiler ~purity:(fun e -> rt.purity e) rt.reg in
    rt.comp <- Some cc;
    cc

let compiler = compiler_of

let rec find_procedure rt (name : Qname.t) arity =
  match Hashtbl.find_opt rt.procs (name.Qname.uri, name.Qname.local, arity) with
  | Some p -> Some p
  | None -> (
    match rt.parent with
    | Some parent -> find_procedure parent name arity
    | None -> None)

(* ------------------------------------------------------------------ *)
(* Execution state                                                      *)
(* ------------------------------------------------------------------ *)

let make_state rt bindings =
  let ctx0 =
    Xquery.Context.make_dynamic ~trace:rt.trace ~instr:rt.instr
      ~streaming:rt.streaming ~purity:rt.purity ?cache:(rt.cache ()) rt.reg
  in
  { rt; frames = []; bindings; ctx0 }

let push_frame st = { st with frames = ref [] :: st.frames }

let declare_var st ?ty name v =
  match st.frames with
  | [] -> invalid_arg "Interp.declare_var: no frame"
  | frame :: _ -> frame := (name, (ref v, ty)) :: !frame

let find_entry st name =
  let rec go = function
    | [] -> None
    | frame :: rest -> (
      match List.find_opt (fun (n, _) -> Qname.equal n name) !frame with
      | Some (_, entry) -> Some entry
      | None -> go rest)
  in
  go st.frames

(* Snapshot of all variables in scope, for expression evaluation. *)
let scope_vars st =
  let m = st.bindings in
  (* outer frames first so inner frames win *)
  List.fold_left
    (fun m frame ->
      List.fold_left (fun m (n, (r, _)) -> Qmap.add n !r m) m (List.rev !frame))
    m (List.rev st.frames)

let eval_ctx st =
  let ctx =
    Xquery.Context.make_dynamic ~trace:st.rt.trace ~instr:st.rt.instr
      ~streaming:st.rt.streaming ~purity:st.rt.purity
      ?cache:(st.rt.cache ()) st.rt.reg
  in
  let globals = Xquery.Context.globals st.rt.reg in
  let vars =
    Qmap.union (fun _ _inner v -> Some v) globals (scope_vars st)
  in
  Xquery.Context.with_vars ctx vars

let eval_expr st e = Xquery.Eval.eval (eval_ctx st) e

(* Compiled-path variant of [eval_ctx]: same variable snapshot, but the
   dynamic context is derived from the per-run base instead of being
   rebuilt from scratch for every expression. *)
let compiled_ctx st =
  let globals = Xquery.Context.globals st.rt.reg in
  let vars =
    Qmap.union (fun _ _inner v -> Some v) globals (scope_vars st)
  in
  Xquery.Context.with_vars st.ctx0 vars

(* Compile-time image of the frame stack. Frames are fully static: only
   a block's [declare]s create entries, and a block's declarations all
   run before its statements, so at every program point the compiler
   knows exactly which names each live frame holds (newest first, the
   runtime cons order). That turns a variable reference into a
   (frame depth, position) slot — no name comparison at run time. *)
type scope = Qname.t list list

let resolve_slot (scope : scope) name =
  let rec frames fi = function
    | [] -> None
    | entries :: rest ->
      let rec pos pi = function
        | [] -> frames (fi + 1) rest
        | n :: tl ->
          if Qname.equal n name then Some (fi, pi) else pos (pi + 1) tl
      in
      pos 0 entries
  in
  frames 0 scope

let slot_entry st fi pi =
  let frame = List.nth st.frames fi in
  snd (List.nth !frame pi)

(* Fast path for tiny statement expressions — loop tests and
   counter/accumulator updates like [$i + 1] or [$i le $n]. Variables
   and literals combined by arithmetic or value comparison evaluate
   directly against the execution state (no context, no scope-map
   snapshot) through the same scalar kernels the evaluator uses, so
   values and errors are identical. Lookup precedence mirrors
   [eval_ctx]'s map: block frames (innermost first) over read-only
   bindings over module globals. *)
let rec simple_plan scope (e : Xquery.Ast.expr) :
    (state -> Item.seq) option =
  match e with
  | Xquery.Ast.Literal a ->
    let v = [ Item.Atomic a ] in
    Some (fun _ -> v)
  | Xquery.Ast.Var q -> (
    match resolve_slot scope q with
    | Some (fi, pi) ->
      Some
        (fun st ->
          let r, _ = slot_entry st fi pi in
          !r)
    | None ->
      (* in no frame, statically — read-only bindings, then globals *)
      Some
        (fun st ->
          match Qmap.find_opt q st.bindings with
          | Some v -> v
          | None -> (
            match Qmap.find_opt q (Xquery.Context.globals st.rt.reg) with
            | Some v -> v
            | None ->
              Item.raise_error (Qname.err "XPST0008")
                (Printf.sprintf "undefined variable $%s"
                   (Qname.to_string q)))))
  | Xquery.Ast.Arith (op, a, b) -> (
    match (simple_plan scope a, simple_plan scope b) with
    | Some pa, Some pb ->
      Some
        (fun st ->
          let va = pa st in
          let vb = pb st in
          Xquery.Eval.arith_seq op va vb)
    | _ -> None)
  | Xquery.Ast.Value_cmp (op, a, b) -> (
    match (simple_plan scope a, simple_plan scope b) with
    | Some pa, Some pb ->
      Some
        (fun st ->
          let va = pa st in
          let vb = pb st in
          Xquery.Eval.value_cmp_seq op va vb)
    | _ -> None)
  | _ -> None

let expr_plan rt scope (e : Xquery.Ast.expr) : state -> Item.seq =
  match simple_plan scope e with
  | Some p -> p
  | None ->
    let plan = Xquery.Eval.compile (compiler_of rt) e in
    fun st -> plan (compiled_ctx st)

(* Purity verdict of a statement block: a statement's verdict joins the
   verdicts of every embedded expression ([purity] returns the
   compile-time [(effects, fallible, constructs)] triple of one
   expression); [update] statements are effectful by definition. Blocks
   are always considered fallible — sequence-type checks on parameters,
   results and [set] targets can raise regardless of the body. *)
let block_verdict ~purity (b : Stmt.block) =
  let effects = ref false in
  let constructs = ref false in
  let note e =
    let ef, _fallible, co = purity e in
    if ef then effects := true;
    if co then constructs := true
  in
  let rec vstmt = function
    | Stmt.V_expr e -> note e
    | Stmt.V_proc_block b -> block b
  and stmt = function
    | Stmt.Block b -> block b
    | Stmt.Set (_, v) -> vstmt v
    | Stmt.Return_value v | Stmt.Expr_stmt v -> vstmt v
    | Stmt.While (e, b) ->
      note e;
      block b
    | Stmt.Iterate { source; body; _ } ->
      vstmt source;
      block body
    | Stmt.If (c, t, e) ->
      note c;
      stmt t;
      Option.iter stmt e
    | Stmt.Try (b, clauses) ->
      block b;
      List.iter (fun c -> block c.Stmt.cc_body) clauses
    | Stmt.Continue | Stmt.Break -> ()
    | Stmt.Update e ->
      effects := true;
      note e
  and block b =
    List.iter (fun d -> Option.iter vstmt d.Stmt.bd_init) b.Stmt.decls;
    List.iter stmt b.Stmt.stmts
  in
  block b;
  (!effects, true, !constructs)

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

let rec exec_value_stmt st (v : Stmt.value_stmt) : Item.seq =
  match v with
  | Stmt.V_expr (Xquery.Ast.Call (name, args) as e) -> (
    (* a call resolves to a procedure when one is declared, else it is an
       ordinary expression (paper III.B.8) *)
    match find_procedure st.rt name (List.length args) with
    | Some proc ->
      let arg_vals = List.map (eval_expr st) args in
      run_procedure st.rt proc arg_vals
    | None -> eval_expr st e)
  | Stmt.V_expr e -> eval_expr st e
  | Stmt.V_proc_block block -> (
    (* in-place procedure: fresh assignable scope; enclosing variables
       remain visible read-only *)
    let st' = { st with frames = []; bindings = scope_vars st } in
    match exec_block_stmts (push_frame st') block with
    | Returned v -> v
    | Normal -> []
    | Broke -> raise Break_outside_loop
    | Continued -> raise Continue_outside_loop)

(* Cursor form of [exec_value_stmt], for consumers (iterate) that can
   drive the source lazily. Procedure calls and in-place procedure
   blocks execute statements (side effects must all happen before the
   first pull), so they materialize; a plain expression streams through
   [Eval.eval_cur]. *)
and exec_value_stmt_cur st (v : Stmt.value_stmt) : Item.t Cursor.t =
  match v with
  | Stmt.V_expr (Xquery.Ast.Call (name, args))
    when find_procedure st.rt name (List.length args) <> None ->
    Cursor.of_list (exec_value_stmt st v)
  | Stmt.V_expr e -> Xquery.Eval.eval_cur (eval_ctx st) e
  | Stmt.V_proc_block _ -> Cursor.of_list (exec_value_stmt st v)

and exec_stmt st (s : Stmt.statement) : outcome =
  Instr.bump st.rt.instr Instr.K.xqse_statements;
  match s with
  | Stmt.Block b -> exec_block_stmts (push_frame st) b
  | Stmt.Set (name, v) -> (
    match find_entry st name with
    | None ->
      Item.raise_error (Qname.err "XQSE0001")
        (Printf.sprintf
           "cannot assign to $%s: only block-declared variables may be \
            assigned"
           (Qname.to_string name))
    | Some (r, ty) ->
      (* on error the variable keeps its previous value (III.B.6) *)
      let value = exec_value_stmt st v in
      let value =
        match ty with
        | Some ty ->
          Seqtype.check ~what:(Printf.sprintf "$%s" (Qname.to_string name)) ty
            value
        | None -> value
      in
      r := value;
      Normal)
  | Stmt.Return_value v -> Returned (exec_value_stmt st v)
  | Stmt.Expr_stmt v ->
    ignore (exec_value_stmt st v);
    Normal
  | Stmt.While (test, body) ->
    let rec loop () =
      if Item.effective_boolean_value (eval_expr st test) then
        match exec_block_stmts (push_frame st) body with
        | Normal | Continued -> loop ()
        | Broke -> Normal
        | Returned v -> Returned v
      else Normal
    in
    loop ()
  | Stmt.Iterate { var; pos; source; body } ->
    let run_body i item =
      let bindings = Qmap.add var [ item ] st.bindings in
      let bindings =
        match pos with
        | Some pv -> Qmap.add pv [ Item.Atomic (Atomic.Integer i) ] bindings
        | None -> bindings
      in
      let st' = { st with bindings } in
      exec_block_stmts (push_frame st') body
    in
    (* A constructing body forbids lazy driving: node allocation order
       decides cross-tree document order, and interleaving the body's
       constructions with per-pull construction in the source (row
       elements) would order them differently than the eager model,
       which finishes the whole binding sequence first. *)
    let _, _, body_constructs = block_verdict ~purity:st.rt.purity body in
    let cur = exec_value_stmt_cur st source in
    if Cursor.is_pure cur && not body_constructs then
      (* pure source: remaining pulls cannot raise or have effects, so
         driving one binding at a time is indistinguishable from the
         eager loop — except that [break]/[return] abandon the rest *)
      let rec loop i =
        match Cursor.next cur with
        | None -> Normal
        | Some item -> (
          match run_body i item with
          | Normal | Continued -> loop (i + 1)
          | Broke ->
            Cursor.abandon cur;
            Normal
          | Returned v ->
            Cursor.abandon cur;
            Returned v
          | exception e ->
            Cursor.abandon cur;
            raise e)
      in
      loop 1
    else begin
      (* impure source: the eager model evaluates the whole binding
         sequence (all its effects and errors) before any body statement
         runs — materialize to keep that ordering *)
      let binding_seq =
        Cursor.to_list ~instr:st.rt.instr cur
      in
      let rec loop i = function
        | [] -> Normal
        | item :: rest -> (
          match run_body i item with
          | Normal | Continued -> loop (i + 1) rest
          | Broke -> Normal
          | Returned v -> Returned v)
      in
      loop 1 binding_seq
    end
  | Stmt.If (cond, then_, else_) ->
    if Item.effective_boolean_value (eval_expr st cond) then
      exec_stmt st then_
    else (
      match else_ with Some s -> exec_stmt st s | None -> Normal)
  | Stmt.Try (body, clauses) -> (
    match exec_block_stmts (push_frame st) body with
    | outcome -> outcome
    | exception Item.Error { code; message; items } -> (
      match
        List.find_opt
          (fun c -> Stmt.nametest_matches c.Stmt.cc_test code)
          clauses
      with
      | None -> raise (Item.Error { code; message; items })
      | Some clause ->
        (* bind up to three variables: error QName, message, diagnostics
           (paper III.B.13) *)
        let values =
          [
            [ Item.Atomic (Atomic.QName code) ];
            [ Item.Atomic (Atomic.String message) ];
            items;
          ]
        in
        let bindings =
          List.fold_left2
            (fun m v value -> Qmap.add v value m)
            st.bindings clause.Stmt.cc_vars
            (List.filteri
               (fun i _ -> i < List.length clause.Stmt.cc_vars)
               values)
        in
        exec_block_stmts (push_frame { st with bindings }) clause.Stmt.cc_body))
  | Stmt.Continue -> Continued
  | Stmt.Break -> Broke
  | Stmt.Update e ->
    (* one snapshot: evaluate the updating expression, then apply its
       pending update list (paper III.C.14) *)
    let pul = Xquery.Eval.eval_updating (eval_ctx st) e in
    Xquery.Update.apply pul;
    Normal

and exec_block_stmts st (b : Stmt.block) : outcome =
  (* execute declarations in order, then statements in order (III.B.5) *)
  List.iter
    (fun d ->
      let v =
        match d.Stmt.bd_init with
        | Some init -> exec_value_stmt st init
        | None -> []
        (* the paper's own while example reads a declared-but-
           uninitialized variable, so uninitialized variables hold the
           empty sequence here; see DESIGN.md *)
      in
      let v =
        match d.Stmt.bd_type with
        | Some ty when d.Stmt.bd_init <> None ->
          Seqtype.check
            ~what:(Printf.sprintf "$%s" (Qname.to_string d.Stmt.bd_var))
            ty v
        | _ -> v
      in
      declare_var st ?ty:d.Stmt.bd_type d.Stmt.bd_var v)
    b.Stmt.decls;
  let rec go = function
    | [] -> Normal
    | s :: rest -> (
      match exec_stmt st s with Normal -> go rest | out -> out)
  in
  go b.Stmt.stmts

(* ------------------------------------------------------------------ *)
(* Compiled statements                                                  *)
(* ------------------------------------------------------------------ *)

(* Mirror of the exec_* functions above as a compile stage: each
   statement form is walked once, its embedded expressions are closure-
   compiled (through {!Xquery.Eval.compile} or the [simple_plan] fast
   path), and execution is a closure over the state. Observable behavior
   — values, effects, errors, counter bumps, evaluation order — matches
   the interpreted path statement for statement; the differential corpus
   compares the two. *)

and cvalue_of rt scope (v : Stmt.value_stmt) : state -> Item.seq =
  match v with
  | Stmt.V_expr (Xquery.Ast.Call (name, args) as e) ->
    (* procedure-over-function resolution stays a run-time check: a
       procedure declared after this block compiled must still win *)
    let cargs = List.map (expr_plan rt scope) args in
    let cplan = expr_plan rt scope e in
    let arity = List.length args in
    fun st -> (
      match find_procedure st.rt name arity with
      | Some proc ->
        run_procedure st.rt proc (List.map (fun p -> p st) cargs)
      | None -> cplan st)
  | Stmt.V_expr e -> expr_plan rt scope e
  | Stmt.V_proc_block block ->
    (* the block body runs over a fresh (empty) frame stack *)
    let cb = cblock_plan rt [] block in
    fun st ->
      let st' = { st with frames = []; bindings = scope_vars st } in
      (match cb st' with
      | Returned v -> v
      | Normal -> []
      | Broke -> raise Break_outside_loop
      | Continued -> raise Continue_outside_loop)

and cvalue_cur_of rt scope (v : Stmt.value_stmt) :
    state -> Item.t Cursor.t =
  match v with
  | Stmt.V_expr (Xquery.Ast.Call (name, args) as e) ->
    let cv = cvalue_of rt scope v in
    let ccur = Xquery.Eval.compile_cur (compiler_of rt) e in
    let arity = List.length args in
    fun st ->
      if find_procedure st.rt name arity <> None then
        Cursor.of_list (cv st)
      else ccur (compiled_ctx st)
  | Stmt.V_expr e ->
    let ccur = Xquery.Eval.compile_cur (compiler_of rt) e in
    fun st -> ccur (compiled_ctx st)
  | Stmt.V_proc_block _ ->
    let cv = cvalue_of rt scope v in
    fun st -> Cursor.of_list (cv st)

and cstmt_of rt scope (s : Stmt.statement) : cblock =
  let k : cblock =
    match s with
    | Stmt.Block b -> cblock_plan rt scope b
    | Stmt.Set (name, v) -> (
      match resolve_slot scope name with
      | None ->
        (* statically in no frame: the interpreted path raises before
           evaluating the value, so don't compile in an evaluation *)
        fun _ ->
          Item.raise_error (Qname.err "XQSE0001")
            (Printf.sprintf
               "cannot assign to $%s: only block-declared variables may be \
                assigned"
               (Qname.to_string name))
      | Some (fi, pi) ->
        let cv = cvalue_of rt scope v in
        fun st ->
          let r, ty = slot_entry st fi pi in
          let value = cv st in
          let value =
            match ty with
            | Some ty ->
              Seqtype.check
                ~what:(Printf.sprintf "$%s" (Qname.to_string name))
                ty value
            | None -> value
          in
          r := value;
          Normal)
    | Stmt.Return_value v ->
      let cv = cvalue_of rt scope v in
      fun st -> Returned (cv st)
    | Stmt.Expr_stmt v ->
      let cv = cvalue_of rt scope v in
      fun st ->
        ignore (cv st);
        Normal
    | Stmt.While (test, body) ->
      let ctest = expr_plan rt scope test in
      let cbody = cblock_plan rt scope body in
      fun st ->
        let rec loop () =
          if Item.effective_boolean_value (ctest st) then
            match cbody st with
            | Normal | Continued -> loop ()
            | Broke -> Normal
            | Returned v -> Returned v
          else Normal
        in
        loop ()
    | Stmt.Iterate { var; pos; source; body } ->
      let csrc = cvalue_cur_of rt scope source in
      (* the loop variables land in [bindings], not a frame, so the
         body's frame image is unchanged *)
      let cbody = cblock_plan rt scope body in
      (* the lazy-driving verdict is fixed at compile time: the purity
         environment is installed before anything compiles *)
      let _, _, body_constructs = block_verdict ~purity:rt.purity body in
      fun st ->
        let run_body i item =
          let bindings = Qmap.add var [ item ] st.bindings in
          let bindings =
            match pos with
            | Some pv ->
              Qmap.add pv [ Item.Atomic (Atomic.Integer i) ] bindings
            | None -> bindings
          in
          cbody { st with bindings }
        in
        let cur = csrc st in
        if Cursor.is_pure cur && not body_constructs then
          let rec loop i =
            match Cursor.next cur with
            | None -> Normal
            | Some item -> (
              match run_body i item with
              | Normal | Continued -> loop (i + 1)
              | Broke ->
                Cursor.abandon cur;
                Normal
              | Returned v ->
                Cursor.abandon cur;
                Returned v
              | exception e ->
                Cursor.abandon cur;
                raise e)
          in
          loop 1
        else begin
          let binding_seq = Cursor.to_list ~instr:st.rt.instr cur in
          let rec loop i = function
            | [] -> Normal
            | item :: rest -> (
              match run_body i item with
              | Normal | Continued -> loop (i + 1) rest
              | Broke -> Normal
              | Returned v -> Returned v)
          in
          loop 1 binding_seq
        end
    | Stmt.If (cond, then_, else_) ->
      let ccond = expr_plan rt scope cond in
      let cthen = cstmt_of rt scope then_ in
      let celse = Option.map (cstmt_of rt scope) else_ in
      fun st ->
        if Item.effective_boolean_value (ccond st) then cthen st
        else (match celse with Some c -> c st | None -> Normal)
    | Stmt.Try (body, clauses) ->
      let cbody = cblock_plan rt scope body in
      let cclauses =
        List.map
          (fun c -> (c, cblock_plan rt scope c.Stmt.cc_body))
          clauses
      in
      fun st -> (
        match cbody st with
        | outcome -> outcome
        | exception Item.Error { code; message; items } -> (
          match
            List.find_opt
              (fun (c, _) -> Stmt.nametest_matches c.Stmt.cc_test code)
              cclauses
          with
          | None -> raise (Item.Error { code; message; items })
          | Some (clause, cb) ->
            let values =
              [
                [ Item.Atomic (Atomic.QName code) ];
                [ Item.Atomic (Atomic.String message) ];
                items;
              ]
            in
            let bindings =
              List.fold_left2
                (fun m v value -> Qmap.add v value m)
                st.bindings clause.Stmt.cc_vars
                (List.filteri
                   (fun i _ -> i < List.length clause.Stmt.cc_vars)
                   values)
            in
            cb { st with bindings }))
    | Stmt.Continue -> fun _ -> Continued
    | Stmt.Break -> fun _ -> Broke
    | Stmt.Update e ->
      fun st ->
        let pul = Xquery.Eval.eval_updating (compiled_ctx st) e in
        Xquery.Update.apply pul;
        Normal
  in
  fun st ->
    Instr.bump st.rt.instr Instr.K.xqse_statements;
    k st

and cbody_of rt outer (b : Stmt.block) : cblock =
  let has_frame = b.Stmt.decls <> [] in
  (* Declarations see the frame mid-construction: each init compiles
     against the entries declared so far (newest first — the runtime
     cons order, so slot positions line up even for shadowing
     redeclarations). Statements see the completed frame. *)
  let rev_cdecls, head =
    List.fold_left
      (fun (acc, head) d ->
        let scope = if has_frame then head :: outer else outer in
        let cinit =
          Option.map (cvalue_of rt scope) d.Stmt.bd_init
        in
        let cd st =
          let v = match cinit with Some ci -> ci st | None -> [] in
          let v =
            match (d.Stmt.bd_type, cinit) with
            | Some ty, Some _ ->
              Seqtype.check
                ~what:
                  (Printf.sprintf "$%s" (Qname.to_string d.Stmt.bd_var))
                ty v
            | _ -> v
          in
          declare_var st ?ty:d.Stmt.bd_type d.Stmt.bd_var v
        in
        (cd :: acc, d.Stmt.bd_var :: head))
      ([], []) b.Stmt.decls
  in
  let cdecls = List.rev rev_cdecls in
  let scope = if has_frame then head :: outer else outer in
  let cstmts = List.map (cstmt_of rt scope) b.Stmt.stmts in
  fun st ->
    List.iter (fun cd -> cd st) cdecls;
    let rec go = function
      | [] -> Normal
      | cs :: rest -> (match cs st with Normal -> go rest | out -> out)
    in
    go cstmts

and cblock_plan rt outer (b : Stmt.block) : cblock =
  let body = cbody_of rt outer b in
  (* a block with no declarations never touches its frame — skip it
     (and [cbody_of] correspondingly omits the frame image) *)
  if b.Stmt.decls = [] then body else fun st -> body (push_frame st)

and cached_cblock rt (b : Stmt.block) : cblock =
  match List.assq_opt b rt.cblocks with
  | Some cb -> cb
  | None ->
    (* top-level entry: procedure bodies and program blocks start on an
       empty frame stack (see [make_state]) *)
    let cb = cblock_plan rt [] b in
    rt.cblocks <- (b, cb) :: rt.cblocks;
    cb

and run_procedure rt proc arg_vals : Item.seq =
  let what = Qname.to_string proc.p_name in
  if List.length arg_vals <> List.length proc.p_params then
    Item.type_error
      (Printf.sprintf "procedure %s expects %d argument(s), got %d" what
         (List.length proc.p_params) (List.length arg_vals));
  let checked =
    List.map2
      (fun (pname, pty) v ->
        let v =
          match pty with
          | Some ty ->
            Seqtype.check
              ~what:
                (Printf.sprintf "argument $%s of %s" (Qname.to_string pname)
                   what)
              ty v
          | None -> v
        in
        (pname, v))
      proc.p_params arg_vals
  in
  let result =
    match proc.p_impl with
    | P_external f -> f (List.map snd checked)
    | P_block body -> (
      let bindings =
        List.fold_left
          (fun m (n, v) -> Qmap.add n v m)
          Qmap.empty checked
      in
      let st = make_state rt bindings in
      let outcome =
        if rt.plans then (cached_cblock rt body) st
        else exec_block_stmts (push_frame st) body
      in
      match outcome with
      | Returned v -> v
      | Normal -> []
      | Broke -> raise Break_outside_loop
      | Continued -> raise Continue_outside_loop)
  in
  match proc.p_return with
  | Some ty ->
    Seqtype.check ~what:(Printf.sprintf "result of %s" what) ty result
  | None -> result

let call_procedure rt name arg_vals =
  match find_procedure rt name (List.length arg_vals) with
  | Some proc -> run_procedure rt proc arg_vals
  | None ->
    Item.raise_error (Qname.err "XPST0017")
      (Printf.sprintf "unknown procedure %s/%d" (Qname.to_string name)
         (List.length arg_vals))

(* Verdict of a declared procedure body, so {!Xquery.Purity} (and the
   streaming gates behind it) can classify calls to a readonly procedure
   precisely instead of treating them as opaque externals. *)
let procedure_verdict reg (b : Stmt.block) =
  let env = Xquery.Purity.env_for ~registry:reg [] in
  block_verdict b
    ~purity:(fun e ->
      let v = Xquery.Purity.analyze env e in
      (v.Xquery.Purity.effects, v.Xquery.Purity.fallible, v.Xquery.Purity.constructs))

let declare_procedure rt proc =
  let key =
    (proc.p_name.Qname.uri, proc.p_name.Qname.local, List.length proc.p_params)
  in
  if Hashtbl.mem rt.procs key then
    Item.raise_error (Qname.err "XQST0034")
      (Printf.sprintf "procedure %s/%d is already declared"
         (Qname.to_string proc.p_name)
         (List.length proc.p_params));
  Hashtbl.add rt.procs key proc;
  if proc.p_readonly then
    (* a readonly procedure is callable as a function from XQuery; its
       body's purity verdict rides along so the analyzer can classify it *)
    let purity =
      match proc.p_impl with
      | P_block body -> Some (procedure_verdict rt.reg body)
      | P_external _ -> None
    in
    Xquery.Context.register_external rt.reg ~side_effects:false ?purity
      proc.p_name
      (List.length proc.p_params)
      (fun args -> run_procedure rt proc args)

(* Flatten the runtime chain's procedures (innermost declaration wins)
   into a fresh parentless runtime over [reg]. The fork shares no
   mutable state with the source — its own flags, compilation unit and
   compiled-block memos — so a worker domain can run against it while
   the source keeps serving. Readonly procedures re-home their function
   registration in [reg]: the entry copied in from the source's registry
   closes over the *source* runtime (and would race on its plan memos),
   so it is replaced by one closing over the fork. *)
let fork_runtime ?(trace = fun _ -> ()) ?instr src reg =
  let instr = match instr with Some i -> i | None -> src.instr in
  let fresh =
    {
      reg;
      procs = Hashtbl.create 16;
      parent = None;
      trace;
      instr;
      streaming = src.streaming;
      plans = src.plans;
      purity = src.purity;
      cache = (fun () -> None);
      comp = None;
      cblocks = [];
    }
  in
  let rec collect rt =
    Hashtbl.iter
      (fun key p ->
        if not (Hashtbl.mem fresh.procs key) then Hashtbl.add fresh.procs key p)
      rt.procs;
    Option.iter collect rt.parent
  in
  collect src;
  Hashtbl.iter
    (fun _ p ->
      if p.p_readonly then begin
        let arity = List.length p.p_params in
        Xquery.Context.unregister reg p.p_name arity;
        let purity =
          match p.p_impl with
          | P_block body -> Some (procedure_verdict reg body)
          | P_external _ -> None
        in
        Xquery.Context.register_external reg ~side_effects:false ?purity
          p.p_name arity
          (fun args -> run_procedure fresh p args)
      end)
    fresh.procs;
  fresh

let finish = function
  | Returned v -> v
  | Normal -> []
  | Broke -> raise Break_outside_loop
  | Continued -> raise Continue_outside_loop

let exec_block rt ?(vars = []) block =
  let bindings =
    List.fold_left (fun m (n, v) -> Qmap.add n v m) Qmap.empty vars
  in
  let st = make_state rt bindings in
  finish
    (if rt.plans then (cached_cblock rt block) st
     else exec_block_stmts (push_frame st) block)

let compile_block rt block : cblock = cblock_plan rt [] block

let run_block rt ?(vars = []) (cb : cblock) =
  let bindings =
    List.fold_left (fun m (n, v) -> Qmap.add n v m) Qmap.empty vars
  in
  finish (cb (make_state rt bindings))
