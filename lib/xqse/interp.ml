open Xdm
module Qmap = Xquery.Context.Qmap

exception Break_outside_loop
exception Continue_outside_loop

type procedure = {
  p_name : Qname.t;
  p_params : (Qname.t * Seqtype.t option) list;
  p_return : Seqtype.t option;
  p_readonly : bool;
  p_impl : impl;
}

and impl = P_block of Stmt.block | P_external of (Item.seq list -> Item.seq)

type runtime = {
  reg : Xquery.Context.registry;
  procs : (string * string * int, procedure) Hashtbl.t;
      (* keyed by (uri, local, arity) — prefixes are not significant *)
  parent : runtime option;
  mutable trace : string -> unit;
  instr : Instr.t;
  mutable streaming : bool;
  mutable purity : Xquery.Ast.expr -> bool * bool * bool;
      (* (effects, fallible, constructs) — the compile-time purity
         verdicts the streaming evaluator gates on; conservative
         (all true) until the session installs a real environment *)
}

let create_runtime ?(trace = fun _ -> ()) ?instr ?parent reg =
  let instr =
    match (instr, parent) with
    | Some i, _ -> i
    | None, Some p -> p.instr
    | None, None -> Instr.disabled
  in
  let streaming = match parent with Some p -> p.streaming | None -> true in
  let purity =
    match parent with Some p -> p.purity | None -> fun _ -> (true, true, true)
  in
  { reg; procs = Hashtbl.create 16; parent; trace; instr; streaming; purity }

let registry rt = rt.reg
let set_trace rt f = rt.trace <- f
let instr rt = rt.instr
let streaming rt = rt.streaming
let set_streaming rt b = rt.streaming <- b
let set_purity rt f = rt.purity <- f

let rec find_procedure rt (name : Qname.t) arity =
  match Hashtbl.find_opt rt.procs (name.Qname.uri, name.Qname.local, arity) with
  | Some p -> Some p
  | None -> (
    match rt.parent with
    | Some parent -> find_procedure parent name arity
    | None -> None)

(* ------------------------------------------------------------------ *)
(* Execution state                                                      *)
(* ------------------------------------------------------------------ *)

(* A frame holds the assignable block variables of one block (value ref
   plus declared type). The paper specifies that only block-declared
   variables may be assigned. *)
type frame = (Qname.t * (Item.seq ref * Seqtype.t option)) list ref

type state = {
  rt : runtime;
  frames : frame list;  (* innermost first *)
  bindings : Item.seq Qmap.t;  (* read-only: params, iterate vars *)
}

type outcome =
  | Normal
  | Returned of Item.seq
  | Broke
  | Continued

let push_frame st = { st with frames = ref [] :: st.frames }

let declare_var st ?ty name v =
  match st.frames with
  | [] -> invalid_arg "Interp.declare_var: no frame"
  | frame :: _ -> frame := (name, (ref v, ty)) :: !frame

let find_entry st name =
  let rec go = function
    | [] -> None
    | frame :: rest -> (
      match List.find_opt (fun (n, _) -> Qname.equal n name) !frame with
      | Some (_, entry) -> Some entry
      | None -> go rest)
  in
  go st.frames

(* Snapshot of all variables in scope, for expression evaluation. *)
let scope_vars st =
  let m = st.bindings in
  (* outer frames first so inner frames win *)
  List.fold_left
    (fun m frame ->
      List.fold_left (fun m (n, (r, _)) -> Qmap.add n !r m) m (List.rev !frame))
    m (List.rev st.frames)

let eval_ctx st =
  let ctx =
    Xquery.Context.make_dynamic ~trace:st.rt.trace ~instr:st.rt.instr
      ~streaming:st.rt.streaming ~purity:st.rt.purity st.rt.reg
  in
  let globals = Xquery.Context.globals st.rt.reg in
  let vars =
    Qmap.union (fun _ _inner v -> Some v) globals (scope_vars st)
  in
  Xquery.Context.with_vars ctx vars

let eval_expr st e = Xquery.Eval.eval (eval_ctx st) e

(* Purity verdict of a statement block: a statement's verdict joins the
   verdicts of every embedded expression ([purity] returns the
   compile-time [(effects, fallible, constructs)] triple of one
   expression); [update] statements are effectful by definition. Blocks
   are always considered fallible — sequence-type checks on parameters,
   results and [set] targets can raise regardless of the body. *)
let block_verdict ~purity (b : Stmt.block) =
  let effects = ref false in
  let constructs = ref false in
  let note e =
    let ef, _fallible, co = purity e in
    if ef then effects := true;
    if co then constructs := true
  in
  let rec vstmt = function
    | Stmt.V_expr e -> note e
    | Stmt.V_proc_block b -> block b
  and stmt = function
    | Stmt.Block b -> block b
    | Stmt.Set (_, v) -> vstmt v
    | Stmt.Return_value v | Stmt.Expr_stmt v -> vstmt v
    | Stmt.While (e, b) ->
      note e;
      block b
    | Stmt.Iterate { source; body; _ } ->
      vstmt source;
      block body
    | Stmt.If (c, t, e) ->
      note c;
      stmt t;
      Option.iter stmt e
    | Stmt.Try (b, clauses) ->
      block b;
      List.iter (fun c -> block c.Stmt.cc_body) clauses
    | Stmt.Continue | Stmt.Break -> ()
    | Stmt.Update e ->
      effects := true;
      note e
  and block b =
    List.iter (fun d -> Option.iter vstmt d.Stmt.bd_init) b.Stmt.decls;
    List.iter stmt b.Stmt.stmts
  in
  block b;
  (!effects, true, !constructs)

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

let rec exec_value_stmt st (v : Stmt.value_stmt) : Item.seq =
  match v with
  | Stmt.V_expr (Xquery.Ast.Call (name, args) as e) -> (
    (* a call resolves to a procedure when one is declared, else it is an
       ordinary expression (paper III.B.8) *)
    match find_procedure st.rt name (List.length args) with
    | Some proc ->
      let arg_vals = List.map (eval_expr st) args in
      run_procedure st.rt proc arg_vals
    | None -> eval_expr st e)
  | Stmt.V_expr e -> eval_expr st e
  | Stmt.V_proc_block block -> (
    (* in-place procedure: fresh assignable scope; enclosing variables
       remain visible read-only *)
    let st' = { st with frames = []; bindings = scope_vars st } in
    match exec_block_stmts (push_frame st') block with
    | Returned v -> v
    | Normal -> []
    | Broke -> raise Break_outside_loop
    | Continued -> raise Continue_outside_loop)

(* Cursor form of [exec_value_stmt], for consumers (iterate) that can
   drive the source lazily. Procedure calls and in-place procedure
   blocks execute statements (side effects must all happen before the
   first pull), so they materialize; a plain expression streams through
   [Eval.eval_cur]. *)
and exec_value_stmt_cur st (v : Stmt.value_stmt) : Item.t Cursor.t =
  match v with
  | Stmt.V_expr (Xquery.Ast.Call (name, args))
    when find_procedure st.rt name (List.length args) <> None ->
    Cursor.of_list (exec_value_stmt st v)
  | Stmt.V_expr e -> Xquery.Eval.eval_cur (eval_ctx st) e
  | Stmt.V_proc_block _ -> Cursor.of_list (exec_value_stmt st v)

and exec_stmt st (s : Stmt.statement) : outcome =
  Instr.bump st.rt.instr Instr.K.xqse_statements;
  match s with
  | Stmt.Block b -> exec_block_stmts (push_frame st) b
  | Stmt.Set (name, v) -> (
    match find_entry st name with
    | None ->
      Item.raise_error (Qname.err "XQSE0001")
        (Printf.sprintf
           "cannot assign to $%s: only block-declared variables may be \
            assigned"
           (Qname.to_string name))
    | Some (r, ty) ->
      (* on error the variable keeps its previous value (III.B.6) *)
      let value = exec_value_stmt st v in
      let value =
        match ty with
        | Some ty ->
          Seqtype.check ~what:(Printf.sprintf "$%s" (Qname.to_string name)) ty
            value
        | None -> value
      in
      r := value;
      Normal)
  | Stmt.Return_value v -> Returned (exec_value_stmt st v)
  | Stmt.Expr_stmt v ->
    ignore (exec_value_stmt st v);
    Normal
  | Stmt.While (test, body) ->
    let rec loop () =
      if Item.effective_boolean_value (eval_expr st test) then
        match exec_block_stmts (push_frame st) body with
        | Normal | Continued -> loop ()
        | Broke -> Normal
        | Returned v -> Returned v
      else Normal
    in
    loop ()
  | Stmt.Iterate { var; pos; source; body } ->
    let run_body i item =
      let bindings = Qmap.add var [ item ] st.bindings in
      let bindings =
        match pos with
        | Some pv -> Qmap.add pv [ Item.Atomic (Atomic.Integer i) ] bindings
        | None -> bindings
      in
      let st' = { st with bindings } in
      exec_block_stmts (push_frame st') body
    in
    (* A constructing body forbids lazy driving: node allocation order
       decides cross-tree document order, and interleaving the body's
       constructions with per-pull construction in the source (row
       elements) would order them differently than the eager model,
       which finishes the whole binding sequence first. *)
    let _, _, body_constructs = block_verdict ~purity:st.rt.purity body in
    let cur = exec_value_stmt_cur st source in
    if Cursor.is_pure cur && not body_constructs then
      (* pure source: remaining pulls cannot raise or have effects, so
         driving one binding at a time is indistinguishable from the
         eager loop — except that [break]/[return] abandon the rest *)
      let rec loop i =
        match Cursor.next cur with
        | None -> Normal
        | Some item -> (
          match run_body i item with
          | Normal | Continued -> loop (i + 1)
          | Broke ->
            Cursor.abandon cur;
            Normal
          | Returned v ->
            Cursor.abandon cur;
            Returned v
          | exception e ->
            Cursor.abandon cur;
            raise e)
      in
      loop 1
    else begin
      (* impure source: the eager model evaluates the whole binding
         sequence (all its effects and errors) before any body statement
         runs — materialize to keep that ordering *)
      let binding_seq =
        Cursor.to_list ~instr:st.rt.instr cur
      in
      let rec loop i = function
        | [] -> Normal
        | item :: rest -> (
          match run_body i item with
          | Normal | Continued -> loop (i + 1) rest
          | Broke -> Normal
          | Returned v -> Returned v)
      in
      loop 1 binding_seq
    end
  | Stmt.If (cond, then_, else_) ->
    if Item.effective_boolean_value (eval_expr st cond) then
      exec_stmt st then_
    else (
      match else_ with Some s -> exec_stmt st s | None -> Normal)
  | Stmt.Try (body, clauses) -> (
    match exec_block_stmts (push_frame st) body with
    | outcome -> outcome
    | exception Item.Error { code; message; items } -> (
      match
        List.find_opt
          (fun c -> Stmt.nametest_matches c.Stmt.cc_test code)
          clauses
      with
      | None -> raise (Item.Error { code; message; items })
      | Some clause ->
        (* bind up to three variables: error QName, message, diagnostics
           (paper III.B.13) *)
        let values =
          [
            [ Item.Atomic (Atomic.QName code) ];
            [ Item.Atomic (Atomic.String message) ];
            items;
          ]
        in
        let bindings =
          List.fold_left2
            (fun m v value -> Qmap.add v value m)
            st.bindings clause.Stmt.cc_vars
            (List.filteri
               (fun i _ -> i < List.length clause.Stmt.cc_vars)
               values)
        in
        exec_block_stmts (push_frame { st with bindings }) clause.Stmt.cc_body))
  | Stmt.Continue -> Continued
  | Stmt.Break -> Broke
  | Stmt.Update e ->
    (* one snapshot: evaluate the updating expression, then apply its
       pending update list (paper III.C.14) *)
    let pul = Xquery.Eval.eval_updating (eval_ctx st) e in
    Xquery.Update.apply pul;
    Normal

and exec_block_stmts st (b : Stmt.block) : outcome =
  (* execute declarations in order, then statements in order (III.B.5) *)
  List.iter
    (fun d ->
      let v =
        match d.Stmt.bd_init with
        | Some init -> exec_value_stmt st init
        | None -> []
        (* the paper's own while example reads a declared-but-
           uninitialized variable, so uninitialized variables hold the
           empty sequence here; see DESIGN.md *)
      in
      let v =
        match d.Stmt.bd_type with
        | Some ty when d.Stmt.bd_init <> None ->
          Seqtype.check
            ~what:(Printf.sprintf "$%s" (Qname.to_string d.Stmt.bd_var))
            ty v
        | _ -> v
      in
      declare_var st ?ty:d.Stmt.bd_type d.Stmt.bd_var v)
    b.Stmt.decls;
  let rec go = function
    | [] -> Normal
    | s :: rest -> (
      match exec_stmt st s with Normal -> go rest | out -> out)
  in
  go b.Stmt.stmts

and run_procedure rt proc arg_vals : Item.seq =
  let what = Qname.to_string proc.p_name in
  if List.length arg_vals <> List.length proc.p_params then
    Item.type_error
      (Printf.sprintf "procedure %s expects %d argument(s), got %d" what
         (List.length proc.p_params) (List.length arg_vals));
  let checked =
    List.map2
      (fun (pname, pty) v ->
        let v =
          match pty with
          | Some ty ->
            Seqtype.check
              ~what:
                (Printf.sprintf "argument $%s of %s" (Qname.to_string pname)
                   what)
              ty v
          | None -> v
        in
        (pname, v))
      proc.p_params arg_vals
  in
  let result =
    match proc.p_impl with
    | P_external f -> f (List.map snd checked)
    | P_block body -> (
      let bindings =
        List.fold_left
          (fun m (n, v) -> Qmap.add n v m)
          Qmap.empty checked
      in
      let st = { rt; frames = []; bindings } in
      match exec_block_stmts (push_frame st) body with
      | Returned v -> v
      | Normal -> []
      | Broke -> raise Break_outside_loop
      | Continued -> raise Continue_outside_loop)
  in
  match proc.p_return with
  | Some ty ->
    Seqtype.check ~what:(Printf.sprintf "result of %s" what) ty result
  | None -> result

let call_procedure rt name arg_vals =
  match find_procedure rt name (List.length arg_vals) with
  | Some proc -> run_procedure rt proc arg_vals
  | None ->
    Item.raise_error (Qname.err "XPST0017")
      (Printf.sprintf "unknown procedure %s/%d" (Qname.to_string name)
         (List.length arg_vals))

(* Verdict of a declared procedure body, so {!Xquery.Purity} (and the
   streaming gates behind it) can classify calls to a readonly procedure
   precisely instead of treating them as opaque externals. *)
let procedure_verdict reg (b : Stmt.block) =
  let env = Xquery.Purity.env_for ~registry:reg [] in
  block_verdict b
    ~purity:(fun e ->
      let v = Xquery.Purity.analyze env e in
      (v.Xquery.Purity.effects, v.Xquery.Purity.fallible, v.Xquery.Purity.constructs))

let declare_procedure rt proc =
  let key =
    (proc.p_name.Qname.uri, proc.p_name.Qname.local, List.length proc.p_params)
  in
  if Hashtbl.mem rt.procs key then
    Item.raise_error (Qname.err "XQST0034")
      (Printf.sprintf "procedure %s/%d is already declared"
         (Qname.to_string proc.p_name)
         (List.length proc.p_params));
  Hashtbl.add rt.procs key proc;
  if proc.p_readonly then
    (* a readonly procedure is callable as a function from XQuery; its
       body's purity verdict rides along so the analyzer can classify it *)
    let purity =
      match proc.p_impl with
      | P_block body -> Some (procedure_verdict rt.reg body)
      | P_external _ -> None
    in
    Xquery.Context.register_external rt.reg ~side_effects:false ?purity
      proc.p_name
      (List.length proc.p_params)
      (fun args -> run_procedure rt proc args)

let exec_block rt ?(vars = []) block =
  let bindings =
    List.fold_left (fun m (n, v) -> Qmap.add n v m) Qmap.empty vars
  in
  let st = { rt; frames = []; bindings } in
  match exec_block_stmts (push_frame st) block with
  | Returned v -> v
  | Normal -> []
  | Broke -> raise Break_outside_loop
  | Continued -> raise Continue_outside_loop
