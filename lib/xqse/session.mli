(** XQSE sessions: the top-level API for compiling and running XQSE
    programs.

    A session owns an XQuery engine (static context + function registry)
    and an XQSE procedure runtime. Hosts (the ALDSP dataspace) register
    external functions and procedures into the session; each program
    compiles against a copy so its own declarations do not leak. *)

open Xdm

type t

type config = {
  optimize : bool;  (** run the rewrite optimizer (default [true]) *)
  streaming : bool;
      (** pull-based cursor evaluation where the gates allow (default
          [true]); off forces eager materialization everywhere *)
  plans : bool;
      (** closure-compiled execution + plan caching (default [true]);
          off walks ASTs through the tree interpreter *)
  instr : Instr.t;  (** instrumentation handle (default {!Instr.disabled}) *)
  trace : (string -> unit) option;
      (** [fn:trace] destination; [None] notes into [instr]'s sink *)
  result_cache : Cache.handle option;
      (** data-service result cache (default [None] = off). The handle's
          store is shareable: identically-configured forks (e.g. the
          server's per-worker sessions) share entries, while the
          fingerprint prefix keeps differently-configured sessions on
          disjoint keys. *)
}
(** Everything configurable about a session, as one immutable value: fix
    it at {!create}, read it back with {!config}, or fork a
    differently-configured independent session with {!with_config} — no
    mutator calls to sequence, so a session can be handed to a worker
    domain without another thread's setter changing its behavior
    mid-flight. *)

val default_config : config
(** All defaults ([optimize]/[streaming]/[plans] on, {!Instr.disabled},
    trace into the instrumentation sink). Build variations as
    [{ default_config with streaming = false }]. *)

val create : ?optimize:bool -> ?instr:Instr.t -> ?config:config -> unit -> t
(** A fresh session configured by [config] (default {!default_config}).
    The legacy labelled arguments override the record's fields where
    given (they predate [config]; prefer the record in new code).
    [config.instr] is the session's instrumentation handle, shared with
    its engine, its XQSE runtime, and every program compiled in it. The
    handle identity is fixed at creation — enable it or swap its sink at
    any time and already-wired components report into it. *)

val config : t -> config
(** The session's current configuration (trace is always [Some]: the
    session's installed destination). *)

val with_config : t -> config -> t
(** [with_config s cfg] is an independent session configured by [cfg]
    over copies of everything [s] accreted — registered functions and
    procedures, loaded libraries, modules, documents, globals. Neither
    session sees the other's subsequent registrations, plan caches or
    global-variable updates, so forked sessions are safe to drive from
    separate worker domains (the host state captured inside registered
    external functions — e.g. a dataspace's sources — stays shared; the
    server serializes access to it). *)

val with_engine : Xquery.Engine.t -> t
(** Build a session around an existing engine (sharing its registry,
    static context and instrumentation handle). Sessions over one engine
    keep independent plan caches and procedure runtimes; registrations
    that touch the shared registry invalidate across all of them through
    the engine's generation. *)

val engine : t -> Xquery.Engine.t
val runtime : t -> Interp.runtime

val invalidate_plans : t -> unit
(** Flush the session's plan cache and compiled procedure bodies,
    bumping the session generation (flushed entries count on
    [plan.cache.invalidate]). Called automatically by every
    registration ({!register_function}, {!register_function_cursor},
    {!register_procedure}, {!register_module}) and by library loads. *)

val instr : t -> Instr.t
(** The handle given to {!create}. *)

val streaming : t -> bool

val set_streaming : t -> bool -> unit
(** Removed (the PR 7 deprecated shim): mutating a session another
    domain is executing against is a race. Set [streaming] in the
    {!config} record at creation, or use {!with_config} for a
    differently-configured fork.
    @raise Invalid_argument always, naming the replacement. *)

val set_plans : t -> bool -> unit
(** Removed, like {!set_streaming}: set [plans] in the {!config} record
    at creation, or use {!with_config}.
    @raise Invalid_argument always, naming the replacement. *)

val set_result_cache : t -> Cache.handle option -> unit
(** Install (or remove) the session's result cache. A mutator by
    necessity — the dataspace enables caching on an already-built
    session — but safe to call before handing the session to workers:
    {!with_config} forks inherit whatever [config] carries at fork
    time. *)

val result_cache : t -> Cache.handle option

type snapshot_scope = { scope : 'a. (unit -> 'a) -> 'a }
(** An ambient read-context wrapper: applied around every {!run},
    {!eval} and {!call} so all source reads of one query resolve
    against a single consistent cut. The data layer registers one that
    installs a pinned MVCC snapshot of every source table (see
    [Relational.Table.with_snapshot]); it must be reentrant — a nested
    query entry runs inside the outer scope unchanged. *)

val set_snapshot_scope : t -> snapshot_scope option -> unit
(** Install (or remove) the session's snapshot scope. Like
    {!set_result_cache}, a mutator by necessity (the dataspace wires it
    onto an already-built session); {!with_config} forks inherit the
    scope installed at fork time. *)

val declare_namespace : t -> string -> string -> unit
val set_trace : t -> (string -> unit) -> unit
(** Where [fn:trace] output goes for subsequently compiled programs
    (default: a note in the instrumentation trace). *)

val register_function :
  t ->
  ?side_effects:bool ->
  ?purity:bool * bool * bool ->
  Qname.t ->
  int ->
  (Item.seq list -> Item.seq) ->
  unit
(** Register a host function (callable from XQuery expressions).
    [purity] is the caller-vouched (effects, fallible, constructs)
    verdict — the dataspace passes [(false, true, true)] for its source
    reads so purity analysis, optimizer rewrites and result-cache
    admission can see through them; omitted means unknown (impure). *)

val register_function_cursor :
  t ->
  ?side_effects:bool ->
  ?purity:bool * bool * bool ->
  Qname.t ->
  int ->
  (Item.seq list -> Item.t Cursor.t) ->
  unit
(** Register a host function that produces its result as a pull-based
    cursor ({!Xdm.Cursor}); streaming consumers pull it lazily, eager
    call sites materialize it. *)

val register_procedure :
  t ->
  ?readonly:bool ->
  ?params:(Qname.t * Seqtype.t option) list ->
  ?return:Seqtype.t ->
  Qname.t ->
  int ->
  (Item.seq list -> Item.seq) ->
  unit
(** Register an external host procedure — e.g. the ALDSP-provided
    create/update/delete procedures of a physical data service. *)

val register_module : t -> string -> string -> unit
(** [register_module s uri source] adds an XQSE library program to the
    session's module library. A program whose prolog contains
    [import module namespace p = "uri"] causes the module to be loaded
    (once per session, recursively) before the program runs — this is
    how ALDSP data services reference one another. *)

val load_library : t -> string -> unit
(** Parse an XQSE program containing only declarations and install its
    functions and procedures permanently into the session (how ALDSP
    deploys data-service methods).
    @raise Xdm.Item.Error if the program has a query body. *)

type compiled

val compile : t -> string -> compiled
(** Parse an XQSE program and register its declarations against copies of
    the session registry/runtime. When the engine executes plans
    (see {!Xquery.Engine.plans}), the query body is closure-compiled
    inside the [compile] span, so {!run} measures pure execution.
    [queries.compiled] counts only successful compiles. *)

val compile_cached : t -> string -> compiled
(** {!compile} through the session's plan cache: a fingerprint-valid
    entry for the same program text is returned without recompiling
    (bumping [plan.cache.hit] and skipping the [compile] span entirely);
    otherwise [plan.cache.miss] is bumped {e before} compiling, so
    failed compiles are misses that never become plans. The fingerprint
    covers the engine and session generations plus the
    optimize/streaming/plans flags. Bypassed when plans are off. *)

type exec_opts = {
  vars : (Qname.t * Item.seq) list;  (** external variable bindings *)
  trace : (string -> unit) option;
      (** per-call [fn:trace] destination; [None] uses the session
          default (see {!set_trace}) *)
}

val default_exec_opts : exec_opts
(** No variables, session-default trace. Build custom options as
    [{ default_exec_opts with vars = ... }]. *)

val run : ?opts:exec_opts -> compiled -> Item.seq
(** Execute a compiled program: evaluate its global variables, then its
    query body (expression or block). Programs without a body return the
    empty sequence.

    When the calling domain carries an already-expired
    {!Resilience.Deadline}, execution fails fast with [err:RESX0005]
    before any statement runs — the server pool installs that deadline
    around each request, and {!Resilience.Control.guard} enforces the
    remaining budget at every source call below. *)

val eval : ?opts:exec_opts -> t -> string -> Item.seq
(** {!compile_cached} + {!run}: repeated program texts skip compilation
    entirely while the fingerprint holds. *)

val eval_to_string : ?opts:exec_opts -> t -> string -> string

type exec_result = {
  r_value : Item.seq;
  r_stats : Instr.stats;  (** counters/timers this execution added *)
}

val exec : ?opts:exec_opts -> t -> string -> exec_result
(** [compile] + [run] inside a [query] span, returning the result
    together with the instrumentation delta it caused — the one code
    path the CLI and the console share. With a disabled handle,
    [r_stats] is empty. *)

val call : t -> Qname.t -> Item.seq list -> Item.seq
(** Call a session procedure or function by name with evaluated
    arguments (procedures take precedence). *)

type explain = {
  ex_program : string;  (** the optimized program, pretty-printed *)
  ex_stats : Xquery.Optimizer.stats;
      (** total rewrite counts across all optimized bodies *)
  ex_log : string list;
      (** one line per rewrite plus per-iteration summaries, in order *)
}

val explain : t -> string -> explain
(** Parse a program and run the optimizer over its function bodies,
    procedure bodies and query body (like {!compile} would), recording
    every rewrite. Does not execute anything and does not install
    declarations into the session. *)
