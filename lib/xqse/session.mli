(** XQSE sessions: the top-level API for compiling and running XQSE
    programs.

    A session owns an XQuery engine (static context + function registry)
    and an XQSE procedure runtime. Hosts (the ALDSP dataspace) register
    external functions and procedures into the session; each program
    compiles against a copy so its own declarations do not leak. *)

open Xdm

type t

val create : ?optimize:bool -> unit -> t
val engine : t -> Xquery.Engine.t
val runtime : t -> Interp.runtime
val declare_namespace : t -> string -> string -> unit
val set_trace : t -> (string -> unit) -> unit
(** Where [fn:trace] output goes for subsequently compiled programs. *)

val register_function :
  t -> ?side_effects:bool -> Qname.t -> int -> (Item.seq list -> Item.seq) -> unit
(** Register a host function (callable from XQuery expressions). *)

val register_procedure :
  t ->
  ?readonly:bool ->
  ?params:(Qname.t * Seqtype.t option) list ->
  ?return:Seqtype.t ->
  Qname.t ->
  int ->
  (Item.seq list -> Item.seq) ->
  unit
(** Register an external host procedure — e.g. the ALDSP-provided
    create/update/delete procedures of a physical data service. *)

val register_module : t -> string -> string -> unit
(** [register_module s uri source] adds an XQSE library program to the
    session's module library. A program whose prolog contains
    [import module namespace p = "uri"] causes the module to be loaded
    (once per session, recursively) before the program runs — this is
    how ALDSP data services reference one another. *)

val load_library : t -> string -> unit
(** Parse an XQSE program containing only declarations and install its
    functions and procedures permanently into the session (how ALDSP
    deploys data-service methods).
    @raise Xdm.Item.Error if the program has a query body. *)

type compiled

val compile : t -> string -> compiled
(** Parse an XQSE program and register its declarations against copies of
    the session registry/runtime. *)

val run : ?vars:(Qname.t * Item.seq) list -> compiled -> Item.seq
(** Execute a compiled program: evaluate its global variables, then its
    query body (expression or block). Programs without a body return the
    empty sequence. *)

val eval : ?vars:(Qname.t * Item.seq) list -> t -> string -> Item.seq
(** [compile] + [run]. *)

val eval_to_string : ?vars:(Qname.t * Item.seq) list -> t -> string -> string

val call : t -> Qname.t -> Item.seq list -> Item.seq
(** Call a session procedure or function by name with evaluated
    arguments (procedures take precedence). *)

type explain = {
  ex_program : string;  (** the optimized program, pretty-printed *)
  ex_stats : Xquery.Optimizer.stats;
      (** total rewrite counts across all optimized bodies *)
  ex_log : string list;
      (** one line per rewrite plus per-iteration summaries, in order *)
}

val explain : t -> string -> explain
(** Parse a program and run the optimizer over its function bodies,
    procedure bodies and query body (like {!compile} would), recording
    every rewrite. Does not execute anything and does not install
    declarations into the session. *)
