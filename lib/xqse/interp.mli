(** The XQSE interpreter: statement execution per the paper's extended
    processing model (section III.B.1).

    Statements execute in order; side effects (external procedure calls,
    applied pending-update lists, variable assignments) are visible to
    every subsequent statement and expression. Expressions are evaluated
    by the unmodified XQuery evaluator over a read-only snapshot of the
    variables in scope. *)

open Xdm

type procedure = {
  p_name : Qname.t;
  p_params : (Qname.t * Seqtype.t option) list;
  p_return : Seqtype.t option;
  p_readonly : bool;
  p_impl : impl;
}

and impl =
  | P_block of Stmt.block
  | P_external of (Item.seq list -> Item.seq)
      (** host procedure — the ALDSP-provided create/update/delete, etc. *)

type runtime
(** Shared execution environment: the function registry (shared with the
    XQuery engine), the procedure table, and the trace sink. *)

val create_runtime :
  ?trace:(string -> unit) ->
  ?instr:Instr.t ->
  ?parent:runtime ->
  Xquery.Context.registry ->
  runtime
(** [parent] makes another runtime's procedures visible (used to layer a
    per-program runtime over a session runtime). [instr] defaults to the
    parent's handle (or {!Instr.disabled} without a parent); every
    executed statement bumps the [xqse.statements] counter on it. *)

val fork_runtime :
  ?trace:(string -> unit) ->
  ?instr:Instr.t ->
  runtime ->
  Xquery.Context.registry ->
  runtime
(** [fork_runtime src reg] is a fresh parentless runtime over [reg]
    carrying every procedure visible from [src] (innermost declaration
    wins) and [src]'s current flags and purity environment, but none of
    its mutable state — a worker can execute against the fork while the
    source keeps serving. [reg] should be a copy of [src]'s registry:
    readonly procedures get their function entry re-registered in it so
    the closure captures the fork (the copied entry would otherwise call
    back into [src]). *)

val registry : runtime -> Xquery.Context.registry
val set_trace : runtime -> (string -> unit) -> unit
val instr : runtime -> Instr.t

val streaming : runtime -> bool
val set_streaming : runtime -> bool -> unit
(** Whether expression evaluation (and the [iterate] loop) may run
    pull-based cursor pipelines. Defaults to the parent's setting, or
    [true] without a parent; results are identical either way. *)

val plans : runtime -> bool
val set_plans : runtime -> bool -> unit
(** Whether blocks and procedures execute through compiled statement
    plans (closures built once per block, expressions closure-compiled
    through {!Xquery.Eval.compile}) instead of the tree-walking
    interpreter. Defaults to the parent's setting, or [true] without a
    parent; results, effects, errors and counters are identical either
    way — the differential corpus compares the two. *)

val invalidate_plans : runtime -> unit
(** Drop every compiled plan held by this runtime (the expression
    compiler and all compiled procedure bodies). Must be called after
    anything is registered into the runtime's registry from outside, so
    stale name resolutions can never be replayed. *)

val compiler : runtime -> Xquery.Eval.compiler
(** The runtime's expression-compilation unit (built on first use, over
    the runtime's registry and purity environment). The session compiles
    query-body expressions through it so they share compiled
    user-function plans with statement blocks. *)

val set_purity : runtime -> (Xquery.Ast.expr -> bool * bool * bool) -> unit
(** Install the compile-time [(effects, fallible, constructs)] verdicts
    the streaming evaluator gates on (see {!Xquery.Engine.purity_fn}).
    Defaults to the parent's, or all-[true] (fully conservative) without
    a parent. *)

val set_cache : runtime -> (unit -> Cache.bound option) -> unit
(** Install the result-cache view supplier threaded into every
    evaluation context. A supplier (re-invoked per context) rather than
    a value so keys always carry the session's current fingerprint.
    Defaults to the parent's, or [fun () -> None]; {!fork_runtime}
    resets it — the forked session installs its own. *)

val declare_procedure : runtime -> procedure -> unit
(** Add a procedure. Readonly procedures are additionally registered as
    functions in the registry so XQuery expressions can call them (paper
    section III.A).
    @raise Xdm.Item.Error [err:XQST0034] on duplicates. *)

val find_procedure : runtime -> Qname.t -> int -> procedure option

val call_procedure : runtime -> Qname.t -> Item.seq list -> Item.seq
(** Execute a procedure with evaluated arguments; the result is the value
    of its [return value] statement, or the empty sequence. *)

val exec_block :
  runtime -> ?vars:(Qname.t * Item.seq) list -> Stmt.block -> Item.seq
(** Execute a block as a query body: the result is the value of the
    [return value] statement that stops execution, or the empty
    sequence (paper III.B.5). [vars] are external read-only bindings.
    Dispatches on {!plans}: compiled blocks are memoized per runtime, so
    re-executing the same block skips compilation. *)

type cblock
(** A statement block compiled to closures, ready to run. Valid for the
    runtime it was compiled under, until that runtime's registry or
    purity environment changes (see {!invalidate_plans}). *)

val compile_block : runtime -> Stmt.block -> cblock

val run_block :
  runtime -> ?vars:(Qname.t * Item.seq) list -> cblock -> Item.seq
(** Run a compiled block as a query body — same contract as
    {!exec_block}, minus the compile. The session caches the [cblock]
    in its plan cache and forces it inside the [compile] span. *)

exception Break_outside_loop
exception Continue_outside_loop
