open Xdm
module Ctx = Xquery.Context

type config = {
  optimize : bool;
  streaming : bool;
  plans : bool;
  instr : Instr.t;
  trace : (string -> unit) option;
  result_cache : Cache.handle option;
      (* shared result-cache store; identically-configured forks land on
         the same keys and share entries, differently-configured ones
         get disjoint keys via the fingerprint prefix *)
}

let default_config =
  {
    optimize = true;
    streaming = true;
    plans = true;
    instr = Instr.disabled;
    trace = None;
    result_cache = None;
  }

(* An ambient read-context wrapper installed by the data layer: the
   dataspace registers a scope that pins a consistent snapshot of every
   source table for the duration of a query (see
   [Relational.Table.with_snapshot]). Polymorphic so it wraps both
   value- and cursor-producing entry points. *)
type snapshot_scope = { scope : 'a. (unit -> 'a) -> 'a }

type t = {
  eng : Xquery.Engine.t;
  rt : Interp.runtime;
  mutable trace : string -> unit;
  mutable snapshot_scope : snapshot_scope option;
  modules : (string, string) Hashtbl.t;  (* module uri -> source *)
  loaded_modules : (string, unit) Hashtbl.t;
  s_generation : int Stdlib.Atomic.t;
      (* bumped on every session-level static-context change (procedure
         or module registration, library load); part of the plan-cache
         fingerprint alongside the engine's generation *)
  cache_lock : Mutex.t;  (* guards [cache] *)
  cache : (string, cache_entry) Hashtbl.t;  (* program text → plan *)
  mutable result_cache : Cache.handle option;
      (* data-service result cache (lib/cache); [None] = caching off *)
}

and compiled = {
  c_session : t;
  c_registry : Ctx.registry;
  c_runtime : Interp.runtime;
  c_vars : Xquery.Ast.var_decl list;
  c_body : Stmt.query_body option;
  c_env : Xquery.Purity.env;  (* for the evaluator's streaming gates *)
  c_plan : cplan Lazy.t;
      (* the closure-compiled body; forced inside the compile span when
         plans are enabled so the compile/run span split stays honest *)
}

and cplan =
  | CP_none
  | CP_expr of Xquery.Eval.plan
  | CP_block of Interp.cblock

and cache_entry = {
  ce_fingerprint : int * int * bool * bool * bool;
      (* (engine generation, session generation, optimize, streaming,
         plans) the entry was compiled under; any mismatch is a miss *)
  ce_compiled : compiled;
}

(* Same bound and flush-wholesale policy as the engine's cache; an
   overflow flush is not an invalidation (no context change), so it does
   not count on [plan.cache.invalidate]. *)
let cache_cap = 256

let with_engine eng =
  let instr = Xquery.Engine.instr eng in
  (* default fn:trace destination: a note in the instrumentation trace
     (a no-op while the handle is disabled) *)
  let trace m = Instr.note instr ("trace: " ^ m) in
  let rt = Interp.create_runtime ~trace ~instr (Xquery.Engine.registry eng) in
  {
    eng;
    rt;
    trace;
    snapshot_scope = None;
    modules = Hashtbl.create 8;
    loaded_modules = Hashtbl.create 8;
    s_generation = Stdlib.Atomic.make 0;
    cache_lock = Mutex.create ();
    cache = Hashtbl.create 32;
    result_cache = None;
  }

let instr_of s = Xquery.Engine.instr s.eng

(* Result-cache binding: the store is shared, the keys are not — every
   key is prefixed with the session's *current* fingerprint, so a
   registration (either generation) or a flag difference moves a session
   onto fresh keys while identically-configured forks keep sharing. *)
let fingerprint_string s =
  Printf.sprintf "%d.%d.%b.%b.%b"
    (Xquery.Engine.generation s.eng)
    (Stdlib.Atomic.get s.s_generation)
    (Xquery.Engine.optimizing s.eng)
    (Xquery.Engine.streaming s.eng)
    (Xquery.Engine.plans s.eng)

let cache_bound s =
  Option.map
    (fun h ->
      Cache.bind h ~fingerprint:(fingerprint_string s) ~instr:(instr_of s))
    s.result_cache

let set_result_cache s h =
  s.result_cache <- h;
  Interp.set_cache s.rt (fun () -> cache_bound s)

let result_cache s = s.result_cache

let create ?optimize ?instr ?config () =
  let cfg = Option.value config ~default:default_config in
  (* the legacy labelled arguments override the record so existing
     [create ~optimize ~instr ()] call sites keep their meaning *)
  let cfg =
    match optimize with Some b -> { cfg with optimize = b } | None -> cfg
  in
  let cfg = match instr with Some i -> { cfg with instr = i } | None -> cfg in
  let eng =
    Xquery.Engine.create ~optimize:cfg.optimize ~streaming:cfg.streaming
      ~instr:cfg.instr ()
  in
  Xquery.Engine.set_plans eng cfg.plans;
  let s = with_engine eng in
  Interp.set_streaming s.rt cfg.streaming;
  Interp.set_plans s.rt cfg.plans;
  (match cfg.trace with
  | Some f ->
    s.trace <- f;
    Interp.set_trace s.rt f
  | None -> ());
  set_result_cache s cfg.result_cache;
  s

let engine s = s.eng
let runtime s = s.rt
let instr s = Xquery.Engine.instr s.eng
let streaming s = Xquery.Engine.streaming s.eng

let config s =
  {
    optimize = Xquery.Engine.optimizing s.eng;
    streaming = Xquery.Engine.streaming s.eng;
    plans = Xquery.Engine.plans s.eng;
    instr = Xquery.Engine.instr s.eng;
    trace = Some s.trace;
    result_cache = s.result_cache;
  }

(* The PR 7 mutator shims are gone: a session whose flags never move
   underneath it can be handed to a worker without aliasing surprises,
   and every caller migrated to the immutable config long ago. The
   stubs stay one release so an out-of-tree caller gets a pointed
   message instead of an unbound-value error. *)
let removed name =
  invalid_arg
    (Printf.sprintf
       "Xqse.Session.%s was removed: set the flag in the config record at \
        create, or fork a reconfigured session with with_config"
       name)

let set_streaming _ _ = (removed "set_streaming" : unit)
let set_plans _ _ = (removed "set_plans" : unit)

(* Fork: an independent session over copies of everything the source
   accreted (registrations, procedures, loaded libraries, modules,
   documents), configured by [cfg]. Shares no mutable state with the
   source — each side's registrations, plan caches and globals evolve
   independently — so per-worker sessions forked off one prepared
   template are safe to drive from separate domains while the template's
   external functions (e.g. a dataspace's reads) execute against the
   shared backing sources. *)
let with_config s (cfg : config) =
  let eng =
    Xquery.Engine.fork ~optimize:cfg.optimize ~streaming:cfg.streaming
      ~plans:cfg.plans ~instr:cfg.instr s.eng
  in
  let trace =
    match cfg.trace with
    | Some f -> f
    | None -> fun m -> Instr.note cfg.instr ("trace: " ^ m)
  in
  let rt =
    Interp.fork_runtime ~trace ~instr:cfg.instr s.rt
      (Xquery.Engine.registry eng)
  in
  Interp.set_streaming rt cfg.streaming;
  Interp.set_plans rt cfg.plans;
  let fork =
    {
      eng;
      rt;
      trace;
      snapshot_scope = s.snapshot_scope;
      modules = Hashtbl.copy s.modules;
      loaded_modules = Hashtbl.copy s.loaded_modules;
      s_generation = Stdlib.Atomic.make (Stdlib.Atomic.get s.s_generation);
      cache_lock = Mutex.create ();
      cache = Hashtbl.create 32;
      result_cache = None;
    }
  in
  set_result_cache fork cfg.result_cache;
  fork

(* Any session-level change to what programs compile against makes every
   cached program plan stale: bump the generation, drop the session
   runtime's compiled procedure bodies, and flush the cache (counting
   the flushed entries, like the engine does). *)
let invalidate_plans s =
  Stdlib.Atomic.incr s.s_generation;
  Interp.invalidate_plans s.rt;
  Mutex.protect s.cache_lock (fun () ->
      let n = Hashtbl.length s.cache in
      if n > 0 then begin
        Instr.bump (instr s) ~n Instr.K.plan_cache_invalidate;
        Hashtbl.reset s.cache
      end)

let declare_namespace s prefix uri = Xquery.Engine.declare_namespace s.eng prefix uri

let set_trace s f =
  s.trace <- f;
  Interp.set_trace s.rt f

(* Mutate-then-invalidate (like the engine's registrations): the change
   lands before the generations move, so a compile racing it can never
   cache a pre-change snapshot under the post-change fingerprint. *)
let register_function s ?side_effects ?purity name arity impl =
  Xquery.Engine.register_external s.eng ?side_effects ?purity name arity impl;
  invalidate_plans s

let register_function_cursor s ?side_effects ?purity name arity impl =
  Xquery.Engine.register_external_cursor s.eng ?side_effects ?purity name arity
    impl;
  invalidate_plans s

let register_procedure s ?(readonly = false) ?params ?return name arity impl =
  let params =
    match params with
    | Some ps -> ps
    | None -> List.init arity (fun i -> (Qname.local (Printf.sprintf "p%d" i), None))
  in
  Interp.declare_procedure s.rt
    {
      Interp.p_name = name;
      p_params = params;
      p_return = return;
      p_readonly = readonly;
      p_impl = Interp.P_external impl;
    };
  invalidate_plans s;
  (* a readonly procedure also registers as a function in the registry
     shared with the engine (and with sibling sessions over the same
     engine) — their cached plans must go stale too *)
  Xquery.Engine.invalidate_plans s.eng

(* ------------------------------------------------------------------ *)
(* Statement-level optimization: optimize the XQuery expressions inside
   statements (the paper's point: declarative fragments keep their
   optimizations). [opt] is the expression-level rewriter — the plain
   optimizer during compilation, a stats/log-collecting wrapper for
   {!explain}. *)

let rec optimize_value_stmt opt = function
  | Stmt.V_expr e -> Stmt.V_expr (opt e)
  | Stmt.V_proc_block b -> Stmt.V_proc_block (optimize_block opt b)

and optimize_block opt (b : Stmt.block) =
  {
    Stmt.decls =
      List.map
        (fun d ->
          {
            d with
            Stmt.bd_init = Option.map (optimize_value_stmt opt) d.Stmt.bd_init;
          })
        b.Stmt.decls;
    stmts = List.map (optimize_stmt opt) b.Stmt.stmts;
  }

and optimize_stmt opt (s : Stmt.statement) =
  match s with
  | Stmt.Block b -> Stmt.Block (optimize_block opt b)
  | Stmt.Set (v, vs) -> Stmt.Set (v, optimize_value_stmt opt vs)
  | Stmt.Return_value vs -> Stmt.Return_value (optimize_value_stmt opt vs)
  | Stmt.Expr_stmt vs -> Stmt.Expr_stmt (optimize_value_stmt opt vs)
  | Stmt.While (e, b) -> Stmt.While (opt e, optimize_block opt b)
  | Stmt.Iterate { var; pos; source; body } ->
    Stmt.Iterate
      {
        var;
        pos;
        source = optimize_value_stmt opt source;
        body = optimize_block opt body;
      }
  | Stmt.If (c, t, e) ->
    Stmt.If (opt c, optimize_stmt opt t, Option.map (optimize_stmt opt) e)
  | Stmt.Try (b, clauses) ->
    Stmt.Try
      ( optimize_block opt b,
        List.map
          (fun c -> { c with Stmt.cc_body = optimize_block opt c.Stmt.cc_body })
          clauses )
  | Stmt.Continue | Stmt.Break -> s
  | Stmt.Update e -> Stmt.Update (opt e)

(* ------------------------------------------------------------------ *)

let install_declarations s reg rt (prog : Stmt.program) =
  (* [Engine.optimize_expr] is the identity when optimization is off;
     [where] attributes every rewrite note to its enclosing declaration.
     The purity environment is built against the target registry plus
     the program's own functions, so declaration bodies that call each
     other (or procedures calling declared functions) analyze precisely.
     Returned so [compile] can reuse it for the query body. *)
  let env = Xquery.Engine.purity_env s.eng prog.Stmt.prog_functions in
  let opt_in name e =
    Xquery.Engine.optimize_expr s.eng ~where:(Qname.to_string name) ~env e
  in
  List.iter
    (fun (decl : Xquery.Ast.function_decl) ->
      let decl =
        {
          decl with
          Xquery.Ast.fd_body =
            Option.map (opt_in decl.Xquery.Ast.fd_name) decl.Xquery.Ast.fd_body;
        }
      in
      Ctx.register reg
        {
          Ctx.fn_name = decl.Xquery.Ast.fd_name;
          fn_arity = List.length decl.Xquery.Ast.fd_params;
          fn_params = List.map snd decl.Xquery.Ast.fd_params;
          fn_return = decl.Xquery.Ast.fd_return;
          fn_impl = Ctx.User decl;
          fn_side_effects = false;
          fn_purity = None;
        })
    prog.Stmt.prog_functions;
  List.iter
    (fun pd ->
      let body =
        match pd.Stmt.pd_body with
        | Some b ->
          Interp.P_block (optimize_block (opt_in pd.Stmt.pd_name) b)
        | None ->
          Item.raise_error (Qname.err "XPST0017")
            (Printf.sprintf
               "external procedure %s must be registered by the host"
               (Qname.to_string pd.Stmt.pd_name))
      in
      Interp.declare_procedure rt
        {
          Interp.p_name = pd.Stmt.pd_name;
          p_params = pd.Stmt.pd_params;
          p_return = pd.Stmt.pd_return;
          p_readonly = pd.Stmt.pd_readonly;
          p_impl = body;
        })
    prog.Stmt.prog_procs;
  env

let fresh_static s =
  let st = Xquery.Engine.static s.eng in
  {
    Ctx.namespaces = st.Ctx.namespaces;
    default_elem_ns = st.Ctx.default_elem_ns;
    default_fun_ns = st.Ctx.default_fun_ns;
  }

(* resolve [import module] declarations against the registered module
   library; each module loads once per session (recursively) *)
let rec resolve_imports s prog =
  List.iter
    (fun (_prefix, uri) ->
      if not (Hashtbl.mem s.loaded_modules uri) then
        match Hashtbl.find_opt s.modules uri with
        | Some src ->
          Hashtbl.replace s.loaded_modules uri ();
          load_library s src
        | None ->
          Item.raise_error (Qname.err "XQST0059")
            (Printf.sprintf "no module registered for namespace %S" uri))
    prog.Stmt.prog_imports

and load_library s src =
  let prog = Parse.parse_program (fresh_static s) src in
  (match prog.Stmt.prog_body with
  | Some _ ->
    Item.raise_error (Qname.err "XQSE0002")
      "a library program must not have a query body"
  | None -> ());
  resolve_imports s prog;
  (* a library installs functions straight into the engine's registry,
     bypassing [Engine.register_external] — invalidate both cache layers
     explicitly, *after* the install (mutate-then-bump, like every other
     registration). When this runs mid-compile (an import resolving
     lazily), the caller captures its fingerprint after import
     resolution, so the bumped generations are what gets cached. *)
  ignore
    (install_declarations s (Xquery.Engine.registry s.eng) s.rt prog
      : Xquery.Purity.env);
  invalidate_plans s;
  Xquery.Engine.invalidate_plans s.eng;
  (* library variable declarations evaluate now and persist as globals;
     after the invalidation, so an initializer calling a just-installed
     readonly procedure compiles against the post-install registry *)
  if prog.Stmt.prog_variables <> [] then begin
    let reg = Xquery.Engine.registry s.eng in
    let ctx = Ctx.make_dynamic ~trace:s.trace ~instr:(instr s) reg in
    let ctx = Ctx.with_vars ctx (Ctx.globals reg) in
    let ctx =
      List.fold_left
        (fun ctx vd ->
          let v =
            match vd.Xquery.Ast.vd_value with
            | Some e -> Xquery.Eval.eval ctx e
            | None ->
              Item.raise_error (Qname.err "XPDY0002")
                (Printf.sprintf
                   "library variable $%s must have a value"
                   (Qname.to_string vd.Xquery.Ast.vd_name))
          in
          let v =
            match vd.Xquery.Ast.vd_type with
            | Some ty ->
              Seqtype.check
                ~what:(Printf.sprintf "$%s" (Qname.to_string vd.Xquery.Ast.vd_name))
                ty v
            | None -> v
          in
          Ctx.bind ctx vd.Xquery.Ast.vd_name v)
        ctx prog.Stmt.prog_variables
    in
    Ctx.set_globals reg (Ctx.fields ctx).Ctx.vars
  end

let register_module s uri src =
  Hashtbl.replace s.modules uri src;
  invalidate_plans s

(* Plan-cache fingerprint, mirroring the engine's: both generations plus
   every flag that changes what a compile produces. *)
let fingerprint s =
  ( Xquery.Engine.generation s.eng,
    Stdlib.Atomic.get s.s_generation,
    Xquery.Engine.optimizing s.eng,
    Xquery.Engine.streaming s.eng,
    Xquery.Engine.plans s.eng )

(* Returns the fingerprint observed when the registry was snapshotted —
   after import resolution (a mid-compile library load bumps both
   generations first, so the entry caches under the post-load context it
   actually compiled against), before the registry copy (a registration
   landing later invalidates the fingerprint and the caller skips the
   insert). *)
let compile_fp s src =
  Instr.span (instr s) "compile" (fun () ->
      let prog = Parse.parse_program (fresh_static s) src in
      resolve_imports s prog;
      let fp = fingerprint s in
      let reg = Ctx.copy_registry (Xquery.Engine.registry s.eng) in
      let rt = Interp.create_runtime ~trace:s.trace ~parent:s.rt reg in
      let env = install_declarations s reg rt prog in
      (* statement-level expression evaluation gates streaming on the
         same compile-time verdicts as the engine would *)
      Interp.set_purity rt (Xquery.Engine.purity_fn env);
      let opt e = Xquery.Engine.optimize_expr s.eng ~env e in
      let body =
        Option.map
          (function
            | Stmt.Q_expr e -> Stmt.Q_expr (opt e)
            | Stmt.Q_block b -> Stmt.Q_block (optimize_block opt b))
          prog.Stmt.prog_body
      in
      let c =
        {
          c_session = s;
          c_registry = reg;
          c_runtime = rt;
          c_vars = prog.Stmt.prog_variables;
          c_body = body;
          c_env = env;
          c_plan =
            lazy
              (match body with
              | None -> CP_none
              | Some (Stmt.Q_expr e) ->
                CP_expr (Xquery.Eval.compile (Interp.compiler rt) e)
              | Some (Stmt.Q_block b) -> CP_block (Interp.compile_block rt b));
        }
      in
      (* closure-compile inside the compile span so [run] measures pure
         execution; skipped when execution goes through the tree walker *)
      if Xquery.Engine.plans s.eng then ignore (Lazy.force c.c_plan : cplan);
      (* successful compiles only: a parse or static error above must
         not count (the span still reports its duration) *)
      Instr.bump (instr s) Instr.K.queries_compiled;
      (fp, c))

let compile s src = snd (compile_fp s src)

(* Plan cache around [compile], mirroring the engine's: keyed on the
   program text, guarded by the fingerprint the entry was compiled
   under; the insert is skipped when a registration raced the compile
   (the fingerprint moved after the registry snapshot), so a stale plan
   is returned at most once and never cached. A failed compile counts
   as a miss but never as a compiled query; the cache is bypassed
   entirely when plans are off. *)
let compile_cached s src =
  let cached =
    Mutex.protect s.cache_lock (fun () -> Hashtbl.find_opt s.cache src)
  in
  match cached with
  | Some e when Xquery.Engine.plans s.eng && e.ce_fingerprint = fingerprint s
    ->
    Instr.bump (instr s) Instr.K.plan_cache_hit;
    e.ce_compiled
  | _ when not (Xquery.Engine.plans s.eng) -> compile s src
  | _ ->
    Instr.bump (instr s) Instr.K.plan_cache_miss;
    let fp, c = compile_fp s src in
    Mutex.protect s.cache_lock (fun () ->
        if fp = fingerprint s then begin
          if Hashtbl.length s.cache >= cache_cap then Hashtbl.reset s.cache;
          Hashtbl.replace s.cache src { ce_fingerprint = fp; ce_compiled = c }
        end);
    c

type exec_opts = {
  vars : (Qname.t * Item.seq) list;
  trace : (string -> unit) option;
}

let default_exec_opts = { vars = []; trace = None }

(* An expired ambient request deadline fails the program before any
   statement runs, with the same stable code the resilience guard uses
   at the source boundary — so a request whose budget died between
   admission and execution costs nothing and is XQSE-catchable. *)
let check_deadline () =
  match Resilience.Deadline.current () with
  | Some d when Resilience.Deadline.expired d ->
    Item.raise_error (Qname.err "RESX0005")
      (Printf.sprintf
         "request budget of %.0fms exhausted before execution (%.0fms \
          elapsed)"
         (Resilience.Deadline.budget_ms d)
         (Resilience.Deadline.elapsed_ms d))
  | None | Some _ -> ()

let set_snapshot_scope s scope = s.snapshot_scope <- scope

(* every query entry point runs inside the installed snapshot scope so
   all its source reads resolve against one consistent version cut;
   nested entries reuse the outer snapshot (the scope is reentrant) *)
let in_scope s f =
  match s.snapshot_scope with None -> f () | Some { scope } -> scope f

let run ?(opts = default_exec_opts) c =
  let s = c.c_session in
  check_deadline ();
  in_scope s @@ fun () ->
  Instr.span (instr s) "run" (fun () ->
  let vars = opts.vars in
  let trace = match opts.trace with Some f -> f | None -> s.trace in
  (* route statement-level fn:trace of this program to the same sink,
     and pick up the engine's current streaming and plan modes *)
  Interp.set_trace c.c_runtime trace;
  Interp.set_streaming c.c_runtime (Xquery.Engine.streaming s.eng);
  Interp.set_plans c.c_runtime (Xquery.Engine.plans s.eng);
  (* evaluate module variable declarations in order, over the session's
     persistent globals *)
  let ctx =
    Ctx.make_dynamic ~trace ~instr:(instr s)
      ~streaming:(Xquery.Engine.streaming s.eng)
      ~purity:(Xquery.Engine.purity_fn c.c_env) ?cache:(cache_bound s)
      c.c_registry
  in
  let ctx = Ctx.with_vars ctx (Ctx.globals c.c_registry) in
  let ctx = Ctx.bind_many ctx vars in
  let ctx =
    List.fold_left
      (fun ctx vd ->
        let v =
          match vd.Xquery.Ast.vd_value with
          | Some e -> Xquery.Eval.eval ctx e
          | None -> (
            match Ctx.lookup_var ctx vd.Xquery.Ast.vd_name with
            | Some v -> v
            | None ->
              Item.raise_error (Qname.err "XPDY0002")
                (Printf.sprintf
                   "external variable $%s was not supplied a value"
                   (Qname.to_string vd.Xquery.Ast.vd_name)))
        in
        let v =
          match vd.Xquery.Ast.vd_type with
          | Some ty ->
            Seqtype.check
              ~what:
                (Printf.sprintf "$%s" (Qname.to_string vd.Xquery.Ast.vd_name))
              ty v
          | None -> v
        in
        Ctx.bind ctx vd.Xquery.Ast.vd_name v)
      ctx c.c_vars
  in
  Ctx.set_globals c.c_registry (Ctx.fields ctx).Ctx.vars;
  let plans = Xquery.Engine.plans s.eng in
  match c.c_body with
  | None -> []
  | Some (Stmt.Q_expr e) -> (
    match (if plans then Lazy.force c.c_plan else CP_none) with
    | CP_expr p -> p ctx
    | _ -> Xquery.Eval.eval ctx e)
  | Some (Stmt.Q_block b) -> (
    match (if plans then Lazy.force c.c_plan else CP_none) with
    | CP_block cb -> Interp.run_block c.c_runtime ~vars cb
    | _ -> Interp.exec_block c.c_runtime ~vars b))

let eval ?opts s src = run ?opts (compile_cached s src)

let eval_to_string ?opts s src =
  Xml_serialize.seq_to_string (eval ?opts s src)

type exec_result = { r_value : Item.seq; r_stats : Instr.stats }

let exec ?(opts = default_exec_opts) s src =
  let i = instr s in
  let before = Instr.stats i in
  let v = Instr.span i "query" (fun () -> run ~opts (compile_cached s src)) in
  { r_value = v; r_stats = Instr.since i before }

(* ------------------------------------------------------------------ *)
(* Explain: optimize a program while recording what the optimizer did,
   without touching the session's registries. Mirrors [compile] /
   [install_declarations]: function and procedure bodies plus the query
   body are optimized; variable declarations are left as written. *)

type explain = {
  ex_program : string;
  ex_stats : Xquery.Optimizer.stats;
  ex_log : string list;
}

let explain s src =
  let prog = Parse.parse_program (fresh_static s) src in
  let log = ref [] in
  let total = ref Xquery.Optimizer.zero_stats in
  (* same purity environment as a real compilation of this program *)
  let env = Xquery.Engine.purity_env s.eng prog.Stmt.prog_functions in
  (* [where] (the enclosing function/procedure) prefixes each rewrite
     line, so multi-declaration programs attribute every rewrite; the
     query body stays unprefixed *)
  let opt_in where e =
    let e', st =
      Xquery.Optimizer.optimize_with_stats ~env
        ~log:(fun m ->
          log :=
            (match where with
            | Some w -> Printf.sprintf "[%s] %s" w m
            | None -> m)
            :: !log)
        e
    in
    total := Xquery.Optimizer.add_stats !total st;
    e'
  in
  let opt e = opt_in None e in
  let prog =
    {
      prog with
      Stmt.prog_functions =
        List.map
          (fun fd ->
            {
              fd with
              Xquery.Ast.fd_body =
                Option.map
                  (opt_in (Some (Qname.to_string fd.Xquery.Ast.fd_name)))
                  fd.Xquery.Ast.fd_body;
            })
          prog.Stmt.prog_functions;
      prog_procs =
        List.map
          (fun pd ->
            {
              pd with
              Stmt.pd_body =
                Option.map
                  (optimize_block
                     (opt_in (Some (Qname.to_string pd.Stmt.pd_name))))
                  pd.Stmt.pd_body;
            })
          prog.Stmt.prog_procs;
      prog_body =
        Option.map
          (function
            | Stmt.Q_expr e -> Stmt.Q_expr (opt e)
            | Stmt.Q_block b -> Stmt.Q_block (optimize_block opt b))
          prog.Stmt.prog_body;
    }
  in
  { ex_program = Pretty.program prog; ex_stats = !total; ex_log = List.rev !log }

let call s name args =
  in_scope s @@ fun () ->
  match Interp.find_procedure s.rt name (List.length args) with
  | Some _ -> Interp.call_procedure s.rt name args
  | None ->
    let ctx =
      Ctx.make_dynamic ~trace:s.trace ~instr:(instr s)
        ?cache:(cache_bound s)
        (Xquery.Engine.registry s.eng)
    in
    Xquery.Eval.call ctx name args
