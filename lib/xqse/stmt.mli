(** Abstract syntax of XQSE statements, following the paper's EBNF
    (section III.B and the appendix). *)

open Xdm

(** Name test of a try/catch clause: [err:FOO], [*], [*:*], [p:*], [*:local]. *)
type nametest =
  | Nt_name of Qname.t
  | Nt_any  (** [*] and [*:*] *)
  | Nt_ns of string  (** [p:*] with the prefix resolved to a URI *)
  | Nt_local of string  (** [*:local] *)

type statement =
  | Block of block
  | Set of Qname.t * value_stmt  (** [set $x := v] *)
  | Return_value of value_stmt  (** [return value v] *)
  | Expr_stmt of value_stmt
      (** expression / procedure-call statement: executed for effect,
          result discarded *)
  | While of Xquery.Ast.expr * block
  | Iterate of {
      var : Qname.t;
      pos : Qname.t option;  (** [at $p] positional variable *)
      source : value_stmt;
      body : block;
    }
  | If of Xquery.Ast.expr * statement * statement option
  | Try of block * catch_clause list
  | Continue
  | Break
  | Update of Xquery.Ast.expr
      (** update statement: an updating expression, one snapshot *)

and block = { decls : block_decl list; stmts : statement list }

and block_decl = {
  bd_var : Qname.t;
  bd_type : Seqtype.t option;
  bd_init : value_stmt option;
}

and value_stmt =
  | V_expr of Xquery.Ast.expr
      (** non-updating expression (includes function calls); a top-level
          [Call] is resolved against procedures first at execution *)
  | V_proc_block of block  (** in-place [procedure { ... }] *)

and catch_clause = {
  cc_test : nametest;
  cc_vars : Qname.t list;  (** [into $code, $message, $items] — up to 3 *)
  cc_body : block;
}

type procedure_decl = {
  pd_name : Qname.t;
  pd_params : (Qname.t * Seqtype.t option) list;
  pd_return : Seqtype.t option;
  pd_readonly : bool;
  pd_body : block option;  (** [None] = external *)
}

type query_body = Q_expr of Xquery.Ast.expr | Q_block of block

type program = {
  prog_procs : procedure_decl list;
  prog_functions : Xquery.Ast.function_decl list;
  prog_variables : Xquery.Ast.var_decl list;
  prog_imports : (string option * string) list;
      (** [import module] prefixes and URIs, in order *)
  prog_body : query_body option;
      (** [None] for library programs (declarations only) *)
}

val nametest_matches : nametest -> Qname.t -> bool
(** [nametest_matches nt q] tests an error QName against a catch
    clause's name test. *)
